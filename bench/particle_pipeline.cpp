/// Particle-pipeline A/B benchmark: the legacy split particle update
/// (scalar wrapped gather + push sweep, re-binning tiled deposit, wrap
/// sweep) vs the supercell-fused single pass (pic/fused_pipeline.hpp),
/// on the quick-demo KHI box (32x64x8, 9 ppc, the paper's reduced setup).
/// The figure of merit is particle updates per second over whole
/// Simulation::step() calls — the paper's dominant FOM term.
///
/// Also verifies the A/B contract on the way: after the timed steps the
/// two pipelines' E/B/J fields must be bit-identical.
///
///   ./bench/bench_particle_pipeline [--acceptance[=ratio]]
///                                   [--trace-overhead[=maxLoss]]
///                                   [--fault-overhead[=maxLoss]]
///                                   [--json <path>] [steps] [repeats]
///
/// --acceptance gates fused >= ratio x split (default 1.5) at 8 threads
/// and exits nonzero on failure; --json writes the measurement (CI
/// uploads it as the BENCH_particle_pipeline artifact).
///
/// --trace-overhead instead measures the fused pipeline with TRACE_SCOPE
/// instrumentation runtime-disabled vs enabled (recording to the ring, no
/// sink) and gates the enabled rate at >= (1 - maxLoss) x disabled
/// (default maxLoss 0.01, the "enabled tracing costs < 1% on the FOM"
/// contract of src/obs/trace.hpp).
///
/// --fault-overhead does the same for FAULT_POINT hooks
/// (src/fault/fault.hpp): disarmed (the production state — one relaxed
/// atomic load per site) vs armed with a never-matching plan (the full
/// slow path: hit counting + rule scan, no injection). The armed rate
/// bounds the disarmed cost from above, so gating it at
/// >= (1 - maxLoss) x disarmed (default 0.01) enforces the "disabled
/// fault points cost <= 1%" contract with margin.
#ifdef _OPENMP
#include <omp.h>
#endif

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "common/timer.hpp"
#include "fault/fault.hpp"
#include "obs/trace.hpp"
#include "pic/khi.hpp"
#include "pic/simulation.hpp"

using namespace artsci;
using pic::ParticlePipeline;

namespace {

std::unique_ptr<pic::Simulation> makeKhi(ParticlePipeline pipeline) {
  pic::KhiConfig kcfg;  // quick-demo box 32x64x8, 9 ppc
  pic::SimulationConfig scfg;
  scfg.grid = kcfg.grid;
  scfg.dt = kcfg.dt;
  scfg.pipeline = pipeline;
  auto sim = std::make_unique<pic::Simulation>(scfg);
  pic::initializeKhi(*sim, kcfg);
  return sim;
}

/// Best-of-`repeats` particle updates/s over `steps` full step() calls.
/// A fresh simulation per repeat keeps the workloads identical (same
/// start state, same trajectory) across pipelines and repeats.
double particleUpdateRate(ParticlePipeline pipeline, int steps, int repeats) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    auto sim = makeKhi(pipeline);
    sim->step();  // warm-up: first-touch of tile stores and caches
    const double updates =
        static_cast<double>(sim->particleCount()) * steps;
    Timer timer;
    sim->run(steps);
    best = std::max(best, updates / timer.seconds());
  }
  return best;
}

bool fieldsBitIdentical(const pic::Simulation& a, const pic::Simulation& b) {
  const auto same = [](const pic::Field3& x, const pic::Field3& y) {
    return x.raw().size() == y.raw().size() &&
           std::memcmp(x.raw().data(), y.raw().data(),
                       x.raw().size() * sizeof(double)) == 0;
  };
  const auto sameVec = [&](const pic::VectorField& x,
                           const pic::VectorField& y) {
    return same(x.x, y.x) && same(x.y, y.y) && same(x.z, y.z);
  };
  return sameVec(a.fieldE(), b.fieldE()) && sameVec(a.fieldB(), b.fieldB()) &&
         sameVec(a.currentJ(), b.currentJ());
}

void setThreads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = -1;
  double traceMaxLoss = -1;
  double faultMaxLoss = -1;
  const char* jsonPath = nullptr;
  int steps = 6, repeats = 3;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--acceptance") == 0) {
      threshold = 1.5;
    } else if (std::strcmp(arg, "--trace-overhead") == 0) {
      traceMaxLoss = 0.01;
    } else if (std::strncmp(arg, "--trace-overhead=", 17) == 0) {
      char* end = nullptr;
      traceMaxLoss = std::strtod(arg + 17, &end);
      if (end == arg + 17 || *end != '\0' || !(traceMaxLoss > 0) ||
          traceMaxLoss >= 1) {
        std::fprintf(stderr,
                     "invalid %s — expected --trace-overhead=<maxLoss> with "
                     "0 < maxLoss < 1 (e.g. --trace-overhead=0.01)\n",
                     arg);
        return 2;
      }
    } else if (std::strcmp(arg, "--fault-overhead") == 0) {
      faultMaxLoss = 0.01;
    } else if (std::strncmp(arg, "--fault-overhead=", 17) == 0) {
      char* end = nullptr;
      faultMaxLoss = std::strtod(arg + 17, &end);
      if (end == arg + 17 || *end != '\0' || !(faultMaxLoss > 0) ||
          faultMaxLoss >= 1) {
        std::fprintf(stderr,
                     "invalid %s — expected --fault-overhead=<maxLoss> with "
                     "0 < maxLoss < 1 (e.g. --fault-overhead=0.01)\n",
                     arg);
        return 2;
      }
    } else if (std::strncmp(arg, "--acceptance=", 13) == 0) {
      char* end = nullptr;
      threshold = std::strtod(arg + 13, &end);
      if (end == arg + 13 || *end != '\0' || !(threshold > 0)) {
        std::fprintf(stderr,
                     "invalid %s — expected --acceptance=<ratio> with "
                     "ratio > 0 (e.g. --acceptance=1.5)\n",
                     arg);
        return 2;
      }
    } else if (std::strcmp(arg, "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      jsonPath = arg + 7;
    } else if (arg[0] == '-') {
      // A typo'd flag must not silently become steps=0 and disable the
      // gate (exit like the --acceptance parse error does).
      std::fprintf(stderr,
                   "unknown option %s — usage: bench_particle_pipeline "
                   "[--acceptance[=ratio]] [--trace-overhead[=maxLoss]] "
                   "[--fault-overhead[=maxLoss]] "
                   "[--json <path>] [steps] [repeats]\n",
                   arg);
      return 2;
    } else {
      (positional == 0 ? steps : repeats) = std::atoi(arg);
      ++positional;
    }
  }
  if (steps < 1 || repeats < 1) {
    std::fprintf(stderr, "steps and repeats must be >= 1\n");
    return 2;
  }

#ifdef _OPENMP
  const bool haveOmp = true;
#else
  const bool haveOmp = false;
#endif

  if (traceMaxLoss > 0) {
    // Overhead-acceptance mode: fused pipeline, instrumentation
    // runtime-off vs runtime-on (spans recorded into the rings, nothing
    // flushed). Best-of-repeats on both sides damps scheduler noise.
    const int threads = haveOmp ? 8 : 1;
    setThreads(threads);
    auto& rec = obs::TraceRecorder::instance();
    rec.setEnabled(false);
    const double offRate =
        particleUpdateRate(ParticlePipeline::Fused, steps, repeats);
    rec.setEnabled(true);
    const double onRate =
        particleUpdateRate(ParticlePipeline::Fused, steps, repeats);
    rec.setEnabled(false);
    const std::size_t spans = rec.eventCount();
    const double ratio = onRate / offRate;
    const bool pass = spans > 0 && ratio >= 1.0 - traceMaxLoss;
    std::printf(
        "trace overhead: fused KHI 32x64x8 ppc 9, %d steps, best of %d, "
        "%d threads\n"
        "  tracing off: %.3e p/s\n"
        "  tracing on:  %.3e p/s  (%zu spans recorded)\n"
        "  on/off = %.4f (gate >= %.4f) -> %s\n",
        steps, repeats, threads, offRate, onRate, spans, ratio,
        1.0 - traceMaxLoss, pass ? "PASS" : "FAIL");
    if (jsonPath != nullptr) {
      std::FILE* f = std::fopen(jsonPath, "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", jsonPath);
        return 2;
      }
      std::fprintf(f,
                   "{\n"
                   "  \"bench\": \"trace_overhead\",\n"
                   "  \"setup\": \"khi_quick_demo_32x64x8_ppc9_fused\",\n"
                   "  \"threads\": %d,\n"
                   "  \"steps\": %d,\n"
                   "  \"spans\": %zu,\n"
                   "  \"ratio\": %.4f,\n"
                   "  \"threshold\": %.4f,\n"
                   "  \"pass\": %s\n"
                   "}\n",
                   threads, steps, spans, ratio, 1.0 - traceMaxLoss,
                   pass ? "true" : "false");
      std::fclose(f);
    }
    return pass ? 0 : 1;
  }

  if (faultMaxLoss > 0) {
    // Fault-hook overhead acceptance: disarmed (production: one relaxed
    // atomic load per FAULT_POINT) vs armed with a rule that matches no
    // real site (worst case short of injecting: per-hit counting plus a
    // rule scan on every pass). Sites sit on step boundaries, so even the
    // armed slow path must be invisible on the particle-update FOM.
    const int threads = haveOmp ? 8 : 1;
    setThreads(threads);
    fault::Plan::global().disarm();
    const double offRate =
        particleUpdateRate(ParticlePipeline::Fused, steps, repeats);
    fault::Plan::global().arm(
        fault::Plan::parseSpec("bench.never@1:error"));
    const double onRate =
        particleUpdateRate(ParticlePipeline::Fused, steps, repeats);
    const auto hits = fault::Plan::global().siteHits();
    fault::Plan::global().disarm();
    const auto it = hits.find("pic.step");
    const std::uint64_t picHits = it == hits.end() ? 0 : it->second;
    const double ratio = onRate / offRate;
    // picHits > 0 guards against vacuity: the hook must actually sit on
    // the measured path (ARTSCI_FAULTS=0 builds legitimately record 0 and
    // fail here — this gate is for instrumented builds).
    const bool pass = picHits > 0 && ratio >= 1.0 - faultMaxLoss;
    std::printf(
        "fault-point overhead: fused KHI 32x64x8 ppc 9, %d steps, best of "
        "%d, %d threads\n"
        "  disarmed:             %.3e p/s\n"
        "  armed (non-matching): %.3e p/s  (%llu pic.step hits counted)\n"
        "  armed/disarmed = %.4f (gate >= %.4f) -> %s\n",
        steps, repeats, threads, offRate, onRate,
        static_cast<unsigned long long>(picHits), ratio,
        1.0 - faultMaxLoss, pass ? "PASS" : "FAIL");
    if (jsonPath != nullptr) {
      std::FILE* f = std::fopen(jsonPath, "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", jsonPath);
        return 2;
      }
      std::fprintf(f,
                   "{\n"
                   "  \"bench\": \"fault_overhead\",\n"
                   "  \"setup\": \"khi_quick_demo_32x64x8_ppc9_fused\",\n"
                   "  \"threads\": %d,\n"
                   "  \"steps\": %d,\n"
                   "  \"site_hits\": %llu,\n"
                   "  \"ratio\": %.4f,\n"
                   "  \"threshold\": %.4f,\n"
                   "  \"pass\": %s\n"
                   "}\n",
                   threads, steps, static_cast<unsigned long long>(picHits),
                   ratio, 1.0 - faultMaxLoss, pass ? "true" : "false");
      std::fclose(f);
    }
    return pass ? 0 : 1;
  }

  std::printf(
      "particle-pipeline A/B: quick-demo KHI 32x64x8 ppc 9, %d steps, "
      "best of %d%s\n",
      steps, repeats, haveOmp ? "" : " (no OpenMP: serial only)");

  // A/B contract check first (1 thread is enough — both paths are
  // thread-count invariant): fields bit-identical after 3 steps.
  setThreads(1);
  bool identical;
  {
    auto split = makeKhi(ParticlePipeline::Split);
    auto fused = makeKhi(ParticlePipeline::Fused);
    split->run(3);
    fused->run(3);
    identical = fieldsBitIdentical(*split, *fused);
  }
  std::printf("fused vs split E/B/J after 3 steps: %s\n\n",
              identical ? "bit-identical" : "MISMATCH");

  std::printf("%8s | %14s %14s | %8s\n", "threads", "split p/s", "fused p/s",
              "fused/x");
  double gateRatio = 0.0;
  const int gateThreads = haveOmp ? 8 : 1;
  for (int threads : {1, 2, 8}) {
    if (!haveOmp && threads > 1) continue;
    setThreads(threads);
    const double splitRate =
        particleUpdateRate(ParticlePipeline::Split, steps, repeats);
    const double fusedRate =
        particleUpdateRate(ParticlePipeline::Fused, steps, repeats);
    const double ratio = fusedRate / splitRate;
    std::printf("%8d | %14.3e %14.3e | %7.2fx\n", threads, splitRate,
                fusedRate, ratio);
    if (threads == gateThreads) gateRatio = ratio;
  }

  const double gate = threshold > 0 ? threshold : 1.5;
  const bool pass = identical && gateRatio >= gate;
  std::printf(
      "\nacceptance (bit-identical A/B, fused >= %.2fx split @ %d "
      "threads): %.2fx -> %s\n",
      gate, gateThreads, gateRatio, pass ? "PASS" : "FAIL");

  if (jsonPath != nullptr) {
    std::FILE* f = std::fopen(jsonPath, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", jsonPath);
      return 2;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"particle_pipeline_acceptance\",\n"
                 "  \"setup\": \"khi_quick_demo_32x64x8_ppc9\",\n"
                 "  \"threads\": %d,\n"
                 "  \"steps\": %d,\n"
                 "  \"bit_identical\": %s,\n"
                 "  \"ratio\": %.4f,\n"
                 "  \"threshold\": %.4f,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 gateThreads, steps, identical ? "true" : "false", gateRatio,
                 gate, pass ? "true" : "false");
    std::fclose(f);
  }
  if (threshold > 0) return pass ? 0 : 1;
  return identical ? 0 : 1;
}

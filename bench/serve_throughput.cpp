/// Serving-layer throughput bench: dynamic micro-batching + the fused
/// inference engine vs the status-quo baseline (synchronous single-request
/// `predictSpectra` graph forwards — all the repo offered before
/// src/serve). Sweeps the batch policy (max-batch) and the worker count on
/// the reduced model and reports requests/s plus tail latency.
///
/// Acceptance target: served throughput at max-batch 32 >= 5x the
/// single-request (batch 1) baseline.
///
/// Also reports the fused engine's intra-request OpenMP scaling: the
/// batch-32 predictSpectra loop routes linear_forward over fixed 32-row
/// static chunks (ml/kernels/gemm.hpp), so multi-core hosts speed up a
/// single batch with bit-identical results.
///
///   ./bench/bench_serve_throughput [requests=768] [points=128] [repeats=3]
///                                  [json=<path>]
///
/// json= writes the measurement (speedup vs the 5x gate) for the CI
/// perf-trajectory artifact.
#ifdef _OPENMP
#include <omp.h>
#endif

#include <cstdio>
#include <vector>

#include "common/config.hpp"
#include "common/timer.hpp"
#include "core/model.hpp"
#include "serve/engine.hpp"
#include "serve/server.hpp"

using namespace artsci;

namespace {

double servedThroughput(const std::shared_ptr<serve::ModelRegistry>& registry,
                        long maxBatch, std::size_t workers,
                        const std::vector<ml::Real>& cloud, long requests,
                        stats::LatencySummary* latencyOut) {
  serve::ServerConfig scfg;
  scfg.policy.maxBatch = maxBatch;
  scfg.policy.maxWaitMicros = 500;
  scfg.policy.maxQueueDepth = static_cast<std::size_t>(requests) + 16;
  scfg.workers = workers;
  serve::InferenceServer server(scfg, registry);

  // Warm-up batch: engine construction + first-touch of the workspaces.
  server.predictSpectrum(cloud).get();

  Timer timer;
  std::vector<std::future<serve::InferenceResult>> futs;
  futs.reserve(static_cast<std::size_t>(requests));
  for (long i = 0; i < requests; ++i)
    futs.push_back(server.predictSpectrum(cloud));
  for (auto& f : futs) f.get();
  const double seconds = timer.seconds();

  if (latencyOut != nullptr)
    *latencyOut = server.metrics().predict.latencyMicros;
  return static_cast<double>(requests) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cli = Config::fromArgs(argc, argv);
  const long requests = cli.getInt("requests", 768);
  const long points = cli.getInt("points", 128);
  const int repeats = static_cast<int>(cli.getInt("repeats", 3));
  const std::string jsonPath = cli.getString("json", "");

  Rng rng(1);
  core::ArtificialScientistModel model(
      core::ArtificialScientistModel::Config::reduced(), rng);
  auto snapshot = core::cloneForInference(model);

  std::vector<ml::Real> cloud(static_cast<std::size_t>(points) * 6);
  for (auto& v : cloud) v = rng.normal();
  ml::Tensor singleCloud =
      ml::Tensor::fromVector({1, points, 6}, cloud);

  std::printf("serve_throughput: reduced model, %ld-point clouds, %ld "
              "requests, best of %d\n\n",
              points, requests, repeats);

  // --- Baseline: synchronous single-request inference, batch 1 ----------
  double baseline = 0;
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    for (long i = 0; i < requests; ++i) model.predictSpectra(singleCloud);
    baseline = std::max(baseline,
                        static_cast<double>(requests) / timer.seconds());
  }
  std::printf("baseline  direct predictSpectra, one request at a time: "
              "%8.0f req/s\n\n",
              baseline);

  // --- Served: sweep batch policy x workers ------------------------------
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->publish(snapshot, "bench");

  std::printf("%-9s %-8s %12s %10s %10s %10s\n", "maxBatch", "workers",
              "req/s", "p50(us)", "p95(us)", "p99(us)");
  double served32w1 = 0, served32w4 = 0;
  for (long maxBatch : {1L, 4L, 8L, 32L}) {
    for (std::size_t workers : {1UL, 2UL, 4UL}) {
      double best = 0;
      stats::LatencySummary lat;
      for (int r = 0; r < repeats; ++r) {
        stats::LatencySummary l;
        const double reqS = servedThroughput(registry, maxBatch, workers,
                                             cloud, requests, &l);
        if (reqS > best) {
          best = reqS;
          lat = l;
        }
      }
      std::printf("%-9ld %-8zu %12.0f %10.0f %10.0f %10.0f\n", maxBatch,
                  workers, best, lat.p50, lat.p95, lat.p99);
      if (maxBatch == 32 && workers == 1) served32w1 = best;
      if (maxBatch == 32 && workers == 4) served32w4 = best;
    }
  }

  // --- Engine OpenMP row-parallelism: one batch-32 forward ---------------
#ifdef _OPENMP
  {
    serve::InferenceEngine::Options opts;
    opts.ompRowParallel = true;
    serve::InferenceEngine engine(snapshot, opts);
    const long batch = 32;
    std::vector<ml::Real> clouds(static_cast<std::size_t>(batch) *
                                 static_cast<std::size_t>(points) * 6);
    Rng crng(2);
    for (auto& v : clouds) v = crng.normal();
    std::vector<ml::Real> out(
        static_cast<std::size_t>(batch * engine.spectrumDim()));
    const int savedThreads = omp_get_max_threads();
    std::printf("\nfused engine, one batch-32 predictSpectra "
                "(OMP row chunks):\n");
    double oneThread = 0;
    for (int threads : {1, 2, 4, 8}) {
      if (threads > 1 && threads > savedThreads) continue;
      omp_set_num_threads(threads);
      engine.predictSpectra(clouds.data(), batch, points, out.data());
      double best = 0;
      for (int r = 0; r < repeats; ++r) {
        Timer timer;
        for (int it = 0; it < 50; ++it)
          engine.predictSpectra(clouds.data(), batch, points, out.data());
        best = std::max(best, 50.0 * batch / timer.seconds());
      }
      if (threads == 1) oneThread = best;
      std::printf("  %2d threads: %9.0f samples/s (%.2fx vs 1 thread)\n",
                  threads, best, best / oneThread);
    }
    omp_set_num_threads(savedThreads);
  }
#endif

  const double speedup = served32w1 / baseline;
  const double workerScaling = served32w4 / served32w1;
  std::printf("\nbatched throughput (maxBatch 32, 1 worker) vs "
              "single-request baseline: %.2fx %s\n",
              speedup, speedup >= 5.0 ? "(target >= 5x: PASS)"
                                      : "(target >= 5x: FAIL)");
  std::printf("multi-worker scaling (maxBatch 32, 4 workers vs 1): %.2fx "
              "(informational; gated by bench_serve_loadgen acceptance)\n",
              workerScaling);
  std::printf("(speedup sources: graph-free fused engine + request "
              "coalescing amortizing per-request overhead)\n");

  if (!jsonPath.empty()) {
    std::FILE* f = std::fopen(jsonPath.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", jsonPath.c_str());
      return 2;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"serve_throughput\",\n"
                 "  \"setup\": \"reduced_model_%ldpt_maxbatch32_1worker\",\n"
                 "  \"baseline_req_s\": %.1f,\n"
                 "  \"served_req_s\": %.1f,\n"
                 "  \"served_req_s_4workers\": %.1f,\n"
                 "  \"worker_scaling_4v1\": %.4f,\n"
                 "  \"ratio\": %.4f,\n"
                 "  \"threshold\": 5.0,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 points, baseline, served32w1, served32w4, workerScaling,
                 speedup, speedup >= 5.0 ? "true" : "false");
    std::fclose(f);
  }
  return speedup >= 5.0 ? 0 : 1;
}

/// Open-loop load generator for the TCP serving front end (src/serve):
/// offers a fixed request rate over real sockets — senders pace by the
/// clock, never by replies, so queueing delay shows up as tail latency the
/// way it does for production clients — and reports p50/p99/p99.9 per
/// endpoint across a sweep of offered QPS.
///
///   ./bench/bench_serve_loadgen [points=32] [requests=2000] [shards=1]
///                               [qps=1000,2000,4000] [deadline_us=0]
///                               [json=<path>]
///
/// Acceptance mode (CI gate; also reachable as `acceptance=1 ratio=3`):
///
///   ./bench/bench_serve_loadgen --acceptance --json BENCH_serve_loadgen.json
///
/// measures saturated closed-loop throughput at 1 shard vs `shards=4`
/// (cores pinned), gates on the multi-worker ratio (default >= 3x, tunable
/// via ratio= for smaller runners), a bounded p99 at the high shard count,
/// and hot-swap safety: snapshots republish continuously during the
/// 4-shard run and every reply must parse with a valid snapshot version.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"
#include "core/model.hpp"
#include "serve/client.hpp"
#include "serve/net_server.hpp"

using namespace artsci;
namespace proto = artsci::serve::proto;

namespace {

using Clock = std::chrono::steady_clock;

/// A wedged server must fail the bench, not hang CI: generous-but-finite
/// connect/recv deadlines on every load-generator connection
/// (serve/client.hpp timeout options). Retries stay off — a lost reply
/// should show up in the numbers, not be papered over.
serve::NetClientOptions loadgenClientOptions() {
  serve::NetClientOptions opts;
  opts.connectTimeoutMillis = 2'000;
  opts.recvTimeoutMillis = 10'000;
  return opts;
}

struct RunResult {
  double offeredQps = 0;   ///< what the sender tried to offer
  double achievedQps = 0;  ///< replies per wall-clock second
  double p50 = 0, p99 = 0, p999 = 0;  ///< end-to-end micros (successes)
  std::size_t ok = 0, shed = 0, deadline = 0, errors = 0;
};

/// One open-loop run: a sender paces `requests` frames at `offeredQps`
/// over a single connection while a reader drains replies and stamps
/// end-to-end latency. Senders never wait for replies — overload turns
/// into queueing delay and sheds, exactly what the sweep wants to see.
RunResult openLoopRun(std::uint16_t port, proto::MsgType type,
                      const std::vector<ml::Real>& payload, long requests,
                      double offeredQps, std::uint64_t deadlineMicros) {
  serve::NetClient client("127.0.0.1", port, loadgenClientOptions());
  std::vector<Clock::time_point> sentAt(static_cast<std::size_t>(requests));
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(requests));
  RunResult res;
  res.offeredQps = offeredQps;

  std::thread reader([&] {
    for (long i = 0; i < requests; ++i) {
      proto::Frame f;
      try {
        f = client.recvFrame();
      } catch (const RuntimeError&) {
        res.errors += static_cast<std::size_t>(requests - i);
        return;
      }
      const auto now = Clock::now();
      if (f.type == proto::MsgType::kReply) {
        ++res.ok;
        const auto& t0 = sentAt[static_cast<std::size_t>(f.requestId - 1)];
        latencies.push_back(
            std::chrono::duration<double, std::micro>(now - t0).count());
      } else if (static_cast<proto::ErrorCode>(f.aux) ==
                 proto::ErrorCode::kShed) {
        ++res.shed;
      } else if (static_cast<proto::ErrorCode>(f.aux) ==
                 proto::ErrorCode::kDeadlineExceeded) {
        ++res.deadline;
      } else {
        ++res.errors;
      }
    }
  });

  const auto start = Clock::now();
  const double periodUs = 1e6 / offeredQps;
  for (long i = 0; i < requests; ++i) {
    // Absolute schedule: send i fires at start + i*period regardless of
    // how long earlier sends took (open loop, no coordinated omission).
    std::this_thread::sleep_until(
        start + std::chrono::microseconds(
                    static_cast<std::int64_t>(periodUs * i)));
    sentAt[static_cast<std::size_t>(i)] = Clock::now();
    client.sendFrame(proto::encodeRequest(
        type, static_cast<std::uint64_t>(i) + 1, deadlineMicros, payload));
  }
  reader.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  res.achievedQps = static_cast<double>(res.ok) / seconds;
  if (!latencies.empty()) {
    res.p50 = stats::quantile(latencies, 0.50);
    res.p99 = stats::quantile(latencies, 0.99);
    res.p999 = stats::quantile(latencies, 0.999);
  }
  return res;
}

/// Saturated closed-loop throughput: `clients` connections each pipeline
/// `perClient` requests and drain replies; returns total replies/s. Used
/// by the acceptance gate where the question is capacity, not tail shape.
double saturatedQps(std::uint16_t port, const std::vector<ml::Real>& payload,
                    int clients, long perClient, double* p99Out) {
  std::vector<std::thread> threads;
  std::vector<std::vector<double>> lats(static_cast<std::size_t>(clients));
  std::atomic<long> completed{0};
  Timer timer;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      serve::NetClient client("127.0.0.1", port, loadgenClientOptions());
      std::vector<Clock::time_point> sentAt(
          static_cast<std::size_t>(perClient));
      std::thread reader([&] {
        for (long i = 0; i < perClient; ++i) {
          const proto::Frame f = client.recvFrame();
          if (f.type != proto::MsgType::kReply) continue;
          lats[static_cast<std::size_t>(c)].push_back(
              std::chrono::duration<double, std::micro>(
                  Clock::now() -
                  sentAt[static_cast<std::size_t>(f.requestId - 1)])
                  .count());
          completed.fetch_add(1);
        }
      });
      for (long i = 0; i < perClient; ++i) {
        sentAt[static_cast<std::size_t>(i)] = Clock::now();
        client.sendFrame(proto::encodeRequest(
            proto::MsgType::kPredictSpectrum,
            static_cast<std::uint64_t>(i) + 1, 0, payload));
      }
      reader.join();
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = timer.seconds();
  if (p99Out != nullptr) {
    std::vector<double> all;
    for (auto& l : lats) all.insert(all.end(), l.begin(), l.end());
    *p99Out = all.empty() ? 0.0 : stats::quantile(all, 0.99);
  }
  return static_cast<double>(completed.load()) / seconds;
}

serve::NetServerConfig serverConfig(std::size_t shards, long requests) {
  serve::NetServerConfig cfg;
  cfg.shards = shards;
  cfg.policy.maxBatch = 32;
  cfg.policy.maxWaitMicros = 500;
  cfg.policy.maxQueueDepth = static_cast<std::size_t>(requests) + 64;
  cfg.pinCores = shards > 1;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  Config cli = Config::fromArgs(argc, argv);
  // Accept the documented `--acceptance [--json <path>]` flag style on top
  // of the repo's key=value convention.
  const auto& pos = cli.positional();
  for (std::size_t i = 0; i < pos.size(); ++i) {
    if (pos[i] == "--acceptance") cli.set("acceptance", "1");
    if (pos[i] == "--json" && i + 1 < pos.size())
      cli.set("json", pos[i + 1]);
  }

  const bool acceptance = cli.getBool("acceptance", false);
  // Acceptance wants compute-bound requests (worker scaling is the thing
  // under test, not framing throughput): default to the serve_throughput
  // bench's 128-point clouds there, smaller ones for the latency sweep.
  const long points = cli.getInt("points", acceptance ? 128 : 32);
  const long requests = cli.getInt("requests", 2000);
  const std::size_t shards =
      static_cast<std::size_t>(cli.getInt("shards", 1));
  const std::uint64_t deadlineUs =
      static_cast<std::uint64_t>(cli.getInt("deadline_us", 0));
  const double gateRatio = cli.getDouble("ratio", 3.0);
  const double p99BoundMs = cli.getDouble("p99_bound_ms", 500.0);
  const std::string jsonPath = cli.getString("json", "");

  Rng rng(1);
  core::ArtificialScientistModel model(
      core::ArtificialScientistModel::Config::reduced(), rng);
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->publish(core::cloneForInference(model), "loadgen");

  std::vector<ml::Real> cloud(static_cast<std::size_t>(points) * 6);
  for (auto& v : cloud) v = rng.normal();
  const long S = model.config().spectrumDim;
  std::vector<ml::Real> spectrum(static_cast<std::size_t>(S), 0.2);

  if (!acceptance) {
    // --- open-loop QPS sweep, per endpoint ------------------------------
    std::vector<double> qpsLevels;
    {
      std::string spec = cli.getString("qps", "1000,2000,4000");
      std::size_t from = 0;
      while (from < spec.size()) {
        std::size_t comma = spec.find(',', from);
        if (comma == std::string::npos) comma = spec.size();
        qpsLevels.push_back(std::stod(spec.substr(from, comma - from)));
        from = comma + 1;
      }
    }
    serve::NetServer server(serverConfig(shards, requests), registry);
    std::printf("serve_loadgen: reduced model, %ld-point clouds, %ld "
                "requests per level, %zu shard(s)\n\n",
                points, requests, shards);
    std::printf("%-8s %10s %12s %10s %10s %10s %6s %6s\n", "endpoint",
                "offered", "achieved", "p50(us)", "p99(us)", "p99.9(us)",
                "shed", "ddl");
    std::FILE* jf = nullptr;
    if (!jsonPath.empty()) {
      jf = std::fopen(jsonPath.c_str(), "w");
      if (jf == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", jsonPath.c_str());
        return 2;
      }
      std::fprintf(jf, "{\n  \"bench\": \"serve_loadgen\",\n"
                       "  \"shards\": %zu,\n  \"points\": %ld,\n"
                       "  \"sweep\": [\n", shards, points);
    }
    bool first = true;
    struct EndpointCase {
      const char* name;
      proto::MsgType type;
      const std::vector<ml::Real>& payload;
    };
    const EndpointCase cases[] = {
        {"predict", proto::MsgType::kPredictSpectrum, cloud},
        {"invert", proto::MsgType::kInvertSpectrum, spectrum}};
    for (const auto& [name, type, payload] : cases) {
      // Warm-up: engine construction off the clock.
      openLoopRun(server.port(), type, payload, 32, 1000.0, 0);
      for (double qps : qpsLevels) {
        const RunResult r = openLoopRun(server.port(), type, payload,
                                        requests, qps, deadlineUs);
        std::printf("%-8s %10.0f %12.0f %10.0f %10.0f %10.0f %6zu %6zu\n",
                    name, r.offeredQps, r.achievedQps, r.p50, r.p99, r.p999,
                    r.shed, r.deadline);
        if (jf != nullptr) {
          std::fprintf(jf,
                       "%s    {\"endpoint\": \"%s\", \"offered_qps\": %.0f, "
                       "\"achieved_qps\": %.1f, \"p50_us\": %.1f, "
                       "\"p99_us\": %.1f, \"p999_us\": %.1f, "
                       "\"shed\": %zu, \"deadline\": %zu}",
                       first ? "" : ",\n", name, r.offeredQps, r.achievedQps,
                       r.p50, r.p99, r.p999, r.shed, r.deadline);
          first = false;
        }
      }
    }
    if (jf != nullptr) {
      std::fprintf(jf, "\n  ]\n}\n");
      std::fclose(jf);
    }
    return 0;
  }

  // --- acceptance gate ---------------------------------------------------
  const int clients = 4;
  const long perClient = cli.getInt("per_client", 1500);
  std::printf("serve_loadgen acceptance: reduced model, %ld-point clouds, "
              "%d pipelined clients x %ld requests\n\n",
              points, clients, perClient);

  double qps1 = 0, qps4 = 0, p99_1 = 0, p99_4 = 0;
  {
    serve::NetServer one(serverConfig(1, clients * perClient), registry);
    saturatedQps(one.port(), cloud, 1, 64, nullptr);  // warm-up
    qps1 = saturatedQps(one.port(), cloud, clients, perClient, &p99_1);
  }
  std::printf("1 shard : %8.0f req/s  (p99 %.1f ms)\n", qps1, p99_1 / 1e3);

  // The 4-shard leg doubles as the hot-swap soak: snapshots republish
  // continuously under live socket load; the gate below requires every
  // request answered and completions intact.
  std::atomic<bool> swapping{true};
  (void)shards;  // acceptance fixes the shard counts at 1 and 4
  std::uint64_t submittedBefore = 0, answered = 0, submitted = 0;
  {
    serve::NetServer four(serverConfig(4, clients * perClient), registry);
    saturatedQps(four.port(), cloud, 1, 64, nullptr);  // warm-up
    submittedBefore = four.metrics().predict.submitted;
    std::thread publisher([&] {
      auto alt = core::cloneForInference(model);
      while (swapping.load()) {
        registry->publish(alt, "hot-swap");
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
    qps4 = saturatedQps(four.port(), cloud, clients, perClient, &p99_4);
    swapping.store(false);
    publisher.join();
    const auto rep = four.metrics();
    submitted = rep.predict.submitted - submittedBefore;
    answered = rep.predict.completed + rep.predict.rejected +
               rep.predict.shed + rep.predict.deadlineTimeouts -
               submittedBefore;
  }
  std::printf("4 shards: %8.0f req/s  (p99 %.1f ms, hot-swapping "
              "throughout)\n\n",
              qps4, p99_4 / 1e3);

  const double ratio = qps4 / qps1;
  const bool ratioPass = ratio >= gateRatio;
  const bool p99Pass = p99_4 / 1e3 <= p99BoundMs;
  const bool swapPass =
      answered == submitted &&
      submitted >= static_cast<std::uint64_t>(clients * perClient);
  std::printf("multi-worker scaling: %.2fx (gate >= %.1fx: %s)\n", ratio,
              gateRatio, ratioPass ? "PASS" : "FAIL");
  std::printf("p99 at 4 shards: %.1f ms (bound %.0f ms: %s)\n", p99_4 / 1e3,
              p99BoundMs, p99Pass ? "PASS" : "FAIL");
  std::printf("hot-swap accounting: %llu/%llu answered (%s)\n",
              static_cast<unsigned long long>(answered),
              static_cast<unsigned long long>(submitted),
              swapPass ? "PASS" : "FAIL");

  if (!jsonPath.empty()) {
    std::FILE* f = std::fopen(jsonPath.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", jsonPath.c_str());
      return 2;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"serve_loadgen\",\n"
                 "  \"setup\": \"reduced_model_%ldpt_4clients_pipelined\",\n"
                 "  \"qps_1shard\": %.1f,\n"
                 "  \"qps_4shard\": %.1f,\n"
                 "  \"ratio\": %.4f,\n"
                 "  \"threshold\": %.2f,\n"
                 "  \"p99_ms_4shard\": %.2f,\n"
                 "  \"p99_bound_ms\": %.1f,\n"
                 "  \"hot_swap_answered\": %llu,\n"
                 "  \"hot_swap_submitted\": %llu,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 points, qps1, qps4, ratio, gateRatio, p99_4 / 1e3, p99BoundMs,
                 static_cast<unsigned long long>(answered),
                 static_cast<unsigned long long>(submitted),
                 ratioPass && p99Pass && swapPass ? "true" : "false");
    std::fclose(f);
  }
  return ratioPass && p99Pass && swapPass ? 0 : 1;
}

/// Fig 4 reproduction: PIConGPU FOM weak scaling.
///
/// Paper: weak scaling from 24 GPUs (6 nodes) to 36 864 GPUs (9216 nodes)
/// on Frontier, reaching 65.3 TeraUpdates/s average FOM vs 14.7 on Summit
/// (FOM = 0.9 * particle updates/s + 0.1 * cell updates/s).
///
/// Part A measures the real weak scaling of our PIC substrate across
/// thread ranks ("GCDs") on this machine, as an A/B of the two rank
/// particle paths: the legacy split update (gather sweep + re-binning
/// tiled deposit, the pre-fused DistributedSimulation) vs the fused
/// single-pass supercell pipeline the rank stepper now runs. Part B maps
/// the paper-scale curve through the calibrated cluster model (per-GPU
/// FOM from the paper's own full-system measurement).
///
///   ./bench/bench_fig4_fom_scaling [--acceptance[=ratio]]
///                                  [--json <path>] [steps] [repeats]
///
/// --acceptance gates fused >= ratio x split (default 1.5) at 4 ranks
/// and exits nonzero on failure; --json writes the measurement (CI
/// uploads it as the BENCH_fig4 artifact). The fused path's bit-identity
/// against the single-rank Simulation is asserted on the way (the
/// determinism contract of pic/domain.hpp; tests/pic/test_domain.cpp is
/// the exhaustive version).
#ifdef _OPENMP
#include <omp.h>
#endif

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "cluster/collectives.hpp"
#include "common/ascii.hpp"
#include "common/timer.hpp"
#include "pic/domain.hpp"
#include "pic/khi.hpp"

using namespace artsci;
using pic::ParticlePipeline;

namespace {

/// Weak-scaling KHI box: 16x32x8 cells and 4 ppc per rank, grown along x.
pic::KhiConfig weakKhi(std::size_t ranks) {
  pic::KhiConfig kcfg;
  kcfg.grid = pic::GridSpec{16 * static_cast<long>(ranks), 32, 8, 0.25,
                            0.25, 0.25};
  kcfg.dt = 0.1;
  kcfg.particlesPerCell = 4;
  return kcfg;
}

std::unique_ptr<pic::DistributedSimulation> makeDistributed(
    std::size_t ranks, ParticlePipeline pipeline) {
  const pic::KhiConfig kcfg = weakKhi(ranks);
  pic::DistributedSimulation::Config dc;
  dc.grid = kcfg.grid;
  dc.dt = kcfg.dt;
  dc.ranks = ranks;
  dc.pipeline = pipeline;
  auto sim = std::make_unique<pic::DistributedSimulation>(dc);

  pic::SimulationConfig tmpCfg;
  tmpCfg.grid = kcfg.grid;
  tmpCfg.dt = kcfg.dt;
  pic::Simulation staging(tmpCfg);
  const auto sp = pic::initializeKhi(staging, kcfg);
  const auto e = sim->addSpecies(staging.species(sp.electrons).info());
  const auto i = sim->addSpecies(staging.species(sp.ions).info());
  sim->staging(e).append(staging.species(sp.electrons));
  sim->staging(i).append(staging.species(sp.ions));
  sim->distribute();
  return sim;
}

/// Best-of-`repeats` FOM (0.9*particle + 0.1*cell updates per second)
/// over `steps` distributed steps. Fresh simulation per repeat: identical
/// start state and trajectory across pipelines and repeats.
double measureFom(std::size_t ranks, ParticlePipeline pipeline, int steps,
                  int repeats) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    auto sim = makeDistributed(ranks, pipeline);
    sim->run(2);  // warm-up (thread pools, tile stores, caches)
    const double before = sim->fom().particleUpdates;
    const double beforeT = sim->fom().seconds;
    sim->run(steps);
    const double particles = sim->fom().particleUpdates - before;
    const double cells =
        static_cast<double>(sim->grid().cellCount() * steps);
    const double seconds = sim->fom().seconds - beforeT;
    best = std::max(best, (0.9 * particles + 0.1 * cells) / seconds);
  }
  return best;
}

bool sameField(const pic::Field3& x, const pic::Field3& y) {
  return x.raw().size() == y.raw().size() &&
         std::memcmp(x.raw().data(), y.raw().data(),
                     x.raw().size() * sizeof(double)) == 0;
}

/// The rank stepper's contract: fused multi-rank E/B/J bit-identical to
/// the single-rank fused Simulation on the same trajectory.
bool fusedBitIdenticalToSingleRank(std::size_t ranks, int steps) {
  auto dist = makeDistributed(ranks, ParticlePipeline::Fused);
  const pic::KhiConfig kcfg = weakKhi(ranks);
  pic::SimulationConfig scfg;
  scfg.grid = kcfg.grid;
  scfg.dt = kcfg.dt;
  pic::Simulation ref(scfg);
  pic::initializeKhi(ref, kcfg);
  dist->run(steps);
  ref.run(steps);
  const auto sameVec = [](const pic::VectorField& a,
                          const pic::VectorField& b) {
    return sameField(a.x, b.x) && sameField(a.y, b.y) &&
           sameField(a.z, b.z);
  };
  return sameVec(dist->fieldE(), ref.fieldE()) &&
         sameVec(dist->fieldB(), ref.fieldB()) &&
         sameVec(dist->currentJ(), ref.currentJ());
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = -1;
  const char* jsonPath = nullptr;
  int steps = 10, repeats = 3;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--acceptance") == 0) {
      threshold = 1.5;
    } else if (std::strncmp(arg, "--acceptance=", 13) == 0) {
      char* end = nullptr;
      threshold = std::strtod(arg + 13, &end);
      if (end == arg + 13 || *end != '\0' || !(threshold > 0)) {
        std::fprintf(stderr,
                     "invalid %s — expected --acceptance=<ratio> with "
                     "ratio > 0 (e.g. --acceptance=1.5)\n",
                     arg);
        return 2;
      }
    } else if (std::strcmp(arg, "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      jsonPath = arg + 7;
    } else if (arg[0] == '-') {
      std::fprintf(stderr,
                   "unknown option %s — usage: bench_fig4_fom_scaling "
                   "[--acceptance[=ratio]] [--json <path>] "
                   "[steps] [repeats]\n",
                   arg);
      return 2;
    } else {
      (positional == 0 ? steps : repeats) = std::atoi(arg);
      ++positional;
    }
  }
  if (steps < 1 || repeats < 1) {
    std::fprintf(stderr, "steps and repeats must be >= 1\n");
    return 2;
  }

#ifdef _OPENMP
  const bool haveOmp = true;
#else
  // Without OpenMP the split rank path is rejected by the constructor
  // (its deposit would race); the A/B degenerates to 1 rank.
  const bool haveOmp = false;
#endif
  const std::size_t gateRanks = haveOmp ? 4 : 1;

  std::printf("==============================================================\n");
  std::printf("Fig 4 — PIConGPU FOM weak scaling (TeraUpdates/s)\n");
  std::printf("==============================================================\n\n");

  std::printf("[A] Measured: thread-rank domain decomposition, split vs\n");
  std::printf("    fused rank particle path (weak scaling: 16x32x8 cells,\n");
  std::printf("    ~%d particles per rank; %d steps, best of %d)\n\n",
              16 * 32 * 8 * 4 * 2, steps, repeats);

  const bool identical =
      fusedBitIdenticalToSingleRank(gateRanks, /*steps=*/3);
  std::printf("fused %zu-rank vs single-rank E/B/J after 3 steps: %s\n\n",
              gateRanks, identical ? "bit-identical" : "MISMATCH");

  double gateRatio = 0.0;
  {
    std::vector<std::vector<std::string>> rows;
    for (std::size_t ranks : {1u, 2u, 4u, 8u}) {
      if (!haveOmp && ranks > 1) continue;
      const double fused =
          measureFom(ranks, ParticlePipeline::Fused, steps, repeats);
      const double split =
          (haveOmp || ranks == 1)
              ? measureFom(ranks, ParticlePipeline::Split, steps, repeats)
              : 0.0;
      const double ratio = split > 0 ? fused / split : 0.0;
      rows.push_back({std::to_string(ranks), ascii::eng(split, 2) + "Upd/s",
                      ascii::eng(fused, 2) + "Upd/s",
                      ascii::num(ratio, 2) + "x"});
      if (ranks == gateRanks) gateRatio = ratio;
    }
    std::printf("%s\n",
                ascii::table({"ranks", "split FOM", "fused FOM", "fused/x"},
                             rows)
                    .c_str());
  }

  const double gate = threshold > 0 ? threshold : 1.5;
  const bool pass = identical && gateRatio >= gate;
  std::printf(
      "acceptance (bit-identical vs single rank, fused >= %.2fx split @ "
      "%zu ranks): %.2fx -> %s\n\n",
      gate, gateRanks, gateRatio, pass ? "PASS" : "FAIL");

  std::printf("[B] Modeled: calibrated Frontier/Summit curve (paper scale)\n\n");
  const auto frontier = cluster::ClusterSpec::frontier();
  const auto summit = cluster::ClusterSpec::summit();
  std::vector<std::vector<std::string>> rows;
  std::vector<double> gpusAxis, fomFrontier;
  for (long gpus : {24L, 96L, 384L, 1536L, 6144L, 18432L, 36864L}) {
    const double fomF = cluster::picFomModel(frontier, gpus);
    const double fomS =
        gpus <= 27648 ? cluster::picFomModel(summit, gpus) : 0.0;
    gpusAxis.push_back(static_cast<double>(gpus));
    fomFrontier.push_back(fomF / 1e12);
    rows.push_back({std::to_string(gpus), ascii::num(fomF / 1e12, 1) + " TU/s",
                    gpus <= 27648 ? ascii::num(fomS / 1e12, 2) + " TU/s"
                                  : "-"});
  }
  std::printf("%s\n", ascii::table({"GPUs", "Frontier FOM", "Summit FOM"},
                                   rows)
                          .c_str());
  std::printf("%s\n",
              ascii::plot(gpusAxis,
                          {{"Frontier FOM [TeraUpdates/s]", fomFrontier,
                            '*'}},
                          72, 18, /*logX=*/true, /*logY=*/true,
                          "Fig 4 shape (log-log): near-linear weak scaling")
                  .c_str());
  std::printf(
      "paper reference: 65.3 TeraUpdates/s on full Frontier (36864 GPUs), "
      "14.7 on Summit\n");
  std::printf("modeled full systems: %.1f / %.1f TeraUpdates/s\n",
              cluster::picFomModel(frontier, 36864) / 1e12,
              cluster::picFomModel(summit, 27648) / 1e12);

  if (jsonPath != nullptr) {
    std::FILE* f = std::fopen(jsonPath, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", jsonPath);
      return 2;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"fig4_rank_pipeline_acceptance\",\n"
                 "  \"setup\": \"khi_weak_16x32x8_ppc4_per_rank\",\n"
                 "  \"ranks\": %zu,\n"
                 "  \"steps\": %d,\n"
                 "  \"bit_identical\": %s,\n"
                 "  \"ratio\": %.4f,\n"
                 "  \"threshold\": %.4f,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 gateRanks, steps, identical ? "true" : "false", gateRatio,
                 gate, pass ? "true" : "false");
    std::fclose(f);
  }
  if (threshold > 0) return pass ? 0 : 1;
  return identical ? 0 : 1;
}

/// Fig 4 reproduction: PIConGPU FOM weak scaling.
///
/// Paper: weak scaling from 24 GPUs (6 nodes) to 36 864 GPUs (9216 nodes)
/// on Frontier, reaching 65.3 TeraUpdates/s average FOM vs 14.7 on Summit
/// (FOM = 0.9 * particle updates/s + 0.1 * cell updates/s).
///
/// Part A measures the real weak scaling of our PIC substrate across
/// thread ranks ("GCDs") on this machine; Part B maps the paper-scale
/// curve through the calibrated cluster model (per-GPU FOM from the
/// paper's own full-system measurement).
#include <cstdio>

#include "cluster/collectives.hpp"
#include "common/ascii.hpp"
#include "pic/domain.hpp"
#include "pic/khi.hpp"

using namespace artsci;

namespace {

double measureFom(std::size_t ranks, long stepsPerRun) {
  // Weak scaling: grow the box along x with the rank count.
  pic::DistributedSimulation::Config dc;
  dc.grid = pic::GridSpec{16 * static_cast<long>(ranks), 32, 8, 0.25, 0.25,
                          0.25};
  dc.dt = 0.1;
  dc.ranks = ranks;
  pic::DistributedSimulation sim(dc);

  pic::KhiConfig kcfg;
  kcfg.grid = dc.grid;
  kcfg.dt = dc.dt;
  kcfg.particlesPerCell = 4;
  pic::SimulationConfig tmpCfg;
  tmpCfg.grid = kcfg.grid;
  tmpCfg.dt = kcfg.dt;
  pic::Simulation staging(tmpCfg);
  const auto sp = pic::initializeKhi(staging, kcfg);
  const auto e = sim.addSpecies(staging.species(sp.electrons).info());
  const auto i = sim.addSpecies(staging.species(sp.ions).info());
  sim.staging(e).append(staging.species(sp.electrons));
  sim.staging(i).append(staging.species(sp.ions));
  sim.distribute();

  sim.run(2);  // warm-up (thread pools, caches)
  pic::DistributedSimulation::Config dummy;  // keep FOM of timed phase only
  (void)dummy;
  const double before = sim.fom().particleUpdates;
  const double beforeT = sim.fom().seconds;
  sim.run(stepsPerRun);
  const double particles = sim.fom().particleUpdates - before;
  const double cells =
      static_cast<double>(dc.grid.cellCount() * stepsPerRun);
  const double seconds = sim.fom().seconds - beforeT;
  return (0.9 * particles + 0.1 * cells) / seconds;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Fig 4 — PIConGPU FOM weak scaling (TeraUpdates/s)\n");
  std::printf("==============================================================\n\n");

  std::printf("[A] Measured: this machine, thread-rank domain decomposition\n");
  std::printf("    (weak scaling: 16x32x8 cells and ~%d particles per rank)\n\n",
              16 * 32 * 8 * 4 * 2);
  {
    std::vector<std::vector<std::string>> rows;
    double fom1 = 0;
    for (std::size_t ranks : {1u, 2u, 4u, 8u, 12u}) {
      const double fom = measureFom(ranks, 10);
      if (ranks == 1) fom1 = fom;
      const double eff = fom / (fom1 * static_cast<double>(ranks)) * 100.0;
      rows.push_back({std::to_string(ranks), ascii::eng(fom, 2) + "Upd/s",
                      ascii::num(eff, 1) + " %"});
    }
    std::printf("%s\n",
                ascii::table({"ranks", "measured FOM", "weak-scaling eff"},
                             rows)
                    .c_str());
  }

  std::printf("[B] Modeled: calibrated Frontier/Summit curve (paper scale)\n\n");
  const auto frontier = cluster::ClusterSpec::frontier();
  const auto summit = cluster::ClusterSpec::summit();
  std::vector<std::vector<std::string>> rows;
  std::vector<double> gpusAxis, fomFrontier;
  for (long gpus : {24L, 96L, 384L, 1536L, 6144L, 18432L, 36864L}) {
    const double fomF = cluster::picFomModel(frontier, gpus);
    const double fomS =
        gpus <= 27648 ? cluster::picFomModel(summit, gpus) : 0.0;
    gpusAxis.push_back(static_cast<double>(gpus));
    fomFrontier.push_back(fomF / 1e12);
    rows.push_back({std::to_string(gpus), ascii::num(fomF / 1e12, 1) + " TU/s",
                    gpus <= 27648 ? ascii::num(fomS / 1e12, 2) + " TU/s"
                                  : "-"});
  }
  std::printf("%s\n", ascii::table({"GPUs", "Frontier FOM", "Summit FOM"},
                                   rows)
                          .c_str());
  std::printf("%s\n",
              ascii::plot(gpusAxis,
                          {{"Frontier FOM [TeraUpdates/s]", fomFrontier,
                            '*'}},
                          72, 18, /*logX=*/true, /*logY=*/true,
                          "Fig 4 shape (log-log): near-linear weak scaling")
                  .c_str());
  std::printf(
      "paper reference: 65.3 TeraUpdates/s on full Frontier (36864 GPUs), "
      "14.7 on Summit\n");
  std::printf("modeled full systems: %.1f / %.1f TeraUpdates/s\n",
              cluster::picFomModel(frontier, 36864) / 1e12,
              cluster::picFomModel(summit, 27648) / 1e12);
  return 0;
}

/// Fig 9 reproduction: predictive capability of the in-transit trained
/// model. Trains the Artificial Scientist on a live streamed KHI
/// simulation, then compares per region (approaching / receding / vortex):
///   (a) radiation spectra — ground truth vs INN forward prediction,
///   (b) ground-truth momentum (u_x) distributions,
///   (c) ML-predicted momentum distributions from inverted spectra,
/// plus the latent-space region classification the paper argues for.
#include <cstdio>
#include <thread>

#include "common/ascii.hpp"
#include "common/config.hpp"
#include "core/evaluate.hpp"
#include "core/pipeline.hpp"
#include "radiation/detector.hpp"

using namespace artsci;

int main(int argc, char** argv) {
  const Config cli = Config::fromArgs(argc, argv);
  std::printf("==============================================================\n");
  std::printf("Fig 9 — inversion: radiation spectra -> momentum distributions\n");
  std::printf("==============================================================\n\n");

  auto cfg = core::PipelineConfig::quickDemo();
  cfg.producer.khi.grid = pic::GridSpec{16, 32, 4, 0.25, 0.25, 0.25};
  cfg.producer.warmupSteps = 5;
  cfg.producer.totalSteps = cli.getInt("steps", 70);
  cfg.producer.streamEvery = 2;
  cfg.nRep = cli.getInt("nrep", 6);
  cfg.trainer.ranks = static_cast<std::size_t>(cli.getInt("ranks", 2));
  cfg.trainer.baseLearningRate = cli.getDouble("lr", 4e-4);

  std::printf("training in-transit: %ld PIC steps, n_rep=%ld, %zu DDP ranks\n",
              cfg.producer.totalSteps, cfg.nRep, cfg.trainer.ranks);
  auto run = core::runPipeline(cfg);
  const auto& hist = run.result.train.lossHistory;
  std::printf("streamed %ld iterations (%zu samples, %.1f MB); trained %ld "
              "batches\n",
              run.result.iterationsStreamed, run.result.samplesReceived,
              static_cast<double>(run.result.bytesStreamed) / 1e6,
              run.result.train.iterations);
  if (!hist.empty()) {
    std::printf("loss: first %.4f -> last %.4f\n\n", hist.front(),
                hist.back());
  }

  // Held-out ground truth from a fresh simulation seed.
  core::ProducerConfig pcfg = cfg.producer;
  pcfg.seed = 555;
  pcfg.totalSteps = 12;
  pcfg.streamEvery = 4;
  auto pEng = std::make_shared<stream::SstEngine>(stream::SstParams{1, 1, 4});
  auto rEng = std::make_shared<stream::SstEngine>(stream::SstParams{1, 1, 4});
  core::KhiStreamProducer producer(pcfg, pEng, rEng);
  std::thread producerThread([&] { producer.run(); });
  openpmd::Series pRead("particles", openpmd::Access::kRead,
                        openpmd::StreamBackend::forReader(pEng, 0));
  openpmd::Series rRead("radiation", openpmd::Access::kRead,
                        openpmd::StreamBackend::forReader(rEng, 0));
  std::vector<core::Sample> groundTruth;
  for (;;) {
    auto itP = pRead.readNextIteration();
    auto itR = rRead.readNextIteration();
    if (!itP || !itR) break;
    for (int r = 0; r < 3; ++r) {
      if (!itP->data.count(core::cloudPath(r))) continue;
      core::Sample s;
      s.cloud = itP->data.at(core::cloudPath(r));
      s.spectrum = itR->data.at(core::spectrumPath(r));
      s.region = r;
      groundTruth.push_back(std::move(s));
    }
  }
  producerThread.join();

  Rng rng(41);
  core::EvaluationConfig ecfg;
  ecfg.inversionDraws = 12;
  const auto evals = core::evaluateInversion(
      run.trainer->model(), cfg.producer.transform, groundTruth, ecfg, rng);

  const auto freqs = radiation::logFrequencyAxis(
      cfg.producer.omegaMin, cfg.producer.omegaMax,
      cfg.producer.frequencyCount);

  for (const auto& e : evals) {
    std::printf("--- region: %s ---------------------------------------\n",
                pic::khiRegionName(e.region));
    std::printf("%s\n",
                ascii::plot(freqs,
                            {{"ground truth (normalized)", e.spectrumTruth,
                              '#'},
                             {"ML prediction", e.spectrumPred, '+'}},
                            70, 12, /*logX=*/true, /*logY=*/false,
                            "(a) radiation spectrum vs omega/omega_pe")
                    .c_str());
    std::printf("(b) ground-truth momentum u_x (charge density, log bars)\n%s\n",
                e.momentumTruth.renderAscii(46, true).c_str());
    std::printf("(c) ML-predicted momentum u_x from inverted spectra\n%s\n",
                e.momentumPred.renderAscii(46, true).c_str());
    std::printf("mean u_x: truth %+0.4f  predicted %+0.4f\n",
                e.meanTruth, e.meanPred);
    const auto peaks = e.momentumPred.findPeaks(0.25, 4);
    std::printf("predicted distribution peaks: %zu%s\n\n", peaks.size(),
                e.region == pic::KhiRegion::kVortex
                    ? "  (paper: vortex region shows two populations)"
                    : "");
  }

  // Region classification from the latent space.
  const std::size_t half = groundTruth.size() / 2;
  std::vector<core::Sample> train(groundTruth.begin(),
                                  groundTruth.begin() + half);
  std::vector<core::Sample> test(groundTruth.begin() + half,
                                 groundTruth.end());
  if (!train.empty() && !test.empty()) {
    const double acc = core::latentRegionClassificationAccuracy(
        run.trainer->model(), train, test);
    std::printf("latent nearest-centroid region classification: %.0f %% "
                "(chance 33 %%)\n",
                100.0 * acc);
  }
  std::printf(
      "\npaper: momentum distributions of bulk regions reconstruct well;\n"
      "vortex region shows two populations; regions classify unambiguously\n");
  return 0;
}

/// Deposition-mode A/B benchmark: atomic vs deterministic tiled current
/// deposition (pic/deposit_buffer.hpp) across OMP thread counts and
/// particle densities, on the quick-demo KHI box (32x64x8, the paper's
/// reduced setup). The deposition hot loop is the producer's dominant
/// cost: atomics serialize under particle-per-cell contention, private
/// tiles don't — and the tiled path is bit-reproducible on top.
///
/// Acceptance target: tiled throughput >= atomic at 8 threads on the
/// quick-demo density (9 particles per cell).
///
///   ./bench/bench_deposit_modes [--json <path>] [repeats=3]
///
/// --json writes the gate measurement (tiled/atomic ratio at 8 threads,
/// ppc 9) for the CI perf-trajectory artifact.
#ifdef _OPENMP
#include <omp.h>
#endif

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "pic/deposit.hpp"
#include "pic/deposit_buffer.hpp"
#include "pic/khi.hpp"
#include "pic/simulation.hpp"

using namespace artsci;
using pic::DepositMode;

namespace {

struct Workload {
  pic::GridSpec grid;
  pic::ParticleBuffer particles{{-1.0, 1.0, "e"}};  ///< post-move, unwrapped
  std::vector<double> oldX, oldY, oldZ;             ///< pre-move, wrapped
  double dt = 0.08;
};

/// KHI electrons at the requested density, with one Boris-free "move":
/// new position = old + v dt (the same sub-cell displacement the real
/// step produces, counter-streaming beta = +-0.2).
Workload makeWorkload(int particlesPerCell) {
  pic::KhiConfig kcfg;  // quick-demo box 32x64x8
  kcfg.particlesPerCell = particlesPerCell;
  pic::SimulationConfig scfg;
  scfg.grid = kcfg.grid;
  scfg.dt = kcfg.dt;
  pic::Simulation sim(scfg);
  const pic::KhiSpecies species = pic::initializeKhi(sim, kcfg);

  Workload w;
  w.grid = kcfg.grid;
  w.dt = kcfg.dt;
  const pic::ParticleBuffer& e = sim.species(species.electrons);
  w.particles = e;
  w.oldX.assign(e.x.begin(), e.x.end());
  w.oldY.assign(e.y.begin(), e.y.end());
  w.oldZ.assign(e.z.begin(), e.z.end());
  for (std::size_t i = 0; i < w.particles.size(); ++i) {
    const double g = e.gamma(i);
    w.particles.x[i] += e.ux[i] / g * w.dt / w.grid.dx;
    w.particles.y[i] += e.uy[i] / g * w.dt / w.grid.dy;
    w.particles.z[i] += e.uz[i] / g * w.dt / w.grid.dz;
  }
  return w;
}

double particlesPerSecond(const Workload& w, DepositMode mode, int repeats,
                          pic::DepositBuffer* scratch) {
  pic::VectorField J(w.grid);
  // Warm-up (first-touch of J and the tile store).
  J.fill(0.0);
  pic::depositCurrent(J, w.grid, w.particles, w.oldX, w.oldY, w.oldZ, w.dt,
                      mode, scratch);
  Timer timer;
  for (int r = 0; r < repeats; ++r) {
    J.fill(0.0);
    pic::depositCurrent(J, w.grid, w.particles, w.oldX, w.oldY, w.oldZ, w.dt,
                        mode, scratch);
  }
  return static_cast<double>(w.particles.size()) * repeats / timer.seconds();
}

void setThreads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  int repeats = 3;
  const char* jsonPath = nullptr;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      jsonPath = arg + 7;
    } else if (arg[0] == '-') {
      std::fprintf(stderr,
                   "unknown option %s — usage: bench_deposit_modes "
                   "[--json <path>] [repeats]\n",
                   arg);
      return 2;
    } else {
      repeats = std::atoi(arg);
    }
  }
  if (repeats < 1) {
    std::fprintf(stderr, "repeats must be >= 1\n");
    return 2;
  }
#ifdef _OPENMP
  const bool haveOmp = true;
#else
  const bool haveOmp = false;
#endif
  std::printf("deposit-mode A/B: quick-demo KHI box 32x64x8, repeats=%d%s\n",
              repeats, haveOmp ? "" : " (no OpenMP: serial only)");
  std::printf("%6s %8s %10s | %14s %14s | %7s\n", "ppc", "threads",
              "particles", "atomic p/s", "tiled p/s", "tiled/x");

  bool pass = true;
  double gateRatio = 0.0;
  const int gateThreads = haveOmp ? 8 : 1;
  for (int ppc : {9, 36}) {
    const Workload w = makeWorkload(ppc);
    pic::DepositBuffer scratch(w.grid);
    for (int threads : {1, 2, 4, 8}) {
      if (!haveOmp && threads > 1) continue;
      setThreads(threads);
      const double atomicRate =
          particlesPerSecond(w, DepositMode::Atomic, repeats, nullptr);
      const double tiledRate =
          particlesPerSecond(w, DepositMode::Tiled, repeats, &scratch);
      const double speedup = tiledRate / atomicRate;
      std::printf("%6d %8d %10zu | %14.3e %14.3e | %6.2fx\n", ppc, threads,
                  w.particles.size(), atomicRate, tiledRate, speedup);
      if (ppc == 9 && threads == gateThreads) {
        gateRatio = speedup;
        if (tiledRate < atomicRate) pass = false;
      }
    }
  }
  std::printf("acceptance (tiled >= atomic @ 8 threads, ppc 9): %s\n",
              pass ? "PASS" : "FAIL");

  if (jsonPath != nullptr) {
    std::FILE* f = std::fopen(jsonPath, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", jsonPath);
      return 2;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"deposit_modes\",\n"
                 "  \"setup\": \"khi_quick_demo_32x64x8_ppc9\",\n"
                 "  \"threads\": %d,\n"
                 "  \"ratio\": %.4f,\n"
                 "  \"threshold\": 1.0,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 gateThreads, gateRatio, pass ? "true" : "false");
    std::fclose(f);
  }
  return pass ? 0 : 1;
}

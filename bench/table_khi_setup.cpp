/// §IV-A in-text numbers: the paper's smallest KHI configuration.
/// Recomputes every derived quantity from first principles and compares
/// against the stated values (dx = 93.5 um, dt = 17.9 fs, n0 = 1e25 m^-3,
/// beta = 0.2, 9 ppc, 192x256x12 cells on 16 GPUs), plus the full-run
/// bookkeeping (2.7e13 macroparticles in 1e12 cells, 5.86 GB/node/step).
#include <cstdio>

#include "common/ascii.hpp"
#include "common/units.hpp"

using namespace artsci;

int main() {
  std::printf("==============================================================\n");
  std::printf("Table (in-text §IV-A) — KHI setup quantities\n");
  std::printf("==============================================================\n\n");

  const units::PaperKhiSetup setup;
  const double wpe = units::plasmaFrequency(setup.densitySI);
  const double skin = units::skinDepth(setup.densitySI);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"plasma frequency omega_pe", "-",
                  ascii::num(wpe / 1e12, 1) + " THz (rad)"});
  rows.push_back({"skin depth c/omega_pe", "-",
                  ascii::num(skin * 1e6, 2) + " um"});
  rows.push_back({"cell size dx", "93.5 um",
                  ascii::num(setup.cellSizeSI * 1e6, 1) + " um = " +
                      ascii::num(setup.cellSizePlasma(), 1) +
                      " c/omega_pe"});
  rows.push_back({"time step dt", "17.9 fs",
                  ascii::num(setup.timeStepSI * 1e15, 1) + " fs = " +
                      ascii::num(setup.timeStepPlasma(), 2) +
                      " /omega_pe"});
  rows.push_back({"CFL number (cubic Yee)", "< 1",
                  ascii::num(setup.cflNumber(), 3)});
  rows.push_back({"stream velocity beta", "0.2",
                  ascii::num(setup.beta, 2) + "  (gamma = " +
                      ascii::num(units::gammaOfBeta(setup.beta), 4) + ")"});
  rows.push_back(
      {"Doppler cutoff ratio (1+b)/(1-b)", "-",
       ascii::num((1 + setup.beta) / (1 - setup.beta), 2) + "x"});
  const double cells = static_cast<double>(setup.cellsX) * setup.cellsY *
                       setup.cellsZ;
  rows.push_back({"smallest box", "192x256x12 on 16 GPUs",
                  ascii::eng(cells, 1) + " cells, " +
                      ascii::eng(cells * setup.particlesPerCell, 1) +
                      " macroparticles/species"});

  // Full-scale bookkeeping (paper: 2.7e13 macroparticles in 1e12 cells).
  const double fullCells = 1e12;
  const double fullParticles = 2.7e13;
  rows.push_back({"full-run cells", "1e12", ascii::eng(fullCells, 1)});
  rows.push_back({"full-run macroparticles", "2.7e13",
                  ascii::eng(fullParticles, 1) + " (" +
                      ascii::num(fullParticles / fullCells, 1) + " ppc)"});

  // 5.86 GB per node per step: particle data per node. With 9216 nodes,
  // 2.7e13 particles -> 2.93e9 particles/node; 5.86 GB implies 2 bytes per
  // particle-attribute... check the plausible encoding: 2.93e9 particles x
  // 6 attributes x 4 bytes = 70 GB (full), so the benchmark streams a
  // subset (~8%) or reduced precision — we report the raw number.
  const double particlesPerNode = fullParticles / 9216.0;
  rows.push_back({"particles per node (full run)", "-",
                  ascii::eng(particlesPerNode, 2)});
  rows.push_back({"streamed volume per node-step", "5.86 GB",
                  ascii::num(5.86, 2) + " GB (= " +
                      ascii::num(5.86e9 / particlesPerNode, 1) +
                      " B/particle)"});
  // Data rates the introduction quotes.
  rows.push_back({"25% Frontier snapshot", "~1 PB/step", "see §III"});

  std::printf("%s\n",
              ascii::table({"quantity", "paper", "computed"}, rows).c_str());

  std::printf("1000 steps in 6.5 min (paper) -> %.2f s/step at full scale\n",
              6.5 * 60.0 / 1000.0);
  return 0;
}

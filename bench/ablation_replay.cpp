/// Ablation A1 (§V-A.1): continual-learning hyperparameters.
///  * n_rep sweep — the paper samples up to 96 batches per streamed step
///    and finds learning success up to ~48;
///  * experience replay on/off — without the EP buffer the model forgets
///    early stream phases (catastrophic forgetting on the non-steady KHI);
///  * sqrt learning-rate scaling across rank counts.
#include <cstdio>

#include "common/ascii.hpp"
#include "core/trainer.hpp"
#include "ml/optim.hpp"

using namespace artsci;

namespace {

/// A drifting synthetic stream: phase 0 emits clouds with +u drift, later
/// phases drift negative — a caricature of the KHI's non-steady stages.
core::Sample phaseSample(Rng& rng, int phase, long points, long specDim) {
  const double mean = phase == 0 ? 0.7 : (phase == 1 ? 0.0 : -0.7);
  core::Sample s;
  s.cloud.resize(static_cast<std::size_t>(points) * 6);
  for (long p = 0; p < points; ++p) {
    for (int c = 0; c < 3; ++c)
      s.cloud[static_cast<std::size_t>(p * 6 + c)] = rng.uniform(-1, 1);
    s.cloud[static_cast<std::size_t>(p * 6 + 3)] = mean + rng.normal(0, 0.05);
    s.cloud[static_cast<std::size_t>(p * 6 + 4)] = rng.normal(0, 0.05);
    s.cloud[static_cast<std::size_t>(p * 6 + 5)] = rng.normal(0, 0.05);
  }
  s.spectrum.assign(static_cast<std::size_t>(specDim),
                    0.5 + 0.2 * mean);
  s.region = phase;
  return s;
}

/// Stream 3 phases x 12 samples with n_rep training iterations per sample;
/// returns the final loss on held-out phase-0 data (forgetting metric).
double runStream(long nRep, std::size_t epPerBatch, double& finalLoss) {
  auto mcfg = core::ArtificialScientistModel::Config::reduced();
  core::TrainerConfig tcfg;
  tcfg.ranks = 2;
  tcfg.buffer.epPerBatch = epPerBatch;
  core::InTransitTrainer trainer(mcfg, tcfg);
  Rng rng(5);
  for (int phase = 0; phase < 3; ++phase) {
    for (int i = 0; i < 12; ++i) {
      trainer.buffer().push(phaseSample(rng, phase, 64, mcfg.spectrumDim));
      trainer.trainIterations(nRep);
    }
  }
  finalLoss = trainer.stats().lossHistory.empty()
                  ? 0.0
                  : trainer.stats().lossHistory.back();

  // Forgetting metric: loss on fresh phase-0 samples after the stream
  // has moved on to phase 2.
  Rng evalRng(77);
  std::vector<core::Sample> oldPhase;
  for (int i = 0; i < 8; ++i)
    oldPhase.push_back(phaseSample(evalRng, 0, 64, mcfg.spectrumDim));
  ml::Tensor clouds = core::batchClouds(oldPhase, 64);
  ml::Tensor spectra = core::batchSpectra(oldPhase, mcfg.spectrumDim);
  Rng lossRng(78);
  return trainer.model().loss(clouds, spectra, lossRng).item();
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Ablation A1 — experience replay & n_rep (paper §IV-C, §V-A.1)\n");
  std::printf("==============================================================\n\n");

  std::printf("[1] n_rep sweep (batches trained per streamed sample)\n\n");
  {
    std::vector<std::vector<std::string>> rows;
    for (long nRep : {1L, 4L, 16L, 48L}) {
      double finalLoss = 0;
      const double oldLoss = runStream(nRep, 4, finalLoss);
      rows.push_back({std::to_string(nRep), ascii::num(finalLoss, 4),
                      ascii::num(oldLoss, 4)});
    }
    std::printf("%s\n",
                ascii::table({"n_rep", "final stream loss",
                              "loss on early-phase data"},
                             rows)
                    .c_str());
    std::printf("paper: more iterations per sample improve convergence up "
                "to n_rep ~ 48\n\n");
  }

  std::printf("[2] experience replay on/off (forgetting on drifting stream)\n\n");
  {
    double lossWith = 0, lossWithout = 0;
    const double oldWith = runStream(8, 4, lossWith);
    const double oldWithout = runStream(8, 0, lossWithout);
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"with EP buffer (n_EP=4)", ascii::num(lossWith, 4),
                    ascii::num(oldWith, 4)});
    rows.push_back({"without EP (n_EP=0)", ascii::num(lossWithout, 4),
                    ascii::num(oldWithout, 4)});
    std::printf("%s\n",
                ascii::table({"configuration", "final stream loss",
                              "loss on early-phase data"},
                             rows)
                    .c_str());
    std::printf("paper: EP avoids catastrophic forgetting of earlier time "
                "steps\n\n");
  }

  std::printf("[3] sqrt learning-rate rule across scales\n\n");
  {
    std::vector<std::vector<std::string>> rows;
    for (long gcds : {32L, 384L, 3072L}) {
      const double lr =
          ml::sqrtScaledLearningRate(1e-6, gcds * 8, 8);
      rows.push_back({std::to_string(gcds),
                      std::to_string(gcds * 8), ascii::num(lr * 1e6, 2) +
                          "e-6"});
    }
    std::printf("%s\n",
                ascii::table({"GCDs", "total batch", "scaled LR"}, rows)
                    .c_str());
    std::printf("paper: base LR 1e-6 scaled by sqrt(batch); separate "
                "l_VAE > l_INN at scale\n");
  }
  return 0;
}

/// Micro-benchmarks (google-benchmark) of the hot kernels across the
/// stack: tensor ops, the losses of Eq.(1), the PIC inner loops and the
/// radiation kernel. These guard against performance regressions in the
/// substrate and calibrate the bench harness constants.
///
/// Besides the google-benchmark suite, `--acceptance[=ratio]` runs a
/// self-contained GEMM acceptance gate: ml::matmul forward+backward (the
/// shared blocked kernels of ml/kernels/gemm.hpp) must beat the naive
/// triple-loop reference by the given factor (default 2.5x; the local
/// target in ROADMAP is 3x). `--json <path>` writes the measurement as a
/// JSON document (CI uploads it as the BENCH_micro_ops artifact).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "ml/arena.hpp"
#include "ml/coupling.hpp"
#include "ml/kernels/gemm.hpp"
#include "ml/layers.hpp"
#include "ml/losses.hpp"
#include "pic/deposit.hpp"
#include "pic/interpolate.hpp"
#include "pic/pusher.hpp"
#include "radiation/detector.hpp"

using namespace artsci;
using namespace artsci::ml;

namespace {

// --- naive GEMM reference --------------------------------------------------
// The pre-kernel-library ml::matmul loops, kept verbatim (including the
// OpenMP row parallelism) as the acceptance baseline and the BM_MatmulNaive
// A/B partner.

void naiveForward(const Real* A, const Real* B, Real* C, long M, long N,
                  long K) {
#pragma omp parallel for schedule(static) if (M * N * K > (1L << 16))
  for (long i = 0; i < M; ++i) {
    Real* crow = C + i * N;
    std::fill(crow, crow + N, Real(0));
    for (long k = 0; k < K; ++k) {
      const Real aik = A[i * K + k];
      const Real* brow = B + k * N;
      for (long j = 0; j < N; ++j) crow[j] += aik * brow[j];
    }
  }
}

void naiveBackward(const Real* A, const Real* B, const Real* G, Real* GA,
                   Real* GB, long M, long N, long K) {
  // dA = G * B^T
#pragma omp parallel for schedule(static) if (M * N * K > (1L << 16))
  for (long i = 0; i < M; ++i) {
    for (long k = 0; k < K; ++k) {
      Real s = Real(0);
      const Real* grow = G + i * N;
      const Real* brow = B + k * N;
      for (long j = 0; j < N; ++j) s += grow[j] * brow[j];
      GA[i * K + k] += s;
    }
  }
  // dB = A^T * G
#pragma omp parallel for schedule(static) if (M * N * K > (1L << 16))
  for (long k = 0; k < K; ++k) {
    Real* gbrow = GB + k * N;
    for (long i = 0; i < M; ++i) {
      const Real aik = A[i * K + k];
      const Real* grow = G + i * N;
      for (long j = 0; j < N; ++j) gbrow[j] += aik * grow[j];
    }
  }
}

void BM_Matmul(benchmark::State& state) {
  const long n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = matmul(a, b);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulNaive(benchmark::State& state) {
  const long n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  std::vector<Real> c(static_cast<std::size_t>(n * n));
  for (auto _ : state) {
    naiveForward(a.data().data(), b.data().data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulBackward(benchmark::State& state) {
  const long n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng, 1, /*requiresGrad=*/true);
  Tensor b = Tensor::randn({n, n}, rng, 1, /*requiresGrad=*/true);
  for (auto _ : state) {
    a.zeroGrad();
    b.zeroGrad();
    Tensor loss = sumAll(matmul(a, b));
    loss.backward();
    benchmark::DoNotOptimize(a.grad().data());
  }
  // forward + two backward products
  state.SetItemsProcessed(state.iterations() * 3 * n * n * n);
}
BENCHMARK(BM_MatmulBackward)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulKPanel(benchmark::State& state) {
  // Tall-K shapes whose B panel exceeds L2: exercises the K-panel cache
  // blocking in gemm_nn (panels are sequential per output element, so the
  // result is bitwise identical to the unpanelled kernel).
  const long k = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({64, k}, rng);
  Tensor b = Tensor::randn({k, 64}, rng);
  for (auto _ : state) {
    Tensor c = matmul(a, b);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 64 * 64 * k);
}
BENCHMARK(BM_MatmulKPanel)->Arg(2048)->Arg(8192);

// A/B pair for the batched small-GEMM entry point: the INN-coupling-sized
// problem list issued as one kernel call vs one OpenMP dispatch per GEMM.
constexpr long kBatchedProblems = 16;

void buildSmallProblems(std::vector<Real>& a, std::vector<Real>& b,
                        std::vector<Real>& c,
                        std::vector<kernels::GemmNnProblem>& probs) {
  const long M = 16, K = 64, N = 48;  // coupling-subnet sized
  Rng rng(9);
  a.resize(static_cast<std::size_t>(kBatchedProblems * M * K));
  b.resize(static_cast<std::size_t>(kBatchedProblems * K * N));
  c.resize(static_cast<std::size_t>(kBatchedProblems * M * N));
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal();
  probs.resize(kBatchedProblems);
  for (long p = 0; p < kBatchedProblems; ++p) {
    probs[static_cast<std::size_t>(p)] = kernels::GemmNnProblem{
        a.data() + p * M * K, b.data() + p * K * N, c.data() + p * M * N,
        M, N, K, -1, false};
  }
}

void BM_GemmBatchedSmall(benchmark::State& state) {
  std::vector<Real> a, b, c;
  std::vector<kernels::GemmNnProblem> probs;
  buildSmallProblems(a, b, c, probs);
  for (auto _ : state) {
    kernels::gemm_batched_nn(probs.data(), kBatchedProblems, true);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatchedProblems * 16 * 48 *
                          64);
}
BENCHMARK(BM_GemmBatchedSmall);

void BM_GemmLoopedSmall(benchmark::State& state) {
  std::vector<Real> a, b, c;
  std::vector<kernels::GemmNnProblem> probs;
  buildSmallProblems(a, b, c, probs);
  for (auto _ : state) {
    for (const auto& p : probs)
      kernels::gemm_nn(p.a, p.b, p.c, p.M, p.N, p.K, false, true);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * kBatchedProblems * 16 * 48 *
                          64);
}
BENCHMARK(BM_GemmLoopedSmall);

void BM_ChamferDistance(benchmark::State& state) {
  const long n = state.range(0);
  Rng rng(2);
  Tensor a = Tensor::randn({4, n, 6}, rng);
  Tensor b = Tensor::randn({4, n, 6}, rng);
  for (auto _ : state) {
    Tensor c = chamferDistance(a, b);
    benchmark::DoNotOptimize(c.item());
  }
  state.SetItemsProcessed(state.iterations() * 4 * n * n);
}
BENCHMARK(BM_ChamferDistance)->Arg(128)->Arg(512);

void BM_MmdImq(benchmark::State& state) {
  const long n = state.range(0);
  Rng rng(3);
  Tensor x = Tensor::randn({n, 32}, rng);
  Tensor y = Tensor::randn({n, 32}, rng);
  for (auto _ : state) {
    Tensor m = mmdInverseMultiquadratic(x, y);
    benchmark::DoNotOptimize(m.item());
  }
}
BENCHMARK(BM_MmdImq)->Arg(32)->Arg(128);

void BM_EncoderForward(benchmark::State& state) {
  Rng rng(4);
  PointNetEncoder::Config cfg;
  cfg.channels = {6, 16, 32, 64};
  cfg.headHidden = 64;
  cfg.latentDim = 64;
  PointNetEncoder enc(cfg, rng);
  Tensor x = Tensor::randn({8, 128, 6}, rng);
  for (auto _ : state) {
    auto m = enc.forward(x);
    benchmark::DoNotOptimize(m.mu.data().data());
  }
}
BENCHMARK(BM_EncoderForward);

void BM_InnForwardInverse(benchmark::State& state) {
  Rng rng(5);
  Inn::Config cfg;
  cfg.dim = 64;
  cfg.blocks = 4;
  cfg.hidden = {48, 48};
  Inn inn(cfg, rng);
  Tensor x = Tensor::randn({8, 64}, rng);
  for (auto _ : state) {
    Tensor y = inn.forward(x);
    Tensor back = inn.inverse(y);
    benchmark::DoNotOptimize(back.data().data());
  }
}
BENCHMARK(BM_InnForwardInverse);

void BM_BorisPush(benchmark::State& state) {
  Vec3d u{0.1, 0.05, -0.02};
  const Vec3d E{0.01, 0.0, 0.02}, B{0.0, 0.0, 1.0};
  for (auto _ : state) {
    u = pic::borisPush(u, E, B, -1.0, 0.05);
    benchmark::DoNotOptimize(u);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BorisPush);

void BM_EsirkepovDeposit(benchmark::State& state) {
  pic::GridSpec g{16, 16, 16, 0.2, 0.2, 0.2};
  pic::VectorField J(g);
  Rng rng(6);
  for (auto _ : state) {
    const double x0 = rng.uniform(2, 14), y0 = rng.uniform(2, 14),
                 z0 = rng.uniform(2, 14);
    pic::depositCurrentEsirkepov(J, g, x0, y0, z0, x0 + 0.3, y0 - 0.2,
                                 z0 + 0.1, -1.0, 0.1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EsirkepovDeposit);

void BM_FieldGather(benchmark::State& state) {
  pic::GridSpec g{32, 32, 32, 0.2, 0.2, 0.2};
  pic::VectorField E(g);
  E.x.fill(1.0);
  Rng rng(7);
  for (auto _ : state) {
    const Vec3d e = pic::gatherE(E, rng.uniform(1, 31), rng.uniform(1, 31),
                                 rng.uniform(1, 31));
    benchmark::DoNotOptimize(e);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FieldGather);

void BM_RadiationKernel(benchmark::State& state) {
  const long particles = state.range(0);
  radiation::DetectorConfig cfg;
  cfg.directions = {Vec3d{1, 0, 0}};
  cfg.frequencies = radiation::logFrequencyAxis(0.1, 100.0, 32);
  radiation::SpectralAccumulator acc(cfg);
  pic::GridSpec grid{16, 16, 16, 0.2, 0.2, 0.2};
  pic::ParticleBuffer p({-1.0, 1.0, "e"});
  Rng rng(8);
  for (long i = 0; i < particles; ++i)
    p.push({rng.uniform(0, 16), rng.uniform(0, 16), rng.uniform(0, 16)},
           {rng.normal(0, 0.2), rng.normal(0, 0.2), 0}, 1.0);
  std::vector<double> bd(p.size(), 0.01);
  for (auto _ : state) {
    acc.accumulate(p, bd, bd, bd, 1.0, 0.1, grid);
  }
  state.SetItemsProcessed(state.iterations() * particles * 32);
}
BENCHMARK(BM_RadiationKernel)->Arg(256)->Arg(1024);

// --- GEMM acceptance gate --------------------------------------------------

struct GemmShapeSpec {
  long M, N, K;
};

struct AcceptanceResult {
  double naiveGflops = 0;
  double blockedGflops = 0;
  double ratio = 0;
  bool pass = false;
};

/// Seconds per iteration of `body`, auto-calibrated to ~0.3 s of work.
template <typename Fn>
double secondsPerIter(Fn&& body) {
  body();  // warm-up / first-touch
  long iters = 1;
  for (;;) {
    Timer t;
    for (long r = 0; r < iters; ++r) body();
    const double s = t.seconds();
    if (s > 0.3 || iters > (1L << 20)) return s / static_cast<double>(iters);
    iters *= 4;
  }
}

/// Forward + backward GF/s of the naive loops vs the blocked autograd path
/// over the given shapes (6*M*N*K flops per iteration each).
AcceptanceResult runGemmAcceptance(double threshold) {
  const GemmShapeSpec shapes[] = {{256, 256, 256}, {200, 120, 72}};
  double naiveSeconds = 0, blockedSeconds = 0, flops = 0;
  for (const auto& s : shapes) {
    Rng rng(1);
    Tensor a = Tensor::randn({s.M, s.K}, rng, 1, /*requiresGrad=*/true);
    Tensor b = Tensor::randn({s.K, s.N}, rng, 1, /*requiresGrad=*/true);
    std::vector<Real> c(static_cast<std::size_t>(s.M * s.N));
    std::vector<Real> g(static_cast<std::size_t>(s.M * s.N), Real(1));
    std::vector<Real> ga(static_cast<std::size_t>(s.M * s.K));
    std::vector<Real> gb(static_cast<std::size_t>(s.K * s.N));

    naiveSeconds += secondsPerIter([&] {
      naiveForward(a.data().data(), b.data().data(), c.data(), s.M, s.N, s.K);
      std::fill(ga.begin(), ga.end(), Real(0));
      std::fill(gb.begin(), gb.end(), Real(0));
      naiveBackward(a.data().data(), b.data().data(), g.data(), ga.data(),
                    gb.data(), s.M, s.N, s.K);
    });
    blockedSeconds += secondsPerIter([&] {
      a.zeroGrad();
      b.zeroGrad();
      Tensor loss = sumAll(matmul(a, b));
      loss.backward();
    });
    flops += 6.0 * static_cast<double>(s.M) * static_cast<double>(s.N) *
             static_cast<double>(s.K);
  }
  AcceptanceResult r;
  r.naiveGflops = flops / naiveSeconds * 1e-9;
  r.blockedGflops = flops / blockedSeconds * 1e-9;
  r.ratio = naiveSeconds / blockedSeconds;
  r.pass = r.ratio >= threshold;
  return r;
}

// --- trainer-step acceptance gate ------------------------------------------
// The PR 9 gate: an INN fwd+bwd training step on the arena + view path
// must beat the pre-refactor execution by the given factor, with
// bit-identical gradients and zero steady-state heap allocations proven
// via Arena::stats(). The baseline runs in the pinned legacy lane
// (ExecOptions::legacyExec: heap tensors, copying ops, hash-set topo
// sort, div/mod elementwise backward indexing — the pre-PR 9 executor,
// kept alive exactly so this comparison stays honest) outside any
// ArenaScope.

struct StepAcceptanceResult {
  double baselineMs = 0;      ///< pre-refactor step (heap + copies)
  double arenaMs = 0;         ///< arena + views steady-state step
  double ratio = 0;
  std::uint64_t steadyAllocs = 0;  ///< mallocs across the timed steps
  bool bitIdentical = false;  ///< grads equal across both paths
  bool pass = false;
};

StepAcceptanceResult runTrainerStepAcceptance(double threshold) {
  Rng rng(7);
  Inn::Config cfg;
  cfg.dim = 64;
  cfg.blocks = 4;
  cfg.hidden = {48, 48};
  Inn inn(cfg, rng);
  Tensor x = Tensor::randn({16, 64}, rng);
  auto params = inn.parameters();

  auto step = [&] {
    for (auto& p : params) p.zeroGrad();
    Tensor loss = sumAll(square(inn.forward(x)));
    loss.backward();
  };
  auto grads = [&] {
    std::vector<Real> g;
    for (const auto& p : params) {
      const Real* gp = p.gradPtr();
      g.insert(g.end(), gp, gp + p.numel());
    }
    return g;
  };

  StepAcceptanceResult r;

  // Baseline: the pre-refactor executor — heap-backed results, copying
  // slice/transpose/reshape semantics, separate activation nodes,
  // per-tensor grad zeroing, hash-set topological sort, generic
  // broadcast-index backward loops.
  execOptions().legacyExec = true;
  step();
  const std::vector<Real> reference = grads();
  execOptions().legacyExec = false;

  // Arena path: warm up until the allocation plan replays.
  Arena arena;
  for (int i = 0; i < 3; ++i) {
    arena.beginStep();
    ArenaScope scope(arena);
    step();
  }
  r.bitIdentical = grads() == reference;

  // Time the two lanes in alternating rounds, keeping each lane's best
  // round. Machine load varies between runs, so timing lane A fully and
  // then lane B can skew the ratio either way; interleaving makes both
  // lanes see the same load profile and the ratio of minima stays stable
  // even when absolute timings drift 2x.
  execOptions().legacyExec = true;
  long iters = 1;
  for (;;) {  // calibrate a round to ~50 ms of legacy-lane work
    Timer t;
    for (long i = 0; i < iters; ++i) step();
    if (t.seconds() > 0.05 || iters > (1L << 18)) break;
    iters *= 4;
  }
  execOptions().legacyExec = false;

  const std::uint64_t allocsBefore = arena.stats().heapAllocations;
  double bestLegacy = 1e300, bestArena = 1e300;
  constexpr int kRounds = 7;
  for (int round = 0; round < kRounds; ++round) {
    execOptions().legacyExec = true;
    {
      Timer t;
      for (long i = 0; i < iters; ++i) step();
      bestLegacy = std::min(bestLegacy, t.seconds() / iters);
    }
    execOptions().legacyExec = false;
    {
      Timer t;
      for (long i = 0; i < iters; ++i) {
        arena.beginStep();
        ArenaScope scope(arena);
        step();
      }
      bestArena = std::min(bestArena, t.seconds() / iters);
    }
  }
  r.baselineMs = bestLegacy * 1e3;
  r.arenaMs = bestArena * 1e3;
  // Every timed arena step must have replayed the recorded plan without
  // touching the heap.
  r.steadyAllocs = arena.stats().heapAllocations - allocsBefore;
  r.bitIdentical = r.bitIdentical && grads() == reference;

  r.ratio = r.baselineMs / r.arenaMs;
  r.pass = r.ratio >= threshold && r.steadyAllocs == 0 && r.bitIdentical;
  return r;
}

/// The PR 9 trainer-step gate factor (arena+views vs pre-refactor).
constexpr double kTrainerStepThreshold = 1.3;

int acceptanceMain(double threshold, const char* jsonPath) {
  std::printf(
      "GEMM acceptance: ml::matmul fwd+bwd (shared blocked kernels) vs the "
      "naive triple loop, shapes 256^3 + 200x120x72\n");
  const AcceptanceResult r = runGemmAcceptance(threshold);
  std::printf("  naive   : %7.2f GF/s\n", r.naiveGflops);
  std::printf("  blocked : %7.2f GF/s\n", r.blockedGflops);
  std::printf("acceptance (blocked >= %.2fx naive): %.2fx -> %s\n", threshold,
              r.ratio, r.pass ? "PASS" : "FAIL");

  std::printf(
      "\nTrainer-step acceptance: INN fwd+bwd (dim=64, blocks=4, hidden "
      "{48,48}, batch=16), arena+views vs pre-refactor path\n");
  const StepAcceptanceResult s = runTrainerStepAcceptance(
      kTrainerStepThreshold);
  std::printf("  pre-refactor : %8.3f ms/step\n", s.baselineMs);
  std::printf("  arena+views  : %8.3f ms/step\n", s.arenaMs);
  std::printf("  steady-state heap allocations: %llu\n",
              static_cast<unsigned long long>(s.steadyAllocs));
  std::printf("  gradients bit-identical across paths: %s\n",
              s.bitIdentical ? "yes" : "NO");
  std::printf(
      "acceptance (>= %.2fx, 0 allocs, bit-identical): %.2fx -> %s\n",
      kTrainerStepThreshold, s.ratio, s.pass ? "PASS" : "FAIL");

  if (jsonPath != nullptr) {
    std::FILE* f = std::fopen(jsonPath, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", jsonPath);
      return 2;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"micro_ops_acceptance\",\n"
                 "  \"gemm\": {\n"
                 "    \"shapes\": [[256, 256, 256], [200, 120, 72]],\n"
                 "    \"naive_gflops\": %.4f,\n"
                 "    \"blocked_gflops\": %.4f,\n"
                 "    \"ratio\": %.4f,\n"
                 "    \"threshold\": %.4f,\n"
                 "    \"pass\": %s\n"
                 "  },\n"
                 "  \"trainer_step\": {\n"
                 "    \"workload\": \"inn_fwd_bwd_dim64_blocks4_batch16\",\n"
                 "    \"baseline_ms\": %.4f,\n"
                 "    \"arena_ms\": %.4f,\n"
                 "    \"ratio\": %.4f,\n"
                 "    \"threshold\": %.4f,\n"
                 "    \"steady_state_heap_allocations\": %llu,\n"
                 "    \"grads_bit_identical\": %s,\n"
                 "    \"pass\": %s\n"
                 "  },\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 r.naiveGflops, r.blockedGflops, r.ratio, threshold,
                 r.pass ? "true" : "false", s.baselineMs, s.arenaMs, s.ratio,
                 kTrainerStepThreshold,
                 static_cast<unsigned long long>(s.steadyAllocs),
                 s.bitIdentical ? "true" : "false", s.pass ? "true" : "false",
                 (r.pass && s.pass) ? "true" : "false");
    std::fclose(f);
  }
  return (r.pass && s.pass) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = -1;
  const char* jsonPath = nullptr;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--acceptance") == 0) {
      threshold = 2.5;
    } else if (std::strncmp(arg, "--acceptance=", 13) == 0) {
      char* end = nullptr;
      threshold = std::strtod(arg + 13, &end);
      if (end == arg + 13 || *end != '\0' || !(threshold > 0)) {
        std::fprintf(stderr,
                     "invalid %s — expected --acceptance=<ratio> with "
                     "ratio > 0 (e.g. --acceptance=2.5)\n",
                     arg);
        return 2;
      }
    } else if (std::strcmp(arg, "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      jsonPath = arg + 7;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (threshold > 0) return acceptanceMain(threshold, jsonPath);

  int count = static_cast<int>(passthrough.size());
  benchmark::Initialize(&count, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(count, passthrough.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

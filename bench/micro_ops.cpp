/// Micro-benchmarks (google-benchmark) of the hot kernels across the
/// stack: tensor ops, the losses of Eq.(1), the PIC inner loops and the
/// radiation kernel. These guard against performance regressions in the
/// substrate and calibrate the bench harness constants.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "ml/coupling.hpp"
#include "ml/layers.hpp"
#include "ml/losses.hpp"
#include "pic/deposit.hpp"
#include "pic/interpolate.hpp"
#include "pic/pusher.hpp"
#include "radiation/detector.hpp"

using namespace artsci;
using namespace artsci::ml;

namespace {

void BM_Matmul(benchmark::State& state) {
  const long n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = matmul(a, b);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_ChamferDistance(benchmark::State& state) {
  const long n = state.range(0);
  Rng rng(2);
  Tensor a = Tensor::randn({4, n, 6}, rng);
  Tensor b = Tensor::randn({4, n, 6}, rng);
  for (auto _ : state) {
    Tensor c = chamferDistance(a, b);
    benchmark::DoNotOptimize(c.item());
  }
  state.SetItemsProcessed(state.iterations() * 4 * n * n);
}
BENCHMARK(BM_ChamferDistance)->Arg(128)->Arg(512);

void BM_MmdImq(benchmark::State& state) {
  const long n = state.range(0);
  Rng rng(3);
  Tensor x = Tensor::randn({n, 32}, rng);
  Tensor y = Tensor::randn({n, 32}, rng);
  for (auto _ : state) {
    Tensor m = mmdInverseMultiquadratic(x, y);
    benchmark::DoNotOptimize(m.item());
  }
}
BENCHMARK(BM_MmdImq)->Arg(32)->Arg(128);

void BM_EncoderForward(benchmark::State& state) {
  Rng rng(4);
  PointNetEncoder::Config cfg;
  cfg.channels = {6, 16, 32, 64};
  cfg.headHidden = 64;
  cfg.latentDim = 64;
  PointNetEncoder enc(cfg, rng);
  Tensor x = Tensor::randn({8, 128, 6}, rng);
  for (auto _ : state) {
    auto m = enc.forward(x);
    benchmark::DoNotOptimize(m.mu.data().data());
  }
}
BENCHMARK(BM_EncoderForward);

void BM_InnForwardInverse(benchmark::State& state) {
  Rng rng(5);
  Inn::Config cfg;
  cfg.dim = 64;
  cfg.blocks = 4;
  cfg.hidden = {48, 48};
  Inn inn(cfg, rng);
  Tensor x = Tensor::randn({8, 64}, rng);
  for (auto _ : state) {
    Tensor y = inn.forward(x);
    Tensor back = inn.inverse(y);
    benchmark::DoNotOptimize(back.data().data());
  }
}
BENCHMARK(BM_InnForwardInverse);

void BM_BorisPush(benchmark::State& state) {
  Vec3d u{0.1, 0.05, -0.02};
  const Vec3d E{0.01, 0.0, 0.02}, B{0.0, 0.0, 1.0};
  for (auto _ : state) {
    u = pic::borisPush(u, E, B, -1.0, 0.05);
    benchmark::DoNotOptimize(u);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BorisPush);

void BM_EsirkepovDeposit(benchmark::State& state) {
  pic::GridSpec g{16, 16, 16, 0.2, 0.2, 0.2};
  pic::VectorField J(g);
  Rng rng(6);
  for (auto _ : state) {
    const double x0 = rng.uniform(2, 14), y0 = rng.uniform(2, 14),
                 z0 = rng.uniform(2, 14);
    pic::depositCurrentEsirkepov(J, g, x0, y0, z0, x0 + 0.3, y0 - 0.2,
                                 z0 + 0.1, -1.0, 0.1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EsirkepovDeposit);

void BM_FieldGather(benchmark::State& state) {
  pic::GridSpec g{32, 32, 32, 0.2, 0.2, 0.2};
  pic::VectorField E(g);
  E.x.fill(1.0);
  Rng rng(7);
  for (auto _ : state) {
    const Vec3d e = pic::gatherE(E, rng.uniform(1, 31), rng.uniform(1, 31),
                                 rng.uniform(1, 31));
    benchmark::DoNotOptimize(e);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FieldGather);

void BM_RadiationKernel(benchmark::State& state) {
  const long particles = state.range(0);
  radiation::DetectorConfig cfg;
  cfg.directions = {Vec3d{1, 0, 0}};
  cfg.frequencies = radiation::logFrequencyAxis(0.1, 100.0, 32);
  radiation::SpectralAccumulator acc(cfg);
  pic::GridSpec grid{16, 16, 16, 0.2, 0.2, 0.2};
  pic::ParticleBuffer p({-1.0, 1.0, "e"});
  Rng rng(8);
  for (long i = 0; i < particles; ++i)
    p.push({rng.uniform(0, 16), rng.uniform(0, 16), rng.uniform(0, 16)},
           {rng.normal(0, 0.2), rng.normal(0, 0.2), 0}, 1.0);
  std::vector<double> bd(p.size(), 0.01);
  for (auto _ : state) {
    acc.accumulate(p, bd, bd, bd, 1.0, 0.1, grid);
  }
  state.SetItemsProcessed(state.iterations() * particles * 32);
}
BENCHMARK(BM_RadiationKernel)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();

/// Fig 8 reproduction: weak scaling of the in-transit training.
///
/// Paper: 8 -> 96 Frontier nodes (32 -> 384 GCDs), batch 8 per GCD;
/// single-batch times averaged after removing > 4 sigma outliers;
/// efficiency relative to the smallest size falls to ~35 % at 96 nodes,
/// with ~30 % of the deficit attributed to the DDP all-reduce and the
/// rest to the replicated MMD computation with its graph-breaking
/// all-gather.
///
///   ./bench/bench_fig8_training_scaling [--json <path>]
///
/// --json writes the measured per-rank batch times and efficiencies (CI
/// uploads it as the BENCH_fig8 artifact).
#include <cstdio>
#include <cstring>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "cluster/collectives.hpp"
#include "common/ascii.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"
#include "core/trainer.hpp"

using namespace artsci;

namespace {

core::Sample syntheticSample(Rng& rng, long points, long specDim) {
  core::Sample s;
  s.cloud.resize(static_cast<std::size_t>(points) * 6);
  for (auto& v : s.cloud) v = rng.normal(0, 0.4);
  s.spectrum.resize(static_cast<std::size_t>(specDim));
  for (auto& v : s.spectrum) v = 0.4 + rng.normal(0, 0.05);
  s.region = 0;
  return s;
}

/// Mean per-batch time for a rank count (real thread-DDP training).
/// OpenMP inside the op kernels is disabled (see main) so the rank
/// threads are the only parallelism (one "GCD" = one core, as in the
/// paper's GCD mapping).
double measuredBatchSeconds(std::size_t ranks, long iterations) {
  core::TrainerConfig tcfg;
  tcfg.ranks = ranks;
  auto mcfg = core::ArtificialScientistModel::Config::reduced();
  core::InTransitTrainer trainer(mcfg, tcfg);
  Rng rng(17);
  for (int i = 0; i < 30; ++i)
    trainer.buffer().push(syntheticSample(rng, 64, mcfg.spectrumDim));
  trainer.trainIterations(2);  // warm-up
  std::vector<double> times;
  for (long it = 0; it < iterations; ++it) {
    Timer t;
    trainer.trainIterations(1);
    times.push_back(t.seconds());
  }
  // The paper removes > 4 sigma outliers before averaging.
  return stats::mean(stats::removeOutliers(times, 4.0));
}

}  // namespace

int main(int argc, char** argv) {
  // The measured part maps one rank thread to one "GCD", so OpenMP inside
  // the kernels must be off. libgomp fixes its thread count from the
  // environment at process start (later setenv calls don't reach rank
  // threads), so re-exec once with OMP_NUM_THREADS=1.
#ifdef _OPENMP
  if (getenv("ARTSCI_FIG8_CHILD") == nullptr) {
    setenv("OMP_NUM_THREADS", "1", 1);
    setenv("ARTSCI_FIG8_CHILD", "1", 1);
    execv("/proc/self/exe", argv);
    // exec failed (no procfs?): continue with a best-effort setting.
    omp_set_num_threads(1);
  }
#endif
  const char* jsonPath = nullptr;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      jsonPath = arg + 7;
    } else {
      std::fprintf(stderr,
                   "unknown option %s — usage: bench_fig8_training_scaling "
                   "[--json <path>]\n",
                   arg);
      return 2;
    }
  }
  std::printf("==============================================================\n");
  std::printf("Fig 8 — weak scaling of in-transit training (efficiency %%)\n");
  std::printf("==============================================================\n\n");

  std::printf("[A] Measured: thread-rank DDP on this machine, batch 8/rank,\n");
  std::printf("    reduced model preset, >4-sigma outliers removed\n\n");
  std::vector<std::size_t> rankAxis;
  std::vector<double> batchSeconds, efficiencies;
  {
    std::vector<std::vector<std::string>> rows;
    double t1 = 0;
    for (std::size_t ranks : {1u, 2u, 4u, 8u}) {
      const double t = measuredBatchSeconds(ranks, 10);
      if (ranks == 1) t1 = t;
      rankAxis.push_back(ranks);
      batchSeconds.push_back(t);
      efficiencies.push_back(100.0 * t1 / t);
      rows.push_back({std::to_string(ranks),
                      ascii::num(t * 1e3, 2) + " ms",
                      ascii::num(100.0 * t1 / t, 1) + " %"});
    }
    std::printf("%s\n",
                ascii::table({"ranks", "per-batch time", "efficiency"}, rows)
                    .c_str());
  }

  std::printf("[B] Modeled: Frontier 8 -> 96 nodes (32 -> 384 GCDs),\n");
  std::printf("    paper-scale model (~4.3M params, 17.2 MB gradients)\n\n");
  const auto frontier = cluster::ClusterSpec::frontier();
  const cluster::TrainingScalingModel model;
  std::vector<double> nodesAxis, effSeries;
  std::vector<std::vector<std::string>> rows;
  for (long gcds : {32L, 64L, 96L, 128L, 192L, 256L, 320L, 384L}) {
    const auto cost = cluster::trainingBatchCost(frontier, gcds, model);
    const double eff =
        100.0 * cluster::trainingEfficiency(frontier, gcds, model);
    nodesAxis.push_back(static_cast<double>(gcds) / 4.0);  // nodes
    effSeries.push_back(eff);
    rows.push_back({std::to_string(gcds / 4), std::to_string(gcds),
                    ascii::num(cost.total * 1e3, 1) + " ms",
                    ascii::num(cost.allReduceExposed * 1e3, 1) + " ms",
                    ascii::num(cost.mmd * 1e3, 1) + " ms",
                    ascii::num(eff, 1) + " %"});
  }
  std::printf("%s\n",
              ascii::table({"nodes", "GCDs", "batch time", "allreduce",
                            "MMD (replicated)", "efficiency"},
                           rows)
                  .c_str());
  std::printf("%s\n",
              ascii::plot(nodesAxis, {{"efficiency [%]", effSeries, '*'}},
                          72, 16, false, false,
                          "Fig 8 shape: efficiency vs nodes")
                  .c_str());
  std::printf(
      "paper: ~100%% at 8 nodes falling to ~35%% at 96 nodes; all-reduce\n"
      "accounts for ~30%% deficit, MMD's replicated work for the rest\n");

  if (jsonPath != nullptr) {
    std::FILE* f = std::fopen(jsonPath, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", jsonPath);
      return 2;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"fig8_training_weak_scaling\",\n"
                 "  \"setup\": \"thread_ddp_reduced_model_batch8\",\n"
                 "  \"measured\": [\n");
    for (std::size_t i = 0; i < rankAxis.size(); ++i) {
      std::fprintf(f,
                   "    {\"ranks\": %zu, \"batch_seconds\": %.6f, "
                   "\"efficiency_pct\": %.2f}%s\n",
                   rankAxis[i], batchSeconds[i], efficiencies[i],
                   i + 1 < rankAxis.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }
  return 0;
}

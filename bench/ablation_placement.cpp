/// Ablation A3 (Fig 3c / §IV-D): producer/consumer placement. The paper
/// chooses the intra-node split (4 GCDs PIConGPU + 4 GCDs MLapp per node)
/// so streamed data mostly stays inside the node; inter-node placement is
/// easier to schedule (Slurm) but sends everything over the fabric.
#include <cstdio>

#include "cluster/placement.hpp"
#include "common/ascii.hpp"

using namespace artsci;
using namespace artsci::cluster;

int main() {
  std::printf("==============================================================\n");
  std::printf("Ablation A3 — intra-node vs inter-node placement (Fig 3c)\n");
  std::printf("==============================================================\n\n");

  const auto frontier = ClusterSpec::frontier();
  const double bytesPerNode = 5.86e9;  // paper's per-node step volume

  std::vector<std::vector<std::string>> rows;
  for (const Placement placement :
       {Placement::kIntraNode, Placement::kInterNode}) {
    PlacementConfig cfg;
    cfg.placement = placement;
    const auto cost = placementCost(frontier, cfg, bytesPerNode);
    rows.push_back({placementName(placement),
                    ascii::num(cost.bytesOverNic / 1e9, 2) + " GB",
                    ascii::num(cost.bytesIntraNode / 1e9, 2) + " GB",
                    ascii::num(cost.transferSeconds * 1e3, 1) + " ms"});
  }
  std::printf("%s\n",
              ascii::table({"placement", "over NIC /node-step",
                            "intra-node /node-step", "transfer time"},
                           rows)
                  .c_str());

  // Sensitivity to the locality fraction the reader achieves.
  std::printf("locality sensitivity (intra-node placement):\n\n");
  std::vector<std::vector<std::string>> rows2;
  for (double local : {0.5, 0.75, 0.9, 1.0}) {
    PlacementConfig cfg;
    cfg.placement = Placement::kIntraNode;
    cfg.localReadFraction = local;
    const auto cost = placementCost(frontier, cfg, bytesPerNode);
    rows2.push_back({ascii::num(100 * local, 0) + " %",
                     ascii::num(cost.bytesOverNic / 1e9, 2) + " GB",
                     ascii::num(cost.transferSeconds * 1e3, 1) + " ms"});
  }
  std::printf("%s\n", ascii::table({"local reads", "over NIC",
                                    "transfer time"},
                                   rows2)
                          .c_str());
  std::printf(
      "paper's choice: intra-node (4+4 GCD split); 'data exchange mostly\n"
      "does not need to leave the node' — confirmed by the cost model.\n");
  return 0;
}

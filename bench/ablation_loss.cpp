/// Ablation A2 (§IV-C "Technical Challenges"): Chamfer distance vs earth
/// mover's distance. The paper measured ~4x batch-time increase with EMD
/// (geomloss) and could not run it on Frontier at all (KeOps lacks a HIP
/// port). We time both on equal point-cloud batches and reproduce the
/// density-blindness of CD that motivates EMD.
#include <algorithm>
#include <cstdio>

#include "common/ascii.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/model.hpp"
#include "ml/losses.hpp"

using namespace artsci;
using namespace artsci::ml;

namespace {

double timeLoss(bool useEmd, long B, long N, int reps) {
  Rng rng(3);
  Tensor a = Tensor::randn({B, N, 6}, rng, 0.5);
  a.setRequiresGrad(true);
  Tensor b = Tensor::randn({B, N, 6}, rng, 0.5);
  // warm-up
  (useEmd ? emdSinkhorn(a, b) : chamferDistance(a, b)).backward();
  // Best-of-reps: robust against scheduler noise on small kernels.
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    a.zeroGrad();
    Tensor loss = useEmd ? emdSinkhorn(a, b) : chamferDistance(a, b);
    loss.backward();
    best = std::min(best, t.seconds());
  }
  return best;
}

}  // namespace

int main() {
  std::printf("==============================================================\n");
  std::printf("Ablation A2 — Chamfer distance vs EMD (Sinkhorn)\n");
  std::printf("==============================================================\n\n");

  std::printf("[1] batch time (forward+backward), B=4 point clouds x 6D\n\n");
  std::vector<std::vector<std::string>> rows;
  for (long N : {64L, 128L, 256L}) {
    const double tCd = timeLoss(false, 4, N, 15);
    const double tEmd = timeLoss(true, 4, N, 15);
    rows.push_back({std::to_string(N), ascii::num(tCd * 1e3, 2) + " ms",
                    ascii::num(tEmd * 1e3, 2) + " ms",
                    ascii::num(tEmd / tCd, 1) + "x"});
  }
  std::printf("%s\n", ascii::table({"points/cloud", "Chamfer", "EMD",
                                    "ratio"},
                                   rows)
                          .c_str());

  // The paper's "~4x" compares full *training batch* times (forward +
  // backward of the whole model), where the loss is only one term.
  std::printf("[1b] full training-batch time (whole model fwd+bwd), B=8\n\n");
  {
    auto timeBatch = [&](bool emd, long cloudPoints) {
      auto cfg = core::ArtificialScientistModel::Config::reduced();
      cfg.useEmdReconstruction = emd;
      Rng rng(9);
      core::ArtificialScientistModel model(cfg, rng);
      Tensor clouds = Tensor::randn({8, cloudPoints, 6}, rng, 0.4);
      Tensor spectra = Tensor::randn({8, 32}, rng, 0.1);
      model.loss(clouds, spectra, rng).backward();  // warm-up
      double best = 1e300;
      for (int r = 0; r < 6; ++r) {
        Timer t;
        model.loss(clouds, spectra, rng).backward();
        best = std::min(best, t.seconds());
      }
      return best;
    };
    std::vector<std::vector<std::string>> rows2;
    for (long n : {128L, 512L, 1024L}) {
      const double tCd = timeBatch(false, n);
      const double tEmd = timeBatch(true, n);
      rows2.push_back({std::to_string(n), ascii::num(tCd * 1e3, 1) + " ms",
                       ascii::num(tEmd * 1e3, 1) + " ms",
                       ascii::num(tEmd / tCd, 1) + "x"});
    }
    std::printf("%s\n", ascii::table({"cloud points", "CD batch",
                                      "EMD batch", "ratio"},
                                     rows2)
                            .c_str());
    std::printf(
        "the ratio grows with cloud size toward the paper's ~4x (they\n"
        "train on 3e4-point inputs and 4096-point reconstructions)\n\n");
  }

  std::printf("[2] why EMD: sensitivity to point density\n\n");
  {
    // Same support, different density: 90%% of b's mass collapses to 0.
    Tensor a = Tensor::zeros({1, 10, 1});
    for (long i = 0; i < 10; ++i)
      a.data()[static_cast<std::size_t>(i)] = static_cast<Real>(i) / 9.0;
    Tensor b = Tensor::zeros({1, 10, 1});
    b.data()[9] = 1.0;
    const double cd = chamferDistance(a, b).item();
    const double emd = emdSinkhorn(a, b).item();
    std::printf("  uniform vs collapsed cloud:  CD = %.4f   EMD = %.4f\n",
                cd, emd);
    std::printf("  EMD/CD = %.1fx — CD barely notices the density defect\n\n",
                emd / std::max(cd, 1e-12));
  }
  std::printf(
      "paper: 'Perhaps the community needs a HIP version of the KeOps "
      "library.'\nHere: a dependency-free Sinkhorn EMD usable on any "
      "hardware.\n");
  return 0;
}

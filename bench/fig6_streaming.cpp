/// Fig 6 + §IV-B table reproduction: full-scale streaming throughput.
///
/// Paper setup: PIConGPU KHI producing 5.86 GB per node per step, streamed
/// via openPMD/ADIOS2-SST to a synthetic no-op consumer; 5 steps per scale;
/// boxplots of parallel total throughput for (a) the libfabric/CXI data
/// plane and (b) the MPI data plane; 20-30 TB/s at full scale vs the
/// 10 TB/s Orion filesystem and ~35 TB/s aggregate node-local SSDs.
///
/// Part A is a real measurement of our nanoSST engine moving actual PIC
/// particle data between threads; Part B reproduces the Frontier-scale
/// figure through the calibrated virtual-time data-plane models.
#include <cstdio>
#include <cstring>
#include <thread>

#include "cluster/netsim.hpp"
#include "common/ascii.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"
#include "openpmd/backends.hpp"
#include "pic/khi.hpp"

using namespace artsci;

namespace {

/// Real in-process measurement: KHI particle data -> no-op consumer.
/// Returns the consumer-side ingest throughput boxplot [GB/s].
stats::BoxPlot measuredPart() {
  std::printf("[A] Measured: nanoSST in-process staging, KHI particle data\n");
  std::printf("    producer: PIC KHI (%s), consumer: no-op (discards data)\n\n",
              "32x64x8 cells, 4 ppc");

  pic::KhiConfig kcfg;
  kcfg.grid = pic::GridSpec{32, 64, 8, 0.25, 0.25, 0.25};
  kcfg.dt = 0.1;
  kcfg.particlesPerCell = 4;
  pic::SimulationConfig sc;
  sc.grid = kcfg.grid;
  sc.dt = kcfg.dt;
  pic::Simulation sim(sc);
  const auto sp = pic::initializeKhi(sim, kcfg);
  const auto& e = sim.species(sp.electrons);

  auto engine =
      std::make_shared<stream::SstEngine>(stream::SstParams{1, 1, 2});
  const long n = static_cast<long>(e.size());

  std::thread producer([&] {
    auto writer = engine->makeWriter(0);
    for (int step = 0; step < 5; ++step) {
      sim.step();
      writer.beginStep();
      const std::vector<const std::vector<double>*> columns{
          &e.x, &e.y, &e.z, &e.ux, &e.uy, &e.uz};
      for (std::size_t c = 0; c < columns.size(); ++c) {
        stream::Block b;
        b.offset = {static_cast<long>(c) * n};
        b.extent = {n};
        b.payload = *columns[c];
        writer.put("particles", std::move(b), {6 * n});
      }
      writer.endStep();
    }
    writer.close();
  });

  std::vector<double> throughputs;
  {
    auto reader = engine->makeReader(0);
    while (auto step = reader.beginStep()) {
      Timer t;
      std::size_t bytes = 0;
      for (const auto* b : reader.myBlocks(*step, "particles")) {
        // "no-op consumer ... only discards received data": we touch the
        // payload once (checksum) to force the read.
        double sum = 0;
        for (double v : b->payload) sum += v;
        (void)sum;
        bytes += b->bytes();
      }
      reader.endStep();
      throughputs.push_back(static_cast<double>(bytes) / t.seconds() / 1e9);
    }
  }
  producer.join();

  const auto box = stats::boxplot(throughputs);
  std::printf("    consumer ingest throughput [GB/s]: %s\n\n",
              stats::formatBoxPlot(box).c_str());
  return box;
}

void modeledPart() {
  const auto frontier = cluster::ClusterSpec::frontier();
  cluster::StreamStepConfig scfg;  // 5.86 GB/node/step, paper defaults

  std::printf(
      "[B] Modeled: Frontier scale, 5.86 GB/node/step, 5 steps per point\n\n");

  const std::vector<long> nodeCounts{4096, 8192, 9126};
  const std::vector<cluster::DataPlaneModel> planes{
      cluster::DataPlaneModel::libfabricAllAtOnce(),
      cluster::DataPlaneModel::libfabricBatched(10),
      cluster::DataPlaneModel::mpi()};

  std::vector<std::vector<std::string>> rows;
  for (const auto& plane : planes) {
    for (long nodes : nodeCounts) {
      Rng rng(static_cast<std::uint64_t>(nodes) * 31 + 7);
      const auto series =
          cluster::simulateStreamSeries(frontier, nodes, plane, scfg, 5, rng);
      if (series.empty()) {
        rows.push_back({plane.name, std::to_string(nodes),
                        "did not scale (DNS)", "-", "-"});
        continue;
      }
      const auto box = stats::boxplot(series);
      const double perNodeMin = box.min / static_cast<double>(nodes) / 1e9;
      const double perNodeMax = box.max / static_cast<double>(nodes) / 1e9;
      const double stepMin = scfg.bytesPerNode / (perNodeMax * 1e9);
      const double stepMax = scfg.bytesPerNode / (perNodeMin * 1e9);
      rows.push_back(
          {plane.name, std::to_string(nodes),
           ascii::num(box.min / 1e12, 1) + " - " +
               ascii::num(box.max / 1e12, 1) + " TB/s [med " +
               ascii::num(box.median / 1e12, 1) + "]",
           ascii::num(perNodeMin, 1) + " - " + ascii::num(perNodeMax, 1) +
               " GB/s",
           ascii::num(stepMin, 1) + " - " + ascii::num(stepMax, 1) + " s"});
    }
  }
  std::printf("%s\n",
              ascii::table({"data plane", "nodes", "total throughput",
                            "per-node", "step time"},
                           rows)
                  .c_str());

  std::printf("reference lines (paper):\n");
  std::printf("  Orion parallel filesystem : %.0f TB/s\n",
              frontier.filesystemBandwidth / 1e12);
  std::printf("  node-local SSD aggregate  : %.0f TB/s\n",
              frontier.nodeSsdAggregateBandwidth / 1e12);
  std::printf("  single Slingshot NIC      : %.0f GB/s per node\n",
              frontier.node.nicBandwidth / 1e9);
  std::printf(
      "\npaper values: libfabric 3.5-4.7 GB/s/node @4096 (DNS at full "
      "scale),\n  batched 1.9-2.6 GB/s/node @9126, MPI 2.6-3.7 @4096 -> "
      "2.4-3.3 @9126;\n  totals 10.5-29.5 TB/s; step times 1.2-3.2 s\n");
}

}  // namespace

int main(int argc, char** argv) {
  const char* jsonPath = nullptr;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      jsonPath = arg + 7;
    } else {
      std::fprintf(stderr,
                   "unknown option %s — usage: bench_fig6_streaming "
                   "[--json <path>]\n",
                   arg);
      return 2;
    }
  }
  std::printf("==============================================================\n");
  std::printf("Fig 6 — parallel streaming throughput at full scale\n");
  std::printf("==============================================================\n\n");
  const stats::BoxPlot box = measuredPart();
  modeledPart();

  if (jsonPath != nullptr) {
    std::FILE* f = std::fopen(jsonPath, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", jsonPath);
      return 2;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"fig6_streaming_measured\",\n"
                 "  \"setup\": \"nanosst_khi_32x64x8_ppc4_noop_consumer\",\n"
                 "  \"ingest_gbps_min\": %.4f,\n"
                 "  \"ingest_gbps_median\": %.4f,\n"
                 "  \"ingest_gbps_max\": %.4f\n"
                 "}\n",
                 box.min, box.median, box.max);
    std::fclose(f);
  }
  return 0;
}

#include "radiation/detector.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace artsci::radiation {

std::vector<double> logFrequencyAxis(double omegaMin, double omegaMax,
                                     std::size_t count) {
  ARTSCI_EXPECTS(omegaMin > 0 && omegaMax > omegaMin && count >= 2);
  std::vector<double> out(count);
  const double logMin = std::log10(omegaMin);
  const double step = (std::log10(omegaMax) - logMin) /
                      static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i)
    out[i] = std::pow(10.0, logMin + step * static_cast<double>(i));
  return out;
}

DetectorConfig DetectorConfig::defaultKhi(std::size_t frequencyCount) {
  DetectorConfig cfg;
  // One detector on the +x axis: the +beta stream approaches it, the
  // -beta stream recedes (Fig 1's "approaching"/"receding" arrows).
  cfg.directions = {Vec3d{1.0, 0.0, 0.0}};
  cfg.frequencies = logFrequencyAxis(0.1, 100.0, frequencyCount);
  return cfg;
}

SpectralAccumulator::SpectralAccumulator(DetectorConfig cfg)
    : cfg_(std::move(cfg)) {
  ARTSCI_EXPECTS(!cfg_.directions.empty());
  ARTSCI_EXPECTS(!cfg_.frequencies.empty());
  for (const auto& n : cfg_.directions)
    ARTSCI_EXPECTS_MSG(std::abs(n.norm() - 1.0) < 1e-9,
                       "detector directions must be unit vectors");
  amp_.assign(cfg_.directions.size() * cfg_.frequencies.size() * 3,
              std::complex<double>(0.0, 0.0));
}

void SpectralAccumulator::reset() {
  std::fill(amp_.begin(), amp_.end(), std::complex<double>(0.0, 0.0));
}

void SpectralAccumulator::accumulate(
    const pic::ParticleBuffer& particles, const std::vector<double>& bdx,
    const std::vector<double>& bdy, const std::vector<double>& bdz,
    double time, double dt, const pic::GridSpec& grid,
    const std::vector<std::size_t>* subset) {
  ARTSCI_EXPECTS_MSG(bdx.size() == particles.size(),
                     "betaDot arrays missing — build the Simulation with "
                     "recordBetaDot=true");
  const std::size_t count = subset ? subset->size() : particles.size();
  const std::size_t nDir = cfg_.directions.size();
  const std::size_t nFreq = cfg_.frequencies.size();

  // Parallelize over (direction, frequency) slots: each thread owns its
  // accumulator slots, so no atomics are needed.
#pragma omp parallel for collapse(2) schedule(static)
  for (std::size_t d = 0; d < nDir; ++d) {
    for (std::size_t f = 0; f < nFreq; ++f) {
      const Vec3d n = cfg_.directions[d];
      const double omega = cfg_.frequencies[f];
      // Macro-particle form factor (Gaussian cloud of the given radius).
      double ff = 1.0;
      if (cfg_.formFactorRadius > 0.0) {
        const double x = omega * cfg_.formFactorRadius;
        ff = std::exp(-0.5 * x * x);
      }
      std::complex<double> ax{}, ay{}, az{};
      for (std::size_t s = 0; s < count; ++s) {
        const std::size_t i = subset ? (*subset)[s] : s;
        const double g = particles.gamma(i);
        const Vec3d beta{particles.ux[i] / g, particles.uy[i] / g,
                         particles.uz[i] / g};
        const Vec3d betaDot{bdx[i], bdy[i], bdz[i]};
        const double oneMinusNBeta = 1.0 - n.dot(beta);
        // Far-field kernel n x ((n - beta) x betaDot) / (1 - n.beta)^2.
        const Vec3d inner = (n - beta).cross(betaDot);
        const Vec3d kernel =
            n.cross(inner) * (1.0 / (oneMinusNBeta * oneMinusNBeta));
        const Vec3d r{particles.x[i] * grid.dx, particles.y[i] * grid.dy,
                      particles.z[i] * grid.dz};
        const double phase = omega * (time - n.dot(r));
        const std::complex<double> rot{std::cos(phase), std::sin(phase)};
        const double wff = particles.w[i] * ff * dt;
        ax += kernel.x * wff * rot;
        ay += kernel.y * wff * rot;
        az += kernel.z * wff * rot;
      }
      amp_[slot(d, f, 0)] += ax;
      amp_[slot(d, f, 1)] += ay;
      amp_[slot(d, f, 2)] += az;
    }
  }
}

std::vector<double> SpectralAccumulator::intensity(
    std::size_t directionIdx) const {
  ARTSCI_EXPECTS(directionIdx < cfg_.directions.size());
  std::vector<double> out(cfg_.frequencies.size());
  for (std::size_t f = 0; f < out.size(); ++f) {
    double s = 0.0;
    for (std::size_t c = 0; c < 3; ++c)
      s += std::norm(amp_[slot(directionIdx, f, c)]);
    out[f] = s;
  }
  return out;
}

std::array<std::complex<double>, 3> SpectralAccumulator::amplitude(
    std::size_t directionIdx, std::size_t freqIdx) const {
  ARTSCI_EXPECTS(directionIdx < cfg_.directions.size());
  ARTSCI_EXPECTS(freqIdx < cfg_.frequencies.size());
  return {amp_[slot(directionIdx, freqIdx, 0)],
          amp_[slot(directionIdx, freqIdx, 1)],
          amp_[slot(directionIdx, freqIdx, 2)]};
}

double expectedDopplerUpshift(double betaTowardDetector) {
  return units::dopplerFactor(betaTowardDetector);
}

}  // namespace artsci::radiation

#include "radiation/plugin.hpp"

namespace artsci::radiation {

RadiationPlugin::RadiationPlugin(DetectorConfig cfg, std::size_t speciesIdx)
    : speciesIdx_(speciesIdx), acc_(std::move(cfg)) {}

void RadiationPlugin::onStepEnd(pic::Simulation& sim) {
  const auto& particles = sim.species(speciesIdx_);
  acc_.accumulate(particles, sim.betaDotX(speciesIdx_),
                  sim.betaDotY(speciesIdx_), sim.betaDotZ(speciesIdx_),
                  sim.time(), sim.dt(), sim.grid());
}

RegionRadiationPlugin::RegionRadiationPlugin(DetectorConfig cfg,
                                             std::size_t speciesIdx,
                                             double vortexHalfWidthCells)
    : speciesIdx_(speciesIdx), vortexHalfWidth_(vortexHalfWidthCells) {
  for (int r = 0; r < 3; ++r) acc_.emplace_back(cfg);
}

const SpectralAccumulator& RegionRadiationPlugin::accumulator(
    pic::KhiRegion region) const {
  return acc_[static_cast<std::size_t>(region)];
}

void RegionRadiationPlugin::onStepEnd(pic::Simulation& sim) {
  const auto& particles = sim.species(speciesIdx_);
  const long ny = sim.grid().ny;
  std::vector<std::size_t> subset[3];
  for (std::size_t i = 0; i < particles.size(); ++i) {
    const auto region =
        pic::classifyKhiRegion(particles.y[i], ny, vortexHalfWidth_);
    subset[static_cast<std::size_t>(region)].push_back(i);
  }
  for (int r = 0; r < 3; ++r) {
    acc_[static_cast<std::size_t>(r)].accumulate(
        particles, sim.betaDotX(speciesIdx_), sim.betaDotY(speciesIdx_),
        sim.betaDotZ(speciesIdx_), sim.time(), sim.dt(), sim.grid(),
        &subset[r]);
  }
}

}  // namespace artsci::radiation

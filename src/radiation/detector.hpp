/// \file detector.hpp
/// Synthetic far-field radiation detector (the stand-in for PIConGPU's
/// radiation plugin [Pausch et al. 2014]). For each detector direction n
/// and frequency omega it accumulates the classical Lienard-Wiechert
/// far-field amplitude
///
///   A(n, omega) = sum_steps sum_p w_p
///       [ n x ((n - beta_p) x dbeta_p/dt) ] / (1 - n . beta_p)^2
///       * exp(i omega (t - n . r_p))  * dt
///
/// (c = 1, plasma units), and reports the spectral intensity
/// d^2 I / (d omega d Omega) ~ |A|^2 — spectrally and angularly resolved,
/// resolving frequencies far above the grid's Nyquist limit, which is the
/// whole point of the plugin versus the PIC field solver.
#pragma once

#include <array>
#include <complex>
#include <vector>

#include "common/vec3.hpp"
#include "pic/grid.hpp"
#include "pic/particles.hpp"

namespace artsci::radiation {

/// Log-spaced frequency axis in omega_pe units (Fig 9a uses 1e-1..1e2).
std::vector<double> logFrequencyAxis(double omegaMin, double omegaMax,
                                     std::size_t count);

struct DetectorConfig {
  std::vector<Vec3d> directions;    ///< unit observation vectors
  std::vector<double> frequencies;  ///< in omega_pe

  /// Optional macro-particle form factor F(omega): multiplies each
  /// macroparticle's amplitude to model its finite extent [Pausch et al.
  /// 2018]. Radius is the CIC cloud half-width in plasma units; 0 disables
  /// (point particles, fully coherent macroparticles).
  double formFactorRadius = 0.0;

  static DetectorConfig defaultKhi(std::size_t frequencyCount = 64);
};

/// Accumulates complex vector amplitudes over simulation steps.
class SpectralAccumulator {
 public:
  explicit SpectralAccumulator(DetectorConfig cfg);

  /// Add one step's contributions from (a subset of) a particle buffer.
  /// bd* are the per-particle accelerations d(beta)/dt recorded by the
  /// pusher; `subset` (nullable) selects particle indices.
  void accumulate(const pic::ParticleBuffer& particles,
                  const std::vector<double>& bdx,
                  const std::vector<double>& bdy,
                  const std::vector<double>& bdz, double time, double dt,
                  const pic::GridSpec& grid,
                  const std::vector<std::size_t>* subset = nullptr);

  /// |A|^2 spectrum for one direction (length = frequencies().size()).
  std::vector<double> intensity(std::size_t directionIdx) const;

  /// Raw complex amplitude (3 components) at (direction, frequency).
  std::array<std::complex<double>, 3> amplitude(std::size_t directionIdx,
                                                std::size_t freqIdx) const;

  const DetectorConfig& config() const { return cfg_; }
  const std::vector<double>& frequencies() const { return cfg_.frequencies; }
  std::size_t directionCount() const { return cfg_.directions.size(); }

  void reset();

 private:
  DetectorConfig cfg_;
  /// Layout: [dir][freq][component] interleaved re/im.
  std::vector<std::complex<double>> amp_;
  std::size_t slot(std::size_t d, std::size_t f, std::size_t c) const {
    return (d * cfg_.frequencies.size() + f) * 3 + c;
  }
};

/// Analytic check helper: relativistic Doppler cutoff of a gyrating
/// particle seen along +x when it moves with beta_x toward the detector.
double expectedDopplerUpshift(double betaTowardDetector);

}  // namespace artsci::radiation

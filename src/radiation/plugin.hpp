/// \file plugin.hpp
/// PIConGPU-style simulation plugin wiring the far-field detector into the
/// PIC loop, optionally resolved by KHI region so the in-transit producer
/// can pair each region's point cloud with "its" spectrum (Fig 9).
#pragma once

#include <memory>

#include "pic/khi.hpp"
#include "radiation/detector.hpp"

namespace artsci::radiation {

class RadiationPlugin : public pic::Plugin {
 public:
  /// Observes species `speciesIdx` of the simulation. The Simulation must
  /// record accelerations (SimulationConfig::recordBetaDot = true).
  RadiationPlugin(DetectorConfig cfg, std::size_t speciesIdx);

  const char* name() const override { return "radiation"; }
  void onStepEnd(pic::Simulation& sim) override;

  const SpectralAccumulator& accumulator() const { return acc_; }
  SpectralAccumulator& accumulator() { return acc_; }

 private:
  std::size_t speciesIdx_;
  SpectralAccumulator acc_;
};

/// Region-resolved variant: one accumulator per KHI region.
class RegionRadiationPlugin : public pic::Plugin {
 public:
  RegionRadiationPlugin(DetectorConfig cfg, std::size_t speciesIdx,
                        double vortexHalfWidthCells);

  const char* name() const override { return "radiation/regions"; }
  void onStepEnd(pic::Simulation& sim) override;

  const SpectralAccumulator& accumulator(pic::KhiRegion region) const;

 private:
  std::size_t speciesIdx_;
  double vortexHalfWidth_;
  std::vector<SpectralAccumulator> acc_;  ///< indexed by KhiRegion
};

}  // namespace artsci::radiation

#include "openpmd/backends.hpp"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>

namespace artsci::openpmd {

// --- StreamBackend ----------------------------------------------------------

StreamBackend::StreamBackend(std::shared_ptr<stream::SstEngine> engine,
                             std::size_t rank, bool isWriter)
    : engine_(std::move(engine)) {
  ARTSCI_EXPECTS(engine_ != nullptr);
  if (isWriter) {
    writer_ = std::make_unique<stream::SstEngine::Writer>(
        engine_->makeWriter(rank));
  } else {
    reader_ = std::make_unique<stream::SstEngine::Reader>(
        engine_->makeReader(rank));
  }
}

std::shared_ptr<StreamBackend> StreamBackend::forWriter(
    std::shared_ptr<stream::SstEngine> engine, std::size_t rank) {
  return std::shared_ptr<StreamBackend>(
      new StreamBackend(std::move(engine), rank, true));
}

std::shared_ptr<StreamBackend> StreamBackend::forReader(
    std::shared_ptr<stream::SstEngine> engine, std::size_t rank) {
  return std::shared_ptr<StreamBackend>(
      new StreamBackend(std::move(engine), rank, false));
}

void StreamBackend::openIteration(long) {
  ARTSCI_CHECK_MSG(writer_, "openIteration on a reader backend");
  writer_->beginStep();
}

void StreamBackend::writeChunk(const std::string& path,
                               const std::vector<long>& globalExtent,
                               const std::vector<long>& offset,
                               const std::vector<long>& extent,
                               std::vector<double> data) {
  ARTSCI_CHECK(writer_);
  stream::Block block;
  block.offset = offset;
  block.extent = extent;
  block.payload = std::move(data);
  writer_->put(path, std::move(block), globalExtent);
}

void StreamBackend::writeAttribute(const std::string& name, double value) {
  ARTSCI_CHECK(writer_);
  writer_->setAttribute(name, value);
}

void StreamBackend::writeAttribute(const std::string& name,
                                   const std::string& value) {
  ARTSCI_CHECK(writer_);
  writer_->setAttribute(name, value);
}

void StreamBackend::closeIteration() {
  ARTSCI_CHECK(writer_);
  writer_->endStep();
}

void StreamBackend::closeSeries() {
  if (writer_) writer_->close();
}

std::optional<IterationData> StreamBackend::readNextIteration() {
  ARTSCI_CHECK_MSG(reader_, "readNextIteration on a writer backend");
  auto step = reader_->beginStep();
  if (!step) return std::nullopt;
  IterationData out;
  out.index = step->step;
  for (const auto& [name, blocks] : step->variables) {
    out.data[name] = step->assemble(name);
    out.extents[name] = step->globalExtents.at(name);
    for (const auto& b : blocks) reader_->recordRead(b.bytes());
  }
  out.numericAttributes = step->numericAttributes;
  out.stringAttributes = step->stringAttributes;
  reader_->endStep();
  return out;
}

std::size_t StreamBackend::bytesRead() const {
  return reader_ ? reader_->bytesRead() : 0;
}

// --- FileBackend ------------------------------------------------------------

namespace {
constexpr std::uint64_t kBpMagic = 0x42504C4954453031ULL;  // "BPLITE01"

void writeString(std::ofstream& os, const std::string& s) {
  const std::uint64_t n = s.size();
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  os.write(s.data(), static_cast<std::streamsize>(n));
}

std::string readString(std::ifstream& is) {
  std::uint64_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  return s;
}

void writeU64(std::ofstream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t readU64(std::ifstream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
}  // namespace

FileBackend::FileBackend(std::string directory, std::string seriesName)
    : directory_(std::move(directory)), seriesName_(std::move(seriesName)) {
  std::filesystem::create_directories(directory_);
}

std::string FileBackend::fileFor(long index) const {
  return directory_ + "/" + seriesName_ + "_" + std::to_string(index) +
         ".bp";
}

void FileBackend::openIteration(long index) {
  ARTSCI_CHECK_MSG(!pending_, "previous iteration still open");
  pending_ = std::make_unique<stream::StepData>();
  pending_->step = index;
  pendingIndex_ = index;
}

void FileBackend::writeChunk(const std::string& path,
                             const std::vector<long>& globalExtent,
                             const std::vector<long>& offset,
                             const std::vector<long>& extent,
                             std::vector<double> data) {
  ARTSCI_CHECK_MSG(pending_, "writeChunk without open iteration");
  stream::Block block;
  block.offset = offset;
  block.extent = extent;
  block.payload = std::move(data);
  auto [it, inserted] =
      pending_->globalExtents.emplace(path, globalExtent);
  if (!inserted) ARTSCI_CHECK(it->second == globalExtent);
  pending_->variables[path].push_back(std::move(block));
}

void FileBackend::writeAttribute(const std::string& name, double value) {
  ARTSCI_CHECK(pending_);
  pending_->numericAttributes[name] = value;
}

void FileBackend::writeAttribute(const std::string& name,
                                 const std::string& value) {
  ARTSCI_CHECK(pending_);
  pending_->stringAttributes[name] = value;
}

void FileBackend::closeIteration() {
  ARTSCI_CHECK_MSG(pending_, "closeIteration without open iteration");
  std::ofstream os(fileFor(pendingIndex_), std::ios::binary | std::ios::trunc);
  ARTSCI_CHECK_MSG(os.good(), "cannot write " << fileFor(pendingIndex_));
  writeU64(os, kBpMagic);
  writeU64(os, static_cast<std::uint64_t>(pendingIndex_));

  writeU64(os, pending_->variables.size());
  for (const auto& [path, blocks] : pending_->variables) {
    writeString(os, path);
    const auto& global = pending_->globalExtents.at(path);
    writeU64(os, global.size());
    for (long d : global) writeU64(os, static_cast<std::uint64_t>(d));
    // Store the assembled dense array (files hold complete datasets).
    const auto dense = pending_->assemble(path);
    writeU64(os, dense.size());
    os.write(reinterpret_cast<const char*>(dense.data()),
             static_cast<std::streamsize>(dense.size() * sizeof(double)));
  }
  writeU64(os, pending_->numericAttributes.size());
  for (const auto& [name, value] : pending_->numericAttributes) {
    writeString(os, name);
    os.write(reinterpret_cast<const char*>(&value), sizeof(value));
  }
  writeU64(os, pending_->stringAttributes.size());
  for (const auto& [name, value] : pending_->stringAttributes) {
    writeString(os, name);
    writeString(os, value);
  }
  ARTSCI_CHECK_MSG(os.good(), "write failed: " << fileFor(pendingIndex_));
  pending_.reset();
}

void FileBackend::closeSeries() {}

std::optional<IterationData> FileBackend::readNextIteration() {
  if (!scanned_) {
    const std::string prefix = seriesName_ + "_";
    for (const auto& entry :
         std::filesystem::directory_iterator(directory_)) {
      const std::string fname = entry.path().filename().string();
      if (fname.rfind(prefix, 0) == 0 &&
          fname.size() > prefix.size() + 3 &&
          fname.substr(fname.size() - 3) == ".bp") {
        const std::string num =
            fname.substr(prefix.size(), fname.size() - prefix.size() - 3);
        try {
          readableIterations_.push_back(std::stol(num));
        } catch (...) {
          // Not one of ours; skip.
        }
      }
    }
    std::sort(readableIterations_.begin(), readableIterations_.end());
    scanned_ = true;
  }
  if (readCursor_ >= readableIterations_.size()) return std::nullopt;
  const long index = readableIterations_[readCursor_++];

  std::ifstream is(fileFor(index), std::ios::binary);
  ARTSCI_CHECK_MSG(is.good(), "cannot read " << fileFor(index));
  ARTSCI_CHECK_MSG(readU64(is) == kBpMagic,
                   fileFor(index) << " is not a BP-lite file");
  IterationData out;
  out.index = static_cast<long>(readU64(is));

  const std::uint64_t nVars = readU64(is);
  for (std::uint64_t v = 0; v < nVars; ++v) {
    const std::string path = readString(is);
    const std::uint64_t nd = readU64(is);
    std::vector<long> extent(nd);
    for (auto& d : extent) d = static_cast<long>(readU64(is));
    const std::uint64_t count = readU64(is);
    std::vector<double> data(count);
    is.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(count * sizeof(double)));
    out.extents[path] = std::move(extent);
    out.data[path] = std::move(data);
  }
  const std::uint64_t nNum = readU64(is);
  for (std::uint64_t a = 0; a < nNum; ++a) {
    const std::string name = readString(is);
    double value = 0;
    is.read(reinterpret_cast<char*>(&value), sizeof(value));
    out.numericAttributes[name] = value;
  }
  const std::uint64_t nStr = readU64(is);
  for (std::uint64_t a = 0; a < nStr; ++a) {
    const std::string name = readString(is);
    out.stringAttributes[name] = readString(is);
  }
  ARTSCI_CHECK_MSG(is.good(), "read failed: " << fileFor(index));
  return out;
}

}  // namespace artsci::openpmd

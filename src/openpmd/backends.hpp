/// \file backends.hpp
/// The two openPMD backends of the paper's software stack (Fig 5):
///
///  * StreamBackend — maps iterations onto nanoSST steps; this is the
///    ADIOS2-SST in-transit path that never touches the filesystem.
///  * FileBackend — a compact self-describing binary container ("BP-lite",
///    one file per iteration), the classic file-based workflow the paper
///    migrates away from; used for checkpointing and offline tests.
#pragma once

#include <memory>

#include "openpmd/series.hpp"
#include "stream/sst.hpp"

namespace artsci::openpmd {

class StreamBackend : public IBackend {
 public:
  /// Writer-side backend for one producer rank.
  static std::shared_ptr<StreamBackend> forWriter(
      std::shared_ptr<stream::SstEngine> engine, std::size_t rank);
  /// Reader-side backend for one consumer rank. When `onlyMyBlocks` is
  /// true, the assembled arrays contain only this rank's locality-assigned
  /// blocks' data (others remain zero) — set false (default) to assemble
  /// everything.
  static std::shared_ptr<StreamBackend> forReader(
      std::shared_ptr<stream::SstEngine> engine, std::size_t rank);

  void openIteration(long index) override;
  void writeChunk(const std::string& path,
                  const std::vector<long>& globalExtent,
                  const std::vector<long>& offset,
                  const std::vector<long>& extent,
                  std::vector<double> data) override;
  void writeAttribute(const std::string& name, double value) override;
  void writeAttribute(const std::string& name,
                      const std::string& value) override;
  void closeIteration() override;
  void closeSeries() override;
  std::optional<IterationData> readNextIteration() override;

  std::size_t bytesRead() const;

 private:
  StreamBackend(std::shared_ptr<stream::SstEngine> engine, std::size_t rank,
                bool isWriter);
  std::shared_ptr<stream::SstEngine> engine_;
  std::unique_ptr<stream::SstEngine::Writer> writer_;
  std::unique_ptr<stream::SstEngine::Reader> reader_;
};

class FileBackend : public IBackend {
 public:
  /// Files are named <directory>/<seriesName>_<iteration>.bp.
  FileBackend(std::string directory, std::string seriesName);

  void openIteration(long index) override;
  void writeChunk(const std::string& path,
                  const std::vector<long>& globalExtent,
                  const std::vector<long>& offset,
                  const std::vector<long>& extent,
                  std::vector<double> data) override;
  void writeAttribute(const std::string& name, double value) override;
  void writeAttribute(const std::string& name,
                      const std::string& value) override;
  void closeIteration() override;
  void closeSeries() override;
  std::optional<IterationData> readNextIteration() override;

 private:
  std::string fileFor(long index) const;

  std::string directory_, seriesName_;
  std::unique_ptr<stream::StepData> pending_;
  long pendingIndex_ = 0;
  // read cursor
  std::vector<long> readableIterations_;
  std::size_t readCursor_ = 0;
  bool scanned_ = false;
};

}  // namespace artsci::openpmd

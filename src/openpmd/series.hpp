/// \file series.hpp
/// A compact openPMD-flavoured data model (the paper's Fig 5 layering):
/// the application describes particle-mesh data through the standard's
/// hierarchy — Series > Iteration > Meshes / ParticleSpecies > Records >
/// RecordComponents with unitSI / unitDimension attributes — and a
/// *backend* decides where the bytes go: a file on disk or an in-transit
/// nanoSST stream. Swapping the backend is the paper's central loose-
/// coupling move; nothing in the producer/consumer code changes.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace artsci::openpmd {

enum class Access { kCreate, kRead };

/// The seven SI base-dimension exponents (L, M, T, I, theta, N, J) as the
/// openPMD standard defines unitDimension.
using UnitDimension = std::array<double, 7>;

inline constexpr UnitDimension kDimensionless{0, 0, 0, 0, 0, 0, 0};
inline constexpr UnitDimension kLength{1, 0, 0, 0, 0, 0, 0};
inline constexpr UnitDimension kMomentum{1, 1, -1, 0, 0, 0, 0};
inline constexpr UnitDimension kTime{0, 0, 1, 0, 0, 0, 0};

/// One assembled iteration on the read side.
struct IterationData {
  long index = 0;
  std::map<std::string, std::vector<double>> data;     ///< by record path
  std::map<std::string, std::vector<long>> extents;    ///< global extents
  std::map<std::string, double> numericAttributes;
  std::map<std::string, std::string> stringAttributes;

  const std::vector<double>& at(const std::string& path) const;
  double attribute(const std::string& name, double fallback = 0.0) const;
};

/// Backend interface (file or stream).
class IBackend {
 public:
  virtual ~IBackend() = default;

  // write side
  virtual void openIteration(long index) = 0;
  virtual void writeChunk(const std::string& path,
                          const std::vector<long>& globalExtent,
                          const std::vector<long>& offset,
                          const std::vector<long>& extent,
                          std::vector<double> data) = 0;
  virtual void writeAttribute(const std::string& name, double value) = 0;
  virtual void writeAttribute(const std::string& name,
                              const std::string& value) = 0;
  virtual void closeIteration() = 0;
  virtual void closeSeries() = 0;

  // read side
  virtual std::optional<IterationData> readNextIteration() = 0;
};

class WriteIteration;

/// A pending record component within an open iteration.
class RecordComponent {
 public:
  /// Store one chunk (this rank's block) of the globally `globalExtent`-
  /// sized dataset.
  RecordComponent& storeChunk(std::vector<double> data,
                              std::vector<long> offset,
                              std::vector<long> extent,
                              std::vector<long> globalExtent);
  /// Whole-dataset convenience (offset 0, extent == global).
  RecordComponent& store(std::vector<double> data,
                         std::vector<long> globalExtent);
  RecordComponent& setUnitSI(double unitSI);

 private:
  friend class WriteIteration;
  friend class Record;
  friend class Mesh;
  RecordComponent(WriteIteration& it, std::string path);
  WriteIteration& iteration_;
  std::string path_;
};

/// A record (grouping components x/y/z or a scalar) with unitDimension.
class Record {
 public:
  RecordComponent component(const std::string& name);
  /// Scalar records use the openPMD scalar-component convention.
  RecordComponent scalar();
  Record& setUnitDimension(const UnitDimension& dims);

 private:
  friend class WriteIteration;
  friend class ParticleSpecies;
  Record(WriteIteration& it, std::string path);
  WriteIteration& iteration_;
  std::string path_;
};

/// Mesh and particle-species handles produce records under the standard
/// openPMD base paths.
class Mesh {
 public:
  RecordComponent component(const std::string& name);
  RecordComponent scalar();
  Mesh& setUnitDimension(const UnitDimension& dims);
  Mesh& setGridSpacing(const std::vector<double>& spacing);

 private:
  friend class WriteIteration;
  Mesh(WriteIteration& it, std::string path);
  WriteIteration& iteration_;
  std::string path_;
};

class ParticleSpecies {
 public:
  Record record(const std::string& name);

 private:
  friend class WriteIteration;
  ParticleSpecies(WriteIteration& it, std::string path);
  WriteIteration& iteration_;
  std::string path_;
};

class Series;

/// An open, writable iteration. close() flushes everything to the backend
/// (for the stream backend: publishes the SST step).
class WriteIteration {
 public:
  Mesh mesh(const std::string& name);
  ParticleSpecies particles(const std::string& name);
  WriteIteration& setAttribute(const std::string& name, double value);
  WriteIteration& setAttribute(const std::string& name,
                               const std::string& value);
  WriteIteration& setTime(double time, double dt);
  void close();

  long index() const { return index_; }

 private:
  friend class Series;
  friend class RecordComponent;
  friend class Record;
  friend class Mesh;
  WriteIteration(IBackend& backend, long index);
  IBackend& backend_;
  long index_;
  bool open_ = true;
};

/// The root object, as in openPMD-api.
class Series {
 public:
  Series(std::string name, Access access, std::shared_ptr<IBackend> backend);
  ~Series();

  Series(const Series&) = delete;
  Series& operator=(const Series&) = delete;

  /// Open iteration `index` for writing (Access::kCreate only).
  WriteIteration writeIteration(long index);

  /// Next iteration in stream/file order; nullopt at end (kRead only).
  std::optional<IterationData> readNextIteration();

  /// Flush & finish (stream backends signal end-of-stream).
  void close();

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  Access access_;
  std::shared_ptr<IBackend> backend_;
  bool closed_ = false;
};

}  // namespace artsci::openpmd

#include "openpmd/series.hpp"

namespace artsci::openpmd {

const std::vector<double>& IterationData::at(const std::string& path) const {
  auto it = data.find(path);
  ARTSCI_CHECK_MSG(it != data.end(), "iteration has no record '" << path
                                                                 << "'");
  return it->second;
}

double IterationData::attribute(const std::string& name,
                                double fallback) const {
  auto it = numericAttributes.find(name);
  return it == numericAttributes.end() ? fallback : it->second;
}

// --- RecordComponent --------------------------------------------------------

RecordComponent::RecordComponent(WriteIteration& it, std::string path)
    : iteration_(it), path_(std::move(path)) {}

RecordComponent& RecordComponent::storeChunk(std::vector<double> data,
                                             std::vector<long> offset,
                                             std::vector<long> extent,
                                             std::vector<long> globalExtent) {
  ARTSCI_CHECK_MSG(iteration_.open_, "storeChunk on closed iteration");
  iteration_.backend_.writeChunk(path_, globalExtent, offset, extent,
                                 std::move(data));
  return *this;
}

RecordComponent& RecordComponent::store(std::vector<double> data,
                                        std::vector<long> globalExtent) {
  std::vector<long> offset(globalExtent.size(), 0);
  return storeChunk(std::move(data), offset, globalExtent, globalExtent);
}

RecordComponent& RecordComponent::setUnitSI(double unitSI) {
  iteration_.backend_.writeAttribute(path_ + ".unitSI", unitSI);
  return *this;
}

// --- Record -----------------------------------------------------------------

Record::Record(WriteIteration& it, std::string path)
    : iteration_(it), path_(std::move(path)) {}

RecordComponent Record::component(const std::string& name) {
  return RecordComponent(iteration_, path_ + "/" + name);
}

RecordComponent Record::scalar() {
  // openPMD scalar-record convention: the record itself is the component.
  return RecordComponent(iteration_, path_);
}

Record& Record::setUnitDimension(const UnitDimension& dims) {
  for (std::size_t i = 0; i < dims.size(); ++i)
    iteration_.backend_.writeAttribute(
        path_ + ".unitDimension." + std::to_string(i), dims[i]);
  return *this;
}

// --- Mesh / ParticleSpecies -------------------------------------------------

Mesh::Mesh(WriteIteration& it, std::string path)
    : iteration_(it), path_(std::move(path)) {}

RecordComponent Mesh::component(const std::string& name) {
  return RecordComponent(iteration_, path_ + "/" + name);
}

RecordComponent Mesh::scalar() {
  return RecordComponent(iteration_, path_);
}

Mesh& Mesh::setUnitDimension(const UnitDimension& dims) {
  for (std::size_t i = 0; i < dims.size(); ++i)
    iteration_.backend_.writeAttribute(
        path_ + ".unitDimension." + std::to_string(i), dims[i]);
  return *this;
}

Mesh& Mesh::setGridSpacing(const std::vector<double>& spacing) {
  for (std::size_t i = 0; i < spacing.size(); ++i)
    iteration_.backend_.writeAttribute(
        path_ + ".gridSpacing." + std::to_string(i), spacing[i]);
  return *this;
}

ParticleSpecies::ParticleSpecies(WriteIteration& it, std::string path)
    : iteration_(it), path_(std::move(path)) {}

Record ParticleSpecies::record(const std::string& name) {
  return Record(iteration_, path_ + "/" + name);
}

// --- WriteIteration -----------------------------------------------------------

WriteIteration::WriteIteration(IBackend& backend, long index)
    : backend_(backend), index_(index) {
  backend_.openIteration(index);
}

Mesh WriteIteration::mesh(const std::string& name) {
  return Mesh(*this, "meshes/" + name);
}

ParticleSpecies WriteIteration::particles(const std::string& name) {
  return ParticleSpecies(*this, "particles/" + name);
}

WriteIteration& WriteIteration::setAttribute(const std::string& name,
                                             double value) {
  backend_.writeAttribute(name, value);
  return *this;
}

WriteIteration& WriteIteration::setAttribute(const std::string& name,
                                             const std::string& value) {
  backend_.writeAttribute(name, value);
  return *this;
}

WriteIteration& WriteIteration::setTime(double time, double dt) {
  setAttribute("time", time);
  setAttribute("dt", dt);
  return *this;
}

void WriteIteration::close() {
  ARTSCI_CHECK_MSG(open_, "iteration closed twice");
  backend_.closeIteration();
  open_ = false;
}

// --- Series -------------------------------------------------------------------

Series::Series(std::string name, Access access,
               std::shared_ptr<IBackend> backend)
    : name_(std::move(name)), access_(access), backend_(std::move(backend)) {
  ARTSCI_EXPECTS(backend_ != nullptr);
}

Series::~Series() {
  if (!closed_) {
    try {
      close();
    } catch (...) {
      // Destructors must not throw; close() errors surface on explicit use.
    }
  }
}

WriteIteration Series::writeIteration(long index) {
  ARTSCI_EXPECTS_MSG(access_ == Access::kCreate,
                     "writeIteration on a read-only series");
  return WriteIteration(*backend_, index);
}

std::optional<IterationData> Series::readNextIteration() {
  ARTSCI_EXPECTS_MSG(access_ == Access::kRead,
                     "readNextIteration on a write series");
  return backend_->readNextIteration();
}

void Series::close() {
  if (!closed_) {
    backend_->closeSeries();
    closed_ = true;
  }
}

}  // namespace artsci::openpmd

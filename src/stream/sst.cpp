#include "stream/sst.hpp"

#include <cstring>

#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace artsci::stream {

std::size_t StepData::totalBytes() const {
  std::size_t total = 0;
  for (const auto& [name, blocks] : variables)
    for (const auto& b : blocks) total += b.bytes();
  return total;
}

std::vector<double> StepData::assemble(const std::string& name) const {
  auto varIt = variables.find(name);
  ARTSCI_CHECK_MSG(varIt != variables.end(),
                   "unknown stream variable '" << name << "'");
  auto extIt = globalExtents.find(name);
  ARTSCI_CHECK(extIt != globalExtents.end());
  const auto& global = extIt->second;
  long total = 1;
  for (long d : global) total *= d;
  std::vector<double> out(static_cast<std::size_t>(total), 0.0);

  // Strides of the global extent.
  std::vector<long> strides(global.size(), 1);
  for (int d = static_cast<int>(global.size()) - 2; d >= 0; --d)
    strides[static_cast<std::size_t>(d)] =
        strides[static_cast<std::size_t>(d) + 1] *
        global[static_cast<std::size_t>(d) + 1];

  for (const auto& b : varIt->second) {
    ARTSCI_CHECK(b.offset.size() == global.size());
    // Copy the block row by row (innermost dimension contiguous).
    const long inner = b.extent.empty() ? 1 : b.extent.back();
    long rows = 1;
    for (std::size_t d = 0; d + 1 < b.extent.size(); ++d)
      rows *= b.extent[d];
    for (long r = 0; r < rows; ++r) {
      // Decompose row index into the leading block coordinates.
      long rem = r;
      long dstIdx = 0;
      for (std::size_t d = 0; d + 1 < b.extent.size(); ++d) {
        long blockStride = 1;
        for (std::size_t dd = d + 1; dd + 1 < b.extent.size(); ++dd)
          blockStride *= b.extent[dd];
        const long coord = rem / blockStride;
        rem %= blockStride;
        dstIdx += (coord + b.offset[d]) * strides[d];
      }
      dstIdx += b.offset.back();
      std::memcpy(out.data() + dstIdx,
                  b.payload.data() + r * inner,
                  static_cast<std::size_t>(inner) * sizeof(double));
    }
  }
  return out;
}

SstEngine::SstEngine(SstParams params) : params_(params) {
  ARTSCI_EXPECTS(params.writerRanks >= 1);
  ARTSCI_EXPECTS(params.readerRanks >= 1);
  ARTSCI_EXPECTS(params.queueLimit >= 1);
}

long SstEngine::stepsPublished() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stepsPublished_;
}

std::size_t SstEngine::bytesPublished() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytesPublished_;
}

double SstEngine::writerStallSeconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stallSeconds_;
}

std::size_t SstEngine::queueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

// --- Writer ---------------------------------------------------------------

SstEngine::Writer::Writer(SstEngine& engine, std::size_t rank)
    : engine_(engine), rank_(rank) {
  ARTSCI_EXPECTS(rank < engine.params_.writerRanks);
}

void SstEngine::Writer::beginStep() {
  TRACE_SCOPE("stream", "writer_begin_step");
  ARTSCI_CHECK_MSG(!inStep_, "writer rank already in a step");
  std::unique_lock<std::mutex> lock(engine_.mutex_);
  ARTSCI_CHECK_MSG(!engine_.closed_, "beginStep on closed stream");
  // A publication is complete only once every straggler of the previous
  // group has left endStep (writersDraining_ reaches 0, see endStep).
  // Opening the next assembling step before that would let a straggler
  // observe next-step state from inside the previous step's endStep —
  // the interleaving behind the step-id race this engine had.
  engine_.cv_.wait(lock, [this] { return engine_.writersDraining_ == 0; });
  if (!engine_.assembling_) {
    engine_.assembling_ = std::make_unique<StepData>();
    engine_.assembling_->step = engine_.nextStep_;
  }
  ++engine_.writersBegun_;
  // Capture the group's step id NOW: endStep waits for *this* id to
  // publish however late it runs. The pre-fix code captured inside
  // endStep from the shared assembling_ pointer — a late endStep could
  // read the *next* step's id there and block until the wrong
  // publication.
  step_ = engine_.assembling_->step;
  inStep_ = true;
}

void SstEngine::Writer::put(const std::string& variable, Block block,
                            std::vector<long> globalExtent) {
  ARTSCI_CHECK_MSG(inStep_, "put outside beginStep/endStep");
  ARTSCI_EXPECTS(block.offset.size() == globalExtent.size());
  ARTSCI_EXPECTS(block.extent.size() == globalExtent.size());
  block.writerRank = rank_;
  std::lock_guard<std::mutex> lock(engine_.mutex_);
  auto& step = *engine_.assembling_;
  auto [it, inserted] = step.globalExtents.emplace(variable, globalExtent);
  if (!inserted) {
    ARTSCI_CHECK_MSG(it->second == globalExtent,
                     "global extent mismatch for '" << variable << "'");
  }
  step.variables[variable].push_back(std::move(block));
}

void SstEngine::Writer::setAttribute(const std::string& name, double value) {
  ARTSCI_CHECK_MSG(inStep_, "setAttribute outside a step");
  std::lock_guard<std::mutex> lock(engine_.mutex_);
  engine_.assembling_->numericAttributes[name] = value;
}

void SstEngine::Writer::setAttribute(const std::string& name,
                                     const std::string& value) {
  ARTSCI_CHECK_MSG(inStep_, "setAttribute outside a step");
  std::lock_guard<std::mutex> lock(engine_.mutex_);
  engine_.assembling_->stringAttributes[name] = value;
}

void SstEngine::Writer::endStep() {
  TRACE_SCOPE("stream", "writer_end_step");
  ARTSCI_CHECK_MSG(inStep_, "endStep without beginStep");
  Timer stall;
  std::unique_lock<std::mutex> lock(engine_.mutex_);
  ++engine_.writersEnded_;
  if (engine_.writersEnded_ == engine_.params_.writerRanks) {
    // Last rank publishes — but only once a queue slot is free
    // (back-pressure on the whole writer group).
    engine_.cv_.wait(lock, [this] {
      return engine_.queue_.size() < engine_.params_.queueLimit;
    });
    engine_.bytesPublished_ += engine_.assembling_->totalBytes();
    obs::Registry::global().counter("stream.bytes_published")
        .add(engine_.assembling_->totalBytes());
    obs::Registry::global().counter("stream.steps_published").add();
    engine_.queue_.push_back(std::move(engine_.assembling_));
    obs::Registry::global().gauge("stream.queue_depth")
        .set(static_cast<double>(engine_.queue_.size()));
    engine_.assembling_.reset();
    ++engine_.stepsPublished_;
    ++engine_.nextStep_;
    engine_.writersBegun_ = 0;
    engine_.writersEnded_ = 0;
    // The other ranks are still inside endStep; the next step must not
    // start assembling until all of them have left (gates beginStep).
    engine_.writersDraining_ = engine_.params_.writerRanks - 1;
    engine_.cv_.notify_all();
  } else {
    // Collective EndStep: wait for this rank's step — identified by the
    // id captured at beginStep, so the wait is correct no matter how
    // late it runs relative to the publication or to the next step's
    // beginStep — to be published.
    engine_.cv_.wait(lock, [this] { return engine_.nextStep_ > step_; });
    --engine_.writersDraining_;
    if (engine_.writersDraining_ == 0) engine_.cv_.notify_all();
  }
  engine_.stallSeconds_ += stall.seconds();
  inStep_ = false;
}

void SstEngine::Writer::close() {
  std::lock_guard<std::mutex> lock(engine_.mutex_);
  ++engine_.writersClosed_;
  if (engine_.writersClosed_ == engine_.params_.writerRanks) {
    engine_.closed_ = true;
    engine_.cv_.notify_all();
  }
}

// --- Reader ---------------------------------------------------------------

SstEngine::Reader::Reader(SstEngine& engine, std::size_t rank)
    : engine_(engine), rank_(rank) {
  ARTSCI_EXPECTS(rank < engine.params_.readerRanks);
}

std::shared_ptr<const StepData> SstEngine::Reader::beginStep() {
  TRACE_SCOPE("stream", "reader_begin_step");
  ARTSCI_CHECK_MSG(!inStep_, "reader rank already in a step");
  std::unique_lock<std::mutex> lock(engine_.mutex_);
  engine_.cv_.wait(lock, [this] {
    // Wait for a fresh step, an in-flight group step, or end-of-stream.
    if (engine_.current_ &&
        engine_.readersBegun_ < engine_.params_.readerRanks)
      return true;
    if (!engine_.current_ && !engine_.queue_.empty()) return true;
    return engine_.closed_ && engine_.queue_.empty() && !engine_.current_;
  });
  if (!engine_.current_) {
    if (engine_.queue_.empty()) return nullptr;  // end-of-stream
    engine_.current_ = engine_.queue_.front();
    engine_.readersBegun_ = 0;
    engine_.readersEnded_ = 0;
    engine_.cv_.notify_all();
  }
  ++engine_.readersBegun_;
  inStep_ = true;
  return engine_.current_;
}

void SstEngine::Reader::endStep() {
  TRACE_SCOPE("stream", "reader_end_step");
  ARTSCI_CHECK_MSG(inStep_, "reader endStep without beginStep");
  std::unique_lock<std::mutex> lock(engine_.mutex_);
  ++engine_.readersEnded_;
  if (engine_.readersEnded_ == engine_.params_.readerRanks) {
    // Releasing the step frees the writer-side buffer (queue slot).
    engine_.queue_.pop_front();
    obs::Registry::global().gauge("stream.queue_depth")
        .set(static_cast<double>(engine_.queue_.size()));
    engine_.current_.reset();
    engine_.cv_.notify_all();
  } else {
    const std::shared_ptr<StepData> mine = engine_.current_;
    engine_.cv_.wait(lock, [this, &mine] {
      return engine_.current_ != mine;
    });
  }
  inStep_ = false;
}

std::vector<const Block*> SstEngine::Reader::myBlocks(
    const StepData& step, const std::string& variable) const {
  std::vector<const Block*> out;
  auto it = step.variables.find(variable);
  if (it == step.variables.end()) return out;
  for (const auto& b : it->second) {
    if (b.writerRank % engine_.params_.readerRanks == rank_)
      out.push_back(&b);
  }
  return out;
}

}  // namespace artsci::stream

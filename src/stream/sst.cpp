#include "stream/sst.hpp"

#include <chrono>
#include <cstring>

#include "common/timer.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace artsci::stream {

std::size_t StepData::totalBytes() const {
  std::size_t total = 0;
  for (const auto& [name, blocks] : variables)
    for (const auto& b : blocks) total += b.bytes();
  return total;
}

std::vector<double> StepData::assemble(const std::string& name) const {
  auto varIt = variables.find(name);
  ARTSCI_CHECK_MSG(varIt != variables.end(),
                   "unknown stream variable '" << name << "'");
  auto extIt = globalExtents.find(name);
  ARTSCI_CHECK(extIt != globalExtents.end());
  const auto& global = extIt->second;
  long total = 1;
  for (long d : global) total *= d;
  std::vector<double> out(static_cast<std::size_t>(total), 0.0);

  // Strides of the global extent.
  std::vector<long> strides(global.size(), 1);
  for (int d = static_cast<int>(global.size()) - 2; d >= 0; --d)
    strides[static_cast<std::size_t>(d)] =
        strides[static_cast<std::size_t>(d) + 1] *
        global[static_cast<std::size_t>(d) + 1];

  for (const auto& b : varIt->second) {
    ARTSCI_CHECK(b.offset.size() == global.size());
    // Copy the block row by row (innermost dimension contiguous).
    const long inner = b.extent.empty() ? 1 : b.extent.back();
    long rows = 1;
    for (std::size_t d = 0; d + 1 < b.extent.size(); ++d)
      rows *= b.extent[d];
    for (long r = 0; r < rows; ++r) {
      // Decompose row index into the leading block coordinates.
      long rem = r;
      long dstIdx = 0;
      for (std::size_t d = 0; d + 1 < b.extent.size(); ++d) {
        long blockStride = 1;
        for (std::size_t dd = d + 1; dd + 1 < b.extent.size(); ++dd)
          blockStride *= b.extent[dd];
        const long coord = rem / blockStride;
        rem %= blockStride;
        dstIdx += (coord + b.offset[d]) * strides[d];
      }
      dstIdx += b.offset.back();
      std::memcpy(out.data() + dstIdx,
                  b.payload.data() + r * inner,
                  static_cast<std::size_t>(inner) * sizeof(double));
    }
  }
  return out;
}

SstEngine::SstEngine(SstParams params) : params_(params) {
  ARTSCI_EXPECTS(params.writerRanks >= 1);
  ARTSCI_EXPECTS(params.readerRanks >= 1);
  ARTSCI_EXPECTS(params.queueLimit >= 1);
}

// --- failure machinery ------------------------------------------------------

void SstEngine::failLocked(const std::string& reason) {
  if (failed_) return;  // first failure wins; later ones add no information
  failed_ = true;
  failReason_ = reason;
}

void SstEngine::abort(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    failLocked(reason);
  }
  cv_.notify_all();
}

bool SstEngine::failed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failed_;
}

std::string SstEngine::failReason() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failReason_;
}

void SstEngine::throwIfFailedLocked(const char* where) const {
  if (failed_)
    throw StreamPeerFailedError(std::string("nanoSST ") + where +
                                ": stream failed: " + failReason_);
}

void SstEngine::waitStepLocked(std::unique_lock<std::mutex>& lock,
                               const char* what,
                               const std::function<bool()>& pred) {
  if (params_.stepTimeoutMicros == 0) {
    cv_.wait(lock, pred);
    return;
  }
  if (cv_.wait_for(lock, std::chrono::microseconds(params_.stepTimeoutMicros),
                   pred))
    return;
  // Deadline expired: this peer gives up on the step, which makes the
  // whole stream unusable (a collective step cannot complete without it).
  // Fail the stream so every other waiter wakes with a peer-failure error
  // instead of blocking forever on a group that will never re-form.
  obs::Registry::global().counter("sst.step_timeouts").add();
  const std::string what_s(what);
  failLocked(what_s + " deadline of " +
             std::to_string(params_.stepTimeoutMicros) + " us expired");
  cv_.notify_all();
  throw StreamTimeoutError("nanoSST " + what_s + ": no progress within " +
                           std::to_string(params_.stepTimeoutMicros) +
                           " us step deadline");
}

void SstEngine::injectSiteFault(const char* site, const char* who,
                                std::size_t rank) {
#if ARTSCI_FAULTS
  if (!fault::Plan::global().armed()) return;
  try {
    fault::Plan::global().onSite(site);
  } catch (const fault::PeerDeathError& e) {
    // Peer death is a *stream* failure, not a local one: fail the group so
    // every blocked peer wakes, then let the death propagate to the caller.
    abort(std::string(who) + " rank " + std::to_string(rank) +
          " died: " + e.what());
    throw;
  }
#else
  (void)site;
  (void)who;
  (void)rank;
#endif
}

void SstEngine::publishLocked(std::size_t ended) {
  bytesPublished_ += assembling_->totalBytes();
  obs::Registry::global().counter("stream.bytes_published")
      .add(assembling_->totalBytes());
  obs::Registry::global().counter("stream.steps_published").add();
  queue_.push_back(std::move(assembling_));
  obs::Registry::global().gauge("stream.queue_depth")
      .set(static_cast<double>(queue_.size()));
  assembling_.reset();
  ++stepsPublished_;
  ++nextStep_;
  writersBegun_ = 0;
  writersEnded_ = 0;
  // The other `ended - 1` ranks are still inside endStep; the next step
  // must not start assembling until all of them left (gates beginStep).
  writersDraining_ = ended - 1;
  cv_.notify_all();
}

long SstEngine::stepsPublished() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stepsPublished_;
}

std::size_t SstEngine::bytesPublished() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytesPublished_;
}

double SstEngine::writerStallSeconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stallSeconds_;
}

std::size_t SstEngine::queueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

// --- Writer ---------------------------------------------------------------

SstEngine::Writer::Writer(SstEngine& engine, std::size_t rank)
    : engine_(engine), rank_(rank) {
  ARTSCI_EXPECTS(rank < engine.params_.writerRanks);
}

void SstEngine::Writer::beginStep() {
  TRACE_SCOPE("stream", "writer_begin_step");
  ARTSCI_CHECK_MSG(!inStep_, "writer rank already in a step");
  ARTSCI_CHECK_MSG(!closed_, "beginStep on closed writer");
  engine_.injectSiteFault("sst.writer.begin_step", "writer", rank_);
  std::unique_lock<std::mutex> lock(engine_.mutex_);
  // A publication is complete only once every straggler of the previous
  // group has left endStep (writersDraining_ reaches 0, see endStep).
  // Opening the next assembling step before that would let a straggler
  // observe next-step state from inside the previous step's endStep —
  // the interleaving behind the step-id race this engine had.
  engine_.waitStepLocked(lock, "writer beginStep", [this] {
    return engine_.failed_ || engine_.writersDraining_ == 0;
  });
  engine_.throwIfFailedLocked("writer beginStep");
  if (!engine_.assembling_) {
    engine_.assembling_ = std::make_unique<StepData>();
    engine_.assembling_->step = engine_.nextStep_;
  }
  ++engine_.writersBegun_;
  // Capture the group's step id NOW: endStep waits for *this* id to
  // publish however late it runs. The pre-fix code captured inside
  // endStep from the shared assembling_ pointer — a late endStep could
  // read the *next* step's id there and block until the wrong
  // publication.
  step_ = engine_.assembling_->step;
  inStep_ = true;
}

void SstEngine::Writer::put(const std::string& variable, Block block,
                            std::vector<long> globalExtent) {
  ARTSCI_CHECK_MSG(inStep_, "put outside beginStep/endStep");
  ARTSCI_EXPECTS(block.offset.size() == globalExtent.size());
  ARTSCI_EXPECTS(block.extent.size() == globalExtent.size());
  block.writerRank = rank_;
  std::lock_guard<std::mutex> lock(engine_.mutex_);
  engine_.throwIfFailedLocked("writer put");
  auto& step = *engine_.assembling_;
  auto [it, inserted] = step.globalExtents.emplace(variable, globalExtent);
  if (!inserted) {
    ARTSCI_CHECK_MSG(it->second == globalExtent,
                     "global extent mismatch for '" << variable << "'");
  }
  step.variables[variable].push_back(std::move(block));
}

void SstEngine::Writer::setAttribute(const std::string& name, double value) {
  ARTSCI_CHECK_MSG(inStep_, "setAttribute outside a step");
  std::lock_guard<std::mutex> lock(engine_.mutex_);
  engine_.throwIfFailedLocked("writer setAttribute");
  engine_.assembling_->numericAttributes[name] = value;
}

void SstEngine::Writer::setAttribute(const std::string& name,
                                     const std::string& value) {
  ARTSCI_CHECK_MSG(inStep_, "setAttribute outside a step");
  std::lock_guard<std::mutex> lock(engine_.mutex_);
  engine_.throwIfFailedLocked("writer setAttribute");
  engine_.assembling_->stringAttributes[name] = value;
}

void SstEngine::Writer::endStep() {
  TRACE_SCOPE("stream", "writer_end_step");
  ARTSCI_CHECK_MSG(inStep_, "endStep without beginStep");
  engine_.injectSiteFault("sst.writer.end_step", "writer", rank_);
  Timer stall;
  std::unique_lock<std::mutex> lock(engine_.mutex_);
  ++engine_.writersEnded_;
  engine_.cv_.notify_all();
  // Collective EndStep. Every ender waits on one predicate: the step got
  // published (by a peer, identified via the id captured at beginStep so
  // the wait is correct however late it runs), or this ender can publish
  // it — all *active* writers ended and a queue slot is free
  // (back-pressure on the whole group). "Active" shrinks when a rank
  // close()s mid-step, so a departure can complete the step: the waiters
  // are re-woken by close() and the first one through publishes.
  try {
    engine_.waitStepLocked(lock, "writer endStep", [this] {
      return engine_.failed_ || engine_.nextStep_ > step_ ||
             (engine_.writersEnded_ == engine_.activeWritersLocked() &&
              engine_.queue_.size() < engine_.params_.queueLimit);
    });
    engine_.throwIfFailedLocked("writer endStep");
  } catch (...) {
    // The step died with the stream. Leave the handle out-of-step so the
    // caller's next beginStep surfaces the typed stream failure instead
    // of a misuse ContractError.
    inStep_ = false;
    throw;
  }
  if (engine_.nextStep_ == step_) {
    engine_.publishLocked(engine_.writersEnded_);
  } else {
    --engine_.writersDraining_;
    if (engine_.writersDraining_ == 0) engine_.cv_.notify_all();
  }
  engine_.stallSeconds_ += stall.seconds();
  inStep_ = false;
}

void SstEngine::Writer::close() {
  if (closed_) return;
  closed_ = true;
  std::lock_guard<std::mutex> lock(engine_.mutex_);
  ++engine_.writersClosed_;
  if (inStep_) {
    // Mid-step departure. The step cannot have published yet — publication
    // needs writersEnded_ == activeWriters and this rank, still active and
    // not ended, kept that false. Leave the assembling group; the puts
    // this rank already made stay in the step.
    --engine_.writersBegun_;
    inStep_ = false;
  }
  if (engine_.writersClosed_ == engine_.params_.writerRanks) {
    engine_.closed_ = true;
    // A partially assembled step with no live participant can never
    // publish — drop it rather than leave readers a step that never
    // completes. (With participants still inside endStep at least one
    // rank has not closed, so we cannot get here.)
    if (engine_.assembling_ && engine_.writersEnded_ == 0)
      engine_.assembling_.reset();
  }
  // A departure can complete the current step (remaining enders' predicate
  // flips) or declare end-of-stream — wake everyone either way.
  engine_.cv_.notify_all();
}

// --- Reader ---------------------------------------------------------------

SstEngine::Reader::Reader(SstEngine& engine, std::size_t rank)
    : engine_(engine), rank_(rank) {
  ARTSCI_EXPECTS(rank < engine.params_.readerRanks);
}

std::shared_ptr<const StepData> SstEngine::Reader::beginStep() {
  TRACE_SCOPE("stream", "reader_begin_step");
  ARTSCI_CHECK_MSG(!inStep_, "reader rank already in a step");
  engine_.injectSiteFault("sst.reader.begin_step", "reader", rank_);
  std::unique_lock<std::mutex> lock(engine_.mutex_);
  engine_.waitStepLocked(lock, "reader beginStep", [this] {
    // Wait for a fresh step, an in-flight group step, end-of-stream, or a
    // failed stream.
    if (engine_.failed_) return true;
    if (engine_.current_ &&
        engine_.readersBegun_ < engine_.params_.readerRanks)
      return true;
    if (!engine_.current_ && !engine_.queue_.empty()) return true;
    return engine_.closed_ && engine_.queue_.empty() && !engine_.current_;
  });
  // Fail fast even when steps are still queued: a failed stream's queued
  // steps precede an incomplete one, and consuming them would hand the
  // application a silently truncated run instead of a typed error.
  engine_.throwIfFailedLocked("reader beginStep");
  if (!engine_.current_) {
    if (engine_.queue_.empty()) return nullptr;  // end-of-stream
    engine_.current_ = engine_.queue_.front();
    engine_.readersBegun_ = 0;
    engine_.readersEnded_ = 0;
    engine_.cv_.notify_all();
  }
  ++engine_.readersBegun_;
  inStep_ = true;
  return engine_.current_;
}

void SstEngine::Reader::endStep() {
  TRACE_SCOPE("stream", "reader_end_step");
  ARTSCI_CHECK_MSG(inStep_, "reader endStep without beginStep");
  engine_.injectSiteFault("sst.reader.end_step", "reader", rank_);
  std::unique_lock<std::mutex> lock(engine_.mutex_);
  try {
    engine_.throwIfFailedLocked("reader endStep");
    ++engine_.readersEnded_;
    if (engine_.readersEnded_ == engine_.params_.readerRanks) {
      // Releasing the step frees the writer-side buffer (queue slot).
      engine_.queue_.pop_front();
      obs::Registry::global().gauge("stream.queue_depth")
          .set(static_cast<double>(engine_.queue_.size()));
      engine_.current_.reset();
      engine_.cv_.notify_all();
    } else {
      const std::shared_ptr<StepData> mine = engine_.current_;
      engine_.waitStepLocked(lock, "reader endStep", [this, &mine] {
        return engine_.failed_ || engine_.current_ != mine;
      });
      engine_.throwIfFailedLocked("reader endStep");
    }
  } catch (...) {
    inStep_ = false;  // as in Writer::endStep: fail typed, not ContractError
    throw;
  }
  inStep_ = false;
}

std::vector<const Block*> SstEngine::Reader::myBlocks(
    const StepData& step, const std::string& variable) const {
  std::vector<const Block*> out;
  auto it = step.variables.find(variable);
  if (it == step.variables.end()) return out;
  for (const auto& b : it->second) {
    if (b.writerRank % engine_.params_.readerRanks == rank_)
      out.push_back(&b);
  }
  return out;
}

}  // namespace artsci::stream

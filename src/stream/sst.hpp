/// \file sst.hpp
/// "nanoSST": a step-based staging engine with the contract of ADIOS2's
/// Sustainable Staging Transport [Eisenhauer et al. 2024]:
///
///  * a parallel writer group publishes time steps (BeginStep / Put /
///    EndStep); block metadata is aggregated to writer rank 0 and the
///    step is offered to the reader group;
///  * a parallel reader group consumes steps (BeginStep / Get / EndStep);
///    each reader rank decides which blocks to load (locality-aware);
///    closing the step tells the writer the data can be dropped;
///  * a bounded step queue provides back-pressure: when consumers lag,
///    EndStep blocks and the producing simulation stalls — exactly the
///    "leeway to stall the running simulation" the paper's training
///    buffer relies on;
///  * no data ever touches the filesystem: steps live in memory and move
///    between application memories (in-transit, Fig 3a).
///
/// Fault model (like the real SST, peer failure and step deadlines are
/// first-class):
///  * every blocking wait inside beginStep/endStep honours
///    `SstParams::stepTimeoutMicros` (0 = wait forever); expiry fails the
///    stream for the whole group and the expiring waiter throws
///    StreamTimeoutError — a stalled peer can stall the group for at most
///    one deadline, never deadlock it;
///  * simulated peer death (`FAULT_POINT("sst.writer.end_step")` et al.,
///    fault/fault.hpp) or an explicit `abort()` fails the stream: every
///    current and future waiter wakes and throws StreamPeerFailedError
///    carrying the reason — an incomplete step is aborted, not delivered;
///  * a writer rank that `close()`s leaves the group gracefully: a group
///    step in flight publishes once the *remaining* writers have ended
///    (the departed rank's puts stay in the step), and readers see
///    end-of-stream only after every writer departed — closing never
///    leaves a waiter behind.
///
/// Ranks are threads here; the cluster module models the wire-level
/// behaviour of the real libfabric/MPI data planes at Frontier scale.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace artsci::stream {

/// Base of the typed stream-failure taxonomy. Everything a peer failure
/// can do to a blocking SST call derives from this, so callers can catch
/// coarse (`StreamError`: degrade the pipeline) or fine (`StreamTimeoutError`
/// vs `StreamPeerFailedError`: distinguish a slow peer from a dead one).
class StreamError : public RuntimeError {
 public:
  using RuntimeError::RuntimeError;
};

/// A blocking beginStep/endStep wait exceeded SstParams::stepTimeoutMicros.
/// The stream is failed for the whole group before this is thrown.
class StreamTimeoutError : public StreamError {
 public:
  using StreamError::StreamError;
};

/// Operation on a stream whose writer group already completed close().
class StreamClosedError : public StreamError {
 public:
  using StreamError::StreamError;
};

/// The stream was aborted — a peer died (fault injection or explicit
/// SstEngine::abort) or another waiter's deadline expired. The message
/// carries the recorded failure reason.
class StreamPeerFailedError : public StreamError {
 public:
  using StreamError::StreamError;
};

/// One writer rank's contribution to one variable in one step.
struct Block {
  std::size_t writerRank = 0;
  std::vector<long> offset;  ///< within the variable's global extent
  std::vector<long> extent;
  std::vector<double> payload;  ///< row-major

  std::size_t bytes() const { return payload.size() * sizeof(double); }
};

/// A published time step: all blocks of all variables plus attributes.
struct StepData {
  long step = 0;
  std::map<std::string, std::vector<Block>> variables;
  std::map<std::string, std::vector<long>> globalExtents;
  std::map<std::string, double> numericAttributes;
  std::map<std::string, std::string> stringAttributes;

  std::size_t totalBytes() const;
  /// Gather all blocks of a variable into its dense global array.
  std::vector<double> assemble(const std::string& name) const;
};

struct SstParams {
  std::size_t writerRanks = 1;
  std::size_t readerRanks = 1;
  std::size_t queueLimit = 2;  ///< steps buffered before back-pressure
  /// Deadline for every blocking wait inside beginStep/endStep, on both
  /// sides of the stream. 0 = wait forever (the pre-fault-tolerance
  /// behaviour). On expiry the stream is failed for the whole group: the
  /// expiring call throws StreamTimeoutError, every other waiter wakes
  /// with StreamPeerFailedError, and `sst.step_timeouts` is incremented.
  std::uint64_t stepTimeoutMicros = 0;
};

/// The shared channel. Writer/Reader handles are created per rank.
class SstEngine {
 public:
  explicit SstEngine(SstParams params);

  class Writer {
   public:
    Writer(SstEngine& engine, std::size_t rank);

    void beginStep();
    /// Contribute one block; globalExtent must agree across ranks.
    void put(const std::string& variable, Block block,
             std::vector<long> globalExtent);
    void setAttribute(const std::string& name, double value);
    void setAttribute(const std::string& name, const std::string& value);
    /// Publish when all *active* writer ranks arrived; blocks while the
    /// step queue is full (back-pressure).
    void endStep();
    /// Leave the writer group (idempotent). Safe mid-step: a group step in
    /// flight still publishes once the remaining writers have ended, and
    /// waiters blocked on this rank are woken — close never strands a
    /// peer. End-of-stream is declared once every rank closed.
    void close();

    std::size_t rank() const { return rank_; }

   private:
    SstEngine& engine_;
    std::size_t rank_;
    bool inStep_ = false;
    bool closed_ = false;  ///< this handle already left the group
    /// Step id of the group step this rank joined, captured at beginStep
    /// (NOT read from the shared assembling step inside endStep, where a
    /// late arrival could observe the next step's id and wait for the
    /// wrong publication).
    long step_ = -1;
  };

  class Reader {
   public:
    Reader(SstEngine& engine, std::size_t rank);

    /// Next step, or nullptr at end-of-stream. All reader ranks receive
    /// the same step.
    std::shared_ptr<const StepData> beginStep();
    /// Release the step; when every reader rank ended, the queue slot is
    /// freed and the writer may proceed.
    void endStep();

    /// Locality-aware default assignment: blocks whose writerRank maps to
    /// this reader (writerRank % readerRanks == rank) — "data is shared
    /// within node boundaries" (paper §IV-D).
    std::vector<const Block*> myBlocks(const StepData& step,
                                       const std::string& variable) const;

    std::size_t rank() const { return rank_; }
    std::size_t bytesRead() const { return bytesRead_; }
    /// Account a Get (for throughput bookkeeping).
    void recordRead(std::size_t bytes) { bytesRead_ += bytes; }

   private:
    SstEngine& engine_;
    std::size_t rank_;
    bool inStep_ = false;
    std::size_t bytesRead_ = 0;
  };

  Writer makeWriter(std::size_t rank) { return Writer(*this, rank); }
  Reader makeReader(std::size_t rank) { return Reader(*this, rank); }

  const SstParams& params() const { return params_; }

  /// Fail the stream: record `reason`, wake every waiter, and make every
  /// current and future beginStep/endStep/put on either side throw
  /// StreamPeerFailedError. Idempotent (the first reason wins). This is
  /// what simulated peer death and deadline expiry call internally; a
  /// pipeline supervisor can also call it to tear down a partner stream
  /// after its sibling failed.
  void abort(const std::string& reason);
  bool failed() const;
  std::string failReason() const;

  // --- statistics -------------------------------------------------------
  long stepsPublished() const;
  std::size_t bytesPublished() const;
  double writerStallSeconds() const;  ///< total back-pressure stall time
  std::size_t queueDepth() const;

 private:
  friend class Writer;
  friend class Reader;

  /// Writers still in the group (writerRanks minus the closed ones).
  /// Collective steps complete when this many ranks have ended.
  std::size_t activeWritersLocked() const {
    return params_.writerRanks - writersClosed_;
  }
  void throwIfFailedLocked(const char* where) const;
  /// cv_ wait honouring params_.stepTimeoutMicros; on expiry fails the
  /// stream, bumps `sst.step_timeouts`, and throws StreamTimeoutError.
  /// std::function is fine here: every call site is a blocking wait.
  void waitStepLocked(std::unique_lock<std::mutex>& lock, const char* what,
                      const std::function<bool()>& pred);
  void failLocked(const std::string& reason);
  /// Move the assembling step to the queue and open the next group step.
  /// `ended` is the number of ranks that completed the step (the current
  /// active-writer count at publication time).
  void publishLocked(std::size_t ended);
  /// Run a FAULT_POINT, translating injected peer death into a
  /// whole-stream abort (then rethrows). Called outside mutex_.
  void injectSiteFault(const char* site, const char* who, std::size_t rank);

  SstParams params_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;

  // Stream-failure state (peer death / timeout / explicit abort).
  bool failed_ = false;
  std::string failReason_;

  // Step under assembly by the writer group.
  std::unique_ptr<StepData> assembling_;
  std::size_t writersBegun_ = 0;
  std::size_t writersEnded_ = 0;
  /// Stragglers of the last published step that have not yet left
  /// endStep; beginStep may not open the next step until this is 0.
  std::size_t writersDraining_ = 0;
  long nextStep_ = 0;

  // Published steps awaiting consumption.
  std::deque<std::shared_ptr<StepData>> queue_;

  // Reader-group coordination.
  std::shared_ptr<StepData> current_;
  std::size_t readersBegun_ = 0;
  std::size_t readersEnded_ = 0;

  std::size_t writersClosed_ = 0;
  bool closed_ = false;

  long stepsPublished_ = 0;
  std::size_t bytesPublished_ = 0;
  double stallSeconds_ = 0;
};

}  // namespace artsci::stream

/// \file gradcheck.hpp
/// Finite-difference gradient verification used throughout tests/ml.
#pragma once

#include <functional>
#include <vector>

#include "ml/tensor.hpp"

namespace artsci::ml {

struct GradCheckResult {
  Real maxAbsError = Real(0);
  Real maxRelError = Real(0);
  bool ok = true;
};

/// Verify d(fn)/d(inputs) by central differences.
/// `fn` must build a fresh graph from the inputs and return a scalar.
/// Checks every element when the input has <= `maxElements` entries,
/// otherwise a deterministic stride-sampled subset.
GradCheckResult gradCheck(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, Real epsilon = Real(1e-5),
    Real tolerance = Real(1e-6), long maxElements = 512);

}  // namespace artsci::ml

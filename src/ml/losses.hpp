/// \file losses.hpp
/// The five loss terms of the paper's Eq. (1) plus the EMD alternative the
/// authors could not run on Frontier (no HIP KeOps) — we provide it for the
/// cost-ratio ablation.
#pragma once

#include "ml/ops.hpp"
#include "ml/tensor.hpp"

namespace artsci::ml {

/// Mean squared error over all elements (L_MSE for the predicted spectrum).
Tensor mseLoss(const Tensor& prediction, const Tensor& target);

/// KL divergence of N(mu, exp(logvar)) against the standard normal,
/// averaged over the batch and latent dimensions (L_KL of the VAE):
///   KL = -1/2 * mean(1 + logvar - mu^2 - exp(logvar)).
Tensor klStandardNormal(const Tensor& mu, const Tensor& logvar);

/// Maximum mean discrepancy with an inverse multi-quadratic kernel
/// k(x,y) = sum_s s / (s + ||x-y||^2), the kernel recommended for INNs by
/// Ardizzone et al. x:[N,D], y:[M,D]; biased V-statistic estimator.
Tensor mmdInverseMultiquadratic(
    const Tensor& x, const Tensor& y,
    const std::vector<Real>& scales = {Real(0.2), Real(1), Real(5)});

/// Earth mover's (2-Wasserstein^2) distance between batched point clouds
/// a:[B,N,D], b:[B,M,D], computed via entropy-regularized Sinkhorn
/// iterations on the pairwise squared distances. The gradient uses the
/// converged transport plan (envelope theorem), matching geomloss's
/// practical behaviour at small epsilon. ~4x the cost of Chamfer at equal
/// sizes (ablation A2).
struct SinkhornParams {
  Real epsilon = Real(0.05);  ///< entropic regularization (relative to
                              ///< mean pairwise distance)
  int iterations = 30;
};
Tensor emdSinkhorn(const Tensor& a, const Tensor& b,
                   const SinkhornParams& params = {});

/// Weighted total of Eq. (1):
///   L = L_CD + 0.001 L_KL + 0.3 L_MSE + 40 L_MMD(z,z') + 0.03 L_MMD(N,N').
struct LossWeights {
  Real chamfer = Real(1);
  Real kl = Real(0.001);
  Real mse = Real(0.3);
  Real mmdLatent = Real(40);    ///< L_MMD(z, z')
  Real mmdPosterior = Real(0.03);  ///< L_MMD(N, N')
};

/// Individual terms, kept separate for logging (the paper reports the
/// convergence of the VAE and INN terms separately in §V-A.1).
struct LossTerms {
  Tensor chamfer;
  Tensor kl;
  Tensor mse;
  Tensor mmdLatent;
  Tensor mmdPosterior;
};

/// Combine terms with weights into the scalar training loss.
Tensor totalLoss(const LossTerms& terms, const LossWeights& weights);

}  // namespace artsci::ml

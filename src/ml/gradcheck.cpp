#include "ml/gradcheck.hpp"

#include <algorithm>
#include <cmath>

namespace artsci::ml {

GradCheckResult gradCheck(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    std::vector<Tensor> inputs, Real epsilon, Real tolerance,
    long maxElements) {
  for (auto& in : inputs) in.setRequiresGrad(true);

  // Analytic gradients.
  for (auto& in : inputs) in.zeroGrad();
  Tensor loss = fn(inputs);
  loss.backward();
  std::vector<std::vector<Real>> analytic;
  analytic.reserve(inputs.size());
  for (auto& in : inputs) {
    in.impl()->ensureGrad();
    analytic.push_back(in.grad());
  }

  GradCheckResult result;
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    auto& data = inputs[t].data();
    const long n = static_cast<long>(data.size());
    const long stride = std::max<long>(1, n / maxElements);
    for (long i = 0; i < n; i += stride) {
      const Real saved = data[static_cast<std::size_t>(i)];
      data[static_cast<std::size_t>(i)] = saved + epsilon;
      const Real fPlus = fn(inputs).item();
      data[static_cast<std::size_t>(i)] = saved - epsilon;
      const Real fMinus = fn(inputs).item();
      data[static_cast<std::size_t>(i)] = saved;
      const Real numeric = (fPlus - fMinus) / (Real(2) * epsilon);
      const Real exact = analytic[t][static_cast<std::size_t>(i)];
      const Real absErr = std::abs(numeric - exact);
      const Real denom = std::max({std::abs(numeric), std::abs(exact),
                                   Real(1)});
      const Real relErr = absErr / denom;
      result.maxAbsError = std::max(result.maxAbsError, absErr);
      result.maxRelError = std::max(result.maxRelError, relErr);
    }
  }
  result.ok = result.maxRelError <= tolerance;
  return result;
}

}  // namespace artsci::ml

#include "ml/serialize.hpp"

#include <cstdint>
#include <fstream>

namespace artsci::ml {

namespace {
constexpr std::uint64_t kMagic = 0x41525453'43495031ULL;  // "ARTSCIP1"
}

void saveParameters(const std::string& path,
                    const std::vector<Tensor>& params) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  ARTSCI_CHECK_MSG(os.good(), "cannot open '" << path << "' for writing");
  auto writeU64 = [&os](std::uint64_t v) {
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  writeU64(kMagic);
  writeU64(params.size());
  for (const auto& p : params) {
    writeU64(p.shape().size());
    for (long d : p.shape()) writeU64(static_cast<std::uint64_t>(d));
    os.write(reinterpret_cast<const char*>(p.data().data()),
             static_cast<std::streamsize>(p.data().size() * sizeof(Real)));
  }
  ARTSCI_CHECK_MSG(os.good(), "write to '" << path << "' failed");
}

void loadParameters(const std::string& path, std::vector<Tensor>& params) {
  std::ifstream is(path, std::ios::binary);
  ARTSCI_CHECK_MSG(is.good(), "cannot open '" << path << "' for reading");
  auto readU64 = [&is]() {
    std::uint64_t v = 0;
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    return v;
  };
  ARTSCI_CHECK_MSG(readU64() == kMagic,
                   "'" << path << "' is not an artsci checkpoint");
  const std::uint64_t count = readU64();
  ARTSCI_CHECK_MSG(count == params.size(),
                   "checkpoint has " << count << " tensors, expected "
                                     << params.size());
  for (auto& p : params) {
    const std::uint64_t nd = readU64();
    Shape shape(nd);
    for (auto& d : shape) d = static_cast<long>(readU64());
    ARTSCI_CHECK_MSG(shape == p.shape(),
                     "checkpoint shape " << shapeToString(shape)
                                         << " != parameter shape "
                                         << shapeToString(p.shape()));
    is.read(reinterpret_cast<char*>(p.data().data()),
            static_cast<std::streamsize>(p.data().size() * sizeof(Real)));
  }
  ARTSCI_CHECK_MSG(is.good(), "read from '" << path << "' failed");
}

}  // namespace artsci::ml

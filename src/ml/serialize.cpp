#include "ml/serialize.hpp"

#include <cstdint>
#include <fstream>

#include "common/log.hpp"

namespace artsci::ml {

namespace {
constexpr std::uint64_t kMagicV1 = 0x41525453'43495031ULL;  // "ARTSCIP1"
constexpr std::uint64_t kMagicV2 = 0x41525453'43495032ULL;  // "ARTSCIP2"
constexpr std::uint64_t kVersion = 2;
/// Reject absurd header words before allocating: the in-memory Shape is a
/// fixed small buffer (ml::detail::kMaxNdim == 8), so anything larger is a
/// corrupt header by construction.
constexpr std::uint64_t kMaxNdim = 8;

std::uint64_t totalElements(const std::vector<Tensor>& params) {
  std::uint64_t n = 0;
  for (const auto& p : params) n += static_cast<std::uint64_t>(p.numel());
  return n;
}

}  // namespace

void saveParameters(const std::string& path,
                    const std::vector<Tensor>& params) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  ARTSCI_CHECK_MSG(os.good(), "cannot open '" << path << "' for writing");
  auto writeU64 = [&os](std::uint64_t v) {
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  writeU64(kMagicV2);
  writeU64(kVersion);
  writeU64(params.size());
  writeU64(totalElements(params));
  for (const auto& p : params) {
    writeU64(p.shape().size());
    for (long d : p.shape()) writeU64(static_cast<std::uint64_t>(d));
    os.write(reinterpret_cast<const char*>(p.data().data()),
             static_cast<std::streamsize>(p.data().size() * sizeof(Real)));
  }
  ARTSCI_CHECK_MSG(os.good(), "write to '" << path << "' failed");
}

void loadParameters(const std::string& path, std::vector<Tensor>& params) {
  std::ifstream is(path, std::ios::binary);
  ARTSCI_CHECK_MSG(is.good(), "cannot open '" << path << "' for reading");
  auto readU64 = [&is, &path](const char* what) {
    std::uint64_t v = 0;
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    ARTSCI_CHECK_MSG(is.good(), "'" << path << "' is truncated (while reading "
                                    << what << ")");
    return v;
  };
  const std::uint64_t magic = readU64("magic");
  ARTSCI_CHECK_MSG(magic == kMagicV1 || magic == kMagicV2,
                   "'" << path << "' is not an artsci checkpoint");
  std::uint64_t declaredElements = 0;
  const bool versioned = (magic == kMagicV2);
  if (!versioned) {
    // Legacy files predate config-derived INN permutations
    // (Inn::Config::permSeed): they were written by builds that drew
    // permutations from the weight-init RNG, which this build no longer
    // reproduces. Shapes still match, so the load proceeds — but a model
    // trained under the old scheme will pair these weights with different
    // permutations and predict silently different values.
    log::warn("serialize",
              "'", path,
              "' is a legacy (unversioned) checkpoint written before INN "
              "permutations were derived from the model config; restored "
              "predictions may not match the original trained network. "
              "Re-save with saveParameters() to upgrade.");
  }
  if (versioned) {
    const std::uint64_t version = readU64("version");
    ARTSCI_CHECK_MSG(version == kVersion,
                     "'" << path << "' has checkpoint version " << version
                         << ", this build reads version " << kVersion
                         << " (and the legacy unversioned format)");
  }
  const std::uint64_t count = readU64("tensor count");
  ARTSCI_CHECK_MSG(count == params.size(),
                   "checkpoint '" << path << "' has " << count
                                  << " tensors, expected " << params.size());
  if (versioned) {
    declaredElements = readU64("element count");
    ARTSCI_CHECK_MSG(
        declaredElements == totalElements(params),
        "checkpoint '" << path << "' holds " << declaredElements
                       << " scalars, the target parameter list holds "
                       << totalElements(params)
                       << " — model architecture mismatch");
  }
  std::size_t index = 0;
  for (auto& p : params) {
    const std::uint64_t nd = readU64("tensor rank");
    ARTSCI_CHECK_MSG(nd <= kMaxNdim, "checkpoint '"
                                         << path << "' tensor " << index
                                         << " declares rank " << nd
                                         << " — corrupt header");
    Shape shape(nd);
    for (auto& d : shape) d = static_cast<long>(readU64("tensor shape"));
    ARTSCI_CHECK_MSG(shape == p.shape(),
                     "checkpoint '" << path << "' tensor " << index
                                    << " has shape " << shapeToString(shape)
                                    << " != parameter shape "
                                    << shapeToString(p.shape()));
    is.read(reinterpret_cast<char*>(p.data().data()),
            static_cast<std::streamsize>(p.data().size() * sizeof(Real)));
    ARTSCI_CHECK_MSG(is.good(), "'" << path << "' is truncated inside tensor "
                                    << index << " payload");
    ++index;
  }
  // Trailing garbage means the file does not describe this parameter list
  // (e.g. a checkpoint of a larger model with a coincidental prefix).
  is.peek();
  ARTSCI_CHECK_MSG(is.eof(), "checkpoint '"
                                 << path
                                 << "' has trailing bytes after the last "
                                    "tensor — architecture mismatch");
}

void copyParameters(const std::vector<Tensor>& src, std::vector<Tensor>& dst) {
  ARTSCI_EXPECTS_MSG(src.size() == dst.size(),
                     "copyParameters: " << src.size() << " source vs "
                                        << dst.size() << " target tensors");
  for (std::size_t i = 0; i < src.size(); ++i) {
    ARTSCI_CHECK_MSG(src[i].shape() == dst[i].shape(),
                     "copyParameters: tensor " << i << " shape "
                                               << shapeToString(src[i].shape())
                                               << " != "
                                               << shapeToString(dst[i].shape()));
    dst[i].data() = src[i].data();
  }
}

}  // namespace artsci::ml

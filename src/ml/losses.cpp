#include "ml/losses.hpp"

#include <cmath>

namespace artsci::ml {

Tensor mseLoss(const Tensor& prediction, const Tensor& target) {
  ARTSCI_EXPECTS_MSG(prediction.shape() == target.shape(),
                     "mseLoss shape mismatch: "
                         << shapeToString(prediction.shape()) << " vs "
                         << shapeToString(target.shape()));
  return meanAll(square(sub(prediction, target)));
}

Tensor klStandardNormal(const Tensor& mu, const Tensor& logvar) {
  ARTSCI_EXPECTS(mu.shape() == logvar.shape());
  // -1/2 * mean(1 + logvar - mu^2 - exp(logvar))
  Tensor inner =
      sub(sub(addScalar(logvar, Real(1)), square(mu)), expT(logvar));
  return mulScalar(meanAll(inner), Real(-0.5));
}

Tensor mmdInverseMultiquadratic(const Tensor& x, const Tensor& y,
                                const std::vector<Real>& scales) {
  ARTSCI_EXPECTS(x.ndim() == 2 && y.ndim() == 2);
  ARTSCI_EXPECTS(x.dim(1) == y.dim(1));
  ARTSCI_EXPECTS(!scales.empty());
  Tensor dxx = pairwiseSquaredDistances(x, x);
  Tensor dyy = pairwiseSquaredDistances(y, y);
  Tensor dxy = pairwiseSquaredDistances(x, y);
  auto kernelMean = [&scales](const Tensor& d2) {
    Tensor acc;
    for (Real s : scales) {
      // s / (s + d^2)
      Tensor k = mulScalar(reciprocal(addScalar(d2, s)), s);
      acc = acc.defined() ? add(acc, k) : k;
    }
    return meanAll(acc);
  };
  Tensor mmd = sub(add(kernelMean(dxx), kernelMean(dyy)),
                   mulScalar(kernelMean(dxy), Real(2)));
  // Clip tiny negatives from the biased estimator.
  return relu(mmd);
}

namespace {

/// Sinkhorn on one batch item: returns transport plan P (size N*M) between
/// uniform marginals, for cost matrix c2 (squared distances).
void sinkhornPlan(const Real* c2, long N, long M, Real epsilon, int iters,
                  std::vector<Real>& plan) {
  // Scale epsilon by the mean cost so the regularization strength is
  // resolution-independent.
  Real meanCost = Real(0);
  for (long i = 0; i < N * M; ++i) meanCost += c2[i];
  meanCost /= static_cast<Real>(N * M);
  const Real eps = std::max(epsilon * std::max(meanCost, Real(1e-12)),
                            Real(1e-12));

  std::vector<Real> K(static_cast<std::size_t>(N * M));
  for (long i = 0; i < N * M; ++i) K[static_cast<std::size_t>(i)] =
      std::exp(-c2[i] / eps);
  std::vector<Real> u(static_cast<std::size_t>(N), Real(1));
  std::vector<Real> v(static_cast<std::size_t>(M), Real(1));
  const Real ra = Real(1) / static_cast<Real>(N);
  const Real rb = Real(1) / static_cast<Real>(M);
  for (int it = 0; it < iters; ++it) {
    for (long i = 0; i < N; ++i) {
      Real s = Real(0);
      const Real* row = K.data() + i * M;
      for (long j = 0; j < M; ++j) s += row[j] * v[static_cast<std::size_t>(j)];
      u[static_cast<std::size_t>(i)] = ra / std::max(s, Real(1e-300));
    }
    for (long j = 0; j < M; ++j) {
      Real s = Real(0);
      for (long i = 0; i < N; ++i)
        s += K[static_cast<std::size_t>(i * M + j)] *
             u[static_cast<std::size_t>(i)];
      v[static_cast<std::size_t>(j)] = rb / std::max(s, Real(1e-300));
    }
  }
  plan.resize(static_cast<std::size_t>(N * M));
  for (long i = 0; i < N; ++i)
    for (long j = 0; j < M; ++j)
      plan[static_cast<std::size_t>(i * M + j)] =
          u[static_cast<std::size_t>(i)] * K[static_cast<std::size_t>(i * M + j)] *
          v[static_cast<std::size_t>(j)];
}

}  // namespace

namespace {

/// Entropy-regularized OT cost between uniform clouds x:[N,D], y:[M,D] for
/// one batch item; the converged plan is returned for gradients.
Real otCost(const Real* x, long N, const Real* y, long M, long D,
            const SinkhornParams& params, std::vector<Real>& plan) {
  std::vector<Real> c2(static_cast<std::size_t>(N * M));
  for (long i = 0; i < N; ++i) {
    for (long j = 0; j < M; ++j) {
      Real d2 = Real(0);
      for (long d = 0; d < D; ++d) {
        const Real diff = x[i * D + d] - y[j * D + d];
        d2 += diff * diff;
      }
      c2[static_cast<std::size_t>(i * M + j)] = d2;
    }
  }
  sinkhornPlan(c2.data(), N, M, params.epsilon, params.iterations, plan);
  Real cost = Real(0);
  for (long i = 0; i < N * M; ++i)
    cost += plan[static_cast<std::size_t>(i)] * c2[static_cast<std::size_t>(i)];
  return cost;
}

}  // namespace

Tensor emdSinkhorn(const Tensor& a0, const Tensor& b0,
                   const SinkhornParams& params) {
  ARTSCI_EXPECTS(a0.ndim() == 3 && b0.ndim() == 3);
  Tensor a = asContiguous(a0);
  Tensor b = asContiguous(b0);
  const long B = a.dim(0), N = a.dim(1), D = a.dim(2), M = b.dim(1);
  ARTSCI_EXPECTS(b.dim(0) == B && b.dim(2) == D);
  Tensor out = makeResult({1}, {a, b}, "emdSinkhorn");

  const Real* A = a.dataPtr();
  const Real* Bd = b.dataPtr();
  // Debiased Sinkhorn divergence (geomloss): S = OT(a,b) - OT(a,a)/2
  // - OT(b,b)/2, which removes the entropic bias so S(a,a) == 0.
  std::vector<std::vector<Real>> planAB(static_cast<std::size_t>(B));
  std::vector<std::vector<Real>> planAA(static_cast<std::size_t>(B));
  std::vector<std::vector<Real>> planBB(static_cast<std::size_t>(B));
  // Per-batch partials summed in index order afterwards: an OpenMP `+`
  // reduction combines in thread-arrival order, which is not run-invariant.
  std::vector<Real> partial(static_cast<std::size_t>(B));

#pragma omp parallel for schedule(static)
  for (long bi = 0; bi < B; ++bi) {
    const Real* ab = A + bi * N * D;
    const Real* bb = Bd + bi * M * D;
    const auto s = static_cast<std::size_t>(bi);
    const Real cab = otCost(ab, N, bb, M, D, params, planAB[s]);
    const Real caa = otCost(ab, N, ab, N, D, params, planAA[s]);
    const Real cbb = otCost(bb, M, bb, M, D, params, planBB[s]);
    partial[s] = cab - Real(0.5) * caa - Real(0.5) * cbb;
  }
  Real total = Real(0);
  for (Real p : partial) total += p;
  out.dataPtr()[0] = std::max(total / static_cast<Real>(B), Real(0));

  if (out.requiresGrad()) {
    auto pa = a.impl_;
    auto pb = b.impl_;
    out.impl_->backwardFn = [pa, pb, planAB = std::move(planAB),
                             planAA = std::move(planAA),
                             planBB = std::move(planBB), B, N, M,
                             D](TensorImpl& self) {
      // Envelope theorem: at the converged plans the cost gradient w.r.t.
      // the points keeps the plans fixed.
      const Real g = self.gradPtr()[0] / static_cast<Real>(B);
      const Real* A2 = pa->dataPtr();
      const Real* B2 = pb->dataPtr();
      Real* ga = nullptr;
      Real* gb = nullptr;
      if (pa->requiresGrad) {
        pa->ensureGrad();
        ga = pa->gradPtr();
      }
      if (pb->requiresGrad) {
        pb->ensureGrad();
        gb = pb->gradPtr();
      }
      // d/dx sum_ij P_ij ||x_i - y_j||^2 = sum_j 2 P_ij (x_i - y_j),
      // and symmetrically for y. `sign` scales the term's weight.
      auto accumulate = [g, D](const std::vector<Real>& plan, const Real* x,
                               long n, Real* gx, long xBase, const Real* y,
                               long m, Real* gy, long yBase, Real sign) {
        if (!gx && !gy) return;
        for (long i = 0; i < n; ++i) {
          for (long j = 0; j < m; ++j) {
            const Real p = plan[static_cast<std::size_t>(i * m + j)];
            if (p == Real(0)) continue;
            for (long d = 0; d < D; ++d) {
              const Real diff =
                  Real(2) * p * (x[i * D + d] - y[j * D + d]);
              if (gx) gx[xBase + i * D + d] += sign * g * diff;
              if (gy) gy[yBase + j * D + d] -= sign * g * diff;
            }
          }
        }
      };
      for (long bi = 0; bi < B; ++bi) {
        const auto s = static_cast<std::size_t>(bi);
        const Real* ab = A2 + bi * N * D;
        const Real* bb = B2 + bi * M * D;
        const long aBase = bi * N * D;
        const long bBase = bi * M * D;
        accumulate(planAB[s], ab, N, ga, aBase, bb, M, gb, bBase, Real(1));
        accumulate(planAA[s], ab, N, ga, aBase, ab, N, ga, aBase,
                   Real(-0.5));
        accumulate(planBB[s], bb, M, gb, bBase, bb, M, gb, bBase,
                   Real(-0.5));
      }
    };
  }
  return out;
}

Tensor totalLoss(const LossTerms& terms, const LossWeights& weights) {
  Tensor total = mulScalar(terms.chamfer, weights.chamfer);
  total = add(total, mulScalar(terms.kl, weights.kl));
  total = add(total, mulScalar(terms.mse, weights.mse));
  total = add(total, mulScalar(terms.mmdLatent, weights.mmdLatent));
  total = add(total, mulScalar(terms.mmdPosterior, weights.mmdPosterior));
  return total;
}

}  // namespace artsci::ml

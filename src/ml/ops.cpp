#include "ml/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <type_traits>

#include "ml/kernels/gemm.hpp"

namespace artsci::ml {

// The kernel library is dependency-free and declares its own scalar type;
// the two must agree for the raw-buffer calls below.
static_assert(std::is_same_v<Real, kernels::Real>,
              "ml::Real and kernels::Real diverged");

namespace {

/// Storage index of logical flat index `i` for any layout.
inline long physIdx(const TensorImpl& im, long i) {
  return im.contiguous ? i : logicalToStorage(im.shape, im.strides, i);
}

/// Map a logical flat index in `outShape` to the *storage* index of an
/// input that broadcasts to outShape (right-aligned). `inStrides` are the
/// input's physical strides, so stride-0 broadcast axes and view layouts
/// are handled by the same arithmetic; for contiguous inputs this
/// produces exactly the indices the pre-view code computed.
long mapBroadcastIndex(long flat, const Shape& outShape,
                       const Strides& outStrides, const Shape& inShape,
                       const Strides& inStrides) {
  const int offset = static_cast<int>(outShape.size() - inShape.size());
  long idx = 0;
  for (std::size_t d = 0; d < outShape.size(); ++d) {
    const long coord = (flat / outStrides[d]) % outShape[d];
    const int din = static_cast<int>(d) - offset;
    if (din >= 0) {
      const long dim = inShape[static_cast<std::size_t>(din)];
      idx += (dim == 1 ? 0 : coord) * inStrides[static_cast<std::size_t>(din)];
    }
  }
  return idx;
}

/// Row-major traversal cursor yielding successive storage indices of an
/// input that broadcasts to `outShape` — the same mapping as
/// mapBroadcastIndex, but the per-element div/mod chain is amortized to
/// counter increments (a couple of adds per step). Traversal order and
/// the produced indices are identical, so results are bitwise unchanged;
/// this is what makes elementwise ops on strided views cost roughly the
/// same as on dense tensors.
class StridedCursor {
 public:
  StridedCursor(const Shape& outShape, const Shape& inShape,
                const Strides& inStrides)
      : shape_(outShape),
        eff_(outShape.size(), 0),
        counters_(outShape.size(), 0) {
    const int offset = static_cast<int>(outShape.size() - inShape.size());
    for (std::size_t d = 0; d < outShape.size(); ++d) {
      const int din = static_cast<int>(d) - offset;
      if (din >= 0 && inShape[static_cast<std::size_t>(din)] != 1)
        eff_[d] = inStrides[static_cast<std::size_t>(din)];
    }
  }
  /// Convenience for the non-broadcast case (same logical shape).
  StridedCursor(const Shape& shape, const Strides& strides)
      : StridedCursor(shape, shape, strides) {}

  /// Storage index of the current logical slot, then advance one slot.
  long next() {
    const long cur = idx_;
    for (int d = static_cast<int>(shape_.size()) - 1; d >= 0; --d) {
      const std::size_t du = static_cast<std::size_t>(d);
      idx_ += eff_[du];
      if (++counters_[du] < shape_[du]) return cur;
      idx_ -= eff_[du] * shape_[du];
      counters_[du] = 0;
    }
    return cur;
  }

 private:
  Shape shape_;
  Strides eff_;
  Shape counters_;
  long idx_ = 0;
};

bool sameShape(const Shape& a, const Shape& b) { return a == b; }

/// View-producing ops materialize copies when views are toggled off OR
/// the pre-refactor baseline lane is pinned (ExecOptions::legacyExec).
inline bool viewsOn() {
  const ExecOptions& o = execOptions();
  return o.useViews && !o.legacyExec;
}

/// True if b's shape is an exact suffix of a's shape (fast bias-add path).
bool isSuffix(const Shape& a, const Shape& b) {
  if (b.size() > a.size()) return false;
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (b[b.size() - 1 - i] != a[a.size() - 1 - i]) return false;
  }
  return true;
}

/// ensureGrad + return base grad pointer, or nullptr if the parent
/// doesn't need grad. Index with the parent's physical strides.
Real* gradOf(const std::shared_ptr<TensorImpl>& p) {
  if (!p->requiresGrad) return nullptr;
  p->ensureGrad();
  return p->gradPtr();
}

/// Work threshold above which the GEMM kernels go OpenMP row-parallel
/// (the same gate the former naive loops used).
inline bool gemmParallel(long M, long N, long K) {
  return M * N * K > (1L << 16);
}

/// A 2-D tensor the GEMM kernels can read in place: unit inner stride and
/// non-overlapping rows (arbitrary leading dimension). Column-slice views
/// qualify; transposed views do not.
bool gemmCompatible(const TensorImpl& im) {
  return im.contiguous ||
         (im.shape.size() == 2 && im.strides[1] == 1 &&
          im.strides[0] >= im.shape[1]);
}

template <typename FwdOp, typename DA, typename DB>
Tensor binaryOp(const Tensor& a, const Tensor& b, const char* name, FwdOp fwd,
                DA dfdA, DB dfdB) {
  const Shape outShape = broadcastShapes(a.shape(), b.shape());
  Tensor out = makeResult(outShape, {a, b}, name);
  const long n = out.numel();
  const TensorImpl& ai = *a.impl();
  const TensorImpl& bi = *b.impl();
  const Real* ad = ai.dataPtr();
  const Real* bd = bi.dataPtr();
  Real* od = out.dataPtr();

  const bool aDense = ai.contiguous && sameShape(ai.shape, outShape);
  const bool bDense = bi.contiguous && sameShape(bi.shape, outShape);
  if (aDense && bDense) {
#pragma omp parallel for schedule(static) if (n > (1L << 14))
    for (long i = 0; i < n; ++i)
      od[i] = fwd(ad[i], bd[i]);
  } else if (aDense && bi.contiguous && isSuffix(outShape, bi.shape)) {
    const long bn = bi.numel_;
#pragma omp parallel for schedule(static) if (n > (1L << 14))
    for (long i = 0; i < n; ++i)
      od[i] = fwd(ad[i], bd[i % bn]);
  } else {
    StridedCursor ca(outShape, ai.shape, ai.strides);
    StridedCursor cb(outShape, bi.shape, bi.strides);
    for (long i = 0; i < n; ++i) od[i] = fwd(ad[ca.next()], bd[cb.next()]);
  }

  if (out.requiresGrad()) {
    auto pa = a.impl_;
    auto pb = b.impl_;
    out.impl_->backwardFn = [pa, pb, outShape, dfdA, dfdB](TensorImpl& self) {
      const long n2 = self.numel();
      Real* ga = gradOf(pa);
      Real* gb = gradOf(pb);
      const Real* ad2 = pa->dataPtr();
      const Real* bd2 = pb->dataPtr();
      const Real* sg = self.gradPtr();
      if (execOptions().legacyExec) {
        // Baseline lane: the pre-refactor div/mod index mapping per
        // element. Identical indices and arithmetic to the cursor loop
        // below, just recomputed from scratch each iteration.
        const Strides outStrides = rowMajorStrides(outShape);
        for (long i = 0; i < n2; ++i) {
          const long ia = mapBroadcastIndex(i, outShape, outStrides,
                                            pa->shape, pa->strides);
          const long ib = mapBroadcastIndex(i, outShape, outStrides,
                                            pb->shape, pb->strides);
          const Real av = ad2[ia];
          const Real bv = bd2[ib];
          const Real g = sg[i];
          if (ga) ga[ia] += g * dfdA(av, bv);
          if (gb) gb[ib] += g * dfdB(av, bv);
        }
        return;
      }
      StridedCursor ca(outShape, pa->shape, pa->strides);
      StridedCursor cb(outShape, pb->shape, pb->strides);
      for (long i = 0; i < n2; ++i) {
        const long ia = ca.next();
        const long ib = cb.next();
        const Real av = ad2[ia];
        const Real bv = bd2[ib];
        const Real g = sg[i];
        if (ga) ga[ia] += g * dfdA(av, bv);
        if (gb) gb[ib] += g * dfdB(av, bv);
      }
    };
  }
  return out;
}

template <typename FwdOp, typename DOp>
Tensor unaryOp(const Tensor& a, const char* name, FwdOp fwd, DOp dfd) {
  Tensor out = makeResult(a.shape(), {a}, name);
  const long n = out.numel();
  const TensorImpl& ai = *a.impl();
  const Real* ad = ai.dataPtr();
  Real* od = out.dataPtr();
  if (ai.contiguous) {
#pragma omp parallel for schedule(static) if (n > (1L << 14))
    for (long i = 0; i < n; ++i) od[i] = fwd(ad[i]);
  } else {
    // Sequential: the strided path is taken by small view tensors where
    // the cursor beats a fork/join plus per-thread re-seeding.
    StridedCursor c(ai.shape, ai.strides);
    for (long i = 0; i < n; ++i) od[i] = fwd(ad[c.next()]);
  }
  if (out.requiresGrad()) {
    auto pa = a.impl_;
    out.impl_->backwardFn = [pa, dfd](TensorImpl& self) {
      Real* ga = gradOf(pa);
      if (!ga) return;
      const long n2 = self.numel();
      const Real* ad2 = pa->dataPtr();
      const Real* sg = self.gradPtr();
      const Real* sd = self.dataPtr();
      if (pa->contiguous) {
        for (long i = 0; i < n2; ++i) ga[i] += sg[i] * dfd(ad2[i], sd[i]);
      } else {
        StridedCursor c(pa->shape, pa->strides);
        for (long i = 0; i < n2; ++i) {
          const long ip = c.next();
          ga[ip] += sg[i] * dfd(ad2[ip], sd[i]);
        }
      }
    };
  }
  return out;
}

}  // namespace

Shape broadcastShapes(const Shape& a, const Shape& b) {
  const std::size_t nd = std::max(a.size(), b.size());
  Shape out(nd, 1);
  for (std::size_t i = 0; i < nd; ++i) {
    const long da = i < a.size() ? a[a.size() - 1 - i] : 1;
    const long db = i < b.size() ? b[b.size() - 1 - i] : 1;
    ARTSCI_CHECK_MSG(da == db || da == 1 || db == 1,
                     "cannot broadcast " << shapeToString(a) << " with "
                                         << shapeToString(b));
    out[nd - 1 - i] = std::max(da, db);
  }
  return out;
}

Tensor add(const Tensor& a, const Tensor& b) {
  return binaryOp(
      a, b, "add", [](Real x, Real y) { return x + y; },
      [](Real, Real) { return Real(1); }, [](Real, Real) { return Real(1); });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return binaryOp(
      a, b, "sub", [](Real x, Real y) { return x - y; },
      [](Real, Real) { return Real(1); }, [](Real, Real) { return Real(-1); });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return binaryOp(
      a, b, "mul", [](Real x, Real y) { return x * y; },
      [](Real, Real y) { return y; }, [](Real x, Real) { return x; });
}

Tensor div(const Tensor& a, const Tensor& b) {
  return binaryOp(
      a, b, "div", [](Real x, Real y) { return x / y; },
      [](Real, Real y) { return Real(1) / y; },
      [](Real x, Real y) { return -x / (y * y); });
}

Tensor addScalar(const Tensor& a, Real s) {
  return unaryOp(
      a, "addScalar", [s](Real x) { return x + s; },
      [](Real, Real) { return Real(1); });
}

Tensor mulScalar(const Tensor& a, Real s) {
  return unaryOp(
      a, "mulScalar", [s](Real x) { return x * s; },
      [s](Real, Real) { return s; });
}

Tensor neg(const Tensor& a) { return mulScalar(a, Real(-1)); }

Tensor relu(const Tensor& a) {
  return unaryOp(
      a, "relu", [](Real x) { return x > 0 ? x : Real(0); },
      [](Real x, Real) { return x > 0 ? Real(1) : Real(0); });
}

Tensor leakyRelu(const Tensor& a, Real slope) {
  return unaryOp(
      a, "leakyRelu", [slope](Real x) { return x > 0 ? x : slope * x; },
      [slope](Real x, Real) { return x > 0 ? Real(1) : slope; });
}

Tensor tanhT(const Tensor& a) {
  return unaryOp(
      a, "tanh", [](Real x) { return std::tanh(x); },
      [](Real, Real y) { return Real(1) - y * y; });
}

Tensor sigmoid(const Tensor& a) {
  return unaryOp(
      a, "sigmoid", [](Real x) { return Real(1) / (Real(1) + std::exp(-x)); },
      [](Real, Real y) { return y * (Real(1) - y); });
}

Tensor expT(const Tensor& a) {
  return unaryOp(
      a, "exp", [](Real x) { return std::exp(x); },
      [](Real, Real y) { return y; });
}

Tensor logT(const Tensor& a) {
  // Validate outside the (OpenMP) elementwise loop: exceptions must not
  // escape a parallel region.
  {
    const TensorImpl& ai = *a.impl();
    const Real* ad = ai.dataPtr();
    for (long i = 0; i < ai.numel_; ++i) {
      const Real x = ad[physIdx(ai, i)];
      ARTSCI_CHECK_MSG(x > Real(0), "log of non-positive value " << x);
    }
  }
  return unaryOp(
      a, "log", [](Real x) { return std::log(x); },
      [](Real x, Real) { return Real(1) / x; });
}

Tensor sqrtT(const Tensor& a) {
  {
    const TensorImpl& ai = *a.impl();
    const Real* ad = ai.dataPtr();
    for (long i = 0; i < ai.numel_; ++i) {
      const Real x = ad[physIdx(ai, i)];
      ARTSCI_CHECK_MSG(x >= Real(0), "sqrt of negative value " << x);
    }
  }
  return unaryOp(
      a, "sqrt", [](Real x) { return std::sqrt(x); },
      [](Real, Real y) { return Real(0.5) / std::max(y, Real(1e-12)); });
}

Tensor square(const Tensor& a) {
  return unaryOp(
      a, "square", [](Real x) { return x * x; },
      [](Real x, Real) { return Real(2) * x; });
}

Tensor reciprocal(const Tensor& a) {
  return unaryOp(
      a, "reciprocal", [](Real x) { return Real(1) / x; },
      [](Real x, Real) { return Real(-1) / (x * x); });
}

Tensor softplus(const Tensor& a) {
  return unaryOp(
      a, "softplus",
      [](Real x) {
        // numerically stable log(1 + e^x)
        return x > Real(20) ? x : std::log1p(std::exp(x));
      },
      [](Real x, Real) { return Real(1) / (Real(1) + std::exp(-x)); });
}

Tensor matmul(const Tensor& a0, const Tensor& b0) {
  ARTSCI_EXPECTS_MSG(a0.ndim() == 2 && b0.ndim() == 2,
                     "matmul expects 2D tensors, got "
                         << shapeToString(a0.shape()) << " x "
                         << shapeToString(b0.shape()));
  // Row-strided A feeds the kernels via lda; anything else (e.g. a
  // transposed view) is materialized, reproducing the pre-view operand
  // buffer bit-for-bit — the kernels' per-element FP order (k-ascending
  // for nn/tn, fixed lane split for nt) must not change with layout.
  Tensor a = gemmCompatible(*a0.impl()) ? a0 : contiguousCopy(a0);
  Tensor b = b0.isContiguous() ? b0 : contiguousCopy(b0);
  const long M = a.dim(0), K = a.dim(1), K2 = b.dim(0), N = b.dim(1);
  ARTSCI_EXPECTS_MSG(K == K2, "matmul inner dims mismatch: "
                                  << shapeToString(a.shape()) << " x "
                                  << shapeToString(b.shape()));
  const long lda = a.isContiguous() ? K : a.strides()[0];
  Tensor out = makeResult({M, N}, {a, b}, "matmul");
  kernels::gemm_nn(a.dataPtr(), b.dataPtr(), out.dataPtr(), M, N, K,
                   /*accumulate=*/false, gemmParallel(M, N, K), lda);
  if (out.requiresGrad()) {
    auto pa = a.impl_;
    auto pb = b.impl_;
    out.impl_->backwardFn = [pa, pb, M, K, N, lda](TensorImpl& self) {
      const Real* G = self.gradPtr();
      const bool par = gemmParallel(M, N, K);
      // dA[M,K] += G[M,N] · B[K,N]ᵀ (dA rows strided like A's rows)
      if (Real* ga = gradOf(pa))
        kernels::gemm_nt(G, pb->dataPtr(), ga, M, K, N,
                         /*accumulate=*/true, par, /*ldc=*/lda);
      // dB[K,N] += A[M,K]ᵀ · G[M,N]
      if (Real* gb = gradOf(pb))
        kernels::gemm_tn(pa->dataPtr(), G, gb, K, N, M,
                         /*accumulate=*/true, par, /*strideA=*/lda);
    };
  }
  return out;
}

namespace {

/// Forward/backward formulas of the fused linear epilogue — element for
/// element the same arithmetic as the relu/leakyRelu/tanhT unary nodes.
/// The backward form is derived from the *output*: for the monotone
/// sign-preserving relu family `out > 0` decides exactly like `x > 0`
/// did, and tanh' already reads the output, so the fused gradients match
/// the separate-node gradients.
inline Real actForward(Real x, Activation act) {
  switch (act) {
    case Activation::kRelu:
      return x > 0 ? x : Real(0);
    case Activation::kLeakyRelu:
      return x > 0 ? x : kernels::kLeakySlope * x;
    case Activation::kTanh:
      return std::tanh(x);
    case Activation::kNone:
      break;
  }
  return x;
}

inline Real actGradFromOut(Real y, Activation act) {
  switch (act) {
    case Activation::kRelu:
      return y > 0 ? Real(1) : Real(0);
    case Activation::kLeakyRelu:
      return y > 0 ? Real(1) : kernels::kLeakySlope;
    case Activation::kTanh:
      return Real(1) - y * y;
    case Activation::kNone:
      break;
  }
  return Real(1);
}

}  // namespace

Tensor linear(const Tensor& x0, const Tensor& w, const Tensor& bias,
              Activation act) {
  ARTSCI_EXPECTS_MSG(x0.ndim() == 2 && w.ndim() == 2,
                     "linear expects 2D tensors, got "
                         << shapeToString(x0.shape()) << " x "
                         << shapeToString(w.shape()));
  Tensor x = gemmCompatible(*x0.impl()) ? x0 : contiguousCopy(x0);
  Tensor wc = w.isContiguous() ? w : contiguousCopy(w);
  const long M = x.dim(0), K = x.dim(1), N = wc.dim(1);
  ARTSCI_EXPECTS_MSG(wc.dim(0) == K, "linear inner dims mismatch: "
                                         << shapeToString(x.shape()) << " x "
                                         << shapeToString(wc.shape()));
  const long lda = x.isContiguous() ? K : x.strides()[0];
  const bool hasBias = bias.defined();
  if (hasBias)
    ARTSCI_EXPECTS_MSG(bias.ndim() == 1 && bias.dim(0) == N,
                       "linear bias must be [" << N << "], got "
                                               << shapeToString(bias.shape()));
  Tensor out = hasBias ? makeResult({M, N}, {x, wc, bias}, "linear")
                       : makeResult({M, N}, {x, wc}, "linear");
  const bool par = gemmParallel(M, N, K);
  Real* C = out.dataPtr();
  kernels::gemm_nn(x.dataPtr(), wc.dataPtr(), C, M, N, K,
                   /*accumulate=*/false, par, lda);
  if (hasBias) {
    // Bias rides after the k-accumulation, exactly like matmul+add did —
    // per-element bit pattern is unchanged by the fusion.
    const Real* bptr = bias.dataPtr();
#pragma omp parallel for schedule(static) if (par)
    for (long i = 0; i < M; ++i) {
      Real* crow = C + i * N;
      for (long j = 0; j < N; ++j) crow[j] += bptr[j];
    }
  }
  if (act != Activation::kNone) {
    // Activation after the bias, elementwise in place — the sequence the
    // former separate activation node produced.
    const long total = M * N;
#pragma omp parallel for schedule(static) if (par)
    for (long i = 0; i < total; ++i) C[i] = actForward(C[i], act);
  }
  if (out.requiresGrad()) {
    auto px = x.impl_;
    auto pw = wc.impl_;
    auto pb = hasBias ? bias.impl_ : nullptr;
    out.impl_->backwardFn = [px, pw, pb, M, K, N, lda, act](TensorImpl& self) {
      const Real* G = self.gradPtr();
      const bool par2 = gemmParallel(M, N, K);
      // Pre-activation gradient: g * act'(out), exactly what the separate
      // activation node accumulated into the matmul result's grad. Step
      // scratch comes from the arena when one is active (recorded in the
      // step plan like any other allocation).
      std::vector<Real> scratch;
      if (act != Activation::kNone) {
        const long total = M * N;
        Real* gp;
        if (Arena* ar = currentArena()) {
          gp = ar->allocData(total);
        } else {
          scratch.resize(static_cast<std::size_t>(total));
          gp = scratch.data();
        }
        const Real* outData = self.dataPtr();
        for (long i = 0; i < total; ++i)
          gp[i] = G[i] * actGradFromOut(outData[i], act);
        G = gp;
      }
      if (Real* gx = gradOf(px))
        kernels::gemm_nt(G, pw->dataPtr(), gx, M, K, N,
                         /*accumulate=*/true, par2, /*ldc=*/lda);
      if (Real* gw = gradOf(pw))
        kernels::gemm_tn(px->dataPtr(), G, gw, K, N, M,
                         /*accumulate=*/true, par2, /*strideA=*/lda);
      if (pb)
        if (Real* gb = gradOf(pb))
          kernels::colsum(G, gb, M, N, /*accumulate=*/true);
    };
  }
  return out;
}

Tensor transpose2d(const Tensor& a) {
  ARTSCI_EXPECTS(a.ndim() == 2);
  const long M = a.dim(0), N = a.dim(1);
  if (viewsOn()) {
    const Strides& s = a.strides();
    return makeView(a, Shape{N, M}, Strides{s[1], s[0]}, 0, "transposeView");
  }
  Tensor out = makeResult({N, M}, {a}, "transpose2d");
  const TensorImpl& ai = *a.impl();
  const Real* ad = ai.dataPtr();
  Real* od = out.dataPtr();
  const long sr = ai.strides[0], sc = ai.strides[1];
  for (long i = 0; i < M; ++i)
    for (long j = 0; j < N; ++j) od[j * M + i] = ad[i * sr + j * sc];
  if (out.requiresGrad()) {
    auto pa = a.impl_;
    out.impl_->backwardFn = [pa, M, N](TensorImpl& self) {
      Real* ga = gradOf(pa);
      if (!ga) return;
      const Real* sg = self.gradPtr();
      const long sr2 = pa->strides[0], sc2 = pa->strides[1];
      for (long i = 0; i < M; ++i)
        for (long j = 0; j < N; ++j) ga[i * sr2 + j * sc2] += sg[j * M + i];
    };
  }
  return out;
}

Tensor contiguousCopy(const Tensor& a) {
  Tensor out = makeResult(a.shape(), {a}, "contiguous");
  const TensorImpl& ai = *a.impl();
  const Real* ad = ai.dataPtr();
  Real* od = out.dataPtr();
  const long n = out.numel();
  if (ai.contiguous) {
    std::memcpy(od, ad, sizeof(Real) * static_cast<std::size_t>(n));
  } else {
    StridedCursor c(ai.shape, ai.strides);
    for (long i = 0; i < n; ++i) od[i] = ad[c.next()];
  }
  if (out.requiresGrad()) {
    auto pa = a.impl_;
    out.impl_->backwardFn = [pa](TensorImpl& self) {
      Real* ga = gradOf(pa);
      if (!ga) return;
      const long n2 = self.numel();
      const Real* sg = self.gradPtr();
      if (pa->contiguous) {
        for (long i = 0; i < n2; ++i) ga[i] += sg[i];
      } else {
        StridedCursor c(pa->shape, pa->strides);
        for (long i = 0; i < n2; ++i) ga[c.next()] += sg[i];
      }
    };
  }
  return out;
}

Tensor asContiguous(const Tensor& a) {
  return a.isContiguous() ? a : contiguousCopy(a);
}

Tensor sumAll(const Tensor& a) {
  Tensor out = makeResult({1}, {a}, "sumAll");
  const TensorImpl& ai = *a.impl();
  const Real* ad = ai.dataPtr();
  Real s = Real(0);
  if (ai.contiguous) {
    for (long i = 0; i < ai.numel_; ++i) s += ad[i];
  } else {
    StridedCursor c(ai.shape, ai.strides);
    for (long i = 0; i < ai.numel_; ++i) s += ad[c.next()];
  }
  out.dataPtr()[0] = s;
  if (out.requiresGrad()) {
    auto pa = a.impl_;
    out.impl_->backwardFn = [pa](TensorImpl& self) {
      Real* ga = gradOf(pa);
      if (!ga) return;
      const Real g = self.gradPtr()[0];
      const long n = pa->numel_;
      if (pa->contiguous) {
        for (long i = 0; i < n; ++i) ga[i] += g;
      } else {
        StridedCursor c(pa->shape, pa->strides);
        for (long i = 0; i < n; ++i) ga[c.next()] += g;
      }
    };
  }
  return out;
}

Tensor meanAll(const Tensor& a) {
  return mulScalar(sumAll(a), Real(1) / static_cast<Real>(a.numel()));
}

namespace {
/// Decompose shape around `axis`: outer (product before), len (axis), inner
/// (product after). Works for any rank >= 1.
void axisSplit(const Shape& s, int axis, long& outer, long& len,
               long& inner) {
  outer = 1;
  inner = 1;
  for (int i = 0; i < axis; ++i) outer *= s[static_cast<std::size_t>(i)];
  len = s[static_cast<std::size_t>(axis)];
  for (std::size_t i = static_cast<std::size_t>(axis) + 1; i < s.size(); ++i)
    inner *= s[i];
}

Shape dropAxis(const Shape& s, int axis, bool keepdim) {
  Shape out = s;
  if (keepdim) {
    out[static_cast<std::size_t>(axis)] = 1;
  } else {
    out.erase(out.begin() + axis);
    if (out.empty()) out = {1};
  }
  return out;
}
}  // namespace

Tensor sumAxis(const Tensor& a0, int axis, bool keepdim) {
  Tensor a = asContiguous(a0);
  if (axis < 0) axis += a.ndim();
  ARTSCI_EXPECTS(axis >= 0 && axis < a.ndim());
  long outer = 0, len = 0, inner = 0;
  axisSplit(a.shape(), axis, outer, len, inner);
  Tensor out = makeResult(dropAxis(a.shape(), axis, keepdim), {a}, "sumAxis");
  const Real* ad = a.dataPtr();
  Real* od = out.dataPtr();
  for (long o = 0; o < outer; ++o) {
    for (long i = 0; i < inner; ++i) {
      Real s = Real(0);
      for (long l = 0; l < len; ++l) s += ad[(o * len + l) * inner + i];
      od[o * inner + i] = s;
    }
  }
  if (out.requiresGrad()) {
    auto pa = a.impl_;
    out.impl_->backwardFn = [pa, outer, len, inner](TensorImpl& self) {
      Real* ga = gradOf(pa);
      if (!ga) return;
      const Real* sg = self.gradPtr();
      for (long o = 0; o < outer; ++o)
        for (long l = 0; l < len; ++l)
          for (long i = 0; i < inner; ++i)
            ga[(o * len + l) * inner + i] += sg[o * inner + i];
    };
  }
  return out;
}

Tensor meanAxis(const Tensor& a, int axis, bool keepdim) {
  if (axis < 0) axis += a.ndim();
  const Real scale =
      Real(1) / static_cast<Real>(a.dim(axis));
  return mulScalar(sumAxis(a, axis, keepdim), scale);
}

Tensor maxAxis(const Tensor& a0, int axis, bool keepdim) {
  Tensor a = asContiguous(a0);
  if (axis < 0) axis += a.ndim();
  ARTSCI_EXPECTS(axis >= 0 && axis < a.ndim());
  long outer = 0, len = 0, inner = 0;
  axisSplit(a.shape(), axis, outer, len, inner);
  Tensor out = makeResult(dropAxis(a.shape(), axis, keepdim), {a}, "maxAxis");
  std::vector<long> argmax(static_cast<std::size_t>(outer * inner), 0);
  const Real* ad = a.dataPtr();
  Real* od = out.dataPtr();
#pragma omp parallel for schedule(static) if (outer * inner > (1L << 12))
  for (long oi = 0; oi < outer * inner; ++oi) {
    const long o = oi / inner;
    const long i = oi % inner;
    Real best = ad[o * len * inner + i];
    long bestL = 0;
    for (long l = 1; l < len; ++l) {
      const Real v = ad[(o * len + l) * inner + i];
      if (v > best) {
        best = v;
        bestL = l;
      }
    }
    od[oi] = best;
    argmax[static_cast<std::size_t>(oi)] = bestL;
  }
  if (out.requiresGrad()) {
    auto pa = a.impl_;
    out.impl_->backwardFn = [pa, argmax = std::move(argmax), inner,
                             len](TensorImpl& self) {
      Real* ga = gradOf(pa);
      if (!ga) return;
      const Real* sg = self.gradPtr();
      const long total = self.numel();
      for (long oi = 0; oi < total; ++oi) {
        const long o = oi / inner;
        const long i = oi % inner;
        const long l = argmax[static_cast<std::size_t>(oi)];
        ga[(o * len + l) * inner + i] += sg[oi];
      }
    };
  }
  return out;
}

Tensor reshape(const Tensor& a, Shape newShape) {
  ARTSCI_EXPECTS_MSG(numelOf(newShape) == a.numel(),
                     "reshape " << shapeToString(a.shape()) << " -> "
                                << shapeToString(newShape)
                                << " changes element count");
  Tensor out = makeResult(std::move(newShape), {a}, "reshape");
  const TensorImpl& ai = *a.impl();
  const Real* ad = ai.dataPtr();
  Real* od = out.dataPtr();
  const long n = out.numel();
  if (ai.contiguous) {
    std::memcpy(od, ad, sizeof(Real) * static_cast<std::size_t>(n));
  } else {
    StridedCursor c(ai.shape, ai.strides);
    for (long i = 0; i < n; ++i) od[i] = ad[c.next()];
  }
  if (out.requiresGrad()) {
    auto pa = a.impl_;
    out.impl_->backwardFn = [pa](TensorImpl& self) {
      Real* ga = gradOf(pa);
      if (!ga) return;
      const Real* sg = self.gradPtr();
      const long n2 = self.numel();
      if (pa->contiguous) {
        for (long i = 0; i < n2; ++i) ga[i] += sg[i];
      } else {
        StridedCursor c(pa->shape, pa->strides);
        for (long i = 0; i < n2; ++i) ga[c.next()] += sg[i];
      }
    };
  }
  return out;
}

Tensor sliceFast(const Tensor& a, int axis, long start, long end) {
  if (!viewsOn()) return slice(a, axis, start, end);
  const int nd = a.ndim();
  if (axis < 0) axis += nd;
  ARTSCI_EXPECTS(axis >= 0 && axis < nd);
  ARTSCI_EXPECTS_MSG(start >= 0 && end <= a.dim(axis) && start < end,
                     "slice range [" << start << ", " << end
                                     << ") out of bounds for axis size "
                                     << a.dim(axis));
  Shape outShape = a.shape();
  outShape[static_cast<std::size_t>(axis)] = end - start;
  const Strides& st = a.strides();
  return makeView(a, std::move(outShape), st,
                  start * st[static_cast<std::size_t>(axis)], "sliceView");
}

Tensor reshapeFast(const Tensor& a, Shape newShape) {
  ARTSCI_EXPECTS_MSG(numelOf(newShape) == a.numel(),
                     "reshape " << shapeToString(a.shape()) << " -> "
                                << shapeToString(newShape)
                                << " changes element count");
  if (!viewsOn() || !a.isContiguous())
    return reshape(a, std::move(newShape));
  Strides st = rowMajorStrides(newShape);
  return makeView(a, std::move(newShape), std::move(st), 0, "reshapeView");
}

Tensor broadcastTo(const Tensor& a, const Shape& target) {
  const Shape check = broadcastShapes(a.shape(), target);
  ARTSCI_EXPECTS_MSG(check == target, "cannot broadcast "
                                          << shapeToString(a.shape())
                                          << " to " << shapeToString(target));
  Strides st(target.size(), 0);
  const int off = static_cast<int>(target.size()) - a.ndim();
  for (int d = 0; d < a.ndim(); ++d) {
    const bool repeated = a.shape()[static_cast<std::size_t>(d)] == 1 &&
                          target[static_cast<std::size_t>(off + d)] != 1;
    st[static_cast<std::size_t>(off + d)] =
        repeated ? 0 : a.strides()[static_cast<std::size_t>(d)];
  }
  Tensor view = makeView(a, target, std::move(st), 0, "broadcastView");
  return viewsOn() ? view : contiguousCopy(view);
}

Tensor cat(const std::vector<Tensor>& parts0, int axis) {
  ARTSCI_EXPECTS(!parts0.empty());
  std::vector<Tensor> parts;
  parts.reserve(parts0.size());
  for (const auto& p : parts0) parts.push_back(asContiguous(p));
  const int nd = parts[0].ndim();
  if (axis < 0) axis += nd;
  ARTSCI_EXPECTS(axis >= 0 && axis < nd);
  Shape outShape = parts[0].shape();
  long axisTotal = 0;
  for (const auto& p : parts) {
    ARTSCI_EXPECTS(p.ndim() == nd);
    for (int d = 0; d < nd; ++d) {
      if (d != axis)
        ARTSCI_EXPECTS_MSG(p.dim(d) == outShape[static_cast<std::size_t>(d)],
                           "cat: incompatible shapes");
    }
    axisTotal += p.dim(axis);
  }
  outShape[static_cast<std::size_t>(axis)] = axisTotal;

  Tensor out = makeResult(outShape, parts, "cat");

  long outer = 0, lenOut = 0, inner = 0;
  axisSplit(outShape, axis, outer, lenOut, inner);
  Real* od = out.dataPtr();
  long axisOffset = 0;
  for (const auto& p : parts) {
    const long len = p.dim(axis);
    const Real* pd = p.dataPtr();
    for (long o = 0; o < outer; ++o) {
      const Real* src = pd + o * len * inner;
      Real* dst = od + (o * lenOut + axisOffset) * inner;
      std::memcpy(dst, src,
                  sizeof(Real) * static_cast<std::size_t>(len * inner));
    }
    axisOffset += len;
  }
  if (out.requiresGrad()) {
    std::vector<std::shared_ptr<TensorImpl>> impls;
    std::vector<long> lens;
    for (const auto& p : parts) {
      impls.push_back(p.impl_);
      lens.push_back(p.dim(axis));
    }
    out.impl_->backwardFn = [impls, lens, outer, lenOut,
                             inner](TensorImpl& self) {
      const Real* sg = self.gradPtr();
      long axisOffset2 = 0;
      for (std::size_t pi = 0; pi < impls.size(); ++pi) {
        const long len = lens[pi];
        if (Real* ga = gradOf(impls[pi])) {
          for (long o = 0; o < outer; ++o) {
            const Real* src = sg + (o * lenOut + axisOffset2) * inner;
            Real* dst = ga + o * len * inner;
            for (long i = 0; i < len * inner; ++i) dst[i] += src[i];
          }
        }
        axisOffset2 += len;
      }
    };
  }
  return out;
}

Tensor slice(const Tensor& a0, int axis, long start, long end) {
  Tensor a = asContiguous(a0);
  const int nd = a.ndim();
  if (axis < 0) axis += nd;
  ARTSCI_EXPECTS(axis >= 0 && axis < nd);
  ARTSCI_EXPECTS_MSG(start >= 0 && end <= a.dim(axis) && start < end,
                     "slice range [" << start << ", " << end
                                     << ") out of bounds for axis size "
                                     << a.dim(axis));
  Shape outShape = a.shape();
  outShape[static_cast<std::size_t>(axis)] = end - start;
  Tensor out = makeResult(outShape, {a}, "slice");
  long outer = 0, lenIn = 0, inner = 0;
  axisSplit(a.shape(), axis, outer, lenIn, inner);
  const long lenOut = end - start;
  const Real* ad = a.dataPtr();
  Real* od = out.dataPtr();
  for (long o = 0; o < outer; ++o) {
    const Real* src = ad + (o * lenIn + start) * inner;
    Real* dst = od + o * lenOut * inner;
    std::memcpy(dst, src,
                sizeof(Real) * static_cast<std::size_t>(lenOut * inner));
  }
  if (out.requiresGrad()) {
    auto pa = a.impl_;
    out.impl_->backwardFn = [pa, outer, lenIn, lenOut, inner,
                             start](TensorImpl& self) {
      Real* ga = gradOf(pa);
      if (!ga) return;
      const Real* sg = self.gradPtr();
      for (long o = 0; o < outer; ++o) {
        const Real* src = sg + o * lenOut * inner;
        Real* dst = ga + (o * lenIn + start) * inner;
        for (long i = 0; i < lenOut * inner; ++i) dst[i] += src[i];
      }
    };
  }
  return out;
}

Tensor permuteLast(const Tensor& a0, const std::vector<long>& perm) {
  Tensor a = asContiguous(a0);
  const long L = a.dim(-1);
  ARTSCI_EXPECTS_MSG(static_cast<long>(perm.size()) == L,
                     "permuteLast: perm size " << perm.size()
                                               << " != last dim " << L);
  Tensor out = makeResult(a.shape(), {a}, "permuteLast");
  const long rows = a.numel() / L;
  const Real* ad = a.dataPtr();
  Real* od = out.dataPtr();
#pragma omp parallel for schedule(static) if (rows * L > (1L << 14))
  for (long r = 0; r < rows; ++r) {
    const Real* src = ad + r * L;
    Real* dst = od + r * L;
    for (long i = 0; i < L; ++i) dst[i] = src[perm[static_cast<std::size_t>(i)]];
  }
  if (out.requiresGrad()) {
    auto pa = a.impl_;
    out.impl_->backwardFn = [pa, perm, rows, L](TensorImpl& self) {
      Real* ga = gradOf(pa);
      if (!ga) return;
      const Real* sg = self.gradPtr();
      for (long r = 0; r < rows; ++r) {
        const Real* src = sg + r * L;
        Real* dst = ga + r * L;
        for (long i = 0; i < L; ++i)
          dst[perm[static_cast<std::size_t>(i)]] += src[i];
      }
    };
  }
  return out;
}

Tensor chamferDistance(const Tensor& a0, const Tensor& b0) {
  ARTSCI_EXPECTS_MSG(a0.ndim() == 3 && b0.ndim() == 3,
                     "chamferDistance expects [B,N,D] x [B,M,D]");
  Tensor a = asContiguous(a0);
  Tensor b = asContiguous(b0);
  const long B = a.dim(0), N = a.dim(1), D = a.dim(2);
  const long M = b.dim(1);
  ARTSCI_EXPECTS(b.dim(0) == B && b.dim(2) == D);
  Tensor out = makeResult({1}, {a, b}, "chamfer");

  // nearest-neighbour indices: for each a-point its closest b-point, and
  // vice versa. Stored for the backward pass.
  std::vector<long> nnAB(static_cast<std::size_t>(B * N));
  std::vector<long> nnBA(static_cast<std::size_t>(B * M));
  const Real* A = a.dataPtr();
  const Real* Bd = b.dataPtr();
  // Per-batch partials summed in index order afterwards: an OpenMP `+`
  // reduction combines in thread-arrival order, which is not run-invariant.
  std::vector<Real> partial(static_cast<std::size_t>(B));

#pragma omp parallel for schedule(static)
  for (long bi = 0; bi < B; ++bi) {
    const Real* ab = A + bi * N * D;
    const Real* bb = Bd + bi * M * D;
    Real sumA = Real(0);
    for (long i = 0; i < N; ++i) {
      Real best = Real(1e300);
      long bestJ = 0;
      for (long j = 0; j < M; ++j) {
        Real d2 = Real(0);
        for (long d = 0; d < D; ++d) {
          const Real diff = ab[i * D + d] - bb[j * D + d];
          d2 += diff * diff;
        }
        if (d2 < best) {
          best = d2;
          bestJ = j;
        }
      }
      nnAB[static_cast<std::size_t>(bi * N + i)] = bestJ;
      sumA += best;
    }
    Real sumB = Real(0);
    for (long j = 0; j < M; ++j) {
      Real best = Real(1e300);
      long bestI = 0;
      for (long i = 0; i < N; ++i) {
        Real d2 = Real(0);
        for (long d = 0; d < D; ++d) {
          const Real diff = ab[i * D + d] - bb[j * D + d];
          d2 += diff * diff;
        }
        if (d2 < best) {
          best = d2;
          bestI = i;
        }
      }
      nnBA[static_cast<std::size_t>(bi * M + j)] = bestI;
      sumB += best;
    }
    partial[static_cast<std::size_t>(bi)] =
        sumA / static_cast<Real>(N) + sumB / static_cast<Real>(M);
  }
  Real total = Real(0);
  for (Real p : partial) total += p;
  out.dataPtr()[0] = total / static_cast<Real>(B);

  if (out.requiresGrad()) {
    auto pa = a.impl_;
    auto pb = b.impl_;
    out.impl_->backwardFn = [pa, pb, nnAB = std::move(nnAB),
                             nnBA = std::move(nnBA), B, N, M,
                             D](TensorImpl& self) {
      const Real g = self.gradPtr()[0] / static_cast<Real>(B);
      Real* ga = gradOf(pa);
      Real* gb = gradOf(pb);
      const Real* A2 = pa->dataPtr();
      const Real* B2 = pb->dataPtr();
      const Real wA = g / static_cast<Real>(N);
      const Real wB = g / static_cast<Real>(M);
      for (long bi = 0; bi < B; ++bi) {
        for (long i = 0; i < N; ++i) {
          const long j = nnAB[static_cast<std::size_t>(bi * N + i)];
          for (long d = 0; d < D; ++d) {
            const long ia = (bi * N + i) * D + d;
            const long ib = (bi * M + j) * D + d;
            const Real diff = Real(2) * (A2[ia] - B2[ib]);
            if (ga) ga[ia] += wA * diff;
            if (gb) gb[ib] -= wA * diff;
          }
        }
        for (long j = 0; j < M; ++j) {
          const long i = nnBA[static_cast<std::size_t>(bi * M + j)];
          for (long d = 0; d < D; ++d) {
            const long ia = (bi * N + i) * D + d;
            const long ib = (bi * M + j) * D + d;
            const Real diff = Real(2) * (B2[ib] - A2[ia]);
            if (gb) gb[ib] += wB * diff;
            if (ga) ga[ia] -= wB * diff;
          }
        }
      }
    };
  }
  return out;
}

Tensor pairwiseSquaredDistances(const Tensor& x, const Tensor& y) {
  ARTSCI_EXPECTS(x.ndim() == 2 && y.ndim() == 2);
  ARTSCI_EXPECTS(x.dim(1) == y.dim(1));
  // ||x - y||^2 = ||x||^2 + ||y||^2 - 2 x.y — fully differentiable
  // composition, so no dedicated backward needed. transpose2d(y) is a
  // view; matmul materializes it (strides [1, D] are not row-strided),
  // which reproduces the old transposed copy buffer exactly, keeping the
  // gemm_nn bit pattern.
  Tensor xx = sumAxis(square(x), 1, /*keepdim=*/true);      // [N,1]
  Tensor yy = sumAxis(square(y), 1, /*keepdim=*/false);     // [M]
  Tensor cross = matmul(x, transpose2d(y));                 // [N,M]
  Tensor d2 = add(sub(xx, mulScalar(cross, Real(2))), yy);  // broadcasts
  // Numerical guard: tiny negatives from cancellation clip to zero.
  return relu(d2);
}

}  // namespace artsci::ml

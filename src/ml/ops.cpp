#include "ml/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <type_traits>

#include "ml/kernels/gemm.hpp"

namespace artsci::ml {

// The kernel library is dependency-free and declares its own scalar type;
// the two must agree for the raw-buffer calls below.
static_assert(std::is_same_v<Real, kernels::Real>,
              "ml::Real and kernels::Real diverged");

namespace {

/// Row-major strides of a shape.
std::vector<long> stridesOf(const Shape& s) {
  std::vector<long> st(s.size(), 1);
  for (int i = static_cast<int>(s.size()) - 2; i >= 0; --i)
    st[static_cast<std::size_t>(i)] =
        st[static_cast<std::size_t>(i) + 1] * s[static_cast<std::size_t>(i) + 1];
  return st;
}

/// Map a flat index in `outShape` to the flat index in `inShape`, where
/// inShape broadcasts to outShape (right-aligned).
long mapBroadcastIndex(long flat, const Shape& outShape,
                       const std::vector<long>& outStrides,
                       const Shape& inShape,
                       const std::vector<long>& inStrides) {
  const int offset = static_cast<int>(outShape.size() - inShape.size());
  long idx = 0;
  for (std::size_t d = 0; d < outShape.size(); ++d) {
    const long coord = (flat / outStrides[d]) % outShape[d];
    const int din = static_cast<int>(d) - offset;
    if (din >= 0) {
      const long dim = inShape[static_cast<std::size_t>(din)];
      idx += (dim == 1 ? 0 : coord) * inStrides[static_cast<std::size_t>(din)];
    }
  }
  return idx;
}

bool sameShape(const Shape& a, const Shape& b) { return a == b; }

/// True if b's shape is an exact suffix of a's shape (fast bias-add path).
bool isSuffix(const Shape& a, const Shape& b) {
  if (b.size() > a.size()) return false;
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (b[b.size() - 1 - i] != a[a.size() - 1 - i]) return false;
  }
  return true;
}

/// ensureGrad + return pointer, or nullptr if the parent doesn't need grad.
std::vector<Real>* gradOf(const std::shared_ptr<TensorImpl>& p) {
  if (!p->requiresGrad) return nullptr;
  p->ensureGrad();
  return &p->grad;
}

/// Work threshold above which the GEMM kernels go OpenMP row-parallel
/// (the same gate the former naive loops used).
inline bool gemmParallel(long M, long N, long K) {
  return M * N * K > (1L << 16);
}

template <typename FwdOp, typename DA, typename DB>
Tensor binaryOp(const Tensor& a, const Tensor& b, const char* name, FwdOp fwd,
                DA dfdA, DB dfdB) {
  const Shape outShape = broadcastShapes(a.shape(), b.shape());
  Tensor out = makeResult(outShape, {a, b}, name);
  const long n = out.numel();
  const auto& ad = a.data();
  const auto& bd = b.data();
  auto& od = out.data();

  if (sameShape(a.shape(), outShape) && sameShape(b.shape(), outShape)) {
#pragma omp parallel for schedule(static) if (n > (1L << 14))
    for (long i = 0; i < n; ++i)
      od[static_cast<std::size_t>(i)] = fwd(ad[static_cast<std::size_t>(i)],
                                            bd[static_cast<std::size_t>(i)]);
  } else if (sameShape(a.shape(), outShape) && isSuffix(outShape, b.shape())) {
    const long bn = b.numel();
#pragma omp parallel for schedule(static) if (n > (1L << 14))
    for (long i = 0; i < n; ++i)
      od[static_cast<std::size_t>(i)] = fwd(
          ad[static_cast<std::size_t>(i)], bd[static_cast<std::size_t>(i % bn)]);
  } else {
    const auto outStrides = stridesOf(outShape);
    const auto aStrides = stridesOf(a.shape());
    const auto bStrides = stridesOf(b.shape());
    const Shape aShape = a.shape(), bShape = b.shape();
    for (long i = 0; i < n; ++i) {
      const long ia =
          mapBroadcastIndex(i, outShape, outStrides, aShape, aStrides);
      const long ib =
          mapBroadcastIndex(i, outShape, outStrides, bShape, bStrides);
      od[static_cast<std::size_t>(i)] = fwd(ad[static_cast<std::size_t>(ia)],
                                            bd[static_cast<std::size_t>(ib)]);
    }
  }

  if (out.requiresGrad()) {
    auto pa = a.impl_;
    auto pb = b.impl_;
    out.impl_->backwardFn = [pa, pb, outShape, dfdA, dfdB](TensorImpl& self) {
      const long n2 = self.numel();
      const auto outStrides = stridesOf(outShape);
      const auto aStrides = stridesOf(pa->shape);
      const auto bStrides = stridesOf(pb->shape);
      auto* ga = gradOf(pa);
      auto* gb = gradOf(pb);
      for (long i = 0; i < n2; ++i) {
        const long ia =
            mapBroadcastIndex(i, outShape, outStrides, pa->shape, aStrides);
        const long ib =
            mapBroadcastIndex(i, outShape, outStrides, pb->shape, bStrides);
        const Real av = pa->data[static_cast<std::size_t>(ia)];
        const Real bv = pb->data[static_cast<std::size_t>(ib)];
        const Real g = self.grad[static_cast<std::size_t>(i)];
        if (ga) (*ga)[static_cast<std::size_t>(ia)] += g * dfdA(av, bv);
        if (gb) (*gb)[static_cast<std::size_t>(ib)] += g * dfdB(av, bv);
      }
    };
  }
  return out;
}

template <typename FwdOp, typename DOp>
Tensor unaryOp(const Tensor& a, const char* name, FwdOp fwd, DOp dfd) {
  Tensor out = makeResult(a.shape(), {a}, name);
  const long n = out.numel();
  const auto& ad = a.data();
  auto& od = out.data();
#pragma omp parallel for schedule(static) if (n > (1L << 14))
  for (long i = 0; i < n; ++i)
    od[static_cast<std::size_t>(i)] = fwd(ad[static_cast<std::size_t>(i)]);
  if (out.requiresGrad()) {
    auto pa = a.impl_;
    out.impl_->backwardFn = [pa, dfd](TensorImpl& self) {
      auto* ga = gradOf(pa);
      if (!ga) return;
      const long n2 = self.numel();
      for (long i = 0; i < n2; ++i) {
        (*ga)[static_cast<std::size_t>(i)] +=
            self.grad[static_cast<std::size_t>(i)] *
            dfd(pa->data[static_cast<std::size_t>(i)],
                self.data[static_cast<std::size_t>(i)]);
      }
    };
  }
  return out;
}

}  // namespace

Shape broadcastShapes(const Shape& a, const Shape& b) {
  const std::size_t nd = std::max(a.size(), b.size());
  Shape out(nd, 1);
  for (std::size_t i = 0; i < nd; ++i) {
    const long da = i < a.size() ? a[a.size() - 1 - i] : 1;
    const long db = i < b.size() ? b[b.size() - 1 - i] : 1;
    ARTSCI_CHECK_MSG(da == db || da == 1 || db == 1,
                     "cannot broadcast " << shapeToString(a) << " with "
                                         << shapeToString(b));
    out[nd - 1 - i] = std::max(da, db);
  }
  return out;
}

Tensor add(const Tensor& a, const Tensor& b) {
  return binaryOp(
      a, b, "add", [](Real x, Real y) { return x + y; },
      [](Real, Real) { return Real(1); }, [](Real, Real) { return Real(1); });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return binaryOp(
      a, b, "sub", [](Real x, Real y) { return x - y; },
      [](Real, Real) { return Real(1); }, [](Real, Real) { return Real(-1); });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return binaryOp(
      a, b, "mul", [](Real x, Real y) { return x * y; },
      [](Real, Real y) { return y; }, [](Real x, Real) { return x; });
}

Tensor div(const Tensor& a, const Tensor& b) {
  return binaryOp(
      a, b, "div", [](Real x, Real y) { return x / y; },
      [](Real, Real y) { return Real(1) / y; },
      [](Real x, Real y) { return -x / (y * y); });
}

Tensor addScalar(const Tensor& a, Real s) {
  return unaryOp(
      a, "addScalar", [s](Real x) { return x + s; },
      [](Real, Real) { return Real(1); });
}

Tensor mulScalar(const Tensor& a, Real s) {
  return unaryOp(
      a, "mulScalar", [s](Real x) { return x * s; },
      [s](Real, Real) { return s; });
}

Tensor neg(const Tensor& a) { return mulScalar(a, Real(-1)); }

Tensor relu(const Tensor& a) {
  return unaryOp(
      a, "relu", [](Real x) { return x > 0 ? x : Real(0); },
      [](Real x, Real) { return x > 0 ? Real(1) : Real(0); });
}

Tensor leakyRelu(const Tensor& a, Real slope) {
  return unaryOp(
      a, "leakyRelu", [slope](Real x) { return x > 0 ? x : slope * x; },
      [slope](Real x, Real) { return x > 0 ? Real(1) : slope; });
}

Tensor tanhT(const Tensor& a) {
  return unaryOp(
      a, "tanh", [](Real x) { return std::tanh(x); },
      [](Real, Real y) { return Real(1) - y * y; });
}

Tensor sigmoid(const Tensor& a) {
  return unaryOp(
      a, "sigmoid", [](Real x) { return Real(1) / (Real(1) + std::exp(-x)); },
      [](Real, Real y) { return y * (Real(1) - y); });
}

Tensor expT(const Tensor& a) {
  return unaryOp(
      a, "exp", [](Real x) { return std::exp(x); },
      [](Real, Real y) { return y; });
}

Tensor logT(const Tensor& a) {
  // Validate outside the (OpenMP) elementwise loop: exceptions must not
  // escape a parallel region.
  for (Real x : a.data())
    ARTSCI_CHECK_MSG(x > Real(0), "log of non-positive value " << x);
  return unaryOp(
      a, "log", [](Real x) { return std::log(x); },
      [](Real x, Real) { return Real(1) / x; });
}

Tensor sqrtT(const Tensor& a) {
  for (Real x : a.data())
    ARTSCI_CHECK_MSG(x >= Real(0), "sqrt of negative value " << x);
  return unaryOp(
      a, "sqrt", [](Real x) { return std::sqrt(x); },
      [](Real, Real y) { return Real(0.5) / std::max(y, Real(1e-12)); });
}

Tensor square(const Tensor& a) {
  return unaryOp(
      a, "square", [](Real x) { return x * x; },
      [](Real x, Real) { return Real(2) * x; });
}

Tensor reciprocal(const Tensor& a) {
  return unaryOp(
      a, "reciprocal", [](Real x) { return Real(1) / x; },
      [](Real x, Real) { return Real(-1) / (x * x); });
}

Tensor softplus(const Tensor& a) {
  return unaryOp(
      a, "softplus",
      [](Real x) {
        // numerically stable log(1 + e^x)
        return x > Real(20) ? x : std::log1p(std::exp(x));
      },
      [](Real x, Real) { return Real(1) / (Real(1) + std::exp(-x)); });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  ARTSCI_EXPECTS_MSG(a.ndim() == 2 && b.ndim() == 2,
                     "matmul expects 2D tensors, got "
                         << shapeToString(a.shape()) << " x "
                         << shapeToString(b.shape()));
  const long M = a.dim(0), K = a.dim(1), K2 = b.dim(0), N = b.dim(1);
  ARTSCI_EXPECTS_MSG(K == K2, "matmul inner dims mismatch: "
                                  << shapeToString(a.shape()) << " x "
                                  << shapeToString(b.shape()));
  Tensor out = makeResult({M, N}, {a, b}, "matmul");
  kernels::gemm_nn(a.data().data(), b.data().data(), out.data().data(), M, N,
                   K, /*accumulate=*/false, gemmParallel(M, N, K));
  if (out.requiresGrad()) {
    auto pa = a.impl_;
    auto pb = b.impl_;
    out.impl_->backwardFn = [pa, pb, M, K, N](TensorImpl& self) {
      const Real* G = self.grad.data();
      const bool par = gemmParallel(M, N, K);
      // dA[M,K] += G[M,N] · B[K,N]ᵀ
      if (auto* ga = gradOf(pa))
        kernels::gemm_nt(G, pb->data.data(), ga->data(), M, K, N,
                         /*accumulate=*/true, par);
      // dB[K,N] += A[M,K]ᵀ · G[M,N]
      if (auto* gb = gradOf(pb))
        kernels::gemm_tn(pa->data.data(), G, gb->data(), K, N, M,
                         /*accumulate=*/true, par);
    };
  }
  return out;
}

Tensor linear(const Tensor& x, const Tensor& w, const Tensor& bias) {
  ARTSCI_EXPECTS_MSG(x.ndim() == 2 && w.ndim() == 2,
                     "linear expects 2D tensors, got "
                         << shapeToString(x.shape()) << " x "
                         << shapeToString(w.shape()));
  const long M = x.dim(0), K = x.dim(1), N = w.dim(1);
  ARTSCI_EXPECTS_MSG(w.dim(0) == K, "linear inner dims mismatch: "
                                        << shapeToString(x.shape()) << " x "
                                        << shapeToString(w.shape()));
  const bool hasBias = bias.defined();
  if (hasBias)
    ARTSCI_EXPECTS_MSG(bias.ndim() == 1 && bias.dim(0) == N,
                       "linear bias must be [" << N << "], got "
                                               << shapeToString(bias.shape()));
  Tensor out = hasBias ? makeResult({M, N}, {x, w, bias}, "linear")
                       : makeResult({M, N}, {x, w}, "linear");
  const bool par = gemmParallel(M, N, K);
  Real* C = out.data().data();
  kernels::gemm_nn(x.data().data(), w.data().data(), C, M, N, K,
                   /*accumulate=*/false, par);
  if (hasBias) {
    // Bias rides after the k-accumulation, exactly like matmul+add did —
    // per-element bit pattern is unchanged by the fusion.
    const Real* bptr = bias.data().data();
#pragma omp parallel for schedule(static) if (par)
    for (long i = 0; i < M; ++i) {
      Real* crow = C + i * N;
      for (long j = 0; j < N; ++j) crow[j] += bptr[j];
    }
  }
  if (out.requiresGrad()) {
    auto px = x.impl_;
    auto pw = w.impl_;
    auto pb = hasBias ? bias.impl_ : nullptr;
    out.impl_->backwardFn = [px, pw, pb, M, K, N](TensorImpl& self) {
      const Real* G = self.grad.data();
      const bool par2 = gemmParallel(M, N, K);
      if (auto* gx = gradOf(px))
        kernels::gemm_nt(G, pw->data.data(), gx->data(), M, K, N,
                         /*accumulate=*/true, par2);
      if (auto* gw = gradOf(pw))
        kernels::gemm_tn(px->data.data(), G, gw->data(), K, N, M,
                         /*accumulate=*/true, par2);
      if (pb)
        if (auto* gb = gradOf(pb))
          kernels::colsum(G, gb->data(), M, N, /*accumulate=*/true);
    };
  }
  return out;
}

Tensor transpose2d(const Tensor& a) {
  ARTSCI_EXPECTS(a.ndim() == 2);
  const long M = a.dim(0), N = a.dim(1);
  Tensor out = makeResult({N, M}, {a}, "transpose2d");
  const auto& ad = a.data();
  auto& od = out.data();
  for (long i = 0; i < M; ++i)
    for (long j = 0; j < N; ++j)
      od[static_cast<std::size_t>(j * M + i)] =
          ad[static_cast<std::size_t>(i * N + j)];
  if (out.requiresGrad()) {
    auto pa = a.impl_;
    out.impl_->backwardFn = [pa, M, N](TensorImpl& self) {
      auto* ga = gradOf(pa);
      if (!ga) return;
      for (long i = 0; i < M; ++i)
        for (long j = 0; j < N; ++j)
          (*ga)[static_cast<std::size_t>(i * N + j)] +=
              self.grad[static_cast<std::size_t>(j * M + i)];
    };
  }
  return out;
}

Tensor sumAll(const Tensor& a) {
  Tensor out = makeResult({1}, {a}, "sumAll");
  Real s = Real(0);
  for (Real v : a.data()) s += v;
  out.data()[0] = s;
  if (out.requiresGrad()) {
    auto pa = a.impl_;
    out.impl_->backwardFn = [pa](TensorImpl& self) {
      auto* ga = gradOf(pa);
      if (!ga) return;
      const Real g = self.grad[0];
      for (Real& v : *ga) v += g;
    };
  }
  return out;
}

Tensor meanAll(const Tensor& a) {
  return mulScalar(sumAll(a), Real(1) / static_cast<Real>(a.numel()));
}

namespace {
/// Decompose shape around `axis`: outer (product before), len (axis), inner
/// (product after). Works for any rank >= 1.
void axisSplit(const Shape& s, int axis, long& outer, long& len,
               long& inner) {
  outer = 1;
  inner = 1;
  for (int i = 0; i < axis; ++i) outer *= s[static_cast<std::size_t>(i)];
  len = s[static_cast<std::size_t>(axis)];
  for (std::size_t i = static_cast<std::size_t>(axis) + 1; i < s.size(); ++i)
    inner *= s[i];
}

Shape dropAxis(const Shape& s, int axis, bool keepdim) {
  Shape out = s;
  if (keepdim) {
    out[static_cast<std::size_t>(axis)] = 1;
  } else {
    out.erase(out.begin() + axis);
    if (out.empty()) out = {1};
  }
  return out;
}
}  // namespace

Tensor sumAxis(const Tensor& a, int axis, bool keepdim) {
  if (axis < 0) axis += a.ndim();
  ARTSCI_EXPECTS(axis >= 0 && axis < a.ndim());
  long outer = 0, len = 0, inner = 0;
  axisSplit(a.shape(), axis, outer, len, inner);
  Tensor out = makeResult(dropAxis(a.shape(), axis, keepdim), {a}, "sumAxis");
  const auto& ad = a.data();
  auto& od = out.data();
  for (long o = 0; o < outer; ++o) {
    for (long i = 0; i < inner; ++i) {
      Real s = Real(0);
      for (long l = 0; l < len; ++l)
        s += ad[static_cast<std::size_t>((o * len + l) * inner + i)];
      od[static_cast<std::size_t>(o * inner + i)] = s;
    }
  }
  if (out.requiresGrad()) {
    auto pa = a.impl_;
    out.impl_->backwardFn = [pa, outer, len, inner](TensorImpl& self) {
      auto* ga = gradOf(pa);
      if (!ga) return;
      for (long o = 0; o < outer; ++o)
        for (long l = 0; l < len; ++l)
          for (long i = 0; i < inner; ++i)
            (*ga)[static_cast<std::size_t>((o * len + l) * inner + i)] +=
                self.grad[static_cast<std::size_t>(o * inner + i)];
    };
  }
  return out;
}

Tensor meanAxis(const Tensor& a, int axis, bool keepdim) {
  if (axis < 0) axis += a.ndim();
  const Real scale =
      Real(1) / static_cast<Real>(a.dim(axis));
  return mulScalar(sumAxis(a, axis, keepdim), scale);
}

Tensor maxAxis(const Tensor& a, int axis, bool keepdim) {
  if (axis < 0) axis += a.ndim();
  ARTSCI_EXPECTS(axis >= 0 && axis < a.ndim());
  long outer = 0, len = 0, inner = 0;
  axisSplit(a.shape(), axis, outer, len, inner);
  Tensor out = makeResult(dropAxis(a.shape(), axis, keepdim), {a}, "maxAxis");
  std::vector<long> argmax(static_cast<std::size_t>(outer * inner), 0);
  const auto& ad = a.data();
  auto& od = out.data();
#pragma omp parallel for schedule(static) if (outer * inner > (1L << 12))
  for (long oi = 0; oi < outer * inner; ++oi) {
    const long o = oi / inner;
    const long i = oi % inner;
    Real best = ad[static_cast<std::size_t>(o * len * inner + i)];
    long bestL = 0;
    for (long l = 1; l < len; ++l) {
      const Real v = ad[static_cast<std::size_t>((o * len + l) * inner + i)];
      if (v > best) {
        best = v;
        bestL = l;
      }
    }
    od[static_cast<std::size_t>(oi)] = best;
    argmax[static_cast<std::size_t>(oi)] = bestL;
  }
  if (out.requiresGrad()) {
    auto pa = a.impl_;
    out.impl_->backwardFn = [pa, argmax = std::move(argmax), inner,
                             len](TensorImpl& self) {
      auto* ga = gradOf(pa);
      if (!ga) return;
      const long total = self.numel();
      for (long oi = 0; oi < total; ++oi) {
        const long o = oi / inner;
        const long i = oi % inner;
        const long l = argmax[static_cast<std::size_t>(oi)];
        (*ga)[static_cast<std::size_t>((o * len + l) * inner + i)] +=
            self.grad[static_cast<std::size_t>(oi)];
      }
    };
  }
  return out;
}

Tensor reshape(const Tensor& a, Shape newShape) {
  ARTSCI_EXPECTS_MSG(numelOf(newShape) == a.numel(),
                     "reshape " << shapeToString(a.shape()) << " -> "
                                << shapeToString(newShape)
                                << " changes element count");
  Tensor out = makeResult(std::move(newShape), {a}, "reshape");
  out.data() = a.data();
  if (out.requiresGrad()) {
    auto pa = a.impl_;
    out.impl_->backwardFn = [pa](TensorImpl& self) {
      auto* ga = gradOf(pa);
      if (!ga) return;
      for (std::size_t i = 0; i < self.grad.size(); ++i)
        (*ga)[i] += self.grad[i];
    };
  }
  return out;
}

Tensor cat(const std::vector<Tensor>& parts, int axis) {
  ARTSCI_EXPECTS(!parts.empty());
  const int nd = parts[0].ndim();
  if (axis < 0) axis += nd;
  ARTSCI_EXPECTS(axis >= 0 && axis < nd);
  Shape outShape = parts[0].shape();
  long axisTotal = 0;
  for (const auto& p : parts) {
    ARTSCI_EXPECTS(p.ndim() == nd);
    for (int d = 0; d < nd; ++d) {
      if (d != axis)
        ARTSCI_EXPECTS_MSG(p.dim(d) == outShape[static_cast<std::size_t>(d)],
                           "cat: incompatible shapes");
    }
    axisTotal += p.dim(axis);
  }
  outShape[static_cast<std::size_t>(axis)] = axisTotal;

  std::vector<Tensor> parents(parts.begin(), parts.end());
  Tensor out = makeResult(outShape, parents, "cat");

  long outer = 0, lenOut = 0, inner = 0;
  axisSplit(outShape, axis, outer, lenOut, inner);
  auto& od = out.data();
  long axisOffset = 0;
  for (const auto& p : parts) {
    const long len = p.dim(axis);
    const auto& pd = p.data();
    for (long o = 0; o < outer; ++o) {
      const Real* src = pd.data() + o * len * inner;
      Real* dst = od.data() + (o * lenOut + axisOffset) * inner;
      std::memcpy(dst, src, sizeof(Real) * static_cast<std::size_t>(len * inner));
    }
    axisOffset += len;
  }
  if (out.requiresGrad()) {
    std::vector<std::shared_ptr<TensorImpl>> impls;
    std::vector<long> lens;
    for (const auto& p : parts) {
      impls.push_back(p.impl_);
      lens.push_back(p.dim(axis));
    }
    out.impl_->backwardFn = [impls, lens, outer, lenOut,
                             inner](TensorImpl& self) {
      long axisOffset2 = 0;
      for (std::size_t pi = 0; pi < impls.size(); ++pi) {
        const long len = lens[pi];
        if (auto* ga = gradOf(impls[pi])) {
          for (long o = 0; o < outer; ++o) {
            const Real* src =
                self.grad.data() + (o * lenOut + axisOffset2) * inner;
            Real* dst = ga->data() + o * len * inner;
            for (long i = 0; i < len * inner; ++i) dst[i] += src[i];
          }
        }
        axisOffset2 += len;
      }
    };
  }
  return out;
}

Tensor slice(const Tensor& a, int axis, long start, long end) {
  const int nd = a.ndim();
  if (axis < 0) axis += nd;
  ARTSCI_EXPECTS(axis >= 0 && axis < nd);
  ARTSCI_EXPECTS_MSG(start >= 0 && end <= a.dim(axis) && start < end,
                     "slice range [" << start << ", " << end
                                     << ") out of bounds for axis size "
                                     << a.dim(axis));
  Shape outShape = a.shape();
  outShape[static_cast<std::size_t>(axis)] = end - start;
  Tensor out = makeResult(outShape, {a}, "slice");
  long outer = 0, lenIn = 0, inner = 0;
  axisSplit(a.shape(), axis, outer, lenIn, inner);
  const long lenOut = end - start;
  const auto& ad = a.data();
  auto& od = out.data();
  for (long o = 0; o < outer; ++o) {
    const Real* src = ad.data() + (o * lenIn + start) * inner;
    Real* dst = od.data() + o * lenOut * inner;
    std::memcpy(dst, src, sizeof(Real) * static_cast<std::size_t>(lenOut * inner));
  }
  if (out.requiresGrad()) {
    auto pa = a.impl_;
    out.impl_->backwardFn = [pa, outer, lenIn, lenOut, inner,
                             start](TensorImpl& self) {
      auto* ga = gradOf(pa);
      if (!ga) return;
      for (long o = 0; o < outer; ++o) {
        const Real* src = self.grad.data() + o * lenOut * inner;
        Real* dst = ga->data() + (o * lenIn + start) * inner;
        for (long i = 0; i < lenOut * inner; ++i) dst[i] += src[i];
      }
    };
  }
  return out;
}

Tensor permuteLast(const Tensor& a, const std::vector<long>& perm) {
  const long L = a.dim(-1);
  ARTSCI_EXPECTS_MSG(static_cast<long>(perm.size()) == L,
                     "permuteLast: perm size " << perm.size()
                                               << " != last dim " << L);
  Tensor out = makeResult(a.shape(), {a}, "permuteLast");
  const long rows = a.numel() / L;
  const auto& ad = a.data();
  auto& od = out.data();
#pragma omp parallel for schedule(static) if (rows * L > (1L << 14))
  for (long r = 0; r < rows; ++r) {
    const Real* src = ad.data() + r * L;
    Real* dst = od.data() + r * L;
    for (long i = 0; i < L; ++i) dst[i] = src[perm[static_cast<std::size_t>(i)]];
  }
  if (out.requiresGrad()) {
    auto pa = a.impl_;
    out.impl_->backwardFn = [pa, perm, rows, L](TensorImpl& self) {
      auto* ga = gradOf(pa);
      if (!ga) return;
      for (long r = 0; r < rows; ++r) {
        const Real* src = self.grad.data() + r * L;
        Real* dst = ga->data() + r * L;
        for (long i = 0; i < L; ++i)
          dst[perm[static_cast<std::size_t>(i)]] += src[i];
      }
    };
  }
  return out;
}

Tensor chamferDistance(const Tensor& a, const Tensor& b) {
  ARTSCI_EXPECTS_MSG(a.ndim() == 3 && b.ndim() == 3,
                     "chamferDistance expects [B,N,D] x [B,M,D]");
  const long B = a.dim(0), N = a.dim(1), D = a.dim(2);
  const long M = b.dim(1);
  ARTSCI_EXPECTS(b.dim(0) == B && b.dim(2) == D);
  Tensor out = makeResult({1}, {a, b}, "chamfer");

  // nearest-neighbour indices: for each a-point its closest b-point, and
  // vice versa. Stored for the backward pass.
  std::vector<long> nnAB(static_cast<std::size_t>(B * N));
  std::vector<long> nnBA(static_cast<std::size_t>(B * M));
  const Real* A = a.data().data();
  const Real* Bd = b.data().data();
  // Per-batch partials summed in index order afterwards: an OpenMP `+`
  // reduction combines in thread-arrival order, which is not run-invariant.
  std::vector<Real> partial(static_cast<std::size_t>(B));

#pragma omp parallel for schedule(static)
  for (long bi = 0; bi < B; ++bi) {
    const Real* ab = A + bi * N * D;
    const Real* bb = Bd + bi * M * D;
    Real sumA = Real(0);
    for (long i = 0; i < N; ++i) {
      Real best = Real(1e300);
      long bestJ = 0;
      for (long j = 0; j < M; ++j) {
        Real d2 = Real(0);
        for (long d = 0; d < D; ++d) {
          const Real diff = ab[i * D + d] - bb[j * D + d];
          d2 += diff * diff;
        }
        if (d2 < best) {
          best = d2;
          bestJ = j;
        }
      }
      nnAB[static_cast<std::size_t>(bi * N + i)] = bestJ;
      sumA += best;
    }
    Real sumB = Real(0);
    for (long j = 0; j < M; ++j) {
      Real best = Real(1e300);
      long bestI = 0;
      for (long i = 0; i < N; ++i) {
        Real d2 = Real(0);
        for (long d = 0; d < D; ++d) {
          const Real diff = ab[i * D + d] - bb[j * D + d];
          d2 += diff * diff;
        }
        if (d2 < best) {
          best = d2;
          bestI = i;
        }
      }
      nnBA[static_cast<std::size_t>(bi * M + j)] = bestI;
      sumB += best;
    }
    partial[static_cast<std::size_t>(bi)] =
        sumA / static_cast<Real>(N) + sumB / static_cast<Real>(M);
  }
  Real total = Real(0);
  for (Real p : partial) total += p;
  out.data()[0] = total / static_cast<Real>(B);

  if (out.requiresGrad()) {
    auto pa = a.impl_;
    auto pb = b.impl_;
    out.impl_->backwardFn = [pa, pb, nnAB = std::move(nnAB),
                             nnBA = std::move(nnBA), B, N, M,
                             D](TensorImpl& self) {
      const Real g = self.grad[0] / static_cast<Real>(B);
      auto* ga = gradOf(pa);
      auto* gb = gradOf(pb);
      const Real* A2 = pa->data.data();
      const Real* B2 = pb->data.data();
      const Real wA = g / static_cast<Real>(N);
      const Real wB = g / static_cast<Real>(M);
      for (long bi = 0; bi < B; ++bi) {
        for (long i = 0; i < N; ++i) {
          const long j = nnAB[static_cast<std::size_t>(bi * N + i)];
          for (long d = 0; d < D; ++d) {
            const std::size_t ia = static_cast<std::size_t>((bi * N + i) * D + d);
            const std::size_t ib = static_cast<std::size_t>((bi * M + j) * D + d);
            const Real diff = Real(2) * (A2[ia] - B2[ib]);
            if (ga) (*ga)[ia] += wA * diff;
            if (gb) (*gb)[ib] -= wA * diff;
          }
        }
        for (long j = 0; j < M; ++j) {
          const long i = nnBA[static_cast<std::size_t>(bi * M + j)];
          for (long d = 0; d < D; ++d) {
            const std::size_t ia = static_cast<std::size_t>((bi * N + i) * D + d);
            const std::size_t ib = static_cast<std::size_t>((bi * M + j) * D + d);
            const Real diff = Real(2) * (B2[ib] - A2[ia]);
            if (gb) (*gb)[ib] += wB * diff;
            if (ga) (*ga)[ia] -= wB * diff;
          }
        }
      }
    };
  }
  return out;
}

Tensor pairwiseSquaredDistances(const Tensor& x, const Tensor& y) {
  ARTSCI_EXPECTS(x.ndim() == 2 && y.ndim() == 2);
  ARTSCI_EXPECTS(x.dim(1) == y.dim(1));
  // ||x - y||^2 = ||x||^2 + ||y||^2 - 2 x.y — fully differentiable
  // composition, so no dedicated backward needed.
  Tensor xx = sumAxis(square(x), 1, /*keepdim=*/true);      // [N,1]
  Tensor yy = sumAxis(square(y), 1, /*keepdim=*/false);     // [M]
  Tensor cross = matmul(x, transpose2d(y));                 // [N,M]
  Tensor d2 = add(sub(xx, mulScalar(cross, Real(2))), yy);  // broadcasts
  // Numerical guard: tiny negatives from cancellation clip to zero.
  return relu(d2);
}

}  // namespace artsci::ml

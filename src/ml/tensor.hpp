/// \file tensor.hpp
/// Dense row-major tensor with reverse-mode automatic differentiation.
///
/// This is the substrate standing in for PyTorch in the paper's MLapp.
/// Design: a value-semantic `Tensor` handle over a shared `TensorImpl`
/// node. Operations (ml/ops.hpp) build a dynamic graph; `backward()` on a
/// scalar result topologically sorts the graph and accumulates gradients.
/// Scalars are double: CPU throughput is not the bottleneck at the scales
/// we train, and double precision makes finite-difference gradient checks
/// in the test-suite exact to ~1e-8.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace artsci::ml {

using Real = double;
using Shape = std::vector<long>;

/// Product of dimensions (1 for rank-0/empty shape).
long numelOf(const Shape& shape);

/// "[2, 3, 4]" — for error messages.
std::string shapeToString(const Shape& shape);

struct TensorImpl {
  Shape shape;
  std::vector<Real> data;
  std::vector<Real> grad;  ///< same length as data once backward touched it
  bool requiresGrad = false;
  std::vector<std::shared_ptr<TensorImpl>> parents;
  /// Propagates this node's grad into its parents' grads. The node itself
  /// is passed as argument to avoid a shared_ptr self-capture cycle.
  std::function<void(TensorImpl&)> backwardFn;
  const char* opName = "leaf";

  long numel() const { return static_cast<long>(data.size()); }
  /// Allocate + zero the gradient buffer if absent.
  void ensureGrad() {
    if (grad.size() != data.size()) grad.assign(data.size(), Real(0));
  }
};

class Tensor {
 public:
  Tensor() = default;  ///< undefined tensor

  /// Leaf constructors ---------------------------------------------------
  static Tensor zeros(Shape shape, bool requiresGrad = false);
  static Tensor full(Shape shape, Real value, bool requiresGrad = false);
  static Tensor fromVector(Shape shape, std::vector<Real> values,
                           bool requiresGrad = false);
  /// i.i.d. N(0, stddev^2) entries.
  static Tensor randn(Shape shape, Rng& rng, Real stddev = Real(1),
                      bool requiresGrad = false);
  /// Scalar (rank-0 represented as shape {1}).
  static Tensor scalar(Real value, bool requiresGrad = false);

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const { return impl()->shape; }
  int ndim() const { return static_cast<int>(shape().size()); }
  long dim(int i) const;
  long numel() const { return impl()->numel(); }

  std::vector<Real>& data() { return impl()->data; }
  const std::vector<Real>& data() const { return impl()->data; }
  std::vector<Real>& grad() { return impl()->grad; }
  const std::vector<Real>& grad() const { return impl()->grad; }

  bool requiresGrad() const { return impl()->requiresGrad; }
  Tensor& setRequiresGrad(bool value) {
    impl()->requiresGrad = value;
    return *this;
  }

  /// Value of a single-element tensor.
  Real item() const;

  /// Element access by flat index (bounds-checked).
  Real at(long flatIndex) const;
  void setAt(long flatIndex, Real value);

  /// Run reverse-mode AD from this scalar; accumulates into .grad() of all
  /// reachable tensors with requiresGrad.
  void backward();

  /// Zero this tensor's gradient buffer (allocating it if needed).
  void zeroGrad();

  /// A leaf copy sharing no graph history (fresh buffer).
  Tensor detach() const;

  std::shared_ptr<TensorImpl> impl_;

  TensorImpl* impl() const {
    ARTSCI_EXPECTS_MSG(impl_ != nullptr, "use of undefined Tensor");
    return impl_.get();
  }
};

/// Construct a non-leaf result node. Parents keep the graph alive.
Tensor makeResult(Shape shape, std::vector<Tensor> parents,
                  const char* opName);

}  // namespace artsci::ml

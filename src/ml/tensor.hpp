/// \file tensor.hpp
/// Dense row-major tensor with reverse-mode automatic differentiation.
///
/// This is the substrate standing in for PyTorch in the paper's MLapp.
/// Design: a value-semantic `Tensor` handle over a shared `TensorImpl`
/// node. Operations (ml/ops.hpp) build a dynamic graph; `backward()` on a
/// scalar result topologically sorts the graph and accumulates gradients.
/// Scalars are double: CPU throughput is not the bottleneck at the scales
/// we train, and double precision makes finite-difference gradient checks
/// in the test-suite exact to ~1e-8.
///
/// Storage model (PR 9). A node's elements live in exactly one of three
/// places:
///  - heap vectors (`data`/`grad`) — every leaf (parameters, batches) and
///    any result built outside an ArenaScope. The `data()`/`grad()`
///    vector accessors only work here, which keeps the optimizer,
///    serialization, DDP parameter broadcast, and tests on the same API
///    they always had.
///  - an Arena (`arenaData`/`arenaGrad`) — results built under an
///    ArenaScope get step-lifetime bump storage; see ml/arena.hpp.
///  - another node (`viewBase` + `offset`/`strides`) — zero-copy views
///    produced by transpose2d / sliceFast / broadcasts. Views have
///    parents (so autograd reaches them) but no backwardFn: consumers
///    accumulate straight into the aliased base gradient, which is
///    bit-identical to the copy-node formulation because each storage
///    slot receives the same additions in the same topological order.
///
/// `dataPtr()`/`gradPtr()` resolve the active storage per call; all ops
/// go through them. Strided (non-contiguous) tensors are handled by the
/// same physical-stride machinery that already served broadcasting.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/arena.hpp"
#include "ml/shape.hpp"

namespace artsci::ml {

using Real = double;

/// Product of dimensions (1 for rank-0/empty shape).
long numelOf(const Shape& shape);

/// "[2, 3, 4]" — for error messages.
std::string shapeToString(const Shape& shape);

/// Process-wide execution switches, mainly for A/B benchmarks and
/// bit-identity tests. Not thread-safe to mutate mid-graph.
struct ExecOptions {
  /// When false, the view-producing ops (transpose2d, sliceFast,
  /// reshapeFast, broadcast views) materialize copies exactly as the
  /// pre-view code path did. The determinism tests verify bitwise-equal
  /// gradients across both settings.
  bool useViews = true;
  /// Pin the pre-refactor executor so a single binary can measure an
  /// honest "before" lane: copying view ops (overrides useViews), the
  /// hash-set-based topological sort in backward(), and the generic
  /// div/mod broadcast indexing in elementwise backward loops. The
  /// arithmetic per element is unchanged — both lanes produce
  /// bit-identical values and gradients (bench-verified every run) —
  /// only the bookkeeping around it reverts. The acceptance bench runs
  /// its baseline in this lane (outside any ArenaScope); nothing else
  /// should set it.
  bool legacyExec = false;
};
ExecOptions& execOptions();

struct TensorImpl {
  Shape shape;
  Strides strides;        ///< element strides; stride 0 = broadcast axis
  long offset = 0;        ///< element offset into the owning storage
  long numel_ = 0;        ///< product of shape (logical element count)
  bool contiguous = true; ///< strides == rowMajorStrides(shape)

  std::vector<Real> data;  ///< heap storage (owners only)
  std::vector<Real> grad;  ///< heap grad, same length as data once touched
  std::shared_ptr<TensorImpl> viewBase;  ///< storage owner if this is a view
  Arena* arena = nullptr;                ///< step arena if arena-backed
  Real* arenaData = nullptr;
  Real* arenaGrad = nullptr;

  bool requiresGrad = false;
  /// Last backward() traversal that visited this node (0 = never). An
  /// epoch compare replaces the former unordered_set membership test in
  /// the topological sort — same DFS, same visit order, no hashing.
  std::uint64_t visitMark = 0;
  std::vector<std::shared_ptr<TensorImpl>> parents;
  /// Propagates this node's grad into its parents' grads. The node itself
  /// is passed as argument to avoid a shared_ptr self-capture cycle.
  std::function<void(TensorImpl&)> backwardFn;
  const char* opName = "leaf";

  long numel() const { return numel_; }
  bool isView() const { return viewBase != nullptr; }

  /// Base address of this node's elements (views: base storage + offset;
  /// apply `strides` for non-contiguous access).
  Real* dataPtr() {
    if (viewBase) return viewBase->dataPtr() + offset;
    if (arena) return arenaData;
    return data.data();
  }
  const Real* dataPtr() const {
    return const_cast<TensorImpl*>(this)->dataPtr();
  }

  /// Base address of the gradient; only valid after ensureGrad() ran on
  /// this node (or its view base).
  Real* gradPtr() {
    if (viewBase) return viewBase->gradPtr() + offset;
    if (arena) return arenaGrad;
    return grad.data();
  }

  /// Materialize (and zero) the gradient buffer if absent. Views delegate
  /// to their storage owner; arena nodes take pre-zeroed plan storage
  /// (one bulk memset per step instead of per-node assigns); heap nodes
  /// keep the original assign-on-size-mismatch behavior.
  void ensureGrad() {
    if (viewBase) {
      viewBase->ensureGrad();
      return;
    }
    if (arena) {
      if (!arenaGrad) arenaGrad = arena->allocGrad(numel_);
      return;
    }
    if (grad.size() != data.size()) grad.assign(data.size(), Real(0));
  }
};

class Tensor {
 public:
  Tensor() = default;  ///< undefined tensor

  /// Leaf constructors (always heap-backed, never arena) -----------------
  static Tensor zeros(Shape shape, bool requiresGrad = false);
  static Tensor full(Shape shape, Real value, bool requiresGrad = false);
  static Tensor fromVector(Shape shape, std::vector<Real> values,
                           bool requiresGrad = false);
  /// i.i.d. N(0, stddev^2) entries.
  static Tensor randn(Shape shape, Rng& rng, Real stddev = Real(1),
                      bool requiresGrad = false);
  /// Scalar (rank-0 represented as shape {1}).
  static Tensor scalar(Real value, bool requiresGrad = false);

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const { return impl()->shape; }
  const Strides& strides() const { return impl()->strides; }
  int ndim() const { return static_cast<int>(shape().size()); }
  long dim(int i) const;
  long numel() const { return impl()->numel(); }
  bool isView() const { return impl()->isView(); }
  bool isContiguous() const { return impl()->contiguous; }

  /// Heap vector accessors — valid only for heap-owning tensors (leaves,
  /// params, results built outside an ArenaScope). Views and arena nodes
  /// trip the guard: use dataPtr()/toVector() there.
  std::vector<Real>& data() {
    TensorImpl* im = impl();
    ARTSCI_EXPECTS_MSG(!im->viewBase && !im->arena,
                       "data(): vector access on " << im->opName
                           << " (view/arena tensor) — use dataPtr()");
    return im->data;
  }
  const std::vector<Real>& data() const {
    return const_cast<Tensor*>(this)->data();
  }
  std::vector<Real>& grad() {
    TensorImpl* im = impl();
    ARTSCI_EXPECTS_MSG(!im->viewBase && !im->arena,
                       "grad(): vector access on " << im->opName
                           << " (view/arena tensor) — use gradPtr()");
    return im->grad;
  }
  const std::vector<Real>& grad() const {
    return const_cast<Tensor*>(this)->grad();
  }

  Real* dataPtr() { return impl()->dataPtr(); }
  const Real* dataPtr() const { return impl()->dataPtr(); }
  Real* gradPtr() const { return impl()->gradPtr(); }

  /// Logical-order copy of the elements (strided gather for views).
  std::vector<Real> toVector() const;

  bool requiresGrad() const { return impl()->requiresGrad; }
  Tensor& setRequiresGrad(bool value) {
    impl()->requiresGrad = value;
    return *this;
  }

  /// Value of a single-element tensor.
  Real item() const;

  /// Element access by logical flat index (bounds-checked, stride-aware).
  Real at(long flatIndex) const;
  void setAt(long flatIndex, Real value);

  /// Run reverse-mode AD from this scalar; accumulates into .grad() of all
  /// reachable tensors with requiresGrad.
  void backward();

  /// Zero this tensor's gradient buffer (allocating it if needed).
  void zeroGrad();

  /// A leaf copy sharing no graph history (fresh contiguous heap buffer).
  Tensor detach() const;

  std::shared_ptr<TensorImpl> impl_;

  TensorImpl* impl() const {
    ARTSCI_EXPECTS_MSG(impl_ != nullptr, "use of undefined Tensor");
    return impl_.get();
  }
};

/// Construct a non-leaf result node (contiguous; arena-backed when an
/// ArenaScope is active on this thread). Parents keep the graph alive.
Tensor makeResult(Shape shape, std::vector<Tensor> parents,
                  const char* opName);

/// Construct a zero-copy view of `src`: same storage, new shape/strides,
/// `offset` extra elements past src's own offset. View chains collapse —
/// the new node aliases src's ultimate storage owner directly.
Tensor makeView(const Tensor& src, Shape shape, Strides strides, long offset,
                const char* opName);

}  // namespace artsci::ml

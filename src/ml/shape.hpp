/// \file shape.hpp
/// Small-buffer `Shape` and `Strides` value types for the tensor stack.
///
/// Modeled on xchainer's strides.h/shape.h (the related chainer repo):
/// dimension vectors live in a fixed inline buffer — no heap allocation,
/// trivially copyable, cheap to pass by value — so building an autograd
/// node never mallocs for metadata, and transpose/slice/broadcast become
/// pure stride arithmetic (ml/ops.hpp view ops).
///
/// `Shape` holds extents; `Strides` holds *element* (not byte) strides.
/// A tensor is contiguous iff its strides equal rowMajorStrides(shape);
/// broadcast views use stride 0 along expanded axes.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <ostream>

#include "common/error.hpp"

namespace artsci::ml {

namespace detail {

/// Fixed-capacity inline vector of longs with the std::vector surface the
/// tensor stack uses (push_back/erase/back/range-for/==). Capacity is a
/// hard cap: no tensor in this codebase exceeds rank 3, and a bounded rank
/// is what makes Shape/Strides stack-allocated values.
class DimBuffer {
 public:
  static constexpr std::size_t kMaxNdim = 8;
  using value_type = long;
  using iterator = long*;
  using const_iterator = const long*;

  DimBuffer() = default;
  DimBuffer(std::initializer_list<long> init) {
    ARTSCI_EXPECTS_MSG(init.size() <= kMaxNdim,
                       "tensor rank " << init.size() << " exceeds kMaxNdim");
    for (long v : init) dims_[size_++] = v;
  }
  explicit DimBuffer(std::size_t n, long fill = 0) {
    ARTSCI_EXPECTS_MSG(n <= kMaxNdim,
                       "tensor rank " << n << " exceeds kMaxNdim");
    size_ = n;
    for (std::size_t i = 0; i < n; ++i) dims_[i] = fill;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  long& operator[](std::size_t i) { return dims_[i]; }
  long operator[](std::size_t i) const { return dims_[i]; }
  long& front() { return dims_[0]; }
  long front() const { return dims_[0]; }
  long& back() { return dims_[size_ - 1]; }
  long back() const { return dims_[size_ - 1]; }

  iterator begin() { return dims_; }
  iterator end() { return dims_ + size_; }
  const_iterator begin() const { return dims_; }
  const_iterator end() const { return dims_ + size_; }

  void push_back(long v) {
    ARTSCI_EXPECTS_MSG(size_ < kMaxNdim, "tensor rank exceeds kMaxNdim");
    dims_[size_++] = v;
  }
  void pop_back() {
    ARTSCI_EXPECTS(size_ > 0);
    --size_;
  }
  iterator erase(iterator pos) {
    ARTSCI_EXPECTS(pos >= begin() && pos < end());
    for (iterator it = pos; it + 1 < end(); ++it) *it = *(it + 1);
    --size_;
    return pos;
  }
  void clear() { size_ = 0; }
  void resize(std::size_t n, long fill = 0) {
    ARTSCI_EXPECTS_MSG(n <= kMaxNdim,
                       "tensor rank " << n << " exceeds kMaxNdim");
    for (std::size_t i = size_; i < n; ++i) dims_[i] = fill;
    size_ = n;
  }

  friend bool operator==(const DimBuffer& a, const DimBuffer& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i)
      if (a.dims_[i] != b.dims_[i]) return false;
    return true;
  }
  friend bool operator!=(const DimBuffer& a, const DimBuffer& b) {
    return !(a == b);
  }

  friend std::ostream& operator<<(std::ostream& os, const DimBuffer& d) {
    os << '[';
    for (std::size_t i = 0; i < d.size_; ++i) {
      if (i) os << ", ";
      os << d.dims_[i];
    }
    return os << ']';
  }

 private:
  long dims_[kMaxNdim] = {};
  std::size_t size_ = 0;
};

}  // namespace detail

/// Tensor extents. `Shape{2, 3}` is a rank-2 shape; `Shape(n)` (like
/// std::vector) is n zeroed dimensions.
class Shape : public detail::DimBuffer {
 public:
  using DimBuffer::DimBuffer;
};

/// Per-axis element strides. Stride 0 marks a broadcast (repeated) axis.
class Strides : public detail::DimBuffer {
 public:
  using DimBuffer::DimBuffer;
};

/// Contiguous row-major strides of `shape` (innermost axis stride 1).
inline Strides rowMajorStrides(const Shape& shape) {
  Strides st(shape.size(), 1);
  for (int i = static_cast<int>(shape.size()) - 2; i >= 0; --i)
    st[static_cast<std::size_t>(i)] =
        st[static_cast<std::size_t>(i) + 1] *
        shape[static_cast<std::size_t>(i) + 1];
  return st;
}

/// Storage offset of logical flat index `flat` under `strides` (both
/// row-major logical order). Broadcast axes (stride 0) collapse naturally.
inline long logicalToStorage(const Shape& shape, const Strides& strides,
                             long flat) {
  long idx = 0;
  for (int d = static_cast<int>(shape.size()) - 1; d >= 0; --d) {
    const long dim = shape[static_cast<std::size_t>(d)];
    idx += (flat % dim) * strides[static_cast<std::size_t>(d)];
    flat /= dim;
  }
  return idx;
}

}  // namespace artsci::ml

/// \file ops.hpp
/// Differentiable tensor operations. Each function builds one node of the
/// autograd graph; backward passes are exact (verified by finite-difference
/// gradient checks in tests/ml).
///
/// Broadcasting follows numpy right-aligned semantics for the elementwise
/// binary ops; gradients are sum-reduced over broadcast dimensions.
#pragma once

#include <vector>

#include "ml/tensor.hpp"

namespace artsci::ml {

// --- broadcasting helpers ------------------------------------------------
/// Right-aligned numpy broadcast of two shapes; throws on mismatch.
Shape broadcastShapes(const Shape& a, const Shape& b);

// --- elementwise binary (broadcasting) ------------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

inline Tensor operator+(const Tensor& a, const Tensor& b) { return add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return mul(a, b); }
inline Tensor operator/(const Tensor& a, const Tensor& b) { return div(a, b); }

// --- scalar --------------------------------------------------------------
Tensor addScalar(const Tensor& a, Real s);
Tensor mulScalar(const Tensor& a, Real s);

// --- unary ---------------------------------------------------------------
Tensor neg(const Tensor& a);
Tensor relu(const Tensor& a);
Tensor leakyRelu(const Tensor& a, Real slope = Real(0.01));
Tensor tanhT(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor expT(const Tensor& a);
Tensor logT(const Tensor& a);  ///< natural log; inputs must be > 0
Tensor sqrtT(const Tensor& a);
Tensor square(const Tensor& a);
Tensor reciprocal(const Tensor& a);
Tensor softplus(const Tensor& a);

// --- linear algebra --------------------------------------------------------
/// Matrix product [M,K] x [K,N] -> [M,N]. Forward and both backward
/// products run on the shared register-blocked SIMD kernels
/// (ml/kernels/gemm.hpp); the OpenMP path partitions output rows with a
/// fixed static chunking, so results are bit-identical across thread
/// counts. Row-strided views of `a` (column slices, arbitrary lda) feed
/// the kernels directly; any other layout is materialized first, which
/// reproduces the pre-view buffer bit-for-bit.
Tensor matmul(const Tensor& a, const Tensor& b);

/// Elementwise nonlinearity selector. Enumerator order matches
/// kernels::Act so serving-side mappings stay a checked static_cast;
/// ml/layers.hpp re-exports it for the layer constructors.
enum class Activation { kNone, kRelu, kLeakyRelu, kTanh };

/// Fused linear layer act(x[rows,in] · w[in,out] (+ bias[out])) ->
/// [rows,out]: one graph node instead of matmul+add+activation, on the
/// same shared kernels. The epilogue order (k-ascending accumulation,
/// bias last, activation after) and the backward formulas are exactly
/// those of the former separate nodes, so fusion never changes bits.
/// `bias` may be an undefined Tensor (no-bias layer). This is the
/// training hot path — ml::Linear routes through it.
Tensor linear(const Tensor& x, const Tensor& w, const Tensor& bias,
              Activation act = Activation::kNone);
/// [M,N] -> [N,M]. With execOptions().useViews (default) this is a
/// zero-copy stride-swap view; otherwise a materialized copy node.
Tensor transpose2d(const Tensor& a);

// --- reductions ------------------------------------------------------------
Tensor sumAll(const Tensor& a);   ///< -> scalar
Tensor meanAll(const Tensor& a);  ///< -> scalar
/// Sum over one axis. keepdim retains a size-1 axis.
Tensor sumAxis(const Tensor& a, int axis, bool keepdim = false);
Tensor meanAxis(const Tensor& a, int axis, bool keepdim = false);
/// Max over one axis; backward routes gradient to argmax positions
/// (the PointNet max-pool over the particle axis).
Tensor maxAxis(const Tensor& a, int axis, bool keepdim = false);

// --- views (zero-copy; ml/shape.hpp stride machinery) -----------------------
/// Materialized contiguous copy node of any (possibly strided) tensor.
/// Backward scatters one gradient add per storage slot, so the result is
/// bit-identical to the copy ops the views replaced.
Tensor contiguousCopy(const Tensor& a);
/// `a` itself if already contiguous, else contiguousCopy(a).
Tensor asContiguous(const Tensor& a);
/// slice() as a zero-copy view (offset + unchanged strides); falls back
/// to the copying slice() when execOptions().useViews is off.
Tensor sliceFast(const Tensor& a, int axis, long start, long end);
/// reshape() as a zero-copy view when `a` is contiguous; copying
/// reshape() otherwise (or when useViews is off).
Tensor reshapeFast(const Tensor& a, Shape newShape);
/// Broadcast `a` to `target` as a stride-0 view (numpy right-aligned);
/// materialized when useViews is off.
Tensor broadcastTo(const Tensor& a, const Shape& target);

// --- shape manipulation -----------------------------------------------------
Tensor reshape(const Tensor& a, Shape newShape);
/// Concatenate along `axis`; all other dims must match.
Tensor cat(const std::vector<Tensor>& parts, int axis);
/// Copy of the [start, end) range along `axis`.
Tensor slice(const Tensor& a, int axis, long start, long end);
/// Last-axis permutation: y[..., i] = x[..., perm[i]]; perm must be a
/// bijection on [0, lastDim). Used for the voxel-shuffle deconvolution and
/// for the INN's fixed channel permutations.
Tensor permuteLast(const Tensor& a, const std::vector<long>& perm);

// --- point-cloud kernels ----------------------------------------------------
/// Symmetric Chamfer distance between batched point clouds
/// a:[B,N,D], b:[B,M,D]:
///   CD = mean_B ( mean_n min_m ||a-b||^2 + mean_m min_n ||a-b||^2 ).
/// This is the VAE reconstruction loss L_CD of Eq.(1).
Tensor chamferDistance(const Tensor& a, const Tensor& b);

/// Pairwise squared euclidean distances between row sets x:[N,D], y:[M,D]
/// -> [N,M]; differentiable composite (used by the MMD losses).
Tensor pairwiseSquaredDistances(const Tensor& x, const Tensor& y);

}  // namespace artsci::ml

/// \file arena.hpp
/// Per-step bump allocator for autograd node storage.
///
/// The training graph has a *fixed topology*: every iteration builds the
/// same sequence of result nodes with the same shapes. A general-purpose
/// heap re-discovers that fact the hard way — one malloc (+ one more for
/// the grad) per node per step. The Arena instead hands out offsets from a
/// step-lifetime region that `beginStep()` resets in O(1), and records the
/// allocation sequence as a *plan*: after one warm-up step the region is
/// sized, every subsequent step replays the identical offsets, and
/// `stats().heapAllocations` stops moving — the proof (CI-gated in
/// bench_micro_ops --acceptance) that steady-state steps are malloc-free.
///
/// Two regions:
///  - data: never zeroed. Every op in ml/ops.cpp fully overwrites its
///    result buffer, so the zero-fill the heap path performs (makeResult
///    via Tensor::zeros) is pure waste here.
///  - grad: zeroed ONCE per step, in bulk, up to the previous step's
///    high-water mark (one streaming memset) — replacing the per-node
///    `grad.assign` that re-touched every buffer inside backward().
///
/// Threading: arenas are single-threaded by design — one arena per trainer
/// rank / per serving engine. `ArenaScope` installs an arena as the
/// calling thread's current one; `makeResult` (tensor.cpp) consults
/// `currentArena()`. OpenMP worker threads inside kernels never allocate,
/// so they never observe the scope.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace artsci::ml {

using Real = double;  // matches ml/tensor.hpp (alias re-declaration is ok)

class Arena {
 public:
  struct Stats {
    std::uint64_t steps = 0;            ///< beginStep() calls
    std::uint64_t heapAllocations = 0;  ///< region growths (actual mallocs)
    std::uint64_t planLength = 0;       ///< allocations in the recorded plan
    std::uint64_t planReplays = 0;      ///< steps that replayed the plan exactly
    std::uint64_t planDeviations = 0;   ///< steps that diverged (re-recorded)
    std::size_t dataBytesPeak = 0;      ///< high-water data region bytes
    std::size_t gradBytesPeak = 0;      ///< high-water grad region bytes
  };

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Start a step: O(1) reset of both regions, one bulk zero of the grad
  /// region up to its high-water mark, plan bookkeeping. Memory handed out
  /// before this call is invalidated — tensors from the previous step must
  /// not be read afterwards.
  void beginStep();

  /// `n` Reals of *uninitialized* step-lifetime storage.
  Real* allocData(long n);
  /// `n` Reals of *zeroed* step-lifetime storage (gradient buffers).
  Real* allocGrad(long n);

  /// Snapshot of the counters, including the still-open step: a fully
  /// replayed (or deviated) in-flight step is counted as if beginStep had
  /// already closed it, so callers can read honest numbers right after a
  /// step's work without issuing another beginStep.
  Stats stats() const;
  /// Total bytes currently reserved across both regions.
  std::size_t reservedBytes() const;
  /// Drop all reserved memory and the recorded plan (tests).
  void releaseMemory();

 private:
  struct Region {
    struct Chunk {
      std::unique_ptr<Real[]> mem;
      std::size_t cap = 0;  ///< elements
    };
    std::vector<Chunk> chunks;
    std::size_t chunk = 0;      ///< chunk currently bumped
    std::size_t used = 0;       ///< elements used in that chunk
    std::size_t stepTotal = 0;  ///< elements handed out this step
    std::size_t highWater = 0;  ///< max stepTotal ever observed
  };

  Real* bump(Region& r, std::size_t n, bool zeroed);
  void resetRegion(Region& r);
  void recordOrCheck(std::int64_t key);

  Region data_;
  Region grad_;

  // Plan: the (region, size) sequence of one full step, re-recorded after
  // any deviation. Encoded as (n << 1) | isGrad.
  std::vector<std::int64_t> plan_;
  std::size_t planPos_ = 0;
  bool recording_ = true;
  bool deviated_ = false;
  bool stepOpen_ = false;

  Stats stats_;
};

/// RAII: installs `arena` as the calling thread's current arena; restores
/// the previous one (usually none) on destruction.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena);
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* previous_;
};

/// The calling thread's active arena, or nullptr (heap-backed tensors).
Arena* currentArena();

}  // namespace artsci::ml

/// \file coupling.hpp
/// Invertible neural network (INN) built from Glow-style affine coupling
/// blocks [Kingma & Dhariwal 2018; Ardizzone et al. 2018] with fixed random
/// channel permutations between blocks (paper: "four Glow coupling blocks
/// using MLPs with ->272->256->544 hidden layers as subnets").
///
/// For the inverse problem the INN maps the particle latent z (dim 544)
/// invertibly to [I' || N']: the predicted radiation spectrum I'
/// concatenated with a normal latent N'. Sampling the inverse direction
/// with the observed spectrum I and N ~ N(0,1) draws from the posterior of
/// latents explaining that spectrum — the ill-posed inversion of Fig 2(a).
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "ml/layers.hpp"

namespace artsci::ml {

/// One affine coupling block transforming both halves (FrEIA GLOW style):
///   [x1, x2] -> y1 = x1 .* exp(s1(x2,c)) + t1(x2,c)
///              y2 = x2 .* exp(s2(y1,c)) + t2(y1,c)
/// with soft-clamped log-scales s = clamp * tanh(raw / clamp) for stability.
/// Exactly invertible in closed form.
class GlowCouplingBlock : public Module {
 public:
  /// `dim` is the (even) block width; `condDim` 0 disables conditioning.
  /// `hidden` are the subnet hidden layer sizes (paper: {272, 256}).
  GlowCouplingBlock(long dim, long condDim, std::vector<long> hidden,
                    Rng& rng, Real clamp = Real(2));

  Tensor forward(const Tensor& x, const Tensor& cond) const;
  Tensor inverse(const Tensor& y, const Tensor& cond) const;

  std::vector<Tensor> parameters() const override;

  long dim() const { return dim_; }
  /// Introspection for graph-free executors (serve::InferenceEngine).
  long half() const { return half_; }
  Real clampValue() const { return clamp_; }
  const Mlp& subnet1() const { return *s1_.net; }
  const Mlp& subnet2() const { return *s2_.net; }

 private:
  struct Subnet {
    std::unique_ptr<Mlp> net;
    long outHalf;  ///< produces s||t of this many features each
  };
  Tensor runSubnet(const Subnet& s, const Tensor& in, const Tensor& cond,
                   Tensor& scale, Tensor& shift) const;

  long dim_, half_, condDim_;
  Real clamp_;
  Subnet s1_, s2_;
};

/// Fixed random permutation of features (orthogonal "1x1 convolution"
/// substitute used by FrEIA's PermuteRandom).
class FeaturePermutation {
 public:
  FeaturePermutation(long dim, Rng& rng);

  Tensor forward(const Tensor& x) const;
  Tensor inverse(const Tensor& y) const;

  /// Gather indices: forward output feature i reads input feature perm[i].
  const std::vector<long>& permutation() const { return perm_; }

 private:
  std::vector<long> perm_, inversePerm_;
};

/// Stack of coupling blocks with interleaved permutations.
class Inn : public Module {
 public:
  struct Config {
    long dim = 544;                   ///< width of the invertible map
    long condDim = 0;                 ///< optional conditioning input width
    int blocks = 4;                   ///< paper: four Glow blocks
    std::vector<long> hidden{272, 256};  ///< subnet hidden sizes
    Real clamp = Real(2);
    /// Seed for the fixed inter-block permutations. Kept in the config —
    /// not drawn from the weight-init RNG — so that (config, checkpoint)
    /// fully determines the network: a model restored from
    /// ml::loadParameters reproduces the original bit for bit regardless
    /// of the seed its weights were initialized with.
    std::uint64_t permSeed = 0x70657253ULL;
  };

  Inn(Config cfg, Rng& rng);

  /// z -> y (== [I' || N'] in the inverse-problem wiring).
  Tensor forward(const Tensor& x, const Tensor& cond = Tensor()) const;
  /// y -> z; exact inverse of forward.
  Tensor inverse(const Tensor& y, const Tensor& cond = Tensor()) const;

  std::vector<Tensor> parameters() const override;
  const Config& config() const { return cfg_; }
  /// Introspection for graph-free executors (serve::InferenceEngine).
  int blockCount() const { return static_cast<int>(blocks_.size()); }
  const GlowCouplingBlock& block(int i) const { return *blocks_.at(i); }
  const FeaturePermutation& permutation(int i) const { return perms_.at(i); }

 private:
  Config cfg_;
  std::vector<std::unique_ptr<GlowCouplingBlock>> blocks_;
  std::vector<FeaturePermutation> perms_;
};

}  // namespace artsci::ml

/// \file layers.hpp
/// Neural-network building blocks for the Artificial Scientist model
/// (paper Fig 7): per-point "1x1 convolution" stacks (PointNet-style
/// encoder), MLPs, and the voxel-shuffle transposed-convolution decoder
/// (kernel 2^3 = stride 2^3, so each input voxel expands into a disjoint
/// 2x2x2 block — exactly a per-voxel linear map plus a fixed permutation).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ml/ops.hpp"
#include "ml/tensor.hpp"

namespace artsci::ml {

// Activation lives in ml/ops.hpp next to the fused linear op.

/// Apply an activation as a separate graph op (the pre-fusion
/// formulation; the legacy baseline lane and non-layer call sites use it).
Tensor activate(const Tensor& x, Activation act);

/// Base class for anything owning trainable parameters.
class Module {
 public:
  virtual ~Module() = default;
  /// Handles to all trainable tensors (shared with the module).
  virtual std::vector<Tensor> parameters() const = 0;
  /// Total number of scalar parameters.
  long parameterCount() const;
};

/// Fully-connected layer y = x W + b with Xavier-uniform init.
/// Accepts inputs of any rank; the last dimension must equal `in`.
class Linear : public Module {
 public:
  Linear(long in, long out, Rng& rng, bool bias = true);

  /// y = act(x W + b), with the activation fused into the linear node
  /// (one elementwise epilogue instead of a separate graph op — same
  /// bits, see ml::linear). Under ExecOptions::legacyExec the caller is
  /// expected to apply activate() itself, as the pre-fusion code did.
  Tensor forward(const Tensor& x, Activation act = Activation::kNone) const;
  std::vector<Tensor> parameters() const override;

  long inFeatures() const { return in_; }
  long outFeatures() const { return out_; }
  Tensor& weight() { return weight_; }
  Tensor& biasTensor() { return bias_; }
  const Tensor& weight() const { return weight_; }
  const Tensor& biasTensor() const { return bias_; }

 private:
  long in_, out_;
  Tensor weight_;  ///< [in, out]
  Tensor bias_;    ///< [out] (undefined when bias == false)
};

/// Multi-layer perceptron with a shared hidden activation; the output layer
/// is linear unless `outputActivation` says otherwise.
class Mlp : public Module {
 public:
  Mlp(std::vector<long> dims, Rng& rng,
      Activation hidden = Activation::kLeakyRelu,
      Activation output = Activation::kNone);

  Tensor forward(const Tensor& x) const;
  std::vector<Tensor> parameters() const override;

  const std::vector<long>& dims() const { return dims_; }
  /// Introspection for graph-free executors (serve::InferenceEngine).
  const std::vector<Linear>& layers() const { return layers_; }
  Activation hiddenActivation() const { return hidden_; }
  Activation outputActivation() const { return output_; }

 private:
  std::vector<long> dims_;
  std::vector<Linear> layers_;
  Activation hidden_, output_;
};

/// PointNet-lite variational encoder (paper: channels 6->16->32->64->128->
/// 256->608, max-pool over particles, two MLP heads with one 544 hidden
/// layer for mu and log-variance of the 544-dim latent).
class PointNetEncoder : public Module {
 public:
  struct Config {
    std::vector<long> channels{6, 16, 32, 64, 128, 256, 608};
    long headHidden = 544;
    long latentDim = 544;
  };

  PointNetEncoder(Config cfg, Rng& rng);

  /// x: [B, N, channels.front()] -> {mu, logvar}: each [B, latentDim].
  /// The log-variance is soft-clamped to keep exp() finite early in
  /// training.
  struct Moments {
    Tensor mu;
    Tensor logvar;
  };
  Moments forward(const Tensor& x) const;

  /// Reparameterized sample z = mu + exp(logvar/2) * eps.
  Tensor sample(const Moments& m, Rng& rng) const;

  std::vector<Tensor> parameters() const override;
  const Config& config() const { return cfg_; }
  /// Introspection for graph-free executors (serve::InferenceEngine).
  const std::vector<Linear>& pointLayers() const { return pointLayers_; }
  const Mlp& muHead() const { return *muHead_; }
  const Mlp& logvarHead() const { return *logvarHead_; }

 private:
  Config cfg_;
  std::vector<Linear> pointLayers_;
  std::unique_ptr<Mlp> muHead_;
  std::unique_ptr<Mlp> logvarHead_;
};

/// Voxel-shuffle transposed-convolution decoder (paper: FC -> (4,4,4,16),
/// then 3D deconvs 16->8->6 with kernel 2^3, stride 2^3 -> 4096 points x 6).
class VoxelDecoder : public Module {
 public:
  struct Config {
    long latentDim = 544;
    long baseGrid = 4;                     ///< V: initial V^3 voxels
    std::vector<long> channels{16, 8, 6};  ///< per deconv stage
  };

  VoxelDecoder(Config cfg, Rng& rng);

  /// z: [B, latentDim] -> point cloud [B, P, channels.back()], where
  /// P = (baseGrid * 2^(stages))^3.
  Tensor forward(const Tensor& z) const;

  long pointCount() const { return pointCount_; }
  std::vector<Tensor> parameters() const override;
  const Config& config() const { return cfg_; }

 private:
  Config cfg_;
  std::unique_ptr<Linear> fc_;
  std::vector<Linear> deconvs_;               ///< per-voxel channel maps
  std::vector<std::vector<long>> shuffles_;   ///< voxel-shuffle permutations
  std::vector<long> gridSizes_;               ///< V per stage input
  long pointCount_ = 0;
};

/// Build the voxel-shuffle permutation taking the per-voxel matmul output
/// layout [V^3, 8*C] (child offset k major, channel minor) to the expanded
/// grid layout [(2V)^3, C]. Exposed for direct testing.
std::vector<long> makeVoxelShufflePermutation(long V, long channelsOut);

}  // namespace artsci::ml

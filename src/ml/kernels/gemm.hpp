/// \file gemm.hpp
/// Standalone register-blocked GEMM kernel library shared by the training
/// stack (ml/ops.cpp: matmul forward + both backward products, the fused
/// Linear op) and the serving engine (serve/engine.cpp: fused
/// linear+bias+activation). Deliberately dependency-free — no tensor,
/// autograd, or logging headers — so both layers link the exact same hot
/// loops and a unit test can drive them on raw buffers.
///
/// All matrices are dense row-major. Every kernel covers ragged M/N/K
/// (tail rows/columns take a scalar path that performs the *same*
/// per-element operation sequence as the blocked body, see below).
///
/// Dispatch: on GCC/x86-64/Linux (non-sanitized) each inner kernel is
/// compiled as GCC `target_clones("avx512f","avx2,fma","default")` — the
/// dynamic linker picks the widest ISA once at load via ifunc. Elsewhere a
/// single portable version is built.
///
/// Determinism invariant (mirrors the PR 3 tiled-deposition contract):
/// every output element's floating-point accumulation order is a function
/// of (kernel, shape) only. The optional OpenMP path partitions output
/// *rows* in fixed chunks with a static schedule and rows never share an
/// accumulator, so results are bit-identical across OMP thread counts,
/// schedules, and repeated runs — enforced by
/// tests/ml/test_gemm_kernels.cpp at 1/2/8 threads.
#pragma once

namespace artsci::ml::kernels {

/// Matches ml::Real (static_asserted where both headers meet, ml/ops.cpp).
using Real = double;

/// Epilogue activation fused into linear_forward. Enumerator order matches
/// ml::Activation so the mapping is a checked static_cast.
enum class Act { kNone, kRelu, kLeakyRelu, kTanh };

/// The fixed leaky-ReLU slope used across the stack (ml::activate).
inline constexpr Real kLeakySlope = 0.01;

/// C[M,N] = A[M,K] · B[K,N] (accumulate=false) or += (accumulate=true).
/// Per-element order: k ascending — identical to the naive triple loop.
void gemm_nn(const Real* a, const Real* b, Real* c, long M, long N, long K,
             bool accumulate, bool parallel);

/// C[M,N] (+)= A[M,K] · B[N,K]ᵀ — both operands row-contiguous along the
/// contraction axis (the grad-A product G·Bᵀ of matmul backward).
/// Per-element order: fixed 8-lane strided partial sums over k, reduced in
/// lane order (independent of ISA clone and of row blocking).
void gemm_nt(const Real* a, const Real* b, Real* c, long M, long N, long K,
             bool accumulate, bool parallel);

/// C[M,N] (+)= A[K,M]ᵀ · B[K,N] — A read down its columns (the grad-B
/// product Aᵀ·G of matmul backward). Per-element order: k ascending.
void gemm_tn(const Real* a, const Real* b, Real* c, long M, long N, long K,
             bool accumulate, bool parallel);

/// Fused serving/inference epilogue: C[m,n] = act(A[m,k] · W[k,n] + bias);
/// bias may be nullptr. Accumulation order matches gemm_nn (k ascending,
/// bias added last, activation applied after). With parallel=true the
/// row loop runs over the same fixed 32-row static OpenMP chunks as the
/// gemm_* kernels — rows never share an accumulator and the per-row op
/// sequence is partition-independent, so results stay bit-identical
/// across thread counts (and to the serial path).
void linear_forward(const Real* a, const Real* w, const Real* bias, Real* c,
                    long m, long k, long n, Act act, bool parallel = false);

/// out[j] (+)= sum_i g[i*n + j] — the bias gradient of a Linear layer.
/// i ascends per column, so the result is partition-independent.
void colsum(const Real* g, Real* out, long m, long n, bool accumulate);

}  // namespace artsci::ml::kernels

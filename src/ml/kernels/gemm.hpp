/// \file gemm.hpp
/// Standalone register-blocked GEMM kernel library shared by the training
/// stack (ml/ops.cpp: matmul forward + both backward products, the fused
/// Linear op) and the serving engine (serve/engine.cpp: fused
/// linear+bias+activation). Deliberately dependency-free — no tensor,
/// autograd, or logging headers — so both layers link the exact same hot
/// loops and a unit test can drive them on raw buffers.
///
/// All matrices are dense row-major. A-operands (and the C of gemm_nt)
/// additionally take a leading dimension, so row- and column-sliced tensor
/// views feed the kernels in place with zero copies. Every kernel covers
/// ragged M/N/K (tail rows/columns take a scalar path that performs the
/// *same* per-element operation sequence as the blocked body, see below).
///
/// K-panel blocking: the nn-family kernels split K into panels sized so
/// one B panel (~512 KiB) stays L2-resident across a row chunk. Panels
/// run sequentially per output element, so the per-element FMA sequence
/// is exactly the unpanelled k-ascending order — blocking never changes
/// bits (tests/ml/test_gemm_kernels.cpp pins this against the naive
/// triple loop).
///
/// Dispatch: on GCC/x86-64/Linux (non-sanitized) each inner kernel is
/// compiled as GCC `target_clones("avx512f","avx2,fma","default")` — the
/// dynamic linker picks the widest ISA once at load via ifunc. Elsewhere a
/// single portable version is built.
///
/// Determinism invariant (mirrors the PR 3 tiled-deposition contract):
/// every output element's floating-point accumulation order is a function
/// of (kernel, shape) only. The optional OpenMP path partitions output
/// *rows* in fixed chunks with a static schedule and rows never share an
/// accumulator, so results are bit-identical across OMP thread counts,
/// schedules, and repeated runs — enforced by
/// tests/ml/test_gemm_kernels.cpp at 1/2/8 threads.
#pragma once

namespace artsci::ml::kernels {

/// Matches ml::Real (static_asserted where both headers meet, ml/ops.cpp).
using Real = double;

/// Epilogue activation fused into linear_forward. Enumerator order matches
/// ml::Activation so the mapping is a checked static_cast.
enum class Act { kNone, kRelu, kLeakyRelu, kTanh };

/// The fixed leaky-ReLU slope used across the stack (ml::activate).
inline constexpr Real kLeakySlope = 0.01;

/// C[M,N] = A[M,K] · B[K,N] (accumulate=false) or += (accumulate=true).
/// Per-element order: k ascending — identical to the naive triple loop.
/// `lda` is A's row stride in elements (< 0 means dense, i.e. K).
void gemm_nn(const Real* a, const Real* b, Real* c, long M, long N, long K,
             bool accumulate, bool parallel, long lda = -1);

/// C[M,N] (+)= A[M,K] · B[N,K]ᵀ — both operands row-contiguous along the
/// contraction axis (the grad-A product G·Bᵀ of matmul backward).
/// Per-element order: fixed 8-lane strided partial sums over k, reduced in
/// lane order (independent of ISA clone and of row blocking).
/// `ldc` is C's row stride in elements (< 0 means dense, i.e. N) — the
/// grad of a column-sliced A view accumulates straight into the base
/// gradient buffer.
void gemm_nt(const Real* a, const Real* b, Real* c, long M, long N, long K,
             bool accumulate, bool parallel, long ldc = -1);

/// C[M,N] (+)= A[K,M]ᵀ · B[K,N] — A read down its columns (the grad-B
/// product Aᵀ·G of matmul backward). Per-element order: k ascending.
/// `strideA` is A's row stride in elements (< 0 means dense, i.e. M).
void gemm_tn(const Real* a, const Real* b, Real* c, long M, long N, long K,
             bool accumulate, bool parallel, long strideA = -1);

/// Fused serving/inference epilogue: C[m,n] = act(A[m,k] · W[k,n] + bias);
/// bias may be nullptr. Accumulation order matches gemm_nn (k ascending,
/// bias added last, activation applied after). With parallel=true the
/// row loop runs over the same fixed 32-row static OpenMP chunks as the
/// gemm_* kernels — rows never share an accumulator and the per-row op
/// sequence is partition-independent, so results stay bit-identical
/// across thread counts (and to the serial path).
void linear_forward(const Real* a, const Real* w, const Real* bias, Real* c,
                    long m, long k, long n, Act act, bool parallel = false,
                    long lda = -1);

/// out[j] (+)= sum_i g[i*n + j] — the bias gradient of a Linear layer.
/// i ascends per column, so the result is partition-independent.
void colsum(const Real* g, Real* out, long m, long n, bool accumulate);

// --- batched entry points ---------------------------------------------------
// A serving batch over the INN is many *small* GEMMs: per coupling block
// two subnet chains, per conv layer one GEMM per sample tile. Dispatching
// each through its own OpenMP region costs a fork/join barrier per call —
// 2×depth barriers per predict. These entries take the whole problem list
// and run ONE parallel region over a deterministic flattened
// (problem, row-chunk) work list, preserving the per-row op sequence of
// the unbatched kernels exactly (each work item is the same nn-panel body
// the unbatched path runs), so results are bit-identical to looping the
// single-problem entries.

/// One independent C = A·B (+)= problem of a gemm_batched_nn call.
struct GemmNnProblem {
  const Real* a = nullptr;
  const Real* b = nullptr;
  Real* c = nullptr;
  long M = 0, N = 0, K = 0;
  long lda = -1;  ///< A row stride (< 0 = dense K)
  bool accumulate = false;
};

/// Run `count` independent nn-GEMMs in one parallel region. Outputs must
/// not alias each other.
void gemm_batched_nn(const GemmNnProblem* problems, long count,
                     bool parallel);

/// One independent fused linear (+bias +activation) problem.
struct LinearProblem {
  const Real* a = nullptr;
  const Real* w = nullptr;
  const Real* bias = nullptr;  ///< may be null
  Real* c = nullptr;
  long m = 0, k = 0, n = 0;
  long lda = -1;  ///< A row stride (< 0 = dense k)
  Act act = Act::kNone;
};

/// Run `count` independent fused linears in one parallel region — the
/// per-tile convolution layers of the serving engine issue one call per
/// layer instead of one per (layer, tile).
void linear_forward_batched(const LinearProblem* problems, long count,
                            bool parallel);

/// One layer of a sequential dense chain (see linear_seq_forward).
struct DenseStep {
  const Real* w = nullptr;     ///< [in, out], dense row-major
  const Real* bias = nullptr;  ///< [out] or null
  long in = 0, out = 0;
  Act act = Act::kNone;
};

/// Run a whole dense chain (x → layer 0 → … → layer count-1) inside ONE
/// OpenMP parallel region: per layer a static worksharing loop over the
/// usual fixed row chunks, with the implicit barrier sequencing layers.
/// This replaces `count` fork/joins per subnet with one — the INN
/// coupling subnets and the mu head in serve/engine.cpp ride on it.
/// Intermediates ping-pong through scratchA/scratchB (each must hold
/// rows × max-layer-width elements); the last layer writes `output`.
/// Bit-identical to calling linear_forward per layer.
void linear_seq_forward(const DenseStep* steps, long count, const Real* input,
                        long rows, Real* output, Real* scratchA,
                        Real* scratchB, bool parallel);

}  // namespace artsci::ml::kernels

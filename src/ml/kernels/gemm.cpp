#include "ml/kernels/gemm.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace artsci::ml::kernels {
namespace {

/// GCC-on-Linux gets per-CPU clones of each hot kernel (ifunc dispatch);
/// other toolchains and sanitized builds use the single portable version.
/// Ifunc resolvers run at IRELATIVE-relocation time, before .preinit_array,
/// so a sanitizer-instrumented resolver (GCC instruments them) faults in
/// __tsan_func_entry before the runtime exists. Hence no clones under
/// ASan *or* TSan.
#if defined(__GNUC__) && !defined(__clang__) && defined(__x86_64__) && \
    defined(__linux__) && !defined(__SANITIZE_ADDRESS__) &&            \
    !defined(__SANITIZE_THREAD__)
#define ARTSCI_GEMM_CLONES \
  __attribute__((target_clones("avx512f", "avx2,fma", "default")))
#else
#define ARTSCI_GEMM_CLONES
#endif

/// Row-chunk size of the OpenMP partition. A multiple of the 4-row
/// register block so interior chunks never hit the tail path; the fixed
/// chunk (rather than nthreads-derived) makes the partition — not just
/// the result — thread-count-independent.
constexpr long kParChunk = 32;

/// Strided partial sums per dot product: lane u accumulates k = q*8 + u.
/// One AVX-512 register of doubles / two AVX2 registers; the tail below
/// the last full group lands in lanes 0.. in order, so the decomposition
/// depends on K alone.
constexpr long kDotLanes = 8;

inline void activateRow(Real* c, long n, Act act) {
  switch (act) {
    case Act::kNone:
      break;
    case Act::kRelu:
      for (long j = 0; j < n; ++j) c[j] = c[j] < 0 ? Real(0) : c[j];
      break;
    case Act::kLeakyRelu:
      for (long j = 0; j < n; ++j)
        if (c[j] < 0) c[j] *= kLeakySlope;
      break;
    case Act::kTanh:
      for (long j = 0; j < n; ++j) c[j] = std::tanh(c[j]);
      break;
  }
}

/// Four-row, two-k block of C = A·B over `rows` rows: the row accumulators
/// live in C; each j-sweep loads every C vector once, applies two FMAs
/// (k and k+1), and stores it — ~8 FMAs per 10 vector memory ops versus
/// 4 per 9 for the row-at-a-time loop, and the j-loops vectorize cleanly.
/// The k-unroll does not reassociate: each element still accumulates
/// strictly k-ascending from its initial value, in *every* path (4-row
/// block, row tail, odd-K step), so blocking never changes bits. A rows
/// are strided by `lda` (dense A passes lda == K).
ARTSCI_GEMM_CLONES
void nnBlock(const Real* __restrict a, const Real* __restrict b,
             Real* __restrict c, long rows, long N, long K, long lda,
             bool accumulate) {
  long i = 0;
  for (; i + 4 <= rows; i += 4) {
    const Real* a0 = a + i * lda;
    const Real* a1 = a0 + lda;
    const Real* a2 = a1 + lda;
    const Real* a3 = a2 + lda;
    Real* c0 = c + i * N;
    Real* c1 = c0 + N;
    Real* c2 = c1 + N;
    Real* c3 = c2 + N;
    if (!accumulate) {
      for (long j = 0; j < N; ++j) {
        c0[j] = Real(0);
        c1[j] = Real(0);
        c2[j] = Real(0);
        c3[j] = Real(0);
      }
    }
    long kk = 0;
    for (; kk + 2 <= K; kk += 2) {
      const Real* b0 = b + kk * N;
      const Real* b1 = b0 + N;
      const Real x00 = a0[kk], x01 = a0[kk + 1];
      const Real x10 = a1[kk], x11 = a1[kk + 1];
      const Real x20 = a2[kk], x21 = a2[kk + 1];
      const Real x30 = a3[kk], x31 = a3[kk + 1];
      for (long j = 0; j < N; ++j) {
        const Real w0 = b0[j], w1 = b1[j];
        c0[j] = (c0[j] + x00 * w0) + x01 * w1;
        c1[j] = (c1[j] + x10 * w0) + x11 * w1;
        c2[j] = (c2[j] + x20 * w0) + x21 * w1;
        c3[j] = (c3[j] + x30 * w0) + x31 * w1;
      }
    }
    if (kk < K) {
      const Real* brow = b + kk * N;
      const Real x0 = a0[kk], x1 = a1[kk], x2 = a2[kk], x3 = a3[kk];
      for (long j = 0; j < N; ++j) {
        const Real w = brow[j];
        c0[j] += x0 * w;
        c1[j] += x1 * w;
        c2[j] += x2 * w;
        c3[j] += x3 * w;
      }
    }
  }
  for (; i < rows; ++i) {
    const Real* arow = a + i * lda;
    Real* crow = c + i * N;
    if (!accumulate) std::fill(crow, crow + N, Real(0));
    for (long kk = 0; kk < K; ++kk) {
      const Real x = arow[kk];
      const Real* brow = b + kk * N;
      for (long j = 0; j < N; ++j) crow[j] += x * brow[j];
    }
  }
}

/// K-panel width for an nn product: sized so one B panel (~512 KiB of
/// doubles) stays L2-resident while a row chunk streams over it.
inline long kPanelFor(long N) {
  return std::max<long>(64, (1L << 16) / std::max<long>(N, 1));
}

/// nnBlock with K-panel cache blocking. Panels run sequentially per
/// output element (panel 0 initializes, later panels accumulate), so each
/// element performs the exact unpanelled k-ascending FMA sequence — the
/// split is invisible in the bits, only in the B-operand's cache
/// residency. The per-element accumulate chain in nnBlock is strictly
/// sequential in k (the 2-k unroll does not reassociate), so any panel
/// boundary, even or odd, preserves it.
void nnPanels(const Real* a, const Real* b, Real* c, long rows, long N,
              long K, long lda, bool accumulate) {
  const long P = kPanelFor(N);
  if (P >= K) {
    nnBlock(a, b, c, rows, N, K, lda, accumulate);
    return;
  }
  for (long k0 = 0; k0 < K; k0 += P) {
    const long kc = std::min(P, K - k0);
    nnBlock(a + k0, b + k0 * N, c, rows, N, kc, lda,
            accumulate || k0 > 0);
  }
}

/// One output element of A·Bᵀ: both rows are contiguous length-K, summed
/// into kDotLanes strided partials reduced in ascending lane order. Both
/// the 4-row block and the tail call this same routine, so the bit
/// pattern per element is independent of blocking and partitioning.
/// Deliberately not cloned: it inlines into each ntBlock clone and is
/// vectorized there under that clone's ISA.
inline Real dotLanes(const Real* __restrict x, const Real* __restrict y,
                     long K) {
  Real acc[kDotLanes] = {};
  long kk = 0;
  for (; kk + kDotLanes <= K; kk += kDotLanes)
    for (long u = 0; u < kDotLanes; ++u) acc[u] += x[kk + u] * y[kk + u];
  for (long u = 0; kk < K; ++kk, ++u) acc[u] += x[kk] * y[kk];
  Real s = Real(0);
  for (long u = 0; u < kDotLanes; ++u) s += acc[u];
  return s;
}

/// `rows` rows of C = A·Bᵀ. Four A rows share each streamed B row; every
/// (i,j) element is one dotLanes() call. C rows are strided by `ldc`
/// (dense C passes ldc == N).
ARTSCI_GEMM_CLONES
void ntBlock(const Real* __restrict a, const Real* __restrict b,
             Real* __restrict c, long rows, long N, long K, long ldc,
             bool accumulate) {
  long i = 0;
  for (; i + 4 <= rows; i += 4) {
    const Real* a0 = a + i * K;
    Real* c0 = c + i * ldc;
    for (long j = 0; j < N; ++j) {
      const Real* brow = b + j * K;
      const Real s0 = dotLanes(a0, brow, K);
      const Real s1 = dotLanes(a0 + K, brow, K);
      const Real s2 = dotLanes(a0 + 2 * K, brow, K);
      const Real s3 = dotLanes(a0 + 3 * K, brow, K);
      if (accumulate) {
        c0[j] += s0;
        c0[ldc + j] += s1;
        c0[2 * ldc + j] += s2;
        c0[3 * ldc + j] += s3;
      } else {
        c0[j] = s0;
        c0[ldc + j] = s1;
        c0[2 * ldc + j] = s2;
        c0[3 * ldc + j] = s3;
      }
    }
  }
  for (; i < rows; ++i) {
    const Real* arow = a + i * K;
    Real* crow = c + i * ldc;
    for (long j = 0; j < N; ++j) {
      const Real s = dotLanes(arow, b + j * K, K);
      crow[j] = accumulate ? crow[j] + s : s;
    }
  }
}

/// `rows` rows of C = Aᵀ·B starting at A column `a` (row stride
/// `strideA`). Same 4-row/2-k streaming block as nnBlock with strided A
/// loads; per-element order is k ascending in every path.
ARTSCI_GEMM_CLONES
void tnBlock(const Real* __restrict a, const Real* __restrict b,
             Real* __restrict c, long rows, long N, long K, long strideA,
             bool accumulate) {
  long i = 0;
  for (; i + 4 <= rows; i += 4) {
    const Real* acol = a + i;
    Real* c0 = c + i * N;
    Real* c1 = c0 + N;
    Real* c2 = c1 + N;
    Real* c3 = c2 + N;
    if (!accumulate) {
      for (long j = 0; j < N; ++j) {
        c0[j] = Real(0);
        c1[j] = Real(0);
        c2[j] = Real(0);
        c3[j] = Real(0);
      }
    }
    long kk = 0;
    for (; kk + 2 <= K; kk += 2) {
      const Real* ap0 = acol + kk * strideA;
      const Real* ap1 = ap0 + strideA;
      const Real x00 = ap0[0], x10 = ap0[1], x20 = ap0[2], x30 = ap0[3];
      const Real x01 = ap1[0], x11 = ap1[1], x21 = ap1[2], x31 = ap1[3];
      const Real* b0 = b + kk * N;
      const Real* b1 = b0 + N;
      for (long j = 0; j < N; ++j) {
        const Real w0 = b0[j], w1 = b1[j];
        c0[j] = (c0[j] + x00 * w0) + x01 * w1;
        c1[j] = (c1[j] + x10 * w0) + x11 * w1;
        c2[j] = (c2[j] + x20 * w0) + x21 * w1;
        c3[j] = (c3[j] + x30 * w0) + x31 * w1;
      }
    }
    if (kk < K) {
      const Real* ap = acol + kk * strideA;
      const Real x0 = ap[0], x1 = ap[1], x2 = ap[2], x3 = ap[3];
      const Real* brow = b + kk * N;
      for (long j = 0; j < N; ++j) {
        const Real w = brow[j];
        c0[j] += x0 * w;
        c1[j] += x1 * w;
        c2[j] += x2 * w;
        c3[j] += x3 * w;
      }
    }
  }
  for (; i < rows; ++i) {
    Real* crow = c + i * N;
    if (!accumulate) std::fill(crow, crow + N, Real(0));
    for (long kk = 0; kk < K; ++kk) {
      const Real x = a[kk * strideA + i];
      const Real* brow = b + kk * N;
      for (long j = 0; j < N; ++j) crow[j] += x * brow[j];
    }
  }
}

/// The serving epilogue: bias rows + activation over the GEMM result.
/// One extra O(m·n) pass over C (which just left the register tile, so it
/// is cache-hot) — the O(m·n·k) product itself is nnBlock, unduplicated.
ARTSCI_GEMM_CLONES
void biasActEpilogue(const Real* __restrict bias, Real* __restrict c, long m,
                     long n, Act act) {
  for (long i = 0; i < m; ++i) {
    Real* crow = c + i * n;
    if (bias != nullptr)
      for (long j = 0; j < n; ++j) crow[j] += bias[j];
    activateRow(crow, n, act);
  }
}

/// One (problem, row-chunk) item of a batched call's flattened work list.
struct BatchWorkItem {
  long problem;
  long row0;
};

/// Flatten ragged per-problem row ranges into one deterministic work list
/// (problem-major, row-chunks ascending) so a single static OpenMP loop
/// covers the whole batch. The list depends only on the problem sizes —
/// never on thread count — so the partition is reproducible.
template <typename ProblemT, typename RowsOf>
long flattenBatch(const ProblemT* problems, long count, RowsOf rowsOf,
                  BatchWorkItem* stackBuf, long stackCap,
                  std::vector<BatchWorkItem>& heapBuf,
                  BatchWorkItem** workOut) {
  long nw = 0;
  for (long p = 0; p < count; ++p)
    nw += (rowsOf(problems[p]) + kParChunk - 1) / kParChunk;
  BatchWorkItem* work = stackBuf;
  if (nw > stackCap) {
    heapBuf.resize(static_cast<std::size_t>(nw));
    work = heapBuf.data();
  }
  long w = 0;
  for (long p = 0; p < count; ++p)
    for (long i0 = 0; i0 < rowsOf(problems[p]); i0 += kParChunk)
      work[w++] = {p, i0};
  *workOut = work;
  return nw;
}

/// Work lists up to this size avoid a heap allocation (the serving engine
/// dispatches tens of tiles × a few layers per call).
constexpr long kBatchStackItems = 512;

inline void runNnProblemRows(const GemmNnProblem& p, long i0, long rows) {
  const long lda = p.lda < 0 ? p.K : p.lda;
  nnPanels(p.a + i0 * lda, p.b, p.c + i0 * p.N, rows, p.N, p.K, lda,
           p.accumulate);
}

inline void runLinearProblemRows(const LinearProblem& p, long i0, long rows) {
  const long lda = p.lda < 0 ? p.k : p.lda;
  nnPanels(p.a + i0 * lda, p.w, p.c + i0 * p.n, rows, p.n, p.k, lda,
           /*accumulate=*/false);
  if (p.bias != nullptr || p.act != Act::kNone)
    biasActEpilogue(p.bias, p.c + i0 * p.n, rows, p.n, p.act);
}

}  // namespace

void gemm_nn(const Real* a, const Real* b, Real* c, long M, long N, long K,
             bool accumulate, bool parallel, long lda) {
  if (lda < 0) lda = K;
  if (!parallel || M <= kParChunk) {
    nnPanels(a, b, c, M, N, K, lda, accumulate);
    return;
  }
#pragma omp parallel for schedule(static)
  for (long i0 = 0; i0 < M; i0 += kParChunk)
    nnPanels(a + i0 * lda, b, c + i0 * N, std::min(kParChunk, M - i0), N, K,
             lda, accumulate);
}

void gemm_nt(const Real* a, const Real* b, Real* c, long M, long N, long K,
             bool accumulate, bool parallel, long ldc) {
  if (ldc < 0) ldc = N;
  if (!parallel || M <= kParChunk) {
    ntBlock(a, b, c, M, N, K, ldc, accumulate);
    return;
  }
#pragma omp parallel for schedule(static)
  for (long i0 = 0; i0 < M; i0 += kParChunk)
    ntBlock(a + i0 * K, b, c + i0 * ldc, std::min(kParChunk, M - i0), N, K,
            ldc, accumulate);
}

void gemm_tn(const Real* a, const Real* b, Real* c, long M, long N, long K,
             bool accumulate, bool parallel, long strideA) {
  if (strideA < 0) strideA = M;
  if (!parallel || M <= kParChunk) {
    tnBlock(a, b, c, M, N, K, strideA, accumulate);
    return;
  }
#pragma omp parallel for schedule(static)
  for (long i0 = 0; i0 < M; i0 += kParChunk)
    tnBlock(a + i0, b, c + i0 * N, std::min(kParChunk, M - i0), N, K,
            strideA, accumulate);
}

void linear_forward(const Real* a, const Real* w, const Real* bias, Real* c,
                    long m, long k, long n, Act act, bool parallel,
                    long lda) {
  if (lda < 0) lda = k;
  const bool epilogue = bias != nullptr || act != Act::kNone;
  if (!parallel || m <= kParChunk) {
    nnPanels(a, w, c, m, n, k, lda, /*accumulate=*/false);
    if (epilogue) biasActEpilogue(bias, c, m, n, act);
    return;
  }
  // Same fixed-chunk partition as gemm_nn; the epilogue rides in the
  // chunk while C is still cache-hot. Per-row results are independent of
  // the row blocking, so this is bit-identical to the serial path.
#pragma omp parallel for schedule(static)
  for (long i0 = 0; i0 < m; i0 += kParChunk) {
    const long rows = std::min(kParChunk, m - i0);
    nnPanels(a + i0 * lda, w, c + i0 * n, rows, n, k, lda,
             /*accumulate=*/false);
    if (epilogue) biasActEpilogue(bias, c + i0 * n, rows, n, act);
  }
}

void colsum(const Real* g, Real* out, long m, long n, bool accumulate) {
  if (!accumulate) std::fill(out, out + n, Real(0));
  for (long i = 0; i < m; ++i) {
    const Real* grow = g + i * n;
    for (long j = 0; j < n; ++j) out[j] += grow[j];
  }
}

void gemm_batched_nn(const GemmNnProblem* problems, long count,
                     bool parallel) {
  if (count <= 0) return;
  if (!parallel) {
    for (long p = 0; p < count; ++p)
      runNnProblemRows(problems[p], 0, problems[p].M);
    return;
  }
  BatchWorkItem stackBuf[kBatchStackItems];
  std::vector<BatchWorkItem> heapBuf;
  BatchWorkItem* work = nullptr;
  const long nw =
      flattenBatch(problems, count,
                   [](const GemmNnProblem& p) { return p.M; }, stackBuf,
                   kBatchStackItems, heapBuf, &work);
#pragma omp parallel for schedule(static)
  for (long w = 0; w < nw; ++w) {
    const GemmNnProblem& p = problems[work[w].problem];
    runNnProblemRows(p, work[w].row0,
                     std::min(kParChunk, p.M - work[w].row0));
  }
}

void linear_forward_batched(const LinearProblem* problems, long count,
                            bool parallel) {
  if (count <= 0) return;
  if (!parallel) {
    for (long p = 0; p < count; ++p)
      runLinearProblemRows(problems[p], 0, problems[p].m);
    return;
  }
  BatchWorkItem stackBuf[kBatchStackItems];
  std::vector<BatchWorkItem> heapBuf;
  BatchWorkItem* work = nullptr;
  const long nw =
      flattenBatch(problems, count,
                   [](const LinearProblem& p) { return p.m; }, stackBuf,
                   kBatchStackItems, heapBuf, &work);
#pragma omp parallel for schedule(static)
  for (long w = 0; w < nw; ++w) {
    const LinearProblem& p = problems[work[w].problem];
    runLinearProblemRows(p, work[w].row0,
                         std::min(kParChunk, p.m - work[w].row0));
  }
}

void linear_seq_forward(const DenseStep* steps, long count, const Real* input,
                        long rows, Real* output, Real* scratchA,
                        Real* scratchB, bool parallel) {
  if (count <= 0 || rows <= 0) return;
  if (!parallel) {
    const Real* cur = input;
    for (long l = 0; l < count; ++l) {
      Real* dst = (l == count - 1) ? output
                                   : (l % 2 == 0 ? scratchA : scratchB);
      nnPanels(cur, steps[l].w, dst, rows, steps[l].out, steps[l].in,
               steps[l].in, /*accumulate=*/false);
      if (steps[l].bias != nullptr || steps[l].act != Act::kNone)
        biasActEpilogue(steps[l].bias, dst, rows, steps[l].out, steps[l].act);
      cur = dst;
    }
    return;
  }
  // One parallel region for the whole chain: per layer a static
  // worksharing loop over the fixed row chunks; its implicit barrier
  // sequences layer l+1 after layer l. Per-row op order matches the
  // per-layer linear_forward dispatch exactly.
#pragma omp parallel
  {
    const Real* cur = input;
    for (long l = 0; l < count; ++l) {
      const long k = steps[l].in, n = steps[l].out;
      Real* dst = (l == count - 1) ? output
                                   : (l % 2 == 0 ? scratchA : scratchB);
      const bool epilogue =
          steps[l].bias != nullptr || steps[l].act != Act::kNone;
#pragma omp for schedule(static)
      for (long i0 = 0; i0 < rows; i0 += kParChunk) {
        const long r = std::min(kParChunk, rows - i0);
        nnPanels(cur + i0 * k, steps[l].w, dst + i0 * n, r, n, k, k,
                 /*accumulate=*/false);
        if (epilogue)
          biasActEpilogue(steps[l].bias, dst + i0 * n, r, n, steps[l].act);
      }
      cur = dst;
    }
  }
}

}  // namespace artsci::ml::kernels

#include "ml/tensor.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <unordered_set>

namespace artsci::ml {

long numelOf(const Shape& shape) {
  long n = 1;
  for (long d : shape) {
    ARTSCI_EXPECTS_MSG(d > 0, "non-positive dimension in shape "
                                  << shapeToString(shape));
    n *= d;
  }
  return n;
}

std::string shapeToString(const Shape& shape) {
  std::ostringstream os;
  os << shape;
  return os.str();
}

ExecOptions& execOptions() {
  static ExecOptions opts;
  return opts;
}

namespace {
/// Shared tail of the leaf constructors: stride/numel bookkeeping for a
/// freshly built contiguous heap owner.
void finishOwned(TensorImpl& im, Shape shape, long n) {
  im.strides = rowMajorStrides(shape);
  im.shape = std::move(shape);
  im.numel_ = n;
  im.contiguous = true;
}
}  // namespace

Tensor Tensor::zeros(Shape shape, bool requiresGrad) {
  return full(std::move(shape), Real(0), requiresGrad);
}

Tensor Tensor::full(Shape shape, Real value, bool requiresGrad) {
  Tensor t;
  t.impl_ = std::make_shared<TensorImpl>();
  const long n = numelOf(shape);
  t.impl_->data.assign(static_cast<std::size_t>(n), value);
  finishOwned(*t.impl_, std::move(shape), n);
  t.impl_->requiresGrad = requiresGrad;
  return t;
}

Tensor Tensor::fromVector(Shape shape, std::vector<Real> values,
                          bool requiresGrad) {
  ARTSCI_EXPECTS_MSG(
      numelOf(shape) == static_cast<long>(values.size()),
      "fromVector: shape " << shapeToString(shape) << " needs "
                           << numelOf(shape) << " values, got "
                           << values.size());
  Tensor t;
  t.impl_ = std::make_shared<TensorImpl>();
  const long n = static_cast<long>(values.size());
  t.impl_->data = std::move(values);
  finishOwned(*t.impl_, std::move(shape), n);
  t.impl_->requiresGrad = requiresGrad;
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, Real stddev, bool requiresGrad) {
  Tensor t = zeros(std::move(shape), requiresGrad);
  for (Real& v : t.data()) v = static_cast<Real>(rng.normal()) * stddev;
  return t;
}

Tensor Tensor::scalar(Real value, bool requiresGrad) {
  return full({1}, value, requiresGrad);
}

long Tensor::dim(int i) const {
  const auto& s = shape();
  if (i < 0) i += static_cast<int>(s.size());
  ARTSCI_EXPECTS(i >= 0 && i < static_cast<int>(s.size()));
  return s[static_cast<std::size_t>(i)];
}

Real Tensor::item() const {
  ARTSCI_EXPECTS_MSG(numel() == 1, "item() on tensor of shape "
                                       << shapeToString(shape()));
  // Logical flat index 0 maps to storage offset 0 under any strides.
  return impl()->dataPtr()[0];
}

Real Tensor::at(long flatIndex) const {
  ARTSCI_EXPECTS(flatIndex >= 0 && flatIndex < numel());
  const TensorImpl* im = impl();
  const long idx = im->contiguous
                       ? flatIndex
                       : logicalToStorage(im->shape, im->strides, flatIndex);
  return im->dataPtr()[idx];
}

void Tensor::setAt(long flatIndex, Real value) {
  ARTSCI_EXPECTS(flatIndex >= 0 && flatIndex < numel());
  TensorImpl* im = impl();
  const long idx = im->contiguous
                       ? flatIndex
                       : logicalToStorage(im->shape, im->strides, flatIndex);
  im->dataPtr()[idx] = value;
}

std::vector<Real> Tensor::toVector() const {
  const TensorImpl* im = impl();
  std::vector<Real> out(static_cast<std::size_t>(im->numel_));
  const Real* src = im->dataPtr();
  if (im->contiguous) {
    std::copy(src, src + im->numel_, out.begin());
  } else {
    for (long i = 0; i < im->numel_; ++i)
      out[static_cast<std::size_t>(i)] =
          src[logicalToStorage(im->shape, im->strides, i)];
  }
  return out;
}

void Tensor::zeroGrad() {
  TensorImpl* im = impl();
  im->ensureGrad();
  Real* g = im->gradPtr();
  if (im->contiguous) {
    std::fill(g, g + im->numel_, Real(0));
  } else {
    for (long i = 0; i < im->numel_; ++i)
      g[logicalToStorage(im->shape, im->strides, i)] = Real(0);
  }
}

Tensor Tensor::detach() const {
  Tensor t;
  t.impl_ = std::make_shared<TensorImpl>();
  t.impl_->data = toVector();
  finishOwned(*t.impl_, shape(), numel());
  return t;
}

namespace {
/// Monotone traversal-epoch source for the visitMark-based topo sort.
/// Atomic only so independent graphs may run backward() concurrently
/// (e.g. DDP ranks); nodes of one graph are never shared across threads.
std::atomic<std::uint64_t> gVisitEpoch{0};
}  // namespace

void Tensor::backward() {
  ARTSCI_EXPECTS_MSG(numel() == 1, "backward() requires a scalar loss");
  // Iterative post-order DFS to get a topological order. Visited nodes
  // are marked with a per-traversal epoch stamped on the node itself —
  // profiling showed the former unordered_set membership test dominating
  // the whole step (~40% in the pre-refactor binary). The legacy lane
  // keeps the hash set so the acceptance bench's baseline pays the same
  // bookkeeping the pre-refactor executor did. Both produce the same DFS
  // visit order, hence the same gradient accumulation order and bits.
  std::vector<TensorImpl*> topo;
  struct Frame {
    TensorImpl* node;
    std::size_t nextParent;
  };
  std::vector<Frame> stack;
  stack.push_back({impl(), 0});
  if (execOptions().legacyExec) {
    std::unordered_set<TensorImpl*> visited;
    visited.insert(impl());
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.nextParent < f.node->parents.size()) {
        TensorImpl* p = f.node->parents[f.nextParent++].get();
        if (visited.insert(p).second) stack.push_back({p, 0});
      } else {
        topo.push_back(f.node);
        stack.pop_back();
      }
    }
  } else {
    const std::uint64_t epoch =
        gVisitEpoch.fetch_add(1, std::memory_order_relaxed) + 1;
    impl()->visitMark = epoch;
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.nextParent < f.node->parents.size()) {
        TensorImpl* p = f.node->parents[f.nextParent++].get();
        if (p->visitMark != epoch) {
          p->visitMark = epoch;
          stack.push_back({p, 0});
        }
      } else {
        topo.push_back(f.node);
        stack.pop_back();
      }
    }
  }
  // Seed and propagate in reverse topological order. View nodes have no
  // backwardFn — their consumers already accumulated into the aliased
  // base gradient, which runs its own backwardFn later in the order.
  impl()->ensureGrad();
  impl()->gradPtr()[0] = Real(1);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backwardFn && node->requiresGrad) {
      node->ensureGrad();
      node->backwardFn(*node);
    }
  }
}

Tensor makeResult(Shape shape, std::vector<Tensor> parents,
                  const char* opName) {
  Tensor t;
  t.impl_ = std::make_shared<TensorImpl>();
  TensorImpl* im = t.impl_.get();
  const long n = numelOf(shape);
  if (Arena* a = currentArena()) {
    // Uninitialized step storage: every op in ml/ops.cpp fully overwrites
    // its result before anything reads it, so the heap path's zero-fill
    // is pure memory traffic.
    im->arena = a;
    im->arenaData = a->allocData(n);
  } else {
    im->data.assign(static_cast<std::size_t>(n), Real(0));
  }
  finishOwned(*im, std::move(shape), n);
  bool needsGrad = false;
  im->parents.reserve(parents.size());
  for (auto& p : parents) {
    needsGrad = needsGrad || p.requiresGrad();
    im->parents.push_back(p.impl_);
  }
  im->requiresGrad = needsGrad;
  im->opName = opName;
  return t;
}

Tensor makeView(const Tensor& src, Shape shape, Strides strides, long offset,
                const char* opName) {
  Tensor t;
  t.impl_ = std::make_shared<TensorImpl>();
  TensorImpl* im = t.impl_.get();
  TensorImpl* s = src.impl();
  im->numel_ = numelOf(shape);
  im->contiguous = (strides == rowMajorStrides(shape));
  im->shape = std::move(shape);
  im->strides = std::move(strides);
  im->offset = s->offset + offset;
  // Collapse view chains: always alias the ultimate storage owner, so
  // dataPtr() is one hop regardless of how the view was built.
  im->viewBase = s->viewBase ? s->viewBase : src.impl_;
  im->parents.push_back(src.impl_);
  im->requiresGrad = s->requiresGrad;
  im->opName = opName;
  return t;
}

}  // namespace artsci::ml

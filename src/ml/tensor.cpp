#include "ml/tensor.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace artsci::ml {

long numelOf(const Shape& shape) {
  long n = 1;
  for (long d : shape) {
    ARTSCI_EXPECTS_MSG(d > 0, "non-positive dimension in shape "
                                  << shapeToString(shape));
    n *= d;
  }
  return n;
}

std::string shapeToString(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor Tensor::zeros(Shape shape, bool requiresGrad) {
  return full(std::move(shape), Real(0), requiresGrad);
}

Tensor Tensor::full(Shape shape, Real value, bool requiresGrad) {
  Tensor t;
  t.impl_ = std::make_shared<TensorImpl>();
  t.impl_->data.assign(static_cast<std::size_t>(numelOf(shape)), value);
  t.impl_->shape = std::move(shape);
  t.impl_->requiresGrad = requiresGrad;
  return t;
}

Tensor Tensor::fromVector(Shape shape, std::vector<Real> values,
                          bool requiresGrad) {
  ARTSCI_EXPECTS_MSG(
      numelOf(shape) == static_cast<long>(values.size()),
      "fromVector: shape " << shapeToString(shape) << " needs "
                           << numelOf(shape) << " values, got "
                           << values.size());
  Tensor t;
  t.impl_ = std::make_shared<TensorImpl>();
  t.impl_->shape = std::move(shape);
  t.impl_->data = std::move(values);
  t.impl_->requiresGrad = requiresGrad;
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, Real stddev, bool requiresGrad) {
  Tensor t = zeros(std::move(shape), requiresGrad);
  for (Real& v : t.data()) v = static_cast<Real>(rng.normal()) * stddev;
  return t;
}

Tensor Tensor::scalar(Real value, bool requiresGrad) {
  return full({1}, value, requiresGrad);
}

long Tensor::dim(int i) const {
  const auto& s = shape();
  if (i < 0) i += static_cast<int>(s.size());
  ARTSCI_EXPECTS(i >= 0 && i < static_cast<int>(s.size()));
  return s[static_cast<std::size_t>(i)];
}

Real Tensor::item() const {
  ARTSCI_EXPECTS_MSG(numel() == 1, "item() on tensor of shape "
                                       << shapeToString(shape()));
  return data()[0];
}

Real Tensor::at(long flatIndex) const {
  ARTSCI_EXPECTS(flatIndex >= 0 && flatIndex < numel());
  return data()[static_cast<std::size_t>(flatIndex)];
}

void Tensor::setAt(long flatIndex, Real value) {
  ARTSCI_EXPECTS(flatIndex >= 0 && flatIndex < numel());
  data()[static_cast<std::size_t>(flatIndex)] = value;
}

void Tensor::zeroGrad() {
  impl()->grad.assign(impl()->data.size(), Real(0));
}

Tensor Tensor::detach() const {
  Tensor t;
  t.impl_ = std::make_shared<TensorImpl>();
  t.impl_->shape = shape();
  t.impl_->data = data();
  t.impl_->requiresGrad = false;
  return t;
}

void Tensor::backward() {
  ARTSCI_EXPECTS_MSG(numel() == 1, "backward() requires a scalar loss");
  // Iterative post-order DFS to get a topological order.
  std::vector<TensorImpl*> topo;
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    TensorImpl* node;
    std::size_t nextParent;
  };
  std::vector<Frame> stack;
  stack.push_back({impl(), 0});
  visited.insert(impl());
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.nextParent < f.node->parents.size()) {
      TensorImpl* p = f.node->parents[f.nextParent++].get();
      if (visited.insert(p).second) stack.push_back({p, 0});
    } else {
      topo.push_back(f.node);
      stack.pop_back();
    }
  }
  // Seed and propagate in reverse topological order.
  impl()->ensureGrad();
  impl()->grad[0] = Real(1);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backwardFn && node->requiresGrad) {
      node->ensureGrad();
      node->backwardFn(*node);
    }
  }
}

Tensor makeResult(Shape shape, std::vector<Tensor> parents,
                  const char* opName) {
  Tensor t = Tensor::zeros(std::move(shape));
  bool needsGrad = false;
  t.impl_->parents.reserve(parents.size());
  for (auto& p : parents) {
    needsGrad = needsGrad || p.requiresGrad();
    t.impl_->parents.push_back(p.impl_);
  }
  t.impl_->requiresGrad = needsGrad;
  t.impl_->opName = opName;
  return t;
}

}  // namespace artsci::ml

#include "ml/ddp.hpp"

#include "common/timer.hpp"
#include "obs/trace.hpp"

namespace artsci::ml {

Communicator::Communicator(std::size_t ranks)
    : ranks_(ranks), barrier_(ranks), commSeconds_(ranks, 0.0) {
  ARTSCI_EXPECTS(ranks > 0);
  gatherSlots_.resize(ranks, nullptr);
  reduceSlots_.resize(ranks, nullptr);
  gradBuckets_.resize(ranks);
}

std::vector<Real>& Communicator::gradBucket(std::size_t rank) {
  ARTSCI_EXPECTS(rank < ranks_);
  return gradBuckets_[rank];
}

void Communicator::allReduceMean(std::size_t rank,
                                 std::vector<Real>& buffer) {
  ARTSCI_EXPECTS(rank < ranks_);
  Timer timer;
  if (ranks_ == 1) {
    commSeconds_[rank] += timer.seconds();
    return;
  }
  // Phase 1: rank 0 records the expected length and sizes the scratch.
  if (rank == 0) {
    reduceLength_ = buffer.size();
    reduceScratch_.resize(buffer.size());
  }
  barrier_.arriveAndWait();
  ARTSCI_CHECK_MSG(buffer.size() == reduceLength_,
                   "allReduceMean length mismatch on rank " << rank);
  // Phase 2: everyone publishes a pointer to its contribution (zero-copy,
  // like allGather).
  reduceSlots_[rank] = &buffer;
  barrier_.arriveAndWait();
  // Phase 3: each rank reduces its own contiguous index chunk, summing the
  // slots in rank order — a fixed summation order, so the result is
  // bitwise run-invariant (float addition does not commute under
  // reordering), while the O(ranks * N) element reads are split across
  // ranks instead of replicated on each.
  const std::size_t n = buffer.size();
  const std::size_t chunk = (n + ranks_ - 1) / ranks_;
  const std::size_t lo = std::min(rank * chunk, n);
  const std::size_t hi = std::min(lo + chunk, n);
  const Real scale = Real(1) / static_cast<Real>(ranks_);
  for (std::size_t i = lo; i < hi; ++i) {
    Real sum = Real(0);
    for (std::size_t r = 0; r < ranks_; ++r) sum += (*reduceSlots_[r])[i];
    reduceScratch_[i] = sum * scale;
  }
  barrier_.arriveAndWait();
  // Phase 4: slots are no longer read; copy the reduced result out.
  reduceSlots_[rank] = nullptr;
  std::copy(reduceScratch_.begin(),
            reduceScratch_.begin() + static_cast<long>(n), buffer.begin());
  // Final barrier: nobody may resize the scratch (next call's phase 1)
  // while a slower rank is still copying out of it.
  barrier_.arriveAndWait();
  commSeconds_[rank] += timer.seconds();
}

std::vector<Real> Communicator::allGather(std::size_t rank,
                                          const std::vector<Real>& local) {
  TRACE_SCOPE("train", "allgather");
  ARTSCI_EXPECTS(rank < ranks_);
  Timer timer;
  if (ranks_ == 1) {
    commSeconds_[rank] += timer.seconds();
    return local;
  }
  gatherSlots_[rank] = &local;
  barrier_.arriveAndWait();
  std::vector<Real> out;
  std::size_t total = 0;
  for (const auto* slot : gatherSlots_) total += slot->size();
  out.reserve(total);
  for (const auto* slot : gatherSlots_)
    out.insert(out.end(), slot->begin(), slot->end());
  barrier_.arriveAndWait();
  gatherSlots_[rank] = nullptr;
  barrier_.arriveAndWait();
  commSeconds_[rank] += timer.seconds();
  return out;
}

double Communicator::communicationSeconds(std::size_t rank) const {
  ARTSCI_EXPECTS(rank < ranks_);
  return commSeconds_[rank];
}

void Communicator::resetTimers() {
  for (auto& s : commSeconds_) s = 0.0;
}

void allReduceGradients(Communicator& comm, std::size_t rank,
                        const std::vector<Tensor>& params) {
  TRACE_SCOPE("train", "allreduce");
  // Flatten all gradients into one bucket (DDP-style) to amortize the
  // collective's synchronization cost. The bucket lives on the
  // Communicator (one per rank): the fixed parameter list means resize()
  // is a no-op after the first step, so the steady-state training loop
  // crosses the collective without touching the heap.
  std::vector<Real>& bucket = comm.gradBucket(rank);
  std::size_t total = 0;
  for (const auto& p : params) total += static_cast<std::size_t>(p.numel());
  bucket.resize(total);
  std::size_t offset = 0;
  for (const auto& p : params) {
    auto* impl = p.impl();
    impl->ensureGrad();
    const Real* g = impl->gradPtr();
    const long n = p.numel();
    std::copy(g, g + n, bucket.begin() + static_cast<long>(offset));
    offset += static_cast<std::size_t>(n);
  }
  comm.allReduceMean(rank, bucket);
  offset = 0;
  for (const auto& p : params) {
    Real* g = p.impl()->gradPtr();
    const long n = p.numel();
    std::copy(bucket.begin() + static_cast<long>(offset),
              bucket.begin() + static_cast<long>(offset + n), g);
    offset += static_cast<std::size_t>(n);
  }
}

void broadcastParameters(Communicator& comm, std::size_t rank,
                         const std::vector<Tensor>& params) {
  // Implemented as an all-reduce of rank-0's values: ranks != 0 contribute
  // zeros, then everyone multiplies by the rank count.
  std::vector<Real> bucket;
  for (const auto& p : params) {
    const auto& d = p.data();
    if (rank == 0) {
      bucket.insert(bucket.end(), d.begin(), d.end());
    } else {
      bucket.insert(bucket.end(), d.size(), Real(0));
    }
  }
  comm.allReduceMean(rank, bucket);
  const Real scale = static_cast<Real>(comm.ranks());
  std::size_t offset = 0;
  for (const auto& p : params) {
    auto& d = const_cast<std::vector<Real>&>(p.data());
    for (std::size_t i = 0; i < d.size(); ++i)
      d[i] = bucket[offset + i] * scale;
    offset += d.size();
  }
}

}  // namespace artsci::ml

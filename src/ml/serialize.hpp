/// \file serialize.hpp
/// Binary checkpointing of parameter lists. The paper's workflow keeps all
/// *data* in memory, but model checkpoints are the one artifact written to
/// disk on demand ("File I/O can certainly be initiated when desired").
#pragma once

#include <string>
#include <vector>

#include "ml/tensor.hpp"

namespace artsci::ml {

/// Write tensors (shapes + data) to `path`. Overwrites existing files.
void saveParameters(const std::string& path,
                    const std::vector<Tensor>& params);

/// Load tensors saved by saveParameters into `params` (shapes must match).
void loadParameters(const std::string& path, std::vector<Tensor>& params);

}  // namespace artsci::ml

/// \file serialize.hpp
/// Binary checkpointing of parameter lists. The paper's workflow keeps all
/// *data* in memory, but model checkpoints are the one artifact written to
/// disk on demand ("File I/O can certainly be initiated when desired").
///
/// On-disk format (version 2, magic "ARTSCIP2"):
///   u64 magic | u64 version | u64 tensorCount | u64 totalElements
///   then per tensor: u64 ndim | u64 dims[ndim] | f64 data[numel]
/// Files written by the original unversioned format (magic "ARTSCIP1",
/// no version/totalElements words) are still readable, with a logged
/// warning: they predate config-derived INN permutations, so a legacy
/// checkpoint of a *trained* INN may not reproduce the original network's
/// predictions (the permutations it trained under were drawn from the
/// weight-init RNG and are not recorded in the file).
#pragma once

#include <string>
#include <vector>

#include "ml/tensor.hpp"

namespace artsci::ml {

/// Write tensors (shapes + data) to `path`. Overwrites existing files.
/// Always writes the current (version 2) format.
void saveParameters(const std::string& path,
                    const std::vector<Tensor>& params);

/// Load tensors saved by saveParameters into `params`. The checkpoint must
/// hold exactly params.size() tensors whose shapes match element-wise;
/// truncated, corrupt, or mismatched files fail with a ContractError that
/// names the problem instead of reading garbage.
void loadParameters(const std::string& path, std::vector<Tensor>& params);

/// Copy parameter values src -> dst (shape-checked, element-wise). The
/// in-memory sibling of save+load: used to clone trained weights into an
/// immutable serving snapshot without touching the filesystem.
void copyParameters(const std::vector<Tensor>& src, std::vector<Tensor>& dst);

}  // namespace artsci::ml

#include "ml/layers.hpp"

#include <cmath>

namespace artsci::ml {

Tensor activate(const Tensor& x, Activation act) {
  switch (act) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return relu(x);
    case Activation::kLeakyRelu:
      return leakyRelu(x, Real(0.01));
    case Activation::kTanh:
      return tanhT(x);
  }
  ARTSCI_CHECK(false);
  return x;
}

long Module::parameterCount() const {
  long n = 0;
  for (const auto& p : parameters()) n += p.numel();
  return n;
}

Linear::Linear(long in, long out, Rng& rng, bool bias) : in_(in), out_(out) {
  ARTSCI_EXPECTS(in > 0 && out > 0);
  // Xavier-uniform initialization.
  const Real bound = std::sqrt(Real(6) / static_cast<Real>(in + out));
  weight_ = Tensor::zeros({in, out}, /*requiresGrad=*/true);
  for (Real& w : weight_.data())
    w = static_cast<Real>(rng.uniform(-bound, bound));
  if (bias) bias_ = Tensor::zeros({out}, /*requiresGrad=*/true);
}

Tensor Linear::forward(const Tensor& x, Activation act) const {
  ARTSCI_EXPECTS_MSG(x.dim(-1) == in_, "Linear(" << in_ << "->" << out_
                                                 << ") got input "
                                                 << shapeToString(x.shape()));
  Tensor h = x;
  Shape original = x.shape();
  const bool needReshape = x.ndim() != 2;
  if (needReshape) h = reshapeFast(h, {x.numel() / in_, in_});
  // Fused matmul+bias+activation node on the shared blocked kernels
  // (same bits as matmul-then-add-then-activate: k-ascending
  // accumulation, bias last, activation after).
  Tensor y = linear(h, weight_, bias_, act);
  if (needReshape) {
    Shape outShape = original;
    outShape.back() = out_;
    y = reshapeFast(y, outShape);
  }
  return y;
}

std::vector<Tensor> Linear::parameters() const {
  std::vector<Tensor> ps{weight_};
  if (bias_.defined()) ps.push_back(bias_);
  return ps;
}

Mlp::Mlp(std::vector<long> dims, Rng& rng, Activation hidden,
         Activation output)
    : dims_(std::move(dims)), hidden_(hidden), output_(output) {
  ARTSCI_EXPECTS(dims_.size() >= 2);
  layers_.reserve(dims_.size() - 1);
  for (std::size_t i = 0; i + 1 < dims_.size(); ++i)
    layers_.emplace_back(dims_[i], dims_[i + 1], rng);
}

Tensor Mlp::forward(const Tensor& x) const {
  Tensor h = x;
  const bool legacy = execOptions().legacyExec;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const bool last = (i + 1 == layers_.size());
    const Activation act = last ? output_ : hidden_;
    if (legacy) {
      // Baseline lane: separate linear and activation nodes, as the
      // pre-fusion code built the graph.
      h = activate(layers_[i].forward(h), act);
    } else {
      h = layers_[i].forward(h, act);
    }
  }
  return h;
}

std::vector<Tensor> Mlp::parameters() const {
  std::vector<Tensor> ps;
  for (const auto& l : layers_)
    for (const auto& p : l.parameters()) ps.push_back(p);
  return ps;
}

PointNetEncoder::PointNetEncoder(Config cfg, Rng& rng) : cfg_(std::move(cfg)) {
  ARTSCI_EXPECTS(cfg_.channels.size() >= 2);
  pointLayers_.reserve(cfg_.channels.size() - 1);
  for (std::size_t i = 0; i + 1 < cfg_.channels.size(); ++i)
    pointLayers_.emplace_back(cfg_.channels[i], cfg_.channels[i + 1], rng);
  const long feat = cfg_.channels.back();
  muHead_ = std::make_unique<Mlp>(
      std::vector<long>{feat, cfg_.headHidden, cfg_.latentDim}, rng);
  logvarHead_ = std::make_unique<Mlp>(
      std::vector<long>{feat, cfg_.headHidden, cfg_.latentDim}, rng);
}

PointNetEncoder::Moments PointNetEncoder::forward(const Tensor& x) const {
  ARTSCI_EXPECTS_MSG(x.ndim() == 3, "encoder expects [B, N, C], got "
                                        << shapeToString(x.shape()));
  ARTSCI_EXPECTS(x.dim(2) == cfg_.channels.front());
  Tensor h = x;
  const bool legacy = execOptions().legacyExec;
  for (const auto& layer : pointLayers_)
    h = legacy ? leakyRelu(layer.forward(h), Real(0.01))
               : layer.forward(h, Activation::kLeakyRelu);
  // Transposition-invariant pooling over the particle axis.
  Tensor pooled = maxAxis(h, /*axis=*/1);  // [B, feat]
  Moments m;
  m.mu = muHead_->forward(pooled);
  // Soft clamp keeps exp(logvar) finite for untrained networks.
  m.logvar = mulScalar(tanhT(mulScalar(logvarHead_->forward(pooled),
                                       Real(1) / Real(10))),
                       Real(10));
  return m;
}

Tensor PointNetEncoder::sample(const Moments& m, Rng& rng) const {
  Tensor eps = Tensor::randn(m.mu.shape(), rng);
  Tensor sigma = expT(mulScalar(m.logvar, Real(0.5)));
  return add(m.mu, mul(sigma, eps));
}

std::vector<Tensor> PointNetEncoder::parameters() const {
  std::vector<Tensor> ps;
  for (const auto& l : pointLayers_)
    for (const auto& p : l.parameters()) ps.push_back(p);
  for (const auto& p : muHead_->parameters()) ps.push_back(p);
  for (const auto& p : logvarHead_->parameters()) ps.push_back(p);
  return ps;
}

std::vector<long> makeVoxelShufflePermutation(long V, long channelsOut) {
  // Input layout per sample (flattened): index = v * (8*C) + k * C + c,
  // where v = (vx*V + vy)*V + vz, k = (kx*2 + ky)*2 + kz.
  // Output layout: index = p * C + c with p = (px*2V + py)*2V + pz,
  // px = 2*vx + kx (likewise y, z).
  const long C = channelsOut;
  const long L = V * V * V * 8 * C;
  std::vector<long> perm(static_cast<std::size_t>(L));
  const long W = 2 * V;
  for (long vx = 0; vx < V; ++vx) {
    for (long vy = 0; vy < V; ++vy) {
      for (long vz = 0; vz < V; ++vz) {
        const long v = (vx * V + vy) * V + vz;
        for (long k = 0; k < 8; ++k) {
          const long kx = k / 4, ky = (k / 2) % 2, kz = k % 2;
          const long px = 2 * vx + kx, py = 2 * vy + ky, pz = 2 * vz + kz;
          const long p = (px * W + py) * W + pz;
          for (long c = 0; c < C; ++c) {
            perm[static_cast<std::size_t>(p * C + c)] = v * (8 * C) + k * C + c;
          }
        }
      }
    }
  }
  return perm;
}

VoxelDecoder::VoxelDecoder(Config cfg, Rng& rng) : cfg_(std::move(cfg)) {
  ARTSCI_EXPECTS(cfg_.channels.size() >= 2);
  ARTSCI_EXPECTS(cfg_.baseGrid >= 1);
  const long V0 = cfg_.baseGrid;
  fc_ = std::make_unique<Linear>(cfg_.latentDim,
                                 V0 * V0 * V0 * cfg_.channels.front(), rng);
  long V = V0;
  for (std::size_t s = 0; s + 1 < cfg_.channels.size(); ++s) {
    const long cin = cfg_.channels[s];
    const long cout = cfg_.channels[s + 1];
    deconvs_.emplace_back(cin, cout * 8, rng);
    shuffles_.push_back(makeVoxelShufflePermutation(V, cout));
    gridSizes_.push_back(V);
    V *= 2;
  }
  pointCount_ = V * V * V;
}

Tensor VoxelDecoder::forward(const Tensor& z) const {
  ARTSCI_EXPECTS(z.ndim() == 2 && z.dim(1) == cfg_.latentDim);
  const long B = z.dim(0);
  Tensor h = execOptions().legacyExec
                 ? leakyRelu(fc_->forward(z), Real(0.01))
                 : fc_->forward(z, Activation::kLeakyRelu);  // [B, V0^3*C0]
  for (std::size_t s = 0; s < deconvs_.size(); ++s) {
    const long V = gridSizes_[s];
    const long cin = cfg_.channels[s];
    // per-voxel linear map: [B*V^3, cin] -> [B*V^3, 8*cout]
    h = reshapeFast(h, {B * V * V * V, cin});
    h = deconvs_[s].forward(h);
    h = reshapeFast(h, {B, V * V * V * 8 * cfg_.channels[s + 1]});
    h = permuteLast(h, shuffles_[s]);
    const bool last = (s + 1 == deconvs_.size());
    if (!last) h = leakyRelu(h, Real(0.01));
  }
  return reshapeFast(h, {B, pointCount_, cfg_.channels.back()});
}

std::vector<Tensor> VoxelDecoder::parameters() const {
  std::vector<Tensor> ps = fc_->parameters();
  for (const auto& l : deconvs_)
    for (const auto& p : l.parameters()) ps.push_back(p);
  return ps;
}

}  // namespace artsci::ml

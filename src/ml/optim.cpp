#include "ml/optim.hpp"

#include <algorithm>
#include <cmath>

namespace artsci::ml {

Adam::Adam(std::vector<ParamGroup> groups, AdamConfig cfg)
    : groups_(std::move(groups)), cfg_(cfg) {
  state_.resize(groups_.size());
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    state_[g].resize(groups_[g].params.size());
    for (std::size_t p = 0; p < groups_[g].params.size(); ++p) {
      const auto n = groups_[g].params[p].data().size();
      state_[g][p].m.assign(n, Real(0));
      state_[g][p].v.assign(n, Real(0));
    }
  }
}

void Adam::step() {
  ++t_;
  const Real b1t = Real(1) - std::pow(cfg_.beta1, static_cast<Real>(t_));
  const Real b2t = Real(1) - std::pow(cfg_.beta2, static_cast<Real>(t_));
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const Real lr = groups_[g].lr;
    for (std::size_t pi = 0; pi < groups_[g].params.size(); ++pi) {
      Tensor& p = groups_[g].params[pi];
      if (p.grad().size() != p.data().size()) continue;  // never touched
      auto& st = state_[g][pi];
      auto& w = p.data();
      auto& grad = p.grad();
      for (std::size_t i = 0; i < w.size(); ++i) {
        // Classic (coupled) Adam weight decay: g += lambda * w.
        const Real gi = grad[i] + cfg_.weightDecay * w[i];
        st.m[i] = cfg_.beta1 * st.m[i] + (Real(1) - cfg_.beta1) * gi;
        st.v[i] = cfg_.beta2 * st.v[i] + (Real(1) - cfg_.beta2) * gi * gi;
        const Real mhat = st.m[i] / b1t;
        const Real vhat = st.v[i] / b2t;
        w[i] -= lr * mhat / (std::sqrt(vhat) + cfg_.eps);
      }
    }
  }
}

void Adam::zeroGrad() {
  for (auto& g : groups_)
    for (auto& p : g.params) p.zeroGrad();
}

void Adam::setLearningRate(std::size_t group, Real lr) {
  ARTSCI_EXPECTS(group < groups_.size());
  groups_[group].lr = lr;
}

std::vector<Real> Adam::packedState() const {
  std::vector<Real> packed;
  for (const auto& group : state_) {
    for (const auto& st : group) {
      packed.insert(packed.end(), st.m.begin(), st.m.end());
      packed.insert(packed.end(), st.v.begin(), st.v.end());
    }
  }
  return packed;
}

void Adam::restorePackedState(const std::vector<Real>& packed, long t) {
  ARTSCI_EXPECTS(t >= 0);
  std::size_t need = 0;
  for (const auto& group : state_)
    for (const auto& st : group) need += st.m.size() + st.v.size();
  ARTSCI_CHECK_MSG(packed.size() == need,
                   "packed Adam state has " << packed.size()
                                            << " values, optimizer needs "
                                            << need);
  std::size_t off = 0;
  for (auto& group : state_) {
    for (auto& st : group) {
      std::copy(packed.begin() + static_cast<long>(off),
                packed.begin() + static_cast<long>(off + st.m.size()),
                st.m.begin());
      off += st.m.size();
      std::copy(packed.begin() + static_cast<long>(off),
                packed.begin() + static_cast<long>(off + st.v.size()),
                st.v.begin());
      off += st.v.size();
    }
  }
  t_ = t;
}

Real Adam::learningRate(std::size_t group) const {
  ARTSCI_EXPECTS(group < groups_.size());
  return groups_[group].lr;
}

Real sqrtScaledLearningRate(Real baseLr, long totalBatch, long baseBatch) {
  ARTSCI_EXPECTS(totalBatch > 0 && baseBatch > 0);
  return baseLr * std::sqrt(static_cast<Real>(totalBatch) /
                            static_cast<Real>(baseBatch));
}

}  // namespace artsci::ml

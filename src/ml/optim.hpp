/// \file optim.hpp
/// Adam optimizer with parameter groups, matching the paper's settings:
/// beta1 = 0.8, beta2 = 0.9, eps = 1e-6, weight decay 2e-5, base learning
/// rate 1e-6 scaled by the square-root rule [Krizhevsky 2014], and a higher
/// rate (factor m_VAE) for the VAE block than for the INN block.
#pragma once

#include <vector>

#include "ml/tensor.hpp"

namespace artsci::ml {

struct AdamConfig {
  Real beta1 = Real(0.8);
  Real beta2 = Real(0.9);
  Real eps = Real(1e-6);
  Real weightDecay = Real(2e-5);
};

/// One learning-rate group (the paper uses two: VAE layers and INN layers).
struct ParamGroup {
  std::vector<Tensor> params;
  Real lr = Real(1e-6);
};

class Adam {
 public:
  Adam(std::vector<ParamGroup> groups, AdamConfig cfg = {});

  /// Apply one update from the gradients currently stored on the params.
  void step();

  /// Zero all parameter gradients.
  void zeroGrad();

  /// Change a group's learning rate (index into the constructor order).
  void setLearningRate(std::size_t group, Real lr);
  Real learningRate(std::size_t group) const;
  std::size_t groupCount() const { return groups_.size(); }
  long stepCount() const { return t_; }

  /// Flatten the full optimizer state — first/second moments in
  /// group/param order (m then v per param) — for checkpointing. The
  /// layout is an implementation detail shared only with
  /// restorePackedState on an identically-constructed optimizer.
  std::vector<Real> packedState() const;
  /// Inverse of packedState; `t` is the step count the moments belong to.
  /// Throws ContractError when the packed size does not match this
  /// optimizer's parameter layout.
  void restorePackedState(const std::vector<Real>& packed, long t);

 private:
  struct State {
    std::vector<Real> m, v;
  };
  std::vector<ParamGroup> groups_;
  std::vector<std::vector<State>> state_;  ///< [group][param]
  AdamConfig cfg_;
  long t_ = 0;
};

/// Square-root learning-rate scaling rule: lr = base * sqrt(B / B_base).
Real sqrtScaledLearningRate(Real baseLr, long totalBatch, long baseBatch);

}  // namespace artsci::ml

#include "ml/arena.hpp"

#include <algorithm>
#include <cstring>

namespace artsci::ml {

namespace {
/// First chunk is at least this many elements (64 KiB) so tiny graphs
/// don't fragment into many chunks during warm-up.
constexpr std::size_t kMinChunkElems = std::size_t(1) << 13;

thread_local Arena* tCurrentArena = nullptr;
}  // namespace

void Arena::resetRegion(Region& r) {
  r.highWater = std::max(r.highWater, r.stepTotal);
  // Consolidate: after a growth step, replace the chunk list with one
  // chunk covering the whole high-water footprint. Steady state is then a
  // single chunk per region, so replayed steps bump identical offsets and
  // never touch the heap.
  if (r.chunks.size() > 1) {
    std::size_t total = 0;
    for (const auto& c : r.chunks) total += c.cap;
    Region::Chunk merged;
    merged.cap = total;
    // Born zeroed: keeps the invariant that grad-region memory beyond the
    // written range is always clean, so the only zeroing a steady-state
    // step ever does is beginStep's single bulk memset.
    merged.mem = std::unique_ptr<Real[]>(new Real[total]());
    ++stats_.heapAllocations;
    r.chunks.clear();
    r.chunks.push_back(std::move(merged));
  }
  r.chunk = 0;
  r.used = 0;
  r.stepTotal = 0;
}

void Arena::beginStep() {
  if (stepOpen_) {
    // Close out the previous step's plan accounting.
    if (recording_) {
      recording_ = false;
      stats_.planLength = plan_.size();
    } else if (!deviated_ && planPos_ == plan_.size()) {
      ++stats_.planReplays;
    } else {
      ++stats_.planDeviations;
      plan_.clear();
      recording_ = true;  // re-record the new topology next step
    }
  }
  resetRegion(data_);
  resetRegion(grad_);
  // One bulk zero of the grad region per step, sized to what steps
  // actually use — this replaces per-node grad.assign inside backward().
  if (!grad_.chunks.empty() && grad_.highWater > 0) {
    const std::size_t n = std::min(grad_.highWater, grad_.chunks[0].cap);
    std::memset(grad_.chunks[0].mem.get(), 0, n * sizeof(Real));
  }
  planPos_ = 0;
  deviated_ = false;
  stepOpen_ = true;
  ++stats_.steps;
  stats_.dataBytesPeak =
      std::max(stats_.dataBytesPeak, data_.highWater * sizeof(Real));
  stats_.gradBytesPeak =
      std::max(stats_.gradBytesPeak, grad_.highWater * sizeof(Real));
}

Real* Arena::bump(Region& r, std::size_t n, bool zeroed) {
  // Advance past exhausted chunks (their tails are wasted until the next
  // beginStep consolidation).
  while (r.chunk < r.chunks.size() &&
         r.used + n > r.chunks[r.chunk].cap) {
    ++r.chunk;
    r.used = 0;
  }
  if (r.chunk >= r.chunks.size()) {
    std::size_t reserved = 0;
    for (const auto& c : r.chunks) reserved += c.cap;
    const std::size_t cap = std::max({n, reserved, kMinChunkElems});
    Region::Chunk fresh;
    fresh.cap = cap;
    // Grad chunks are born zeroed (value-init) so mid-step growth hands
    // out clean gradient memory without a separate memset.
    fresh.mem = zeroed ? std::unique_ptr<Real[]>(new Real[cap]())
                       : std::make_unique<Real[]>(cap);
    ++stats_.heapAllocations;
    r.chunks.push_back(std::move(fresh));
    r.used = 0;
    r.chunk = r.chunks.size() - 1;
  }
  Real* p = r.chunks[r.chunk].mem.get() + r.used;
  r.used += n;
  r.stepTotal += n;
  // Grad memory above the zeroed high-water mark (first time a step grows
  // past every previous step) must be cleaned here; below it, beginStep's
  // bulk memset already did.
  if (zeroed && r.chunk == 0 && r.stepTotal > r.highWater) {
    const std::size_t dirtyFrom =
        r.stepTotal - n > r.highWater ? r.stepTotal - n : r.highWater;
    std::memset(r.chunks[0].mem.get() + (r.used - (r.stepTotal - dirtyFrom)),
                0, (r.stepTotal - dirtyFrom) * sizeof(Real));
  }
  return p;
}

void Arena::recordOrCheck(std::int64_t key) {
  if (recording_) {
    plan_.push_back(key);
  } else if (!deviated_) {
    if (planPos_ >= plan_.size() || plan_[planPos_] != key) deviated_ = true;
    ++planPos_;
  }
}

Real* Arena::allocData(long n) {
  recordOrCheck((static_cast<std::int64_t>(n) << 1) | 0);
  return bump(data_, static_cast<std::size_t>(n), /*zeroed=*/false);
}

Real* Arena::allocGrad(long n) {
  recordOrCheck((static_cast<std::int64_t>(n) << 1) | 1);
  return bump(grad_, static_cast<std::size_t>(n), /*zeroed=*/true);
}

Arena::Stats Arena::stats() const {
  Stats s = stats_;
  if (stepOpen_) {
    if (recording_) {
      s.planLength = plan_.size();
    } else if (deviated_) {
      ++s.planDeviations;
    } else if (planPos_ == plan_.size()) {
      ++s.planReplays;
    }
    // A non-deviated step that has not yet consumed the whole plan is
    // still in flight — counted as neither replay nor deviation.
  }
  s.dataBytesPeak =
      std::max({s.dataBytesPeak, data_.stepTotal * sizeof(Real),
                data_.highWater * sizeof(Real)});
  s.gradBytesPeak =
      std::max({s.gradBytesPeak, grad_.stepTotal * sizeof(Real),
                grad_.highWater * sizeof(Real)});
  return s;
}

std::size_t Arena::reservedBytes() const {
  std::size_t total = 0;
  for (const auto& c : data_.chunks) total += c.cap;
  for (const auto& c : grad_.chunks) total += c.cap;
  return total * sizeof(Real);
}

void Arena::releaseMemory() {
  data_ = Region{};
  grad_ = Region{};
  plan_.clear();
  planPos_ = 0;
  recording_ = true;
  deviated_ = false;
  stepOpen_ = false;
}

ArenaScope::ArenaScope(Arena& arena) : previous_(tCurrentArena) {
  tCurrentArena = &arena;
}

ArenaScope::~ArenaScope() { tCurrentArena = previous_; }

Arena* currentArena() { return tCurrentArena; }

}  // namespace artsci::ml

#include "ml/coupling.hpp"

#include <numeric>

namespace artsci::ml {

GlowCouplingBlock::GlowCouplingBlock(long dim, long condDim,
                                     std::vector<long> hidden, Rng& rng,
                                     Real clamp)
    : dim_(dim), half_(dim / 2), condDim_(condDim), clamp_(clamp) {
  ARTSCI_EXPECTS_MSG(dim % 2 == 0, "coupling block width must be even");
  ARTSCI_EXPECTS(clamp > 0);
  auto makeSubnet = [&](long inDim, long outHalf) {
    std::vector<long> dims;
    dims.push_back(inDim + condDim);
    for (long h : hidden) dims.push_back(h);
    dims.push_back(2 * outHalf);
    Subnet s;
    s.net = std::make_unique<Mlp>(dims, rng);
    s.outHalf = outHalf;
    return s;
  };
  // subnet1 reads x2 (dim - half) and writes s,t for x1 (half);
  // subnet2 reads y1 (half) and writes s,t for x2 (dim - half).
  s1_ = makeSubnet(dim_ - half_, half_);
  s2_ = makeSubnet(half_, dim_ - half_);
}

Tensor GlowCouplingBlock::runSubnet(const Subnet& s, const Tensor& in,
                                    const Tensor& cond, Tensor& scale,
                                    Tensor& shift) const {
  Tensor input = in;
  if (condDim_ > 0) {
    ARTSCI_EXPECTS_MSG(cond.defined() && cond.dim(-1) == condDim_,
                       "coupling block expects a condition of width "
                           << condDim_);
    input = cat({in, cond}, /*axis=*/-1);
  }
  Tensor st = s.net->forward(input);
  // Column-slice views: zero-copy; downstream elementwise ops read them
  // through strides, bit-identical to the former copying slices.
  Tensor rawScale = sliceFast(st, /*axis=*/-1, 0, s.outHalf);
  shift = sliceFast(st, /*axis=*/-1, s.outHalf, 2 * s.outHalf);
  // Soft clamp: s -> clamp * tanh(s / clamp), keeps exp(s) in
  // [exp(-clamp), exp(clamp)] so forward and inverse stay well-conditioned.
  scale = mulScalar(tanhT(mulScalar(rawScale, Real(1) / clamp_)), clamp_);
  return st;
}

Tensor GlowCouplingBlock::forward(const Tensor& x, const Tensor& cond) const {
  ARTSCI_EXPECTS(x.dim(-1) == dim_);
  Tensor x1 = sliceFast(x, -1, 0, half_);
  Tensor x2 = sliceFast(x, -1, half_, dim_);
  Tensor s1, t1;
  runSubnet(s1_, x2, cond, s1, t1);
  Tensor y1 = add(mul(x1, expT(s1)), t1);
  Tensor s2, t2;
  runSubnet(s2_, y1, cond, s2, t2);
  Tensor y2 = add(mul(x2, expT(s2)), t2);
  return cat({y1, y2}, -1);
}

Tensor GlowCouplingBlock::inverse(const Tensor& y, const Tensor& cond) const {
  ARTSCI_EXPECTS(y.dim(-1) == dim_);
  Tensor y1 = sliceFast(y, -1, 0, half_);
  Tensor y2 = sliceFast(y, -1, half_, dim_);
  Tensor s2, t2;
  runSubnet(s2_, y1, cond, s2, t2);
  Tensor x2 = mul(sub(y2, t2), expT(neg(s2)));
  Tensor s1, t1;
  runSubnet(s1_, x2, cond, s1, t1);
  Tensor x1 = mul(sub(y1, t1), expT(neg(s1)));
  return cat({x1, x2}, -1);
}

std::vector<Tensor> GlowCouplingBlock::parameters() const {
  std::vector<Tensor> ps = s1_.net->parameters();
  for (const auto& p : s2_.net->parameters()) ps.push_back(p);
  return ps;
}

FeaturePermutation::FeaturePermutation(long dim, Rng& rng) {
  perm_.resize(static_cast<std::size_t>(dim));
  std::iota(perm_.begin(), perm_.end(), 0L);
  // Fisher-Yates with the provided deterministic generator.
  for (long i = dim - 1; i > 0; --i) {
    const long j = static_cast<long>(
        rng.uniformInt(static_cast<std::uint64_t>(i + 1)));
    std::swap(perm_[static_cast<std::size_t>(i)],
              perm_[static_cast<std::size_t>(j)]);
  }
  inversePerm_.resize(perm_.size());
  for (long i = 0; i < dim; ++i)
    inversePerm_[static_cast<std::size_t>(perm_[static_cast<std::size_t>(i)])] =
        i;
}

Tensor FeaturePermutation::forward(const Tensor& x) const {
  return permuteLast(x, perm_);
}

Tensor FeaturePermutation::inverse(const Tensor& y) const {
  return permuteLast(y, inversePerm_);
}

Inn::Inn(Config cfg, Rng& rng) : cfg_(cfg) {
  ARTSCI_EXPECTS(cfg_.blocks >= 1);
  // Permutations come from their own config-seeded stream (see Config);
  // `rng` only initializes weights, which checkpoints overwrite anyway.
  Rng permRng(cfg_.permSeed);
  for (int b = 0; b < cfg_.blocks; ++b) {
    blocks_.push_back(std::make_unique<GlowCouplingBlock>(
        cfg_.dim, cfg_.condDim, cfg_.hidden, rng, cfg_.clamp));
    perms_.emplace_back(cfg_.dim, permRng);
  }
}

Tensor Inn::forward(const Tensor& x, const Tensor& cond) const {
  Tensor h = x;
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    h = blocks_[b]->forward(h, cond);
    h = perms_[b].forward(h);
  }
  return h;
}

Tensor Inn::inverse(const Tensor& y, const Tensor& cond) const {
  Tensor h = y;
  for (std::size_t b = blocks_.size(); b-- > 0;) {
    h = perms_[b].inverse(h);
    h = blocks_[b]->inverse(h, cond);
  }
  return h;
}

std::vector<Tensor> Inn::parameters() const {
  std::vector<Tensor> ps;
  for (const auto& b : blocks_)
    for (const auto& p : b->parameters()) ps.push_back(p);
  return ps;
}

}  // namespace artsci::ml

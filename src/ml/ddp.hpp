/// \file ddp.hpp
/// Distributed-data-parallel training support, the stand-in for PyTorch DDP
/// with the N/RCCL backend. Ranks are threads; the Communicator implements
/// the collectives the paper's training uses:
///   * all-reduce (gradient averaging after each backward pass), and
///   * all-gather (the MMD loss terms "amount to matrix dot products with
///     data distributed across all ranks"; the paper gathers activations
///     with torch.distributed.all_gather_into_tensor, which breaks the
///     autograd graph — our allGather likewise returns detached data).
/// Collective wall-times are accumulated per rank so the Fig 8 bench can
/// attribute the efficiency deficit to communication.
#pragma once

#include <vector>

#include "common/thread_pool.hpp"
#include "ml/tensor.hpp"

namespace artsci::ml {

class Communicator {
 public:
  explicit Communicator(std::size_t ranks);

  std::size_t ranks() const { return ranks_; }

  /// In-place mean all-reduce across ranks. Every rank must call with a
  /// buffer of identical length. Contributions are combined in rank order,
  /// so the floating-point result is identical from run to run regardless
  /// of thread scheduling (NCCL-style deterministic reduction).
  void allReduceMean(std::size_t rank, std::vector<Real>& buffer);

  /// Gather each rank's buffer; returns the concatenation in rank order.
  /// Buffers may differ in length. Result is plain data (no autograd).
  std::vector<Real> allGather(std::size_t rank,
                              const std::vector<Real>& local);

  void barrier() { barrier_.arriveAndWait(); }

  /// Cumulative seconds each rank spent inside collectives.
  double communicationSeconds(std::size_t rank) const;
  void resetTimers();

  /// Persistent per-rank gradient-flattening buffer for allReduceGradients.
  /// Sized on first use and reused every step afterwards, so the collective
  /// adds no steady-state heap allocations to the training loop.
  std::vector<Real>& gradBucket(std::size_t rank);

 private:
  std::size_t ranks_;
  Barrier barrier_;
  std::vector<const std::vector<Real>*> reduceSlots_;  ///< one per rank
  std::vector<Real> reduceScratch_;  ///< chunk-reduced result staging
  std::size_t reduceLength_ = 0;
  std::vector<const std::vector<Real>*> gatherSlots_;
  std::vector<double> commSeconds_;
  std::vector<std::vector<Real>> gradBuckets_;  ///< one per rank
};

/// Average the gradients of `params` across all ranks (flattens all grads
/// into one buffer per call, like DDP's gradient buckets).
void allReduceGradients(Communicator& comm, std::size_t rank,
                        const std::vector<Tensor>& params);

/// Broadcast rank-0 parameter *values* to all ranks so replicas start
/// identical (DDP does this at construction).
void broadcastParameters(Communicator& comm, std::size_t rank,
                         const std::vector<Tensor>& params);

}  // namespace artsci::ml

#include "serve/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "obs/metrics.hpp"

namespace artsci::serve {

NetClient::NetClient(const std::string& host, std::uint16_t port,
                     std::size_t maxPayloadBytes)
    : NetClient(host, port, [&] {
        NetClientOptions o;
        o.maxPayloadBytes = maxPayloadBytes;
        return o;
      }()) {}

NetClient::NetClient(const std::string& host, std::uint16_t port,
                     NetClientOptions options)
    : host_(host),
      port_(port),
      options_(options),
      jitterRng_(options.jitterSeed),
      decoder_(options.maxPayloadBytes) {
  connectSocket();
}

void NetClient::connectSocket() {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ARTSCI_CHECK_MSG(fd_ >= 0, "socket(): " << std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  ARTSCI_CHECK_MSG(::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) == 1,
                   "bad address '" << host_ << "'");

  const auto fail = [&](const std::string& what) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    // Transport failures (peer down, refused) must be retryable —
    // RuntimeError, not a contract violation.
    throw RuntimeError("connect(" + host_ + ":" + std::to_string(port_) +
                       "): " + what +
                       (err != 0 ? std::string(": ") + std::strerror(err)
                                 : std::string()));
  };

  if (options_.connectTimeoutMillis == 0) {
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
      fail("failed");
  } else {
    // Deadline-bounded connect: non-blocking connect + poll(POLLOUT) +
    // SO_ERROR, then back to blocking mode for the simple I/O paths.
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      if (errno != EINPROGRESS) fail("failed");
      pollfd pfd{fd_, POLLOUT, 0};
      const int ready =
          ::poll(&pfd, 1, static_cast<int>(options_.connectTimeoutMillis));
      if (ready == 0) {
        ::close(fd_);
        fd_ = -1;
        throw NetTimeoutError("connect(" + host_ + ":" +
                              std::to_string(port_) + ") timed out after " +
                              std::to_string(options_.connectTimeoutMillis) +
                              " ms");
      }
      if (ready < 0) fail("poll failed");
      int soError = 0;
      socklen_t len = sizeof(soError);
      ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soError, &len);
      if (soError != 0) {
        errno = soError;
        fail("failed");
      }
    }
    ::fcntl(fd_, F_SETFL, flags);
  }

  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options_.recvTimeoutMillis > 0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(options_.recvTimeoutMillis / 1000);
    tv.tv_usec =
        static_cast<suseconds_t>((options_.recvTimeoutMillis % 1000) * 1000);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
}

NetClient::~NetClient() {
  if (fd_ >= 0) ::close(fd_);
}

void NetClient::sendBytes(const void* data, std::size_t n) {
  ARTSCI_CHECK_MSG(fd_ >= 0, "send on closed client");
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd_, p + off, n - off, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0)
      throw RuntimeError(std::string("send(): ") +
                         (w == 0 ? "connection closed"
                                 : std::strerror(errno)));
    off += static_cast<std::size_t>(w);
  }
}

proto::Frame NetClient::recvFrame() {
  proto::Frame frame;
  std::uint8_t buf[1 << 14];
  for (;;) {
    if (decoder_.next(frame)) return frame;
    ARTSCI_CHECK_MSG(!decoder_.failed(),
                     "protocol violation from server: " << decoder_.error());
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      throw NetTimeoutError("no reply within " +
                            std::to_string(options_.recvTimeoutMillis) +
                            " ms recv deadline");
    // EOF/reset is an expected peer-side condition, not a contract bug.
    if (n <= 0)
      throw RuntimeError(std::string("connection lost while awaiting frame: ") +
                         (n == 0 ? "closed by server" : std::strerror(errno)));
    decoder_.feed(buf, static_cast<std::size_t>(n));
  }
}

void NetClient::shutdownWrite() { ::shutdown(fd_, SHUT_WR); }

NetReply NetClient::roundTripOnce(proto::MsgType type,
                                  const std::vector<ml::Real>& values,
                                  std::uint64_t deadlineMicros,
                                  std::uint64_t id) {
  sendFrame(proto::encodeRequest(type, id, deadlineMicros, values));
  proto::Frame f = recvFrame();
  ARTSCI_CHECK_MSG(f.requestId == id, "reply id " << f.requestId
                                                  << " != request id " << id);
  if (f.type == proto::MsgType::kError)
    throw NetError(static_cast<proto::ErrorCode>(f.aux), f.message);
  ARTSCI_CHECK_MSG(f.type == proto::MsgType::kReply,
                   "unexpected frame type from server");
  NetReply r;
  r.values = std::move(f.values);
  r.requestId = f.requestId;
  r.snapshotVersion = f.meta;
  r.batchSize = f.aux;
  return r;
}

NetReply NetClient::roundTrip(proto::MsgType type,
                              const std::vector<ml::Real>& values,
                              std::uint64_t deadlineMicros) {
  const std::uint64_t id = nextId_++;
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      return roundTripOnce(type, values, deadlineMicros, id);
    } catch (const NetError&) {
      throw;  // the server answered — retrying would duplicate the request
    } catch (const RuntimeError&) {
      // Transport failure (timeout, reset, refused reconnect): the server
      // never replied. Retry with fresh connection state — the old socket
      // may hold half a frame, so the decoder must be rebuilt too.
      if (attempt >= options_.maxRetries) throw;
      ++retries_;
      obs::Registry::global().counter("net.retries").add();
      const std::uint64_t expo = std::min(
          options_.backoffMaxMillis,
          options_.backoffBaseMillis << std::min<std::size_t>(attempt, 16));
      // Jitter in [0.5, 1.0) de-synchronizes clients hammering a
      // recovering server.
      const auto backoff = static_cast<std::uint64_t>(
          static_cast<double>(expo) * jitterRng_.uniform(0.5, 1.0));
      if (backoff > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      if (fd_ >= 0) ::close(fd_);
      fd_ = -1;
      decoder_ = proto::FrameDecoder(options_.maxPayloadBytes);
      connectSocket();
    }
  }
}

NetReply NetClient::predictSpectrum(const std::vector<ml::Real>& cloud,
                                    std::uint64_t deadlineMicros) {
  return roundTrip(proto::MsgType::kPredictSpectrum, cloud, deadlineMicros);
}

NetReply NetClient::invertSpectrum(const std::vector<ml::Real>& spectrum,
                                   std::uint64_t deadlineMicros) {
  return roundTrip(proto::MsgType::kInvertSpectrum, spectrum, deadlineMicros);
}

}  // namespace artsci::serve

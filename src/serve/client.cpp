#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace artsci::serve {

NetClient::NetClient(const std::string& host, std::uint16_t port,
                     std::size_t maxPayloadBytes)
    : decoder_(maxPayloadBytes) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ARTSCI_CHECK_MSG(fd_ >= 0, "socket(): " << std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ARTSCI_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                   "bad address '" << host << "'");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    ARTSCI_CHECK_MSG(false, "connect(" << host << ":" << port
                                       << "): " << std::strerror(err));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

NetClient::~NetClient() {
  if (fd_ >= 0) ::close(fd_);
}

void NetClient::sendBytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd_, p + off, n - off, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    ARTSCI_CHECK_MSG(w > 0, "send(): " << std::strerror(errno));
    off += static_cast<std::size_t>(w);
  }
}

proto::Frame NetClient::recvFrame() {
  proto::Frame frame;
  std::uint8_t buf[1 << 14];
  for (;;) {
    if (decoder_.next(frame)) return frame;
    ARTSCI_CHECK_MSG(!decoder_.failed(),
                     "protocol violation from server: " << decoder_.error());
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    // EOF/reset is an expected peer-side condition, not a contract bug.
    if (n <= 0)
      throw RuntimeError(std::string("connection lost while awaiting frame: ") +
                         (n == 0 ? "closed by server" : std::strerror(errno)));
    decoder_.feed(buf, static_cast<std::size_t>(n));
  }
}

void NetClient::shutdownWrite() { ::shutdown(fd_, SHUT_WR); }

NetReply NetClient::roundTrip(proto::MsgType type,
                              const std::vector<ml::Real>& values,
                              std::uint64_t deadlineMicros) {
  const std::uint64_t id = nextId_++;
  sendFrame(proto::encodeRequest(type, id, deadlineMicros, values));
  proto::Frame f = recvFrame();
  ARTSCI_CHECK_MSG(f.requestId == id, "reply id " << f.requestId
                                                  << " != request id " << id);
  if (f.type == proto::MsgType::kError)
    throw NetError(static_cast<proto::ErrorCode>(f.aux), f.message);
  ARTSCI_CHECK_MSG(f.type == proto::MsgType::kReply,
                   "unexpected frame type from server");
  NetReply r;
  r.values = std::move(f.values);
  r.requestId = f.requestId;
  r.snapshotVersion = f.meta;
  r.batchSize = f.aux;
  return r;
}

NetReply NetClient::predictSpectrum(const std::vector<ml::Real>& cloud,
                                    std::uint64_t deadlineMicros) {
  return roundTrip(proto::MsgType::kPredictSpectrum, cloud, deadlineMicros);
}

NetReply NetClient::invertSpectrum(const std::vector<ml::Real>& spectrum,
                                   std::uint64_t deadlineMicros) {
  return roundTrip(proto::MsgType::kInvertSpectrum, spectrum, deadlineMicros);
}

}  // namespace artsci::serve

/// \file batcher.hpp
/// Dynamic micro-batching for the inference service: single requests are
/// queued and coalesced into batches under a (max-batch-size,
/// max-wait-microseconds) policy — the inference-time sibling of the DDP
/// batch formation in ml/ddp.cpp. A batch closes as soon as max-batch
/// compatible requests are queued, or when the oldest queued request has
/// waited max-wait, whichever comes first: full load runs at peak
/// batch efficiency, trickle load is bounded-latency.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "ml/tensor.hpp"

namespace artsci::serve {

/// The two service endpoints: forward surrogate (cloud -> spectrum) and
/// inverse problem (spectrum -> posterior point-cloud draw).
enum class Endpoint { kPredictSpectrum, kInvertSpectrum };

/// Human-readable endpoint label for logs and metrics reports.
inline const char* endpointName(Endpoint e) {
  return e == Endpoint::kPredictSpectrum ? "PredictSpectrum" : "InvertSpectrum";
}

/// What a client's future resolves to.
struct InferenceResult {
  /// PredictSpectrum: the spectrum [spectrumDim]. InvertSpectrum: one
  /// posterior point-cloud draw, flattened [points x 6].
  std::vector<ml::Real> values;
  /// Version of the registry snapshot that computed this response; every
  /// response is computed entirely by exactly one snapshot.
  std::uint64_t snapshotVersion = 0;
  /// Size of the micro-batch this request was coalesced into.
  long batchSize = 0;
  /// Time spent queued before its batch started executing.
  double queueMicros = 0;
};

struct BatchPolicy {
  long maxBatch = 32;          ///< close a batch at this many requests
  long maxWaitMicros = 1000;   ///< ... or when the oldest has waited this long
  std::size_t maxQueueDepth = 4096;  ///< enqueue beyond this is rejected
};

/// A queued request. Only same-kind requests can share a batch: the batch
/// key is (endpoint, input element count), so clouds of equal size stack
/// into one [B, N, 6] tensor and spectra into one [B, S].
struct PendingRequest {
  Endpoint endpoint = Endpoint::kPredictSpectrum;
  std::vector<ml::Real> input;
  std::promise<InferenceResult> promise;
  std::chrono::steady_clock::time_point enqueuedAt{};
  /// Client deadline: a request still queued past this instant is swept
  /// out by nextBatch() instead of being batched (max() = no deadline).
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

/// Thread-safe FIFO queue with batch-forming pop. Multiple workers may
/// block in nextBatch() concurrently; each formed batch preserves the
/// arrival order of its members, and the head-of-line request is always
/// served in the earliest batch (FIFO fairness — a burst on one endpoint
/// cannot starve the other indefinitely, because the queue head defines
/// which batch forms next).
class MicroBatcher {
 public:
  explicit MicroBatcher(BatchPolicy policy);

  /// Queue a request (stamps enqueuedAt). Returns false — leaving `r`
  /// intact so the caller can fail its promise — when the queue is at
  /// maxQueueDepth or the batcher is stopped.
  bool enqueue(PendingRequest& r);

  /// Block until a batch is ready under the policy; returns it in FIFO
  /// order. An empty vector means "stopped and nothing left to serve":
  /// the calling worker should exit.
  ///
  /// Deadline-expired requests are swept out of the queue *before* batch
  /// formation and handed back via `expired` (FIFO order) so the caller
  /// can fail their promises — never executed, never silently dropped.
  /// Passing nullptr asserts that no queued request carries a deadline.
  std::vector<PendingRequest> nextBatch(
      std::vector<PendingRequest>* expired = nullptr);

  /// Stop accepting work. drainPending=true lets workers keep pulling
  /// batches until the queue is empty (graceful drain); false makes
  /// nextBatch() return empty immediately so the owner can reject the
  /// remainder via takePending().
  void stop(bool drainPending);

  /// Remove and return everything still queued (for the reject path).
  std::vector<PendingRequest> takePending();

  /// Current queue depth (requests not yet batched out).
  std::size_t depth() const;
  /// True once stop() was called.
  bool stopped() const;
  const BatchPolicy& policy() const { return policy_; }

 private:
  static bool compatible(const PendingRequest& a, const PendingRequest& b) {
    return a.endpoint == b.endpoint && a.input.size() == b.input.size();
  }

  BatchPolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<PendingRequest> queue_;
  bool stopping_ = false;
  bool drain_ = true;
};

}  // namespace artsci::serve

#include "serve/batcher.hpp"

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace artsci::serve {

MicroBatcher::MicroBatcher(BatchPolicy policy) : policy_(policy) {
  ARTSCI_EXPECTS(policy.maxBatch >= 1);
  ARTSCI_EXPECTS(policy.maxWaitMicros >= 0);
  ARTSCI_EXPECTS(policy.maxQueueDepth >= 1);
}

bool MicroBatcher::enqueue(PendingRequest& r) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || queue_.size() >= policy_.maxQueueDepth) return false;
    r.enqueuedAt = std::chrono::steady_clock::now();
    queue_.push_back(std::move(r));
  }
  cv_.notify_one();
  return true;
}

std::vector<PendingRequest> MicroBatcher::nextBatch(
    std::vector<PendingRequest>* expired) {
  // Spans cover the idle wait too: gaps between batches show up as long
  // next_batch spans in the trace, which is exactly the signal wanted.
  TRACE_SCOPE("serve", "next_batch");
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // Sweep expired requests out before forming a batch: a request whose
    // deadline passed while queued must not consume batch slots or engine
    // time — its client has already given up on the answer.
    if (!queue_.empty()) {
      const auto now = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < queue_.size();) {
        if (queue_[i].deadline <= now) {
          ARTSCI_CHECK_MSG(expired != nullptr,
                           "deadline-carrying request in a batcher polled "
                           "without an expired sink");
          expired->push_back(std::move(queue_[i]));
          queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
    }
    // Hand expired requests back immediately (even with a batch ready):
    // the worker fails their promises and calls again — timeout responses
    // must not wait out another batch-formation cycle.
    if (expired != nullptr && !expired->empty()) return {};
    if (queue_.empty()) {
      if (stopping_) return {};
      cv_.wait(lock);
      continue;
    }
    if (stopping_ && !drain_) return {};

    // Count requests batchable with the queue head.
    long matching = 0;
    for (const auto& r : queue_) {
      if (compatible(queue_.front(), r)) {
        if (++matching >= policy_.maxBatch) break;
      }
    }
    const auto deadline =
        queue_.front().enqueuedAt +
        std::chrono::microseconds(policy_.maxWaitMicros);
    const bool deadlinePassed = std::chrono::steady_clock::now() >= deadline;
    if (matching >= policy_.maxBatch || deadlinePassed || stopping_) {
      // Pop every request compatible with the head (up to maxBatch),
      // preserving queue order for both the batch and the remainder.
      // Key captured up front: the head itself is moved on iteration one.
      const Endpoint keyEndpoint = queue_.front().endpoint;
      const std::size_t keySize = queue_.front().input.size();
      std::vector<PendingRequest> batch;
      batch.reserve(static_cast<std::size_t>(matching));
      std::deque<PendingRequest> rest;
      for (auto& r : queue_) {
        if (static_cast<long>(batch.size()) < policy_.maxBatch &&
            r.endpoint == keyEndpoint && r.input.size() == keySize) {
          batch.push_back(std::move(r));
        } else {
          rest.push_back(std::move(r));
        }
      }
      queue_.swap(rest);
      return batch;
    }
    // Wake early enough to sweep the first client deadline, not just to
    // close the batch.
    auto wakeAt = deadline;
    for (const auto& r : queue_)
      if (r.deadline < wakeAt) wakeAt = r.deadline;
    cv_.wait_until(lock, wakeAt);
  }
}

void MicroBatcher::stop(bool drainPending) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    drain_ = drainPending;
  }
  cv_.notify_all();
}

std::vector<PendingRequest> MicroBatcher::takePending() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<PendingRequest> out;
  out.reserve(queue_.size());
  for (auto& r : queue_) out.push_back(std::move(r));
  queue_.clear();
  return out;
}

std::size_t MicroBatcher::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

bool MicroBatcher::stopped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stopping_;
}

}  // namespace artsci::serve

/// \file client.hpp
/// A minimal blocking TCP client for the ASV1 protocol (protocol.hpp).
/// One connection, synchronous request/reply round-trips — the shape the
/// conformance tests and the load generator need. Also exposes the raw
/// frame plumbing (sendBytes/sendFrame/recvFrame) so tests can write
/// torn, pipelined, or malformed byte streams directly.
///
/// Fault tolerance (NetClientOptions): connect and recv deadlines turn a
/// hung server into a typed NetTimeoutError instead of an indefinite
/// block, and `maxRetries > 0` makes predictSpectrum/invertSpectrum
/// transparently reconnect and resend after transport failures with
/// bounded jittered-exponential backoff. Replies the server actually
/// produced (including kError frames) are never retried — retrying only
/// ever re-asks a question the server never answered, so the server-side
/// exactly-one-reply invariant is preserved end to end.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/tensor.hpp"
#include "serve/protocol.hpp"

namespace artsci::serve {

/// The server answered with a kError frame; `code` says why.
class NetError : public RuntimeError {
 public:
  NetError(proto::ErrorCode code, const std::string& message)
      : RuntimeError(std::string(proto::errorCodeName(code)) + ": " +
                     message),
        code_(code) {}
  proto::ErrorCode code() const { return code_; }

 private:
  proto::ErrorCode code_;
};

/// A connect or receive deadline expired (NetClientOptions timeouts).
class NetTimeoutError : public RuntimeError {
 public:
  using RuntimeError::RuntimeError;
};

/// One server reply, already decoded.
struct NetReply {
  std::vector<ml::Real> values;
  std::uint64_t requestId = 0;
  std::uint64_t snapshotVersion = 0;
  std::uint32_t batchSize = 0;
};

/// Timeout / retry policy. Defaults reproduce the original client: block
/// forever, never retry.
struct NetClientOptions {
  std::uint64_t connectTimeoutMillis = 0;  ///< 0 = blocking connect
  std::uint64_t recvTimeoutMillis = 0;     ///< 0 = block for the reply
  /// Transport-failure retries per round-trip (reconnect + resend). 0
  /// disables. Only timeouts and connection failures are retried, never
  /// kError replies.
  std::size_t maxRetries = 0;
  std::uint64_t backoffBaseMillis = 5;  ///< doubles per attempt...
  std::uint64_t backoffMaxMillis = 200; ///< ...capped here
  std::uint64_t jitterSeed = 0x7ab1eULL;  ///< deterministic jitter stream
  std::size_t maxPayloadBytes = proto::kDefaultMaxPayloadBytes;
};

class NetClient {
 public:
  /// Connects (blocking) to host:port; throws RuntimeError on failure.
  NetClient(const std::string& host, std::uint16_t port,
            std::size_t maxPayloadBytes = proto::kDefaultMaxPayloadBytes);
  /// Connect with timeout/retry options; throws RuntimeError on connect
  /// failure, NetTimeoutError when the connect deadline expires.
  NetClient(const std::string& host, std::uint16_t port,
            NetClientOptions options);
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Round-trip: send a PredictSpectrum request, block for its reply.
  /// Throws NetError if the server answers kError, NetTimeoutError when
  /// the recv deadline expires (after retries), RuntimeError if the
  /// connection drops (after retries).
  NetReply predictSpectrum(const std::vector<ml::Real>& cloud,
                           std::uint64_t deadlineMicros = 0);
  /// Round-trip for InvertSpectrum; same error contract.
  NetReply invertSpectrum(const std::vector<ml::Real>& spectrum,
                          std::uint64_t deadlineMicros = 0);

  // --- raw plumbing (tests, pipelined load generation) -------------------

  /// Send an encoded request frame without waiting for the reply.
  void sendFrame(const std::vector<std::uint8_t>& bytes) {
    sendBytes(bytes.data(), bytes.size());
  }
  /// Write arbitrary bytes — torn frames, garbage, partial headers.
  /// Throws RuntimeError when the connection is gone.
  void sendBytes(const void* data, std::size_t n);
  /// Block until one full frame arrives (reply or error, as sent).
  /// Throws NetTimeoutError when the recv deadline expires, RuntimeError
  /// on EOF/reset or a protocol violation from the server side.
  proto::Frame recvFrame();
  /// Next request id this client will stamp (monotonic from 1).
  std::uint64_t nextRequestId() const { return nextId_; }

  /// Half-close the write side (server sees EOF, replies still readable).
  void shutdownWrite();

  /// Transport retries performed by this client (also counted process-wide
  /// in the `net.retries` counter).
  std::size_t retriesPerformed() const { return retries_; }

 private:
  void connectSocket();
  NetReply roundTrip(proto::MsgType type, const std::vector<ml::Real>& values,
                     std::uint64_t deadlineMicros);
  NetReply roundTripOnce(proto::MsgType type,
                         const std::vector<ml::Real>& values,
                         std::uint64_t deadlineMicros, std::uint64_t id);

  std::string host_;
  std::uint16_t port_ = 0;
  NetClientOptions options_;
  Rng jitterRng_;
  int fd_ = -1;
  std::uint64_t nextId_ = 1;
  proto::FrameDecoder decoder_;
  std::size_t retries_ = 0;
};

}  // namespace artsci::serve

/// \file client.hpp
/// A minimal blocking TCP client for the ASV1 protocol (protocol.hpp).
/// One connection, synchronous request/reply round-trips — the shape the
/// conformance tests and the load generator need. Also exposes the raw
/// frame plumbing (sendBytes/sendFrame/recvFrame) so tests can write
/// torn, pipelined, or malformed byte streams directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "ml/tensor.hpp"
#include "serve/protocol.hpp"

namespace artsci::serve {

/// The server answered with a kError frame; `code` says why.
class NetError : public RuntimeError {
 public:
  NetError(proto::ErrorCode code, const std::string& message)
      : RuntimeError(std::string(proto::errorCodeName(code)) + ": " +
                     message),
        code_(code) {}
  proto::ErrorCode code() const { return code_; }

 private:
  proto::ErrorCode code_;
};

/// One server reply, already decoded.
struct NetReply {
  std::vector<ml::Real> values;
  std::uint64_t requestId = 0;
  std::uint64_t snapshotVersion = 0;
  std::uint32_t batchSize = 0;
};

class NetClient {
 public:
  /// Connects (blocking) to host:port; throws RuntimeError on failure.
  NetClient(const std::string& host, std::uint16_t port,
            std::size_t maxPayloadBytes = proto::kDefaultMaxPayloadBytes);
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Round-trip: send a PredictSpectrum request, block for its reply.
  /// Throws NetError if the server answers kError, RuntimeError if the
  /// connection drops.
  NetReply predictSpectrum(const std::vector<ml::Real>& cloud,
                           std::uint64_t deadlineMicros = 0);
  /// Round-trip for InvertSpectrum; same error contract.
  NetReply invertSpectrum(const std::vector<ml::Real>& spectrum,
                          std::uint64_t deadlineMicros = 0);

  // --- raw plumbing (tests, pipelined load generation) -------------------

  /// Send an encoded request frame without waiting for the reply.
  void sendFrame(const std::vector<std::uint8_t>& bytes) {
    sendBytes(bytes.data(), bytes.size());
  }
  /// Write arbitrary bytes — torn frames, garbage, partial headers.
  void sendBytes(const void* data, std::size_t n);
  /// Block until one full frame arrives (reply or error, as sent).
  /// Throws RuntimeError on EOF/reset or a protocol violation from the
  /// server side.
  proto::Frame recvFrame();
  /// Next request id this client will stamp (monotonic from 1).
  std::uint64_t nextRequestId() const { return nextId_; }

  /// Half-close the write side (server sees EOF, replies still readable).
  void shutdownWrite();

 private:
  NetReply roundTrip(proto::MsgType type, const std::vector<ml::Real>& values,
                     std::uint64_t deadlineMicros);

  int fd_ = -1;
  std::uint64_t nextId_ = 1;
  proto::FrameDecoder decoder_;
};

}  // namespace artsci::serve

#include "serve/engine.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"

namespace artsci::serve {

namespace detail {

// The kernel library fuses the activation epilogue itself; the dispatch
// below is a static_cast, so the enum layouts must stay in lockstep.
static_assert(static_cast<int>(ml::Activation::kNone) ==
                  static_cast<int>(ml::kernels::Act::kNone) &&
              static_cast<int>(ml::Activation::kRelu) ==
                  static_cast<int>(ml::kernels::Act::kRelu) &&
              static_cast<int>(ml::Activation::kLeakyRelu) ==
                  static_cast<int>(ml::kernels::Act::kLeakyRelu) &&
              static_cast<int>(ml::Activation::kTanh) ==
                  static_cast<int>(ml::kernels::Act::kTanh),
              "ml::Activation and kernels::Act layouts diverged");

void linearForward(const ml::Real* a, const ml::Real* w, const ml::Real* bias,
                   ml::Real* c, long m, long k, long n, ml::Activation act,
                   bool parallel) {
  ml::kernels::linear_forward(a, w, bias, c, m, k, n,
                              static_cast<ml::kernels::Act>(act), parallel);
}

}  // namespace detail

using ml::Activation;
using ml::Real;

void InferenceEngine::appendMlp(const ml::Mlp& mlp,
                                std::vector<ml::kernels::DenseStep>& seq) {
  const auto& layers = mlp.layers();
  for (std::size_t i = 0; i < layers.size(); ++i) {
    ml::kernels::DenseStep d;
    d.w = layers[i].weight().data().data();
    d.bias = layers[i].biasTensor().defined()
                 ? layers[i].biasTensor().data().data()
                 : nullptr;
    d.in = layers[i].inFeatures();
    d.out = layers[i].outFeatures();
    d.act = static_cast<ml::kernels::Act>(
        (i + 1 == layers.size()) ? mlp.outputActivation()
                                 : mlp.hiddenActivation());
    seq.push_back(d);
  }
}

InferenceEngine::InferenceEngine(
    std::shared_ptr<const core::ArtificialScientistModel> model,
    Options options)
    : model_(std::move(model)), options_(options) {
  ARTSCI_EXPECTS_MSG(model_ != nullptr, "InferenceEngine needs a model");
  const auto& enc = model_->encoder();
  for (const auto& lin : enc.pointLayers()) {
    Dense d;
    d.w = lin.weight().data().data();
    d.b = lin.biasTensor().defined() ? lin.biasTensor().data().data()
                                     : nullptr;
    d.in = lin.inFeatures();
    d.out = lin.outFeatures();
    d.act = ml::kernels::Act::kLeakyRelu;  // encoder leaky after each conv
    conv_.push_back(d);
    maxConvWidth_ = std::max(maxConvWidth_, std::max(d.in, d.out));
  }
  features_ = enc.config().channels.back();
  appendMlp(enc.muHead(), muHead_);

  const auto& inn = model_->inn();
  ARTSCI_CHECK_MSG(inn.config().condDim == 0,
                   "InferenceEngine supports unconditioned INNs only");
  for (int b = 0; b < inn.blockCount(); ++b) {
    const auto& block = inn.block(b);
    Coupling cp;
    appendMlp(block.subnet1(), cp.s1);
    appendMlp(block.subnet2(), cp.s2);
    cp.half = block.half();
    cp.rest = block.dim() - block.half();
    cp.clamp = block.clampValue();
    cp.perm = inn.permutation(b).permutation().data();
    blocks_.push_back(std::move(cp));
  }
  latentDim_ = enc.config().latentDim;
  spectrumDim_ = model_->config().spectrumDim;

  auto widest = [](const std::vector<ml::kernels::DenseStep>& seq) {
    long w = 0;
    for (const auto& s : seq) w = std::max(w, std::max(s.in, s.out));
    return w;
  };
  maxSeqWidth_ = widest(muHead_);
  for (const auto& cp : blocks_) {
    maxSeqWidth_ = std::max(maxSeqWidth_, widest(cp.s1));
    maxSeqWidth_ = std::max(maxSeqWidth_, widest(cp.s2));
  }
}

void InferenceEngine::runDenseSeq(
    const std::vector<ml::kernels::DenseStep>& seq, const Real* in, long rows,
    Real* out, Real* scratchA, Real* scratchB) {
  ml::kernels::linear_seq_forward(seq.data(), static_cast<long>(seq.size()),
                                  in, rows, out, scratchA, scratchB,
                                  options_.ompRowParallel);
}

void InferenceEngine::predictSpectra(const Real* clouds, long batch,
                                     long points, Real* out) {
  TRACE_SCOPE("serve", "engine_predict");
  ARTSCI_EXPECTS(batch >= 1 && points >= 1);
  ARTSCI_EXPECTS(!conv_.empty() && conv_.front().in == 6);

  // All workspaces come from the step arena; a repeated (batch, points)
  // geometry replays the recorded plan — same offsets, zero heap traffic.
  arena_.beginStep();
  const long rowsTotal = batch * points;
  Real* convA = arena_.allocData(rowsTotal * maxConvWidth_);
  Real* convB = arena_.allocData(rowsTotal * maxConvWidth_);
  Real* pooled = arena_.allocData(batch * features_);
  Real* h = arena_.allocData(batch * latentDim_);
  Real* seqA = arena_.allocData(batch * maxSeqWidth_);
  Real* seqB = arena_.allocData(batch * maxSeqWidth_);
  long maxHalf = 0, maxRest = 0;
  for (const auto& cp : blocks_) {
    maxHalf = std::max(maxHalf, cp.half);
    maxRest = std::max(maxRest, cp.rest);
  }
  Real* x2 = arena_.allocData(std::max(batch * maxRest, 1L));
  Real* y1 = arena_.allocData(std::max(batch * maxHalf, 1L));
  Real* y2 = arena_.allocData(std::max(batch * maxRest, 1L));
  Real* st = arena_.allocData(
      std::max(batch * 2 * std::max(maxHalf, maxRest), 1L));
  Real* cat = arena_.allocData(batch * latentDim_);

  // --- PointNet conv stack: ONE batched-kernel call per layer, with the
  // cache-sized sample tiles as the problem list (each tile's rows stay
  // the same fixed 32-row chunks the unbatched path used, so values are
  // bit-identical to dispatching per tile).
  const long tileSamples = std::max<long>(1, (1L << 10) / points);
  const long tiles = (batch + tileSamples - 1) / tileSamples;
  const Real* cur = clouds;
  Real* dst = convA;
  for (std::size_t l = 0; l < conv_.size(); ++l) {
    const Dense& d = conv_[l];
    probs_.clear();
    for (long t = 0; t < tiles; ++t) {
      const long b0 = t * tileSamples;
      const long nb = std::min(tileSamples, batch - b0);
      ml::kernels::LinearProblem p;
      p.a = cur + b0 * points * d.in;
      p.w = d.w;
      p.bias = d.b;
      p.c = dst + b0 * points * d.out;
      p.m = nb * points;
      p.k = d.in;
      p.n = d.out;
      p.act = d.act;
      probs_.push_back(p);
    }
    ml::kernels::linear_forward_batched(probs_.data(),
                                        static_cast<long>(probs_.size()),
                                        options_.ompRowParallel);
    cur = dst;
    dst = (dst == convA) ? convB : convA;
  }

  // --- max-pool over the particle axis (transposition invariance).
  for (long s = 0; s < batch; ++s) {
    Real* prow = pooled + s * features_;
    const Real* src = cur + s * points * features_;
    for (long f = 0; f < features_; ++f) prow[f] = src[f];
    for (long p = 1; p < points; ++p) {
      const Real* row = src + p * features_;
      for (long f = 0; f < features_; ++f)
        prow[f] = row[f] > prow[f] ? row[f] : prow[f];
    }
  }

  // --- mu head: pooled features -> latent mean (one fused chain).
  runDenseSeq(muHead_, pooled, batch, h, seqA, seqB);

  // --- INN forward: z -> [I' || N'], block by block; each subnet is one
  // fused chain (one parallel region instead of one per layer).
  for (const auto& cp : blocks_) {
    const long half = cp.half, rest = cp.rest, dim = half + rest;
    const Real invClamp = Real(1) / cp.clamp;
    for (long i = 0; i < batch; ++i) {
      const Real* hrow = h + i * dim;
      std::copy(hrow + half, hrow + dim, x2 + i * rest);
    }
    // y1 = x1 * exp(clamp * tanh(s1 / clamp)) + t1, with [s1||t1] from
    // subnet1(x2) — identical math to GlowCouplingBlock::forward.
    runDenseSeq(cp.s1, x2, batch, st, seqA, seqB);
    for (long i = 0; i < batch; ++i) {
      const Real* x1 = h + i * dim;
      const Real* strow = st + i * 2 * half;
      Real* y1row = y1 + i * half;
      for (long j = 0; j < half; ++j) {
        const Real s = cp.clamp * std::tanh(strow[j] * invClamp);
        y1row[j] = x1[j] * std::exp(s) + strow[half + j];
      }
    }
    runDenseSeq(cp.s2, y1, batch, st, seqA, seqB);
    for (long i = 0; i < batch; ++i) {
      const Real* x2row = x2 + i * rest;
      const Real* strow = st + i * 2 * rest;
      Real* y2row = y2 + i * rest;
      for (long j = 0; j < rest; ++j) {
        const Real s = cp.clamp * std::tanh(strow[j] * invClamp);
        y2row[j] = x2row[j] * std::exp(s) + strow[rest + j];
      }
    }
    // h = permute([y1 || y2]) (gather: out feature j reads perm[j]).
    for (long i = 0; i < batch; ++i) {
      Real* crow = cat + i * dim;
      std::copy(y1 + i * half, y1 + (i + 1) * half, crow);
      std::copy(y2 + i * rest, y2 + (i + 1) * rest, crow + half);
      Real* hrow = h + i * dim;
      for (long j = 0; j < dim; ++j) hrow[j] = crow[cp.perm[j]];
    }
  }

  // --- spectrum slice: first spectrumDim features of the INN output.
  for (long i = 0; i < batch; ++i) {
    const Real* hrow = h + i * latentDim_;
    std::copy(hrow, hrow + spectrumDim_, out + i * spectrumDim_);
  }
}

}  // namespace artsci::serve

#include "serve/engine.hpp"

#include <algorithm>
#include <cmath>

#include "ml/kernels/gemm.hpp"
#include "obs/trace.hpp"

namespace artsci::serve {

namespace detail {

// The kernel library fuses the activation epilogue itself; the dispatch
// below is a static_cast, so the enum layouts must stay in lockstep.
static_assert(static_cast<int>(ml::Activation::kNone) ==
                  static_cast<int>(ml::kernels::Act::kNone) &&
              static_cast<int>(ml::Activation::kRelu) ==
                  static_cast<int>(ml::kernels::Act::kRelu) &&
              static_cast<int>(ml::Activation::kLeakyRelu) ==
                  static_cast<int>(ml::kernels::Act::kLeakyRelu) &&
              static_cast<int>(ml::Activation::kTanh) ==
                  static_cast<int>(ml::kernels::Act::kTanh),
              "ml::Activation and kernels::Act layouts diverged");

void linearForward(const ml::Real* a, const ml::Real* w, const ml::Real* bias,
                   ml::Real* c, long m, long k, long n, ml::Activation act,
                   bool parallel) {
  ml::kernels::linear_forward(a, w, bias, c, m, k, n,
                              static_cast<ml::kernels::Act>(act), parallel);
}

}  // namespace detail

using ml::Activation;
using ml::Real;

void InferenceEngine::appendMlp(const ml::Mlp& mlp, std::vector<Dense>& seq) {
  const auto& layers = mlp.layers();
  for (std::size_t i = 0; i < layers.size(); ++i) {
    Dense d;
    d.w = layers[i].weight().data().data();
    d.b = layers[i].biasTensor().defined()
              ? layers[i].biasTensor().data().data()
              : nullptr;
    d.in = layers[i].inFeatures();
    d.out = layers[i].outFeatures();
    d.act = (i + 1 == layers.size()) ? mlp.outputActivation()
                                     : mlp.hiddenActivation();
    seq.push_back(d);
  }
}

InferenceEngine::InferenceEngine(
    std::shared_ptr<const core::ArtificialScientistModel> model,
    Options options)
    : model_(std::move(model)), options_(options) {
  ARTSCI_EXPECTS_MSG(model_ != nullptr, "InferenceEngine needs a model");
  const auto& enc = model_->encoder();
  for (const auto& lin : enc.pointLayers()) {
    Dense d;
    d.w = lin.weight().data().data();
    d.b = lin.biasTensor().defined() ? lin.biasTensor().data().data()
                                     : nullptr;
    d.in = lin.inFeatures();
    d.out = lin.outFeatures();
    d.act = Activation::kLeakyRelu;  // encoder applies leaky after each conv
    conv_.push_back(d);
  }
  features_ = enc.config().channels.back();
  appendMlp(enc.muHead(), muHead_);

  const auto& inn = model_->inn();
  ARTSCI_CHECK_MSG(inn.config().condDim == 0,
                   "InferenceEngine supports unconditioned INNs only");
  for (int b = 0; b < inn.blockCount(); ++b) {
    const auto& block = inn.block(b);
    Coupling cp;
    appendMlp(block.subnet1(), cp.s1);
    appendMlp(block.subnet2(), cp.s2);
    cp.half = block.half();
    cp.rest = block.dim() - block.half();
    cp.clamp = block.clampValue();
    cp.perm = inn.permutation(b).permutation().data();
    blocks_.push_back(std::move(cp));
  }
  latentDim_ = enc.config().latentDim;
  spectrumDim_ = model_->config().spectrumDim;
}

void InferenceEngine::runDenseSeq(const std::vector<Dense>& seq,
                                  const Real* in, long rows, Real* out) {
  const Real* cur = in;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    Real* dst;
    if (i + 1 == seq.size()) {
      dst = out;
    } else {
      auto& scratch = (i % 2 == 0) ? seqA_ : seqB_;
      scratch.resize(static_cast<std::size_t>(rows * seq[i].out));
      dst = scratch.data();
    }
    detail::linearForward(cur, seq[i].w, seq[i].b, dst, rows, seq[i].in,
                          seq[i].out, seq[i].act, options_.ompRowParallel);
    cur = dst;
  }
}

void InferenceEngine::predictSpectra(const Real* clouds, long batch,
                                     long points, Real* out) {
  TRACE_SCOPE("serve", "engine_predict");
  ARTSCI_EXPECTS(batch >= 1 && points >= 1);
  ARTSCI_EXPECTS(!conv_.empty() && conv_.front().in == 6);

  // --- PointNet conv stack + max-pool, tiled so the per-tile activations
  // stay cache-resident (the batch-32 conv intermediate would be ~2 MB).
  pooled_.resize(static_cast<std::size_t>(batch * features_));
  const long tileSamples = std::max<long>(1, (1L << 10) / points);
  for (long b0 = 0; b0 < batch; b0 += tileSamples) {
    const long nb = std::min(tileSamples, batch - b0);
    const long rows = nb * points;
    convOut_.resize(static_cast<std::size_t>(rows * features_));
    runDenseSeq(conv_, clouds + b0 * points * 6, rows, convOut_.data());
    // Pool over the particle axis (transposition invariance).
    for (long s = 0; s < nb; ++s) {
      Real* dst = pooled_.data() + (b0 + s) * features_;
      const Real* src = convOut_.data() + s * points * features_;
      for (long f = 0; f < features_; ++f) dst[f] = src[f];
      for (long p = 1; p < points; ++p) {
        const Real* row = src + p * features_;
        for (long f = 0; f < features_; ++f)
          dst[f] = row[f] > dst[f] ? row[f] : dst[f];
      }
    }
  }

  // --- mu head: pooled features -> latent mean.
  h_.resize(static_cast<std::size_t>(batch * latentDim_));
  runDenseSeq(muHead_, pooled_.data(), batch, h_.data());

  // --- INN forward: z -> [I' || N'], block by block.
  for (const auto& cp : blocks_) {
    const long half = cp.half, rest = cp.rest, dim = half + rest;
    const Real invClamp = Real(1) / cp.clamp;
    x2_.resize(static_cast<std::size_t>(batch * rest));
    y1_.resize(static_cast<std::size_t>(batch * half));
    y2_.resize(static_cast<std::size_t>(batch * rest));
    cat_.resize(static_cast<std::size_t>(batch * dim));
    for (long i = 0; i < batch; ++i) {
      const Real* hrow = h_.data() + i * dim;
      std::copy(hrow + half, hrow + dim, x2_.data() + i * rest);
    }
    // y1 = x1 * exp(clamp * tanh(s1 / clamp)) + t1, with [s1||t1] from
    // subnet1(x2) — identical math to GlowCouplingBlock::forward.
    st_.resize(static_cast<std::size_t>(batch * 2 * half));
    runDenseSeq(cp.s1, x2_.data(), batch, st_.data());
    for (long i = 0; i < batch; ++i) {
      const Real* x1 = h_.data() + i * dim;
      const Real* st = st_.data() + i * 2 * half;
      Real* y1 = y1_.data() + i * half;
      for (long j = 0; j < half; ++j) {
        const Real s = cp.clamp * std::tanh(st[j] * invClamp);
        y1[j] = x1[j] * std::exp(s) + st[half + j];
      }
    }
    st_.resize(static_cast<std::size_t>(batch * 2 * rest));
    runDenseSeq(cp.s2, y1_.data(), batch, st_.data());
    for (long i = 0; i < batch; ++i) {
      const Real* x2 = x2_.data() + i * rest;
      const Real* st = st_.data() + i * 2 * rest;
      Real* y2 = y2_.data() + i * rest;
      for (long j = 0; j < rest; ++j) {
        const Real s = cp.clamp * std::tanh(st[j] * invClamp);
        y2[j] = x2[j] * std::exp(s) + st[rest + j];
      }
    }
    // h = permute([y1 || y2]) (gather: out feature j reads perm[j]).
    for (long i = 0; i < batch; ++i) {
      Real* crow = cat_.data() + i * dim;
      std::copy(y1_.data() + i * half, y1_.data() + (i + 1) * half, crow);
      std::copy(y2_.data() + i * rest, y2_.data() + (i + 1) * rest,
                crow + half);
      Real* hrow = h_.data() + i * dim;
      for (long j = 0; j < dim; ++j) hrow[j] = crow[cp.perm[j]];
    }
  }

  // --- spectrum slice: first spectrumDim features of the INN output.
  for (long i = 0; i < batch; ++i) {
    const Real* hrow = h_.data() + i * latentDim_;
    std::copy(hrow, hrow + spectrumDim_, out + i * spectrumDim_);
  }
}

}  // namespace artsci::serve

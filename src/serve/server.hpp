/// \file server.hpp
/// The asynchronous surrogate-inference service. Clients submit single
/// requests and get std::future results; a MicroBatcher coalesces queued
/// requests into dynamic micro-batches that worker threads (a ThreadPool)
/// execute against the current ModelRegistry snapshot — read once per
/// batch, so every response is computed entirely by exactly one snapshot
/// even while a trainer hot-swaps weights under load.
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "serve/batcher.hpp"
#include "serve/engine.hpp"
#include "serve/metrics.hpp"
#include "serve/registry.hpp"

namespace artsci::serve {

/// Admission control dropped the request before it entered the queue
/// (queue at capacity, or the deadline was already expired on submit).
class ShedError : public RuntimeError {
 public:
  using RuntimeError::RuntimeError;
};

/// The request's deadline expired while it waited in the queue; it was
/// swept out before batching and never executed.
class DeadlineError : public RuntimeError {
 public:
  using RuntimeError::RuntimeError;
};

/// The server is shutting down (or already shut down); the request was
/// not executed.
class ShutdownError : public RuntimeError {
 public:
  using RuntimeError::RuntimeError;
};

struct ServerConfig {
  BatchPolicy policy;
  std::size_t workers = 1;   ///< inference worker threads
  std::uint64_t seed = 0xced5ULL;  ///< base seed for posterior-draw RNGs
  /// Let a *single-worker* server's engine parallelize each batch over
  /// OpenMP row chunks (bit-identical results; InferenceEngine::Options).
  /// Opt-in: enable on hosts dedicated to serving so a multi-core box
  /// speeds up individual batches; leave off (default) when the server
  /// co-runs with other OpenMP work — the in-transit pipeline's usual
  /// deployment — or with workers > 1 (ignored there anyway: the worker
  /// threads already own the cores).
  bool ompRowParallel = false;
  /// Pin worker w to CPU slot (pinCoreBase + w) of the process's allowed
  /// set (common/thread_pool.hpp::pinThisThreadToCpuSlot). -1 = no pinning.
  /// The TCP front end (net_server.hpp) uses this to give each shard's
  /// worker its own core.
  int pinCoreBase = -1;
  /// Record into this ServeMetrics instead of a private one — the sharded
  /// front end aggregates all workers into a single metrics namespace.
  /// The registry record path is lock-free, so sharing does not contend.
  std::shared_ptr<ServeMetrics> metrics;
};

class InferenceServer {
 public:
  /// The registry may be empty at construction; requests submitted before
  /// the first publish fail with "no model published".
  InferenceServer(ServerConfig cfg, std::shared_ptr<ModelRegistry> registry);
  ~InferenceServer();  ///< drains gracefully if shutdown() was not called

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Forward surrogate: cloud flattened [points x 6] -> spectrum future.
  /// `deadlineMicros` > 0 arms deadline-based load shedding: a request
  /// still queued that long after submit fails with DeadlineError instead
  /// of being batched (0 = no deadline; the future always resolves either
  /// way — sheds and timeouts surface as exceptions, never silence).
  std::future<InferenceResult> predictSpectrum(std::vector<ml::Real> cloud,
                                               std::uint64_t deadlineMicros = 0);

  /// Inverse problem: spectrum [spectrumDim] -> one posterior point-cloud
  /// draw (fresh N ~ N(0,1) per request, worker-local RNG). Deadline
  /// semantics as predictSpectrum.
  std::future<InferenceResult> invertSpectrum(std::vector<ml::Real> spectrum,
                                              std::uint64_t deadlineMicros = 0);

  enum class ShutdownMode {
    kDrain,   ///< stop accepting, execute everything already queued
    kReject,  ///< stop accepting, fail everything still queued
  };

  /// Idempotent; returns once all workers have exited and (kReject) every
  /// pending promise has been failed. Futures already handed out always
  /// resolve — with a value or an exception, never dangling.
  void shutdown(ShutdownMode mode = ShutdownMode::kDrain);

  /// Outstanding load: requests still queued plus requests in a batch a
  /// worker is currently executing. Counting in-flight work matters for
  /// least-loaded dispatch — a shard digesting a long batch has an empty
  /// queue but is NOT idle, and routing by queue alone would pile short
  /// requests behind it. Lock-bounded O(1); the sharded front end polls
  /// this per dispatch to route each request to the shallowest shard.
  std::size_t queueDepth() const {
    return batcher_.depth() + inFlight_.load(std::memory_order_relaxed);
  }

  /// False once a worker crashed (FAULT_POINT("serve.worker_batch") peer
  /// death). An unhealthy server keeps its exactly-one-reply contract —
  /// the crashed worker's batch is failed with typed errors, later
  /// submits are rejected — but executes nothing new; the sharded front
  /// end routes around it and its supervisor replaces it.
  bool healthy() const { return healthy_.load(std::memory_order_acquire); }

  /// Metrics snapshot (includes current queue depth).
  ServeMetrics::Report metrics() const;
  /// The (possibly shared) metrics sink this server records into.
  const std::shared_ptr<ServeMetrics>& metricsSink() const { return metrics_; }

  const ServerConfig& config() const { return cfg_; }

 private:
  std::future<InferenceResult> submit(Endpoint endpoint,
                                      std::vector<ml::Real> input,
                                      std::uint64_t deadlineMicros);
  void workerLoop(std::size_t workerIndex);
  void runPredictBatch(std::vector<PendingRequest>& batch,
                       const ModelSnapshot& snap, InferenceEngine& engine);
  void runInvertBatch(std::vector<PendingRequest>& batch,
                      const ModelSnapshot& snap, Rng& rng);
  void finishBatch(std::vector<PendingRequest>& batch,
                   std::vector<std::vector<ml::Real>> values,
                   const ModelSnapshot& snap,
                   std::chrono::steady_clock::time_point started);

  ServerConfig cfg_;
  std::shared_ptr<ModelRegistry> registry_;
  MicroBatcher batcher_;
  std::shared_ptr<ServeMetrics> metrics_;
  std::atomic<bool> accepting_{true};
  std::atomic<bool> shutdownDone_{false};
  std::atomic<bool> healthy_{true};
  /// Requests popped from the queue whose batch is still executing.
  std::atomic<std::size_t> inFlight_{0};
  // Declared last: destroyed first, after shutdown() joined the loops.
  ThreadPool pool_;
  std::vector<std::future<void>> workerDone_;
};

}  // namespace artsci::serve

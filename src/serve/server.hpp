/// \file server.hpp
/// The asynchronous surrogate-inference service. Clients submit single
/// requests and get std::future results; a MicroBatcher coalesces queued
/// requests into dynamic micro-batches that worker threads (a ThreadPool)
/// execute against the current ModelRegistry snapshot — read once per
/// batch, so every response is computed entirely by exactly one snapshot
/// even while a trainer hot-swaps weights under load.
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "serve/batcher.hpp"
#include "serve/engine.hpp"
#include "serve/metrics.hpp"
#include "serve/registry.hpp"

namespace artsci::serve {

struct ServerConfig {
  BatchPolicy policy;
  std::size_t workers = 1;   ///< inference worker threads
  std::uint64_t seed = 0xced5ULL;  ///< base seed for posterior-draw RNGs
  /// Let a *single-worker* server's engine parallelize each batch over
  /// OpenMP row chunks (bit-identical results; InferenceEngine::Options).
  /// Opt-in: enable on hosts dedicated to serving so a multi-core box
  /// speeds up individual batches; leave off (default) when the server
  /// co-runs with other OpenMP work — the in-transit pipeline's usual
  /// deployment — or with workers > 1 (ignored there anyway: the worker
  /// threads already own the cores).
  bool ompRowParallel = false;
};

class InferenceServer {
 public:
  /// The registry may be empty at construction; requests submitted before
  /// the first publish fail with "no model published".
  InferenceServer(ServerConfig cfg, std::shared_ptr<ModelRegistry> registry);
  ~InferenceServer();  ///< drains gracefully if shutdown() was not called

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Forward surrogate: cloud flattened [points x 6] -> spectrum future.
  std::future<InferenceResult> predictSpectrum(std::vector<ml::Real> cloud);

  /// Inverse problem: spectrum [spectrumDim] -> one posterior point-cloud
  /// draw (fresh N ~ N(0,1) per request, worker-local RNG).
  std::future<InferenceResult> invertSpectrum(std::vector<ml::Real> spectrum);

  enum class ShutdownMode {
    kDrain,   ///< stop accepting, execute everything already queued
    kReject,  ///< stop accepting, fail everything still queued
  };

  /// Idempotent; returns once all workers have exited and (kReject) every
  /// pending promise has been failed. Futures already handed out always
  /// resolve — with a value or an exception, never dangling.
  void shutdown(ShutdownMode mode = ShutdownMode::kDrain);

  /// Metrics snapshot (includes current queue depth).
  ServeMetrics::Report metrics() const;

  const ServerConfig& config() const { return cfg_; }

 private:
  std::future<InferenceResult> submit(Endpoint endpoint,
                                      std::vector<ml::Real> input);
  void workerLoop(std::size_t workerIndex);
  void runPredictBatch(std::vector<PendingRequest>& batch,
                       const ModelSnapshot& snap, InferenceEngine& engine);
  void runInvertBatch(std::vector<PendingRequest>& batch,
                      const ModelSnapshot& snap, Rng& rng);
  void finishBatch(std::vector<PendingRequest>& batch,
                   std::vector<std::vector<ml::Real>> values,
                   const ModelSnapshot& snap,
                   std::chrono::steady_clock::time_point started);

  ServerConfig cfg_;
  std::shared_ptr<ModelRegistry> registry_;
  MicroBatcher batcher_;
  ServeMetrics metrics_;
  std::atomic<bool> accepting_{true};
  std::atomic<bool> shutdownDone_{false};
  // Declared last: destroyed first, after shutdown() joined the loops.
  ThreadPool pool_;
  std::vector<std::future<void>> workerDone_;
};

}  // namespace artsci::serve

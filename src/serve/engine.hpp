/// \file engine.hpp
/// Graph-free batched executor of ArtificialScientistModel::predictSpectra.
///
/// The autograd stack (ml/ops.hpp) allocates a result node per operation —
/// the right trade for training, but pure overhead for inference. This
/// engine walks the same architecture (PointNet conv stack -> max-pool ->
/// mu head -> INN forward -> spectrum slice) against raw weight buffers
/// with preallocated workspaces and a register-blocked, runtime-dispatched
/// (AVX-512 / AVX2+FMA / baseline) matmul kernel, computing identical
/// values up to floating-point reassociation (FMA contraction). This is
/// what makes micro-batching pay: at batch 32 the fused path is several
/// times cheaper per sample than per-request graph forwards.
///
/// Dispatch shape (PR 9): the conv stack issues ONE
/// kernels::linear_forward_batched call per layer (the per-sample tiles
/// are the problem list), and every dense chain (mu head, INN coupling
/// subnets) runs through kernels::linear_seq_forward — one OpenMP region
/// per chain instead of one per layer, so a predict over a d-deep INN
/// costs O(blocks) fork/joins instead of O(blocks × depth). All
/// workspaces come from a per-engine ml::Arena whose recorded allocation
/// plan replays with zero heap traffic once the batch geometry repeats
/// (see arenaStats()).
///
/// Thread-safety: an engine owns mutable workspaces — one engine per
/// serving worker. The referenced model snapshot is immutable and shared.
#pragma once

#include <memory>
#include <vector>

#include "core/model.hpp"
#include "ml/arena.hpp"
#include "ml/kernels/gemm.hpp"

namespace artsci::serve {

namespace detail {
/// C[m,n] = act(A[m,k] · W[k,n] + bias[n]); bias may be nullptr.
/// Thin adaptor over the shared kernel library's fused epilogue
/// (ml/kernels/gemm.hpp::linear_forward) — the exact same register-blocked,
/// runtime-SIMD-dispatched loops that ml::matmul / ml::linear train with.
/// Accumulation order per output element matches ml::matmul (k ascending,
/// bias added last). `parallel` turns on the kernel library's fixed
/// 32-row static OpenMP chunking — bit-identical to serial for any
/// thread count; the engine enables it so multi-core hosts scale the
/// row-heavy conv stack.
void linearForward(const ml::Real* a, const ml::Real* w, const ml::Real* bias,
                   ml::Real* c, long m, long k, long n, ml::Activation act,
                   bool parallel = false);
}  // namespace detail

class InferenceEngine {
 public:
  /// Execution knobs.
  struct Options {
    /// Run the fused kernels over fixed 32-row static OpenMP chunks
    /// (bit-identical results for any thread count; see
    /// ml/kernels/gemm.hpp). Turn on when the engine owns the host's
    /// cores — e.g. a single-worker server on a multi-core machine; leave
    /// off when many engine-owning workers already saturate them.
    bool ompRowParallel = false;
  };

  /// Binds to an immutable snapshot; the shared_ptr keeps the weight
  /// buffers alive for the engine's lifetime.
  explicit InferenceEngine(
      std::shared_ptr<const core::ArtificialScientistModel> model)
      : InferenceEngine(std::move(model), Options{}) {}
  /// Same, with explicit execution options.
  InferenceEngine(std::shared_ptr<const core::ArtificialScientistModel> model,
                  Options options);

  /// clouds: [batch, points, 6] flattened, row-major. Writes spectra
  /// [batch, spectrumDim] to `out`.
  void predictSpectra(const ml::Real* clouds, long batch, long points,
                      ml::Real* out);

  /// Output spectrum length per sample.
  long spectrumDim() const { return spectrumDim_; }
  /// INN latent width (the VAE latent dimension).
  long latentDim() const { return latentDim_; }
  /// The bound immutable snapshot.
  const std::shared_ptr<const core::ArtificialScientistModel>& model() const {
    return model_;
  }
  /// Workspace-arena counters: after the first predict of a given
  /// (batch, points) geometry, every later call replays the recorded
  /// allocation plan (planReplays grows, heapAllocations does not).
  ml::Arena::Stats arenaStats() const { return arena_.stats(); }

 private:
  struct Dense {
    const ml::Real* w = nullptr;
    const ml::Real* b = nullptr;
    long in = 0, out = 0;
    ml::kernels::Act act = ml::kernels::Act::kNone;
  };
  struct Coupling {
    /// Subnet MLPs as ready-to-run kernel chains (x2 -> s,t ; y1 -> s,t).
    std::vector<ml::kernels::DenseStep> s1, s2;
    long half = 0, rest = 0;
    ml::Real clamp = 0;
    const long* perm = nullptr;  ///< gather indices after the block
  };

  static void appendMlp(const ml::Mlp& mlp,
                        std::vector<ml::kernels::DenseStep>& seq);
  /// One fused parallel region over the whole chain (see
  /// kernels::linear_seq_forward); scratch comes from the step arena.
  void runDenseSeq(const std::vector<ml::kernels::DenseStep>& seq,
                   const ml::Real* in, long rows, ml::Real* out,
                   ml::Real* scratchA, ml::Real* scratchB);

  std::shared_ptr<const core::ArtificialScientistModel> model_;
  Options options_;
  std::vector<Dense> conv_;  ///< per-point layers, leaky-ReLU fused
  std::vector<ml::kernels::DenseStep> muHead_;
  std::vector<Coupling> blocks_;
  long latentDim_ = 0, spectrumDim_ = 0, features_ = 0;
  long maxConvWidth_ = 0;  ///< widest conv layer (ping-pong buffer width)
  long maxSeqWidth_ = 0;   ///< widest dense-chain layer across all chains

  /// Per-predict workspace arena: beginStep() at every call recycles the
  /// previous call's buffers; with a stable batch geometry the allocation
  /// plan replays and the engine stops touching the heap entirely.
  ml::Arena arena_;
  /// Per-layer problem list for the batched conv dispatch (grow-only
  /// metadata, reused across calls).
  std::vector<ml::kernels::LinearProblem> probs_;
};

}  // namespace artsci::serve

#include "serve/server.hpp"

#include <cstring>

#include "fault/fault.hpp"
#include "obs/trace.hpp"

namespace artsci::serve {

namespace {

using Clock = std::chrono::steady_clock;

double microsBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

std::future<InferenceResult> rejectedFuture(const std::string& why) {
  std::promise<InferenceResult> p;
  p.set_exception(std::make_exception_ptr(RuntimeError(why)));
  return p.get_future();
}

}  // namespace

InferenceServer::InferenceServer(ServerConfig cfg,
                                 std::shared_ptr<ModelRegistry> registry)
    : cfg_(cfg),
      registry_(std::move(registry)),
      batcher_(cfg.policy),
      metrics_(cfg.metrics ? cfg.metrics : std::make_shared<ServeMetrics>()),
      pool_(cfg.workers) {
  ARTSCI_EXPECTS_MSG(registry_ != nullptr, "server needs a registry");
  ARTSCI_EXPECTS(cfg_.workers >= 1);
  workerDone_.reserve(cfg_.workers);
  for (std::size_t w = 0; w < cfg_.workers; ++w)
    workerDone_.push_back(pool_.submit([this, w] { workerLoop(w); }));
}

InferenceServer::~InferenceServer() { shutdown(ShutdownMode::kDrain); }

std::future<InferenceResult> InferenceServer::predictSpectrum(
    std::vector<ml::Real> cloud, std::uint64_t deadlineMicros) {
  if (cloud.empty() || cloud.size() % 6 != 0)
    return rejectedFuture("PredictSpectrum input must be a non-empty "
                          "flattened [points x 6] cloud");
  return submit(Endpoint::kPredictSpectrum, std::move(cloud), deadlineMicros);
}

std::future<InferenceResult> InferenceServer::invertSpectrum(
    std::vector<ml::Real> spectrum, std::uint64_t deadlineMicros) {
  if (spectrum.empty())
    return rejectedFuture("InvertSpectrum input must be a non-empty spectrum");
  return submit(Endpoint::kInvertSpectrum, std::move(spectrum), deadlineMicros);
}

std::future<InferenceResult> InferenceServer::submit(
    Endpoint endpoint, std::vector<ml::Real> input,
    std::uint64_t deadlineMicros) {
  metrics_->recordSubmitted(endpoint);
  PendingRequest r;
  r.endpoint = endpoint;
  r.input = std::move(input);
  if (deadlineMicros > 0)
    r.deadline = Clock::now() + std::chrono::microseconds(deadlineMicros);
  std::future<InferenceResult> fut = r.promise.get_future();
  if (!accepting_.load(std::memory_order_acquire)) {
    metrics_->recordRejected(endpoint);
    r.promise.set_exception(
        std::make_exception_ptr(ShutdownError("server is shut down")));
    return fut;
  }
  if (!healthy_.load(std::memory_order_acquire)) {
    // A crashed worker means queued work may never execute; reject at the
    // door with a typed error so no future dangles while the supervisor
    // replaces this server.
    metrics_->recordRejected(endpoint);
    r.promise.set_exception(std::make_exception_ptr(
        RuntimeError("inference worker crashed; server awaiting restart")));
    return fut;
  }
  if (!batcher_.enqueue(r)) {
    // Admission control: the bounded queue is at capacity, so the newest
    // request is the one shed — the queued ones are older and closer to
    // their deadlines, re-queuing churn would only make everyone late.
    if (batcher_.stopped()) {
      metrics_->recordRejected(endpoint);
      r.promise.set_exception(
          std::make_exception_ptr(ShutdownError("server is shut down")));
    } else {
      metrics_->recordShed(endpoint);
      r.promise.set_exception(std::make_exception_ptr(ShedError(
          "request shed: inference queue is at capacity")));
    }
  }
  metrics_->recordQueueDepth(batcher_.depth());
  return fut;
}

void InferenceServer::workerLoop(std::size_t workerIndex) {
  if (cfg_.pinCoreBase >= 0)
    pinThisThreadToCpuSlot(static_cast<std::size_t>(cfg_.pinCoreBase) +
                           workerIndex);
  // Worker-local RNG: posterior draws are concurrent-safe and per-worker
  // reproducible (not globally ordered — batch-to-worker assignment races).
  Rng rng(cfg_.seed + 0x9e3779b9ULL * (workerIndex + 1));
  std::shared_ptr<const ModelSnapshot> bound;
  std::unique_ptr<InferenceEngine> engine;
  std::vector<PendingRequest> expired;
  for (;;) {
    expired.clear();
    std::vector<PendingRequest> batch = batcher_.nextBatch(&expired);
    // Deadline-swept requests were never batched; fail them promptly so a
    // shed/timeout response is never silently dropped.
    for (auto& r : expired) {
      metrics_->recordDeadlineTimeout(r.endpoint);
      r.promise.set_exception(std::make_exception_ptr(DeadlineError(
          "deadline expired while queued (load shed)")));
    }
    if (batch.empty()) {
      if (expired.empty()) return;  // stopped and drained: worker exits
      continue;
    }
    try {
      FAULT_POINT("serve.worker_batch");
    } catch (const fault::PeerDeathError& e) {
      // Simulated worker crash: contain it to this shard. The batch in
      // hand gets typed failures (exactly one reply per request, even
      // across a crash), the server goes unhealthy so submits are
      // rejected and dispatch routes around it, and the worker thread
      // exits — the supervisor (net_server.cpp) builds a replacement.
      healthy_.store(false, std::memory_order_release);
      const auto err = std::make_exception_ptr(RuntimeError(
          std::string("inference worker crashed: ") + e.what()));
      for (auto& r : batch) {
        metrics_->recordRejected(r.endpoint);
        r.promise.set_exception(err);
      }
      return;
    }
    // The batch left the queue but is not done: keep it visible to
    // queueDepth() until right before its promises resolve, so
    // least-loaded dispatch sees this worker as busy. The decrement must
    // strictly precede promise resolution — a client that reacts to its
    // reply by sending the next request would otherwise race a stale
    // depth and get routed behind a busy shard it should have avoided.
    inFlight_.fetch_add(batch.size(), std::memory_order_relaxed);
    // One snapshot per batch: the hot-swap consistency guarantee.
    std::shared_ptr<const ModelSnapshot> snap = registry_->current();
    if (!snap) {
      inFlight_.fetch_sub(batch.size(), std::memory_order_relaxed);
      for (auto& r : batch) {
        metrics_->recordRejected(r.endpoint);
        r.promise.set_exception(std::make_exception_ptr(
            RuntimeError("no model published in the registry")));
      }
      continue;
    }
    if (snap != bound) {
      InferenceEngine::Options opts;
      opts.ompRowParallel = cfg_.ompRowParallel && cfg_.workers == 1;
      engine = std::make_unique<InferenceEngine>(snap->model, opts);
      bound = snap;
      metrics_->recordEngineSwap();
    }
    try {
      if (batch.front().endpoint == Endpoint::kPredictSpectrum)
        runPredictBatch(batch, *snap, *engine);
      else
        runInvertBatch(batch, *snap, rng);
    } catch (...) {
      // finishBatch (which owns the success-path decrement) was not
      // reached: it is the last call of run*Batch and resolves promises
      // without throwing.
      inFlight_.fetch_sub(batch.size(), std::memory_order_relaxed);
      const std::exception_ptr err = std::current_exception();
      for (auto& r : batch) {
        metrics_->recordRejected(r.endpoint);
        r.promise.set_exception(err);
      }
    }
  }
}

void InferenceServer::runPredictBatch(std::vector<PendingRequest>& batch,
                                      const ModelSnapshot& snap,
                                      InferenceEngine& engine) {
  TRACE_SCOPE("serve", "predict_batch");
  const auto started = Clock::now();
  const long B = static_cast<long>(batch.size());
  const long perInput = static_cast<long>(batch.front().input.size());
  const long points = perInput / 6;
  std::vector<ml::Real> clouds(static_cast<std::size_t>(B * perInput));
  for (long i = 0; i < B; ++i)
    std::memcpy(clouds.data() + i * perInput, batch[i].input.data(),
                static_cast<std::size_t>(perInput) * sizeof(ml::Real));
  const long S = engine.spectrumDim();
  std::vector<ml::Real> spectra(static_cast<std::size_t>(B * S));
  engine.predictSpectra(clouds.data(), B, points, spectra.data());
  std::vector<std::vector<ml::Real>> values(batch.size());
  for (long i = 0; i < B; ++i)
    values[i].assign(spectra.begin() + i * S, spectra.begin() + (i + 1) * S);
  finishBatch(batch, std::move(values), snap, started);
}

void InferenceServer::runInvertBatch(std::vector<PendingRequest>& batch,
                                     const ModelSnapshot& snap, Rng& rng) {
  TRACE_SCOPE("serve", "invert_batch");
  const auto started = Clock::now();
  const long B = static_cast<long>(batch.size());
  const long S = static_cast<long>(batch.front().input.size());
  ARTSCI_CHECK_MSG(S == snap.model->config().spectrumDim,
                   "InvertSpectrum input has " << S << " bins, snapshot v"
                                               << snap.version << " expects "
                                               << snap.model->config()
                                                      .spectrumDim);
  std::vector<ml::Real> flat(static_cast<std::size_t>(B * S));
  for (long i = 0; i < B; ++i)
    std::memcpy(flat.data() + i * S, batch[i].input.data(),
                static_cast<std::size_t>(S) * sizeof(ml::Real));
  const ml::Tensor spectra =
      ml::Tensor::fromVector({B, S}, std::move(flat));
  // The inverse path (INN inverse + voxel decoder) runs through the graph
  // ops — batched, so the per-op overhead amortizes across the batch.
  const ml::Tensor clouds = snap.model->invertSpectra(spectra, rng);
  const long per = clouds.numel() / B;
  std::vector<std::vector<ml::Real>> values(batch.size());
  for (long i = 0; i < B; ++i)
    values[i].assign(clouds.data().begin() + i * per,
                     clouds.data().begin() + (i + 1) * per);
  finishBatch(batch, std::move(values), snap, started);
}

void InferenceServer::finishBatch(std::vector<PendingRequest>& batch,
                                  std::vector<std::vector<ml::Real>> values,
                                  const ModelSnapshot& snap,
                                  Clock::time_point started) {
  const auto done = Clock::now();
  std::vector<double> latencies(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    latencies[i] = microsBetween(batch[i].enqueuedAt, done);
  // Metrics and the in-flight decrement before promises: a client that
  // observed its future resolve must already see this batch accounted for
  // and this worker's queueDepth() back at its queued-only value.
  inFlight_.fetch_sub(batch.size(), std::memory_order_relaxed);
  metrics_->recordBatch(batch.front().endpoint, batch.size(), latencies);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    InferenceResult res;
    res.values = std::move(values[i]);
    res.snapshotVersion = snap.version;
    res.batchSize = static_cast<long>(batch.size());
    res.queueMicros = microsBetween(batch[i].enqueuedAt, started);
    batch[i].promise.set_value(std::move(res));
  }
}

void InferenceServer::shutdown(ShutdownMode mode) {
  if (shutdownDone_.exchange(true)) return;
  accepting_.store(false, std::memory_order_release);
  batcher_.stop(mode == ShutdownMode::kDrain);
  for (auto& f : workerDone_) f.wait();
  // In kReject mode (or if a worker died), fail whatever never ran.
  for (auto& r : batcher_.takePending()) {
    metrics_->recordRejected(r.endpoint);
    r.promise.set_exception(std::make_exception_ptr(ShutdownError(
        "request rejected: server shut down before execution")));
  }
}

ServeMetrics::Report InferenceServer::metrics() const {
  ServeMetrics::Report rep = metrics_->report();
  rep.queueDepth = batcher_.depth();
  return rep;
}

}  // namespace artsci::serve

#include "serve/protocol.hpp"

#include <cstring>

#include "common/error.hpp"

namespace artsci::serve::proto {

namespace {

// Little-endian scalar packing. The payload's ml::Real values are copied
// byte-for-byte (every supported target is little-endian IEEE-754; the
// header helpers below keep the framing portable regardless).
void putU16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

void putU32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void putU64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t getU16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t getU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t getU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::vector<std::uint8_t> encodeFrame(MsgType type, std::uint64_t requestId,
                                      std::uint64_t meta, std::uint32_t aux,
                                      const void* payload,
                                      std::size_t payloadBytes) {
  std::vector<std::uint8_t> out(kHeaderBytes + payloadBytes);
  putU32(out.data(), kMagic);
  out[4] = kVersion;
  out[5] = static_cast<std::uint8_t>(type);
  putU16(out.data() + 6, 0);
  putU64(out.data() + 8, requestId);
  putU64(out.data() + 16, meta);
  putU32(out.data() + 24, aux);
  putU32(out.data() + 28, static_cast<std::uint32_t>(payloadBytes));
  if (payloadBytes > 0)
    std::memcpy(out.data() + kHeaderBytes, payload, payloadBytes);
  return out;
}

bool knownType(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(MsgType::kPredictSpectrum) &&
         t <= static_cast<std::uint8_t>(MsgType::kError);
}

}  // namespace

const char* errorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "BadRequest";
    case ErrorCode::kShed: return "Shed";
    case ErrorCode::kDeadlineExceeded: return "DeadlineExceeded";
    case ErrorCode::kShuttingDown: return "ShuttingDown";
    case ErrorCode::kInternal: return "Internal";
  }
  return "Unknown";
}

std::vector<std::uint8_t> encodeRequest(MsgType type, std::uint64_t requestId,
                                        std::uint64_t deadlineMicros,
                                        const std::vector<ml::Real>& values) {
  ARTSCI_EXPECTS_MSG(type == MsgType::kPredictSpectrum ||
                         type == MsgType::kInvertSpectrum,
                     "encodeRequest takes a request MsgType");
  return encodeFrame(type, requestId, deadlineMicros, 0, values.data(),
                     values.size() * sizeof(ml::Real));
}

std::vector<std::uint8_t> encodeReply(std::uint64_t requestId,
                                      std::uint64_t snapshotVersion,
                                      std::uint32_t batchSize,
                                      const std::vector<ml::Real>& values) {
  return encodeFrame(MsgType::kReply, requestId, snapshotVersion, batchSize,
                     values.data(), values.size() * sizeof(ml::Real));
}

std::vector<std::uint8_t> encodeError(std::uint64_t requestId, ErrorCode code,
                                      const std::string& message) {
  return encodeFrame(MsgType::kError, requestId, 0,
                     static_cast<std::uint32_t>(code), message.data(),
                     message.size());
}

FrameDecoder::FrameDecoder(std::size_t maxPayloadBytes)
    : maxPayload_(maxPayloadBytes) {
  ARTSCI_EXPECTS(maxPayloadBytes >= sizeof(ml::Real));
}

void FrameDecoder::fail(std::string why) {
  error_ = std::move(why);
  buffer_.clear();
  consumed_ = 0;
}

bool FrameDecoder::checkHeader(const std::uint8_t* h) {
  if (getU32(h) != kMagic) {
    fail("bad magic (not an ASV1 stream)");
    return false;
  }
  if (h[4] != kVersion) {
    fail("unsupported protocol version " + std::to_string(int(h[4])) +
         " (expected " + std::to_string(int(kVersion)) + ")");
    return false;
  }
  if (!knownType(h[5])) {
    fail("unknown message type " + std::to_string(int(h[5])));
    return false;
  }
  if (getU16(h + 6) != 0) {
    fail("nonzero reserved header bytes");
    return false;
  }
  const std::uint32_t payloadBytes = getU32(h + 28);
  if (payloadBytes > maxPayload_) {
    // Reject from the 4-byte length alone — the oversized payload is
    // never buffered, let alone allocated.
    fail("payload of " + std::to_string(payloadBytes) +
         " bytes exceeds the " + std::to_string(maxPayload_) + "-byte cap");
    return false;
  }
  const auto type = static_cast<MsgType>(h[5]);
  if (type != MsgType::kError && payloadBytes % sizeof(ml::Real) != 0) {
    fail("value payload of " + std::to_string(payloadBytes) +
         " bytes is not a whole number of reals");
    return false;
  }
  return true;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t n) {
  if (failed() || n == 0) return;
  // Compact lazily: drop fully-decoded prefix before appending so the
  // buffer stays bounded by one in-progress frame plus one read chunk.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + n);
}

bool FrameDecoder::next(Frame& out) {
  if (failed()) return false;
  // Validate the magic eagerly, from the first 4 bytes alone: a non-ASV1
  // stream (an HTTP request, say) is rejected at once instead of waiting
  // out a full header that will never arrive.
  if (buffered() >= 4 && getU32(buffer_.data() + consumed_) != kMagic) {
    fail("bad magic (not an ASV1 stream)");
    return false;
  }
  if (buffered() < kHeaderBytes) return false;
  const std::uint8_t* h = buffer_.data() + consumed_;
  if (!checkHeader(h)) return false;
  const std::uint32_t payloadBytes = getU32(h + 28);
  if (buffered() < kHeaderBytes + payloadBytes) return false;

  out.type = static_cast<MsgType>(h[5]);
  out.requestId = getU64(h + 8);
  out.meta = getU64(h + 16);
  out.aux = getU32(h + 24);
  out.values.clear();
  out.message.clear();
  const std::uint8_t* payload = h + kHeaderBytes;
  if (out.type == MsgType::kError) {
    out.message.assign(reinterpret_cast<const char*>(payload), payloadBytes);
  } else {
    out.values.resize(payloadBytes / sizeof(ml::Real));
    if (payloadBytes > 0)
      std::memcpy(out.values.data(), payload, payloadBytes);
  }
  consumed_ += kHeaderBytes + payloadBytes;
  return true;
}

}  // namespace artsci::serve::proto

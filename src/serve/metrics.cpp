#include "serve/metrics.hpp"

#include "common/error.hpp"

namespace artsci::serve {

ServeMetrics::ServeMetrics(std::size_t latencyWindow) : window_(latencyWindow) {
  ARTSCI_EXPECTS(latencyWindow >= 1);
}

void ServeMetrics::recordSubmitted(Endpoint e) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++slot(e).submitted;
}

void ServeMetrics::recordRejected(Endpoint e) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++slot(e).rejected;
}

void ServeMetrics::recordBatch(Endpoint e, std::size_t batchSize,
                               const std::vector<double>& latenciesMicros) {
  std::lock_guard<std::mutex> lock(mutex_);
  PerEndpoint& p = slot(e);
  ++p.batches;
  p.completed += batchSize;
  for (double l : latenciesMicros) {
    if (p.window.size() < window_) {
      p.window.push_back(l);
    } else {
      p.window[p.next] = l;
    }
    p.next = (p.next + 1) % window_;
  }
}

void ServeMetrics::recordEngineSwap() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++engineSwaps_;
}

ServeMetrics::EndpointStats ServeMetrics::summarize(const PerEndpoint& p) {
  EndpointStats s;
  s.submitted = p.submitted;
  s.completed = p.completed;
  s.rejected = p.rejected;
  s.batches = p.batches;
  s.meanBatchSize =
      p.batches > 0
          ? static_cast<double>(p.completed) / static_cast<double>(p.batches)
          : 0.0;
  s.latencyMicros = stats::latencySummary(p.window);
  return s;
}

ServeMetrics::Report ServeMetrics::report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Report r;
  r.predict = summarize(predict_);
  r.invert = summarize(invert_);
  r.engineSwaps = engineSwaps_;
  return r;
}

}  // namespace artsci::serve

#include "serve/metrics.hpp"

#include "common/error.hpp"

namespace artsci::serve {

ServeMetrics::ServeMetrics(std::size_t latencyWindow)
    : registry_(std::make_unique<obs::Registry>()), window_(latencyWindow) {
  ARTSCI_EXPECTS(latencyWindow >= 1);
  bind(predict_, "serve.predict");
  bind(invert_, "serve.invert");
  engineSwaps_ = &registry_->counter("serve.engine_swaps");
  queueDepth_ = &registry_->gauge("serve.queue_depth");
}

void ServeMetrics::bind(PerEndpoint& p, const std::string& prefix) {
  p.submitted = &registry_->counter(prefix + ".submitted");
  p.completed = &registry_->counter(prefix + ".completed");
  p.rejected = &registry_->counter(prefix + ".rejected");
  p.shed = &registry_->counter(prefix + ".shed");
  p.deadlineTimeouts = &registry_->counter(prefix + ".deadline_timeouts");
  p.batches = &registry_->counter(prefix + ".batches");
  p.latencyUs = &registry_->histogram(prefix + ".latency_us");
}

void ServeMetrics::recordSubmitted(Endpoint e) { slot(e).submitted->add(); }

void ServeMetrics::recordRejected(Endpoint e) { slot(e).rejected->add(); }

void ServeMetrics::recordShed(Endpoint e) { slot(e).shed->add(); }

void ServeMetrics::recordDeadlineTimeout(Endpoint e) {
  slot(e).deadlineTimeouts->add();
}

void ServeMetrics::recordBatch(Endpoint e, std::size_t batchSize,
                               const std::vector<double>& latenciesMicros) {
  PerEndpoint& p = slot(e);
  p.batches->add();
  p.completed->add(batchSize);
  for (double l : latenciesMicros) p.latencyUs->observe(l);
  std::lock_guard<std::mutex> lock(mutex_);
  for (double l : latenciesMicros) {
    if (p.window.size() < window_) {
      p.window.push_back(l);
    } else {
      p.window[p.next] = l;
    }
    p.next = (p.next + 1) % window_;
  }
}

void ServeMetrics::recordEngineSwap() { engineSwaps_->add(); }

void ServeMetrics::recordQueueDepth(std::size_t depth) {
  queueDepth_->set(static_cast<double>(depth));
}

ServeMetrics::EndpointStats ServeMetrics::summarize(
    const PerEndpoint& p) const {
  EndpointStats s;
  s.submitted = p.submitted->value();
  s.completed = p.completed->value();
  s.rejected = p.rejected->value();
  s.shed = p.shed->value();
  s.deadlineTimeouts = p.deadlineTimeouts->value();
  s.batches = p.batches->value();
  s.meanBatchSize =
      s.batches > 0
          ? static_cast<double>(s.completed) / static_cast<double>(s.batches)
          : 0.0;
  s.latencyMicros = stats::latencySummary(p.window);
  return s;
}

ServeMetrics::Report ServeMetrics::report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Report r;
  r.predict = summarize(predict_);
  r.invert = summarize(invert_);
  r.engineSwaps = engineSwaps_->value();
  return r;
}

}  // namespace artsci::serve

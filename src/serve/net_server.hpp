/// \file net_server.hpp
/// The TCP serving front end: an epoll-based, dependency-free network
/// server speaking the ASV1 length-prefixed binary protocol
/// (protocol.hpp), sharding decoded requests across N MicroBatcher +
/// InferenceEngine workers (one InferenceServer of one worker per shard,
/// optionally pinned to distinct cores), with admission control and
/// deadline-based load shedding on every shard's bounded queue. Dispatch
/// is least-loaded by default: each request goes to the shard with the
/// shallowest queue (ties broken by a rotating hint so idle shards share
/// work evenly); a long request can no longer head-of-line-block the
/// short requests a fixed rotation would have put behind it.
///
/// Data flow:
///
///   client conns ──► epoll I/O thread ──► FrameDecoder per connection
///        ▲                                   │ least-loaded dispatch
///        │                                   ▼
///        │                     shard k: MicroBatcher ─► worker (engine)
///        │                                   │ std::future
///        │                                   ▼
///        └────────── shard k collector thread (encodes reply frames,
///                    per-connection write lock, FIFO per shard)
///
/// Every decoded request produces exactly one reply frame — a kReply with
/// the result, or a kError carrying why (shed, deadline expired, bad
/// input, shutdown). Sheds and timeouts are never silently dropped, and
/// their counters flow into the shared obs::Registry-backed ServeMetrics
/// ("serve.<endpoint>.shed" / ".deadline_timeouts", "net.*").
///
/// Determinism note: sharding does not break the serve layer's replay
/// guarantees — each shard batches independently in FIFO order, so a
/// single-shard server's replies are bit-identical to in-process
/// InferenceServer serving of the same request stream, and any shard
/// count preserves the one-snapshot-per-response hot-swap invariant.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace artsci::serve {

/// How dispatchFrame picks a shard for each decoded request.
enum class ShardDispatch {
  /// Route to the shard with the shallowest batcher queue, scanning from
  /// a rotating start so ties spread evenly. Under skewed request sizes
  /// (a few expensive inversions among cheap predictions) this keeps
  /// short requests off the shard digesting a long one, collapsing their
  /// tail latency versus a fixed rotation.
  kLeastLoaded,
  /// Legacy fixed rotation, kept for A/B comparison and as the baseline
  /// the p99 test measures against.
  kRoundRobin,
};

/// Pure shard-selection kernel (unit-testable without sockets): returns
/// the index with the minimum depth, scanning the `count` depths starting
/// from `hint % count` and keeping the first minimum encountered — i.e.
/// ties go to the earliest shard in rotation order from the hint.
std::size_t pickLeastLoadedShard(const std::size_t* depths, std::size_t count,
                                 std::uint64_t hint);

struct NetServerConfig {
  std::string host = "127.0.0.1";  ///< bind address
  std::uint16_t port = 0;          ///< 0 = ephemeral; NetServer::port() tells
  std::size_t shards = 1;          ///< MicroBatcher+engine workers
  BatchPolicy policy;              ///< per-shard batching policy
  ShardDispatch dispatch = ShardDispatch::kLeastLoaded;
  /// Pin shard k's worker to CPU slot k of the process's allowed set.
  bool pinCores = false;
  /// Deadline applied to requests that carry none on the wire (0 = none).
  std::uint64_t defaultDeadlineMicros = 0;
  /// Per-frame payload cap enforced by the decoder before any allocation.
  std::size_t maxPayloadBytes = proto::kDefaultMaxPayloadBytes;
  std::uint64_t seed = 0xced5ULL;  ///< base seed for posterior-draw RNGs
  /// Restart crashed shard workers. A supervisor thread polls shard
  /// health; when a worker died (simulated via
  /// FAULT_POINT("serve.worker_batch")) it builds a fresh InferenceServer
  /// from the registry snapshot, swaps it in, and fails the dead one's
  /// queued requests with typed kShuttingDown errors — every request
  /// still gets exactly one reply, and the shard returns to service
  /// within ~supervisorPollMillis. Each restart bumps the
  /// `serve.worker_restarts` counter.
  bool superviseWorkers = true;
  std::uint64_t supervisorPollMillis = 2;
};

/// The network front end. Construction binds, listens, and starts the I/O
/// thread plus the shard workers; stop() (or the destructor) drains: every
/// request dispatched to a shard is answered before sockets close.
class NetServer {
 public:
  NetServer(NetServerConfig cfg, std::shared_ptr<ModelRegistry> registry);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The bound TCP port (resolves port 0 to the kernel-assigned one).
  std::uint16_t port() const { return port_; }

  /// Stop accepting and reading, drain every dispatched request through
  /// its shard, flush all replies, then close every connection.
  /// Idempotent.
  void stop();

  /// Shard workers replaced by the supervisor so far (also exported as
  /// the `serve.worker_restarts` counter).
  std::size_t workerRestarts() const;

  /// Aggregated metrics across all shards (shared ServeMetrics; queue
  /// depth summed over the shard batchers).
  ServeMetrics::Report metrics() const;
  /// The shared metrics sink (serve.* and net.* counters; toJson()).
  const ServeMetrics& serveMetrics() const { return *metrics_; }

  const NetServerConfig& config() const { return cfg_; }

 private:
  /// One live client connection. The fd closes when the last reference
  /// drops, so collector threads mid-write never race a reused fd.
  struct Connection {
    ~Connection();
    int fd = -1;
    std::uint64_t id = 0;
    proto::FrameDecoder decoder{proto::kDefaultMaxPayloadBytes};
    std::mutex writeMutex;       ///< serializes reply writes
    std::atomic<bool> closed{false};

    explicit Connection(std::size_t maxPayload) : decoder(maxPayload) {}
  };

  /// A dispatched request awaiting its future in a shard's FIFO.
  struct PendingReply {
    std::shared_ptr<Connection> conn;
    std::uint64_t requestId = 0;
    std::future<InferenceResult> future;
  };

  /// One shard: a single-worker InferenceServer plus the collector that
  /// turns resolved futures into wire frames in dispatch order. The
  /// server pointer is swapped by the supervisor after a worker crash;
  /// `serverMutex` guards the pointer itself (the InferenceServer is
  /// internally thread-safe once you hold a reference).
  struct Shard {
    std::shared_ptr<InferenceServer> server;  ///< guarded by serverMutex
    mutable std::mutex serverMutex;
    std::size_t restarts = 0;  ///< guarded by serverMutex
    std::thread collector;
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<PendingReply> pending;
    bool stopped = false;
  };

  std::shared_ptr<InferenceServer> makeShardServer(std::size_t index,
                                                   std::size_t generation);
  static std::shared_ptr<InferenceServer> shardServer(const Shard& shard) {
    std::lock_guard<std::mutex> lock(shard.serverMutex);
    return shard.server;
  }
  void supervisorLoop();

  void ioLoop();
  void handleReadable(const std::shared_ptr<Connection>& conn);
  void dispatchFrame(const std::shared_ptr<Connection>& conn,
                     proto::Frame&& frame);
  /// Applies cfg_.dispatch: queue-depth scan (kLeastLoaded) or fixed
  /// rotation (kRoundRobin). Called from the single I/O thread.
  std::size_t pickShard();
  void collectorLoop(Shard& shard);
  void closeConnection(std::uint64_t connId);
  /// Blocking write of a full frame (poll()s out EAGAIN); false once the
  /// peer is gone.
  static bool writeFrame(Connection& conn,
                         const std::vector<std::uint8_t>& bytes);

  NetServerConfig cfg_;
  std::shared_ptr<ModelRegistry> registry_;
  std::shared_ptr<ServeMetrics> metrics_;

  int listenFd_ = -1;
  int epollFd_ = -1;
  int wakeFd_ = -1;  ///< eventfd: stop() kicks the epoll wait
  std::uint16_t port_ = 0;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> nextShard_{0};
  std::vector<std::size_t> depthScratch_;  ///< I/O-thread-only, preallocated

  std::unordered_map<std::uint64_t, std::shared_ptr<Connection>> conns_;
  std::unordered_map<int, std::uint64_t> fdToConn_;
  std::uint64_t nextConnId_ = 1;

  std::thread ioThread_;
  std::thread supervisorThread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};

  // Net-layer counters (live in the shared metrics registry).
  obs::Counter* connsAccepted_ = nullptr;
  obs::Counter* connsClosed_ = nullptr;
  obs::Counter* framesIn_ = nullptr;
  obs::Counter* protocolErrors_ = nullptr;
  obs::Counter* repliesOut_ = nullptr;
  obs::Counter* errorsOut_ = nullptr;
  obs::Counter* workerRestarts_ = nullptr;
  obs::Gauge* openConns_ = nullptr;
};

}  // namespace artsci::serve

/// \file protocol.hpp
/// The length-prefixed binary wire protocol of the TCP serving front end
/// (net_server.hpp). Dependency-free and fixed-layout: every message is a
/// 32-byte little-endian header followed by a length-prefixed payload, so a
/// decoder needs no lookahead beyond the declared length and a client can
/// pipeline frames back-to-back on one connection.
///
/// Frame layout (all integers little-endian):
///
/// | offset | size | field        | meaning                                  |
/// |-------:|-----:|--------------|------------------------------------------|
/// |      0 |    4 | magic        | 0x31565341 ("ASV1")                      |
/// |      4 |    1 | version      | kVersion (1)                             |
/// |      5 |    1 | type         | MsgType                                  |
/// |      6 |    2 | reserved     | must be 0                                |
/// |      8 |    8 | requestId    | client-chosen, echoed verbatim in replies |
/// |     16 |    8 | meta         | request: deadline in us (0 = none);      |
/// |        |      |              | reply: snapshot version; error: 0        |
/// |     24 |    4 | aux          | reply: batch size; error: ErrorCode      |
/// |     28 |    4 | payloadBytes | payload length (bounded by the decoder)  |
/// |     32 |    n | payload      | request/reply: packed ml::Real values;   |
/// |        |      |              | error: UTF-8 message                     |
///
/// The FrameDecoder consumes a raw byte stream incrementally (partial reads,
/// torn headers, pipelined frames) and validates the header — magic, version,
/// type, reserved bytes, payload bound — *before* allocating payload storage,
/// so a garbage or hostile length prefix cannot blow up allocation. A
/// malformed header poisons the decoder: the connection owner sends one
/// kError reply and closes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/tensor.hpp"

namespace artsci::serve::proto {

inline constexpr std::uint32_t kMagic = 0x31565341u;  ///< "ASV1"
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 32;
/// Default payload cap: a 64k-point cloud (64k x 6 doubles) with headroom.
inline constexpr std::size_t kDefaultMaxPayloadBytes = 8u << 20;

/// Message kinds on the wire. Requests map 1:1 onto serve::Endpoint.
enum class MsgType : std::uint8_t {
  kPredictSpectrum = 1,  ///< request: payload = flattened [points x 6] cloud
  kInvertSpectrum = 2,   ///< request: payload = spectrum [spectrumDim]
  kReply = 3,            ///< success: payload = result values
  kError = 4,            ///< failure: payload = UTF-8 message, aux = ErrorCode
};

/// Why a request failed (ErrorFrame::code / the aux field of kError).
enum class ErrorCode : std::uint32_t {
  kBadRequest = 1,        ///< malformed frame or input validation failure
  kShed = 2,              ///< admission control dropped it (queue full)
  kDeadlineExceeded = 3,  ///< expired before execution started
  kShuttingDown = 4,      ///< server stopping; request not executed
  kInternal = 5,          ///< execution failed (no model published, ...)
};

/// Human-readable error-code label for logs and test diagnostics.
const char* errorCodeName(ErrorCode code);

/// One decoded message. `values` carries the payload of request/reply
/// frames; `message` the payload of error frames.
struct Frame {
  MsgType type = MsgType::kReply;
  std::uint64_t requestId = 0;
  std::uint64_t meta = 0;  ///< deadline us / snapshot version (see layout)
  std::uint32_t aux = 0;   ///< batch size / ErrorCode (see layout)
  std::vector<ml::Real> values;
  std::string message;

  bool isRequest() const {
    return type == MsgType::kPredictSpectrum ||
           type == MsgType::kInvertSpectrum;
  }
};

/// Serialize a request frame (deadlineMicros 0 = no deadline).
std::vector<std::uint8_t> encodeRequest(MsgType type, std::uint64_t requestId,
                                        std::uint64_t deadlineMicros,
                                        const std::vector<ml::Real>& values);

/// Serialize a success reply.
std::vector<std::uint8_t> encodeReply(std::uint64_t requestId,
                                      std::uint64_t snapshotVersion,
                                      std::uint32_t batchSize,
                                      const std::vector<ml::Real>& values);

/// Serialize an error reply.
std::vector<std::uint8_t> encodeError(std::uint64_t requestId, ErrorCode code,
                                      const std::string& message);

/// Incremental decoder over a raw byte stream. Feed arbitrary chunks (torn
/// anywhere, multiple frames per chunk); poll next() for complete frames.
/// After a header-level protocol violation the decoder enters a sticky
/// error state (error() non-empty) and next() returns false forever — the
/// stream has lost framing and the connection must close.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t maxPayloadBytes = kDefaultMaxPayloadBytes);

  /// Append raw bytes. Buffers at most one in-progress frame (header +
  /// declared payload); in the error state input is discarded.
  void feed(const std::uint8_t* data, std::size_t n);

  /// Pop the next complete frame into `out`. False = need more bytes, or
  /// the decoder is poisoned (check error()).
  bool next(Frame& out);

  /// Non-empty once the stream violated the protocol (sticky).
  const std::string& error() const { return error_; }
  bool failed() const { return !error_.empty(); }

  /// Bytes buffered but not yet decoded (bounded by header + max payload).
  std::size_t buffered() const { return buffer_.size() - consumed_; }

  std::size_t maxPayloadBytes() const { return maxPayload_; }

 private:
  void fail(std::string why);
  /// Validate the 32-byte header at `h`; false poisons the decoder.
  bool checkHeader(const std::uint8_t* h);

  std::size_t maxPayload_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  ///< prefix of buffer_ already decoded
  std::string error_;
};

}  // namespace artsci::serve::proto

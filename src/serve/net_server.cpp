#include "serve/net_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <limits>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/trace.hpp"

namespace artsci::serve {

namespace {

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ARTSCI_CHECK_MSG(flags >= 0, "fcntl(F_GETFL): " << std::strerror(errno));
  ARTSCI_CHECK_MSG(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                   "fcntl(F_SETFL): " << std::strerror(errno));
}

void epollAdd(int epollFd, int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  ARTSCI_CHECK_MSG(::epoll_ctl(epollFd, EPOLL_CTL_ADD, fd, &ev) == 0,
                   "epoll_ctl(ADD): " << std::strerror(errno));
}

}  // namespace

std::size_t pickLeastLoadedShard(const std::size_t* depths, std::size_t count,
                                 std::uint64_t hint) {
  const std::size_t start = static_cast<std::size_t>(hint % count);
  std::size_t best = start;
  std::size_t bestDepth = depths[start];
  for (std::size_t i = 1; i < count && bestDepth > 0; ++i) {
    const std::size_t k = (start + i) % count;
    if (depths[k] < bestDepth) {  // strict less: ties keep the earlier shard
      best = k;
      bestDepth = depths[k];
    }
  }
  return best;
}

NetServer::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

NetServer::NetServer(NetServerConfig cfg,
                     std::shared_ptr<ModelRegistry> registry)
    : cfg_(std::move(cfg)),
      registry_(std::move(registry)),
      metrics_(std::make_shared<ServeMetrics>()) {
  ARTSCI_EXPECTS_MSG(registry_ != nullptr, "net server needs a registry");
  ARTSCI_EXPECTS(cfg_.shards >= 1);

  obs::Registry& reg = metrics_->registry();
  connsAccepted_ = &reg.counter("net.connections_accepted");
  connsClosed_ = &reg.counter("net.connections_closed");
  framesIn_ = &reg.counter("net.frames_in");
  protocolErrors_ = &reg.counter("net.protocol_errors");
  repliesOut_ = &reg.counter("net.replies_out");
  errorsOut_ = &reg.counter("net.errors_out");
  workerRestarts_ = &reg.counter("serve.worker_restarts");
  openConns_ = &reg.gauge("net.open_connections");

  // --- listen socket ------------------------------------------------------
  listenFd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ARTSCI_CHECK_MSG(listenFd_ >= 0, "socket(): " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  ARTSCI_CHECK_MSG(
      ::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) == 1,
      "bad bind address '" << cfg_.host << "'");
  ARTSCI_CHECK_MSG(::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)) == 0,
                   "bind(" << cfg_.host << ":" << cfg_.port
                           << "): " << std::strerror(errno));
  ARTSCI_CHECK_MSG(::listen(listenFd_, 128) == 0,
                   "listen(): " << std::strerror(errno));
  socklen_t len = sizeof(addr);
  ARTSCI_CHECK(::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr),
                             &len) == 0);
  port_ = ntohs(addr.sin_port);
  setNonBlocking(listenFd_);

  // --- epoll + wakeup -----------------------------------------------------
  epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
  ARTSCI_CHECK_MSG(epollFd_ >= 0, "epoll_create1: " << std::strerror(errno));
  wakeFd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  ARTSCI_CHECK_MSG(wakeFd_ >= 0, "eventfd: " << std::strerror(errno));
  epollAdd(epollFd_, listenFd_, EPOLLIN);
  epollAdd(epollFd_, wakeFd_, EPOLLIN);

  // --- shards -------------------------------------------------------------
  shards_.reserve(cfg_.shards);
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->server = makeShardServer(s, 0);
    shards_.push_back(std::move(shard));
  }
  depthScratch_.resize(shards_.size(), 0);
  for (auto& shard : shards_)
    shard->collector = std::thread([this, &shard] { collectorLoop(*shard); });

  if (cfg_.superviseWorkers)
    supervisorThread_ = std::thread([this] { supervisorLoop(); });

  ioThread_ = std::thread([this] { ioLoop(); });
  log::info("serve.net", "listening on ", cfg_.host, ":", port_, " with ",
            cfg_.shards, " shard(s)");
}

std::shared_ptr<InferenceServer> NetServer::makeShardServer(
    std::size_t index, std::size_t generation) {
  ServerConfig scfg;
  scfg.policy = cfg_.policy;
  scfg.workers = 1;
  // Distinct seed stream per shard so posterior draws never correlate
  // across shards; a restarted incarnation gets its own stream too.
  scfg.seed = cfg_.seed + 0x5bf03635ULL * (index + 1) +
              0x9e3779b9ULL * generation;
  scfg.pinCoreBase = cfg_.pinCores ? static_cast<int>(index) : -1;
  scfg.metrics = metrics_;
  return std::make_shared<InferenceServer>(scfg, registry_);
}

void NetServer::supervisorLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(cfg_.supervisorPollMillis));
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& shard = *shards_[s];
      const std::shared_ptr<InferenceServer> current = shardServer(shard);
      if (current->healthy()) continue;
      // Replace the crashed incarnation. Build the successor first so the
      // shard is never without a server, then retire the corpse: kReject
      // fails its queued requests with ShutdownError, which the collector
      // (still holding their futures) turns into typed kShuttingDown
      // frames — exactly one reply per request, even across the crash.
      const std::size_t generation = shard.restarts + 1;
      auto replacement = makeShardServer(s, generation);
      {
        std::lock_guard<std::mutex> lock(shard.serverMutex);
        shard.server = replacement;
        shard.restarts = generation;
      }
      current->shutdown(InferenceServer::ShutdownMode::kReject);
      workerRestarts_->add();
      log::warn("serve.net", "shard ", s,
                " worker crashed; restarted (generation ", generation, ")");
    }
  }
}

std::size_t NetServer::workerRestarts() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->serverMutex);
    total += shard->restarts;
  }
  return total;
}

NetServer::~NetServer() { stop(); }

void NetServer::stop() {
  if (stopped_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wakeFd_, &one, sizeof(one));
  if (ioThread_.joinable()) ioThread_.join();
  // Supervisor before shard shutdown: no restarts may race the drain.
  if (supervisorThread_.joinable()) supervisorThread_.join();

  // Drain order: every request already dispatched to a shard resolves its
  // future (kDrain), then each collector flushes its FIFO of replies —
  // only after that do connections close. Nothing accepted is lost.
  for (auto& shard : shards_)
    shardServer(*shard)->shutdown(InferenceServer::ShutdownMode::kDrain);
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->stopped = true;
    }
    shard->cv.notify_all();
  }
  for (auto& shard : shards_)
    if (shard->collector.joinable()) shard->collector.join();

  for (auto& [id, conn] : conns_) conn->closed.store(true);
  conns_.clear();  // destructors close the fds
  fdToConn_.clear();
  openConns_->set(0);
  if (listenFd_ >= 0) ::close(listenFd_);
  if (epollFd_ >= 0) ::close(epollFd_);
  if (wakeFd_ >= 0) ::close(wakeFd_);
  listenFd_ = epollFd_ = wakeFd_ = -1;
}

ServeMetrics::Report NetServer::metrics() const {
  ServeMetrics::Report rep = metrics_->report();
  rep.queueDepth = 0;
  for (const auto& shard : shards_)
    rep.queueDepth += shardServer(*shard)->metrics().queueDepth;
  return rep;
}

void NetServer::ioLoop() {
  std::array<epoll_event, 64> events;
  std::vector<std::uint8_t> buf(1 << 16);
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epollFd_, events.data(),
                               static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      log::warn("serve.net", "epoll_wait: ", std::strerror(errno),
                ", exiting");
      return;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wakeFd_) continue;  // stop() kicked us; loop condition exits
      if (fd == listenFd_) {
        for (;;) {
          const int cfd = ::accept4(listenFd_, nullptr, nullptr,
                                    SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (cfd < 0) break;  // EAGAIN: accepted everything pending
          const int one = 1;
          ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          auto conn = std::make_shared<Connection>(cfg_.maxPayloadBytes);
          conn->fd = cfd;
          conn->id = nextConnId_++;
          conns_.emplace(conn->id, conn);
          fdToConn_.emplace(cfd, conn->id);
          epollAdd(epollFd_, cfd, EPOLLIN);
          connsAccepted_->add();
          openConns_->set(static_cast<double>(conns_.size()));
        }
        continue;
      }
      const auto it = fdToConn_.find(fd);
      if (it == fdToConn_.end()) continue;  // closed earlier this wake
      // Copy the shared_ptr: handleReadable may close the connection and
      // erase the map entry a reference would still point into.
      const std::shared_ptr<Connection> conn = conns_.at(it->second);
      handleReadable(conn);
    }
  }
}

void NetServer::handleReadable(const std::shared_ptr<Connection>& conn) {
  TRACE_SCOPE("serve", "net_read");
  std::uint8_t buf[1 << 16];
  bool eof = false;
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->decoder.feed(buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    eof = true;  // ECONNRESET and friends
    break;
  }

  proto::Frame frame;
  while (conn->decoder.next(frame)) {
    framesIn_->add();
    dispatchFrame(conn, std::move(frame));
  }
  if (conn->decoder.failed()) {
    // Framing is gone: one best-effort error reply, then hang up.
    protocolErrors_->add();
    errorsOut_->add();
    writeFrame(*conn, proto::encodeError(0, proto::ErrorCode::kBadRequest,
                                         conn->decoder.error()));
    closeConnection(conn->id);
    return;
  }
  if (eof) closeConnection(conn->id);
}

void NetServer::dispatchFrame(const std::shared_ptr<Connection>& conn,
                              proto::Frame&& frame) {
  if (!frame.isRequest()) {
    // Clients must not send reply frames; treat as a protocol violation.
    protocolErrors_->add();
    errorsOut_->add();
    writeFrame(*conn,
               proto::encodeError(frame.requestId,
                                  proto::ErrorCode::kBadRequest,
                                  "only request frames are accepted"));
    closeConnection(conn->id);
    return;
  }
  const bool isPredict = frame.type == proto::MsgType::kPredictSpectrum;
  // Validate at the edge so garbage payloads never enter serve accounting.
  const bool valid =
      isPredict ? (!frame.values.empty() && frame.values.size() % 6 == 0)
                : !frame.values.empty();
  if (!valid) {
    errorsOut_->add();
    writeFrame(*conn,
               proto::encodeError(
                   frame.requestId, proto::ErrorCode::kBadRequest,
                   isPredict ? "PredictSpectrum payload must be a non-empty "
                               "flattened [points x 6] cloud"
                             : "InvertSpectrum payload must be a non-empty "
                               "spectrum"));
    return;
  }
  if (stopping_.load(std::memory_order_acquire)) {
    errorsOut_->add();
    writeFrame(*conn, proto::encodeError(frame.requestId,
                                         proto::ErrorCode::kShuttingDown,
                                         "server is stopping"));
    return;
  }
  const std::uint64_t deadline =
      frame.meta > 0 ? frame.meta : cfg_.defaultDeadlineMicros;
  Shard& shard = *shards_[pickShard()];
  // Pin this request to one incarnation: copy the pointer once so a
  // supervisor swap mid-dispatch cannot split submit and reply routing.
  const std::shared_ptr<InferenceServer> server = shardServer(shard);
  PendingReply p;
  p.conn = conn;
  p.requestId = frame.requestId;
  p.future = isPredict
                 ? server->predictSpectrum(std::move(frame.values), deadline)
                 : server->invertSpectrum(std::move(frame.values), deadline);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.pending.push_back(std::move(p));
  }
  shard.cv.notify_one();
}

std::size_t NetServer::pickShard() {
  const std::uint64_t hint =
      nextShard_.fetch_add(1, std::memory_order_relaxed);
  if (shards_.size() == 1 || cfg_.dispatch == ShardDispatch::kRoundRobin)
    return static_cast<std::size_t>(hint % shards_.size());
  // Snapshot the per-shard queue depths (the gauges the batchers already
  // maintain), then pick the shallowest; the rotating hint both spreads
  // ties and keeps the scan O(shards) worst case.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::shared_ptr<InferenceServer> srv = shardServer(*shards_[s]);
    // An unhealthy shard (worker crashed, supervisor restart pending) is
    // routed around: give it the worst possible depth so least-loaded
    // dispatch only picks it when every shard is down.
    depthScratch_[s] = srv->healthy() ? srv->queueDepth()
                                      : std::numeric_limits<std::size_t>::max();
  }
  return pickLeastLoadedShard(depthScratch_.data(), depthScratch_.size(),
                              hint);
}

void NetServer::collectorLoop(Shard& shard) {
  for (;;) {
    PendingReply p;
    {
      std::unique_lock<std::mutex> lock(shard.mutex);
      shard.cv.wait(lock,
                    [&] { return shard.stopped || !shard.pending.empty(); });
      if (shard.pending.empty()) return;  // stopped and fully flushed
      p = std::move(shard.pending.front());
      shard.pending.pop_front();
    }
    std::vector<std::uint8_t> bytes;
    try {
      InferenceResult res = p.future.get();
      bytes = proto::encodeReply(p.requestId, res.snapshotVersion,
                                 static_cast<std::uint32_t>(res.batchSize),
                                 res.values);
      repliesOut_->add();
    } catch (const ShedError& e) {
      bytes = proto::encodeError(p.requestId, proto::ErrorCode::kShed,
                                 e.what());
      errorsOut_->add();
    } catch (const DeadlineError& e) {
      bytes = proto::encodeError(p.requestId,
                                 proto::ErrorCode::kDeadlineExceeded,
                                 e.what());
      errorsOut_->add();
    } catch (const ShutdownError& e) {
      bytes = proto::encodeError(p.requestId,
                                 proto::ErrorCode::kShuttingDown, e.what());
      errorsOut_->add();
    } catch (const std::exception& e) {
      bytes = proto::encodeError(p.requestId, proto::ErrorCode::kInternal,
                                 e.what());
      errorsOut_->add();
    }
    writeFrame(*p.conn, bytes);
  }
}

void NetServer::closeConnection(std::uint64_t connId) {
  const auto it = conns_.find(connId);
  if (it == conns_.end()) return;
  const std::shared_ptr<Connection>& conn = it->second;
  conn->closed.store(true);
  ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  fdToConn_.erase(conn->fd);
  conns_.erase(it);  // fd closes when in-flight replies drop the last ref
  connsClosed_->add();
  openConns_->set(static_cast<double>(conns_.size()));
}

bool NetServer::writeFrame(Connection& conn,
                           const std::vector<std::uint8_t>& bytes) {
  std::lock_guard<std::mutex> lock(conn.writeMutex);
  std::size_t off = 0;
  int stalls = 0;
  while (off < bytes.size()) {
    if (conn.closed.load(std::memory_order_acquire)) return false;
    const ssize_t n = ::send(conn.fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      stalls = 0;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Backpressure: the peer is slow. Wait for drainage, but give up on
      // a peer that stops reading entirely (~5 s) so shutdown can't hang.
      pollfd pfd{conn.fd, POLLOUT, 0};
      ::poll(&pfd, 1, 100);
      if (++stalls >= 50) {
        conn.closed.store(true);
        return false;
      }
      continue;
    }
    conn.closed.store(true);  // EPIPE / ECONNRESET: peer is gone
    return false;
  }
  return true;
}

}  // namespace artsci::serve

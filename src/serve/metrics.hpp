/// \file metrics.hpp
/// Per-endpoint serving metrics: request accounting (submitted / completed
/// / rejected), batch-formation efficiency, and tail latency via
/// stats::LatencySummary over a sliding window of recent requests.
///
/// Counts live in a per-instance obs::Registry ("serve.predict.submitted",
/// "serve.invert.rejected", ..., "serve.engine_swaps", gauge
/// "serve.queue_depth", histograms "serve.<endpoint>.latency_us") — the
/// record path is the registry's lock-free sharded counters, so workers
/// never contend with a report() in flight. The registry is instance-owned,
/// not global: benches build several servers in sequence and each server's
/// report must start from zero. Only the exact-percentile latency window
/// keeps a mutex (a ring of raw samples has no lock-free aggregation).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "obs/metrics.hpp"
#include "serve/batcher.hpp"

namespace artsci::serve {

class ServeMetrics {
 public:
  /// `latencyWindow` bounds the per-endpoint latency sample (ring buffer):
  /// percentiles describe the most recent window, and a long-running
  /// server's metrics stay O(window) in memory.
  explicit ServeMetrics(std::size_t latencyWindow = 1 << 16);

  void recordSubmitted(Endpoint e);
  void recordRejected(Endpoint e);
  /// Admission control dropped the request (queue at capacity, or the
  /// deadline was already expired on arrival) — never entered the queue.
  void recordShed(Endpoint e);
  /// The request's deadline expired while it sat in the queue; it was
  /// swept out before batching and its promise failed.
  void recordDeadlineTimeout(Endpoint e);
  /// One executed micro-batch: its size and the submit-to-completion
  /// latency (microseconds) of each member.
  void recordBatch(Endpoint e, std::size_t batchSize,
                   const std::vector<double>& latenciesMicros);
  /// A worker (re)built its execution engine against a new snapshot
  /// (counts the initial build too).
  void recordEngineSwap();
  /// Instantaneous batcher depth (the server samples it on submit).
  void recordQueueDepth(std::size_t depth);

  struct EndpointStats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t shed = 0;              ///< dropped by admission control
    std::uint64_t deadlineTimeouts = 0;  ///< expired while queued
    std::uint64_t batches = 0;
    double meanBatchSize = 0;  ///< completed / batches
    stats::LatencySummary latencyMicros;  ///< over the sliding window
  };

  struct Report {
    EndpointStats predict;
    EndpointStats invert;
    std::uint64_t engineSwaps = 0;
    std::size_t queueDepth = 0;  ///< filled in by the server
  };

  Report report() const;

  /// The backing registry (JSON export, step reports). Counters are
  /// cumulative totals; the latency histograms are the coarse power-of-2
  /// registry view — exact window percentiles come from report().
  const obs::Registry& registry() const { return *registry_; }
  /// Mutable registry access so co-located subsystems (the TCP front end's
  /// connection/frame counters) share one metrics namespace and JSON dump.
  obs::Registry& registry() { return *registry_; }

  /// Registry snapshot as JSON — every serve.* counter ("serve.predict.
  /// shed", "serve.invert.deadline_timeouts", ...), gauge, and histogram.
  std::string toJson() const { return registry_->toJson(); }

 private:
  struct PerEndpoint {
    obs::Counter* submitted = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* deadlineTimeouts = nullptr;
    obs::Counter* batches = nullptr;
    obs::Histogram* latencyUs = nullptr;
    std::vector<double> window;  ///< latency ring buffer (mutex_)
    std::size_t next = 0;
  };

  void bind(PerEndpoint& p, const std::string& prefix);
  PerEndpoint& slot(Endpoint e) {
    return e == Endpoint::kPredictSpectrum ? predict_ : invert_;
  }
  EndpointStats summarize(const PerEndpoint& p) const;

  std::unique_ptr<obs::Registry> registry_;
  obs::Counter* engineSwaps_ = nullptr;
  obs::Gauge* queueDepth_ = nullptr;
  mutable std::mutex mutex_;  ///< guards the latency windows only
  std::size_t window_;
  PerEndpoint predict_, invert_;
};

}  // namespace artsci::serve

/// \file metrics.hpp
/// Per-endpoint serving metrics: request accounting (submitted / completed
/// / rejected), batch-formation efficiency, and tail latency via
/// stats::LatencySummary over a sliding window of recent requests.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/stats.hpp"
#include "serve/batcher.hpp"

namespace artsci::serve {

class ServeMetrics {
 public:
  /// `latencyWindow` bounds the per-endpoint latency sample (ring buffer):
  /// percentiles describe the most recent window, and a long-running
  /// server's metrics stay O(window) in memory.
  explicit ServeMetrics(std::size_t latencyWindow = 1 << 16);

  void recordSubmitted(Endpoint e);
  void recordRejected(Endpoint e);
  /// One executed micro-batch: its size and the submit-to-completion
  /// latency (microseconds) of each member.
  void recordBatch(Endpoint e, std::size_t batchSize,
                   const std::vector<double>& latenciesMicros);
  /// A worker (re)built its execution engine against a new snapshot
  /// (counts the initial build too).
  void recordEngineSwap();

  struct EndpointStats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t batches = 0;
    double meanBatchSize = 0;  ///< completed / batches
    stats::LatencySummary latencyMicros;  ///< over the sliding window
  };

  struct Report {
    EndpointStats predict;
    EndpointStats invert;
    std::uint64_t engineSwaps = 0;
    std::size_t queueDepth = 0;  ///< filled in by the server
  };

  Report report() const;

 private:
  struct PerEndpoint {
    std::uint64_t submitted = 0, completed = 0, rejected = 0, batches = 0;
    std::vector<double> window;  ///< latency ring buffer
    std::size_t next = 0;
  };

  PerEndpoint& slot(Endpoint e) {
    return e == Endpoint::kPredictSpectrum ? predict_ : invert_;
  }
  static EndpointStats summarize(const PerEndpoint& p);

  mutable std::mutex mutex_;
  std::size_t window_;
  PerEndpoint predict_, invert_;
  std::uint64_t engineSwaps_ = 0;
};

}  // namespace artsci::serve

#include "serve/registry.hpp"

#include "ml/serialize.hpp"

namespace artsci::serve {

std::uint64_t ModelRegistry::publish(
    std::shared_ptr<const core::ArtificialScientistModel> model,
    std::string tag) {
  ARTSCI_EXPECTS_MSG(model != nullptr, "publish() of a null model");
  auto snap = std::make_shared<ModelSnapshot>();
  snap->model = std::move(model);
  snap->version = ++versions_;
  snap->tag = std::move(tag);
  const std::uint64_t version = snap->version;
  // CAS loop instead of a blind store: with concurrent publishers the
  // installed snapshot must never move backwards in version.
  std::shared_ptr<const ModelSnapshot> cur = current_.load();
  while (!cur || cur->version < version) {
    if (current_.compare_exchange_weak(cur, snap)) break;
  }
  return version;
}

std::shared_ptr<const ModelSnapshot> ModelRegistry::current() const {
  return current_.load(std::memory_order_acquire);
}

std::uint64_t ModelRegistry::version() const {
  const auto snap = current();
  return snap ? snap->version : 0;
}

std::uint64_t publishCopy(ModelRegistry& registry,
                          const core::ArtificialScientistModel& model,
                          std::string tag) {
  return registry.publish(core::cloneForInference(model), std::move(tag));
}

std::uint64_t publishCheckpoint(ModelRegistry& registry,
                                core::ArtificialScientistModel::Config cfg,
                                const std::string& path, std::string tag) {
  Rng initRng(1);
  auto model =
      std::make_shared<core::ArtificialScientistModel>(std::move(cfg), initRng);
  auto params = model->parameters();
  ml::loadParameters(path, params);
  for (auto& p : params) p.setRequiresGrad(false);
  if (tag.empty()) tag = path;
  return registry.publish(std::move(model), std::move(tag));
}

}  // namespace artsci::serve

/// \file registry.hpp
/// The model registry: the publication point between a (re)trainer and the
/// serving workers. A publisher (the in-transit trainer, or a checkpoint
/// load from disk) installs an immutable snapshot; serving workers read the
/// current snapshot with a single lock-free atomic load per micro-batch, so
/// weights can be hot-swapped under load without blocking in-flight
/// batches — the paper's in-situ loop (train while the simulation runs)
/// extended to inference: train while serving.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/model.hpp"

namespace artsci::serve {

/// One published, immutable model version. Snapshots are shared_ptr-owned:
/// a batch that started on version N keeps N alive and consistent even if
/// version N+1 is published mid-compute.
struct ModelSnapshot {
  std::shared_ptr<const core::ArtificialScientistModel> model;
  std::uint64_t version = 0;  ///< monotonically increasing, first publish = 1
  std::string tag;            ///< free-form provenance ("iter 4000", path...)
};

class ModelRegistry {
 public:
  /// Install `model` as the serving snapshot; returns its version.
  /// The model must be immutable from here on — publish a deep copy
  /// (core::cloneForInference / InTransitTrainer::exportSnapshot), never a
  /// replica a trainer keeps stepping.
  std::uint64_t publish(
      std::shared_ptr<const core::ArtificialScientistModel> model,
      std::string tag = {});

  /// Latest snapshot (nullptr before the first publish). Lock-free.
  std::shared_ptr<const ModelSnapshot> current() const;

  /// Version of the latest snapshot (0 before the first publish).
  std::uint64_t version() const;

 private:
  std::atomic<std::shared_ptr<const ModelSnapshot>> current_{};
  std::atomic<std::uint64_t> versions_{0};
};

/// Publish a servable deep copy of `model` (the common trainer-side call).
std::uint64_t publishCopy(ModelRegistry& registry,
                          const core::ArtificialScientistModel& model,
                          std::string tag = {});

/// Build a model of `cfg`, load the checkpoint at `path` into it
/// (ml::loadParameters — versioned, shape-checked), and publish it.
std::uint64_t publishCheckpoint(ModelRegistry& registry,
                                core::ArtificialScientistModel::Config cfg,
                                const std::string& path, std::string tag = {});

}  // namespace artsci::serve

/// \file interpolate.hpp
/// CIC (cloud-in-cell, linear) field gather honouring the Yee staggering.
/// Positions are in cell units.
#pragma once

#include "common/vec3.hpp"
#include "pic/grid.hpp"

namespace artsci::pic {

/// Trilinear interpolation of a staggered sample read through an
/// arbitrary accessor `at(i, j, k)` (global node indices, possibly
/// outside [0, n) — the accessor resolves them, e.g. by periodic wrap or
/// by translating into a halo-padded tile cache). Every gather entry
/// point shares this body, so the direct and cached (fused-pipeline)
/// paths accumulate in the exact same floating-point order and stay
/// bit-identical. Sample positions are (i + sx, j + sy, k + sz) with
/// s* in {0, 0.5} encoding the Yee staggering.
template <class At>
inline double gatherStaggeredAt(At&& at, double px, double py, double pz,
                                double sx, double sy, double sz) {
  const double gx = px - sx;
  const double gy = py - sy;
  const double gz = pz - sz;
  const long i0 = static_cast<long>(std::floor(gx));
  const long j0 = static_cast<long>(std::floor(gy));
  const long k0 = static_cast<long>(std::floor(gz));
  const double fx = gx - static_cast<double>(i0);
  const double fy = gy - static_cast<double>(j0);
  const double fz = gz - static_cast<double>(k0);
  double acc = 0.0;
  for (int a = 0; a < 2; ++a) {
    const double wxp = a ? fx : 1.0 - fx;
    for (int b = 0; b < 2; ++b) {
      const double wyp = b ? fy : 1.0 - fy;
      for (int c = 0; c < 2; ++c) {
        const double wzp = c ? fz : 1.0 - fz;
        acc += wxp * wyp * wzp * at(i0 + a, j0 + b, k0 + c);
      }
    }
  }
  return acc;
}

/// Trilinear interpolation of a scalar field sampled at grid positions
/// (i + sx, j + sy, k + sz), where s* in {0, 0.5} encode the staggering.
/// Periodic wrapping happens per node read (Field3::at).
inline double gatherStaggered(const Field3& f, double px, double py,
                              double pz, double sx, double sy, double sz) {
  return gatherStaggeredAt(
      [&f](long i, long j, long k) { return f.at(i, j, k); }, px, py, pz, sx,
      sy, sz);
}

/// Gather E at a particle position (Yee staggering of E components).
inline Vec3d gatherE(const VectorField& E, double px, double py, double pz) {
  return {gatherStaggered(E.x, px, py, pz, 0.5, 0.0, 0.0),
          gatherStaggered(E.y, px, py, pz, 0.0, 0.5, 0.0),
          gatherStaggered(E.z, px, py, pz, 0.0, 0.0, 0.5)};
}

/// Gather B at a particle position (Yee staggering of B components).
inline Vec3d gatherB(const VectorField& B, double px, double py, double pz) {
  return {gatherStaggered(B.x, px, py, pz, 0.0, 0.5, 0.5),
          gatherStaggered(B.y, px, py, pz, 0.5, 0.0, 0.5),
          gatherStaggered(B.z, px, py, pz, 0.5, 0.5, 0.0)};
}

}  // namespace artsci::pic

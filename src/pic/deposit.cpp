#include "pic/deposit.hpp"

#include <cmath>

namespace artsci::pic {

namespace {

/// CIC node weights of coordinate `x` on the 5-node stencil centered at
/// node `ic` (relative offsets -2..+2). S(i) = max(0, 1 - |x - i|).
inline void cicWeights5(double x, long ic, double out[5]) {
  for (int r = 0; r < 5; ++r) {
    const double xi = static_cast<double>(ic + r - 2);
    const double d = std::abs(x - xi);
    out[r] = d < 1.0 ? 1.0 - d : 0.0;
  }
}

}  // namespace

void depositCurrentEsirkepov(VectorField& J, const GridSpec& grid,
                             double x0, double y0, double z0, double x1,
                             double y1, double z1, double chargeWeight,
                             double dt) {
  ARTSCI_EXPECTS(dt > 0);
  const long icx = static_cast<long>(std::floor(x0));
  const long icy = static_cast<long>(std::floor(y0));
  const long icz = static_cast<long>(std::floor(z0));

  double S0x[5], S0y[5], S0z[5], S1x[5], S1y[5], S1z[5];
  cicWeights5(x0, icx, S0x);
  cicWeights5(y0, icy, S0y);
  cicWeights5(z0, icz, S0z);
  cicWeights5(x1, icx, S1x);
  cicWeights5(y1, icy, S1y);
  cicWeights5(z1, icz, S1z);

  double DSx[5], DSy[5], DSz[5];
  for (int r = 0; r < 5; ++r) {
    DSx[r] = S1x[r] - S0x[r];
    DSy[r] = S1y[r] - S0y[r];
    DSz[r] = S1z[r] - S0z[r];
  }

  // Esirkepov density decomposition weights.
  const double invVdt = 1.0 / (grid.cellVolume() * dt);
  const double fx = chargeWeight * grid.dx * invVdt;
  const double fy = chargeWeight * grid.dy * invVdt;
  const double fz = chargeWeight * grid.dz * invVdt;

  // Jx: accumulate along x for each (j,k).
  for (int j = 0; j < 5; ++j) {
    for (int k = 0; k < 5; ++k) {
      const double wyz = S0y[j] * S0z[k] + 0.5 * DSy[j] * S0z[k] +
                         0.5 * S0y[j] * DSz[k] + DSy[j] * DSz[k] / 3.0;
      if (wyz == 0.0) continue;
      double acc = 0.0;
      for (int i = 0; i < 5; ++i) {
        acc -= DSx[i] * wyz;
        if (acc != 0.0) {
          double& dst = J.x.at(icx + i - 2, icy + j - 2, icz + k - 2);
#pragma omp atomic
          dst += fx * acc;
        }
      }
    }
  }
  // Jy.
  for (int i = 0; i < 5; ++i) {
    for (int k = 0; k < 5; ++k) {
      const double wxz = S0x[i] * S0z[k] + 0.5 * DSx[i] * S0z[k] +
                         0.5 * S0x[i] * DSz[k] + DSx[i] * DSz[k] / 3.0;
      if (wxz == 0.0) continue;
      double acc = 0.0;
      for (int j = 0; j < 5; ++j) {
        acc -= DSy[j] * wxz;
        if (acc != 0.0) {
          double& dst = J.y.at(icx + i - 2, icy + j - 2, icz + k - 2);
#pragma omp atomic
          dst += fy * acc;
        }
      }
    }
  }
  // Jz.
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      const double wxy = S0x[i] * S0y[j] + 0.5 * DSx[i] * S0y[j] +
                         0.5 * S0x[i] * DSy[j] + DSx[i] * DSy[j] / 3.0;
      if (wxy == 0.0) continue;
      double acc = 0.0;
      for (int k = 0; k < 5; ++k) {
        acc -= DSz[k] * wxy;
        if (acc != 0.0) {
          double& dst = J.z.at(icx + i - 2, icy + j - 2, icz + k - 2);
#pragma omp atomic
          dst += fz * acc;
        }
      }
    }
  }
}

void depositCurrent(VectorField& J, const GridSpec& grid,
                    const ParticleBuffer& buffer,
                    const std::vector<double>& oldX,
                    const std::vector<double>& oldY,
                    const std::vector<double>& oldZ, double dt) {
  ARTSCI_EXPECTS(oldX.size() == buffer.size());
  const double q = buffer.info().charge;
  const long n = static_cast<long>(buffer.size());
#pragma omp parallel for schedule(static)
  for (long i = 0; i < n; ++i) {
    const auto s = static_cast<std::size_t>(i);
    depositCurrentEsirkepov(J, grid, oldX[s], oldY[s], oldZ[s], buffer.x[s],
                            buffer.y[s], buffer.z[s], q * buffer.w[s], dt);
  }
}

void depositCharge(Field3& rho, const GridSpec& grid,
                   const ParticleBuffer& buffer) {
  const double q = buffer.info().charge;
  const double invV = 1.0 / grid.cellVolume();
  const long n = static_cast<long>(buffer.size());
#pragma omp parallel for schedule(static)
  for (long p = 0; p < n; ++p) {
    const auto s = static_cast<std::size_t>(p);
    const long i0 = static_cast<long>(std::floor(buffer.x[s]));
    const long j0 = static_cast<long>(std::floor(buffer.y[s]));
    const long k0 = static_cast<long>(std::floor(buffer.z[s]));
    const double fx = buffer.x[s] - static_cast<double>(i0);
    const double fy = buffer.y[s] - static_cast<double>(j0);
    const double fz = buffer.z[s] - static_cast<double>(k0);
    const double qw = q * buffer.w[s] * invV;
    for (int a = 0; a < 2; ++a) {
      const double wx = a ? fx : 1.0 - fx;
      for (int b = 0; b < 2; ++b) {
        const double wy = b ? fy : 1.0 - fy;
        for (int c = 0; c < 2; ++c) {
          const double wz = c ? fz : 1.0 - fz;
          double& dst = rho.at(i0 + a, j0 + b, k0 + c);
#pragma omp atomic
          dst += qw * wx * wy * wz;
        }
      }
    }
  }
}

}  // namespace artsci::pic

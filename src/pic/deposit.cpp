#include "pic/deposit.hpp"

#include "pic/deposit_buffer.hpp"

namespace artsci::pic {

namespace {

/// Scatter sink committing straight into the global field with atomic
/// adds (DepositMode::Atomic). Periodic wrapping happens per write via
/// Field3::at.
struct AtomicCurrentSink {
  VectorField& J;
  void addJx(long i, long j, long k, double v) const {
    double& dst = J.x.at(i, j, k);
#ifdef _OPENMP
#pragma omp atomic
#endif
    dst += v;
  }
  void addJy(long i, long j, long k, double v) const {
    double& dst = J.y.at(i, j, k);
#ifdef _OPENMP
#pragma omp atomic
#endif
    dst += v;
  }
  void addJz(long i, long j, long k, double v) const {
    double& dst = J.z.at(i, j, k);
#ifdef _OPENMP
#pragma omp atomic
#endif
    dst += v;
  }
};

struct AtomicChargeSink {
  Field3& rho;
  void add(long i, long j, long k, double v) const {
    double& dst = rho.at(i, j, k);
#ifdef _OPENMP
#pragma omp atomic
#endif
    dst += v;
  }
};

}  // namespace

void depositCurrentEsirkepov(VectorField& J, const GridSpec& grid,
                             double x0, double y0, double z0, double x1,
                             double y1, double z1, double chargeWeight,
                             double dt) {
  ARTSCI_EXPECTS(dt > 0);
  detail::scatterEsirkepov(grid, x0, y0, z0, x1, y1, z1, chargeWeight, dt,
                           AtomicCurrentSink{J});
}

void depositCurrent(VectorField& J, const GridSpec& grid,
                    const ParticleBuffer& buffer,
                    const std::vector<double>& oldX,
                    const std::vector<double>& oldY,
                    const std::vector<double>& oldZ, double dt,
                    DepositMode mode, DepositBuffer* scratch) {
  ARTSCI_EXPECTS(oldX.size() == buffer.size());
  if (mode == DepositMode::Tiled) {
    if (scratch != nullptr) {
      // Cell sizes must match too: the tiled kernels take every physics
      // factor (cell volume, dx/dy/dz) from scratch->grid(), so a
      // same-extent grid with different spacing would silently deposit
      // wrongly scaled currents.
      ARTSCI_EXPECTS(scratch->grid().nx == grid.nx &&
                     scratch->grid().ny == grid.ny &&
                     scratch->grid().nz == grid.nz &&
                     scratch->grid().dx == grid.dx &&
                     scratch->grid().dy == grid.dy &&
                     scratch->grid().dz == grid.dz);
      scratch->depositCurrent(J, buffer, oldX, oldY, oldZ, dt);
    } else {
      DepositBuffer local(grid);
      local.depositCurrent(J, buffer, oldX, oldY, oldZ, dt);
    }
    return;
  }
  const double q = buffer.info().charge;
  const long n = static_cast<long>(buffer.size());
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (long i = 0; i < n; ++i) {
    const auto s = static_cast<std::size_t>(i);
    depositCurrentEsirkepov(J, grid, oldX[s], oldY[s], oldZ[s], buffer.x[s],
                            buffer.y[s], buffer.z[s], q * buffer.w[s], dt);
  }
}

void depositCharge(Field3& rho, const GridSpec& grid,
                   const ParticleBuffer& buffer, DepositMode mode,
                   DepositBuffer* scratch) {
  if (mode == DepositMode::Tiled) {
    if (scratch != nullptr) {
      ARTSCI_EXPECTS(scratch->grid().nx == grid.nx &&
                     scratch->grid().ny == grid.ny &&
                     scratch->grid().nz == grid.nz &&
                     scratch->grid().dx == grid.dx &&
                     scratch->grid().dy == grid.dy &&
                     scratch->grid().dz == grid.dz);
      scratch->depositCharge(rho, buffer);
    } else {
      DepositBuffer local(grid);
      local.depositCharge(rho, buffer);
    }
    return;
  }
  const double q = buffer.info().charge;
  const double invV = 1.0 / grid.cellVolume();
  const long n = static_cast<long>(buffer.size());
  const AtomicChargeSink sink{rho};
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (long p = 0; p < n; ++p) {
    const auto s = static_cast<std::size_t>(p);
    detail::scatterCic(buffer.x[s], buffer.y[s], buffer.z[s],
                       q * buffer.w[s] * invV, sink);
  }
}

}  // namespace artsci::pic

#include "pic/khi.hpp"

#include <cmath>

#include "common/units.hpp"

namespace artsci::pic {

double khiStreamVelocity(double yCell, long ny, double beta) {
  const double q = yCell / static_cast<double>(ny);
  return (q >= 0.25 && q < 0.75) ? beta : -beta;
}

KhiRegion classifyKhiRegion(double yCell, long ny,
                            double vortexHalfWidthCells) {
  const double shear1 = 0.25 * static_cast<double>(ny);
  const double shear2 = 0.75 * static_cast<double>(ny);
  const double d1 = std::abs(yCell - shear1);
  const double d2 = std::abs(yCell - shear2);
  if (std::min(d1, d2) <= vortexHalfWidthCells) return KhiRegion::kVortex;
  return khiStreamVelocity(yCell, ny, 1.0) > 0 ? KhiRegion::kApproaching
                                               : KhiRegion::kReceding;
}

const char* khiRegionName(KhiRegion region) {
  switch (region) {
    case KhiRegion::kApproaching:
      return "approaching";
    case KhiRegion::kReceding:
      return "receding";
    case KhiRegion::kVortex:
      return "vortex";
  }
  return "?";
}

KhiSpecies initializeKhi(Simulation& sim, const KhiConfig& cfg) {
  ARTSCI_EXPECTS_MSG(sim.particleCount() == 0,
                     "initializeKhi expects an empty simulation");
  ARTSCI_EXPECTS(cfg.beta > 0.0 && cfg.beta < 1.0);
  ARTSCI_EXPECTS(cfg.particlesPerCell >= 1);

  KhiSpecies out;
  out.electrons = sim.addSpecies({-1.0, 1.0, "e"});
  out.ions = cfg.mobileIons
                 ? sim.addSpecies({+1.0, cfg.ionMassRatio, "i"})
                 : out.electrons;

  Rng rng(cfg.seed);
  const GridSpec& g = cfg.grid;
  const double weight =
      g.cellVolume() / static_cast<double>(cfg.particlesPerCell);
  const std::size_t expected =
      static_cast<std::size_t>(g.cellCount()) *
      static_cast<std::size_t>(cfg.particlesPerCell);
  sim.species(out.electrons).reserve(expected);
  if (cfg.mobileIons) sim.species(out.ions).reserve(expected);

  const double lx = static_cast<double>(g.nx);
  for (long i = 0; i < g.nx; ++i) {
    for (long j = 0; j < g.ny; ++j) {
      for (long k = 0; k < g.nz; ++k) {
        for (int p = 0; p < cfg.particlesPerCell; ++p) {
          const Vec3d pos{static_cast<double>(i) + rng.uniform(),
                          static_cast<double>(j) + rng.uniform(),
                          static_cast<double>(k) + rng.uniform()};
          const double betaX = khiStreamVelocity(pos.y, g.ny, cfg.beta);
          const double gammaStream = units::gammaOfBeta(betaX);
          // Seed perturbation on u_y: a single sine mode along x localizes
          // the fastest-growing KHI mode (standard seeding).
          const double seedUy =
              cfg.perturbation *
              std::sin(2.0 * units::kPi * cfg.perturbationMode * pos.x / lx);
          Vec3d u{gammaStream * betaX + rng.normal(0, cfg.thermalMomentum),
                  seedUy + rng.normal(0, cfg.thermalMomentum),
                  rng.normal(0, cfg.thermalMomentum)};
          sim.species(out.electrons).push(pos, u, weight);
          if (cfg.mobileIons) {
            // Ions co-stream so the initial current (and charge) vanish.
            sim.species(out.ions).push(pos, u, weight);
          }
        }
      }
    }
  }
  return out;
}

}  // namespace artsci::pic

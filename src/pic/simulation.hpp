/// \file simulation.hpp
/// The single-rank PIC simulation driver: one full PIC cycle per step()
/// (gather -> Boris push -> move -> Esirkepov deposit -> FDTD update), a
/// PIConGPU-style plugin interface, and the Figure-of-Merit counters used
/// by the Fig 4 scaling benchmark (FOM = 0.9 * particle-updates/s + 0.1 *
/// cell-updates/s, the paper's weighting).
#pragma once

#include <memory>
#include <vector>

#include "common/timer.hpp"
#include "pic/deposit.hpp"
#include "pic/deposit_buffer.hpp"
#include "pic/fields.hpp"
#include "pic/fused_pipeline.hpp"
#include "pic/particles.hpp"

namespace artsci::pic {

class Simulation;

/// Output/analysis plugin, invoked after every completed step — the
/// pattern PIConGPU uses for the radiation plugin and openPMD output.
class Plugin {
 public:
  virtual ~Plugin() = default;
  /// Stable identifier for logs and diagnostics.
  virtual const char* name() const = 0;
  /// Called once after every completed step() with the synchronized state.
  virtual void onStepEnd(Simulation& sim) = 0;
};

struct SimulationConfig {
  GridSpec grid;
  double dt = 0.05;  ///< 1/omega_pe units; must satisfy CFL
  /// Record per-particle acceleration (d beta / dt) during the push; the
  /// far-field radiation plugin needs it (costs 3 extra arrays/species).
  bool recordBetaDot = false;
  /// Current-deposition strategy. Tiled (default) makes a whole step —
  /// gather, push, and field update are order-invariant already —
  /// bit-reproducible across OMP thread counts; Atomic keeps the legacy
  /// scatter for A/B comparison (bench/deposit_modes.cpp).
  DepositMode depositMode = DepositMode::Tiled;
  /// Particle-update path. Fused (default) runs the supercell-fused
  /// single pass of fused_pipeline.hpp and requires DepositMode::Tiled;
  /// with DepositMode::Atomic the split path always runs, whatever this
  /// says. Both Tiled paths supercell-sort each species once per step
  /// (so particles are reordered) and produce bit-identical fields and
  /// particle state (bench/particle_pipeline.cpp measures the A/B;
  /// tests/pic/test_fused_pipeline.cpp enforces the identity).
  ParticlePipeline pipeline = ParticlePipeline::Fused;
  /// Tile geometry for the Tiled deposit accumulators and the supercell
  /// sort. The default 8x8 is right for production grids; tests shrink it
  /// to exercise edge cases. Must match DistributedSimulation::Config::
  /// tiles when comparing the two drivers bit-for-bit (tile geometry
  /// fixes the deterministic accumulation grouping, so it is part of the
  /// bit-level contract, not just a performance knob).
  TileDepositConfig tiles = {};
};

/// Accumulated work counters for the FOM (paper Fig 4). Wall-clock
/// dependent — deliberately outside the determinism guarantees.
struct FomCounters {
  double particleUpdates = 0;  ///< total particle pushes
  double cellUpdates = 0;      ///< total cell updates (FDTD)
  double seconds = 0;          ///< wall time spent in step()

  /// Weighted FOM in updates/s: 90% particle + 10% cell updates.
  double fom() const {
    return seconds > 0
               ? (0.9 * particleUpdates + 0.1 * cellUpdates) / seconds
               : 0.0;
  }
};

class Simulation {
 public:
  explicit Simulation(SimulationConfig cfg);

  /// Register a species; returns its index. Particles are added through
  /// species(i).push(...).
  std::size_t addSpecies(const SpeciesInfo& info);
  std::size_t speciesCount() const { return species_.size(); }
  ParticleBuffer& species(std::size_t i);
  const ParticleBuffer& species(std::size_t i) const;

  /// Electric field, synchronized at integer steps (mutable for setup).
  VectorField& fieldE() { return E_; }
  const VectorField& fieldE() const { return E_; }
  /// Magnetic field, synchronized at integer steps (mutable for setup).
  VectorField& fieldB() { return B_; }
  const VectorField& fieldB() const { return B_; }
  /// Current density deposited by the most recent step().
  const VectorField& currentJ() const { return J_; }

  const GridSpec& grid() const { return cfg_.grid; }
  const FieldSolver& solver() const { return solver_; }
  /// Active deposition strategy (SimulationConfig::depositMode).
  DepositMode depositMode() const { return cfg_.depositMode; }
  /// The particle-update path actually running (Fused only when both
  /// SimulationConfig::pipeline requests it and depositMode is Tiled).
  ParticlePipeline particlePipeline() const {
    return fused_ ? ParticlePipeline::Fused : ParticlePipeline::Split;
  }
  double dt() const { return cfg_.dt; }
  /// Number of completed steps.
  long stepIndex() const { return step_; }
  /// Simulated time in 1/omega_pe.
  double time() const { return static_cast<double>(step_) * cfg_.dt; }

  void addPlugin(std::shared_ptr<Plugin> plugin);

  /// One full PIC cycle; updates FOM counters and fires plugins.
  void step();
  void run(long steps);

  const FomCounters& fom() const { return fom_; }
  void resetFom() { fom_ = {}; }

  /// Per-particle acceleration recorded in the last step (empty unless
  /// cfg.recordBetaDot). Index parallel to species(i)'s SoA columns.
  const std::vector<double>& betaDotX(std::size_t speciesIdx) const;
  const std::vector<double>& betaDotY(std::size_t speciesIdx) const;
  const std::vector<double>& betaDotZ(std::size_t speciesIdx) const;

  /// Total particle count across species.
  std::size_t particleCount() const;

 private:
  void pushAndDeposit(std::size_t speciesIdx);

  SimulationConfig cfg_;
  FieldSolver solver_;
  /// Tile accumulators reused every step (allocated only in Tiled mode).
  std::unique_ptr<DepositBuffer> depositBuffer_;
  /// Fused-pipeline driver (allocated only when it is the active path).
  std::unique_ptr<FusedPipeline> fused_;
  /// Split + Tiled only: the shared once-per-step supercell sort (the
  /// fused driver owns its own index). Keeps the split path's per-tile
  /// deposit order equal to the fused path's, so the two stay
  /// bit-identical (see fused_pipeline.hpp).
  std::unique_ptr<SupercellIndex> supercell_;
  VectorField E_, B_, J_;
  std::vector<ParticleBuffer> species_;
  std::vector<std::shared_ptr<Plugin>> plugins_;
  long step_ = 0;
  FomCounters fom_;
  // scratch (per species): pre-move positions, recorded accelerations
  struct Scratch {
    std::vector<double> oldX, oldY, oldZ;
    std::vector<double> bdx, bdy, bdz;
  };
  std::vector<Scratch> scratch_;
};

}  // namespace artsci::pic

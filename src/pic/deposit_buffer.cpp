#include "pic/deposit_buffer.hpp"

#include <algorithm>
#include <cmath>

namespace artsci::pic {

namespace {

/// Grid validation must precede bins_ construction (member-init order),
/// so invalid extents fail with this message, not a clamp internals one.
const GridSpec& validatedGrid(const GridSpec& grid) {
  ARTSCI_EXPECTS_MSG(grid.nx > 0 && grid.ny > 0 && grid.nz > 0,
                     "DepositBuffer needs positive grid extents");
  return grid;
}

}  // namespace

DepositBuffer::DepositBuffer(const GridSpec& grid, TileDepositConfig cfg)
    : grid_(validatedGrid(grid)),
      bins_(grid, cfg.tileEdgeX, cfg.tileEdgeY, grid.nz) {
  padX_ = bins_.tileEdgeX() + 2 * kHalo;
  padY_ = bins_.tileEdgeY() + 2 * kHalo;
  padZ_ = grid.nz + 2 * kHalo;
  tileStride_ = padX_ * padY_ * padZ_;
  store_.resize(static_cast<std::size_t>(tileCount() * 3 * tileStride_));
  wrapZ_.resize(static_cast<std::size_t>(padZ_));
  for (long lk = 0; lk < padZ_; ++lk)
    wrapZ_[static_cast<std::size_t>(lk)] = Field3::wrap(lk - kHalo, grid.nz);
}

DepositBuffer::TileExtent DepositBuffer::extentOf(long tile) const {
  const long tx = tile / tilesY();
  const long ty = tile % tilesY();
  TileExtent e;
  e.x0 = tx * bins_.tileEdgeX();
  e.x1 = std::min(grid_.nx, e.x0 + bins_.tileEdgeX());
  e.y0 = ty * bins_.tileEdgeY();
  e.y1 = std::min(grid_.ny, e.y0 + bins_.tileEdgeY());
  return e;
}

DepositBuffer::TileAccum DepositBuffer::zeroedTile(long tile, int components) {
  ARTSCI_EXPECTS(tile >= 0 && tile < tileCount());
  ARTSCI_EXPECTS(components >= 1 && components <= 3);
  const TileExtent e = extentOf(tile);
  double* jx = tileComponent(tile, 0);
  double* jy = tileComponent(tile, 1);
  double* jz = tileComponent(tile, 2);
  std::fill(jx, jx + components * tileStride_, 0.0);  // planes are adjacent
  return TileAccum{jx, jy, jz, e.x0 - kHalo, e.y0 - kHalo, padY_, padZ_};
}

void DepositBuffer::binParticles(const std::vector<double>& xs,
                                 const std::vector<double>& ys,
                                 const std::vector<double>& zs) {
  ARTSCI_EXPECTS(xs.size() == ys.size() && xs.size() == zs.size());
  const bool inDomain = bins_.bin(xs.data(), ys.data(), zs.data(), xs.size());
  ARTSCI_EXPECTS_MSG(inDomain,
                     "tiled deposit: particle position outside [0, n) — "
                     "positions must be periodically wrapped");
}

void DepositBuffer::reduceComponent(Field3& dst, int comp,
                                    const SupercellIndex& occ) const {
  const long nyz = grid_.ny * grid_.nz;
  for (long t = 0; t < tileCount(); ++t) {
    const SupercellIndex::Range r = occ.tileRange(t);
    if (r.begin == r.end) continue;
    const TileExtent e = extentOf(t);
    const double* src = tileComponent(t, comp);
    const long spanX = (e.x1 - e.x0) + 2 * kHalo;
    const long spanY = (e.y1 - e.y0) + 2 * kHalo;
    for (long li = 0; li < spanX; ++li) {
      const long gi = Field3::wrap(e.x0 - kHalo + li, grid_.nx);
      for (long lj = 0; lj < spanY; ++lj) {
        const long gj = Field3::wrap(e.y0 - kHalo + lj, grid_.ny);
        const double* row = src + (li * padY_ + lj) * padZ_;
        const long base = gi * nyz + gj * grid_.nz;
        for (long lk = 0; lk < padZ_; ++lk) {
          const double v = row[lk];
          // The skip is itself deterministic (tile values are), so it
          // never perturbs the fixed summation order.
          if (v != 0.0)
            dst.flat(base + wrapZ_[static_cast<std::size_t>(lk)]) += v;
        }
      }
    }
  }
}

void DepositBuffer::reduceTileRows(VectorField& J, long tile, long xBegin,
                                   long xEnd) const {
  ARTSCI_EXPECTS(tile >= 0 && tile < tileCount());
  ARTSCI_EXPECTS(xBegin >= 0 && xBegin < xEnd && xEnd <= grid_.nx);
  ARTSCI_EXPECTS(J.x.nx() == grid_.nx && J.x.ny() == grid_.ny &&
                 J.x.nz() == grid_.nz);
  const long nyz = grid_.ny * grid_.nz;
  const TileExtent e = extentOf(tile);
  const long spanX = (e.x1 - e.x0) + 2 * kHalo;
  const long spanY = (e.y1 - e.y0) + 2 * kHalo;
  Field3* const comps[3] = {&J.x, &J.y, &J.z};
  for (int comp = 0; comp < 3; ++comp) {
    Field3& dst = *comps[comp];
    const double* src = tileComponent(tile, comp);
    for (long li = 0; li < spanX; ++li) {
      const long gi = Field3::wrap(e.x0 - kHalo + li, grid_.nx);
      // Row filter: only destination rows inside the caller's slab commit.
      // Everything else matches reduceComponent's loops exactly, so the
      // union over disjoint slabs is the serial single-rank reduction.
      if (gi < xBegin || gi >= xEnd) continue;
      for (long lj = 0; lj < spanY; ++lj) {
        const long gj = Field3::wrap(e.y0 - kHalo + lj, grid_.ny);
        const double* row = src + (li * padY_ + lj) * padZ_;
        const long base = gi * nyz + gj * grid_.nz;
        for (long lk = 0; lk < padZ_; ++lk) {
          const double v = row[lk];
          if (v != 0.0)
            dst.flat(base + wrapZ_[static_cast<std::size_t>(lk)]) += v;
        }
      }
    }
  }
}

void DepositBuffer::scatterEsirkepovTile(const GridSpec& grid, double x0,
                                         double y0, double z0, double x1,
                                         double y1, double z1,
                                         double chargeWeight, double dt,
                                         const TileAccum& sink) {
  const long icx = static_cast<long>(std::floor(x0));
  const long icy = static_cast<long>(std::floor(y0));
  const long icz = static_cast<long>(std::floor(z0));

  double S0x[5], S0y[5], S0z[5], S1x[5], S1y[5], S1z[5];
  detail::cicWeights5(x0, icx, S0x);
  detail::cicWeights5(y0, icy, S0y);
  detail::cicWeights5(z0, icz, S0z);
  detail::cicWeights5(x1, icx, S1x);
  detail::cicWeights5(y1, icy, S1y);
  detail::cicWeights5(z1, icz, S1z);

  double DSx[5], DSy[5], DSz[5];
  for (int r = 0; r < 5; ++r) {
    DSx[r] = S1x[r] - S0x[r];
    DSy[r] = S1y[r] - S0y[r];
    DSz[r] = S1z[r] - S0z[r];
  }

  const double invVdt = 1.0 / (grid.cellVolume() * dt);
  const double fx = chargeWeight * grid.dx * invVdt;
  const double fy = chargeWeight * grid.dy * invVdt;
  const double fz = chargeWeight * grid.dz * invVdt;

  // Nonzero supports. For a sub-cell move S0 lives on stencil entries
  // [2,3] and entry 0 of every DS is identically zero, so each axis'
  // support is one of [1,3], [2,3], [2,4]. Outside it the reference
  // kernel's transverse weight is a product/sum of exact zeros and its
  // running `acc` stays exactly 0 — precisely the iterations its
  // `== 0.0` guards skip, so clipping the loops to these bounds drops no
  // emission and reorders nothing. Inner (accumulated) axes still run to
  // the stencil end: `acc` keeps a rounding residue past the support,
  // and the reference emits those residue adds.
  const int xlo = DSx[1] != 0.0 ? 1 : 2, xhi = DSx[4] != 0.0 ? 4 : 3;
  const int ylo = DSy[1] != 0.0 ? 1 : 2, yhi = DSy[4] != 0.0 ? 4 : 3;
  const int zlo = DSz[1] != 0.0 ? 1 : 2, zhi = DSz[4] != 0.0 ? 4 : 3;

  const long stepX = sink.strideY * sink.strideZ;
  const long stepY = sink.strideZ;

  // Jx: accumulate along x for each (j,k); the write pointer advances by
  // a whole x-plane per step.
  for (int j = ylo; j <= yhi; ++j) {
    for (int k = zlo; k <= zhi; ++k) {
      const double wyz = S0y[j] * S0z[k] + 0.5 * DSy[j] * S0z[k] +
                         0.5 * S0y[j] * DSz[k] + DSy[j] * DSz[k] / 3.0;
      if (wyz == 0.0) continue;
      double acc = 0.0;
      double* px =
          sink.jx + sink.index(icx + xlo - 2, icy + j - 2, icz + k - 2);
      for (int i = xlo; i < 5; ++i, px += stepX) {
        acc -= DSx[i] * wyz;
        if (acc != 0.0) *px += fx * acc;
      }
    }
  }
  // Jy.
  for (int i = xlo; i <= xhi; ++i) {
    for (int k = zlo; k <= zhi; ++k) {
      const double wxz = S0x[i] * S0z[k] + 0.5 * DSx[i] * S0z[k] +
                         0.5 * S0x[i] * DSz[k] + DSx[i] * DSz[k] / 3.0;
      if (wxz == 0.0) continue;
      double acc = 0.0;
      double* py =
          sink.jy + sink.index(icx + i - 2, icy + ylo - 2, icz + k - 2);
      for (int j = ylo; j < 5; ++j, py += stepY) {
        acc -= DSy[j] * wxz;
        if (acc != 0.0) *py += fy * acc;
      }
    }
  }
  // Jz: the accumulated axis is contiguous in the padded tile.
  for (int i = xlo; i <= xhi; ++i) {
    for (int j = ylo; j <= yhi; ++j) {
      const double wxy = S0x[i] * S0y[j] + 0.5 * DSx[i] * S0y[j] +
                         0.5 * S0x[i] * DSy[j] + DSx[i] * DSy[j] / 3.0;
      if (wxy == 0.0) continue;
      double acc = 0.0;
      double* pz =
          sink.jz + sink.index(icx + i - 2, icy + j - 2, icz + zlo - 2);
      for (int k = zlo; k < 5; ++k, ++pz) {
        acc -= DSz[k] * wxy;
        if (acc != 0.0) *pz += fz * acc;
      }
    }
  }
}

void DepositBuffer::reduce(VectorField& J, const SupercellIndex& occupancy) {
  ARTSCI_EXPECTS(occupancy.tileCount() == tileCount() &&
                 occupancy.tilesX() == tilesX() &&
                 occupancy.tilesY() == tilesY());
  ARTSCI_EXPECTS(J.x.nx() == grid_.nx && J.x.ny() == grid_.ny &&
                 J.x.nz() == grid_.nz);
  reduceComponent(J.x, 0, occupancy);
  reduceComponent(J.y, 1, occupancy);
  reduceComponent(J.z, 2, occupancy);
}

void DepositBuffer::depositCurrent(VectorField& J,
                                   const ParticleBuffer& buffer,
                                   const std::vector<double>& oldX,
                                   const std::vector<double>& oldY,
                                   const std::vector<double>& oldZ,
                                   double dt) {
  ARTSCI_EXPECTS(dt > 0);
  ARTSCI_EXPECTS(oldX.size() == buffer.size() &&
                 oldY.size() == buffer.size() && oldZ.size() == buffer.size());
  ARTSCI_EXPECTS(J.x.nx() == grid_.nx && J.x.ny() == grid_.ny &&
                 J.x.nz() == grid_.nz);
  // Bin by the *old* position: the Esirkepov stencil is centered on
  // floor(old), so every write lands within the +-kHalo padding no matter
  // where the (sub-cell) move ended up.
  binParticles(oldX, oldY, oldZ);

  const double q = buffer.info().charge;
  const std::vector<std::uint32_t>& perm = bins_.permutation();
  const long tiles = tileCount();
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
  for (long t = 0; t < tiles; ++t) {
    const SupercellIndex::Range r = bins_.tileRange(t);
    if (r.begin == r.end) continue;
    const TileAccum sink = zeroedTile(t);
    for (std::size_t s = r.begin; s < r.end; ++s) {
      const auto i = static_cast<std::size_t>(perm[s]);
      detail::scatterEsirkepov(grid_, oldX[i], oldY[i], oldZ[i], buffer.x[i],
                               buffer.y[i], buffer.z[i], q * buffer.w[i], dt,
                               sink);
    }
  }

  reduceComponent(J.x, 0, bins_);
  reduceComponent(J.y, 1, bins_);
  reduceComponent(J.z, 2, bins_);
}

void DepositBuffer::depositCharge(Field3& rho, const ParticleBuffer& buffer) {
  ARTSCI_EXPECTS(rho.nx() == grid_.nx && rho.ny() == grid_.ny &&
                 rho.nz() == grid_.nz);
  binParticles(buffer.x, buffer.y, buffer.z);

  // Same factorization as the atomic path (q * w * invV) so per-particle
  // contributions are bit-identical between modes.
  const double q = buffer.info().charge;
  const double invV = 1.0 / grid_.cellVolume();
  const std::vector<std::uint32_t>& perm = bins_.permutation();
  const long tiles = tileCount();
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
  for (long t = 0; t < tiles; ++t) {
    const SupercellIndex::Range r = bins_.tileRange(t);
    if (r.begin == r.end) continue;
    const TileAccum sink = zeroedTile(t, /*components=*/1);
    for (std::size_t s = r.begin; s < r.end; ++s) {
      const auto i = static_cast<std::size_t>(perm[s]);
      detail::scatterCic(buffer.x[i], buffer.y[i], buffer.z[i],
                         q * buffer.w[i] * invV, sink);
    }
  }

  reduceComponent(rho, 0, bins_);
}

}  // namespace artsci::pic

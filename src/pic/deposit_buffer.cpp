#include "pic/deposit_buffer.hpp"

#include <algorithm>
#include <cmath>

namespace artsci::pic {

namespace {

/// Scatter sink writing into one tile's halo-padded accumulator. Global
/// node indices are translated by the padded origin — no wrapping here;
/// the stencil guarantees every emitted index lies inside the padding,
/// and the reduction wraps once per padded cell instead of once per write.
struct TileSink {
  double* jx;
  double* jy;
  double* jz;
  long originX;  ///< global x of padded local index 0 (tile x0 - halo)
  long originY;
  long strideY;  ///< padY
  long strideZ;  ///< padZ

  long index(long i, long j, long k) const {
    return ((i - originX) * strideY + (j - originY)) * strideZ +
           (k + DepositBuffer::kHalo);
  }
  void addJx(long i, long j, long k, double v) const { jx[index(i, j, k)] += v; }
  void addJy(long i, long j, long k, double v) const { jy[index(i, j, k)] += v; }
  void addJz(long i, long j, long k, double v) const { jz[index(i, j, k)] += v; }
  void add(long i, long j, long k, double v) const { jx[index(i, j, k)] += v; }
};

}  // namespace

DepositBuffer::DepositBuffer(const GridSpec& grid, TileDepositConfig cfg)
    : grid_(grid) {
  ARTSCI_EXPECTS(grid.nx > 0 && grid.ny > 0 && grid.nz > 0);
  ARTSCI_EXPECTS(cfg.tileEdgeX > 0 && cfg.tileEdgeY > 0);
  edgeX_ = std::min(cfg.tileEdgeX, grid.nx);
  edgeY_ = std::min(cfg.tileEdgeY, grid.ny);
  tilesX_ = (grid.nx + edgeX_ - 1) / edgeX_;
  tilesY_ = (grid.ny + edgeY_ - 1) / edgeY_;
  padX_ = edgeX_ + 2 * kHalo;
  padY_ = edgeY_ + 2 * kHalo;
  padZ_ = grid.nz + 2 * kHalo;
  tileStride_ = padX_ * padY_ * padZ_;
  store_.resize(static_cast<std::size_t>(tileCount() * 3 * tileStride_));
  wrapZ_.resize(static_cast<std::size_t>(padZ_));
  for (long lk = 0; lk < padZ_; ++lk)
    wrapZ_[static_cast<std::size_t>(lk)] = Field3::wrap(lk - kHalo, grid.nz);
}

DepositBuffer::TileExtent DepositBuffer::extentOf(long tile) const {
  const long tx = tile / tilesY_;
  const long ty = tile % tilesY_;
  TileExtent e;
  e.x0 = tx * edgeX_;
  e.x1 = std::min(grid_.nx, e.x0 + edgeX_);
  e.y0 = ty * edgeY_;
  e.y1 = std::min(grid_.ny, e.y0 + edgeY_);
  return e;
}

void DepositBuffer::binParticles(const std::vector<double>& xs,
                                 const std::vector<double>& ys,
                                 const std::vector<double>& zs) {
  ARTSCI_EXPECTS(xs.size() == ys.size() && xs.size() == zs.size());
  const long n = static_cast<long>(xs.size());
  tileOf_.resize(xs.size());
  perm_.resize(xs.size());
  offsets_.assign(static_cast<std::size_t>(tileCount()) + 1, 0);

  // Tile keys (parallel; order-independent). Out-of-domain positions are
  // flagged rather than thrown here — throwing inside an OpenMP region
  // would terminate.
  bool inDomain = true;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) reduction(&& : inDomain)
#endif
  for (long i = 0; i < n; ++i) {
    const auto s = static_cast<std::size_t>(i);
    const long ci = static_cast<long>(std::floor(xs[s]));
    const long cj = static_cast<long>(std::floor(ys[s]));
    const long ck = static_cast<long>(std::floor(zs[s]));
    const bool ok = ci >= 0 && ci < grid_.nx && cj >= 0 && cj < grid_.ny &&
                    ck >= 0 && ck < grid_.nz;
    inDomain = inDomain && ok;
    tileOf_[s] = ok ? static_cast<std::int32_t>((ci / edgeX_) * tilesY_ +
                                                cj / edgeY_)
                    : 0;
  }
  ARTSCI_EXPECTS_MSG(inDomain,
                     "tiled deposit: particle position outside [0, n) — "
                     "positions must be periodically wrapped");

  // Stable counting sort: per-tile order is ascending particle index.
  // Serial: O(N) with trivial constants next to the scatter cost.
  for (long i = 0; i < n; ++i)
    ++offsets_[static_cast<std::size_t>(tileOf_[static_cast<std::size_t>(i)]) +
               1];
  for (long t = 0; t < tileCount(); ++t)
    offsets_[static_cast<std::size_t>(t) + 1] +=
        offsets_[static_cast<std::size_t>(t)];
  cursor_.assign(offsets_.begin(), offsets_.end() - 1);
  for (long i = 0; i < n; ++i) {
    const auto s = static_cast<std::size_t>(i);
    perm_[cursor_[static_cast<std::size_t>(tileOf_[s])]++] =
        static_cast<std::uint32_t>(i);
  }
}

void DepositBuffer::reduceComponent(Field3& dst, int comp) const {
  const long nyz = grid_.ny * grid_.nz;
  for (long t = 0; t < tileCount(); ++t) {
    if (offsets_[static_cast<std::size_t>(t)] ==
        offsets_[static_cast<std::size_t>(t) + 1])
      continue;
    const TileExtent e = extentOf(t);
    const double* src = tileComponent(t, comp);
    const long spanX = (e.x1 - e.x0) + 2 * kHalo;
    const long spanY = (e.y1 - e.y0) + 2 * kHalo;
    for (long li = 0; li < spanX; ++li) {
      const long gi = Field3::wrap(e.x0 - kHalo + li, grid_.nx);
      for (long lj = 0; lj < spanY; ++lj) {
        const long gj = Field3::wrap(e.y0 - kHalo + lj, grid_.ny);
        const double* row = src + (li * padY_ + lj) * padZ_;
        const long base = gi * nyz + gj * grid_.nz;
        for (long lk = 0; lk < padZ_; ++lk) {
          const double v = row[lk];
          // The skip is itself deterministic (tile values are), so it
          // never perturbs the fixed summation order.
          if (v != 0.0)
            dst.flat(base + wrapZ_[static_cast<std::size_t>(lk)]) += v;
        }
      }
    }
  }
}

void DepositBuffer::depositCurrent(VectorField& J,
                                   const ParticleBuffer& buffer,
                                   const std::vector<double>& oldX,
                                   const std::vector<double>& oldY,
                                   const std::vector<double>& oldZ,
                                   double dt) {
  ARTSCI_EXPECTS(dt > 0);
  ARTSCI_EXPECTS(oldX.size() == buffer.size() &&
                 oldY.size() == buffer.size() && oldZ.size() == buffer.size());
  ARTSCI_EXPECTS(J.x.nx() == grid_.nx && J.x.ny() == grid_.ny &&
                 J.x.nz() == grid_.nz);
  // Bin by the *old* position: the Esirkepov stencil is centered on
  // floor(old), so every write lands within the +-kHalo padding no matter
  // where the (sub-cell) move ended up.
  binParticles(oldX, oldY, oldZ);

  const double q = buffer.info().charge;
  const long tiles = tileCount();
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
  for (long t = 0; t < tiles; ++t) {
    const std::size_t begin = offsets_[static_cast<std::size_t>(t)];
    const std::size_t end = offsets_[static_cast<std::size_t>(t) + 1];
    if (begin == end) continue;
    const TileExtent e = extentOf(t);
    double* jx = tileComponent(t, 0);
    double* jy = tileComponent(t, 1);
    double* jz = tileComponent(t, 2);
    std::fill(jx, jx + tileStride_, 0.0);
    std::fill(jy, jy + tileStride_, 0.0);
    std::fill(jz, jz + tileStride_, 0.0);
    const TileSink sink{jx,          jy,          jz, e.x0 - kHalo,
                        e.y0 - kHalo, padY_,      padZ_};
    for (std::size_t s = begin; s < end; ++s) {
      const auto i = static_cast<std::size_t>(perm_[s]);
      detail::scatterEsirkepov(grid_, oldX[i], oldY[i], oldZ[i], buffer.x[i],
                               buffer.y[i], buffer.z[i], q * buffer.w[i], dt,
                               sink);
    }
  }

  reduceComponent(J.x, 0);
  reduceComponent(J.y, 1);
  reduceComponent(J.z, 2);
}

void DepositBuffer::depositCharge(Field3& rho, const ParticleBuffer& buffer) {
  ARTSCI_EXPECTS(rho.nx() == grid_.nx && rho.ny() == grid_.ny &&
                 rho.nz() == grid_.nz);
  binParticles(buffer.x, buffer.y, buffer.z);

  // Same factorization as the atomic path (q * w * invV) so per-particle
  // contributions are bit-identical between modes.
  const double q = buffer.info().charge;
  const double invV = 1.0 / grid_.cellVolume();
  const long tiles = tileCount();
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
  for (long t = 0; t < tiles; ++t) {
    const std::size_t begin = offsets_[static_cast<std::size_t>(t)];
    const std::size_t end = offsets_[static_cast<std::size_t>(t) + 1];
    if (begin == end) continue;
    const TileExtent e = extentOf(t);
    double* acc = tileComponent(t, 0);
    std::fill(acc, acc + tileStride_, 0.0);
    const TileSink sink{acc,          nullptr,     nullptr, e.x0 - kHalo,
                        e.y0 - kHalo, padY_,       padZ_};
    for (std::size_t s = begin; s < end; ++s) {
      const auto i = static_cast<std::size_t>(perm_[s]);
      detail::scatterCic(buffer.x[i], buffer.y[i], buffer.z[i],
                         q * buffer.w[i] * invV, sink);
    }
  }

  reduceComponent(rho, 0);
}

}  // namespace artsci::pic

/// \file deposit.hpp
/// Charge-conserving current deposition (Esirkepov 2001) with CIC shapes,
/// and CIC charge-density deposition for diagnostics.
///
/// Esirkepov's scheme guarantees the *discrete* continuity equation
///   (rho^{n+1} - rho^n)/dt + div J = 0
/// to machine precision on the Yee grid, so Gauss's law never drifts —
/// the property PIConGPU relies on (no Poisson cleaning step).
#pragma once

#include "pic/grid.hpp"
#include "pic/particles.hpp"

namespace artsci::pic {

/// Deposit the current of one particle that moved from (x0,y0,z0) to
/// (x1,y1,z1) in cell units *without periodic wrapping* (|x1-x0| < 1 cell
/// per axis, guaranteed by CFL). `chargeWeight` is q * w.
/// Thread-safe via atomic adds.
void depositCurrentEsirkepov(VectorField& J, const GridSpec& grid,
                             double x0, double y0, double z0, double x1,
                             double y1, double z1, double chargeWeight,
                             double dt);

/// Deposit current for all particles given their pre-move positions.
/// Positions in `buffer` must already be the *new* (unwrapped) positions;
/// `oldX/oldY/oldZ` hold the pre-move positions.
void depositCurrent(VectorField& J, const GridSpec& grid,
                    const ParticleBuffer& buffer,
                    const std::vector<double>& oldX,
                    const std::vector<double>& oldY,
                    const std::vector<double>& oldZ, double dt);

/// CIC deposit of charge density rho (units e n0) at grid nodes.
void depositCharge(Field3& rho, const GridSpec& grid,
                   const ParticleBuffer& buffer);

}  // namespace artsci::pic

/// \file deposit.hpp
/// Charge-conserving current deposition (Esirkepov 2001) with CIC shapes,
/// and CIC charge-density deposition for diagnostics.
///
/// Esirkepov's scheme guarantees the *discrete* continuity equation
///   (rho^{n+1} - rho^n)/dt + div J = 0
/// to machine precision on the Yee grid, so Gauss's law never drifts —
/// the property PIConGPU relies on (no Poisson cleaning step).
///
/// Two parallel accumulation strategies are provided (see DepositMode):
///
///  * Atomic — every particle scatters straight into the global field with
///    `#pragma omp atomic` adds. Lowest memory, but floating-point sums
///    arrive in scheduling order, so results are not reproducible across
///    runs or thread counts, and the atomics serialize under high
///    particle-per-cell contention.
///  * Tiled — the deterministic default: particles are binned into x/y
///    domain tiles and scattered into per-tile halo-padded private
///    accumulators (no synchronization), which are then reduced into the
///    global field in fixed tile order. Bit-identical for any thread count
///    and schedule (see deposit_buffer.hpp for the invariant's proof
///    sketch, and tests/pic/test_deposit_modes.cpp for its enforcement).
///
/// Both strategies share the scatter kernels in `detail` below, so they
/// compute identical per-particle contributions and differ only in the
/// order the contributions are summed (equal up to FP reassociation).
#pragma once

#include <cmath>

#include "pic/grid.hpp"
#include "pic/particles.hpp"

namespace artsci::pic {

class DepositBuffer;

/// Parallel accumulation strategy for the deposition entry points.
enum class DepositMode {
  Atomic,  ///< global-field `omp atomic` adds; fast path for halo overlap
  Tiled,   ///< per-tile private accumulators + ordered reduction (default)
};

namespace detail {

/// CIC node weights of coordinate `x` on the 5-node stencil centered at
/// node `ic` (relative offsets -2..+2). S(i) = max(0, 1 - |x - i|).
inline void cicWeights5(double x, long ic, double out[5]) {
  for (int r = 0; r < 5; ++r) {
    const double xi = static_cast<double>(ic + r - 2);
    const double d = std::abs(x - xi);
    out[r] = d < 1.0 ? 1.0 - d : 0.0;
  }
}

/// Esirkepov density-decomposition scatter for one particle that moved
/// from (x0,y0,z0) to (x1,y1,z1) in cell units (|x1-x0| < 1 cell per
/// axis). Emits every nonzero current contribution through
/// `sink.addJx/addJy/addJz(i, j, k, value)`; all emitted node indices lie
/// within +-2 of (floor(x0), floor(y0), floor(z0)). The arithmetic is
/// shared by the atomic and tiled paths so their per-particle
/// contributions are bit-identical.
template <class Sink>
inline void scatterEsirkepov(const GridSpec& grid, double x0, double y0,
                             double z0, double x1, double y1, double z1,
                             double chargeWeight, double dt, Sink&& sink) {
  const long icx = static_cast<long>(std::floor(x0));
  const long icy = static_cast<long>(std::floor(y0));
  const long icz = static_cast<long>(std::floor(z0));

  double S0x[5], S0y[5], S0z[5], S1x[5], S1y[5], S1z[5];
  cicWeights5(x0, icx, S0x);
  cicWeights5(y0, icy, S0y);
  cicWeights5(z0, icz, S0z);
  cicWeights5(x1, icx, S1x);
  cicWeights5(y1, icy, S1y);
  cicWeights5(z1, icz, S1z);

  double DSx[5], DSy[5], DSz[5];
  for (int r = 0; r < 5; ++r) {
    DSx[r] = S1x[r] - S0x[r];
    DSy[r] = S1y[r] - S0y[r];
    DSz[r] = S1z[r] - S0z[r];
  }

  // Esirkepov density decomposition weights.
  const double invVdt = 1.0 / (grid.cellVolume() * dt);
  const double fx = chargeWeight * grid.dx * invVdt;
  const double fy = chargeWeight * grid.dy * invVdt;
  const double fz = chargeWeight * grid.dz * invVdt;

  // Jx: accumulate along x for each (j,k).
  for (int j = 0; j < 5; ++j) {
    for (int k = 0; k < 5; ++k) {
      const double wyz = S0y[j] * S0z[k] + 0.5 * DSy[j] * S0z[k] +
                         0.5 * S0y[j] * DSz[k] + DSy[j] * DSz[k] / 3.0;
      if (wyz == 0.0) continue;
      double acc = 0.0;
      for (int i = 0; i < 5; ++i) {
        acc -= DSx[i] * wyz;
        if (acc != 0.0) {
          sink.addJx(icx + i - 2, icy + j - 2, icz + k - 2, fx * acc);
        }
      }
    }
  }
  // Jy.
  for (int i = 0; i < 5; ++i) {
    for (int k = 0; k < 5; ++k) {
      const double wxz = S0x[i] * S0z[k] + 0.5 * DSx[i] * S0z[k] +
                         0.5 * S0x[i] * DSz[k] + DSx[i] * DSz[k] / 3.0;
      if (wxz == 0.0) continue;
      double acc = 0.0;
      for (int j = 0; j < 5; ++j) {
        acc -= DSy[j] * wxz;
        if (acc != 0.0) {
          sink.addJy(icx + i - 2, icy + j - 2, icz + k - 2, fy * acc);
        }
      }
    }
  }
  // Jz.
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      const double wxy = S0x[i] * S0y[j] + 0.5 * DSx[i] * S0y[j] +
                         0.5 * S0x[i] * DSy[j] + DSx[i] * DSy[j] / 3.0;
      if (wxy == 0.0) continue;
      double acc = 0.0;
      for (int k = 0; k < 5; ++k) {
        acc -= DSz[k] * wxy;
        if (acc != 0.0) {
          sink.addJz(icx + i - 2, icy + j - 2, icz + k - 2, fz * acc);
        }
      }
    }
  }
}

/// CIC (trilinear) scatter of one particle's charge `qw` (already divided
/// by the cell volume) at position (x,y,z) in cell units. Emits the eight
/// node contributions through `sink.add(i, j, k, value)`; emitted indices
/// lie in [floor(.), floor(.)+1] per axis.
template <class Sink>
inline void scatterCic(double x, double y, double z, double qw, Sink&& sink) {
  const long i0 = static_cast<long>(std::floor(x));
  const long j0 = static_cast<long>(std::floor(y));
  const long k0 = static_cast<long>(std::floor(z));
  const double fx = x - static_cast<double>(i0);
  const double fy = y - static_cast<double>(j0);
  const double fz = z - static_cast<double>(k0);
  for (int a = 0; a < 2; ++a) {
    const double wx = a ? fx : 1.0 - fx;
    for (int b = 0; b < 2; ++b) {
      const double wy = b ? fy : 1.0 - fy;
      for (int c = 0; c < 2; ++c) {
        const double wz = c ? fz : 1.0 - fz;
        sink.add(i0 + a, j0 + b, k0 + c, qw * wx * wy * wz);
      }
    }
  }
}

}  // namespace detail

/// Deposit the current of one particle that moved from (x0,y0,z0) to
/// (x1,y1,z1) in cell units *without periodic wrapping* (|x1-x0| < 1 cell
/// per axis, guaranteed by CFL). `chargeWeight` is q * w.
/// Thread-safe via atomic adds (this is the DepositMode::Atomic kernel;
/// the rank-parallel domain driver also uses it for halo overlap).
void depositCurrentEsirkepov(VectorField& J, const GridSpec& grid,
                             double x0, double y0, double z0, double x1,
                             double y1, double z1, double chargeWeight,
                             double dt);

/// Deposit current for all particles given their pre-move positions.
/// Positions in `buffer` must already be the *new* (unwrapped) positions;
/// `oldX/oldY/oldZ` hold the pre-move positions, which must lie inside
/// [0, n) per axis (wrapped). With DepositMode::Tiled (the default) the
/// result is bit-identical for any OMP thread count; `scratch`, when
/// given, supplies reusable tile storage (must match `grid`) so steady-
/// state callers avoid per-call allocation.
void depositCurrent(VectorField& J, const GridSpec& grid,
                    const ParticleBuffer& buffer,
                    const std::vector<double>& oldX,
                    const std::vector<double>& oldY,
                    const std::vector<double>& oldZ, double dt,
                    DepositMode mode = DepositMode::Tiled,
                    DepositBuffer* scratch = nullptr);

/// CIC deposit of charge density rho (units e n0) at grid nodes.
/// Positions must lie inside [0, n) per axis (wrapped). Same mode /
/// scratch semantics as depositCurrent.
void depositCharge(Field3& rho, const GridSpec& grid,
                   const ParticleBuffer& buffer,
                   DepositMode mode = DepositMode::Tiled,
                   DepositBuffer* scratch = nullptr);

}  // namespace artsci::pic

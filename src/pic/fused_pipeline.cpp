#include "pic/fused_pipeline.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#include <cmath>
#include <cstring>

#include "obs/trace.hpp"
#include "pic/interpolate.hpp"
#include "pic/pusher.hpp"

namespace artsci::pic {

namespace {

/// Read accessor over one component's halo-padded tile cache. Global node
/// indices translate by the padded origin with precomputed strides — the
/// per-access periodic wrap (three modulo ops per Field3::at) is gone;
/// wrapping happened once when the cache row was filled.
struct CacheAt {
  const double* base;
  long originX;  ///< global x of padded local index 0 (tile x0 - 1)
  long originY;  ///< global y of padded local index 0 (tile y0 - 1)
  long strideY;  ///< padded y extent
  long strideZ;  ///< padded z extent
  double operator()(long i, long j, long k) const {
    return base[((i - originX) * strideY + (j - originY)) * strideZ +
                (k + 1)];
  }
};

/// Copy `f` over the tile's gather footprint [x0-1, x0+spanX+1) x
/// [y0-1, ...) x [-1, nz+1) into `dst`, wrapping once per cache row. The
/// CIC gather of a staggered sample reads at most one node beyond the
/// owned cells per side, so a halo of 1 suffices.
void fillCache(double* dst, const Field3& f, long x0, long spanX, long y0,
               long spanY, const GridSpec& g) {
  const long padY = spanY + 2;
  const long padZ = g.nz + 2;
  const double* raw = f.raw().data();
  for (long li = 0; li < spanX + 2; ++li) {
    const long gi = Field3::wrap(x0 - 1 + li, g.nx);
    for (long lj = 0; lj < padY; ++lj) {
      const long gj = Field3::wrap(y0 - 1 + lj, g.ny);
      const double* src = raw + (gi * g.ny + gj) * g.nz;
      double* row = dst + (li * padY + lj) * padZ;
      row[0] = src[g.nz - 1];
      std::memcpy(row + 1, src, sizeof(double) * static_cast<std::size_t>(g.nz));
      row[g.nz + 1] = src[0];
    }
  }
}

}  // namespace

FusedPipeline::FusedPipeline(const GridSpec& grid, TileDepositConfig accumCfg)
    : grid_(grid),
      index_(grid, accumCfg.tileEdgeX, accumCfg.tileEdgeY, grid.nz) {}

void FusedPipeline::pushAndDeposit(ParticleBuffer& p, const VectorField& E,
                                   const VectorField& B, VectorField& J,
                                   double dt, DepositBuffer& accum,
                                   std::vector<double>* bdx,
                                   std::vector<double>* bdy,
                                   std::vector<double>* bdz) {
  pushAndScatter(p, E, B, dt, accum, bdx, bdy, bdz);
  // Fixed-order tile reduction (shared with the split path).
  if (!p.empty()) {
    TRACE_SCOPE("pic", "reduce");
    accum.reduce(J, index_);
  }
}

void FusedPipeline::pushAndScatter(ParticleBuffer& p, const VectorField& E,
                                   const VectorField& B, double dt,
                                   DepositBuffer& accum,
                                   std::vector<double>* bdx,
                                   std::vector<double>* bdy,
                                   std::vector<double>* bdz) {
  ARTSCI_EXPECTS(dt > 0);
  ARTSCI_EXPECTS(accum.grid().nx == grid_.nx && accum.grid().ny == grid_.ny &&
                 accum.grid().nz == grid_.nz && accum.grid().dx == grid_.dx &&
                 accum.grid().dy == grid_.dy && accum.grid().dz == grid_.dz);
  // Full geometry match: equal tile counts alone would let mismatched
  // edges scatter outside a tile's padded accumulator.
  ARTSCI_EXPECTS(accum.tileCount() == index_.tileCount() &&
                 accum.tilesX() == index_.tilesX() &&
                 accum.tileEdgeX() == index_.tileEdgeX() &&
                 accum.tileEdgeY() == index_.tileEdgeY());
  ARTSCI_EXPECTS((bdx == nullptr) == (bdy == nullptr) &&
                 (bdx == nullptr) == (bdz == nullptr));
  const std::size_t n = p.size();

  // The one binning pass of the step: supercell sort by the pre-push
  // (= Esirkepov-center) position, canonical phase-space order within
  // each tile — the same order the split path's pre-push sort leaves the
  // buffer in (its deposit re-binning is stable, hence order-preserving),
  // which is what keeps the two paths bit-identical. Runs even for an
  // empty buffer so index() always reflects *this* call's occupancy.
  bool wrapped;
  {
    TRACE_SCOPE("pic", "supercell_sort");
    wrapped = index_.sort(p);
  }
  ARTSCI_EXPECTS_MSG(wrapped,
                     "fused pipeline: particle position outside [0, n) — "
                     "positions must be periodically wrapped");
  if (n == 0) return;

  if (bdx != nullptr) {
    bdx->resize(n);
    bdy->resize(n);
    bdz->resize(n);
  }

  const double qOverM = p.info().charge / p.info().mass;
  const double q = p.info().charge;
  const GridSpec& g = grid_;
  const double lx = static_cast<double>(g.nx);
  const double ly = static_cast<double>(g.ny);
  const double lz = static_cast<double>(g.nz);
  const long tiles = index_.tileCount();
  // Tile 0 is never ragged, so its spans bound every tile's cache size.
  const DepositBuffer::TileExtent e0 = accum.extentOf(0);
  const std::size_t compStride =
      static_cast<std::size_t>((e0.x1 - e0.x0 + 2) * (e0.y1 - e0.y0 + 2) *
                               (g.nz + 2));

  // Displacement guard: collected as a flag (throwing inside an OpenMP
  // region would terminate) and raised after the region. Oversized
  // displacements cannot corrupt memory — the Esirkepov scatter only
  // emits indices within +-2 of floor(old position) by construction —
  // they would just deposit unphysical currents and wrap wrongly.
  bool displacementOk = true;

#ifdef _OPENMP
  const std::size_t teamSize =
      static_cast<std::size_t>(omp_get_max_threads());
#else
  const std::size_t teamSize = 1;
#endif
  if (caches_.size() < teamSize) caches_.resize(teamSize);

#ifdef _OPENMP
#pragma omp parallel reduction(&& : displacementOk)
#endif
  {
    // One span per worker thread covering its whole share of the tile
    // loop — per-tile (let alone per-particle) spans would swamp the ring.
    TRACE_SCOPE("pic", "tile_pass");
    // This thread's E/B read-cache arena, reused across its tiles and
    // across steps (grow-only; no allocation in the steady state).
#ifdef _OPENMP
    std::vector<double>& cache =
        caches_[static_cast<std::size_t>(omp_get_thread_num())];
#else
    std::vector<double>& cache = caches_[0];
#endif
    cache.resize(6 * compStride);
#ifdef _OPENMP
#pragma omp for schedule(dynamic)
#endif
    for (long t = 0; t < tiles; ++t) {
      const SupercellIndex::Range range = index_.tileRange(t);
      if (range.begin == range.end) continue;
      const DepositBuffer::TileExtent e = accum.extentOf(t);
      const long spanX = e.x1 - e.x0;
      const long spanY = e.y1 - e.y0;
      const long padY = spanY + 2;
      const long padZ = g.nz + 2;

      const Field3* comps[6] = {&E.x, &E.y, &E.z, &B.x, &B.y, &B.z};
      for (int c = 0; c < 6; ++c)
        fillCache(cache.data() + static_cast<std::size_t>(c) * compStride,
                  *comps[c], e.x0, spanX, e.y0, spanY, g);
      const auto at = [&](int c) {
        return CacheAt{cache.data() + static_cast<std::size_t>(c) * compStride,
                       e.x0 - 1, e.y0 - 1, padY, padZ};
      };
      const CacheAt ex = at(0), ey = at(1), ez = at(2);
      const CacheAt bx = at(3), by = at(4), bz = at(5);

      const DepositBuffer::TileAccum sink = accum.zeroedTile(t);

      // (a) gather, with SoA-staged addressing. Yee staggering only ever
      // offsets an axis by 0 or 0.5, so a particle has just 6 distinct
      // staggered (floor, frac) pairs — two per axis — not the 18 the
      // six per-component gatherStaggeredAt calls recomputed. Phase 1
      // stages those pairs for a block of particles in SoA form (a flat
      // simd loop); the per-particle pass then reads its pairs from the
      // staging arrays and accumulates the 8 corners per component in
      // registers — corner terms add in (a,b,c)-ascending order with the
      // exact gatherStaggeredAt weight expression, so every field value
      // is bit-identical to the split path's gatherE/B (pinned by
      // test_fused_pipeline). Keeping the corner accumulation
      // particle-outer matters: a corner-outer/particle-inner layout is
      // an indirect gather the compiler cannot vectorize, and measured
      // ~20% slower end-to-end than this form.
      constexpr std::size_t kBlock = 64;
      long ix[2][kBlock], iy[2][kBlock], iz[2][kBlock];
      double fx[2][kBlock], fy[2][kBlock], fz[2][kBlock];
      const CacheAt comps6[6] = {ex, ey, ez, bx, by, bz};
      // Per component and axis: 0 -> offset 0.0 pair, 1 -> offset 0.5.
      static constexpr int sel[6][3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1},
                                        {0, 1, 1}, {1, 0, 1}, {1, 1, 0}};

      for (std::size_t blk = range.begin; blk < range.end; blk += kBlock) {
        const std::size_t m = std::min(kBlock, range.end - blk);
        for (int s = 0; s < 2; ++s) {
          const double off = s ? 0.5 : 0.0;
#ifdef _OPENMP
#pragma omp simd
#endif
          for (std::size_t u = 0; u < m; ++u) {
            const double gx = p.x[blk + u] - off;
            const double gy = p.y[blk + u] - off;
            const double gz = p.z[blk + u] - off;
            const long i0 = static_cast<long>(std::floor(gx));
            const long j0 = static_cast<long>(std::floor(gy));
            const long k0 = static_cast<long>(std::floor(gz));
            ix[s][u] = i0;
            iy[s][u] = j0;
            iz[s][u] = k0;
            fx[s][u] = gx - static_cast<double>(i0);
            fy[s][u] = gy - static_cast<double>(j0);
            fz[s][u] = gz - static_cast<double>(k0);
          }
        }
        for (std::size_t u = 0; u < m; ++u) {
          const std::size_t i = blk + u;
          const double ox = p.x[i], oy = p.y[i], oz = p.z[i];
          double field[6];  // Ex Ey Ez Bx By Bz
          for (int comp = 0; comp < 6; ++comp) {
            const CacheAt& f = comps6[comp];
            const long i0 = ix[sel[comp][0]][u];
            const long j0 = iy[sel[comp][1]][u];
            const long k0 = iz[sel[comp][2]][u];
            const double fxv = fx[sel[comp][0]][u];
            const double fyv = fy[sel[comp][1]][u];
            const double fzv = fz[sel[comp][2]][u];
            double acc = 0.0;
            for (int a = 0; a < 2; ++a) {
              const double wxp = a ? fxv : 1.0 - fxv;
              for (int b = 0; b < 2; ++b) {
                const double wyp = b ? fyv : 1.0 - fyv;
                for (int c = 0; c < 2; ++c) {
                  const double wzp = c ? fzv : 1.0 - fzv;
                  acc += wxp * wyp * wzp * f(i0 + a, j0 + b, k0 + c);
                }
              }
            }
            field[comp] = acc;
          }
          const Vec3d Ep{field[0], field[1], field[2]};
          const Vec3d Bp{field[3], field[4], field[5]};
          // (b) push + move.
          const Vec3d uOld{p.ux[i], p.uy[i], p.uz[i]};
          const double gOld = std::sqrt(1.0 + uOld.dot(uOld));
          const Vec3d uNew = borisPush(uOld, Ep, Bp, qOverM, dt);
          const double gNew = std::sqrt(1.0 + uNew.dot(uNew));
          p.ux[i] = uNew.x;
          p.uy[i] = uNew.y;
          p.uz[i] = uNew.z;
          if (bdx != nullptr) {
            (*bdx)[i] = (uNew.x / gNew - uOld.x / gOld) / dt;
            (*bdy)[i] = (uNew.y / gNew - uOld.y / gOld) / dt;
            (*bdz)[i] = (uNew.z / gNew - uOld.z / gOld) / dt;
          }
          const double nx1 = ox + uNew.x / gNew * dt / g.dx;
          const double ny1 = oy + uNew.y / gNew * dt / g.dy;
          const double nz1 = oz + uNew.z / gNew * dt / g.dz;
          displacementOk = displacementOk && std::abs(nx1 - ox) < 1.0 &&
                           std::abs(ny1 - oy) < 1.0 &&
                           std::abs(nz1 - oz) < 1.0;
          // (c) deposit from the unwrapped displacement, straight into the
          // tile's private accumulator — the support-clipped bit-exact
          // replica of detail::scatterEsirkepov.
          DepositBuffer::scatterEsirkepovTile(g, ox, oy, oz, nx1, ny1, nz1,
                                              q * p.w[i], dt, sink);
          // (d) wrap in place — the old position died in this iteration's
          // registers; no snapshot vectors, no separate wrap sweep.
          p.x[i] = wrapCoordinate(nx1, lx);
          p.y[i] = wrapCoordinate(ny1, ly);
          p.z[i] = wrapCoordinate(nz1, lz);
        }
      }
    }
  }
  ARTSCI_EXPECTS_MSG(displacementOk,
                     "fused pipeline: particle displacement >= 1 cell in one "
                     "step — dt violates the CFL displacement bound");
}

}  // namespace artsci::pic

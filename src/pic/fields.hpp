/// \file fields.hpp
/// FDTD Maxwell solver on the Yee grid (normalized units, c = 1):
///   dB/dt = -curl E        dE/dt = curl B - J
/// advanced as half-B, full-E, half-B so E and B are both synchronized at
/// integer steps for the particle gather.
#pragma once

#include "pic/grid.hpp"

namespace artsci::pic {

class FieldSolver {
 public:
  explicit FieldSolver(const GridSpec& grid);

  /// CFL number dt * c * sqrt(1/dx^2 + 1/dy^2 + 1/dz^2); must be < 1.
  double cflNumber(double dt) const;

  /// B -= dt/2 * curl E. Optional [iBegin, iEnd) restricts the update to an
  /// x-slab (used by the rank-decomposed simulation); default whole grid.
  void updateBHalf(VectorField& B, const VectorField& E, double dt,
                   long iBegin = 0, long iEnd = -1) const;

  /// E += dt * (curl B - J), optionally restricted to an x-slab.
  void updateE(VectorField& E, const VectorField& B, const VectorField& J,
               double dt, long iBegin = 0, long iEnd = -1) const;

  /// Divergence of B at cell corners (should stay 0 to machine precision).
  double maxDivB(const VectorField& B) const;

  /// Total electromagnetic field energy (plasma units).
  double fieldEnergy(const VectorField& E, const VectorField& B) const;
  double electricEnergy(const VectorField& E) const;
  double magneticEnergy(const VectorField& B) const;

  const GridSpec& grid() const { return grid_; }

 private:
  GridSpec grid_;
};

}  // namespace artsci::pic

/// \file pusher.hpp
/// Relativistic Boris particle pusher [Boris 1970] in normalized units:
/// du/dt = (q/m) (E + beta x B), u = gamma beta in units of m c.
#pragma once

#include "common/vec3.hpp"

namespace artsci::pic {

/// Advance the momentum u by one time step under fields (E, B).
/// Returns the new momentum; the classic half-E, rotate-B, half-E scheme
/// preserves gyration exactly for E = 0 and is time-reversible.
inline Vec3d borisPush(const Vec3d& u, const Vec3d& E, const Vec3d& B,
                       double chargeOverMass, double dt) {
  const double h = 0.5 * chargeOverMass * dt;
  // Half electric kick.
  Vec3d uMinus = u + E * h;
  // Magnetic rotation.
  const double gammaMinus =
      std::sqrt(1.0 + uMinus.dot(uMinus));
  const Vec3d t = B * (h / gammaMinus);
  const Vec3d uPrime = uMinus + uMinus.cross(t);
  const Vec3d s = t * (2.0 / (1.0 + t.dot(t)));
  const Vec3d uPlus = uMinus + uPrime.cross(s);
  // Second half electric kick.
  return uPlus + E * h;
}

}  // namespace artsci::pic

/// \file domain.hpp
/// SPMD domain-decomposed PIC driver: the grid is split into x-slabs, one
/// per rank ("GCD"), with barrier-synchronized phases per step — the
/// shared-memory equivalent of PIConGPU's MPI domain decomposition with
/// next-neighbour halo exchange. Particles migrate between slabs through
/// per-rank mailboxes; current deposition near slab boundaries overlaps
/// into the neighbour slab (the halo), handled by atomic accumulation.
///
/// Determinism: unlike the single-rank Simulation (whose tiled deposition
/// is bit-reproducible across thread counts, see pic/deposit_buffer.hpp),
/// the cross-rank halo overlap here commits atomic float adds in rank
/// arrival order, so halo cells are *not* bit-reproducible across runs —
/// see docs/ARCHITECTURE.md's invariant table.
///
/// The Fig 4 bench measures this driver's weak scaling: FOM vs ranks with
/// the grid grown proportionally.
#pragma once

#include <mutex>

#include "common/thread_pool.hpp"
#include "pic/simulation.hpp"

namespace artsci::pic {

class DistributedSimulation {
 public:
  struct Config {
    GridSpec grid;
    double dt = 0.05;        ///< 1/omega_pe units; must satisfy CFL
    std::size_t ranks = 2;   ///< slab count; requires grid.nx >= ranks
  };

  explicit DistributedSimulation(Config cfg);

  /// Register a species; returns its index (shared by all ranks).
  std::size_t addSpecies(const SpeciesInfo& info);

  /// Stage particles for the whole domain (any rank's slab); distribute()
  /// then hands each to its owner rank.
  ParticleBuffer& staging(std::size_t speciesIdx);
  void distribute();

  /// Run `steps` full PIC cycles on a rank team.
  void run(long steps);

  const GridSpec& grid() const { return cfg_.grid; }
  /// Number of rank slabs (thread-team size during run()).
  std::size_t ranks() const { return cfg_.ranks; }
  const VectorField& fieldE() const { return E_; }
  const VectorField& fieldB() const { return B_; }
  const FieldSolver& solver() const { return solver_; }
  /// Number of completed steps.
  long stepIndex() const { return step_; }
  /// Accumulated FOM work counters (wall-clock dependent).
  const FomCounters& fom() const { return fom_; }

  /// Concatenate all ranks' particles of one species (diagnostics).
  ParticleBuffer gatherSpecies(std::size_t speciesIdx) const;

  /// Slab [begin, end) of cells in x owned by `rank`.
  std::pair<long, long> slabOf(std::size_t rank) const;

 private:
  struct Migrant {
    Vec3d pos, u;
    double w;
  };

  void stepRank(std::size_t rank, Barrier& barrier);
  std::size_t ownerOf(double xCell) const;

  Config cfg_;
  FieldSolver solver_;
  VectorField E_, B_, J_;
  std::vector<SpeciesInfo> speciesInfo_;
  std::vector<ParticleBuffer> staging_;
  /// particles_[rank][species]
  std::vector<std::vector<ParticleBuffer>> particles_;
  /// inbox_[rank][species] + its mutex
  std::vector<std::vector<std::vector<Migrant>>> inbox_;
  std::vector<std::unique_ptr<std::mutex>> inboxMutex_;
  long step_ = 0;
  FomCounters fom_;
};

}  // namespace artsci::pic

/// \file domain.hpp
/// SPMD domain-decomposed PIC driver: the grid is split into x-slabs, one
/// per rank ("GCD"), with barrier-synchronized phases per step — the
/// shared-memory equivalent of PIConGPU's MPI domain decomposition with
/// next-neighbour halo exchange.
///
/// The default (ParticlePipeline::Fused) rank step runs the supercell-
/// fused pipeline of fused_pipeline.hpp per rank and is bit-reproducible:
/// the same run produces the same fields AND the same particle multiset
/// for any rank count, any OMP thread count, and any repetition. Three
/// ingredients make that hold:
///
///  1. *Tile-column-aligned slabs.* Rank slabs are whole columns of
///     deposit tiles (Config::tiles), so every tile's particles live on
///     exactly one rank and each tile accumulator is computed whole, by
///     one rank, in one canonical-order fold. Slab boundaries cutting
///     through a tile would split that fold into per-rank partial sums,
///     and grouped FP partial sums do not recombine to the sequential
///     fold's bits — alignment is what makes rank-count invariance
///     possible at all, hence the ctor's ranks <= tile-columns bound.
///  2. *Canonical in-tile order.* SupercellIndex::sort orders each tile
///     by the x-major phase-space key, so the per-tile scatter sequence
///     is a pure function of the particle multiset — independent of how
///     distribution and migration history ordered each rank's buffer.
///  3. *Collective fixed-order halo reduction.* After all ranks scatter
///     (concurrently, into rank-private accumulators), every rank walks
///     ALL ranks' occupied tiles in ascending tile order and commits only
///     the rows of its own slab (DepositBuffer::reduceTileRows): writes
///     are disjoint across ranks, reads are shared and immutable, and
///     every J cell receives its per-tile partial sums in exactly the
///     order the single-rank reduce uses. Halo rows that spill into a
///     neighbour's slab are committed by that neighbour from this rank's
///     accumulator — the halo exchange, with no atomics and no
///     arrival-order dependence.
///
/// Migration is deterministic too: leaving particles go into
/// per-(source, destination) outboxes written only by the source rank and
/// absorbed in ascending source-rank order — no mutexes, no
/// scheduling-dependent arrival order.
///
/// The net per-step add sequence into every field cell equals the
/// single-rank Simulation's (same tiles config), so a DistributedSimulation
/// run is bit-identical to the fused Simulation whatever the rank count.
/// Enforced by tests/pic/test_domain.cpp.
///
/// ParticlePipeline::Split keeps the legacy rank step (atomic halo
/// deposits, mutex inboxes) for the fig4 old/new A/B bench only: it is
/// order-nondeterministic, and without OpenMP its "atomic" sinks are
/// plain racy adds — the ctor rejects Split with ranks > 1 in non-OpenMP
/// builds.
///
/// The Fig 4 bench measures this driver's weak scaling: FOM vs ranks with
/// the grid grown proportionally.
#pragma once

#include <memory>
#include <mutex>

#include "common/thread_pool.hpp"
#include "pic/simulation.hpp"

namespace artsci::pic {

class DistributedSimulation {
 public:
  struct Config {
    GridSpec grid;
    double dt = 0.05;       ///< 1/omega_pe units; must satisfy CFL
    std::size_t ranks = 2;  ///< slab count; requires ranks <= x tile columns
    /// Rank particle-update path. Fused (default) is the deterministic
    /// supercell pipeline documented above; Split is the legacy
    /// non-reproducible step, kept for the fig4 A/B bench.
    ParticlePipeline pipeline = ParticlePipeline::Fused;
    /// Deposit/supercell tile geometry. Rank slabs are whole tile
    /// columns, so ceil(nx / tileEdgeX) must be >= ranks (shrink
    /// tileEdgeX for extreme decompositions, e.g. one cell per rank).
    /// Must equal SimulationConfig::tiles when comparing against the
    /// single-rank driver bit-for-bit.
    TileDepositConfig tiles = {};
  };

  explicit DistributedSimulation(Config cfg);

  /// Register a species; returns its index (shared by all ranks).
  std::size_t addSpecies(const SpeciesInfo& info);

  /// Stage particles for the whole domain (any rank's slab); distribute()
  /// then hands each to its owner rank.
  ParticleBuffer& staging(std::size_t speciesIdx);
  /// Hand every staged particle to its owner rank. Throws ContractError
  /// if any staged position lies outside the domain (NaN included) on
  /// any axis — the distributed step assumes wrapped positions, and a
  /// silent clamp here would mean a wrong-rank particle later.
  void distribute();

  /// Run `steps` full PIC cycles on a rank team.
  void run(long steps);

  const GridSpec& grid() const { return cfg_.grid; }
  /// Number of rank slabs (thread-team size during run()).
  std::size_t ranks() const { return cfg_.ranks; }
  /// The rank particle-update path in use (Config::pipeline).
  ParticlePipeline particlePipeline() const { return cfg_.pipeline; }
  const VectorField& fieldE() const { return E_; }
  const VectorField& fieldB() const { return B_; }
  /// Current density deposited by the most recent step.
  const VectorField& currentJ() const { return J_; }
  const FieldSolver& solver() const { return solver_; }
  /// Number of completed steps.
  long stepIndex() const { return step_; }
  /// Accumulated FOM work counters (wall-clock dependent).
  const FomCounters& fom() const { return fom_; }

  /// Concatenate all ranks' particles of one species (diagnostics). Rank
  /// buffer order depends on migration history, so compare gathered
  /// buffers as multisets (e.g. after a canonical sort), not elementwise.
  ParticleBuffer gatherSpecies(std::size_t speciesIdx) const;

  /// Slab [begin, end) of cells in x owned by `rank` — whole tile
  /// columns, distributed base+remainder over ranks.
  std::pair<long, long> slabOf(std::size_t rank) const;

  /// Owner rank of a particle at x (cell units). Throws ContractError
  /// when x is outside [0, nx) — NaN included — instead of silently
  /// assigning a rank.
  std::size_t ownerOf(double xCell) const;

 private:
  struct Migrant {
    Vec3d pos, u;
    double w;
  };

  /// Tile columns [begin, end) owned by `rank` (base+remainder split).
  std::pair<long, long> columnsOf(std::size_t rank) const;
  /// Inverse of columnsOf: the rank owning tile column `column`.
  std::size_t rankOfColumn(long column) const;

  void stepRankFused(std::size_t rank, Barrier& barrier);
  void stepRankSplit(std::size_t rank, Barrier& barrier);

  Config cfg_;
  long tileEdgeX_ = 0;  ///< x tile edge, clamped to the grid like the buffers
  long tilesX_ = 0;     ///< number of x tile columns
  FieldSolver solver_;
  VectorField E_, B_, J_;
  std::vector<SpeciesInfo> speciesInfo_;
  std::vector<ParticleBuffer> staging_;
  /// particles_[rank][species]
  std::vector<std::vector<ParticleBuffer>> particles_;
  /// Fused path, per rank: private tile accumulators + fused driver over
  /// the full grid geometry (only owned tiles are ever touched; the full
  /// extent keeps tile indices global, which the collective reduction
  /// and the cross-rank occupancy lookups rely on).
  std::vector<std::unique_ptr<DepositBuffer>> depositBuf_;
  std::vector<std::unique_ptr<FusedPipeline>> fused_;
  /// Fused path: outbox_[src][dst][species], written only by rank `src`
  /// during its migrant scan, drained only by rank `dst` during the
  /// absorb phase (barriers separate the two) — deterministic migration
  /// with no locks.
  std::vector<std::vector<std::vector<std::vector<Migrant>>>> outbox_;
  /// Split path (legacy): shared inbox_[rank][species] + its mutex;
  /// arrival order is thread scheduling — the non-reproducibility the
  /// fused path removes.
  std::vector<std::vector<std::vector<Migrant>>> inbox_;
  std::vector<std::unique_ptr<std::mutex>> inboxMutex_;
  long step_ = 0;
  FomCounters fom_;
};

}  // namespace artsci::pic

/// \file khi.hpp
/// Kelvin-Helmholtz instability setup (paper §IV-A): two counter-
/// propagating, charge- and current-neutral plasma streams with velocity
/// +-beta along x, sheared in y (two shear surfaces so the box is fully
/// periodic), 9 particles per cell, small seeded perturbation.
///
/// The synthetic radiation detector sits in the +x direction, so the
/// +beta stream is "approaching" and the -beta stream "receding" — the
/// Doppler classification of Fig 9.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "pic/simulation.hpp"

namespace artsci::pic {

struct KhiConfig {
  GridSpec grid{32, 64, 8, 0.2, 0.2, 0.2};
  double dt = 0.08;           ///< 1/omega_pe
  double beta = 0.2;          ///< stream speed v/c (paper value)
  int particlesPerCell = 9;   ///< paper value
  double thermalMomentum = 0.002;  ///< isotropic u spread (gamma beta)
  double perturbation = 0.005;     ///< seed amplitude on u_y
  int perturbationMode = 1;        ///< wavelengths per box length
  double ionMassRatio = 100.0;     ///< reduced ion mass for affordable runs
  bool mobileIons = true;          ///< stream ions with electrons
  std::uint64_t seed = 20240613;
};

/// Species indices assigned by initializeKhi.
struct KhiSpecies {
  std::size_t electrons = 0;
  std::size_t ions = 0;  ///< == electrons when mobileIons is false
};

/// Fill an empty Simulation with the KHI plasma; the Simulation must have
/// been built with a grid equal to cfg.grid.
KhiSpecies initializeKhi(Simulation& sim, const KhiConfig& cfg);

/// Stream velocity profile: +beta inside the middle-half of y, else -beta.
double khiStreamVelocity(double yCell, long ny, double beta);

/// Regions of the KHI box as used in Fig 9.
enum class KhiRegion { kApproaching, kReceding, kVortex };

/// Classify by y position: within `vortexHalfWidthCells` of either shear
/// surface -> vortex, otherwise by the local stream direction
/// (+x stream approaches the detector at +x).
KhiRegion classifyKhiRegion(double yCell, long ny,
                            double vortexHalfWidthCells);

const char* khiRegionName(KhiRegion region);

}  // namespace artsci::pic

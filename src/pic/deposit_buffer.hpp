/// \file deposit_buffer.hpp
/// Deterministic tiled deposition: per-tile halo-padded accumulators and a
/// fixed-order reduction, replacing `omp atomic` float accumulation in the
/// deposition hot loop (DepositMode::Tiled).
///
/// Why: the in-transit pipeline trains surrogates from live PIC output, so
/// run-to-run bit-reproducibility of the producer is a correctness
/// property. Atomic float adds commit in scheduling order; since FP
/// addition is not associative, two runs (or two thread counts) produce
/// different low-order bits. Atomics also serialize under high
/// particle-per-cell contention, so this is a scaling lever too
/// (bench/deposit_modes.cpp measures both effects).
///
/// How: the grid is partitioned into x/y tiles (full z columns — the KHI
/// box is thin in z). Each deposition call
///  1. *bins* particles by the tile of their (floor(x), floor(y)) cell
///     with a stable counting sort — per-tile order is ascending particle
///     index, independent of threads;
///  2. *scatters* each tile's particles, one tile per task, into that
///     tile's private halo-padded accumulator — no synchronization, since
///     no other tile writes it (the +-2-cell Esirkepov stencil stays
///     within the halo by construction);
///  3. *reduces* the tile accumulators into the global field serially in
///     ascending tile order, wrapping padded cells periodically.
///
/// Determinism invariant: every global cell receives its partial sums
/// grouped per tile and ordered by (tile index, particle index within
/// tile). Tile geometry depends only on (grid, config) and binning only
/// on particle positions, so the summation order — hence every bit of the
/// result — is invariant under OMP_NUM_THREADS and scheduling. Enforced
/// by tests/pic/test_deposit_modes.cpp across 1/2/8 threads.
#pragma once

#include <cstdint>
#include <vector>

#include "pic/deposit.hpp"
#include "pic/grid.hpp"
#include "pic/particles.hpp"

namespace artsci::pic {

/// Tile geometry knobs for DepositBuffer. The default 8x8 (x cells per
/// tile in x/y) balances parallelism (enough tiles for the thread team)
/// against reduction overhead (halo cells are reduced once per touching
/// tile); edges are clamped to the grid extent.
struct TileDepositConfig {
  long tileEdgeX = 8;  ///< owned cells per tile along x (>= 1)
  long tileEdgeY = 8;  ///< owned cells per tile along y (>= 1)
};

/// Reusable tile-accumulator storage + binning scratch for deterministic
/// deposition on one grid. Not thread-safe: one DepositBuffer per
/// concurrent depositing driver (it is itself internally OpenMP-parallel).
/// Steady-state callers (Simulation) keep one instance alive across steps
/// so no allocation happens in the hot loop.
///
/// Binning is a SupercellIndex with full-z tile columns (one stable
/// counting sort shared with the supercell sort of the fused pipeline);
/// the fused pipeline scatters into the same accumulators through
/// zeroedTile()/reduce() below instead of calling depositCurrent.
class DepositBuffer {
 public:
  /// Halo width in cells around each tile's owned region, per axis and
  /// side. 2 covers the Esirkepov stencil (+-2 nodes around floor(old
  /// position)) and the CIC charge stencil (+1 node).
  static constexpr long kHalo = 2;

  /// Sizes tile storage for `grid`; geometry is fixed for the lifetime of
  /// the buffer (rebuild for a different grid).
  explicit DepositBuffer(const GridSpec& grid, TileDepositConfig cfg = {});

  /// Current deposition for all particles of `buffer` (same contract as
  /// the free depositCurrent): `old*` are the wrapped pre-move positions
  /// in [0, n) per axis, `buffer.x/y/z` the unwrapped post-move positions.
  /// Accumulates into J (does not zero it first). Bit-identical for any
  /// thread count.
  void depositCurrent(VectorField& J, const ParticleBuffer& buffer,
                      const std::vector<double>& oldX,
                      const std::vector<double>& oldY,
                      const std::vector<double>& oldZ, double dt);

  /// CIC charge deposition (same contract as the free depositCharge):
  /// positions wrapped into [0, n). Accumulates into rho. Bit-identical
  /// for any thread count.
  void depositCharge(Field3& rho, const ParticleBuffer& buffer);

  const GridSpec& grid() const { return grid_; }
  long tilesX() const { return bins_.tilesX(); }
  long tilesY() const { return bins_.tilesY(); }
  long tileCount() const { return bins_.tileCount(); }
  long tileEdgeX() const { return bins_.tileEdgeX(); }
  long tileEdgeY() const { return bins_.tileEdgeY(); }

  /// Cell range [x0,x1) x [y0,y1) owned by one tile (full z column).
  /// Public so the fused pipeline can size its tile field caches.
  struct TileExtent {
    long x0 = 0, x1 = 0, y0 = 0, y1 = 0;
  };
  TileExtent extentOf(long tile) const;

  /// Raw scatter view into one tile's halo-padded accumulator: the exact
  /// sink the internal deposit loops use. Indices are *global* cell
  /// coordinates — translation by the padded origin replaces per-write
  /// periodic wrapping (the reduction wraps once per padded cell). Every
  /// index within +-kHalo of a cell the tile owns is valid; nothing else.
  struct TileAccum {
    double* jx;    ///< x-component accumulator (also the charge plane)
    double* jy;    ///< y-component accumulator
    double* jz;    ///< z-component accumulator
    long originX;  ///< global x of padded local index 0 (tile x0 - halo)
    long originY;  ///< global y of padded local index 0 (tile y0 - halo)
    long strideY;  ///< padded y extent
    long strideZ;  ///< padded z extent

    /// Flat offset of global cell (i, j, k) inside the padded tile.
    long index(long i, long j, long k) const {
      return ((i - originX) * strideY + (j - originY)) * strideZ +
             (k + DepositBuffer::kHalo);
    }
    void addJx(long i, long j, long k, double v) const {
      jx[index(i, j, k)] += v;
    }
    void addJy(long i, long j, long k, double v) const {
      jy[index(i, j, k)] += v;
    }
    void addJz(long i, long j, long k, double v) const {
      jz[index(i, j, k)] += v;
    }
    /// Scalar-deposit alias (charge lands in the jx plane).
    void add(long i, long j, long k, double v) const {
      jx[index(i, j, k)] += v;
    }
  };

  /// Fast-path Esirkepov scatter for a tile accumulator: emits the exact
  /// same contribution values in the exact same order as
  /// detail::scatterEsirkepov would into the same sink — it only skips
  /// the iterations the reference kernel's `== 0.0` guards skip (the
  /// shape functions' zero support) and hoists the strided row pointers
  /// out of the inner loops. The fused pipeline's per-particle scatter;
  /// tests/pic/test_fused_pipeline.cpp asserts bitwise equality against
  /// the reference kernel.
  static void scatterEsirkepovTile(const GridSpec& grid, double x0, double y0,
                                   double z0, double x1, double y1, double z1,
                                   double chargeWeight, double dt,
                                   const TileAccum& sink);

  /// Zero the first `components` planes (1..3) of tile `tile`'s
  /// accumulator and return a scatter view into it (charge deposits only
  /// touch the jx plane; pass 1 to skip zeroing the other two). Safe to
  /// call from concurrent threads for *distinct* tiles (the fused
  /// pipeline's per-tile pass); the view stays valid until the next
  /// geometry-changing call.
  TileAccum zeroedTile(long tile, int components = 3);

  /// Fixed-order reduction of every tile `occupancy` marks non-empty into
  /// J (ascending tile order, serial — the determinism-critical step).
  /// `occupancy` must share this buffer's tile geometry; the fused
  /// pipeline passes its post-sort SupercellIndex.
  void reduce(VectorField& J, const SupercellIndex& occupancy);

  /// Reduce one tile's accumulators (all three components) into J, but
  /// commit only destination rows whose wrapped global x index lies in
  /// [xBegin, xEnd). The rank-decomposed driver's collective reduction:
  /// every rank applies all ranks' occupied tiles in the same fixed
  /// (tile, source-rank) order restricted to its own slab rows, so the
  /// writes are disjoint across concurrent ranks while every cell still
  /// receives its partial sums in the canonical global order (equal to
  /// the single-rank reduce; see pic/domain.hpp). The caller checks
  /// occupancy — this call assumes the tile was scattered this step.
  void reduceTileRows(VectorField& J, long tile, long xBegin,
                      long xEnd) const;

 private:
  /// Stable counting sort of particle indices by owning tile, delegated
  /// to the SupercellIndex member. Throws ContractError if any position
  /// (z included — it doesn't affect the tile key but an unwrapped z
  /// would scatter outside the padded column) lies outside [0, n).
  void binParticles(const std::vector<double>& xs,
                    const std::vector<double>& ys,
                    const std::vector<double>& zs);

  /// Base pointer of component `comp` (0..2) of tile `tile`.
  double* tileComponent(long tile, int comp) {
    return store_.data() +
           static_cast<std::size_t>((tile * 3 + comp) * tileStride_);
  }
  const double* tileComponent(long tile, int comp) const {
    return store_.data() +
           static_cast<std::size_t>((tile * 3 + comp) * tileStride_);
  }

  /// Serially add `comp` of every tile `occ` marks non-empty into `dst`
  /// in ascending tile order, wrapping padded cells periodically.
  void reduceComponent(Field3& dst, int comp,
                       const SupercellIndex& occ) const;

  GridSpec grid_;
  /// Unified binning: x/y tiles over full z columns. Also the occupancy
  /// source for the internal deposit entry points.
  SupercellIndex bins_;
  long padX_ = 0, padY_ = 0, padZ_ = 0;  ///< padded accumulator extents
  long tileStride_ = 0;                  ///< padX_ * padY_ * padZ_
  /// Accumulators, [tile][component][padX_ x padY_ x padZ_] row-major.
  std::vector<double> store_;
  /// Precomputed periodic wrap of padded z index -> global z index.
  std::vector<long> wrapZ_;
};

}  // namespace artsci::pic

/// \file deposit_buffer.hpp
/// Deterministic tiled deposition: per-tile halo-padded accumulators and a
/// fixed-order reduction, replacing `omp atomic` float accumulation in the
/// deposition hot loop (DepositMode::Tiled).
///
/// Why: the in-transit pipeline trains surrogates from live PIC output, so
/// run-to-run bit-reproducibility of the producer is a correctness
/// property. Atomic float adds commit in scheduling order; since FP
/// addition is not associative, two runs (or two thread counts) produce
/// different low-order bits. Atomics also serialize under high
/// particle-per-cell contention, so this is a scaling lever too
/// (bench/deposit_modes.cpp measures both effects).
///
/// How: the grid is partitioned into x/y tiles (full z columns — the KHI
/// box is thin in z). Each deposition call
///  1. *bins* particles by the tile of their (floor(x), floor(y)) cell
///     with a stable counting sort — per-tile order is ascending particle
///     index, independent of threads;
///  2. *scatters* each tile's particles, one tile per task, into that
///     tile's private halo-padded accumulator — no synchronization, since
///     no other tile writes it (the +-2-cell Esirkepov stencil stays
///     within the halo by construction);
///  3. *reduces* the tile accumulators into the global field serially in
///     ascending tile order, wrapping padded cells periodically.
///
/// Determinism invariant: every global cell receives its partial sums
/// grouped per tile and ordered by (tile index, particle index within
/// tile). Tile geometry depends only on (grid, config) and binning only
/// on particle positions, so the summation order — hence every bit of the
/// result — is invariant under OMP_NUM_THREADS and scheduling. Enforced
/// by tests/pic/test_deposit_modes.cpp across 1/2/8 threads.
#pragma once

#include <cstdint>
#include <vector>

#include "pic/deposit.hpp"
#include "pic/grid.hpp"
#include "pic/particles.hpp"

namespace artsci::pic {

/// Tile geometry knobs for DepositBuffer. The default 8x8 (x cells per
/// tile in x/y) balances parallelism (enough tiles for the thread team)
/// against reduction overhead (halo cells are reduced once per touching
/// tile); edges are clamped to the grid extent.
struct TileDepositConfig {
  long tileEdgeX = 8;  ///< owned cells per tile along x (>= 1)
  long tileEdgeY = 8;  ///< owned cells per tile along y (>= 1)
};

/// Reusable tile-accumulator storage + binning scratch for deterministic
/// deposition on one grid. Not thread-safe: one DepositBuffer per
/// concurrent depositing driver (it is itself internally OpenMP-parallel).
/// Steady-state callers (Simulation) keep one instance alive across steps
/// so no allocation happens in the hot loop.
class DepositBuffer {
 public:
  /// Halo width in cells around each tile's owned region, per axis and
  /// side. 2 covers the Esirkepov stencil (+-2 nodes around floor(old
  /// position)) and the CIC charge stencil (+1 node).
  static constexpr long kHalo = 2;

  /// Sizes tile storage for `grid`; geometry is fixed for the lifetime of
  /// the buffer (rebuild for a different grid).
  explicit DepositBuffer(const GridSpec& grid, TileDepositConfig cfg = {});

  /// Current deposition for all particles of `buffer` (same contract as
  /// the free depositCurrent): `old*` are the wrapped pre-move positions
  /// in [0, n) per axis, `buffer.x/y/z` the unwrapped post-move positions.
  /// Accumulates into J (does not zero it first). Bit-identical for any
  /// thread count.
  void depositCurrent(VectorField& J, const ParticleBuffer& buffer,
                      const std::vector<double>& oldX,
                      const std::vector<double>& oldY,
                      const std::vector<double>& oldZ, double dt);

  /// CIC charge deposition (same contract as the free depositCharge):
  /// positions wrapped into [0, n). Accumulates into rho. Bit-identical
  /// for any thread count.
  void depositCharge(Field3& rho, const ParticleBuffer& buffer);

  const GridSpec& grid() const { return grid_; }
  long tilesX() const { return tilesX_; }
  long tilesY() const { return tilesY_; }
  long tileCount() const { return tilesX_ * tilesY_; }

 private:
  /// Cell range [x0,x1) x [y0,y1) owned by one tile.
  struct TileExtent {
    long x0 = 0, x1 = 0, y0 = 0, y1 = 0;
  };
  TileExtent extentOf(long tile) const;

  /// Stable counting sort of particle indices by owning tile (key:
  /// floor(xs), floor(ys)). Fills offsets_/perm_; throws ContractError if
  /// any position (z included — it doesn't affect the tile key but an
  /// unwrapped z would scatter outside the padded column) lies outside
  /// [0, n).
  void binParticles(const std::vector<double>& xs,
                    const std::vector<double>& ys,
                    const std::vector<double>& zs);

  /// Base pointer of component `comp` (0..2) of tile `tile`.
  double* tileComponent(long tile, int comp) {
    return store_.data() +
           static_cast<std::size_t>((tile * 3 + comp) * tileStride_);
  }
  const double* tileComponent(long tile, int comp) const {
    return store_.data() +
           static_cast<std::size_t>((tile * 3 + comp) * tileStride_);
  }

  /// Serially add `comp` of every non-empty tile into `dst` in ascending
  /// tile order (the determinism-critical step), wrapping halo cells.
  void reduceComponent(Field3& dst, int comp) const;

  GridSpec grid_;
  long edgeX_ = 0, edgeY_ = 0;    ///< owned tile extent (clamped to grid)
  long tilesX_ = 0, tilesY_ = 0;  ///< tile grid shape
  long padX_ = 0, padY_ = 0, padZ_ = 0;  ///< padded accumulator extents
  long tileStride_ = 0;                  ///< padX_ * padY_ * padZ_
  /// Accumulators, [tile][component][padX_ x padY_ x padZ_] row-major.
  std::vector<double> store_;
  /// Precomputed periodic wrap of padded z index -> global z index.
  std::vector<long> wrapZ_;

  // Binning scratch (grow-only, reused across calls).
  std::vector<std::int32_t> tileOf_;   ///< particle -> tile id
  std::vector<std::uint32_t> perm_;    ///< tile-sorted particle indices
  std::vector<std::size_t> offsets_;   ///< tile -> [begin, end) into perm_
  std::vector<std::size_t> cursor_;    ///< counting-sort write heads
};

}  // namespace artsci::pic

/// \file diagnostics.hpp
/// Physics diagnostics: energy budget, KHI growth-rate estimation, and
/// momentum histograms (the ground-truth side of Fig 9 b).
#pragma once

#include <functional>
#include <vector>

#include "common/histogram.hpp"
#include "pic/khi.hpp"
#include "pic/simulation.hpp"

namespace artsci::pic {

struct EnergyReport {
  double electric = 0;
  double magnetic = 0;
  double kinetic = 0;
  double total() const { return electric + magnetic + kinetic; }
};

EnergyReport energyReport(const Simulation& sim);

/// Fit an exponential growth rate Gamma (in omega_pe units) to a series of
/// magnetic-field energies sampled every `dtSample`: E_B ~ exp(2 Gamma t).
/// Returns Gamma from the log-linear fit over the given window.
double fitGrowthRate(const std::vector<double>& magneticEnergies,
                     double dtSample, std::size_t fitBegin,
                     std::size_t fitEnd);

/// Histogram of one momentum component (u = gamma beta) over the particles
/// selected by `predicate(index)`; weighted by macroparticle weight. This
/// is the "charge density vs momentum" panel of Fig 9(b).
Histogram1D momentumHistogram(
    const ParticleBuffer& particles, int component, double lo, double hi,
    std::size_t bins,
    const std::function<bool(std::size_t)>& predicate = nullptr);

/// Convenience: momentum histogram of all particles in a KHI region.
Histogram1D khiRegionMomentumHistogram(const ParticleBuffer& particles,
                                       long ny, KhiRegion region,
                                       double vortexHalfWidthCells,
                                       int component, double lo, double hi,
                                       std::size_t bins);

}  // namespace artsci::pic

/// \file diagnostics.hpp
/// Physics diagnostics: energy budget, KHI growth-rate estimation, and
/// momentum histograms (the ground-truth side of Fig 9 b).
#pragma once

#include <functional>
#include <vector>

#include "common/histogram.hpp"
#include "pic/khi.hpp"
#include "pic/simulation.hpp"

namespace artsci::pic {

/// Energy budget of one simulation state, in plasma units. In a healthy
/// periodic run total() drifts only at the integrator's truncation order.
struct EnergyReport {
  double electric = 0;  ///< 1/2 integral |E|^2 dV
  double magnetic = 0;  ///< 1/2 integral |B|^2 dV
  double kinetic = 0;   ///< sum over species of w (gamma - 1) m
  /// Total conserved energy (field + particle kinetic).
  double total() const { return electric + magnetic + kinetic; }
};

/// Sample the current energy budget of `sim` (all species).
EnergyReport energyReport(const Simulation& sim);

/// Fit an exponential growth rate Gamma (in omega_pe units) to a series of
/// magnetic-field energies sampled every `dtSample`: E_B ~ exp(2 Gamma t).
/// Returns Gamma from the log-linear fit over the given window.
double fitGrowthRate(const std::vector<double>& magneticEnergies,
                     double dtSample, std::size_t fitBegin,
                     std::size_t fitEnd);

/// Histogram of one momentum component (u = gamma beta) over the particles
/// selected by `predicate(index)`; weighted by macroparticle weight. This
/// is the "charge density vs momentum" panel of Fig 9(b).
Histogram1D momentumHistogram(
    const ParticleBuffer& particles, int component, double lo, double hi,
    std::size_t bins,
    const std::function<bool(std::size_t)>& predicate = nullptr);

/// Convenience: momentum histogram of all particles in a KHI region.
Histogram1D khiRegionMomentumHistogram(const ParticleBuffer& particles,
                                       long ny, KhiRegion region,
                                       double vortexHalfWidthCells,
                                       int component, double lo, double hi,
                                       std::size_t bins);

}  // namespace artsci::pic

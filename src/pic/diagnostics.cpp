#include "pic/diagnostics.hpp"

#include <cmath>

#include "common/stats.hpp"

namespace artsci::pic {

EnergyReport energyReport(const Simulation& sim) {
  EnergyReport r;
  r.electric = sim.solver().electricEnergy(sim.fieldE());
  r.magnetic = sim.solver().magneticEnergy(sim.fieldB());
  for (std::size_t s = 0; s < sim.speciesCount(); ++s)
    r.kinetic += sim.species(s).kineticEnergy();
  return r;
}

double fitGrowthRate(const std::vector<double>& magneticEnergies,
                     double dtSample, std::size_t fitBegin,
                     std::size_t fitEnd) {
  ARTSCI_EXPECTS(fitEnd <= magneticEnergies.size());
  ARTSCI_EXPECTS(fitBegin + 2 <= fitEnd);
  std::vector<double> t, logE;
  for (std::size_t i = fitBegin; i < fitEnd; ++i) {
    ARTSCI_EXPECTS_MSG(magneticEnergies[i] > 0,
                       "magnetic energy must be positive to fit growth");
    t.push_back(static_cast<double>(i) * dtSample);
    logE.push_back(std::log(magneticEnergies[i]));
  }
  // E_B ~ exp(2 Gamma t) since energy is quadratic in B.
  return 0.5 * stats::linearFit(t, logE).slope;
}

Histogram1D momentumHistogram(
    const ParticleBuffer& particles, int component, double lo, double hi,
    std::size_t bins, const std::function<bool(std::size_t)>& predicate) {
  ARTSCI_EXPECTS(component >= 0 && component < 3);
  Histogram1D h(lo, hi, bins);
  const std::vector<double>* u = component == 0   ? &particles.ux
                                 : component == 1 ? &particles.uy
                                                  : &particles.uz;
  for (std::size_t i = 0; i < particles.size(); ++i) {
    if (predicate && !predicate(i)) continue;
    h.fill((*u)[i], particles.w[i]);
  }
  return h;
}

Histogram1D khiRegionMomentumHistogram(const ParticleBuffer& particles,
                                       long ny, KhiRegion region,
                                       double vortexHalfWidthCells,
                                       int component, double lo, double hi,
                                       std::size_t bins) {
  return momentumHistogram(
      particles, component, lo, hi, bins, [&](std::size_t i) {
        return classifyKhiRegion(particles.y[i], ny, vortexHalfWidthCells) ==
               region;
      });
}

}  // namespace artsci::pic

#include "pic/domain.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/trace.hpp"
#include "pic/interpolate.hpp"
#include "pic/pusher.hpp"

namespace artsci::pic {

DistributedSimulation::DistributedSimulation(Config cfg)
    : cfg_(cfg), solver_(cfg.grid), E_(cfg.grid), B_(cfg.grid), J_(cfg.grid) {
  ARTSCI_EXPECTS(cfg.ranks >= 1);
  ARTSCI_EXPECTS(cfg.grid.nx >= 1 && cfg.grid.ny >= 1 && cfg.grid.nz >= 1);
  ARTSCI_EXPECTS(solver_.cflNumber(cfg.dt) < 1.0);
  ARTSCI_EXPECTS(cfg.tiles.tileEdgeX >= 1 && cfg.tiles.tileEdgeY >= 1);
  // Same clamp as SupercellIndex/DepositBuffer, so the column arithmetic
  // below agrees with the tile geometry the buffers actually build.
  tileEdgeX_ = std::min(cfg.tiles.tileEdgeX, cfg.grid.nx);
  tilesX_ = (cfg.grid.nx + tileEdgeX_ - 1) / tileEdgeX_;
  ARTSCI_EXPECTS_MSG(static_cast<long>(cfg.ranks) <= tilesX_,
                     "rank slabs are whole tile columns: need ranks <= "
                     "ceil(nx / tileEdgeX) = "
                         << tilesX_
                         << "; shrink Config::tiles.tileEdgeX or ranks");
#ifndef _OPENMP
  // The legacy split step's halo deposit uses `omp atomic` sinks; in a
  // build without OpenMP those are plain `+=` on shared cells — a data
  // race across the std::thread rank team, not merely nondeterminism.
  ARTSCI_EXPECTS_MSG(
      cfg.pipeline == ParticlePipeline::Fused || cfg.ranks == 1,
      "ParticlePipeline::Split with multiple ranks requires an OpenMP "
      "build (its halo deposit would be a plain data race here)");
#endif
  particles_.resize(cfg.ranks);
  if (cfg.pipeline == ParticlePipeline::Fused) {
    outbox_.resize(cfg.ranks);
    for (auto& perDst : outbox_) perDst.resize(cfg.ranks);
    depositBuf_.reserve(cfg.ranks);
    fused_.reserve(cfg.ranks);
    for (std::size_t r = 0; r < cfg.ranks; ++r) {
      depositBuf_.push_back(
          std::make_unique<DepositBuffer>(cfg.grid, cfg.tiles));
      fused_.push_back(std::make_unique<FusedPipeline>(cfg.grid, cfg.tiles));
    }
  } else {
    inbox_.resize(cfg.ranks);
    for (std::size_t r = 0; r < cfg.ranks; ++r)
      inboxMutex_.push_back(std::make_unique<std::mutex>());
  }
}

std::size_t DistributedSimulation::addSpecies(const SpeciesInfo& info) {
  speciesInfo_.push_back(info);
  staging_.emplace_back(info);
  for (std::size_t r = 0; r < cfg_.ranks; ++r) {
    particles_[r].emplace_back(info);
    if (!inbox_.empty()) inbox_[r].emplace_back();
    if (!outbox_.empty())
      for (std::size_t d = 0; d < cfg_.ranks; ++d) outbox_[r][d].emplace_back();
  }
  return speciesInfo_.size() - 1;
}

ParticleBuffer& DistributedSimulation::staging(std::size_t speciesIdx) {
  ARTSCI_EXPECTS(speciesIdx < staging_.size());
  return staging_[speciesIdx];
}

std::pair<long, long> DistributedSimulation::columnsOf(std::size_t rank) const {
  ARTSCI_EXPECTS(rank < cfg_.ranks);
  const long base = tilesX_ / static_cast<long>(cfg_.ranks);
  const long rem = tilesX_ % static_cast<long>(cfg_.ranks);
  const long r = static_cast<long>(rank);
  const long begin = r * base + std::min(r, rem);
  return {begin, begin + base + (r < rem ? 1 : 0)};
}

std::size_t DistributedSimulation::rankOfColumn(long column) const {
  ARTSCI_EXPECTS(column >= 0 && column < tilesX_);
  const long base = tilesX_ / static_cast<long>(cfg_.ranks);
  const long rem = tilesX_ % static_cast<long>(cfg_.ranks);
  const long wide = (base + 1) * rem;  // columns held by the rem wider ranks
  const long r =
      column < wide ? column / (base + 1) : rem + (column - wide) / base;
  return static_cast<std::size_t>(r);
}

std::pair<long, long> DistributedSimulation::slabOf(std::size_t rank) const {
  const auto [c0, c1] = columnsOf(rank);
  return {c0 * tileEdgeX_, std::min(cfg_.grid.nx, c1 * tileEdgeX_)};
}

std::size_t DistributedSimulation::ownerOf(double xCell) const {
  const double nx = static_cast<double>(cfg_.grid.nx);
  // NaN fails both comparisons, so it throws here too instead of being
  // silently assigned to a rank (the pre-fix behavior fell back to the
  // last rank for anything out of range).
  ARTSCI_EXPECTS_MSG(xCell >= 0.0 && xCell < nx,
                     "particle x position "
                         << xCell << " outside the domain [0, " << nx
                         << ") — positions must be wrapped and finite");
  return rankOfColumn(static_cast<long>(std::floor(xCell)) / tileEdgeX_);
}

void DistributedSimulation::distribute() {
  const double ny = static_cast<double>(cfg_.grid.ny);
  const double nz = static_cast<double>(cfg_.grid.nz);
  for (std::size_t s = 0; s < staging_.size(); ++s) {
    ParticleBuffer& src = staging_[s];
    for (std::size_t i = 0; i < src.size(); ++i) {
      // ownerOf validates x; y/z get the same out-of-domain contract so
      // a bad stage fails here, not steps later inside a rank's sort.
      ARTSCI_EXPECTS_MSG(src.y[i] >= 0.0 && src.y[i] < ny &&
                             src.z[i] >= 0.0 && src.z[i] < nz,
                         "staged particle position outside the domain — "
                         "wrap positions before distribute()");
      const std::size_t owner = ownerOf(src.x[i]);
      particles_[owner][s].push({src.x[i], src.y[i], src.z[i]},
                                {src.ux[i], src.uy[i], src.uz[i]}, src.w[i]);
    }
    src.clear();
  }
}

ParticleBuffer DistributedSimulation::gatherSpecies(
    std::size_t speciesIdx) const {
  ARTSCI_EXPECTS(speciesIdx < speciesInfo_.size());
  ParticleBuffer out(speciesInfo_[speciesIdx]);
  for (std::size_t r = 0; r < cfg_.ranks; ++r)
    out.append(particles_[r][speciesIdx]);
  return out;
}

void DistributedSimulation::stepRankFused(std::size_t rank, Barrier& barrier) {
  const GridSpec& g = cfg_.grid;
  const auto [x0, x1] = slabOf(rank);
  const double dt = cfg_.dt;
  const long tiles = depositBuf_[rank]->tileCount();
  const long tilesY = depositBuf_[rank]->tilesY();

  // Zero this rank's J slab. No barrier around it: every J row is
  // written only by its owning rank for the whole step (this zeroing and
  // the row-restricted reduction) and read only by its owner (updateE),
  // so J rows are rank-private memory.
  for (long i = x0; i < x1; ++i) {
    for (long j = 0; j < g.ny; ++j) {
      for (long k = 0; k < g.nz; ++k) {
        const long idx = J_.x.index(i, j, k);
        J_.x.flat(idx) = 0.0;
        J_.y.flat(idx) = 0.0;
        J_.z.flat(idx) = 0.0;
      }
    }
  }

  // Species loop mirrors Simulation::step()'s: each species' currents
  // are fully reduced into J before the next species scatters, so every
  // cell's add sequence is (species, tile)-ordered exactly like the
  // single-rank driver's.
  for (std::size_t s = 0; s < speciesInfo_.size(); ++s) {
    // Scatter phase: fused push + scatter into this rank's private tile
    // accumulators (concurrent across ranks — E/B are read-only here),
    // then scan migrants into the per-destination outboxes. Slab
    // ownership is tile-column-aligned, so every particle of this rank
    // scatters into a tile this rank owns.
    ParticleBuffer& p = particles_[rank][s];
    {
      TRACE_SCOPE("domain", "scatter");
      fused_[rank]->pushAndScatter(p, E_, B_, dt, *depositBuf_[rank]);
      std::vector<std::size_t> leaving;
      for (std::size_t i = 0; i < p.size(); ++i) {
        if (p.x[i] < static_cast<double>(x0) ||
            p.x[i] >= static_cast<double>(x1))
          leaving.push_back(i);
      }
      // Outbox order is ascending post-sort index — deterministic because
      // the canonical sort just made the buffer order multiset-determined.
      for (std::size_t i : leaving)
        outbox_[rank][ownerOf(p.x[i])][s].push_back(
            Migrant{{p.x[i], p.y[i], p.z[i]},
                    {p.ux[i], p.uy[i], p.uz[i]},
                    p.w[i]});
      for (auto it = leaving.rbegin(); it != leaving.rend(); ++it)
        p.swapRemove(*it);
    }
    barrier.arriveAndWait();

    // Reduction phase — the deterministic halo exchange. Every rank
    // walks ALL ranks' tiles in ascending tile order and commits only
    // its own slab's rows (reduceTileRows): concurrent writes are
    // disjoint, accumulator reads are immutable, and each J cell
    // receives its per-tile sums in the single-rank reduce order. A
    // tile's halo rows that spill into this slab are committed here from
    // the owner's accumulator. Occupancy comes from the owner's
    // post-sort index, so never-scattered (stale) tiles are skipped.
    {
      TRACE_SCOPE("domain", "halo_reduce");
      for (long t = 0; t < tiles; ++t) {
        const std::size_t owner = rankOfColumn(t / tilesY);
        const SupercellIndex::Range r = fused_[owner]->index().tileRange(t);
        if (r.begin == r.end) continue;
        depositBuf_[owner]->reduceTileRows(J_, t, x0, x1);
      }
    }
    // Second barrier: the next species' scatter (or the step end) must
    // not overwrite accumulators another rank is still reducing from.
    barrier.arriveAndWait();
  }

  // Absorb migrants in ascending source-rank order — fixed, scheduling-
  // independent arrival order (the mutex-inbox predecessor appended in
  // thread arrival order, which leaked into every downstream FP sum).
  // Migrants deposited on their source rank this step; they join the
  // destination's buffer for the next one.
  {
    TRACE_SCOPE("domain", "migrate");
    for (std::size_t src = 0; src < cfg_.ranks; ++src) {
      for (std::size_t s = 0; s < speciesInfo_.size(); ++s) {
        auto& box = outbox_[src][rank][s];
        for (const Migrant& m : box) particles_[rank][s].push(m.pos, m.u, m.w);
        box.clear();
      }
    }
  }
  barrier.arriveAndWait();

  // Field update on own slab, globally synchronized between sub-steps so
  // halo reads see completed neighbour updates. Cell updates are
  // per-cell independent, so slab-restricted updates are bit-identical
  // to the single-rank whole-grid calls.
  TRACE_SCOPE("domain", "field_solve");
  solver_.updateBHalf(B_, E_, dt, x0, x1);
  barrier.arriveAndWait();
  solver_.updateE(E_, B_, J_, dt, x0, x1);
  barrier.arriveAndWait();
  solver_.updateBHalf(B_, E_, dt, x0, x1);
  barrier.arriveAndWait();
}

// Legacy split rank step, kept only as the fig4 A/B baseline: halo
// deposits go through `omp atomic` sinks in rank arrival order (not
// reproducible) and migration through mutex inboxes (arrival order =
// thread scheduling). See stepRankFused for the deterministic
// replacement.
void DistributedSimulation::stepRankSplit(std::size_t rank, Barrier& barrier) {
  const GridSpec& g = cfg_.grid;
  const auto [x0, x1] = slabOf(rank);
  const double dt = cfg_.dt;

  // Phase 1: zero this rank's J slab.
  for (long i = x0; i < x1; ++i) {
    for (long j = 0; j < g.ny; ++j) {
      for (long k = 0; k < g.nz; ++k) {
        const long idx = J_.x.index(i, j, k);
        J_.x.flat(idx) = 0.0;
        J_.y.flat(idx) = 0.0;
        J_.z.flat(idx) = 0.0;
      }
    }
  }
  barrier.arriveAndWait();

  // Phase 2: push + deposit own particles; queue migrants.
  for (std::size_t s = 0; s < speciesInfo_.size(); ++s) {
    ParticleBuffer& p = particles_[rank][s];
    const double qOverM = p.info().charge / p.info().mass;
    const double q = p.info().charge;
    std::vector<std::size_t> leaving;
    for (std::size_t i = 0; i < p.size(); ++i) {
      const Vec3d Ep = gatherE(E_, p.x[i], p.y[i], p.z[i]);
      const Vec3d Bp = gatherB(B_, p.x[i], p.y[i], p.z[i]);
      const Vec3d uNew =
          borisPush({p.ux[i], p.uy[i], p.uz[i]}, Ep, Bp, qOverM, dt);
      const double gNew = std::sqrt(1.0 + uNew.dot(uNew));
      p.ux[i] = uNew.x;
      p.uy[i] = uNew.y;
      p.uz[i] = uNew.z;
      const double ox = p.x[i], oy = p.y[i], oz = p.z[i];
      p.x[i] += uNew.x / gNew * dt / g.dx;
      p.y[i] += uNew.y / gNew * dt / g.dy;
      p.z[i] += uNew.z / gNew * dt / g.dz;
      depositCurrentEsirkepov(J_, g, ox, oy, oz, p.x[i], p.y[i], p.z[i],
                              q * p.w[i], dt);
      // Periodic wrap (shared helper: bit-identical to the single-rank
      // paths).
      p.x[i] = wrapCoordinate(p.x[i], static_cast<double>(g.nx));
      p.y[i] = wrapCoordinate(p.y[i], static_cast<double>(g.ny));
      p.z[i] = wrapCoordinate(p.z[i], static_cast<double>(g.nz));
      if (p.x[i] < static_cast<double>(x0) ||
          p.x[i] >= static_cast<double>(x1))
        leaving.push_back(i);
    }
    // Hand migrants to their new owners (adjacent slab or periodic wrap).
    for (auto it = leaving.rbegin(); it != leaving.rend(); ++it) {
      const std::size_t i = *it;
      const std::size_t owner = ownerOf(p.x[i]);
      {
        std::lock_guard<std::mutex> lock(*inboxMutex_[owner]);
        inbox_[owner][s].push_back(Migrant{{p.x[i], p.y[i], p.z[i]},
                                           {p.ux[i], p.uy[i], p.uz[i]},
                                           p.w[i]});
      }
      p.swapRemove(i);
    }
  }
  barrier.arriveAndWait();

  // Phase 3: absorb inbox.
  for (std::size_t s = 0; s < speciesInfo_.size(); ++s) {
    auto& box = inbox_[rank][s];
    for (const Migrant& m : box)
      particles_[rank][s].push(m.pos, m.u, m.w);
    box.clear();
  }
  barrier.arriveAndWait();

  // Phase 4: field update on own slab, globally synchronized between
  // sub-steps so halo reads see completed neighbour updates.
  solver_.updateBHalf(B_, E_, dt, x0, x1);
  barrier.arriveAndWait();
  solver_.updateE(E_, B_, J_, dt, x0, x1);
  barrier.arriveAndWait();
  solver_.updateBHalf(B_, E_, dt, x0, x1);
  barrier.arriveAndWait();
}

void DistributedSimulation::run(long steps) {
  ARTSCI_EXPECTS(steps >= 0);
  Barrier barrier(cfg_.ranks);
  Timer timer;
#ifdef _OPENMP
  // libgomp ICVs do not propagate to fresh pthreads: each rank thread
  // resets its own team size below so `ranks` inner OpenMP teams don't
  // oversubscribe the machine. Computed here on the main thread, where
  // the user's OMP_NUM_THREADS setting is visible.
  const int perRankThreads =
      std::max(1, omp_get_max_threads() / static_cast<int>(cfg_.ranks));
#endif
  const bool fusedPath = cfg_.pipeline == ParticlePipeline::Fused;
  runRankTeam(cfg_.ranks, [&](std::size_t rank) {
#ifdef _OPENMP
    omp_set_num_threads(perRankThreads);
#endif
    // Claim the rank for trace attribution: the rank thread and its whole
    // OpenMP team (libgomp keeps one pool per master thread, so the same
    // workers serve every later parallel region) group under one Chrome
    // "process" per rank in the flushed trace.
    obs::TraceRecorder::instance().setThreadRank(static_cast<int>(rank));
    obs::TraceRecorder::instance().setThreadName("pic rank " +
                                                 std::to_string(rank));
#ifdef _OPENMP
#pragma omp parallel
    {
      obs::TraceRecorder::instance().setThreadRank(static_cast<int>(rank));
      obs::TraceRecorder::instance().setThreadName(
          "pic rank " + std::to_string(rank) + " omp " +
          std::to_string(omp_get_thread_num()));
    }
#endif
    for (long s = 0; s < steps; ++s) {
      if (fusedPath)
        stepRankFused(rank, barrier);
      else
        stepRankSplit(rank, barrier);
    }
  });
  // Work accounting for the FOM.
  double particles = 0;
  for (std::size_t r = 0; r < cfg_.ranks; ++r)
    for (const auto& p : particles_[r])
      particles += static_cast<double>(p.size());
  fom_.particleUpdates += particles * static_cast<double>(steps);
  fom_.cellUpdates += static_cast<double>(cfg_.grid.cellCount() * steps);
  fom_.seconds += timer.seconds();
  step_ += steps;
}

}  // namespace artsci::pic

#include "pic/domain.hpp"

#include <cmath>

#include "pic/interpolate.hpp"
#include "pic/pusher.hpp"

namespace artsci::pic {

DistributedSimulation::DistributedSimulation(Config cfg)
    : cfg_(cfg), solver_(cfg.grid), E_(cfg.grid), B_(cfg.grid), J_(cfg.grid) {
  ARTSCI_EXPECTS(cfg.ranks >= 1);
  ARTSCI_EXPECTS_MSG(cfg.grid.nx >= static_cast<long>(cfg.ranks),
                     "fewer x-cells than ranks");
  ARTSCI_EXPECTS(solver_.cflNumber(cfg.dt) < 1.0);
  particles_.resize(cfg.ranks);
  inbox_.resize(cfg.ranks);
  for (std::size_t r = 0; r < cfg.ranks; ++r)
    inboxMutex_.push_back(std::make_unique<std::mutex>());
}

std::size_t DistributedSimulation::addSpecies(const SpeciesInfo& info) {
  speciesInfo_.push_back(info);
  staging_.emplace_back(info);
  for (std::size_t r = 0; r < cfg_.ranks; ++r) {
    particles_[r].emplace_back(info);
    inbox_[r].emplace_back();
  }
  return speciesInfo_.size() - 1;
}

ParticleBuffer& DistributedSimulation::staging(std::size_t speciesIdx) {
  ARTSCI_EXPECTS(speciesIdx < staging_.size());
  return staging_[speciesIdx];
}

std::pair<long, long> DistributedSimulation::slabOf(std::size_t rank) const {
  ARTSCI_EXPECTS(rank < cfg_.ranks);
  const long nx = cfg_.grid.nx;
  const long base = nx / static_cast<long>(cfg_.ranks);
  const long rem = nx % static_cast<long>(cfg_.ranks);
  const long r = static_cast<long>(rank);
  const long begin = r * base + std::min(r, rem);
  const long end = begin + base + (r < rem ? 1 : 0);
  return {begin, end};
}

std::size_t DistributedSimulation::ownerOf(double xCell) const {
  // Inverse of slabOf for uniform-ish slabs; linear scan is fine since
  // migration only ever moves to the adjacent slab.
  for (std::size_t r = 0; r < cfg_.ranks; ++r) {
    const auto [b, e] = slabOf(r);
    if (xCell >= static_cast<double>(b) && xCell < static_cast<double>(e))
      return r;
  }
  return cfg_.ranks - 1;
}

void DistributedSimulation::distribute() {
  for (std::size_t s = 0; s < staging_.size(); ++s) {
    ParticleBuffer& src = staging_[s];
    for (std::size_t i = 0; i < src.size(); ++i) {
      const std::size_t owner = ownerOf(src.x[i]);
      particles_[owner][s].push({src.x[i], src.y[i], src.z[i]},
                                {src.ux[i], src.uy[i], src.uz[i]}, src.w[i]);
    }
    src.clear();
  }
}

ParticleBuffer DistributedSimulation::gatherSpecies(
    std::size_t speciesIdx) const {
  ARTSCI_EXPECTS(speciesIdx < speciesInfo_.size());
  ParticleBuffer out(speciesInfo_[speciesIdx]);
  for (std::size_t r = 0; r < cfg_.ranks; ++r)
    out.append(particles_[r][speciesIdx]);
  return out;
}

void DistributedSimulation::stepRank(std::size_t rank, Barrier& barrier) {
  const GridSpec& g = cfg_.grid;
  const auto [x0, x1] = slabOf(rank);
  const double dt = cfg_.dt;

  // Phase 1: zero this rank's J slab.
  for (long i = x0; i < x1; ++i) {
    for (long j = 0; j < g.ny; ++j) {
      for (long k = 0; k < g.nz; ++k) {
        const long idx = J_.x.index(i, j, k);
        J_.x.flat(idx) = 0.0;
        J_.y.flat(idx) = 0.0;
        J_.z.flat(idx) = 0.0;
      }
    }
  }
  barrier.arriveAndWait();

  // Phase 2: push + deposit own particles; queue migrants.
  for (std::size_t s = 0; s < speciesInfo_.size(); ++s) {
    ParticleBuffer& p = particles_[rank][s];
    const double qOverM = p.info().charge / p.info().mass;
    const double q = p.info().charge;
    std::vector<std::size_t> leaving;
    for (std::size_t i = 0; i < p.size(); ++i) {
      const Vec3d Ep = gatherE(E_, p.x[i], p.y[i], p.z[i]);
      const Vec3d Bp = gatherB(B_, p.x[i], p.y[i], p.z[i]);
      const Vec3d uNew =
          borisPush({p.ux[i], p.uy[i], p.uz[i]}, Ep, Bp, qOverM, dt);
      const double gNew = std::sqrt(1.0 + uNew.dot(uNew));
      p.ux[i] = uNew.x;
      p.uy[i] = uNew.y;
      p.uz[i] = uNew.z;
      const double ox = p.x[i], oy = p.y[i], oz = p.z[i];
      p.x[i] += uNew.x / gNew * dt / g.dx;
      p.y[i] += uNew.y / gNew * dt / g.dy;
      p.z[i] += uNew.z / gNew * dt / g.dz;
      depositCurrentEsirkepov(J_, g, ox, oy, oz, p.x[i], p.y[i], p.z[i],
                              q * p.w[i], dt);
      // Periodic wrap (shared helper: bit-identical to the single-rank
      // paths).
      p.x[i] = wrapCoordinate(p.x[i], static_cast<double>(g.nx));
      p.y[i] = wrapCoordinate(p.y[i], static_cast<double>(g.ny));
      p.z[i] = wrapCoordinate(p.z[i], static_cast<double>(g.nz));
      if (p.x[i] < static_cast<double>(x0) ||
          p.x[i] >= static_cast<double>(x1))
        leaving.push_back(i);
    }
    // Hand migrants to their new owners (adjacent slab or periodic wrap).
    for (auto it = leaving.rbegin(); it != leaving.rend(); ++it) {
      const std::size_t i = *it;
      const std::size_t owner = ownerOf(p.x[i]);
      {
        std::lock_guard<std::mutex> lock(*inboxMutex_[owner]);
        inbox_[owner][s].push_back(Migrant{{p.x[i], p.y[i], p.z[i]},
                                           {p.ux[i], p.uy[i], p.uz[i]},
                                           p.w[i]});
      }
      p.swapRemove(i);
    }
  }
  barrier.arriveAndWait();

  // Phase 3: absorb inbox.
  for (std::size_t s = 0; s < speciesInfo_.size(); ++s) {
    auto& box = inbox_[rank][s];
    for (const Migrant& m : box)
      particles_[rank][s].push(m.pos, m.u, m.w);
    box.clear();
  }
  barrier.arriveAndWait();

  // Phase 4: field update on own slab, globally synchronized between
  // sub-steps so halo reads see completed neighbour updates.
  solver_.updateBHalf(B_, E_, dt, x0, x1);
  barrier.arriveAndWait();
  solver_.updateE(E_, B_, J_, dt, x0, x1);
  barrier.arriveAndWait();
  solver_.updateBHalf(B_, E_, dt, x0, x1);
  barrier.arriveAndWait();
}

void DistributedSimulation::run(long steps) {
  ARTSCI_EXPECTS(steps >= 0);
  Barrier barrier(cfg_.ranks);
  Timer timer;
  runRankTeam(cfg_.ranks, [&](std::size_t rank) {
    for (long s = 0; s < steps; ++s) stepRank(rank, barrier);
  });
  // Work accounting for the FOM.
  double particles = 0;
  for (std::size_t r = 0; r < cfg_.ranks; ++r)
    for (const auto& p : particles_[r]) particles += static_cast<double>(p.size());
  fom_.particleUpdates += particles * static_cast<double>(steps);
  fom_.cellUpdates +=
      static_cast<double>(cfg_.grid.cellCount() * steps);
  fom_.seconds += timer.seconds();
  step_ += steps;
}

}  // namespace artsci::pic

/// \file grid.hpp
/// Yee-staggered grid containers for the PIC substrate (the stand-in for
/// PIConGPU). All fields live in "plasma units": lengths in c/omega_pe,
/// times in 1/omega_pe, E and B in m_e c omega_pe / e, charge density in
/// e n_0, current density in e n_0 c.
///
/// Staggering (standard Yee):
///   Ex at (i+1/2, j, k)   Bx at (i, j+1/2, k+1/2)
///   Ey at (i, j+1/2, k)   By at (i+1/2, j, k+1/2)
///   Ez at (i, j, k+1/2)   Bz at (i+1/2, j+1/2, k)
/// Periodic boundaries in all directions (the KHI box is periodic).
#pragma once

#include <vector>

#include "common/error.hpp"
#include "common/vec3.hpp"

namespace artsci::pic {

/// Grid extent in cells plus the (uniform) cell size in plasma units.
struct GridSpec {
  long nx = 16, ny = 16, nz = 16;     ///< cells per axis (all > 0)
  double dx = 0.2, dy = 0.2, dz = 0.2;  ///< cell size in c/omega_pe

  /// Total number of cells (nx * ny * nz).
  long cellCount() const { return nx * ny * nz; }
  /// Volume of one cell in (c/omega_pe)^3.
  double cellVolume() const { return dx * dy * dz; }
  /// Physical box extent per axis.
  Vec3d extent() const { return {nx * dx, ny * dy, nz * dz}; }
};

/// One scalar field on the grid, row-major (z fastest), periodic indexing.
class Field3 {
 public:
  Field3() = default;
  Field3(long nx, long ny, long nz)
      : nx_(nx), ny_(ny), nz_(nz),
        data_(static_cast<std::size_t>(nx * ny * nz), 0.0) {
    ARTSCI_EXPECTS(nx > 0 && ny > 0 && nz > 0);
  }

  long nx() const { return nx_; }
  long ny() const { return ny_; }
  long nz() const { return nz_; }
  long size() const { return nx_ * ny_ * nz_; }

  /// Unchecked flat access for hot loops (indices must be in range).
  double& flat(long idx) { return data_[static_cast<std::size_t>(idx)]; }
  double flat(long idx) const { return data_[static_cast<std::size_t>(idx)]; }

  /// Periodic (wrapping) element access.
  double& at(long i, long j, long k) {
    return data_[static_cast<std::size_t>(index(i, j, k))];
  }
  double at(long i, long j, long k) const {
    return data_[static_cast<std::size_t>(index(i, j, k))];
  }

  /// Flat index with periodic wrapping of each coordinate.
  long index(long i, long j, long k) const {
    i = wrap(i, nx_);
    j = wrap(j, ny_);
    k = wrap(k, nz_);
    return (i * ny_ + j) * nz_ + k;
  }

  /// Set every element to `v`.
  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// Underlying storage, row-major with z fastest (for I/O and bitwise
  /// comparisons in the determinism tests).
  std::vector<double>& raw() { return data_; }
  const std::vector<double>& raw() const { return data_; }

  /// Sum of squares (for field-energy diagnostics).
  double sumSquares() const {
    double s = 0.0;
    for (double v : data_) s += v * v;
    return s;
  }

  /// Periodic wrap of index `i` into [0, n); n must be > 0.
  static long wrap(long i, long n) {
    i %= n;
    return i < 0 ? i + n : i;
  }

 private:
  long nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<double> data_;
};

/// A vector field: three staggered components.
struct VectorField {
  Field3 x, y, z;  ///< per-component scalar fields (Yee-staggered)

  VectorField() = default;
  /// Allocate all three components on `g`'s extent, zero-initialized.
  explicit VectorField(const GridSpec& g)
      : x(g.nx, g.ny, g.nz), y(g.nx, g.ny, g.nz), z(g.nx, g.ny, g.nz) {}

  /// Set every element of every component to `v`.
  void fill(double v) {
    x.fill(v);
    y.fill(v);
    z.fill(v);
  }
  /// 1/2 sum |F|^2 over all nodes (caller multiplies by cell volume).
  double energy() const {
    // 1/2 integral of |F|^2, caller multiplies by cell volume.
    return 0.5 * (x.sumSquares() + y.sumSquares() + z.sumSquares());
  }
};

}  // namespace artsci::pic

/// \file fused_pipeline.hpp
/// Supercell-fused particle pipeline (PIConGPU's supercell design
/// [Hoenig et al. 2010] applied to the whole particle update): one stable
/// counting sort per step, then a single per-tile pass that
///  (a) gathers E/B from per-tile halo-padded read caches — precomputed
///      strides, no per-access periodic-wrap arithmetic,
///  (b) runs the Boris push and the move,
///  (c) scatters Esirkepov current straight into the tile's private
///      DepositBuffer accumulator, and
///  (d) wraps positions in place.
///
/// This replaces the legacy split path's three full-population sweeps
/// (scalar wrapped gather + push, a re-binning deposit with its own
/// counting sort, a separate wrap pass) and its old-position snapshot
/// vectors — old positions live in the tile loop's registers instead.
/// bench/particle_pipeline.cpp measures the A/B (target >= 1.5x particle
/// updates/s on the quick-demo KHI at 8 threads).
///
/// Determinism: the sort orders each tile canonically by phase-space key
/// (a pure function of the particle multiset — see SupercellIndex), tile
/// caches are copies, per-particle arithmetic is shared with the split
/// path (interpolate.hpp / pusher.hpp / deposit.hpp kernels), per-tile
/// scatter order is the sorted order, and the reduction is the fixed-
/// order DepositBuffer reduce — so a fused step is bit-identical across
/// OMP thread counts, schedules, and repeated runs, bit-identical to
/// the split tiled path up to the (deterministic) particle reordering,
/// and bit-identical to the rank-decomposed driver for any rank count
/// (pic/domain.hpp). Enforced by tests/pic/test_fused_pipeline.cpp and
/// tests/pic/test_domain.cpp.
#pragma once

#include <vector>

#include "pic/deposit_buffer.hpp"
#include "pic/grid.hpp"
#include "pic/particles.hpp"

namespace artsci::pic {

/// Which particle-update path Simulation::step() runs. A/B selectable
/// like DepositMode; both produce bit-identical fields.
enum class ParticlePipeline {
  Split,  ///< legacy: gather+push sweep, re-binning deposit, wrap sweep
  Fused,  ///< supercell-tiled single pass (default; needs DepositMode::Tiled)
};

/// Driver of the fused per-tile pass. Owns the supercell index used for
/// the per-step sort; accumulator storage and the fixed-order reduction
/// are shared with the split path through DepositBuffer. Not thread-safe
/// (internally OpenMP-parallel): one instance per simulation driver.
class FusedPipeline {
 public:
  /// Tile geometry is taken from `accumCfg` and must match the
  /// DepositBuffer later passed to pushAndDeposit (checked there).
  explicit FusedPipeline(const GridSpec& grid, TileDepositConfig accumCfg = {});

  /// One fused update of every particle in `p`: sort by supercell, then
  /// per tile gather/push/move/deposit/wrap, then reduce the tile
  /// accumulators into J (accumulates; caller zeroes J per step).
  /// Positions must be wrapped into [0, n) on entry (throws otherwise);
  /// per-particle displacement must stay under one cell per axis (the
  /// CFL bound guarantees this — violated means dt is invalid, throws).
  /// `bdx/bdy/bdz`, when non-null, receive d(beta)/dt per particle,
  /// index-parallel to the *post-sort* SoA columns (all three or none).
  void pushAndDeposit(ParticleBuffer& p, const VectorField& E,
                      const VectorField& B, VectorField& J, double dt,
                      DepositBuffer& accum, std::vector<double>* bdx = nullptr,
                      std::vector<double>* bdy = nullptr,
                      std::vector<double>* bdz = nullptr);

  /// The fused pass *without* the final reduction: sort, then per tile
  /// gather/push/move/deposit/wrap, leaving the tile accumulators in
  /// `accum` populated for the occupied tiles of index(). The
  /// rank-decomposed driver uses this so every rank can scatter into its
  /// private accumulators concurrently and the cross-rank reduction can
  /// run as its own collectively-ordered phase (DepositBuffer::
  /// reduceTileRows); same contract as pushAndDeposit otherwise.
  void pushAndScatter(ParticleBuffer& p, const VectorField& E,
                      const VectorField& B, double dt, DepositBuffer& accum,
                      std::vector<double>* bdx = nullptr,
                      std::vector<double>* bdy = nullptr,
                      std::vector<double>* bdz = nullptr);

  /// Post-sort supercell occupancy of the most recent pushAndDeposit.
  const SupercellIndex& index() const { return index_; }

 private:
  GridSpec grid_;
  SupercellIndex index_;
  /// Per-thread E/B tile-cache arenas (grow-only, reused across steps so
  /// the hot loop never allocates). Contents are fully rewritten per
  /// tile, so reuse cannot leak state between tiles or steps.
  std::vector<std::vector<double>> caches_;
};

}  // namespace artsci::pic

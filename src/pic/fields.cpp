#include "pic/fields.hpp"

#include <cmath>

namespace artsci::pic {

FieldSolver::FieldSolver(const GridSpec& grid) : grid_(grid) {
  ARTSCI_EXPECTS(grid.nx > 1 && grid.ny > 1 && grid.nz > 1);
  ARTSCI_EXPECTS(grid.dx > 0 && grid.dy > 0 && grid.dz > 0);
}

double FieldSolver::cflNumber(double dt) const {
  return dt * std::sqrt(1.0 / (grid_.dx * grid_.dx) +
                        1.0 / (grid_.dy * grid_.dy) +
                        1.0 / (grid_.dz * grid_.dz));
}

void FieldSolver::updateBHalf(VectorField& B, const VectorField& E, double dt,
                              long iBegin, long iEnd) const {
  const long ny = grid_.ny, nz = grid_.nz;
  if (iEnd < 0) iEnd = grid_.nx;
  const long nx = iEnd;
  // Bx(i, j+1/2, k+1/2) -= dt/2 * ( dEz/dy - dEy/dz )
#pragma omp parallel for collapse(2) schedule(static)
  for (long i = iBegin; i < nx; ++i) {
    for (long j = 0; j < ny; ++j) {
      for (long k = 0; k < nz; ++k) {
        const double curlEx =
            (E.z.at(i, j + 1, k) - E.z.at(i, j, k)) / grid_.dy -
            (E.y.at(i, j, k + 1) - E.y.at(i, j, k)) / grid_.dz;
        const double curlEy =
            (E.x.at(i, j, k + 1) - E.x.at(i, j, k)) / grid_.dz -
            (E.z.at(i + 1, j, k) - E.z.at(i, j, k)) / grid_.dx;
        const double curlEz =
            (E.y.at(i + 1, j, k) - E.y.at(i, j, k)) / grid_.dx -
            (E.x.at(i, j + 1, k) - E.x.at(i, j, k)) / grid_.dy;
        B.x.at(i, j, k) -= 0.5 * dt * curlEx;
        B.y.at(i, j, k) -= 0.5 * dt * curlEy;
        B.z.at(i, j, k) -= 0.5 * dt * curlEz;
      }
    }
  }
}

void FieldSolver::updateE(VectorField& E, const VectorField& B,
                          const VectorField& J, double dt, long iBegin,
                          long iEnd) const {
  const long ny = grid_.ny, nz = grid_.nz;
  if (iEnd < 0) iEnd = grid_.nx;
  const long nx = iEnd;
#pragma omp parallel for collapse(2) schedule(static)
  for (long i = iBegin; i < nx; ++i) {
    for (long j = 0; j < ny; ++j) {
      for (long k = 0; k < nz; ++k) {
        // curl B evaluated at the E staggering (backward differences).
        const double curlBx =
            (B.z.at(i, j, k) - B.z.at(i, j - 1, k)) / grid_.dy -
            (B.y.at(i, j, k) - B.y.at(i, j, k - 1)) / grid_.dz;
        const double curlBy =
            (B.x.at(i, j, k) - B.x.at(i, j, k - 1)) / grid_.dz -
            (B.z.at(i, j, k) - B.z.at(i - 1, j, k)) / grid_.dx;
        const double curlBz =
            (B.y.at(i, j, k) - B.y.at(i - 1, j, k)) / grid_.dx -
            (B.x.at(i, j, k) - B.x.at(i, j - 1, k)) / grid_.dy;
        E.x.at(i, j, k) += dt * (curlBx - J.x.at(i, j, k));
        E.y.at(i, j, k) += dt * (curlBy - J.y.at(i, j, k));
        E.z.at(i, j, k) += dt * (curlBz - J.z.at(i, j, k));
      }
    }
  }
}

double FieldSolver::maxDivB(const VectorField& B) const {
  const long nx = grid_.nx, ny = grid_.ny, nz = grid_.nz;
  double maxAbs = 0.0;
#pragma omp parallel for collapse(2) reduction(max : maxAbs)
  for (long i = 0; i < nx; ++i) {
    for (long j = 0; j < ny; ++j) {
      for (long k = 0; k < nz; ++k) {
        const double div =
            (B.x.at(i + 1, j, k) - B.x.at(i, j, k)) / grid_.dx +
            (B.y.at(i, j + 1, k) - B.y.at(i, j, k)) / grid_.dy +
            (B.z.at(i, j, k + 1) - B.z.at(i, j, k)) / grid_.dz;
        maxAbs = std::max(maxAbs, std::abs(div));
      }
    }
  }
  return maxAbs;
}

double FieldSolver::electricEnergy(const VectorField& E) const {
  return E.energy() * grid_.cellVolume();
}

double FieldSolver::magneticEnergy(const VectorField& B) const {
  return B.energy() * grid_.cellVolume();
}

double FieldSolver::fieldEnergy(const VectorField& E,
                                const VectorField& B) const {
  return electricEnergy(E) + magneticEnergy(B);
}

}  // namespace artsci::pic

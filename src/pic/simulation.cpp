#include "pic/simulation.hpp"

#include <cmath>

#include "common/log.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pic/interpolate.hpp"
#include "pic/pusher.hpp"

namespace artsci::pic {

Simulation::Simulation(SimulationConfig cfg)
    : cfg_(cfg), solver_(cfg.grid), E_(cfg.grid), B_(cfg.grid), J_(cfg.grid) {
  const double cfl = solver_.cflNumber(cfg_.dt);
  ARTSCI_EXPECTS_MSG(cfl < 1.0, "CFL violation: dt=" << cfg_.dt
                                                     << " gives CFL " << cfl);
  if (cfg_.depositMode == DepositMode::Tiled) {
    depositBuffer_ = std::make_unique<DepositBuffer>(cfg_.grid, cfg_.tiles);
    if (cfg_.pipeline == ParticlePipeline::Fused) {
      fused_ = std::make_unique<FusedPipeline>(cfg_.grid, cfg_.tiles);
    } else {
      // The split path shares the once-per-step supercell sort (same tile
      // geometry as the deposit buffer): with the buffer tile-ordered,
      // the deposit's internal re-binning becomes the identity, so the
      // per-tile accumulation order — hence every bit of J — matches the
      // fused path at every step.
      supercell_ = std::make_unique<SupercellIndex>(
          cfg_.grid, cfg_.tiles.tileEdgeX, cfg_.tiles.tileEdgeY, cfg_.grid.nz);
    }
  }
}

std::size_t Simulation::addSpecies(const SpeciesInfo& info) {
  species_.emplace_back(info);
  scratch_.emplace_back();
  return species_.size() - 1;
}

ParticleBuffer& Simulation::species(std::size_t i) {
  ARTSCI_EXPECTS(i < species_.size());
  return species_[i];
}

const ParticleBuffer& Simulation::species(std::size_t i) const {
  ARTSCI_EXPECTS(i < species_.size());
  return species_[i];
}

void Simulation::addPlugin(std::shared_ptr<Plugin> plugin) {
  ARTSCI_EXPECTS(plugin != nullptr);
  plugins_.push_back(std::move(plugin));
}

std::size_t Simulation::particleCount() const {
  std::size_t n = 0;
  for (const auto& s : species_) n += s.size();
  return n;
}

const std::vector<double>& Simulation::betaDotX(std::size_t s) const {
  ARTSCI_EXPECTS(s < scratch_.size());
  return scratch_[s].bdx;
}
const std::vector<double>& Simulation::betaDotY(std::size_t s) const {
  ARTSCI_EXPECTS(s < scratch_.size());
  return scratch_[s].bdy;
}
const std::vector<double>& Simulation::betaDotZ(std::size_t s) const {
  ARTSCI_EXPECTS(s < scratch_.size());
  return scratch_[s].bdz;
}

void Simulation::pushAndDeposit(std::size_t speciesIdx) {
  ParticleBuffer& p = species_[speciesIdx];
  Scratch& scr = scratch_[speciesIdx];
  const long n = static_cast<long>(p.size());
  if (n == 0) return;

  if (fused_) {
    // Supercell-fused path: one stable sort, one per-tile pass, shared
    // fixed-order reduction. No old-position snapshots, no re-binning,
    // no separate wrap sweep.
    std::vector<double>* bdx = cfg_.recordBetaDot ? &scr.bdx : nullptr;
    std::vector<double>* bdy = cfg_.recordBetaDot ? &scr.bdy : nullptr;
    std::vector<double>* bdz = cfg_.recordBetaDot ? &scr.bdz : nullptr;
    fused_->pushAndDeposit(p, E_, B_, J_, cfg_.dt, *depositBuffer_, bdx, bdy,
                           bdz);
    return;
  }

  if (supercell_) supercell_->sort(p);

  scr.oldX.assign(p.x.begin(), p.x.end());
  scr.oldY.assign(p.y.begin(), p.y.end());
  scr.oldZ.assign(p.z.begin(), p.z.end());
  if (cfg_.recordBetaDot) {
    scr.bdx.resize(p.size());
    scr.bdy.resize(p.size());
    scr.bdz.resize(p.size());
  }

  const double qOverM = p.info().charge / p.info().mass;
  const double dt = cfg_.dt;
  const GridSpec& g = cfg_.grid;

#pragma omp parallel for schedule(static)
  for (long ip = 0; ip < n; ++ip) {
    const auto i = static_cast<std::size_t>(ip);
    const Vec3d Ep = gatherE(E_, p.x[i], p.y[i], p.z[i]);
    const Vec3d Bp = gatherB(B_, p.x[i], p.y[i], p.z[i]);
    const Vec3d uOld{p.ux[i], p.uy[i], p.uz[i]};
    const double gOld = std::sqrt(1.0 + uOld.dot(uOld));
    const Vec3d uNew = borisPush(uOld, Ep, Bp, qOverM, dt);
    const double gNew = std::sqrt(1.0 + uNew.dot(uNew));
    p.ux[i] = uNew.x;
    p.uy[i] = uNew.y;
    p.uz[i] = uNew.z;
    if (cfg_.recordBetaDot) {
      scr.bdx[i] = (uNew.x / gNew - uOld.x / gOld) / dt;
      scr.bdy[i] = (uNew.y / gNew - uOld.y / gOld) / dt;
      scr.bdz[i] = (uNew.z / gNew - uOld.z / gOld) / dt;
    }
    // Move (positions in cell units).
    p.x[i] += uNew.x / gNew * dt / g.dx;
    p.y[i] += uNew.y / gNew * dt / g.dy;
    p.z[i] += uNew.z / gNew * dt / g.dz;
  }

  // Charge-conserving deposit from the *unwrapped* displacement (old
  // positions are wrapped, as the tiled binning requires).
  depositCurrent(J_, g, p, scr.oldX, scr.oldY, scr.oldZ, dt,
                 cfg_.depositMode, depositBuffer_.get());

  // Periodic wrap after the deposit.
  const double lx = static_cast<double>(g.nx);
  const double ly = static_cast<double>(g.ny);
  const double lz = static_cast<double>(g.nz);
#pragma omp parallel for schedule(static)
  for (long ip = 0; ip < n; ++ip) {
    const auto i = static_cast<std::size_t>(ip);
    p.x[i] = wrapCoordinate(p.x[i], lx);
    p.y[i] = wrapCoordinate(p.y[i], ly);
    p.z[i] = wrapCoordinate(p.z[i], lz);
  }
}

void Simulation::step() {
  TRACE_SCOPE("pic", "step");
  FAULT_POINT("pic.step");
  // Resolved once; the registry owns the metrics for the process lifetime.
  static obs::Counter& steps = obs::Registry::global().counter("pic.steps");
  static obs::Counter& updates =
      obs::Registry::global().counter("pic.particle_updates");
  static obs::Gauge& rate =
      obs::Registry::global().gauge("pic.particles_per_s");

  Timer timer;
  J_.fill(0.0);
  for (std::size_t s = 0; s < species_.size(); ++s) pushAndDeposit(s);
  {
    TRACE_SCOPE("pic", "field_solve");
    solver_.updateBHalf(B_, E_, cfg_.dt);
    solver_.updateE(E_, B_, J_, cfg_.dt);
    solver_.updateBHalf(B_, E_, cfg_.dt);
  }
  ++step_;

  const std::size_t particles = particleCount();
  const double seconds = timer.seconds();
  fom_.particleUpdates += static_cast<double>(particles);
  fom_.cellUpdates += static_cast<double>(cfg_.grid.cellCount());
  fom_.seconds += seconds;
  steps.add();
  updates.add(particles);
  if (seconds > 0) rate.set(static_cast<double>(particles) / seconds);

  for (const auto& plugin : plugins_) plugin->onStepEnd(*this);
}

void Simulation::run(long steps) {
  ARTSCI_EXPECTS(steps >= 0);
  for (long s = 0; s < steps; ++s) step();
}

}  // namespace artsci::pic

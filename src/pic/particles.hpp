/// \file particles.hpp
/// Structure-of-arrays particle storage with supercell tiling.
///
/// PIConGPU's key data structure is the supercell: particles are kept
/// grouped by small tiles of cells so neighbouring particles are adjacent
/// in memory [Hoenig et al. 2010]. We reproduce that with a counting-sort
/// based reordering into supercell bins; the radiation plugin and the
/// ML region extraction iterate tiles for locality.
///
/// Positions are stored in *cell units* (continuous, x in [0, nx)),
/// momenta as u = gamma*beta in units of m c.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/vec3.hpp"
#include "pic/grid.hpp"

namespace artsci::pic {

/// Physical species parameters in normalized units (electron: q=-1, m=1).
struct SpeciesInfo {
  double charge = -1.0;    ///< charge in units of e
  double mass = 1.0;       ///< mass in units of m_e
  const char* name = "e";  ///< label for logs/openPMD records
};

/// SoA particle container.
class ParticleBuffer {
 public:
  ParticleBuffer() = default;
  explicit ParticleBuffer(SpeciesInfo info) : info_(info) {}

  /// Number of particles stored.
  std::size_t size() const { return x.size(); }
  bool empty() const { return x.empty(); }

  /// Reserve capacity for `n` particles in every SoA column.
  void reserve(std::size_t n);
  /// Drop all particles (capacity kept).
  void clear();

  /// Append one particle; position in cell units, momentum u = gamma beta.
  void push(const Vec3d& position, const Vec3d& momentum, double weight);

  /// Append all of `other`'s particles (used for rank migration).
  void append(const ParticleBuffer& other);

  /// Remove particle i by swapping with the last (O(1), order not kept).
  void swapRemove(std::size_t i);

  const SpeciesInfo& info() const { return info_; }

  /// gamma = sqrt(1 + u^2) of particle i.
  double gamma(std::size_t i) const;
  /// velocity beta = u/gamma of particle i.
  Vec3d velocity(std::size_t i) const;
  /// Total kinetic energy sum w * (gamma - 1) * m (plasma units).
  double kineticEnergy() const;
  /// Total momentum sum w * u * m.
  Vec3d totalMomentum() const;

  // SoA columns; kept public for hot loops (pusher/deposit/radiation).
  std::vector<double> x, y, z;     ///< cell units
  std::vector<double> ux, uy, uz;  ///< gamma*beta
  std::vector<double> w;           ///< macroparticle weight (n/n0 * V_cell/ppc)

 private:
  SpeciesInfo info_;
};

/// Wrap one particle coordinate into [0, n), assuming it moved less than
/// one domain length since it was last wrapped (the CFL displacement
/// bound guarantees far less). Shared by every particle driver so the
/// split, fused, and rank-decomposed paths wrap bit-identically.
inline double wrapCoordinate(double v, double n) {
  if (v < 0) v += n;
  if (v >= n) v -= n;
  return v;
}

/// Supercell index: after sort(), particles are ordered by tile and
/// tileRange() gives each tile's contiguous [begin, end) range. bin()
/// provides a stable counting sort as an index permutation without
/// moving particle data (the deposition buffer's binning).
///
/// Determinism: binning depends only on positions and the tile geometry.
/// bin()'s per-tile order is ascending input index (stable); sort()
/// additionally orders each tile canonically by the x-major phase-space
/// key (x, y, z, ux, uy, uz, w), so the post-sort order is a pure
/// function of the particle *multiset* — independent of input order,
/// OMP thread count, and schedule. That last property is what makes the
/// rank-decomposed driver bit-identical to single-rank stepping: an
/// x-slab partition splits each tile's population into contiguous runs
/// of the canonical order (slab bounds are x-thresholds and the key is
/// x-major), so scattering rank parts in ascending rank order
/// reproduces the single-rank per-tile scatter sequence exactly
/// (see pic/domain.hpp).
class SupercellIndex {
 public:
  /// Cubic tiles: edge in cells per axis (PIConGPU typically uses 8x8x4;
  /// we default 4^3).
  SupercellIndex(const GridSpec& grid, long tileEdge = 4);

  /// Per-axis tile edges (each clamped to the grid extent). Pass
  /// edgeZ = grid.nz for full-z tile columns — the geometry DepositBuffer
  /// and the fused particle pipeline share.
  SupercellIndex(const GridSpec& grid, long edgeX, long edgeY, long edgeZ);

  long tileCount() const { return tilesX_ * tilesY_ * tilesZ_; }
  /// Owning tile of a position in cell units (clamped into the grid).
  long tileOf(double xCell, double yCell, double zCell) const;

  /// Stable counting-sort binning of `n` positions into an index
  /// permutation; no particle data moves. Fills tileRange() and
  /// permutation(); per-tile order is ascending input index. Returns
  /// false when any position lies outside [0, extent) on some axis (its
  /// tile key is clamped, so the ranges stay valid either way).
  bool bin(const double* xs, const double* ys, const double* zs,
           std::size_t n);

  /// Tile-sorted particle indices of the latest bin()/sort() call.
  const std::vector<std::uint32_t>& permutation() const { return perm_; }

  /// Counting-sort the buffer by tile id, then order each tile by the
  /// canonical phase-space key (x, y, z, ux, uy, uz, w) — see the class
  /// comment; ties across all seven keys are physically indistinguishable
  /// particles, so the order is total for every observable purpose.
  /// Returns bin()'s in-domain flag; out-of-domain particles are sorted
  /// into their clamped tile.
  bool sort(ParticleBuffer& buffer);

  struct Range {
    std::size_t begin = 0, end = 0;
  };
  Range tileRange(long tile) const {
    ARTSCI_EXPECTS(tile >= 0 && tile < tileCount());
    return ranges_[static_cast<std::size_t>(tile)];
  }

  long tilesX() const { return tilesX_; }
  long tilesY() const { return tilesY_; }
  long tilesZ() const { return tilesZ_; }
  /// Tile edge along x (== the edge on every axis for the cubic ctor).
  long tileEdge() const { return edgeX_; }
  long tileEdgeX() const { return edgeX_; }
  long tileEdgeY() const { return edgeY_; }
  long tileEdgeZ() const { return edgeZ_; }

  /// Center of a tile in cell units.
  Vec3d tileCenter(long tile) const;

 private:
  long edgeX_, edgeY_, edgeZ_;
  long tilesX_, tilesY_, tilesZ_;
  GridSpec grid_;
  std::vector<Range> ranges_;
  std::vector<std::uint32_t> perm_;  ///< tile-sorted particle indices
  std::vector<std::int32_t> tileOf_;  ///< binning scratch: particle -> tile
  std::vector<std::size_t> cursor_;   ///< counting-sort write heads
  ParticleBuffer scratch_;            ///< sort() staging (storage reused)
};

}  // namespace artsci::pic

#include "pic/particles.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace artsci::pic {

void ParticleBuffer::reserve(std::size_t n) {
  x.reserve(n);
  y.reserve(n);
  z.reserve(n);
  ux.reserve(n);
  uy.reserve(n);
  uz.reserve(n);
  w.reserve(n);
}

void ParticleBuffer::clear() {
  x.clear();
  y.clear();
  z.clear();
  ux.clear();
  uy.clear();
  uz.clear();
  w.clear();
}

void ParticleBuffer::push(const Vec3d& position, const Vec3d& momentum,
                          double weight) {
  x.push_back(position.x);
  y.push_back(position.y);
  z.push_back(position.z);
  ux.push_back(momentum.x);
  uy.push_back(momentum.y);
  uz.push_back(momentum.z);
  w.push_back(weight);
}

void ParticleBuffer::append(const ParticleBuffer& other) {
  x.insert(x.end(), other.x.begin(), other.x.end());
  y.insert(y.end(), other.y.begin(), other.y.end());
  z.insert(z.end(), other.z.begin(), other.z.end());
  ux.insert(ux.end(), other.ux.begin(), other.ux.end());
  uy.insert(uy.end(), other.uy.begin(), other.uy.end());
  uz.insert(uz.end(), other.uz.begin(), other.uz.end());
  w.insert(w.end(), other.w.begin(), other.w.end());
}

void ParticleBuffer::swapRemove(std::size_t i) {
  ARTSCI_EXPECTS(i < size());
  const std::size_t last = size() - 1;
  x[i] = x[last];
  y[i] = y[last];
  z[i] = z[last];
  ux[i] = ux[last];
  uy[i] = uy[last];
  uz[i] = uz[last];
  w[i] = w[last];
  x.pop_back();
  y.pop_back();
  z.pop_back();
  ux.pop_back();
  uy.pop_back();
  uz.pop_back();
  w.pop_back();
}

double ParticleBuffer::gamma(std::size_t i) const {
  const double u2 = ux[i] * ux[i] + uy[i] * uy[i] + uz[i] * uz[i];
  return std::sqrt(1.0 + u2);
}

Vec3d ParticleBuffer::velocity(std::size_t i) const {
  const double g = gamma(i);
  return {ux[i] / g, uy[i] / g, uz[i] / g};
}

double ParticleBuffer::kineticEnergy() const {
  double e = 0.0;
  for (std::size_t i = 0; i < size(); ++i)
    e += w[i] * (gamma(i) - 1.0) * info_.mass;
  return e;
}

Vec3d ParticleBuffer::totalMomentum() const {
  Vec3d p{};
  for (std::size_t i = 0; i < size(); ++i) {
    p.x += w[i] * ux[i] * info_.mass;
    p.y += w[i] * uy[i] * info_.mass;
    p.z += w[i] * uz[i] * info_.mass;
  }
  return p;
}

SupercellIndex::SupercellIndex(const GridSpec& grid, long tileEdge)
    : tileEdge_(tileEdge), grid_(grid) {
  ARTSCI_EXPECTS(tileEdge >= 1);
  tilesX_ = (grid.nx + tileEdge - 1) / tileEdge;
  tilesY_ = (grid.ny + tileEdge - 1) / tileEdge;
  tilesZ_ = (grid.nz + tileEdge - 1) / tileEdge;
}

long SupercellIndex::tileOf(double xCell, double yCell, double zCell) const {
  long ti = static_cast<long>(std::floor(xCell)) / tileEdge_;
  long tj = static_cast<long>(std::floor(yCell)) / tileEdge_;
  long tk = static_cast<long>(std::floor(zCell)) / tileEdge_;
  ti = std::clamp(ti, 0L, tilesX_ - 1);
  tj = std::clamp(tj, 0L, tilesY_ - 1);
  tk = std::clamp(tk, 0L, tilesZ_ - 1);
  return (ti * tilesY_ + tj) * tilesZ_ + tk;
}

Vec3d SupercellIndex::tileCenter(long tile) const {
  ARTSCI_EXPECTS(tile >= 0 && tile < tileCount());
  const long tk = tile % tilesZ_;
  const long tj = (tile / tilesZ_) % tilesY_;
  const long ti = tile / (tilesY_ * tilesZ_);
  const double e = static_cast<double>(tileEdge_);
  return {(static_cast<double>(ti) + 0.5) * e,
          (static_cast<double>(tj) + 0.5) * e,
          (static_cast<double>(tk) + 0.5) * e};
}

void SupercellIndex::sort(ParticleBuffer& buffer) {
  const std::size_t n = buffer.size();
  const long tiles = tileCount();
  std::vector<long> tileIds(n);
  std::vector<std::size_t> counts(static_cast<std::size_t>(tiles) + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    tileIds[i] = tileOf(buffer.x[i], buffer.y[i], buffer.z[i]);
    counts[static_cast<std::size_t>(tileIds[i]) + 1]++;
  }
  std::partial_sum(counts.begin(), counts.end(), counts.begin());

  ranges_.assign(static_cast<std::size_t>(tiles), Range{});
  for (long t = 0; t < tiles; ++t) {
    ranges_[static_cast<std::size_t>(t)] = {counts[static_cast<std::size_t>(t)],
                                            counts[static_cast<std::size_t>(t) + 1]};
  }

  // Scatter into a fresh buffer (counting sort, stable).
  ParticleBuffer sorted(buffer.info());
  sorted.x.resize(n);
  sorted.y.resize(n);
  sorted.z.resize(n);
  sorted.ux.resize(n);
  sorted.uy.resize(n);
  sorted.uz.resize(n);
  sorted.w.resize(n);
  std::vector<std::size_t> cursor(counts.begin(), counts.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t dst = cursor[static_cast<std::size_t>(tileIds[i])]++;
    sorted.x[dst] = buffer.x[i];
    sorted.y[dst] = buffer.y[i];
    sorted.z[dst] = buffer.z[i];
    sorted.ux[dst] = buffer.ux[i];
    sorted.uy[dst] = buffer.uy[i];
    sorted.uz[dst] = buffer.uz[i];
    sorted.w[dst] = buffer.w[i];
  }
  buffer = std::move(sorted);
}

}  // namespace artsci::pic

#include "pic/particles.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace artsci::pic {

void ParticleBuffer::reserve(std::size_t n) {
  x.reserve(n);
  y.reserve(n);
  z.reserve(n);
  ux.reserve(n);
  uy.reserve(n);
  uz.reserve(n);
  w.reserve(n);
}

void ParticleBuffer::clear() {
  x.clear();
  y.clear();
  z.clear();
  ux.clear();
  uy.clear();
  uz.clear();
  w.clear();
}

void ParticleBuffer::push(const Vec3d& position, const Vec3d& momentum,
                          double weight) {
  x.push_back(position.x);
  y.push_back(position.y);
  z.push_back(position.z);
  ux.push_back(momentum.x);
  uy.push_back(momentum.y);
  uz.push_back(momentum.z);
  w.push_back(weight);
}

void ParticleBuffer::append(const ParticleBuffer& other) {
  x.insert(x.end(), other.x.begin(), other.x.end());
  y.insert(y.end(), other.y.begin(), other.y.end());
  z.insert(z.end(), other.z.begin(), other.z.end());
  ux.insert(ux.end(), other.ux.begin(), other.ux.end());
  uy.insert(uy.end(), other.uy.begin(), other.uy.end());
  uz.insert(uz.end(), other.uz.begin(), other.uz.end());
  w.insert(w.end(), other.w.begin(), other.w.end());
}

void ParticleBuffer::swapRemove(std::size_t i) {
  ARTSCI_EXPECTS(i < size());
  const std::size_t last = size() - 1;
  x[i] = x[last];
  y[i] = y[last];
  z[i] = z[last];
  ux[i] = ux[last];
  uy[i] = uy[last];
  uz[i] = uz[last];
  w[i] = w[last];
  x.pop_back();
  y.pop_back();
  z.pop_back();
  ux.pop_back();
  uy.pop_back();
  uz.pop_back();
  w.pop_back();
}

double ParticleBuffer::gamma(std::size_t i) const {
  const double u2 = ux[i] * ux[i] + uy[i] * uy[i] + uz[i] * uz[i];
  return std::sqrt(1.0 + u2);
}

Vec3d ParticleBuffer::velocity(std::size_t i) const {
  const double g = gamma(i);
  return {ux[i] / g, uy[i] / g, uz[i] / g};
}

double ParticleBuffer::kineticEnergy() const {
  double e = 0.0;
  for (std::size_t i = 0; i < size(); ++i)
    e += w[i] * (gamma(i) - 1.0) * info_.mass;
  return e;
}

Vec3d ParticleBuffer::totalMomentum() const {
  Vec3d p{};
  for (std::size_t i = 0; i < size(); ++i) {
    p.x += w[i] * ux[i] * info_.mass;
    p.y += w[i] * uy[i] * info_.mass;
    p.z += w[i] * uz[i] * info_.mass;
  }
  return p;
}

namespace {

long clampedEdge(long edge, long cells) {
  ARTSCI_EXPECTS(edge >= 1 && cells >= 1);
  return std::min(edge, cells);
}

}  // namespace

SupercellIndex::SupercellIndex(const GridSpec& grid, long tileEdge)
    : SupercellIndex(grid, tileEdge, tileEdge, tileEdge) {}

SupercellIndex::SupercellIndex(const GridSpec& grid, long edgeX, long edgeY,
                               long edgeZ)
    : edgeX_(clampedEdge(edgeX, grid.nx)),
      edgeY_(clampedEdge(edgeY, grid.ny)),
      edgeZ_(clampedEdge(edgeZ, grid.nz)),
      grid_(grid) {
  tilesX_ = (grid.nx + edgeX_ - 1) / edgeX_;
  tilesY_ = (grid.ny + edgeY_ - 1) / edgeY_;
  tilesZ_ = (grid.nz + edgeZ_ - 1) / edgeZ_;
}

long SupercellIndex::tileOf(double xCell, double yCell, double zCell) const {
  long ti = static_cast<long>(std::floor(xCell)) / edgeX_;
  long tj = static_cast<long>(std::floor(yCell)) / edgeY_;
  long tk = static_cast<long>(std::floor(zCell)) / edgeZ_;
  ti = std::clamp(ti, 0L, tilesX_ - 1);
  tj = std::clamp(tj, 0L, tilesY_ - 1);
  tk = std::clamp(tk, 0L, tilesZ_ - 1);
  return (ti * tilesY_ + tj) * tilesZ_ + tk;
}

Vec3d SupercellIndex::tileCenter(long tile) const {
  ARTSCI_EXPECTS(tile >= 0 && tile < tileCount());
  const long tk = tile % tilesZ_;
  const long tj = (tile / tilesZ_) % tilesY_;
  const long ti = tile / (tilesY_ * tilesZ_);
  return {(static_cast<double>(ti) + 0.5) * static_cast<double>(edgeX_),
          (static_cast<double>(tj) + 0.5) * static_cast<double>(edgeY_),
          (static_cast<double>(tk) + 0.5) * static_cast<double>(edgeZ_)};
}

bool SupercellIndex::bin(const double* xs, const double* ys, const double* zs,
                         std::size_t n) {
  ARTSCI_EXPECTS(n <= static_cast<std::size_t>(UINT32_MAX));
  const long nl = static_cast<long>(n);
  tileOf_.resize(n);
  perm_.resize(n);

  // Tile keys (parallel; order-independent). Out-of-domain positions are
  // flagged rather than thrown here — throwing inside an OpenMP region
  // would terminate — and their keys clamped so the ranges stay valid.
  bool inDomain = true;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) reduction(&& : inDomain)
#endif
  for (long i = 0; i < nl; ++i) {
    const auto s = static_cast<std::size_t>(i);
    const long ci = static_cast<long>(std::floor(xs[s]));
    const long cj = static_cast<long>(std::floor(ys[s]));
    const long ck = static_cast<long>(std::floor(zs[s]));
    const bool ok = ci >= 0 && ci < grid_.nx && cj >= 0 && cj < grid_.ny &&
                    ck >= 0 && ck < grid_.nz;
    inDomain = inDomain && ok;
    // Same key arithmetic as tileOf(), reusing the floors computed for
    // the domain check above.
    const long ti = std::clamp(ci / edgeX_, 0L, tilesX_ - 1);
    const long tj = std::clamp(cj / edgeY_, 0L, tilesY_ - 1);
    const long tk = std::clamp(ck / edgeZ_, 0L, tilesZ_ - 1);
    tileOf_[s] = static_cast<std::int32_t>((ti * tilesY_ + tj) * tilesZ_ + tk);
  }

  // Stable counting sort: per-tile order is ascending particle index.
  // Serial: O(N) with trivial constants next to the per-particle physics.
  const long tiles = tileCount();
  cursor_.assign(static_cast<std::size_t>(tiles) + 1, 0);
  for (long i = 0; i < nl; ++i)
    ++cursor_[static_cast<std::size_t>(tileOf_[static_cast<std::size_t>(i)]) +
              1];
  for (long t = 0; t < tiles; ++t)
    cursor_[static_cast<std::size_t>(t) + 1] +=
        cursor_[static_cast<std::size_t>(t)];
  ranges_.assign(static_cast<std::size_t>(tiles), Range{});
  for (long t = 0; t < tiles; ++t)
    ranges_[static_cast<std::size_t>(t)] = {
        cursor_[static_cast<std::size_t>(t)],
        cursor_[static_cast<std::size_t>(t) + 1]};
  for (long i = 0; i < nl; ++i) {
    const auto s = static_cast<std::size_t>(i);
    perm_[cursor_[static_cast<std::size_t>(tileOf_[s])]++] =
        static_cast<std::uint32_t>(i);
  }
  return inDomain;
}

bool SupercellIndex::sort(ParticleBuffer& buffer) {
  const std::size_t n = buffer.size();
  const bool inDomain =
      bin(buffer.x.data(), buffer.y.data(), buffer.z.data(), n);

  // Canonical in-tile order: ascending x-major phase-space key. This
  // erases the buffer's arrival history from the per-tile order, making
  // it a pure function of the particle multiset (the property the
  // rank-decomposed driver's cross-rank bit-identity rests on). The
  // x-first comparison resolves almost every pair in one compare, and
  // full seven-key ties are physically identical particles, for which
  // any order yields the same bits everywhere downstream.
  const ParticleBuffer& b = buffer;
  const auto canonicalBefore = [&b](std::uint32_t ia, std::uint32_t ib) {
    const auto a = static_cast<std::size_t>(ia);
    const auto c = static_cast<std::size_t>(ib);
    if (b.x[a] != b.x[c]) return b.x[a] < b.x[c];
    if (b.y[a] != b.y[c]) return b.y[a] < b.y[c];
    if (b.z[a] != b.z[c]) return b.z[a] < b.z[c];
    if (b.ux[a] != b.ux[c]) return b.ux[a] < b.ux[c];
    if (b.uy[a] != b.uy[c]) return b.uy[a] < b.uy[c];
    if (b.uz[a] != b.uz[c]) return b.uz[a] < b.uz[c];
    return b.w[a] < b.w[c];
  };
  const long tiles = tileCount();
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
  for (long t = 0; t < tiles; ++t) {
    const Range r = ranges_[static_cast<std::size_t>(t)];
    if (r.end - r.begin > 1)
      std::sort(perm_.begin() + static_cast<std::ptrdiff_t>(r.begin),
                perm_.begin() + static_cast<std::ptrdiff_t>(r.end),
                canonicalBefore);
  }

  // Apply the permutation as a gather (parallel-safe: every destination
  // is written exactly once) into the staging buffer, then swap the
  // columns so both allocations are reused on the next call.
  scratch_.x.resize(n);
  scratch_.y.resize(n);
  scratch_.z.resize(n);
  scratch_.ux.resize(n);
  scratch_.uy.resize(n);
  scratch_.uz.resize(n);
  scratch_.w.resize(n);
  const long nl = static_cast<long>(n);
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (long i = 0; i < nl; ++i) {
    const auto dst = static_cast<std::size_t>(i);
    const auto src = static_cast<std::size_t>(perm_[dst]);
    scratch_.x[dst] = buffer.x[src];
    scratch_.y[dst] = buffer.y[src];
    scratch_.z[dst] = buffer.z[src];
    scratch_.ux[dst] = buffer.ux[src];
    scratch_.uy[dst] = buffer.uy[src];
    scratch_.uz[dst] = buffer.uz[src];
    scratch_.w[dst] = buffer.w[src];
  }
  buffer.x.swap(scratch_.x);
  buffer.y.swap(scratch_.y);
  buffer.z.swap(scratch_.z);
  buffer.ux.swap(scratch_.ux);
  buffer.uy.swap(scratch_.uy);
  buffer.uz.swap(scratch_.uz);
  buffer.w.swap(scratch_.w);
  return inDomain;
}

}  // namespace artsci::pic

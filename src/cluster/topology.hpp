/// \file topology.hpp
/// Machine models for the paper's evaluation platforms. The virtual-time
/// experiments (Figs 4/6/8 at Frontier scale) read their constants from
/// these specs; the calibration values come from the paper itself and the
/// cited OLCF documentation.
#pragma once

#include <string>

namespace artsci::cluster {

struct NodeSpec {
  int gcdsPerNode = 8;            ///< Frontier: 4x MI250X = 8 GCDs
  int nicsPerNode = 4;            ///< HPE Slingshot NICs
  double nicBandwidth = 25e9;     ///< B/s per NIC (paper §IV-B)
  double intraNodeBandwidth = 50e9;  ///< Infinity-fabric GCD<->GCD link
  /// Calibrated per-GPU PIC figure of merit in updates/s: the paper's
  /// 65.3 TeraUpdates/s over 36864 GPUs.
  double perGpuFom = 65.3e12 / 36864.0;
};

struct ClusterSpec {
  std::string name = "frontier";
  NodeSpec node;
  long nodes = 9408;
  double filesystemBandwidth = 10e12;      ///< Orion aggregate write (B/s)
  double nodeSsdAggregateBandwidth = 35e12;  ///< node-local SSDs (B/s)
  int gpusPerNode = 4;  ///< MI250X modules ("GPUs" in Fig 4's axis)

  long totalGpus() const { return nodes * gpusPerNode; }
  long totalGcds() const { return nodes * node.gcdsPerNode; }

  static ClusterSpec frontier();
  static ClusterSpec summit();
};

inline ClusterSpec ClusterSpec::frontier() { return ClusterSpec{}; }

inline ClusterSpec ClusterSpec::summit() {
  ClusterSpec s;
  s.name = "summit";
  s.nodes = 4608;
  s.gpusPerNode = 6;  // V100s
  s.node.gcdsPerNode = 6;
  s.node.nicBandwidth = 12.5e9;  // dual-rail EDR InfiniBand
  s.node.intraNodeBandwidth = 50e9;  // NVLink
  // Paper: 14.7 TeraUpdates/s on Summit (2019 run, 27648 GPUs).
  s.node.perGpuFom = 14.7e12 / 27648.0;
  s.filesystemBandwidth = 2.5e12;  // Alpine
  s.nodeSsdAggregateBandwidth = 7e12;
  return s;
}

}  // namespace artsci::cluster

/// \file collectives.hpp
/// Analytic cost models for the collectives dominating the in-transit
/// training pipeline (Fig 8) and the PIC weak-scaling model (Fig 4).
#pragma once

#include "cluster/topology.hpp"

namespace artsci::cluster {

/// Ring all-reduce of `bytes` across `ranks`: 2 (p-1) steps, each moving
/// bytes/p at `bandwidth` with `latency` per step [classic alpha-beta].
double ringAllReduceSeconds(long ranks, double bytes, double bandwidth,
                            double latency);

/// All-gather of `bytesPerRank` from each of `ranks`.
double allGatherSeconds(long ranks, double bytesPerRank, double bandwidth,
                        double latency);

/// Fig 8 model: per-batch wall time of the data-parallel in-transit
/// training on `gcds` GCDs. Terms:
///  * compute: fixed per-rank batch time (batch size 8/GCD, weak scaling);
///  * all-reduce: partially overlapped with backward compute (PyTorch DDP
///    buckets), straggler-amplified at scale — the paper attributes a
///    ~30% efficiency deficit to it;
///  * MMD: the two MMD losses gather activations from all ranks and
///    replicate pairwise-kernel work, cost growing ~quadratically with the
///    total batch (the naive implementation the paper describes), and the
///    all_gather breaks the graph (synchronizes execution).
struct TrainingScalingModel {
  double computeSeconds = 0.30;   ///< per-batch fwd+bwd on one GCD
  double gradientBytes = 17.2e6;  ///< ~4.3 M fp32 parameters
  double allReduceLatency = 25e-6;
  /// Fraction of the all-reduce hidden behind backward compute.
  double overlapFraction = 0.55;
  /// Straggler amplification of collective time per doubling of ranks
  /// (calibrated so the all-reduce explains the paper's ~30% deficit at
  /// 384 GCDs; the NCCL-over-sockets issues §IV-D describes make the
  /// collective far slower than the alpha-beta ideal at scale).
  double stragglerPerDoubling = 0.32;
  /// MMD replicated-work coefficient (seconds at the base batch, grows
  /// with (totalBatch/baseBatch)^2).
  double mmdBaseSeconds = 0.0030;
  long baseGcds = 32;  ///< smallest configuration (8 nodes, Fig 8)
};

struct TrainingBatchCost {
  double total = 0;
  double compute = 0;
  double allReduceExposed = 0;
  double mmd = 0;
};

TrainingBatchCost trainingBatchCost(const ClusterSpec& cluster, long gcds,
                                    const TrainingScalingModel& model);

/// Weak-scaling efficiency relative to the model's base configuration.
double trainingEfficiency(const ClusterSpec& cluster, long gcds,
                          const TrainingScalingModel& model);

/// Fig 4 model: PIC weak-scaling FOM (updates/s) for `gpus` GPUs.
/// PIConGPU's next-neighbour halo exchange keeps the efficiency loss to a
/// slowly growing logarithmic term.
double picFomModel(const ClusterSpec& cluster, long gpus);

}  // namespace artsci::cluster

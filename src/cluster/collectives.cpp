#include "cluster/collectives.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace artsci::cluster {

double ringAllReduceSeconds(long ranks, double bytes, double bandwidth,
                            double latency) {
  ARTSCI_EXPECTS(ranks >= 1 && bytes >= 0 && bandwidth > 0);
  if (ranks == 1) return 0.0;
  const double p = static_cast<double>(ranks);
  return 2.0 * (p - 1.0) * (latency + (bytes / p) / bandwidth);
}

double allGatherSeconds(long ranks, double bytesPerRank, double bandwidth,
                        double latency) {
  ARTSCI_EXPECTS(ranks >= 1 && bytesPerRank >= 0 && bandwidth > 0);
  if (ranks == 1) return 0.0;
  const double p = static_cast<double>(ranks);
  return (p - 1.0) * (latency + bytesPerRank / bandwidth);
}

TrainingBatchCost trainingBatchCost(const ClusterSpec& cluster, long gcds,
                                    const TrainingScalingModel& model) {
  ARTSCI_EXPECTS(gcds >= 1);
  TrainingBatchCost cost;
  cost.compute = model.computeSeconds;

  // Effective collective bandwidth: intra-node links inside a node, the
  // per-GCD share of the NICs across nodes.
  const auto& node = cluster.node;
  const double interPerGcd = node.nicBandwidth *
                             static_cast<double>(node.nicsPerNode) /
                             static_cast<double>(node.gcdsPerNode);
  const double bw = gcds <= node.gcdsPerNode ? node.intraNodeBandwidth
                                             : interPerGcd;
  double ar = ringAllReduceSeconds(gcds, model.gradientBytes, bw,
                                   model.allReduceLatency);
  // Straggler amplification (jitter across many ranks synchronizing).
  const double doublings = std::log2(
      std::max(1.0, static_cast<double>(gcds) /
                        static_cast<double>(model.baseGcds)));
  ar *= 1.0 + model.stragglerPerDoubling * doublings *
                  static_cast<double>(gcds) /
                  static_cast<double>(model.baseGcds);
  cost.allReduceExposed = ar * (1.0 - model.overlapFraction);

  // MMD: gathered total batch grows linearly with ranks; pairwise kernel
  // matrices grow quadratically; the work is replicated on every rank.
  const double ratio = static_cast<double>(gcds) /
                       static_cast<double>(model.baseGcds);
  cost.mmd = model.mmdBaseSeconds * ratio * ratio;

  cost.total = cost.compute + cost.allReduceExposed + cost.mmd;
  return cost;
}

double trainingEfficiency(const ClusterSpec& cluster, long gcds,
                          const TrainingScalingModel& model) {
  const double tBase =
      trainingBatchCost(cluster, model.baseGcds, model).total;
  const double t = trainingBatchCost(cluster, gcds, model).total;
  return tBase / t;
}

double picFomModel(const ClusterSpec& cluster, long gpus) {
  ARTSCI_EXPECTS(gpus >= 1);
  // Halo exchange is next-neighbour only; the residual loss comes from
  // synchronization jitter growing logarithmically with the partition.
  // perGpuFom is calibrated from the paper's *full-system* measurement,
  // so normalize the efficiency curve to 1 at the full system.
  auto eff = [](double g) { return 1.0 / (1.0 + 0.01 * std::log2(g)); };
  const double full = static_cast<double>(cluster.totalGpus());
  return cluster.node.perGpuFom * static_cast<double>(gpus) *
         eff(static_cast<double>(gpus)) / eff(full);
}

}  // namespace artsci::cluster

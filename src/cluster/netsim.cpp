#include "cluster/netsim.hpp"

#include <cmath>

#include "common/error.hpp"

namespace artsci::cluster {

DataPlaneModel DataPlaneModel::libfabricAllAtOnce() {
  DataPlaneModel m;
  m.name = "libfabric (enqueue all)";
  m.readerRate = 5.1e9;  // best per-node throughput observed: ~4.7 GB/s
  m.perOpOverhead = 40e-6;
  m.batchSize = 0;
  m.congestionCoeff = 0.02;
  m.maxNodesAllAtOnce = 4608;
  return m;
}

DataPlaneModel DataPlaneModel::libfabricBatched(int batchSize) {
  DataPlaneModel m;
  m.name = "libfabric (batches of " + std::to_string(batchSize) + ")";
  m.readerRate = 5.1e9;
  m.perOpOverhead = 40e-6;
  m.batchSize = batchSize;
  m.batchDrainPenalty = 9.0;  // ~2.0-2.2 GB/s effective per-node
  m.congestionCoeff = 0.02;
  m.maxNodesAllAtOnce = 0;  // unlimited
  return m;
}

DataPlaneModel DataPlaneModel::mpi() {
  DataPlaneModel m;
  m.name = "MPI (MPI_Open_port)";
  m.readerRate = 4.1e9;  // ~3.7 GB/s best at 4096 nodes
  m.perOpOverhead = 120e-6;
  m.batchSize = 0;
  m.congestionCoeff = 0.045;  // per-node throughput sags toward full scale
  m.maxNodesAllAtOnce = 0;    // implementation manages resources itself
  return m;
}

DataPlaneModel DataPlaneModel::tcpFallback() {
  DataPlaneModel m;
  m.name = "TCP (fallback)";
  m.readerRate = 1.2e9;
  m.perOpOverhead = 300e-6;
  m.batchSize = 0;
  m.congestionCoeff = 0.15;  // does not scale; fallback only
  m.maxNodesAllAtOnce = 0;
  return m;
}

StreamStepResult simulateStreamStep(const ClusterSpec& cluster, long nodes,
                                    const DataPlaneModel& plane,
                                    const StreamStepConfig& cfg, Rng& rng) {
  ARTSCI_EXPECTS(nodes >= 1 && nodes <= cluster.nodes);
  ARTSCI_EXPECTS(cfg.bytesPerNode > 0 && cfg.opsPerNode > 0);
  StreamStepResult res;

  if (plane.batchSize == 0 && plane.maxNodesAllAtOnce > 0 &&
      nodes > plane.maxNodesAllAtOnce) {
    res.completed = false;
    return res;
  }

  // The ingest rate is capped by the NIC but in practice limited by the
  // single reader instance (paper: 1.9 - 4.7 GB/s vs 25 GB/s NIC).
  const double nic = cluster.node.nicBandwidth;
  double rate = std::min(plane.readerRate, nic);
  if (plane.batchSize > 0) {
    rate *= static_cast<double>(plane.batchSize) /
            (static_cast<double>(plane.batchSize) + plane.batchDrainPenalty);
  }

  const double transfer = cfg.bytesPerNode / rate;
  const double opCost =
      static_cast<double>(cfg.opsPerNode) * plane.perOpOverhead;
  // ADIOS2/SST gathers all block metadata (remote read addresses) to
  // writer rank 0 before the step opens.
  const double metadata = cfg.metadataPerNode * static_cast<double>(nodes);

  // Fabric congestion at scale.
  const double congestion =
      1.0 + plane.congestionCoeff *
                std::max(0.0, std::log2(static_cast<double>(nodes) / 1024.0));

  // Straggler effect: the step completes when the slowest node is done.
  // For ~Gaussian per-node jitter the expected maximum over N nodes grows
  // like sigma * sqrt(2 ln N); each simulated step samples around that.
  const double maxJitter =
      cfg.jitterSigma *
      std::sqrt(2.0 * std::log(std::max(2.0, static_cast<double>(nodes)))) *
      (1.0 + 0.25 * rng.normal());

  const double base = (transfer + opCost) * congestion + metadata;
  res.stepSeconds = base * (1.0 + std::max(0.0, maxJitter));
  res.perNodeThroughput = cfg.bytesPerNode / res.stepSeconds;
  res.totalThroughput = res.perNodeThroughput * static_cast<double>(nodes);
  return res;
}

std::vector<double> simulateStreamSeries(const ClusterSpec& cluster,
                                         long nodes,
                                         const DataPlaneModel& plane,
                                         const StreamStepConfig& cfg,
                                         int steps, Rng& rng) {
  std::vector<double> out;
  for (int s = 0; s < steps; ++s) {
    const auto r = simulateStreamStep(cluster, nodes, plane, cfg, rng);
    if (!r.completed) return {};
    out.push_back(r.totalThroughput);
  }
  return out;
}

}  // namespace artsci::cluster

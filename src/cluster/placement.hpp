/// \file placement.hpp
/// Producer/consumer placement strategies (paper Fig 3c and §IV-D):
/// intra-node shares every node between PIConGPU (4 GCDs) and the MLapp
/// (4 GCDs) so streamed data rarely leaves the node; inter-node gives
/// whole nodes to one application and all traffic crosses the fabric.
#pragma once

#include "cluster/topology.hpp"

namespace artsci::cluster {

enum class Placement { kIntraNode, kInterNode };

struct PlacementConfig {
  Placement placement = Placement::kIntraNode;  ///< the paper's choice
  int producerGcdsPerNode = 4;  ///< intra-node split (paper: 4 + 4)
  int consumerGcdsPerNode = 4;
  /// Fraction of reads the reader schedules against local blocks when
  /// co-located (openPMD/ADIOS readers choose which blocks to load).
  double localReadFraction = 0.9;
};

struct PlacementCost {
  double bytesOverNic = 0;     ///< per node-step
  double bytesIntraNode = 0;   ///< per node-step
  double transferSeconds = 0;  ///< per step (bottleneck path)
};

/// Estimate the per-step transfer cost of moving `bytesPerNode` from
/// producer to consumer under a placement.
PlacementCost placementCost(const ClusterSpec& cluster,
                            const PlacementConfig& cfg, double bytesPerNode);

const char* placementName(Placement placement);

}  // namespace artsci::cluster

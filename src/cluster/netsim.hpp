/// \file netsim.hpp
/// Virtual-time model of the streaming step at Frontier scale (Fig 6).
///
/// Each node must ingest `bytesPerNode` per step through its NIC, issued
/// as `opsPerNode` RDMA read operations by the single reader instance.
/// The data planes differ in per-operation overhead and enqueue strategy:
///
///  * libfabric/CXI, enqueue-all-at-once: lowest overhead, but the number
///    of outstanding operations grows with system size and beyond
///    ~4096 nodes exhausts provider resources — the strategy the paper
///    observed "did not scale to the full system".
///  * libfabric/CXI, batches of 10: adds one queue-drain synchronization
///    per batch — scales to full system at a throughput cost.
///  * MPI data plane (MPI_Open_port): higher per-op cost than raw
///    libfabric but the implementation's internal tuning gives the best
///    full-system throughput.
///
/// The per-step wall time is a straggler maximum over nodes (jitter grows
/// slowly with node count), plus a metadata-aggregation term at rank 0 —
/// that is why parallel *throughput per node* degrades at scale while
/// total throughput still rises.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "cluster/topology.hpp"

namespace artsci::cluster {

enum class EnqueueStrategy { kAllAtOnce, kBatched };

struct DataPlaneModel {
  std::string name;
  /// Sustained single-reader ingest rate (B/s): the paper's bottleneck is
  /// the single reader instance per node, far below the 25 GB/s NIC.
  double readerRate = 5.0e9;
  double perOpOverhead = 50e-6;  ///< seconds of setup per read op
  int batchSize = 0;             ///< 0 = enqueue everything at once
  /// Batched enqueue stalls the pipeline while each batch drains:
  /// pipeline efficiency = batchSize / (batchSize + drainPenalty).
  double batchDrainPenalty = 12.0;
  /// Fabric congestion grows with system size:
  /// factor = 1 + coeff * max(0, log2(nodes/1024)).
  double congestionCoeff = 0.02;
  /// All-at-once enqueue exhausts provider resources beyond this many
  /// nodes (observed failure mode, Fig 6a: removed outlier, then DNS).
  long maxNodesAllAtOnce = 4608;

  static DataPlaneModel libfabricAllAtOnce();
  static DataPlaneModel libfabricBatched(int batchSize = 10);
  static DataPlaneModel mpi();
  static DataPlaneModel tcpFallback();
};

struct StreamStepConfig {
  double bytesPerNode = 5.86e9;  ///< paper: 5.86 GB per node per step
  int opsPerNode = 96;           ///< remote-read requests per node-step
  int readersPerNode = 1;        ///< paper: single reader instance
  double jitterSigma = 0.06;     ///< relative per-node straggler spread
  double metadataPerNode = 1.5e-6;  ///< rank-0 aggregation seconds/node
};

struct StreamStepResult {
  bool completed = true;          ///< false: strategy failed at this scale
  double stepSeconds = 0;         ///< wall time of the step
  double perNodeThroughput = 0;   ///< bytes/s/node
  double totalThroughput = 0;     ///< bytes/s across all nodes
};

/// Simulate one streamed step on `nodes` nodes of `cluster`.
StreamStepResult simulateStreamStep(const ClusterSpec& cluster, long nodes,
                                    const DataPlaneModel& plane,
                                    const StreamStepConfig& cfg, Rng& rng);

/// Convenience: run `steps` steps, returning per-step total throughputs
/// (empty when the plane fails at this scale) — the Fig 6 boxplot sample.
std::vector<double> simulateStreamSeries(const ClusterSpec& cluster,
                                         long nodes,
                                         const DataPlaneModel& plane,
                                         const StreamStepConfig& cfg,
                                         int steps, Rng& rng);

}  // namespace artsci::cluster

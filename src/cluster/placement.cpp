#include "cluster/placement.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace artsci::cluster {

const char* placementName(Placement placement) {
  switch (placement) {
    case Placement::kIntraNode:
      return "intra-node (shared nodes, 4+4 GCDs)";
    case Placement::kInterNode:
      return "inter-node (disjoint node sets)";
  }
  return "?";
}

PlacementCost placementCost(const ClusterSpec& cluster,
                            const PlacementConfig& cfg,
                            double bytesPerNode) {
  ARTSCI_EXPECTS(bytesPerNode >= 0);
  ARTSCI_EXPECTS(cfg.producerGcdsPerNode + cfg.consumerGcdsPerNode <=
                 cluster.node.gcdsPerNode);
  PlacementCost cost;
  const double nicTotal = cluster.node.nicBandwidth *
                          static_cast<double>(cluster.node.nicsPerNode);
  switch (cfg.placement) {
    case Placement::kIntraNode: {
      cost.bytesIntraNode = bytesPerNode * cfg.localReadFraction;
      cost.bytesOverNic = bytesPerNode * (1.0 - cfg.localReadFraction);
      // Each consumer GCD pulls from its paired producer GCD over its own
      // in-package link, so the local paths run in parallel.
      const double localBw = cluster.node.intraNodeBandwidth *
                             static_cast<double>(cfg.consumerGcdsPerNode);
      const double tLocal = cost.bytesIntraNode / localBw;
      const double tNic = cost.bytesOverNic / nicTotal;
      // Local and remote traffic overlap; the slower path dominates.
      cost.transferSeconds = std::max(tLocal, tNic);
      break;
    }
    case Placement::kInterNode: {
      cost.bytesOverNic = bytesPerNode;
      cost.bytesIntraNode = 0;
      cost.transferSeconds = bytesPerNode / nicTotal;
      break;
    }
  }
  return cost;
}

}  // namespace artsci::cluster

/// \file training_buffer.hpp
/// The continual-learning training buffer of §IV-C: experience replay
/// [Chaudhry et al. 2019] adapted to in-transit streaming.
///
/// Two internal buffers:
///  * now-buffer — the N_now = 10 latest streamed samples; new arrivals
///    prepend, displaced samples move into the EP buffer;
///  * EP-buffer — at most N_EP = 20 samples; when full, a randomly chosen
///    element is evicted.
/// A training batch draws n_now = 4 random samples from the now-buffer
/// and n_EP = 4 from the EP buffer (batch 8). The component sits between
/// the streaming receiver and the training loop and is thread-safe, so
/// the receiver can push while trainers sample; n_rep batches are drawn
/// per streamed step.
#pragma once

#include <deque>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace artsci::replay {

struct TrainingBufferConfig {
  std::size_t nowCapacity = 10;  ///< N_now
  std::size_t epCapacity = 20;   ///< N_EP
  std::size_t nowPerBatch = 4;   ///< n_now
  std::size_t epPerBatch = 4;    ///< n_EP
};

/// Sample payload is a template parameter; the core module instantiates it
/// with (point cloud, spectrum) training pairs.
template <typename SampleT>
class TrainingBuffer {
 public:
  explicit TrainingBuffer(TrainingBufferConfig cfg, std::uint64_t seed = 99)
      : cfg_(cfg), rng_(seed) {
    ARTSCI_EXPECTS(cfg.nowCapacity >= 1);
    ARTSCI_EXPECTS(cfg.epCapacity >= 1);
    ARTSCI_EXPECTS(cfg.nowPerBatch >= 1);
  }

  /// Receive one streamed sample (prepend to the now-buffer; spill the
  /// displaced sample into the EP buffer with random eviction).
  void push(SampleT sample) {
    TRACE_SCOPE("replay", "push");
    FAULT_POINT("replay.push");
    std::lock_guard<std::mutex> lock(mutex_);
    now_.push_front(std::move(sample));
    ++received_;
    if (now_.size() > cfg_.nowCapacity) {
      SampleT displaced = std::move(now_.back());
      now_.pop_back();
      if (ep_.size() >= cfg_.epCapacity) {
        const std::size_t victim =
            static_cast<std::size_t>(rng_.uniformInt(ep_.size()));
        ep_[victim] = std::move(displaced);
      } else {
        ep_.push_back(std::move(displaced));
      }
    }
    obs::Registry::global().counter("replay.received").add();
    obs::Registry::global().gauge("replay.now_size").set(
        static_cast<double>(now_.size()));
    obs::Registry::global().gauge("replay.ep_size").set(
        static_cast<double>(ep_.size()));
  }

  /// True once a batch can be drawn. Only the now-buffer gates
  /// readiness: batches are legal as soon as n_now samples have
  /// streamed in, *before* the EP buffer has any content — early
  /// batches then draw from the now-buffer alone and have size n_now,
  /// not n_now + n_EP (the paper's warm-up phase, where replay has
  /// nothing to replay yet). Use epReady() to ask whether batches have
  /// reached the full mixed composition.
  bool ready() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return now_.size() >= cfg_.nowPerBatch;
  }

  /// True once the EP buffer contributes to batches, i.e. at least one
  /// sample has been displaced out of the now-buffer. From this point
  /// every batch has the full n_now + n_EP composition.
  bool epReady() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return !ep_.empty();
  }

  /// Draw a training batch: n_now random now-samples + n_EP random
  /// EP-samples (now-only, size n_now, while the EP buffer is empty —
  /// see ready()/epReady()).
  /// Uses the buffer's internal RNG — with several trainer threads the
  /// draw sequence then depends on scheduling; pass a per-rank RNG via the
  /// overload below for reproducible runs.
  std::vector<SampleT> sampleBatch() {
    std::lock_guard<std::mutex> lock(mutex_);
    return sampleBatchLocked(rng_);
  }

  /// Draw a batch using the caller's RNG (one per DDP rank): each rank's
  /// sample sequence is then independent of thread interleaving.
  std::vector<SampleT> sampleBatch(Rng& rng) {
    std::lock_guard<std::mutex> lock(mutex_);
    return sampleBatchLocked(rng);
  }

  std::size_t nowSize() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return now_.size();
  }
  std::size_t epSize() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return ep_.size();
  }
  std::size_t received() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return received_;
  }
  std::size_t batchesSampled() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return batchesSampled_;
  }
  const TrainingBufferConfig& config() const { return cfg_; }

  /// Snapshot of buffer contents (tests / diagnostics).
  std::vector<SampleT> nowSnapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return {now_.begin(), now_.end()};
  }
  std::vector<SampleT> epSnapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return {ep_.begin(), ep_.end()};
  }

  /// Complete buffer state for crash-consistent checkpointing: contents
  /// of both internal buffers, the eviction RNG, and the counters. A
  /// restored buffer evolves bit-identically to one that never stopped.
  struct Snapshot {
    std::vector<SampleT> now, ep;
    Rng::State rng{};
    std::size_t received = 0;
    std::size_t batchesSampled = 0;
  };

  Snapshot snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot s;
    s.now.assign(now_.begin(), now_.end());
    s.ep = ep_;
    s.rng = rng_.state();
    s.received = received_;
    s.batchesSampled = batchesSampled_;
    return s;
  }

  void restore(const Snapshot& s) {
    std::lock_guard<std::mutex> lock(mutex_);
    now_.assign(s.now.begin(), s.now.end());
    ep_ = s.ep;
    rng_.setState(s.rng);
    received_ = s.received;
    batchesSampled_ = s.batchesSampled;
  }

 private:
  std::vector<SampleT> sampleBatchLocked(Rng& rng) {
    TRACE_SCOPE("replay", "sample_batch");
    obs::Registry::global().counter("replay.batches").add();
    ARTSCI_CHECK_MSG(now_.size() >= cfg_.nowPerBatch,
                     "sampleBatch before buffer ready");
    std::vector<SampleT> batch;
    batch.reserve(cfg_.nowPerBatch + cfg_.epPerBatch);
    for (std::size_t i = 0; i < cfg_.nowPerBatch; ++i)
      batch.push_back(
          now_[static_cast<std::size_t>(rng.uniformInt(now_.size()))]);
    if (!ep_.empty()) {
      for (std::size_t i = 0; i < cfg_.epPerBatch; ++i)
        batch.push_back(
            ep_[static_cast<std::size_t>(rng.uniformInt(ep_.size()))]);
    }
    ++batchesSampled_;
    return batch;
  }

  TrainingBufferConfig cfg_;
  mutable std::mutex mutex_;
  std::deque<SampleT> now_;
  std::vector<SampleT> ep_;
  Rng rng_;
  std::size_t received_ = 0;
  std::size_t batchesSampled_ = 0;
};

}  // namespace artsci::replay

/// \file metrics.hpp
/// Cross-subsystem metrics registry: named counters, gauges, and
/// histograms with per-thread shards (lock-free record path) and a
/// deterministic fixed-order aggregation.
///
/// Determinism invariant (the PR 3/6 discipline applied to metrics): every
/// aggregated quantity is an integer — counter shards are uint64, histogram
/// bucket counts are uint64, histogram sums are fixed-point int64 ticks,
/// min/max use an order-preserving integer encoding of the double — so the
/// shard reduction is associative and a snapshot of the same observation
/// multiset is bit-identical no matter how many threads recorded it or how
/// they were scheduled. Snapshots list metrics in name-sorted order.
/// Enforced by tests/common/test_obs.cpp.
///
/// Gauges are the one exception: set() is last-write-wins by design
/// (they describe "current state", not an accumulation).
///
/// Usage: resolve once, record hot —
///   obs::Counter& steps = obs::Registry::global().counter("pic.steps");
///   ... per step: steps.add();
/// Name lookups take the registry mutex; Counter/Gauge/Histogram
/// references stay valid for the registry's lifetime.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace artsci::obs {

/// Shards per metric. Threads map to slot (sequential id % kMaxShards);
/// two threads sharing a shard stay correct (atomic adds), merely
/// contended. Integer aggregation keeps any sharding bit-identical.
inline constexpr std::size_t kMaxShards = 32;

/// Stable small id for the calling thread, used as the shard index.
inline std::size_t threadSlot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMaxShards;
  return slot;
}

/// Monotone event count (uint64, exact).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t delta = 1) {
    shards_[threadSlot()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Fixed-order shard sum (exact; associative integer addition).
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kMaxShards> shards_;
};

/// Last-write-wins instantaneous value (queue depth, buffer occupancy).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Power-of-two-bucketed distribution with exact integer aggregation.
class Histogram {
 public:
  /// Bucket i holds observations in (2^(i-1+kMinExp), 2^(i+kMinExp)];
  /// bucket 0 additionally holds everything <= its bound (including
  /// zeros/negatives), the last bucket everything above.
  static constexpr int kBuckets = 44;
  static constexpr int kMinExp = -12;  ///< first upper bound 2^-12
  /// Fixed-point scale of the sum: 2^20 ticks per unit (~1e-6 absolute
  /// resolution per observation, exact associative accumulation).
  static constexpr double kSumScale = 1048576.0;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0;  ///< ticks / kSumScale
    double min = 0;  ///< 0 when count == 0
    double max = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
    /// Upper bound of the bucket containing the q-quantile (coarse —
    /// factor-2 resolution — but monotone in q and deterministic).
    double quantile(double q) const;
  };
  Snapshot snapshot() const;

  static int bucketOf(double v);
  /// Upper bound of bucket i.
  static double bucketBound(int i);

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::int64_t> sumTicks{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  };
  std::array<Shard, kMaxShards> shards_;
  /// Metric-level extremes, order-preserving integer encoding (exact,
  /// order-free CAS min/max).
  std::atomic<std::uint64_t> minEnc_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> maxEnc_{0};
};

/// Named metrics, one namespace per kind. Lookup creates on first use.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide default registry the built-in instrumentation
  /// (pic/train/replay/stream) records into.
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
  };
  /// Name-sorted, integer-aggregated snapshot (the deterministic order).
  Snapshot snapshot() const;

  /// Snapshot as a JSON object ({"counters": {...}, "gauges": {...},
  /// "histograms": {...}}), keys in name-sorted order.
  std::string toJson() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Periodic one-line progress report over a registry: every `everySteps`
/// onStep() calls, formats all gauges plus the counter deltas since the
/// previous report (name-sorted). The pipeline logs it as the step report
/// (particles/s, trainer ms/step, replay occupancy, serve queue depth).
class StepReporter {
 public:
  explicit StepReporter(Registry& registry, long everySteps = 10);

  /// Count one step; returns the report line on every `everySteps`-th call.
  std::optional<std::string> onStep();
  /// The line onStep would return, without advancing the cadence.
  std::string reportLine();

 private:
  Registry& registry_;
  long every_;
  long steps_ = 0;
  std::map<std::string, std::uint64_t> lastCounters_;
};

}  // namespace artsci::obs

#include "obs/trace.hpp"

#include <chrono>
#include <fstream>
#include <ostream>

namespace artsci::obs {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point epoch() {
  static const Clock::time_point t0 = Clock::now();
  return t0;
}

/// Nanoseconds as a microsecond decimal ("1234.056"), zero-padded so the
/// fraction keeps its magnitude.
void writeMicros(std::ostream& os, std::uint64_t ns) {
  os << ns / 1000 << '.' << static_cast<char>('0' + ns % 1000 / 100)
     << static_cast<char>('0' + ns % 100 / 10)
     << static_cast<char>('0' + ns % 10);
}

/// Escape a string for a JSON literal (names come from user code).
void writeEscaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}

}  // namespace

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  (void)epoch();  // pin the epoch no later than first recorder use
  return recorder;
}

std::uint64_t TraceRecorder::nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch())
          .count());
}

void TraceRecorder::setCapacity(std::size_t eventsPerThread) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = eventsPerThread > 0 ? eventsPerThread : 1;
}

TraceRecorder::ThreadLog& TraceRecorder::local() {
  // One registration per thread lifetime; the shared_ptr keeps the ring
  // alive in logs_ after the thread exits so post-join flushes see it.
  thread_local ThreadLog* log = [this] {
    auto fresh = std::make_shared<ThreadLog>();
    std::lock_guard<std::mutex> lock(mutex_);
    fresh->ring.resize(capacity_);
    fresh->tid = static_cast<int>(logs_.size());
    logs_.push_back(fresh);
    return fresh.get();
  }();
  return *log;
}

void TraceRecorder::record(const char* category, const char* name,
                           std::uint64_t beginNs, std::uint64_t endNs) {
  ThreadLog& log = local();
  const std::uint64_t h = log.head.load(std::memory_order_relaxed);
  log.ring[h % log.ring.size()] = Event{category, name, beginNs, endNs};
  log.head.store(h + 1, std::memory_order_release);
}

void TraceRecorder::setThreadName(std::string name) {
  ThreadLog& log = local();
  std::lock_guard<std::mutex> lock(mutex_);
  log.name = std::move(name);
}

void TraceRecorder::setThreadRank(int rank) {
  ThreadLog& log = local();
  std::lock_guard<std::mutex> lock(mutex_);
  log.rank = rank;
}

std::size_t TraceRecorder::eventCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& log : logs_) {
    const std::uint64_t h = log->head.load(std::memory_order_acquire);
    total += static_cast<std::size_t>(
        h < log->ring.size() ? h : static_cast<std::uint64_t>(log->ring.size()));
  }
  return total;
}

std::uint64_t TraceRecorder::droppedCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t dropped = 0;
  for (const auto& log : logs_) {
    const std::uint64_t h = log->head.load(std::memory_order_acquire);
    if (h > log->ring.size()) dropped += h - log->ring.size();
  }
  return dropped;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& log : logs_) log->head.store(0, std::memory_order_release);
}

void TraceRecorder::writeJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\n\"traceEvents\": [\n";
  bool first = true;
  const auto comma = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  // Metadata: one Chrome "process" per rank, one "thread" per ring.
  for (const auto& log : logs_) {
    comma();
    os << "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " << log->rank
       << ", \"tid\": " << log->tid << ", \"args\": {\"name\": \"rank "
       << log->rank << "\"}}";
    comma();
    os << "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": " << log->rank
       << ", \"tid\": " << log->tid << ", \"args\": {\"name\": \"";
    if (log->name.empty())
      os << "thread " << log->tid;
    else
      writeEscaped(os, log->name.c_str());
    os << "\"}}";
  }
  for (const auto& log : logs_) {
    const std::uint64_t head = log->head.load(std::memory_order_acquire);
    const std::uint64_t cap = static_cast<std::uint64_t>(log->ring.size());
    const std::uint64_t begin = head > cap ? head - cap : 0;
    for (std::uint64_t i = begin; i < head; ++i) {
      const Event& e = log->ring[i % cap];
      comma();
      // Chrome expects microsecond doubles; emit ns / 1000 with the
      // fractional part kept so ~20ns spans stay distinguishable.
      os << "{\"ph\": \"X\", \"cat\": \"";
      writeEscaped(os, e.category);
      os << "\", \"name\": \"";
      writeEscaped(os, e.name);
      os << "\", \"ts\": ";
      writeMicros(os, e.beginNs);
      os << ", \"dur\": ";
      writeMicros(os, e.endNs - e.beginNs);
      os << ", \"pid\": " << log->rank << ", \"tid\": " << log->tid << "}";
    }
  }
  os << "\n],\n\"displayTimeUnit\": \"ms\"\n}\n";
}

bool TraceRecorder::writeJsonFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  writeJson(os);
  return os.good();
}

}  // namespace artsci::obs

/// \file trace.hpp
/// Span tracing for the hot paths: `TRACE_SCOPE("pic", "tile_pass")`
/// records one RAII-timed span into the calling thread's private ring
/// buffer — no locks, no allocation on the record path — and
/// `TraceRecorder::writeJson` flushes everything as Chrome `trace_event`
/// JSON that chrome://tracing and https://ui.perfetto.dev load directly.
///
/// Cost model (the contract bench/particle_pipeline.cpp --trace-overhead
/// gates):
///  * `ARTSCI_TRACING=0` (CMake option OFF): TRACE_SCOPE compiles to
///    nothing — zero code, zero data;
///  * compiled in but disabled (the default at runtime): one relaxed
///    atomic load and a predictable branch per scope (~1 ns);
///  * enabled: two steady_clock reads plus one ring-buffer store per
///    scope (~tens of ns) — cheap enough to leave on around phases, far
///    too hot for per-particle loops (instrument the loop, not the body).
///
/// Attribution: every span belongs to the thread that recorded it. A
/// thread may label itself (`setThreadName`) and claim a rank
/// (`setThreadRank`); the JSON maps rank -> Chrome "process" and thread
/// -> Chrome "thread", so a 4-rank x 8-thread run renders as four
/// process groups with nested per-thread span stacks.
///
/// Thread safety: recording is wait-free per thread (single-writer ring,
/// relaxed atomics). `writeJson`/`clear`/`eventCount` walk other threads'
/// buffers and must run at a quiescent point (instrumented regions
/// joined), the same discipline the step-level flush sites follow.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

// Compile-time master switch. The CMake option ARTSCI_TRACING=OFF passes
// -DARTSCI_TRACING=0; default is compiled-in (runtime-disabled).
#ifndef ARTSCI_TRACING
#define ARTSCI_TRACING 1
#endif

namespace artsci::obs {

/// Global singleton owning every thread's span ring buffer.
class TraceRecorder {
 public:
  /// One completed span. `category`/`name` must be string literals (or
  /// otherwise outlive the recorder) — the ring stores the pointers.
  struct Event {
    const char* category = nullptr;
    const char* name = nullptr;
    std::uint64_t beginNs = 0;  ///< since the recorder's epoch
    std::uint64_t endNs = 0;
  };

  static TraceRecorder& instance();

  /// Runtime switch (default off). Scopes opened while disabled record
  /// nothing, even if tracing is enabled before they close.
  void setEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Ring capacity (events) for buffers created *after* the call; when a
  /// ring is full the oldest events are overwritten and counted dropped.
  void setCapacity(std::size_t eventsPerThread);

  /// Record one completed span into the calling thread's ring.
  void record(const char* category, const char* name, std::uint64_t beginNs,
              std::uint64_t endNs);

  /// Monotonic nanoseconds since the recorder's epoch.
  static std::uint64_t nowNs();

  /// Label the calling thread in the flushed trace (e.g. "trainer rank 2").
  void setThreadName(std::string name);
  /// Claim a rank for the calling thread: the flush maps it to a Chrome
  /// "process", grouping all of the rank's threads. Default rank is 0.
  void setThreadRank(int rank);

  /// Total spans currently buffered across all threads (quiescent only).
  std::size_t eventCount() const;
  /// Spans overwritten because a ring wrapped (quiescent only).
  std::uint64_t droppedCount() const;
  /// Drop all buffered spans; rings and thread labels survive.
  void clear();

  /// Chrome trace_event JSON ("traceEvents" array of "X" complete events
  /// plus process/thread metadata). Quiescent only.
  void writeJson(std::ostream& os) const;
  /// writeJson to a file; returns false if the file cannot be opened.
  bool writeJsonFile(const std::string& path) const;

 private:
  struct ThreadLog {
    std::vector<Event> ring;
    /// Monotone count of spans ever recorded; slot = head % ring.size().
    /// Written only by the owning thread; release-stored so a quiescent
    /// reader that joined the thread sees completed events.
    std::atomic<std::uint64_t> head{0};
    int tid = 0;
    int rank = 0;
    std::string name;
  };

  TraceRecorder() = default;
  ThreadLog& local();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;  ///< guards logs_ and capacity_
  std::size_t capacity_ = std::size_t{1} << 15;
  std::vector<std::shared_ptr<ThreadLog>> logs_;
};

/// RAII span: stamps begin at construction, records at destruction. The
/// enabled check is taken once, at entry.
class TraceScope {
 public:
  TraceScope(const char* category, const char* name)
      : active_(TraceRecorder::instance().enabled()) {
    if (active_) {
      category_ = category;
      name_ = name;
      beginNs_ = TraceRecorder::nowNs();
    }
  }
  ~TraceScope() {
    if (active_)
      TraceRecorder::instance().record(category_, name_, beginNs_,
                                       TraceRecorder::nowNs());
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  bool active_;
  const char* category_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t beginNs_ = 0;
};

}  // namespace artsci::obs

#if ARTSCI_TRACING
#define ARTSCI_TRACE_CONCAT2(a, b) a##b
#define ARTSCI_TRACE_CONCAT(a, b) ARTSCI_TRACE_CONCAT2(a, b)
/// Time the enclosing scope as one span. category/name: string literals.
#define TRACE_SCOPE(category, name)                                  \
  ::artsci::obs::TraceScope ARTSCI_TRACE_CONCAT(artsciTraceScope_,   \
                                                __COUNTER__)(category, name)
#else
#define TRACE_SCOPE(category, name) ((void)0)
#endif

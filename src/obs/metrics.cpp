#include "obs/metrics.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace artsci::obs {

namespace {

/// Order-preserving encoding of double into uint64: for any finite a < b,
/// enc(a) < enc(b). (Standard sign-flip trick; NaN never recorded here —
/// bucketOf/observe treat non-finite via fmin/fmax semantics upstream.)
std::uint64_t encodeOrdered(double d) {
  const std::uint64_t u = std::bit_cast<std::uint64_t>(d);
  return (u & (std::uint64_t{1} << 63)) != 0 ? ~u
                                             : u | (std::uint64_t{1} << 63);
}

double decodeOrdered(std::uint64_t e) {
  const std::uint64_t u =
      (e & (std::uint64_t{1} << 63)) != 0 ? e & ~(std::uint64_t{1} << 63) : ~e;
  return std::bit_cast<double>(u);
}

void atomicMaxU64(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (cur < v &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomicMinU64(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (cur > v &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::string formatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

int Histogram::bucketOf(double v) {
  if (!(v > 0.0)) return 0;
  // Upper bound of bucket i is 2^(i + kMinExp); v belongs to the first
  // bucket whose bound is >= v, i.e. i = ceil(log2 v) - kMinExp.
  const int e = std::ilogb(v);  // floor(log2 |v|) for finite v
  const bool isPow2 = std::ldexp(1.0, e) == v;
  int idx = e + (isPow2 ? 0 : 1) - kMinExp;
  if (idx < 0) idx = 0;
  if (idx >= kBuckets) idx = kBuckets - 1;
  return idx;
}

double Histogram::bucketBound(int i) { return std::ldexp(1.0, i + kMinExp); }

void Histogram::observe(double v) {
  Shard& s = shards_[threadSlot()];
  s.count.fetch_add(1, std::memory_order_relaxed);
  // Saturating fixed-point conversion: exact associative integer ticks.
  const double ticks = v * kSumScale;
  const std::int64_t t =
      ticks >= 9.2e18 ? std::int64_t{1} << 62
                      : (ticks <= -9.2e18 ? -(std::int64_t{1} << 62)
                                          : std::llround(ticks));
  s.sumTicks.fetch_add(t, std::memory_order_relaxed);
  s.buckets[static_cast<std::size_t>(bucketOf(v))].fetch_add(
      1, std::memory_order_relaxed);
  const std::uint64_t enc = encodeOrdered(v);
  atomicMinU64(minEnc_, enc);
  atomicMaxU64(maxEnc_, enc);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  std::int64_t ticks = 0;
  // Fixed shard order; all sums are integers, so the reduction is exact
  // and independent of which threads fed which shards.
  for (const auto& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    ticks += s.sumTicks.load(std::memory_order_relaxed);
    for (int b = 0; b < kBuckets; ++b)
      out.buckets[static_cast<std::size_t>(b)] +=
          s.buckets[static_cast<std::size_t>(b)].load(
              std::memory_order_relaxed);
  }
  out.sum = static_cast<double>(ticks) / kSumScale;
  if (out.count > 0) {
    out.min = decodeOrdered(minEnc_.load(std::memory_order_relaxed));
    out.max = decodeOrdered(maxEnc_.load(std::memory_order_relaxed));
  }
  return out;
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation (1-based), then walk the buckets.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets[static_cast<std::size_t>(b)];
    if (seen >= rank) return bucketBound(b);
  }
  return bucketBound(kBuckets - 1);
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

Registry::Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot out;
  // std::map iteration = name-sorted = the fixed aggregation order.
  for (const auto& [name, c] : counters_) out.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : gauges_) out.gauges.emplace_back(name, g->value());
  for (const auto& [name, h] : histograms_)
    out.histograms.emplace_back(name, h->snapshot());
  return out;
}

std::string Registry::toJson() const {
  const Snapshot snap = snapshot();
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i)
    os << (i > 0 ? ", " : "") << "\"" << snap.counters[i].first
       << "\": " << snap.counters[i].second;
  os << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i)
    os << (i > 0 ? ", " : "") << "\"" << snap.gauges[i].first
       << "\": " << formatDouble(snap.gauges[i].second);
  os << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& [name, h] = snap.histograms[i];
    os << (i > 0 ? ", " : "") << "\n    \"" << name << "\": {\"count\": "
       << h.count << ", \"sum\": " << formatDouble(h.sum)
       << ", \"mean\": " << formatDouble(h.mean())
       << ", \"min\": " << formatDouble(h.min)
       << ", \"max\": " << formatDouble(h.max)
       << ", \"p50\": " << formatDouble(h.quantile(0.5))
       << ", \"p99\": " << formatDouble(h.quantile(0.99)) << "}";
  }
  os << "\n  }\n}\n";
  return os.str();
}

StepReporter::StepReporter(Registry& registry, long everySteps)
    : registry_(registry), every_(everySteps > 0 ? everySteps : 1) {}

std::string StepReporter::reportLine() {
  const Registry::Snapshot snap = registry_.snapshot();
  std::ostringstream os;
  os << "step " << steps_;
  for (const auto& [name, v] : snap.gauges)
    os << " | " << name << " " << formatDouble(v);
  for (const auto& [name, v] : snap.counters) {
    const auto it = lastCounters_.find(name);
    const std::uint64_t before = it == lastCounters_.end() ? 0 : it->second;
    os << " | " << name << " +" << (v - before);
    lastCounters_[name] = v;
  }
  return os.str();
}

std::optional<std::string> StepReporter::onStep() {
  ++steps_;
  if (steps_ % every_ != 0) return std::nullopt;
  return reportLine();
}

}  // namespace artsci::obs

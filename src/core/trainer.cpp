#include "core/trainer.hpp"

#include <string>

#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace artsci::core {

InTransitTrainer::InTransitTrainer(ArtificialScientistModel::Config modelCfg,
                                   TrainerConfig cfg)
    : cfg_(cfg), modelCfg_(modelCfg), buffer_(cfg.buffer, cfg.seed),
      comm_(cfg.ranks) {
  ARTSCI_EXPECTS(cfg_.ranks >= 1);
  Rng seeder(cfg_.seed);
  for (std::size_t r = 0; r < cfg_.ranks; ++r) {
    // Identical init on every rank (DDP replicas): same init RNG seed.
    Rng initRng(cfg_.seed + 1);
    replicas_.push_back(
        std::make_unique<ArtificialScientistModel>(modelCfg_, initRng));
    rankRngs_.push_back(seeder.split());

    const long totalBatch =
        static_cast<long>(cfg_.ranks) *
        static_cast<long>(cfg_.buffer.nowPerBatch + cfg_.buffer.epPerBatch);
    const ml::Real scale =
        cfg_.sqrtLrScaling
            ? ml::sqrtScaledLearningRate(1.0, totalBatch, cfg_.baseBatch)
            : ml::Real(1);
    std::vector<ml::ParamGroup> groups;
    groups.push_back({replicas_.back()->vaeParameters(),
                      cfg_.baseLearningRate * cfg_.vaeLearningRateFactor *
                          scale});
    groups.push_back(
        {replicas_.back()->innParameters(), cfg_.baseLearningRate * scale});
    optimizers_.push_back(
        std::make_unique<ml::Adam>(std::move(groups), cfg_.adam));
    arenas_.push_back(std::make_unique<ml::Arena>());
  }
}

ml::Arena::Stats InTransitTrainer::arenaStats(std::size_t rank) const {
  ARTSCI_EXPECTS(rank < arenas_.size());
  return arenas_[rank]->stats();
}

std::pair<ml::Real, ml::Real> InTransitTrainer::learningRates() const {
  return {optimizers_[0]->learningRate(0), optimizers_[0]->learningRate(1)};
}

const ArtificialScientistModel& InTransitTrainer::model(
    std::size_t rank) const {
  ARTSCI_EXPECTS(rank < replicas_.size());
  return *replicas_[rank];
}

std::shared_ptr<const ArtificialScientistModel> InTransitTrainer::exportSnapshot()
    const {
  return cloneForInference(model(0));
}

TrainerCheckpointState InTransitTrainer::captureCheckpointState() const {
  TrainerCheckpointState s;
  for (auto& t : replicas_[0]->parameters()) s.params.push_back(t.data());
  s.adamPacked = optimizers_[0]->packedState();
  s.adamStep = optimizers_[0]->stepCount();
  for (const auto& rng : rankRngs_) s.rankRngs.push_back(rng.state());
  s.buffer = buffer_.snapshot();
  s.iterations = stats_.iterations;
  return s;
}

void InTransitTrainer::restoreCheckpointState(
    const TrainerCheckpointState& s) {
  ARTSCI_CHECK_MSG(s.rankRngs.size() == cfg_.ranks,
                   "checkpoint has " << s.rankRngs.size()
                                     << " rank RNG states, trainer has "
                                     << cfg_.ranks << " ranks");
  auto tensors = replicas_[0]->parameters();
  ARTSCI_CHECK_MSG(s.params.size() == tensors.size(),
                   "checkpoint has " << s.params.size()
                                     << " parameter tensors, model has "
                                     << tensors.size());
  for (std::size_t i = 0; i < tensors.size(); ++i)
    ARTSCI_CHECK_MSG(s.params[i].size() == tensors[i].data().size(),
                     "checkpoint tensor " << i << " has "
                                          << s.params[i].size()
                                          << " values, model tensor has "
                                          << tensors[i].data().size());
  // All-or-nothing beyond this point: restorePackedState validates the
  // Adam layout before mutating, and everything after it cannot fail.
  for (std::size_t r = 0; r < cfg_.ranks; ++r) {
    auto rankTensors = replicas_[r]->parameters();
    for (std::size_t i = 0; i < rankTensors.size(); ++i)
      rankTensors[i].data() = s.params[i];
    optimizers_[r]->restorePackedState(s.adamPacked, s.adamStep);
    rankRngs_[r].setState(s.rankRngs[r]);
  }
  buffer_.restore(s.buffer);
  stats_.iterations = s.iterations;
}

void InTransitTrainer::trainIterations(long iterations) {
  // Injected before the rank team forms: a fault inside the team would
  // strand peers in allReduce.
  FAULT_POINT("train.step");
  if (!buffer_.ready()) return;
  Timer timer;
  const long points = cfg_.buffer.nowPerBatch > 0
                          ? static_cast<long>(buffer_.nowSnapshot()
                                                  .front()
                                                  .cloud.size()) /
                                6
                          : 0;
  const long specDim = modelCfg_.spectrumDim;

  std::vector<std::vector<double>> lossPerRank(cfg_.ranks);

  // Resolved once; rank 0 is the reporter so multi-rank runs don't
  // multiply-count iterations (replicas step in lockstep).
  static obs::Counter& iterCounter =
      obs::Registry::global().counter("train.iterations");
  static obs::Histogram& stepMs =
      obs::Registry::global().histogram("train.step_ms");

  runRankTeam(cfg_.ranks, [&](std::size_t rank) {
    obs::TraceRecorder::instance().setThreadName("trainer rank " +
                                                 std::to_string(rank));
    auto& model = *replicas_[rank];
    auto& opt = *optimizers_[rank];
    auto& rng = rankRngs_[rank];
    for (long it = 0; it < iterations; ++it) {
      Timer iterTimer;
      // Per-rank RNG: the draw sequence is reproducible no matter how the
      // rank threads interleave on the shared buffer.
      const auto batch = buffer_.sampleBatch(rng);
      ml::Tensor clouds = batchClouds(batch, points);
      ml::Tensor spectra = batchSpectra(batch, specDim);
      opt.zeroGrad();
      // The whole forward/backward graph for this iteration lives in the
      // rank's step arena: beginStep() recycles last iteration's memory
      // (and, once the allocation plan is recorded, replays it with zero
      // heap traffic). Nothing arena-backed may outlive the iteration —
      // the scalar terms are read out via item() below, before the next
      // beginStep() reclaims the buffers.
      arenas_[rank]->beginStep();
      ml::LossTerms terms;
      ml::Tensor total;
      {
        ml::ArenaScope arenaScope(*arenas_[rank]);
        {
          TRACE_SCOPE("train", "forward");
          terms = model.lossTerms(clouds, spectra, rng);
        }
        total = ml::totalLoss(terms, modelCfg_.weights);
        {
          TRACE_SCOPE("train", "backward");
          total.backward();
        }
      }
      ml::allReduceGradients(comm_, rank, model.parameters());
      {
        TRACE_SCOPE("train", "optim");
        opt.step();
      }
      if (rank == 0) {
        iterCounter.add();
        stepMs.observe(iterTimer.seconds() * 1e3);
      }
      if (rank == 0) {
        lossPerRank[0].push_back(total.item());
        stats_.chamferHistory.push_back(terms.chamfer.item());
        stats_.mseHistory.push_back(terms.mse.item());
        stats_.mmdLatentHistory.push_back(terms.mmdLatent.item());
      }
    }
  });

  for (double l : lossPerRank[0]) stats_.lossHistory.push_back(l);
  stats_.iterations += iterations;
  stats_.trainSeconds += timer.seconds();
  stats_.commSeconds = comm_.communicationSeconds(0);
}

}  // namespace artsci::core

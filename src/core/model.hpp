/// \file model.hpp
/// The Artificial Scientist's ML model (paper Fig 7): a PointNet-style
/// variational autoencoder over particle phase-space point clouds, coupled
/// to a Glow-block INN that maps the VAE latent z invertibly to
/// [I' || N'] — the predicted radiation spectrum concatenated with a
/// normal latent. Training minimizes Eq. (1); inversion draws posterior
/// samples z' = INN^{-1}([I, N~N(0,1)]) and decodes them to point clouds.
#pragma once

#include <memory>

#include "ml/coupling.hpp"
#include "ml/layers.hpp"
#include "ml/losses.hpp"

namespace artsci::core {

class ArtificialScientistModel : public ml::Module {
 public:
  struct Config {
    ml::PointNetEncoder::Config encoder;
    ml::VoxelDecoder::Config decoder;
    ml::Inn::Config inn;
    long spectrumDim = 32;  ///< width of I inside the INN output
    ml::LossWeights weights;
    /// Use the Sinkhorn EMD instead of Chamfer as the reconstruction loss
    /// (the paper wanted this but KeOps has no HIP port; ablation A2).
    bool useEmdReconstruction = false;

    /// The paper-scale architecture (§IV-C): encoder 6->...->608, latent
    /// 544, decoder 4^3x16 -> 4096 points, 4 Glow blocks with 272/256
    /// subnets. ~4.3M parameters.
    static Config paper();
    /// Reduced preset that trains in CPU-minutes: latent 64, 128-point
    /// clouds, 64-point reconstructions, 32-bin spectra.
    static Config reduced();
  };

  ArtificialScientistModel(Config cfg, Rng& rng);

  /// All five loss terms of Eq.(1) for one batch.
  /// clouds: [B, N, 6]; spectra: [B, spectrumDim].
  ml::LossTerms lossTerms(const ml::Tensor& clouds, const ml::Tensor& spectra,
                          Rng& rng) const;

  /// Weighted total loss (Eq. 1).
  ml::Tensor loss(const ml::Tensor& clouds, const ml::Tensor& spectra,
                  Rng& rng) const;

  /// Inverse problem: sample point clouds explaining `spectra` [B, S].
  /// Each draw uses fresh N ~ N(0,1), sampling the learned posterior.
  ml::Tensor invertSpectra(const ml::Tensor& spectra, Rng& rng) const;

  /// Forward surrogate: predict spectra from particle clouds [B, N, 6]
  /// (encoder mean -> INN forward -> I' slice).
  ml::Tensor predictSpectra(const ml::Tensor& clouds) const;

  /// Latent mean of clouds (for the latent-space region classifier).
  ml::Tensor encodeMean(const ml::Tensor& clouds) const;

  std::vector<ml::Tensor> parameters() const override;
  /// Parameter groups for the paper's separate l_VAE / l_INN rates.
  std::vector<ml::Tensor> vaeParameters() const;
  std::vector<ml::Tensor> innParameters() const;

  const Config& config() const { return cfg_; }
  long cloudPoints() const { return decoder_->pointCount(); }

  /// Introspection for graph-free executors (serve::InferenceEngine).
  const ml::PointNetEncoder& encoder() const { return *encoder_; }
  const ml::VoxelDecoder& decoder() const { return *decoder_; }
  const ml::Inn& inn() const { return *inn_; }

 private:
  Config cfg_;
  std::unique_ptr<ml::PointNetEncoder> encoder_;
  std::unique_ptr<ml::VoxelDecoder> decoder_;
  std::unique_ptr<ml::Inn> inn_;
};

/// Deep copy of `src` for serving: same config, parameter values copied,
/// requiresGrad cleared so forward passes build no autodiff graph. The
/// result is immutable by convention (shared_ptr<const>) and safe to use
/// from many threads concurrently — forward passes never mutate a model.
std::shared_ptr<const ArtificialScientistModel> cloneForInference(
    const ArtificialScientistModel& src);

}  // namespace artsci::core

#include "core/transforms.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace artsci::core {

std::vector<double> extractRegionCloud(const pic::ParticleBuffer& particles,
                                       long ny, pic::KhiRegion region,
                                       const TransformConfig& cfg,
                                       Rng& rng) {
  // Collect indices of particles in the region.
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < particles.size(); ++i) {
    if (pic::classifyKhiRegion(particles.y[i], ny,
                               cfg.vortexHalfWidthCells) == region)
      candidates.push_back(i);
  }
  if (candidates.size() < static_cast<std::size_t>(cfg.cloudPoints))
    return {};

  // Reservoir-free random subset: Fisher-Yates the first cloudPoints.
  for (long k = 0; k < cfg.cloudPoints; ++k) {
    const std::size_t j =
        k + static_cast<std::size_t>(
                rng.uniformInt(candidates.size() - static_cast<std::size_t>(k)));
    std::swap(candidates[static_cast<std::size_t>(k)], candidates[j]);
  }

  // Center positions on the subset mean, scale to ~[-1, 1] by the spread.
  double cx = 0, cy = 0, cz = 0;
  for (long k = 0; k < cfg.cloudPoints; ++k) {
    const std::size_t i = candidates[static_cast<std::size_t>(k)];
    cx += particles.x[i];
    cy += particles.y[i];
    cz += particles.z[i];
  }
  const double inv = 1.0 / static_cast<double>(cfg.cloudPoints);
  cx *= inv;
  cy *= inv;
  cz *= inv;
  double spread = 1e-9;
  for (long k = 0; k < cfg.cloudPoints; ++k) {
    const std::size_t i = candidates[static_cast<std::size_t>(k)];
    spread = std::max({spread, std::abs(particles.x[i] - cx),
                       std::abs(particles.y[i] - cy),
                       std::abs(particles.z[i] - cz)});
  }

  std::vector<double> cloud(static_cast<std::size_t>(cfg.cloudPoints) * 6);
  for (long k = 0; k < cfg.cloudPoints; ++k) {
    const std::size_t i = candidates[static_cast<std::size_t>(k)];
    const std::size_t base = static_cast<std::size_t>(k) * 6;
    cloud[base + 0] = (particles.x[i] - cx) / spread;
    cloud[base + 1] = (particles.y[i] - cy) / spread;
    cloud[base + 2] = (particles.z[i] - cz) / spread;
    cloud[base + 3] = particles.ux[i] / cfg.momentumScale;
    cloud[base + 4] = particles.uy[i] / cfg.momentumScale;
    cloud[base + 5] = particles.uz[i] / cfg.momentumScale;
  }
  return cloud;
}

std::vector<double> normalizeSpectrum(const std::vector<double>& intensity,
                                      const TransformConfig& cfg) {
  ARTSCI_EXPECTS(cfg.spectrumRef > 0 && cfg.spectrumScale > 0);
  std::vector<double> out(intensity.size());
  for (std::size_t i = 0; i < intensity.size(); ++i) {
    out[i] = std::log10(1.0 + std::max(0.0, intensity[i]) /
                                  cfg.spectrumRef) /
             cfg.spectrumScale;
  }
  return out;
}

std::vector<double> denormalizeSpectrum(const std::vector<double>& norm,
                                        const TransformConfig& cfg) {
  std::vector<double> out(norm.size());
  for (std::size_t i = 0; i < norm.size(); ++i) {
    out[i] =
        (std::pow(10.0, norm[i] * cfg.spectrumScale) - 1.0) * cfg.spectrumRef;
  }
  return out;
}

double cloudMomentumX(const std::vector<double>& cloud, std::size_t point,
                      const TransformConfig& cfg) {
  ARTSCI_EXPECTS((point + 1) * 6 <= cloud.size());
  return cloud[point * 6 + 3] * cfg.momentumScale;
}

}  // namespace artsci::core

#include "core/producer.hpp"

#include "common/log.hpp"
#include "fault/fault.hpp"

namespace artsci::core {

std::string cloudPath(int region) {
  return std::string("particles/e/phasespace/") +
         pic::khiRegionName(static_cast<pic::KhiRegion>(region));
}

std::string spectrumPath(int region) {
  return std::string("meshes/radiation/") +
         pic::khiRegionName(static_cast<pic::KhiRegion>(region));
}

KhiStreamProducer::KhiStreamProducer(
    ProducerConfig cfg, std::shared_ptr<stream::SstEngine> particleStream,
    std::shared_ptr<stream::SstEngine> radiationStream)
    : cfg_(cfg), rng_(cfg.seed) {
  pic::SimulationConfig sc;
  sc.grid = cfg_.khi.grid;
  sc.dt = cfg_.khi.dt;
  sc.recordBetaDot = true;  // the radiation plugin needs accelerations
  sim_ = std::make_unique<pic::Simulation>(sc);
  species_ = pic::initializeKhi(*sim_, cfg_.khi);

  radiation::DetectorConfig det;
  det.directions = {Vec3d{1.0, 0.0, 0.0}};
  det.frequencies = radiation::logFrequencyAxis(cfg_.omegaMin, cfg_.omegaMax,
                                                cfg_.frequencyCount);
  radiationPlugin_ = std::make_shared<radiation::RegionRadiationPlugin>(
      det, species_.electrons, cfg_.transform.vortexHalfWidthCells);
  sim_->addPlugin(radiationPlugin_);

  particleSeries_ = std::make_unique<openpmd::Series>(
      "particles", openpmd::Access::kCreate,
      openpmd::StreamBackend::forWriter(std::move(particleStream), 0));
  radiationSeries_ = std::make_unique<openpmd::Series>(
      "radiation", openpmd::Access::kCreate,
      openpmd::StreamBackend::forWriter(std::move(radiationStream), 0));
}

void KhiStreamProducer::emitIteration(long index) {
  const auto& electrons = sim_->species(species_.electrons);
  const long P = cfg_.transform.cloudPoints;
  const long S = static_cast<long>(cfg_.frequencyCount);

  auto itParticles = particleSeries_->writeIteration(index);
  auto itRadiation = radiationSeries_->writeIteration(index);
  itParticles.setTime(sim_->time(), sim_->dt());
  itRadiation.setTime(sim_->time(), sim_->dt());

  for (int r = 0; r < 3; ++r) {
    const auto region = static_cast<pic::KhiRegion>(r);
    auto cloud = extractRegionCloud(electrons, sim_->grid().ny, region,
                                    cfg_.transform, rng_);
    if (cloud.empty()) {
      log::warn("producer", "region ", pic::khiRegionName(region),
                " has too few particles; skipping sample");
      continue;
    }
    itParticles.particles("e")
        .record("phasespace")
        .component(pic::khiRegionName(region))
        .storeChunk(std::move(cloud), {0, 0}, {P, 6}, {P, 6});

    const auto raw = radiationPlugin_->accumulator(region).intensity(0);
    auto spectrum = normalizeSpectrum(raw, cfg_.transform);
    itRadiation.mesh("radiation")
        .component(pic::khiRegionName(region))
        .storeChunk(std::move(spectrum), {0}, {S}, {S});
  }
  itParticles.close();
  itRadiation.close();
  ++iterationsStreamed_;
}

void KhiStreamProducer::run() {
  sim_->run(cfg_.warmupSteps);
  for (long s = 0; s < cfg_.totalSteps; ++s) {
    sim_->step();
    if ((s + 1) % cfg_.streamEvery == 0) {
      FAULT_POINT("producer.step");
      emitIteration(iterationsStreamed_);
      // Windowed spectra: reset so the next emission reflects the most
      // recent dynamics, matching the per-time-step training pairs.
      for (int r = 0; r < 3; ++r) {
        const_cast<radiation::SpectralAccumulator&>(
            radiationPlugin_->accumulator(static_cast<pic::KhiRegion>(r)))
            .reset();
      }
    }
  }
  particleSeries_->close();
  radiationSeries_->close();
}

}  // namespace artsci::core

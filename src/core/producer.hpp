/// \file producer.hpp
/// The producer side of the Artificial Scientist: a KHI PIC simulation
/// whose output plugins publish two parallel openPMD streams (the paper's
/// two PIConGPU output plugins, §IV-D) — particle phase-space point clouds
/// per KHI region and the matching windowed radiation spectra. No byte of
/// either ever touches the filesystem.
#pragma once

#include <memory>

#include "core/transforms.hpp"
#include "openpmd/backends.hpp"
#include "pic/khi.hpp"
#include "radiation/plugin.hpp"

namespace artsci::core {

struct ProducerConfig {
  pic::KhiConfig khi;
  TransformConfig transform;
  std::size_t frequencyCount = 32;  ///< spectrum bins (model spectrumDim)
  double omegaMin = 0.3, omegaMax = 30.0;  ///< detector band in omega_pe
  long warmupSteps = 10;   ///< let the instability seed before streaming
  long streamEvery = 2;    ///< emit one iteration every N PIC steps
  long totalSteps = 50;    ///< PIC steps after warm-up
  std::uint64_t seed = 4242;
};

/// Record paths used on the wire (shared with the consumer).
std::string cloudPath(int region);
std::string spectrumPath(int region);

class KhiStreamProducer {
 public:
  KhiStreamProducer(ProducerConfig cfg,
                    std::shared_ptr<stream::SstEngine> particleStream,
                    std::shared_ptr<stream::SstEngine> radiationStream);

  /// Run the simulation, streaming as configured; closes both streams.
  /// Blocking — call on the producer thread.
  void run();

  long iterationsStreamed() const { return iterationsStreamed_; }
  const pic::Simulation& simulation() const { return *sim_; }

 private:
  void emitIteration(long index);

  ProducerConfig cfg_;
  std::unique_ptr<pic::Simulation> sim_;
  pic::KhiSpecies species_;
  std::shared_ptr<radiation::RegionRadiationPlugin> radiationPlugin_;
  std::unique_ptr<openpmd::Series> particleSeries_;
  std::unique_ptr<openpmd::Series> radiationSeries_;
  Rng rng_;
  long iterationsStreamed_ = 0;
};

}  // namespace artsci::core

#include "core/sample.hpp"

#include "common/error.hpp"

namespace artsci::core {

ml::Tensor batchClouds(const std::vector<Sample>& batch, long points) {
  ARTSCI_EXPECTS(!batch.empty());
  const long B = static_cast<long>(batch.size());
  std::vector<ml::Real> data;
  data.reserve(static_cast<std::size_t>(B * points * 6));
  for (const auto& s : batch) {
    ARTSCI_CHECK_MSG(
        s.cloud.size() == static_cast<std::size_t>(points * 6),
        "sample cloud has " << s.cloud.size() << " values, expected "
                            << points * 6);
    data.insert(data.end(), s.cloud.begin(), s.cloud.end());
  }
  return ml::Tensor::fromVector({B, points, 6}, std::move(data));
}

ml::Tensor batchSpectra(const std::vector<Sample>& batch, long specDim) {
  ARTSCI_EXPECTS(!batch.empty());
  const long B = static_cast<long>(batch.size());
  std::vector<ml::Real> data;
  data.reserve(static_cast<std::size_t>(B * specDim));
  for (const auto& s : batch) {
    ARTSCI_CHECK_MSG(
        s.spectrum.size() == static_cast<std::size_t>(specDim),
        "sample spectrum has " << s.spectrum.size() << " values, expected "
                               << specDim);
    data.insert(data.end(), s.spectrum.begin(), s.spectrum.end());
  }
  return ml::Tensor::fromVector({B, specDim}, std::move(data));
}

}  // namespace artsci::core

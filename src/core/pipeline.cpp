#include "core/pipeline.hpp"

#include <memory>
#include <mutex>
#include <thread>

#include "common/log.hpp"
#include "common/timer.hpp"
#include "core/checkpoint.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"

namespace artsci::core {

PipelineConfig PipelineConfig::quickDemo() {
  PipelineConfig cfg;
  cfg.producer.khi.grid = pic::GridSpec{16, 32, 4, 0.25, 0.25, 0.25};
  cfg.producer.khi.dt = 0.1;
  cfg.producer.khi.particlesPerCell = 4;
  cfg.producer.warmupSteps = 5;
  cfg.producer.totalSteps = 30;
  cfg.producer.streamEvery = 2;
  cfg.producer.transform.cloudPoints = 128;
  cfg.producer.frequencyCount = 32;
  cfg.trainer.ranks = 2;
  cfg.model = ArtificialScientistModel::Config::reduced();
  cfg.nRep = 4;
  return cfg;
}

PipelineResult runPipeline(const PipelineConfig& cfg,
                           InTransitTrainer& trainer) {
  ARTSCI_EXPECTS_MSG(
      static_cast<long>(cfg.producer.frequencyCount) ==
          cfg.model.spectrumDim,
      "producer frequencyCount must equal the model's spectrumDim");

  Timer wall;
  auto particleEngine = std::make_shared<stream::SstEngine>(stream::SstParams{
      1, 1, cfg.queueLimit, cfg.streamStepTimeoutMicros});
  auto radiationEngine = std::make_shared<stream::SstEngine>(stream::SstParams{
      1, 1, cfg.queueLimit, cfg.streamStepTimeoutMicros});

  // The two channels fail as one: a producer that died on the particle
  // channel must also wake a consumer blocked on the radiation channel
  // (and vice versa), or the degraded shutdown deadlocks on the partner
  // stream.
  const auto failBoth = [&](const std::string& reason) {
    particleEngine->abort(reason);
    radiationEngine->abort(reason);
  };

  KhiStreamProducer producer(cfg.producer, particleEngine, radiationEngine);
  std::string producerFault;
  std::mutex producerFaultMutex;
  std::thread producerThread([&] {
    try {
      producer.run();
    } catch (const std::exception& e) {
      {
        std::lock_guard<std::mutex> lock(producerFaultMutex);
        producerFault = e.what();
      }
      failBoth(std::string("producer failed: ") + e.what());
    }
  });

  openpmd::Series particleRead(
      "particles", openpmd::Access::kRead,
      openpmd::StreamBackend::forReader(particleEngine, 0));
  openpmd::Series radiationRead(
      "radiation", openpmd::Access::kRead,
      openpmd::StreamBackend::forReader(radiationEngine, 0));

  PipelineResult result;
  std::unique_ptr<CheckpointManager> checkpoints;
  if (!cfg.checkpointDir.empty() && cfg.checkpointEvery > 0)
    checkpoints = std::make_unique<CheckpointManager>(cfg.checkpointDir,
                                                      cfg.checkpointKeep);
  // Periodic one-line step report over the global registry (particles/s,
  // trainer ms/step, replay occupancy, ...) at info level, one line per
  // `stepReportEvery` streamed steps.
  obs::StepReporter reporter(obs::Registry::global(), cfg.stepReportEvery);
  try {
    for (;;) {
      auto itP = particleRead.readNextIteration();
      auto itR = radiationRead.readNextIteration();
      if (!itP || !itR) break;
      ARTSCI_CHECK_MSG(itP->index == itR->index,
                       "particle / radiation streams out of sync");
      for (int r = 0; r < 3; ++r) {
        const auto pIt = itP->data.find(cloudPath(r));
        const auto sIt = itR->data.find(spectrumPath(r));
        if (pIt == itP->data.end() || sIt == itR->data.end()) continue;
        Sample sample;
        sample.cloud = pIt->second;
        sample.spectrum = sIt->second;
        sample.region = r;
        sample.step = itP->index;
        trainer.buffer().push(std::move(sample));
        ++result.samplesReceived;
      }
      ++result.iterationsStreamed;
      // n_rep training iterations per streamed step (the training-buffer
      // decoupling of §IV-C).
      trainer.trainIterations(cfg.nRep);
      if (checkpoints &&
          result.iterationsStreamed % cfg.checkpointEvery == 0) {
        try {
          checkpoints->save(trainer,
                            {result.iterationsStreamed,
                             trainer.stats().iterations});
          ++result.checkpointsWritten;
        } catch (const std::exception& e) {
          // A failed (possibly torn) checkpoint write never takes the
          // pipeline down — the previous intact rotation still covers us.
          log::warn("ckpt", std::string("checkpoint failed: ") + e.what());
          result.faultNote = std::string("checkpoint failed: ") + e.what();
        }
      }
      if (cfg.stepReportEvery > 0) {
        if (const auto line = reporter.onStep()) log::info("obs", *line);
      }
    }
  } catch (const stream::StreamError& e) {
    // Peer failure / step deadline: degrade. Fail both channels so the
    // producer (possibly blocked on the partner stream) unwinds too.
    result.degraded = true;
    result.faultNote = e.what();
    failBoth(std::string("consumer stopped: ") + e.what());
  } catch (const fault::FaultInjectedError& e) {
    result.degraded = true;
    result.faultNote = e.what();
    failBoth(std::string("consumer stopped: ") + e.what());
  }
  producerThread.join();
  {
    std::lock_guard<std::mutex> lock(producerFaultMutex);
    if (!producerFault.empty()) {
      result.degraded = true;
      if (result.faultNote.empty())
        result.faultNote = "producer failed: " + producerFault;
    }
  }

  result.train = trainer.stats();
  result.bytesStreamed =
      particleEngine->bytesPublished() + radiationEngine->bytesPublished();
  result.producerStallSeconds = particleEngine->writerStallSeconds() +
                                radiationEngine->writerStallSeconds();
  result.wallSeconds = wall.seconds();
  return result;
}

PipelineRun runPipeline(const PipelineConfig& cfg) {
  PipelineRun run;
  run.trainer = std::make_unique<InTransitTrainer>(cfg.model, cfg.trainer);
  run.result = runPipeline(cfg, *run.trainer);
  return run;
}

}  // namespace artsci::core

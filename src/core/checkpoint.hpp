/// \file checkpoint.hpp
/// Crash-consistent pipeline checkpointing. A PipelineCheckpoint captures
/// everything the in-transit trainer needs to resume *bit-identically*
/// after a crash: model parameters, Adam moments, every rank's RNG
/// (Box-Muller cache included), the replay buffer's full contents and
/// eviction RNG, and the step counters.
///
/// Atomicity protocol (torn writes can never corrupt the latest
/// checkpoint):
///   1. serialize to memory;
///   2. write to `<path>.tmp`, append a CRC-32 footer over every
///      preceding byte, fsync;
///   3. rename(2) onto the final path (atomic on POSIX), fsync the
///      directory.
/// A crash before the rename leaves at worst a stale `.tmp`; a crash
/// after it leaves a complete, CRC-verified file. Readers validate magic,
/// version, CRC and every internal length *before* touching the trainer —
/// a corrupt file yields a typed CheckpointError and an untouched
/// trainer, never a partial restore.
///
/// CheckpointManager keeps the last `keep` checkpoints and falls back to
/// the newest *intact* one on load, so a torn write (simulated via
/// FAULT_POINT("ckpt.write")) costs at most one checkpoint interval of
/// progress.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/trainer.hpp"

namespace artsci::core {

/// A checkpoint file failed to open, parse or validate (truncated, bit
/// flips, CRC mismatch, wrong magic/version, or a layout that does not
/// match the restoring trainer).
class CheckpointError : public RuntimeError {
 public:
  using RuntimeError::RuntimeError;
};

/// Pipeline position stored next to the trainer state.
struct CheckpointMeta {
  long streamedSteps = 0;      ///< simulation steps consumed from the stream
  long trainerIterations = 0;  ///< training iterations completed
};

/// Serialize trainer + pipeline position; returns the exact bytes a
/// checkpoint file holds (including the CRC footer). Exposed for the
/// corruption tests, which mutate these bytes.
std::vector<std::uint8_t> serializePipelineCheckpoint(
    const InTransitTrainer& trainer, const CheckpointMeta& meta);

/// Atomic checkpoint write (tmp + CRC footer + fsync + rename). Honours
/// FAULT_POINT("ckpt.save") and the torn-write site "ckpt.write"; a torn
/// write throws fault::FaultInjectedError and leaves the final path
/// untouched.
void savePipelineCheckpoint(const std::string& path,
                            const InTransitTrainer& trainer,
                            const CheckpointMeta& meta);

/// Read + fully validate + apply. Throws CheckpointError on any defect;
/// the trainer is modified only after the entire file validated.
CheckpointMeta loadPipelineCheckpoint(const std::string& path,
                                      InTransitTrainer& trainer);

/// Rotating checkpoint directory: `ckpt-<streamedSteps>.artsci` files,
/// newest `keep` retained, newest intact loaded.
class CheckpointManager {
 public:
  explicit CheckpointManager(std::string dir, std::size_t keep = 2);

  /// Checkpoint and prune; returns the file written.
  std::string save(const InTransitTrainer& trainer,
                   const CheckpointMeta& meta);
  /// Restore from the newest checkpoint that validates, skipping corrupt
  /// ones (each skip bumps the `ckpt.load_fallbacks` counter). Empty
  /// optional when no intact checkpoint exists.
  std::optional<CheckpointMeta> loadLatest(InTransitTrainer& trainer);

  /// Checkpoint paths, newest first.
  std::vector<std::string> list() const;
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::size_t keep_;
};

}  // namespace artsci::core

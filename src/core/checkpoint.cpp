#include "core/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/crc32.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"

namespace artsci::core {
namespace {

namespace fs = std::filesystem;

// File layout v1 ("ARTSCKP1" | u32 version | payload | u32 crc | u32
// footer magic). All integers little-endian via memcpy on the host —
// checkpoints are node-local crash-recovery state, not an interchange
// format.
constexpr char kMagic[8] = {'A', 'R', 'T', 'S', 'C', 'K', 'P', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kFooterMagic = 0xC4C32FEDu;
constexpr char kFilePrefix[] = "ckpt-";
constexpr char kFileSuffix[] = ".artsci";

// --- serialization ----------------------------------------------------------

void putBytes(std::vector<std::uint8_t>& out, const void* p, std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  out.insert(out.end(), b, b + n);
}

void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  putBytes(out, &v, sizeof v);
}

void putU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  putBytes(out, &v, sizeof v);
}

void putI64(std::vector<std::uint8_t>& out, long v) {
  putU64(out, static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
}

void putF64(std::vector<std::uint8_t>& out, double v) {
  putBytes(out, &v, sizeof v);
}

void putDoubles(std::vector<std::uint8_t>& out,
                const std::vector<double>& v) {
  putU64(out, v.size());
  putBytes(out, v.data(), v.size() * sizeof(double));
}

void putRngState(std::vector<std::uint8_t>& out, const Rng::State& st) {
  for (std::uint64_t word : st.s) putU64(out, word);
  putF64(out, st.cached);
  out.push_back(st.hasCached ? 1 : 0);
}

void putSample(std::vector<std::uint8_t>& out, const Sample& s) {
  putDoubles(out, s.cloud);
  putDoubles(out, s.spectrum);
  putI64(out, s.region);
  putI64(out, s.step);
}

// --- bounds-checked parsing -------------------------------------------------

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  void raw(void* dst, std::size_t n) {
    if (n > size_ - off_)
      throw CheckpointError("checkpoint truncated: need " +
                            std::to_string(n) + " bytes at offset " +
                            std::to_string(off_) + ", have " +
                            std::to_string(size_ - off_));
    std::memcpy(dst, data_ + off_, n);
    off_ += n;
  }

  std::uint32_t u32() {
    std::uint32_t v;
    raw(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    raw(&v, sizeof v);
    return v;
  }
  long i64() { return static_cast<long>(static_cast<std::int64_t>(u64())); }
  double f64() {
    double v;
    raw(&v, sizeof v);
    return v;
  }
  std::uint8_t u8() {
    std::uint8_t v;
    raw(&v, sizeof v);
    return v;
  }

  /// Length-prefixed double vector; the length is validated against the
  /// remaining bytes before allocating, so a bit flip in a length field
  /// cannot trigger a huge allocation.
  std::vector<double> doubles() {
    const std::uint64_t n = u64();
    if (n > (size_ - off_) / sizeof(double))
      throw CheckpointError("checkpoint corrupt: vector length " +
                            std::to_string(n) + " exceeds remaining bytes");
    std::vector<double> v(static_cast<std::size_t>(n));
    raw(v.data(), v.size() * sizeof(double));
    return v;
  }

  Rng::State rngState() {
    Rng::State st;
    for (auto& word : st.s) word = u64();
    st.cached = f64();
    const std::uint8_t flag = u8();
    if (flag > 1)
      throw CheckpointError("checkpoint corrupt: RNG cache flag " +
                            std::to_string(flag));
    st.hasCached = flag == 1;
    return st;
  }

  Sample sample() {
    Sample s;
    s.cloud = doubles();
    s.spectrum = doubles();
    s.region = static_cast<int>(i64());
    s.step = i64();
    return s;
  }

  std::size_t remaining() const { return size_ - off_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t off_ = 0;
};

// --- file I/O ---------------------------------------------------------------

/// write + CRC footer + fsync + rename. The torn-write fault site
/// truncates the payload mid-file and throws, leaving the tmp artifact
/// behind exactly like a crash would.
void atomicWriteFile(const std::string& path,
                     const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0)
    throw CheckpointError("cannot create '" + tmp +
                          "': " + std::strerror(errno));

  std::size_t want = bytes.size();
#if ARTSCI_FAULTS
  if (fault::Plan::global().armed())
    want = fault::Plan::global().tornBytes("ckpt.write", bytes.size());
#endif
  std::size_t done = 0;
  while (done < want) {
    const ::ssize_t w = ::write(fd, bytes.data() + done, want - done);
    if (w <= 0) {
      ::close(fd);
      throw CheckpointError("write to '" + tmp +
                            "' failed: " + std::strerror(errno));
    }
    done += static_cast<std::size_t>(w);
  }
  if (want < bytes.size()) {
    ::close(fd);
    throw fault::FaultInjectedError(
        "torn checkpoint write: " + std::to_string(want) + " of " +
        std::to_string(bytes.size()) + " bytes reached '" + tmp + "'");
  }
  ::fsync(fd);
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw CheckpointError("rename '" + tmp + "' -> '" + path +
                          "' failed: " + std::strerror(errno));
  // Persist the rename itself.
  const fs::path dir = fs::path(path).parent_path();
  const int dfd =
      ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

std::vector<std::uint8_t> readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw CheckpointError("cannot open checkpoint '" + path + "'");
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  if (!in.good() && !in.eof())
    throw CheckpointError("read of checkpoint '" + path + "' failed");
  return bytes;
}

/// Steps encoded into a checkpoint file name, or empty for other files.
std::optional<long> stepsFromName(const std::string& name) {
  const std::size_t prefix = sizeof(kFilePrefix) - 1;
  const std::size_t suffix = sizeof(kFileSuffix) - 1;
  if (name.size() <= prefix + suffix) return std::nullopt;
  if (name.compare(0, prefix, kFilePrefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix, suffix, kFileSuffix) != 0)
    return std::nullopt;
  const std::string digits = name.substr(prefix, name.size() - prefix - suffix);
  if (digits.empty()) return std::nullopt;
  long steps = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    steps = steps * 10 + (c - '0');
  }
  return steps;
}

}  // namespace

std::vector<std::uint8_t> serializePipelineCheckpoint(
    const InTransitTrainer& trainer, const CheckpointMeta& meta) {
  static_assert(sizeof(ml::Real) == sizeof(double),
                "checkpoint format stores parameters as doubles");
  const TrainerCheckpointState s = trainer.captureCheckpointState();

  std::vector<std::uint8_t> out;
  putBytes(out, kMagic, sizeof kMagic);
  putU32(out, kVersion);
  putI64(out, meta.streamedSteps);
  putI64(out, meta.trainerIterations);

  putU64(out, s.rankRngs.size());  // trainer ranks
  putU64(out, s.params.size());
  for (const auto& tensor : s.params) putDoubles(out, tensor);
  putDoubles(out, s.adamPacked);
  putI64(out, s.adamStep);
  for (const auto& st : s.rankRngs) putRngState(out, st);

  putU64(out, s.buffer.now.size());
  for (const auto& sample : s.buffer.now) putSample(out, sample);
  putU64(out, s.buffer.ep.size());
  for (const auto& sample : s.buffer.ep) putSample(out, sample);
  putRngState(out, s.buffer.rng);
  putU64(out, s.buffer.received);
  putU64(out, s.buffer.batchesSampled);
  putI64(out, s.iterations);

  putU32(out, crc32(out.data(), out.size()));
  putU32(out, kFooterMagic);
  return out;
}

void savePipelineCheckpoint(const std::string& path,
                            const InTransitTrainer& trainer,
                            const CheckpointMeta& meta) {
  FAULT_POINT("ckpt.save");
  atomicWriteFile(path, serializePipelineCheckpoint(trainer, meta));
  obs::Registry::global().counter("ckpt.saved").add();
}

CheckpointMeta loadPipelineCheckpoint(const std::string& path,
                                      InTransitTrainer& trainer) {
  const std::vector<std::uint8_t> bytes = readFile(path);
  constexpr std::size_t kFooterBytes = 2 * sizeof(std::uint32_t);
  if (bytes.size() < sizeof kMagic + sizeof(std::uint32_t) + kFooterBytes)
    throw CheckpointError("checkpoint '" + path + "' too short (" +
                          std::to_string(bytes.size()) + " bytes)");

  // Footer first: a CRC match makes every later parse error a logic bug
  // rather than corruption, and a mismatch rejects the file in O(n)
  // without interpreting any of it.
  const std::size_t body = bytes.size() - kFooterBytes;
  std::uint32_t storedCrc, storedFooter;
  std::memcpy(&storedCrc, bytes.data() + body, sizeof storedCrc);
  std::memcpy(&storedFooter, bytes.data() + body + sizeof storedCrc,
              sizeof storedFooter);
  if (storedFooter != kFooterMagic)
    throw CheckpointError("checkpoint '" + path +
                          "' has no valid footer (torn write?)");
  if (crc32(bytes.data(), body) != storedCrc)
    throw CheckpointError("checkpoint '" + path + "' fails CRC-32 check");

  ByteReader r(bytes.data(), body);
  char magic[sizeof kMagic];
  r.raw(magic, sizeof magic);
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    throw CheckpointError("'" + path + "' is not an artsci checkpoint");
  const std::uint32_t version = r.u32();
  if (version != kVersion)
    throw CheckpointError("checkpoint '" + path + "' has version " +
                          std::to_string(version) + ", reader supports " +
                          std::to_string(kVersion));

  CheckpointMeta meta;
  meta.streamedSteps = r.i64();
  meta.trainerIterations = r.i64();

  // Parse the complete state into staging storage, validating every
  // length against both the file and the restoring trainer, BEFORE
  // touching the trainer: a defect anywhere leaves it untouched.
  TrainerCheckpointState s;
  const std::uint64_t ranks = r.u64();
  if (ranks != trainer.config().ranks)
    throw CheckpointError("checkpoint '" + path + "' was written with " +
                          std::to_string(ranks) + " ranks, trainer has " +
                          std::to_string(trainer.config().ranks));
  const std::uint64_t tensorCount = r.u64();
  const auto tensors = trainer.model(0).parameters();
  if (tensorCount != tensors.size())
    throw CheckpointError("checkpoint '" + path + "' holds " +
                          std::to_string(tensorCount) +
                          " parameter tensors, model has " +
                          std::to_string(tensors.size()));
  std::size_t paramTotal = 0;
  for (std::size_t i = 0; i < tensorCount; ++i) {
    s.params.push_back(r.doubles());
    if (s.params.back().size() != tensors[i].data().size())
      throw CheckpointError(
          "checkpoint '" + path + "' tensor " + std::to_string(i) + " has " +
          std::to_string(s.params.back().size()) + " values, model tensor has " +
          std::to_string(tensors[i].data().size()));
    paramTotal += s.params.back().size();
  }
  s.adamPacked = r.doubles();
  if (s.adamPacked.size() != 2 * paramTotal)
    throw CheckpointError("checkpoint '" + path + "' Adam state has " +
                          std::to_string(s.adamPacked.size()) +
                          " values, expected " +
                          std::to_string(2 * paramTotal));
  s.adamStep = r.i64();
  if (s.adamStep < 0)
    throw CheckpointError("checkpoint '" + path +
                          "' has negative Adam step count");
  for (std::uint64_t rk = 0; rk < ranks; ++rk)
    s.rankRngs.push_back(r.rngState());

  const std::uint64_t nowCount = r.u64();
  const auto& bufCfg = trainer.config().buffer;
  if (nowCount > bufCfg.nowCapacity)
    throw CheckpointError("checkpoint '" + path + "' now-buffer holds " +
                          std::to_string(nowCount) + " samples, capacity is " +
                          std::to_string(bufCfg.nowCapacity));
  for (std::uint64_t i = 0; i < nowCount; ++i)
    s.buffer.now.push_back(r.sample());
  const std::uint64_t epCount = r.u64();
  if (epCount > bufCfg.epCapacity)
    throw CheckpointError("checkpoint '" + path + "' EP-buffer holds " +
                          std::to_string(epCount) + " samples, capacity is " +
                          std::to_string(bufCfg.epCapacity));
  for (std::uint64_t i = 0; i < epCount; ++i)
    s.buffer.ep.push_back(r.sample());
  s.buffer.rng = r.rngState();
  s.buffer.received = static_cast<std::size_t>(r.u64());
  s.buffer.batchesSampled = static_cast<std::size_t>(r.u64());
  s.iterations = r.i64();
  if (r.remaining() != 0)
    throw CheckpointError("checkpoint '" + path + "' has " +
                          std::to_string(r.remaining()) +
                          " trailing bytes after the state");

  trainer.restoreCheckpointState(s);
  obs::Registry::global().counter("ckpt.loaded").add();
  return meta;
}

// --- CheckpointManager ------------------------------------------------------

CheckpointManager::CheckpointManager(std::string dir, std::size_t keep)
    : dir_(std::move(dir)), keep_(keep) {
  ARTSCI_EXPECTS(keep_ >= 1);
  fs::create_directories(dir_);
}

std::vector<std::string> CheckpointManager::list() const {
  std::vector<std::pair<long, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const auto steps = stepsFromName(entry.path().filename().string());
    if (steps) found.emplace_back(*steps, entry.path().string());
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> paths;
  for (auto& [steps, path] : found) paths.push_back(std::move(path));
  return paths;
}

std::string CheckpointManager::save(const InTransitTrainer& trainer,
                                    const CheckpointMeta& meta) {
  const std::string path = dir_ + "/" + kFilePrefix +
                           std::to_string(meta.streamedSteps) + kFileSuffix;
  savePipelineCheckpoint(path, trainer, meta);
  const auto paths = list();
  for (std::size_t i = keep_; i < paths.size(); ++i) {
    std::error_code ec;
    fs::remove(paths[i], ec);  // best effort; stale files are harmless
  }
  return path;
}

std::optional<CheckpointMeta> CheckpointManager::loadLatest(
    InTransitTrainer& trainer) {
  for (const auto& path : list()) {
    try {
      return loadPipelineCheckpoint(path, trainer);
    } catch (const CheckpointError&) {
      // Torn or corrupt — fall back to the next-newest intact file.
      obs::Registry::global().counter("ckpt.load_fallbacks").add();
    }
  }
  return std::nullopt;
}

}  // namespace artsci::core

/// \file trainer.hpp
/// Data-parallel in-transit trainer: the stand-in for PyTorch DDP driving
/// the paper's MLapp. R rank threads hold model replicas; every iteration
/// each rank draws a batch from the shared experience-replay buffer,
/// computes Eq.(1), averages gradients with an all-reduce, and steps Adam
/// with the paper's optimizer settings (separate l_VAE / l_INN, sqrt
/// learning-rate scaling with total batch).
#pragma once

#include <memory>

#include "core/model.hpp"
#include "core/sample.hpp"
#include "ml/arena.hpp"
#include "ml/ddp.hpp"
#include "ml/optim.hpp"
#include "replay/training_buffer.hpp"

namespace artsci::core {

struct TrainerConfig {
  std::size_t ranks = 2;         ///< data-parallel replicas ("GCDs")
  double baseLearningRate = 3e-4;  ///< reduced model; paper uses 1e-6 at scale
  double vaeLearningRateFactor = 3.0;  ///< m_VAE (paper §V-A.1)
  long baseBatch = 8;            ///< batch the base LR was tuned at
  bool sqrtLrScaling = true;     ///< the square-root rule [60]
  ml::AdamConfig adam;           ///< paper defaults (beta1=.8, beta2=.9...)
  replay::TrainingBufferConfig buffer;
  std::uint64_t seed = 777;
};

/// Everything the trainer needs to resume *bit-identically* after a
/// crash: rank-0 model parameters and Adam moments (replicas are
/// identical across ranks by construction, so one copy restores all),
/// every rank's RNG — including the Box-Muller cache — and the full
/// replay-buffer snapshot. Serialized by core/checkpoint.hpp.
struct TrainerCheckpointState {
  std::vector<std::vector<ml::Real>> params;  ///< per-tensor, model order
  std::vector<ml::Real> adamPacked;           ///< ml::Adam::packedState()
  long adamStep = 0;
  std::vector<Rng::State> rankRngs;
  replay::TrainingBuffer<Sample>::Snapshot buffer;
  long iterations = 0;
};

struct TrainStats {
  std::vector<double> lossHistory;      ///< rank-0 total loss per iteration
  std::vector<double> chamferHistory;   ///< VAE reconstruction term
  std::vector<double> mseHistory;       ///< INN spectrum term
  std::vector<double> mmdLatentHistory; ///< INN backward term
  long iterations = 0;
  double trainSeconds = 0;
  double commSeconds = 0;  ///< rank-0 time inside collectives
};

class InTransitTrainer {
 public:
  InTransitTrainer(ArtificialScientistModel::Config modelCfg,
                   TrainerConfig cfg);

  /// The shared receive buffer (the streaming consumer pushes into it).
  replay::TrainingBuffer<Sample>& buffer() { return buffer_; }

  /// Run `iterations` synchronized data-parallel iterations (each rank
  /// one batch per iteration). No-op when the buffer is not ready.
  void trainIterations(long iterations);

  /// Trained replica (all replicas stay synchronized by construction).
  const ArtificialScientistModel& model(std::size_t rank = 0) const;

  /// Immutable deep copy of the rank-0 replica for a serving registry
  /// (serve::ModelRegistry::publish). Call between trainIterations()
  /// calls — not concurrently with an in-flight training step, which
  /// mutates the parameters being copied.
  std::shared_ptr<const ArtificialScientistModel> exportSnapshot() const;

  const TrainStats& stats() const { return stats_; }
  const TrainerConfig& config() const { return cfg_; }
  /// Effective learning rates after scaling (VAE group, INN group).
  std::pair<ml::Real, ml::Real> learningRates() const;

  /// Rank-0 step-arena statistics (allocation-plan replay counters); the
  /// bench gate asserts zero steady-state heap allocations through these.
  ml::Arena::Stats arenaStats(std::size_t rank = 0) const;

  /// Capture resume state. Call between trainIterations() calls (like
  /// exportSnapshot, not concurrently with an in-flight step).
  TrainerCheckpointState captureCheckpointState() const;
  /// Apply captured state to every rank. The trainer must be constructed
  /// with the same model config and rank count the state came from
  /// (ContractError otherwise); afterwards training evolves bit-identically
  /// to the run that produced the state.
  void restoreCheckpointState(const TrainerCheckpointState& state);

 private:
  TrainerConfig cfg_;
  ArtificialScientistModel::Config modelCfg_;
  replay::TrainingBuffer<Sample> buffer_;
  std::vector<std::unique_ptr<ArtificialScientistModel>> replicas_;
  std::vector<std::unique_ptr<ml::Adam>> optimizers_;
  std::vector<Rng> rankRngs_;
  /// One step arena per rank: every iteration's forward/backward graph is
  /// bump-allocated here and recycled wholesale at the next beginStep().
  std::vector<std::unique_ptr<ml::Arena>> arenas_;
  ml::Communicator comm_;
  TrainStats stats_;
};

}  // namespace artsci::core

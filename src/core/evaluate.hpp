/// \file evaluate.hpp
/// Fig 9 evaluation: invert region spectra back to momentum distributions
/// and compare against the PIC ground truth; quantify how well the latent
/// space separates the physical regions (the paper's "simple, almost
/// linear classifier" argument).
#pragma once

#include "common/histogram.hpp"
#include "core/model.hpp"
#include "core/transforms.hpp"
#include "pic/simulation.hpp"
#include "radiation/plugin.hpp"

namespace artsci::core {

struct RegionEvaluation {
  pic::KhiRegion region;
  std::vector<double> spectrumTruth;  ///< normalized, from the detector
  std::vector<double> spectrumPred;   ///< INN forward from the GT cloud
  Histogram1D momentumTruth;          ///< u_x ground truth (Fig 9b)
  Histogram1D momentumPred;           ///< u_x from inverted clouds (Fig 9c)
  double meanTruth = 0, meanPred = 0;
};

struct EvaluationConfig {
  int inversionDraws = 16;  ///< posterior samples per spectrum
  double momentumLo = -0.35, momentumHi = 0.35;
  std::size_t bins = 40;
};

/// Evaluate a trained model against fresh samples: per region, GT cloud +
/// GT spectrum pairs (as produced by the transforms). The histograms pool
/// all draws, mirroring Fig 9's charge-density panels.
std::vector<RegionEvaluation> evaluateInversion(
    const ArtificialScientistModel& model, const TransformConfig& transform,
    const std::vector<Sample>& groundTruth, const EvaluationConfig& cfg,
    Rng& rng);

/// Nearest-centroid region classification in the latent space: fraction
/// of held-out samples assigned to their true region. Random chance for
/// three regions is 1/3.
double latentRegionClassificationAccuracy(
    const ArtificialScientistModel& model, const std::vector<Sample>& train,
    const std::vector<Sample>& test);

}  // namespace artsci::core

#include "core/model.hpp"

#include "ml/serialize.hpp"

namespace artsci::core {

using ml::Tensor;

ArtificialScientistModel::Config ArtificialScientistModel::Config::paper() {
  Config cfg;
  // Encoder: 1x1 convs 6->16->32->64->128->256->608, heads 608->544->544.
  cfg.encoder.channels = {6, 16, 32, 64, 128, 256, 608};
  cfg.encoder.headHidden = 544;
  cfg.encoder.latentDim = 544;
  // Decoder: FC -> (4,4,4,16), deconv 16->8->6 (kernel=stride=2^3).
  cfg.decoder.latentDim = 544;
  cfg.decoder.baseGrid = 4;
  cfg.decoder.channels = {16, 8, 6};
  // INN: 4 Glow blocks, subnets ->272->256->544.
  cfg.inn.dim = 544;
  cfg.inn.blocks = 4;
  cfg.inn.hidden = {272, 256};
  cfg.spectrumDim = 128;
  return cfg;
}

ArtificialScientistModel::Config ArtificialScientistModel::Config::reduced() {
  Config cfg;
  cfg.encoder.channels = {6, 16, 32, 64};
  cfg.encoder.headHidden = 64;
  cfg.encoder.latentDim = 64;
  cfg.decoder.latentDim = 64;
  cfg.decoder.baseGrid = 2;
  cfg.decoder.channels = {8, 6};  // 2^3 -> 4^3 = 64 output points
  cfg.inn.dim = 64;
  cfg.inn.blocks = 4;
  cfg.inn.hidden = {48, 48};
  cfg.spectrumDim = 32;
  return cfg;
}

ArtificialScientistModel::ArtificialScientistModel(Config cfg, Rng& rng)
    : cfg_(std::move(cfg)) {
  ARTSCI_EXPECTS_MSG(cfg_.encoder.latentDim == cfg_.inn.dim,
                     "INN width must equal the VAE latent dimension");
  ARTSCI_EXPECTS_MSG(cfg_.decoder.latentDim == cfg_.encoder.latentDim,
                     "decoder latent must equal encoder latent");
  ARTSCI_EXPECTS_MSG(cfg_.spectrumDim < cfg_.inn.dim,
                     "spectrum must fit inside the INN output");
  encoder_ = std::make_unique<ml::PointNetEncoder>(cfg_.encoder, rng);
  decoder_ = std::make_unique<ml::VoxelDecoder>(cfg_.decoder, rng);
  inn_ = std::make_unique<ml::Inn>(cfg_.inn, rng);
}

ml::LossTerms ArtificialScientistModel::lossTerms(const Tensor& clouds,
                                                  const Tensor& spectra,
                                                  Rng& rng) const {
  ARTSCI_EXPECTS(clouds.ndim() == 3 && clouds.dim(2) == 6);
  ARTSCI_EXPECTS(spectra.ndim() == 2 &&
                 spectra.dim(1) == cfg_.spectrumDim);
  const long B = clouds.dim(0);
  ARTSCI_EXPECTS(spectra.dim(0) == B);
  const long latent = cfg_.encoder.latentDim;
  const long noiseDim = latent - cfg_.spectrumDim;

  ml::LossTerms terms;

  // --- VAE path --------------------------------------------------------
  const auto moments = encoder_->forward(clouds);
  Tensor z = encoder_->sample(moments, rng);
  Tensor reconstruction = decoder_->forward(z);
  terms.chamfer = cfg_.useEmdReconstruction
                      ? ml::emdSinkhorn(clouds, reconstruction)
                      : ml::chamferDistance(clouds, reconstruction);
  terms.kl = ml::klStandardNormal(moments.mu, moments.logvar);

  // --- INN forward: z -> [I' || N'] -------------------------------------
  Tensor y = inn_->forward(z);
  // Zero-copy column views into the INN output; the loss ops read them
  // through strides (or feed GEMM via lda) without materialising.
  Tensor iPred = ml::sliceFast(y, -1, 0, cfg_.spectrumDim);
  Tensor nPred = ml::sliceFast(y, -1, cfg_.spectrumDim, latent);
  terms.mse = ml::mseLoss(iPred, spectra);
  Tensor nTarget = Tensor::randn({B, noiseDim}, rng);
  terms.mmdPosterior = ml::mmdInverseMultiquadratic(nPred, nTarget);

  // --- INN backward: [I, N~] -> z' ---------------------------------------
  Tensor noise = Tensor::randn({B, noiseDim}, rng);
  Tensor zPrime = inn_->inverse(ml::cat({spectra, noise}, -1));
  terms.mmdLatent = ml::mmdInverseMultiquadratic(zPrime, z);

  return terms;
}

Tensor ArtificialScientistModel::loss(const Tensor& clouds,
                                      const Tensor& spectra,
                                      Rng& rng) const {
  return ml::totalLoss(lossTerms(clouds, spectra, rng), cfg_.weights);
}

Tensor ArtificialScientistModel::invertSpectra(const Tensor& spectra,
                                               Rng& rng) const {
  ARTSCI_EXPECTS(spectra.ndim() == 2 &&
                 spectra.dim(1) == cfg_.spectrumDim);
  const long B = spectra.dim(0);
  const long noiseDim = cfg_.encoder.latentDim - cfg_.spectrumDim;
  Tensor noise = Tensor::randn({B, noiseDim}, rng);
  Tensor z = inn_->inverse(ml::cat({spectra, noise}, -1));
  // The decoder tail is a zero-copy reshape view; public API results are
  // owned tensors (callers read .data()), so materialize here — the same
  // one memcpy the pre-view copying reshape always paid.
  return ml::contiguousCopy(decoder_->forward(z));
}

Tensor ArtificialScientistModel::predictSpectra(const Tensor& clouds) const {
  const auto moments = encoder_->forward(clouds);
  Tensor y = inn_->forward(moments.mu);
  return ml::slice(y, -1, 0, cfg_.spectrumDim);
}

Tensor ArtificialScientistModel::encodeMean(const Tensor& clouds) const {
  return encoder_->forward(clouds).mu;
}

std::vector<Tensor> ArtificialScientistModel::parameters() const {
  auto ps = vaeParameters();
  for (const auto& p : innParameters()) ps.push_back(p);
  return ps;
}

std::vector<Tensor> ArtificialScientistModel::vaeParameters() const {
  auto ps = encoder_->parameters();
  for (const auto& p : decoder_->parameters()) ps.push_back(p);
  return ps;
}

std::vector<Tensor> ArtificialScientistModel::innParameters() const {
  return inn_->parameters();
}

std::shared_ptr<const ArtificialScientistModel> cloneForInference(
    const ArtificialScientistModel& src) {
  // The init RNG only seeds weights that copyParameters overwrites; the
  // INN permutations come from the config (Inn::Config::permSeed), so the
  // clone reproduces `src` exactly.
  Rng initRng(1);
  auto copy = std::make_shared<ArtificialScientistModel>(src.config(), initRng);
  auto dst = copy->parameters();
  ml::copyParameters(src.parameters(), dst);
  for (auto& p : dst) p.setRequiresGrad(false);
  return copy;
}

}  // namespace artsci::core

#include "core/evaluate.hpp"

#include <cmath>
#include <map>

namespace artsci::core {

std::vector<RegionEvaluation> evaluateInversion(
    const ArtificialScientistModel& model, const TransformConfig& transform,
    const std::vector<Sample>& groundTruth, const EvaluationConfig& cfg,
    Rng& rng) {
  // Group samples by region.
  std::map<int, std::vector<const Sample*>> byRegion;
  for (const auto& s : groundTruth) byRegion[s.region].push_back(&s);

  std::vector<RegionEvaluation> out;
  for (const auto& [regionIdx, samples] : byRegion) {
    RegionEvaluation eval{
        static_cast<pic::KhiRegion>(regionIdx),
        {},
        {},
        Histogram1D(cfg.momentumLo, cfg.momentumHi, cfg.bins),
        Histogram1D(cfg.momentumLo, cfg.momentumHi, cfg.bins)};

    const long P = static_cast<long>(samples.front()->cloud.size()) / 6;
    const long S = static_cast<long>(samples.front()->spectrum.size());

    // Ground-truth histogram + mean spectrum over samples.
    std::vector<double> specAccum(static_cast<std::size_t>(S), 0.0);
    for (const Sample* s : samples) {
      for (long p = 0; p < P; ++p)
        eval.momentumTruth.fill(
            cloudMomentumX(s->cloud, static_cast<std::size_t>(p), transform));
      for (long f = 0; f < S; ++f)
        specAccum[static_cast<std::size_t>(f)] +=
            s->spectrum[static_cast<std::size_t>(f)];
    }
    for (double& v : specAccum) v /= static_cast<double>(samples.size());
    eval.spectrumTruth = specAccum;

    // Forward surrogate: predict the spectrum from the first GT cloud.
    {
      ml::Tensor clouds = batchClouds({*samples.front()}, P);
      ml::Tensor pred = model.predictSpectra(clouds);
      eval.spectrumPred.assign(pred.data().begin(), pred.data().end());
    }

    // Inversion: repeated posterior draws from each sample's spectrum.
    for (const Sample* s : samples) {
      for (int draw = 0; draw < cfg.inversionDraws; ++draw) {
        ml::Tensor spectra = batchSpectra({*s}, S);
        ml::Tensor clouds = model.invertSpectra(spectra, rng);
        const long outPoints = clouds.dim(1);
        for (long p = 0; p < outPoints; ++p) {
          const double ux =
              clouds.data()[static_cast<std::size_t>(p * 6 + 3)] *
              transform.momentumScale;
          eval.momentumPred.fill(ux);
        }
      }
    }
    eval.meanTruth = eval.momentumTruth.meanValue();
    eval.meanPred = eval.momentumPred.meanValue();
    out.push_back(std::move(eval));
  }
  return out;
}

double latentRegionClassificationAccuracy(
    const ArtificialScientistModel& model, const std::vector<Sample>& train,
    const std::vector<Sample>& test) {
  ARTSCI_EXPECTS(!train.empty() && !test.empty());
  const long P = static_cast<long>(train.front().cloud.size()) / 6;
  const long latent = model.config().encoder.latentDim;

  // Centroid per region from the training samples.
  std::map<int, std::vector<double>> centroids;
  std::map<int, long> counts;
  for (const auto& s : train) {
    ml::Tensor mu = model.encodeMean(batchClouds({s}, P));
    auto& c = centroids[s.region];
    c.resize(static_cast<std::size_t>(latent), 0.0);
    for (long i = 0; i < latent; ++i)
      c[static_cast<std::size_t>(i)] +=
          mu.data()[static_cast<std::size_t>(i)];
    counts[s.region]++;
  }
  for (auto& [region, c] : centroids)
    for (double& v : c) v /= static_cast<double>(counts[region]);

  long correct = 0;
  for (const auto& s : test) {
    ml::Tensor mu = model.encodeMean(batchClouds({s}, P));
    int best = -1;
    double bestDist = 1e300;
    for (const auto& [region, c] : centroids) {
      double d = 0;
      for (long i = 0; i < latent; ++i) {
        const double diff =
            mu.data()[static_cast<std::size_t>(i)] -
            c[static_cast<std::size_t>(i)];
        d += diff * diff;
      }
      if (d < bestDist) {
        bestDist = d;
        best = region;
      }
    }
    correct += (best == s.region);
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

}  // namespace artsci::core

/// \file pipeline.hpp
/// The complete Artificial Scientist orchestration (paper Fig 3 / §III-B):
/// a PIC producer streams particle + radiation data through two in-memory
/// openPMD/nanoSST channels into a consumer that feeds the experience-
/// replay buffer and drives n_rep data-parallel training iterations per
/// streamed step. Back-pressure from the bounded step queue stalls the
/// simulation when training lags — "some leeway to stall the running
/// simulation if need be".
#pragma once

#include <cstdint>
#include <string>

#include "core/producer.hpp"
#include "core/trainer.hpp"

namespace artsci::core {

struct PipelineConfig {
  ProducerConfig producer;
  TrainerConfig trainer;
  ArtificialScientistModel::Config model =
      ArtificialScientistModel::Config::reduced();
  long nRep = 4;               ///< training iterations per streamed step
  std::size_t queueLimit = 2;  ///< SST step queue (back-pressure depth)
  /// Log an obs::StepReporter line every N streamed steps (0 disables).
  long stepReportEvery = 10;

  /// Deadline for every blocking SST step call on both channels
  /// (stream::SstParams::stepTimeoutMicros; 0 = wait forever). With a
  /// deadline set, a dead or wedged peer degrades the run instead of
  /// hanging it.
  std::uint64_t streamStepTimeoutMicros = 0;
  /// Crash-consistent checkpointing (core/checkpoint.hpp): when
  /// `checkpointDir` is non-empty, the pipeline checkpoints the trainer
  /// every `checkpointEvery` streamed steps, keeping `checkpointKeep`
  /// rotations.
  std::string checkpointDir;
  long checkpointEvery = 0;
  std::size_t checkpointKeep = 2;

  /// Consistency-checked defaults for a quick run.
  static PipelineConfig quickDemo();
};

struct PipelineResult {
  TrainStats train;
  long iterationsStreamed = 0;
  std::size_t samplesReceived = 0;
  std::size_t bytesStreamed = 0;
  double wallSeconds = 0;
  double producerStallSeconds = 0;  ///< back-pressure on the simulation
  /// True when the run ended early on a stream/peer failure instead of
  /// end-of-stream; `faultNote` records what happened. Data streamed
  /// before the failure has been trained on, and the trainer remains
  /// usable — the caller decides between resume-from-checkpoint and
  /// accepting the shorter run.
  bool degraded = false;
  std::string faultNote;
  long checkpointsWritten = 0;
};

/// Run the full in-transit pipeline; returns metrics and leaves the
/// trained model accessible through the trainer.
PipelineResult runPipeline(const PipelineConfig& cfg,
                           InTransitTrainer& trainer);

/// Convenience: construct the trainer internally and return it.
struct PipelineRun {
  std::unique_ptr<InTransitTrainer> trainer;
  PipelineResult result;
};
PipelineRun runPipeline(const PipelineConfig& cfg);

}  // namespace artsci::core

/// \file pipeline.hpp
/// The complete Artificial Scientist orchestration (paper Fig 3 / §III-B):
/// a PIC producer streams particle + radiation data through two in-memory
/// openPMD/nanoSST channels into a consumer that feeds the experience-
/// replay buffer and drives n_rep data-parallel training iterations per
/// streamed step. Back-pressure from the bounded step queue stalls the
/// simulation when training lags — "some leeway to stall the running
/// simulation if need be".
#pragma once

#include "core/producer.hpp"
#include "core/trainer.hpp"

namespace artsci::core {

struct PipelineConfig {
  ProducerConfig producer;
  TrainerConfig trainer;
  ArtificialScientistModel::Config model =
      ArtificialScientistModel::Config::reduced();
  long nRep = 4;               ///< training iterations per streamed step
  std::size_t queueLimit = 2;  ///< SST step queue (back-pressure depth)
  /// Log an obs::StepReporter line every N streamed steps (0 disables).
  long stepReportEvery = 10;

  /// Consistency-checked defaults for a quick run.
  static PipelineConfig quickDemo();
};

struct PipelineResult {
  TrainStats train;
  long iterationsStreamed = 0;
  std::size_t samplesReceived = 0;
  std::size_t bytesStreamed = 0;
  double wallSeconds = 0;
  double producerStallSeconds = 0;  ///< back-pressure on the simulation
};

/// Run the full in-transit pipeline; returns metrics and leaves the
/// trained model accessible through the trainer.
PipelineResult runPipeline(const PipelineConfig& cfg,
                           InTransitTrainer& trainer);

/// Convenience: construct the trainer internally and return it.
struct PipelineRun {
  std::unique_ptr<InTransitTrainer> trainer;
  PipelineResult result;
};
PipelineRun runPipeline(const PipelineConfig& cfg);

}  // namespace artsci::core

/// \file transforms.hpp
/// "Prepare the collected data for an ML model by finding suitable
/// encodings for spectral and phase space data" (paper §III-A):
///  * sub-volume extraction — fixed-size particle point clouds per KHI
///    region, positions centered/scaled to [-1, 1], momenta scaled by a
///    reference momentum;
///  * spectra — log-compressed (the dynamic range spans decades, Fig 9a)
///    and normalized.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "core/sample.hpp"
#include "pic/particles.hpp"
#include "radiation/detector.hpp"

namespace artsci::core {

struct TransformConfig {
  long cloudPoints = 128;     ///< particles per sample point cloud
  double momentumScale = 0.25;  ///< u normalization (≈ stream u + spread)
  double spectrumRef = 1e-8;    ///< log compression reference intensity
  double spectrumScale = 12.0;  ///< divides log10(1 + I/ref)
  double vortexHalfWidthCells = 4.0;
};

/// Sample a fixed-size, normalized point cloud from the particles of one
/// KHI region. Returns empty vector if the region holds fewer than
/// `cloudPoints` particles.
std::vector<double> extractRegionCloud(const pic::ParticleBuffer& particles,
                                       long ny, pic::KhiRegion region,
                                       const TransformConfig& cfg, Rng& rng);

/// log10(1 + I/ref) / scale, element-wise.
std::vector<double> normalizeSpectrum(const std::vector<double>& intensity,
                                      const TransformConfig& cfg);

/// Invert normalizeSpectrum (for plotting predictions in physical units).
std::vector<double> denormalizeSpectrum(const std::vector<double>& norm,
                                        const TransformConfig& cfg);

/// Momentum (u = gamma beta) of normalized cloud entry `i`, x component —
/// inverse of the cloud normalization, for histogramming predictions.
double cloudMomentumX(const std::vector<double>& cloud, std::size_t point,
                      const TransformConfig& cfg);

}  // namespace artsci::core

/// \file sample.hpp
/// The training-sample type flowing from the PIC simulation to the MLapp:
/// one sub-volume's particle phase-space point cloud paired with "its"
/// radiation spectrum, plus batch-assembly helpers.
#pragma once

#include <vector>

#include "ml/tensor.hpp"
#include "pic/khi.hpp"

namespace artsci::core {

struct Sample {
  std::vector<double> cloud;     ///< flattened [points x 6] (x,y,z,ux,uy,uz)
  std::vector<double> spectrum;  ///< normalized intensity per frequency
  int region = 0;                ///< pic::KhiRegion as int
  long step = 0;                 ///< simulation step of origin
};

/// Stack per-sample clouds into a [B, P, 6] tensor.
ml::Tensor batchClouds(const std::vector<Sample>& batch, long points);

/// Stack spectra into a [B, S] tensor.
ml::Tensor batchSpectra(const std::vector<Sample>& batch, long specDim);

}  // namespace artsci::core

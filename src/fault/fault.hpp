/// \file fault.hpp
/// Deterministic fault injection for the in-transit pipeline and the
/// serving stack. A `fault::Plan` is a schedule of faults keyed by *site
/// string* and *trigger count*: "the 3rd time execution passes
/// `FAULT_POINT("sst.writer.end_step")`, throw a typed error / sleep /
/// die / tear the file write". Plans are plain data — built
/// programmatically, parsed from a spec string, or read from the
/// `ARTSCI_FAULT_PLAN` environment variable — so a chaos run is fully
/// reproducible from its seed and spec.
///
/// Cost model (the contract `bench_particle_pipeline --fault-overhead`
/// gates, mirroring TRACE_SCOPE):
///  * `ARTSCI_FAULTS=0` (CMake option OFF): FAULT_POINT compiles to
///    nothing — zero code, zero data;
///  * compiled in but disarmed (the default, and the only production
///    state): one relaxed atomic load and a predictable branch per site;
///  * armed (chaos tests only): a mutex + map lookup per site — sites sit
///    on step/batch boundaries, never in per-particle loops.
///
/// Spec grammar (`;`-separated rules):
///
///   <site>@<hit>[+<count>]:<action>
///   action := delay=<micros> | error | die | torn=<keepBytes>
///
/// e.g. `sst.writer.end_step@3:die;ckpt.write@2:torn=128` — the writer
/// group's 3rd end-step simulates peer death, and the 2nd checkpoint
/// write is torn after 128 bytes. `hit` is 1-based; `+<count>` fires the
/// rule on `count` consecutive hits (default 1).
///
/// Failure taxonomy: `delay` stalls the site (deadline/timeout tests),
/// `error` throws FaultInjectedError (generic runtime failure), `die`
/// throws PeerDeathError (components translate it into peer-failure
/// handling — e.g. SstEngine aborts the stream, a serve worker exits its
/// loop), `torn` short-writes a file through Plan::tornBytes (checkpoint
/// crash-consistency tests).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.hpp"

// Compile-time master switch. The CMake option ARTSCI_FAULTS=OFF passes
// -DARTSCI_FAULTS=0; default is compiled-in (runtime-disarmed).
#ifndef ARTSCI_FAULTS
#define ARTSCI_FAULTS 1
#endif

namespace artsci::fault {

/// An injected fault surfaced as an error (action `error` and `torn`).
class FaultInjectedError : public RuntimeError {
 public:
  using RuntimeError::RuntimeError;
};

/// Simulated peer death (action `die`). Components catch this to run
/// their peer-failure path: the SST engine fails the stream for the whole
/// group, a serve shard worker exits and leaves the shard unhealthy.
class PeerDeathError : public FaultInjectedError {
 public:
  using FaultInjectedError::FaultInjectedError;
};

enum class Action {
  kDelay,      ///< sleep `delayMicros` at the site
  kError,      ///< throw FaultInjectedError
  kPeerDeath,  ///< throw PeerDeathError
  kTornWrite,  ///< Plan::tornBytes returns `keepBytes` (short write)
};

/// One scheduled fault: fire at site `site` on hits [hit, hit+count).
struct Rule {
  std::string site;
  std::uint64_t hit = 1;    ///< 1-based trigger index at this site
  std::uint64_t count = 1;  ///< consecutive hits the rule fires on
  Action action = Action::kError;
  std::uint64_t delayMicros = 0;  ///< kDelay
  std::uint64_t keepBytes = 0;    ///< kTornWrite: payload prefix to keep
};

/// The process-wide fault schedule. Disarmed by default; arming installs
/// rules and flips the relaxed flag FAULT_POINT checks. All bookkeeping
/// (per-site hit counts, injection counts) only accumulates while armed,
/// so a production run pays exactly one atomic load per site.
class Plan {
 public:
  static Plan& global();

  /// Install `rules` and start counting site hits from zero.
  void arm(std::vector<Rule> rules);
  /// Remove all rules and stop counting. Hit/injection tallies survive
  /// until the next arm() so tests can read coverage after the run.
  void disarm();
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// The FAULT_POINT slow path: count the hit, then apply the first
  /// matching delay/error/die rule. Only called while armed.
  void onSite(const char* site);

  /// Torn-write query for file-writing sites: returns how many of `n`
  /// payload bytes to actually write. A return < n means the write is
  /// torn — the caller writes the prefix and throws FaultInjectedError
  /// instead of completing. Counts as a site hit while armed.
  std::size_t tornBytes(const char* site, std::size_t n);

  /// Per-site hit counts accumulated since the last arm().
  std::map<std::string, std::uint64_t> siteHits() const;
  /// Faults actually injected since the last arm().
  std::uint64_t injectedCount() const;

  /// Parse the spec grammar above; throws ContractError on bad syntax.
  static std::vector<Rule> parseSpec(const std::string& spec);
  /// Arm from `ARTSCI_FAULT_PLAN` when the variable is set and non-empty;
  /// returns true if a plan was armed.
  bool armFromEnv();

 private:
  Plan() = default;

  std::atomic<bool> armed_{false};
  mutable std::mutex mutex_;
  std::vector<Rule> rules_;
  std::map<std::string, std::uint64_t> hits_;
  std::uint64_t injected_ = 0;
};

/// RAII plan for tests: arms on construction, disarms on destruction, so
/// a throwing assertion can never leak an armed plan into the next test.
class ScopedPlan {
 public:
  explicit ScopedPlan(std::vector<Rule> rules) {
    Plan::global().arm(std::move(rules));
  }
  ~ScopedPlan() { Plan::global().disarm(); }
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;
};

}  // namespace artsci::fault

#if ARTSCI_FAULTS
/// Zero-cost-when-disarmed fault hook. Site strings are dotted paths
/// ("subsystem.component.event"); the table of live sites is in
/// docs/ARCHITECTURE.md § Fault tolerance.
#define FAULT_POINT(site)                                       \
  do {                                                          \
    if (::artsci::fault::Plan::global().armed())                \
      ::artsci::fault::Plan::global().onSite(site);             \
  } while (false)
#else
#define FAULT_POINT(site) ((void)0)
#endif

#include "fault/fault.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "obs/metrics.hpp"

namespace artsci::fault {

Plan& Plan::global() {
  static Plan instance;
  return instance;
}

void Plan::arm(std::vector<Rule> rules) {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_ = std::move(rules);
  hits_.clear();
  injected_ = 0;
  armed_.store(true, std::memory_order_relaxed);
}

void Plan::disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.store(false, std::memory_order_relaxed);
  rules_.clear();
}

namespace {

/// Record one injection in the tallies and the global registry. Counters
/// are name-resolved per injection — injections are rare by definition.
void recordInjection(std::uint64_t& injected, const char* site,
                     const char* action) {
  ++injected;
  obs::Registry::global().counter("fault.injected").add();
  obs::Registry::global()
      .counter(std::string("fault.site.") + site + "." + action)
      .add();
}

}  // namespace

void Plan::onSite(const char* site) {
  std::uint64_t sleepMicros = 0;
  const Rule* fire = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!armed_.load(std::memory_order_relaxed)) return;
    const std::uint64_t hit = ++hits_[site];
    for (const Rule& r : rules_) {
      if (r.site != site || r.action == Action::kTornWrite) continue;
      if (hit < r.hit || hit >= r.hit + r.count) continue;
      fire = &r;
      break;
    }
    if (!fire) return;
    switch (fire->action) {
      case Action::kDelay:
        sleepMicros = fire->delayMicros;
        recordInjection(injected_, site, "delay");
        break;
      case Action::kError:
        recordInjection(injected_, site, "error");
        break;
      case Action::kPeerDeath:
        recordInjection(injected_, site, "die");
        break;
      case Action::kTornWrite:
        break;  // unreachable (filtered above)
    }
    // Throwing unwinds through the lock_guard; delays sleep unlocked so
    // a stalled site never blocks the other threads' bookkeeping.
    if (fire->action == Action::kError)
      throw FaultInjectedError(std::string("injected fault at ") + site);
    if (fire->action == Action::kPeerDeath)
      throw PeerDeathError(std::string("injected peer death at ") + site);
  }
  if (sleepMicros > 0)
    std::this_thread::sleep_for(std::chrono::microseconds(sleepMicros));
}

std::size_t Plan::tornBytes(const char* site, std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!armed_.load(std::memory_order_relaxed)) return n;
  const std::uint64_t hit = ++hits_[site];
  for (const Rule& r : rules_) {
    if (r.site != site || r.action != Action::kTornWrite) continue;
    if (hit < r.hit || hit >= r.hit + r.count) continue;
    recordInjection(injected_, site, "torn");
    return static_cast<std::size_t>(
        std::min<std::uint64_t>(r.keepBytes, n));
  }
  return n;
}

std::map<std::string, std::uint64_t> Plan::siteHits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t Plan::injectedCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_;
}

namespace {

std::uint64_t parseUint(const std::string& text, const std::string& what) {
  ARTSCI_CHECK_MSG(!text.empty() &&
                       text.find_first_not_of("0123456789") ==
                           std::string::npos,
                   "fault spec: bad " << what << " '" << text << "'");
  return std::stoull(text);
}

Rule parseRule(const std::string& token) {
  const auto at = token.find('@');
  const auto colon = token.find(':', at == std::string::npos ? 0 : at);
  ARTSCI_CHECK_MSG(at != std::string::npos && colon != std::string::npos &&
                       at > 0 && colon > at + 1,
                   "fault spec: rule '" << token
                                        << "' is not <site>@<hit>:<action>");
  Rule r;
  r.site = token.substr(0, at);
  std::string hitPart = token.substr(at + 1, colon - at - 1);
  const auto plus = hitPart.find('+');
  if (plus != std::string::npos) {
    r.count = parseUint(hitPart.substr(plus + 1), "count");
    hitPart = hitPart.substr(0, plus);
  }
  r.hit = parseUint(hitPart, "hit index");
  ARTSCI_CHECK_MSG(r.hit >= 1 && r.count >= 1,
                   "fault spec: hit/count must be >= 1 in '" << token << "'");
  const std::string action = token.substr(colon + 1);
  if (action == "error") {
    r.action = Action::kError;
  } else if (action == "die") {
    r.action = Action::kPeerDeath;
  } else if (action.rfind("delay=", 0) == 0) {
    r.action = Action::kDelay;
    r.delayMicros = parseUint(action.substr(6), "delay micros");
  } else if (action.rfind("torn=", 0) == 0) {
    r.action = Action::kTornWrite;
    r.keepBytes = parseUint(action.substr(5), "torn keep-bytes");
  } else {
    ARTSCI_CHECK_MSG(false, "fault spec: unknown action '" << action << "'");
  }
  return r;
}

}  // namespace

std::vector<Rule> Plan::parseSpec(const std::string& spec) {
  std::vector<Rule> rules;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    auto end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    if (end > pos) rules.push_back(parseRule(spec.substr(pos, end - pos)));
    pos = end + 1;
  }
  return rules;
}

bool Plan::armFromEnv() {
  const char* spec = std::getenv("ARTSCI_FAULT_PLAN");
  if (!spec || !*spec) return false;
  arm(parseSpec(spec));
  return true;
}

}  // namespace artsci::fault

#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace artsci {

Histogram1D::Histogram1D(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  ARTSCI_EXPECTS(hi > lo);
  ARTSCI_EXPECTS(bins > 0);
}

void Histogram1D::fill(double x, double weight) {
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::size_t>(frac * static_cast<double>(bins()));
  bin = std::min(bin, bins() - 1);
  counts_[bin] += weight;
}

double Histogram1D::total() const {
  double s = 0.0;
  for (double c : counts_) s += c;
  return s;
}

double Histogram1D::binCenter(std::size_t i) const {
  ARTSCI_EXPECTS(i < bins());
  const double w = (hi_ - lo_) / static_cast<double>(bins());
  return lo_ + (static_cast<double>(i) + 0.5) * w;
}

Histogram1D Histogram1D::normalized() const {
  Histogram1D out = *this;
  const double t = total();
  if (t > 0.0) {
    for (double& c : out.counts_) c /= t;
    out.underflow_ /= t;
    out.overflow_ /= t;
  }
  return out;
}

double Histogram1D::meanValue() const {
  const double t = total();
  if (t <= 0.0) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < bins(); ++i) s += counts_[i] * binCenter(i);
  return s / t;
}

double Histogram1D::stddevValue() const {
  const double t = total();
  if (t <= 0.0) return 0.0;
  const double m = meanValue();
  double s = 0.0;
  for (std::size_t i = 0; i < bins(); ++i) {
    const double d = binCenter(i) - m;
    s += counts_[i] * d * d;
  }
  return std::sqrt(s / t);
}

std::vector<std::size_t> Histogram1D::findPeaks(
    double threshold, std::size_t minSeparationBins) const {
  std::vector<std::size_t> peaks;
  const double maxCount = *std::max_element(counts_.begin(), counts_.end());
  if (maxCount <= 0.0) return peaks;
  const double cut = threshold * maxCount;
  for (std::size_t i = 0; i < bins(); ++i) {
    const double c = counts_[i];
    if (c < cut) continue;
    const double left = (i > 0) ? counts_[i - 1] : -1.0;
    const double right = (i + 1 < bins()) ? counts_[i + 1] : -1.0;
    if (c >= left && c > right) {
      if (!peaks.empty() && i - peaks.back() < minSeparationBins) {
        if (c > counts_[peaks.back()]) peaks.back() = i;
      } else {
        peaks.push_back(i);
      }
    }
  }
  return peaks;
}

std::string Histogram1D::renderAscii(std::size_t width, bool logScale,
                                     const std::string& label) const {
  std::ostringstream os;
  if (!label.empty()) os << label << '\n';
  const double maxCount = *std::max_element(counts_.begin(), counts_.end());
  const double denom =
      logScale ? std::log10(1.0 + maxCount) : std::max(maxCount, 1e-300);
  for (std::size_t i = 0; i < bins(); ++i) {
    const double v =
        logScale ? std::log10(1.0 + counts_[i]) : counts_[i];
    auto len = static_cast<std::size_t>(
        denom > 0 ? (v / denom) * static_cast<double>(width) : 0);
    os.precision(3);
    os.width(10);
    os << std::fixed << binCenter(i) << " |" << std::string(len, '#') << '\n';
  }
  return os.str();
}

}  // namespace artsci

/// \file vec3.hpp
/// Small 3-vector used across the PIC and radiation modules.
#pragma once

#include <cmath>
#include <ostream>

namespace artsci {

template <typename T>
struct Vec3 {
  T x{}, y{}, z{};

  constexpr Vec3() = default;
  constexpr Vec3(T xx, T yy, T zz) : x(xx), y(yy), z(zz) {}

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(T s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(T s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(T s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  constexpr T dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  T norm2() const { return dot(*this); }
  T norm() const { return std::sqrt(norm2()); }
  Vec3 normalized() const {
    const T n = norm();
    return n > T(0) ? (*this) / n : Vec3{};
  }
};

template <typename T>
constexpr Vec3<T> operator*(T s, const Vec3<T>& v) {
  return v * s;
}

template <typename T>
std::ostream& operator<<(std::ostream& os, const Vec3<T>& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

using Vec3d = Vec3<double>;
using Vec3f = Vec3<float>;

}  // namespace artsci

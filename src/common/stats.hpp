/// \file stats.hpp
/// Summary statistics used by the benchmark harnesses: the paper reports
/// boxplots (Fig 6), outlier-filtered means (Fig 8, > 4 sigma removal) and
/// min-max ranges of throughput.
#pragma once

#include <string>
#include <vector>

namespace artsci::stats {

/// Mean of a sample (0 for empty input).
double mean(const std::vector<double>& xs);

/// Unbiased sample standard deviation (0 for n < 2).
double stddev(const std::vector<double>& xs);

/// Linear-interpolated quantile, q in [0, 1].
double quantile(std::vector<double> xs, double q);

/// Five-number summary plus mean; the shape Fig 6's boxplots report.
struct BoxPlot {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0, mean = 0;
  std::size_t count = 0;
};

BoxPlot boxplot(const std::vector<double>& xs);

/// Remove entries farther than `nSigma` standard deviations from the mean,
/// as the paper does for Fig 8 ("removal of > 4 sigma outliers").
/// Iterates until stable (a single huge outlier can hide smaller ones).
std::vector<double> removeOutliers(std::vector<double> xs, double nSigma);

/// Render "min q1 median q3 max (mean)" on one line.
std::string formatBoxPlot(const BoxPlot& b, int precision = 2);

/// Tail-latency summary for serving/throughput measurements: the shape a
/// latency dashboard reports (p50/p90/p95/p99 percentiles, mean, extremes).
struct LatencySummary {
  double p50 = 0, p90 = 0, p95 = 0, p99 = 0;
  double mean = 0, min = 0, max = 0;
  std::size_t count = 0;
};

/// Summarize a latency sample (all-zero summary for empty input).
LatencySummary latencySummary(const std::vector<double>& xs);

/// Render "p50 .. / p90 .. / p95 .. / p99 .. (mean .., n=..)" on one line.
std::string formatLatencySummary(const LatencySummary& s, int precision = 2);

/// Least-squares fit of y = a + b*x; returns {a, b}.
struct LinearFit {
  double intercept = 0;
  double slope = 0;
};
LinearFit linearFit(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace artsci::stats

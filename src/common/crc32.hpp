/// \file crc32.hpp
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte
/// range — the integrity footer of the pipeline checkpoint format
/// (core/checkpoint.hpp). Table-driven, header-only, no dependencies.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace artsci {

namespace detail {
inline const std::array<std::uint32_t, 256>& crc32Table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

/// Running update: feed chunks with the previous return value as `crc`
/// (start from 0). The two-argument overload below covers the whole-buffer
/// case.
inline std::uint32_t crc32Update(std::uint32_t crc, const void* data,
                                 std::size_t n) {
  const auto& table = detail::crc32Table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i)
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

/// CRC-32 of a single buffer.
inline std::uint32_t crc32(const void* data, std::size_t n) {
  return crc32Update(0, data, n);
}

}  // namespace artsci

/// \file rng.hpp
/// Deterministic, splittable random number generation (xoshiro256**).
/// Every stochastic component of the stack (particle loading, buffer
/// eviction, weight init, network jitter) takes an explicit Rng so runs are
/// reproducible and rank-parallel streams are independent.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace artsci {

/// SplitMix64: used to seed xoshiro and to derive child seeds.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna; satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1234abcdULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent child generator (for per-rank streams).
  Rng split() {
    std::uint64_t seed = (*this)();
    return Rng(seed);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniformInt(std::uint64_t n) {
    ARTSCI_EXPECTS(n > 0);
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < n) {
      std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box-Muller (cached second value).
  double normal() {
    if (hasCached_) {
      hasCached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * kPi * u2;
    cached_ = r * std::sin(theta);
    hasCached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double sigma) { return mean + sigma * normal(); }

  /// Full engine state, exact to the bit — including the Box-Muller
  /// cache, so a checkpointed generator resumes the identical draw
  /// sequence (normal() included) from the identical position.
  struct State {
    std::uint64_t s[4]{};
    double cached = 0.0;
    bool hasCached = false;
  };

  State state() const {
    State st;
    for (int i = 0; i < 4; ++i) st.s[i] = state_[i];
    st.cached = cached_;
    st.hasCached = hasCached_;
    return st;
  }

  void setState(const State& st) {
    for (int i = 0; i < 4; ++i) state_[i] = st.s[i];
    cached_ = st.cached;
    hasCached_ = st.hasCached;
  }

 private:
  static constexpr double kPi = 3.14159265358979323846;
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
  double cached_ = 0.0;
  bool hasCached_ = false;
};

}  // namespace artsci

#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

namespace artsci::log {

namespace {

Level parseEnvLevel() {
  const char* env = std::getenv("ARTSCI_LOG");
  if (env == nullptr) return Level::kInfo;
  if (std::strcmp(env, "debug") == 0) return Level::kDebug;
  if (std::strcmp(env, "info") == 0) return Level::kInfo;
  if (std::strcmp(env, "warn") == 0) return Level::kWarn;
  if (std::strcmp(env, "error") == 0) return Level::kError;
  if (std::strcmp(env, "off") == 0) return Level::kOff;
  return Level::kInfo;
}

std::atomic<Level>& levelSlot() {
  static std::atomic<Level> l{parseEnvLevel()};
  return l;
}

std::mutex& sinkMutex() {
  static std::mutex m;
  return m;
}

/// Seconds since the first log call (monotonic clock).
double uptimeSeconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration<double>(Clock::now() - epoch).count();
}

thread_local std::string t_label;

const char* levelName(Level level) {
  switch (level) {
    case Level::kDebug:
      return "debug";
    case Level::kInfo:
      return "info ";
    case Level::kWarn:
      return "warn ";
    case Level::kError:
      return "error";
    default:
      return "?";
  }
}

}  // namespace

void setLevel(Level level) {
  levelSlot().store(level, std::memory_order_relaxed);
}

Level level() { return levelSlot().load(std::memory_order_relaxed); }

void setThreadLabel(std::string label) { t_label = std::move(label); }

void write(Level lvl, const std::string& tag, const std::string& message) {
  char stamp[32];
  std::snprintf(stamp, sizeof(stamp), "%9.3fs", uptimeSeconds());
  std::lock_guard<std::mutex> lock(sinkMutex());
  std::cerr << "[" << stamp << "][" << levelName(lvl) << "]";
  if (!t_label.empty()) std::cerr << "[" << t_label << "]";
  std::cerr << "[" << tag << "] " << message << '\n';
}

}  // namespace artsci::log

#include "common/log.hpp"

#include <atomic>
#include <iostream>

namespace artsci::log {

namespace {
std::atomic<Level> g_level{Level::kInfo};
std::mutex& sinkMutex() {
  static std::mutex m;
  return m;
}
const char* levelName(Level level) {
  switch (level) {
    case Level::kDebug:
      return "debug";
    case Level::kInfo:
      return "info ";
    case Level::kWarn:
      return "warn ";
    case Level::kError:
      return "error";
    default:
      return "?";
  }
}
}  // namespace

void setLevel(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void write(Level lvl, const std::string& tag, const std::string& message) {
  std::lock_guard<std::mutex> lock(sinkMutex());
  std::cerr << "[" << levelName(lvl) << "][" << tag << "] " << message
            << '\n';
}

}  // namespace artsci::log

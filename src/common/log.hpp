/// \file log.hpp
/// Minimal thread-safe logger. Intentionally tiny: the workflow components
/// (producer, consumer, trainer) tag their messages so interleaved output
/// from concurrent pipeline stages stays readable.
///
/// Every line carries a monotonic timestamp (seconds since the first log
/// call) so concurrent producer/trainer/serve output can be ordered by
/// eye; a thread may additionally claim a label (its rank, say) that is
/// prefixed to its lines. The initial threshold honors the ARTSCI_LOG
/// environment variable (debug|info|warn|error|off; default info).
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace artsci::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped. The first query
/// initializes it from ARTSCI_LOG (unset/unknown value -> info).
void setLevel(Level level);
Level level();

/// Label the calling thread ("rank 2", "serve worker 0"); prefixed to its
/// subsequent lines. An empty label clears it.
void setThreadLabel(std::string label);

/// Core sink: writes "[  12.345s][level][label][tag] message" to stderr
/// under a mutex (the "[label]" field only for threads that set one).
void write(Level level, const std::string& tag, const std::string& message);

namespace detail {
template <typename... Args>
std::string format(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void debug(const std::string& tag, Args&&... args) {
  if (level() <= Level::kDebug)
    write(Level::kDebug, tag, detail::format(std::forward<Args>(args)...));
}
template <typename... Args>
void info(const std::string& tag, Args&&... args) {
  if (level() <= Level::kInfo)
    write(Level::kInfo, tag, detail::format(std::forward<Args>(args)...));
}
template <typename... Args>
void warn(const std::string& tag, Args&&... args) {
  if (level() <= Level::kWarn)
    write(Level::kWarn, tag, detail::format(std::forward<Args>(args)...));
}
template <typename... Args>
void error(const std::string& tag, Args&&... args) {
  if (level() <= Level::kError)
    write(Level::kError, tag, detail::format(std::forward<Args>(args)...));
}

}  // namespace artsci::log

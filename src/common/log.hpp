/// \file log.hpp
/// Minimal thread-safe logger. Intentionally tiny: the workflow components
/// (producer, consumer, trainer) tag their messages so interleaved output
/// from concurrent pipeline stages stays readable.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace artsci::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void setLevel(Level level);
Level level();

/// Core sink: writes "[level][tag] message" to stderr under a mutex.
void write(Level level, const std::string& tag, const std::string& message);

namespace detail {
template <typename... Args>
std::string format(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void debug(const std::string& tag, Args&&... args) {
  if (level() <= Level::kDebug)
    write(Level::kDebug, tag, detail::format(std::forward<Args>(args)...));
}
template <typename... Args>
void info(const std::string& tag, Args&&... args) {
  if (level() <= Level::kInfo)
    write(Level::kInfo, tag, detail::format(std::forward<Args>(args)...));
}
template <typename... Args>
void warn(const std::string& tag, Args&&... args) {
  if (level() <= Level::kWarn)
    write(Level::kWarn, tag, detail::format(std::forward<Args>(args)...));
}
template <typename... Args>
void error(const std::string& tag, Args&&... args) {
  if (level() <= Level::kError)
    write(Level::kError, tag, detail::format(std::forward<Args>(args)...));
}

}  // namespace artsci::log

/// \file thread_pool.hpp
/// A fixed-size thread pool plus a rank-team abstraction.
///
/// Two distinct parallel idioms appear in the paper's stack:
///  * data-parallel loops inside one "GPU" (we use OpenMP for those), and
///  * SPMD rank teams (PIConGPU MPI ranks, PyTorch DDP ranks) — modeled
///    here as RankTeam: N threads running the same function with a rank id,
///    with a reusable barrier for collective phases.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace artsci {

/// Fixed-size FIFO thread pool.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ARTSCI_CHECK_MSG(!stopping_, "submit() on stopped ThreadPool");
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  std::size_t size() const { return workers_.size(); }

 private:
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Reusable cyclic barrier for SPMD teams.
class Barrier {
 public:
  explicit Barrier(std::size_t parties) : parties_(parties) {
    ARTSCI_EXPECTS(parties > 0);
  }

  /// Block until all parties arrive; reusable across generations.
  void arriveAndWait();

 private:
  std::size_t parties_;
  std::size_t waiting_ = 0;
  std::uint64_t generation_ = 0;
  std::mutex mutex_;
  std::condition_variable cv_;
};

/// Run `fn(rank)` on `ranks` concurrent threads (SPMD); rethrows the first
/// exception after all threads joined.
void runRankTeam(std::size_t ranks, const std::function<void(std::size_t)>& fn);

/// Pin the calling thread to one CPU of its allowed set: `slot` indexes
/// round-robin into the CPUs the process may run on (cgroup/taskset aware),
/// so slot 0..N-1 spreads N serving workers across distinct cores when the
/// machine has them and degrades to sharing when it doesn't. No-op (returns
/// false) on platforms without sched_setaffinity.
bool pinThisThreadToCpuSlot(std::size_t slot);

}  // namespace artsci

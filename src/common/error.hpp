/// \file error.hpp
/// Checked-assertion macros in the spirit of the C++ Core Guidelines'
/// Expects()/Ensures(). Violations throw (never UB), so tests can assert on
/// contract failures and long-running pipelines fail loudly.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace artsci {

/// Error thrown on contract violations (precondition/postcondition/invariant).
class ContractError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Error thrown on runtime failures (I/O, stream shutdown, bad config...).
class RuntimeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void contractFail(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw ContractError(os.str());
}
}  // namespace detail

}  // namespace artsci

/// Precondition check; use at function entry.
#define ARTSCI_EXPECTS(cond)                                               \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::artsci::detail::contractFail("Precondition", #cond, __FILE__,      \
                                     __LINE__, "");                        \
    }                                                                      \
  } while (false)

/// Precondition check with context message (streamable expression).
#define ARTSCI_EXPECTS_MSG(cond, msg)                                      \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream os_;                                              \
      os_ << msg;                                                          \
      ::artsci::detail::contractFail("Precondition", #cond, __FILE__,      \
                                     __LINE__, os_.str());                 \
    }                                                                      \
  } while (false)

/// Invariant/consistency check anywhere in a function body.
#define ARTSCI_CHECK(cond)                                                 \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::artsci::detail::contractFail("Check", #cond, __FILE__, __LINE__,   \
                                     "");                                  \
    }                                                                      \
  } while (false)

#define ARTSCI_CHECK_MSG(cond, msg)                                        \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream os_;                                              \
      os_ << msg;                                                          \
      ::artsci::detail::contractFail("Check", #cond, __FILE__, __LINE__,   \
                                     os_.str());                           \
    }                                                                      \
  } while (false)

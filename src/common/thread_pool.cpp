#include "common/thread_pool.hpp"

#include <atomic>

#ifdef __linux__
#include <sched.h>
#endif

namespace artsci {

ThreadPool::ThreadPool(std::size_t threads) {
  ARTSCI_EXPECTS(threads > 0);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] {
      for (;;) {
        std::function<void()> task;
        {
          std::unique_lock<std::mutex> lock(mutex_);
          cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
          if (stopping_ && tasks_.empty()) return;
          task = std::move(tasks_.front());
          tasks_.pop();
        }
        task();
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void Barrier::arriveAndWait() {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::uint64_t gen = generation_;
  if (++waiting_ == parties_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return generation_ != gen; });
}

void runRankTeam(std::size_t ranks,
                 const std::function<void(std::size_t)>& fn) {
  ARTSCI_EXPECTS(ranks > 0);
  std::vector<std::thread> team;
  team.reserve(ranks);
  std::mutex errMutex;
  std::exception_ptr firstError;
  for (std::size_t r = 0; r < ranks; ++r) {
    team.emplace_back([&, r] {
      try {
        fn(r);
      } catch (...) {
        std::lock_guard<std::mutex> lock(errMutex);
        if (!firstError) firstError = std::current_exception();
      }
    });
  }
  for (auto& t : team) t.join();
  if (firstError) std::rethrow_exception(firstError);
}

bool pinThisThreadToCpuSlot(std::size_t slot) {
#ifdef __linux__
  // Enumerate the CPUs this process is allowed on (respects taskset and
  // container cpusets), then pin to the slot-th one round-robin.
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (sched_getaffinity(0, sizeof(allowed), &allowed) != 0) return false;
  const int nAllowed = CPU_COUNT(&allowed);
  if (nAllowed <= 0) return false;
  int want = static_cast<int>(slot % static_cast<std::size_t>(nAllowed));
  int cpu = -1;
  for (int c = 0; c < CPU_SETSIZE; ++c) {
    if (CPU_ISSET(c, &allowed) && want-- == 0) {
      cpu = c;
      break;
    }
  }
  if (cpu < 0) return false;
  cpu_set_t target;
  CPU_ZERO(&target);
  CPU_SET(cpu, &target);
  return sched_setaffinity(0, sizeof(target), &target) == 0;
#else
  (void)slot;
  return false;
#endif
}

}  // namespace artsci

/// \file histogram.hpp
/// 1D histograms (linear bins) with weighted fills. Fig 9(b,c) plots charge
/// density vs momentum as log-scaled histograms; the ASCII renderer here is
/// what the fig9 bench prints.
#pragma once

#include <string>
#include <vector>

namespace artsci {

class Histogram1D {
 public:
  /// Uniform binning of [lo, hi) into `bins` buckets.
  Histogram1D(double lo, double hi, std::size_t bins);

  /// Add a sample with the given weight; out-of-range samples go to
  /// under/overflow counters.
  void fill(double x, double weight = 1.0);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bins() const { return counts_.size(); }
  double count(std::size_t bin) const { return counts_.at(bin); }
  double underflow() const { return underflow_; }
  double overflow() const { return overflow_; }
  double total() const;
  /// Center of bin i.
  double binCenter(std::size_t i) const;
  const std::vector<double>& counts() const { return counts_; }

  /// Total weight-normalized copy (integral == 1 over in-range bins).
  Histogram1D normalized() const;

  /// Mean of the filled distribution (in-range part).
  double meanValue() const;
  /// Standard deviation of the filled distribution (in-range part).
  double stddevValue() const;

  /// Find local maxima above `threshold * max`, separated by at least
  /// `minSeparationBins`; used to detect the two-population (bimodal)
  /// vortex momentum distribution of Fig 9.
  std::vector<std::size_t> findPeaks(double threshold = 0.2,
                                     std::size_t minSeparationBins = 3) const;

  /// ASCII rendering: one row per bin, bar length proportional to count
  /// (log scale optional, as in Fig 9's log-y axes).
  std::string renderAscii(std::size_t width = 60, bool logScale = true,
                          const std::string& label = "") const;

 private:
  double lo_, hi_;
  std::vector<double> counts_;
  double underflow_ = 0.0, overflow_ = 0.0;
};

}  // namespace artsci

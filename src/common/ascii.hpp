/// \file ascii.hpp
/// ASCII rendering helpers for the bench harnesses: x/y line plots on log
/// axes (radiation spectra, Fig 9a), scaling curves (Figs 4/8) and aligned
/// tables (Fig 6 / section IV-B numbers).
#pragma once

#include <string>
#include <vector>

namespace artsci::ascii {

/// Plot one or more series sharing an x axis. Each series is drawn with its
/// own glyph. Log-scale options mimic the paper's log-log spectra plots.
struct Series {
  std::string name;
  std::vector<double> y;
  char glyph = '*';
};

std::string plot(const std::vector<double>& x, const std::vector<Series>& ys,
                 std::size_t width = 72, std::size_t height = 20,
                 bool logX = false, bool logY = false,
                 const std::string& title = "");

/// Simple fixed-width table printer. `rows` are already formatted cells.
std::string table(const std::vector<std::string>& header,
                  const std::vector<std::vector<std::string>>& rows);

/// Format helper: fixed precision double to string.
std::string num(double v, int precision = 2);

/// Format helper: engineering suffixes (k, M, G, T) for big magnitudes.
std::string eng(double v, int precision = 1);

}  // namespace artsci::ascii

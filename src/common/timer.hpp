/// \file timer.hpp
/// Wall-clock stopwatch for the measured benchmark paths.
#pragma once

#include <chrono>

namespace artsci {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace artsci

#include "common/config.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/error.hpp"

namespace artsci {

Config Config::fromArgs(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string tok = argv[i];
    const auto eq = tok.find('=');
    if (eq == std::string::npos) {
      cfg.positional_.push_back(tok);
    } else {
      cfg.set(tok.substr(0, eq), tok.substr(eq + 1));
    }
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Config::getString(const std::string& key,
                              const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

long Config::getInt(const std::string& key, long fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  ARTSCI_CHECK_MSG(end != it->second.c_str() && *end == '\0',
                   "config key '" << key << "' is not an integer: '"
                                  << it->second << "'");
  return v;
}

double Config::getDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  ARTSCI_CHECK_MSG(end != it->second.c_str() && *end == '\0',
                   "config key '" << key << "' is not a number: '"
                                  << it->second << "'");
  return v;
}

bool Config::getBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(), ::tolower);
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  ARTSCI_CHECK_MSG(false, "config key '" << key << "' is not a bool: '"
                                         << it->second << "'");
  return fallback;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

}  // namespace artsci

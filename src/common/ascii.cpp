#include "common/ascii.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace artsci::ascii {

namespace {
double toAxis(double v, bool logScale) {
  if (!logScale) return v;
  return std::log10(std::max(v, 1e-300));
}
}  // namespace

std::string plot(const std::vector<double>& x, const std::vector<Series>& ys,
                 std::size_t width, std::size_t height, bool logX, bool logY,
                 const std::string& title) {
  ARTSCI_EXPECTS(!x.empty());
  ARTSCI_EXPECTS(width >= 8 && height >= 4);
  for (const auto& s : ys) ARTSCI_EXPECTS(s.y.size() == x.size());

  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = xmin, ymax = -xmin;
  for (double v : x) {
    const double a = toAxis(v, logX);
    xmin = std::min(xmin, a);
    xmax = std::max(xmax, a);
  }
  for (const auto& s : ys) {
    for (double v : s.y) {
      const double a = toAxis(v, logY);
      ymin = std::min(ymin, a);
      ymax = std::max(ymax, a);
    }
  }
  if (xmax <= xmin) xmax = xmin + 1.0;
  if (ymax <= ymin) ymax = ymin + 1.0;

  std::vector<std::string> canvas(height, std::string(width, ' '));
  for (const auto& s : ys) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double ax = toAxis(x[i], logX);
      const double ay = toAxis(s.y[i], logY);
      auto cx = static_cast<std::size_t>((ax - xmin) / (xmax - xmin) *
                                         static_cast<double>(width - 1));
      auto cy = static_cast<std::size_t>((ay - ymin) / (ymax - ymin) *
                                         static_cast<double>(height - 1));
      canvas[height - 1 - cy][cx] = s.glyph;
    }
  }

  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  os << std::setprecision(3);
  for (std::size_t r = 0; r < height; ++r) {
    const double yv = ymax - (ymax - ymin) * static_cast<double>(r) /
                                 static_cast<double>(height - 1);
    os << std::setw(10) << (logY ? std::pow(10.0, yv) : yv) << " |"
       << canvas[r] << '\n';
  }
  os << std::string(12, ' ') << std::string(width, '-') << '\n';
  os << std::string(12, ' ') << (logX ? std::pow(10.0, xmin) : xmin)
     << "  ..  " << (logX ? std::pow(10.0, xmax) : xmax) << '\n';
  for (const auto& s : ys) os << "    '" << s.glyph << "' = " << s.name << '\n';
  return os.str();
}

std::string table(const std::vector<std::string>& header,
                  const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> w(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) w[c] = header[c].size();
  for (const auto& row : rows) {
    ARTSCI_EXPECTS(row.size() == header.size());
    for (std::size_t c = 0; c < row.size(); ++c)
      w[c] = std::max(w[c], row[c].size());
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(w[c])) << cells[c]
         << " | ";
    }
    os << '\n';
  };
  emit(header);
  os << '|';
  for (std::size_t c = 0; c < header.size(); ++c)
    os << std::string(w[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows) emit(row);
  return os.str();
}

std::string num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string eng(double v, int precision) {
  static const char* suffix[] = {"", "k", "M", "G", "T", "P", "E"};
  int idx = 0;
  double a = std::abs(v);
  while (a >= 1000.0 && idx < 6) {
    a /= 1000.0;
    v /= 1000.0;
    ++idx;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v << suffix[idx];
  return os.str();
}

}  // namespace artsci::ascii

#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace artsci::stats {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double quantile(std::vector<double> xs, double q) {
  ARTSCI_EXPECTS(!xs.empty());
  ARTSCI_EXPECTS(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

BoxPlot boxplot(const std::vector<double>& xs) {
  BoxPlot b;
  if (xs.empty()) return b;
  b.count = xs.size();
  b.min = quantile(xs, 0.0);
  b.q1 = quantile(xs, 0.25);
  b.median = quantile(xs, 0.5);
  b.q3 = quantile(xs, 0.75);
  b.max = quantile(xs, 1.0);
  b.mean = mean(xs);
  return b;
}

std::vector<double> removeOutliers(std::vector<double> xs, double nSigma) {
  ARTSCI_EXPECTS(nSigma > 0.0);
  bool changed = true;
  while (changed && xs.size() > 2) {
    changed = false;
    const double m = mean(xs);
    const double s = stddev(xs);
    if (s == 0.0) break;
    std::vector<double> kept;
    kept.reserve(xs.size());
    for (double x : xs) {
      if (std::abs(x - m) <= nSigma * s) {
        kept.push_back(x);
      } else {
        changed = true;
      }
    }
    xs.swap(kept);
  }
  return xs;
}

std::string formatBoxPlot(const BoxPlot& b, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed;
  os << b.min << " | " << b.q1 << " [" << b.median << "] " << b.q3 << " | "
     << b.max << "  (mean " << b.mean << ", n=" << b.count << ")";
  return os.str();
}

LatencySummary latencySummary(const std::vector<double>& xs) {
  LatencySummary s;
  if (xs.empty()) return s;
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  // One sort, then direct interpolated indexing (same formula as
  // quantile(), which would re-copy and re-sort on every call) — this
  // runs under the serving metrics mutex, so it must stay O(n log n).
  auto at = [&sorted](double q) {
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
    const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  };
  s.p50 = at(0.50);
  s.p90 = at(0.90);
  s.p95 = at(0.95);
  s.p99 = at(0.99);
  s.mean = mean(sorted);
  s.min = sorted.front();
  s.max = sorted.back();
  s.count = sorted.size();
  return s;
}

std::string formatLatencySummary(const LatencySummary& s, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed;
  os << "p50 " << s.p50 << " / p90 " << s.p90 << " / p95 " << s.p95
     << " / p99 " << s.p99 << "  (mean " << s.mean << ", n=" << s.count
     << ")";
  return os.str();
}

LinearFit linearFit(const std::vector<double>& x,
                    const std::vector<double>& y) {
  ARTSCI_EXPECTS(x.size() == y.size());
  ARTSCI_EXPECTS(x.size() >= 2);
  const double mx = mean(x);
  const double my = mean(y);
  double sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
  }
  ARTSCI_CHECK(sxx > 0.0);
  LinearFit f;
  f.slope = sxy / sxx;
  f.intercept = my - f.slope * mx;
  return f;
}

}  // namespace artsci::stats

/// \file units.hpp
/// SI constants and the plasma formulary used by the KHI setup.
///
/// Internally the PIC code works in "plasma units": lengths in c/omega_pe,
/// times in 1/omega_pe, momenta in m_e c, fields in m_e c omega_pe / e.
/// This header converts between SI and plasma units and reproduces the
/// paper's setup numbers (dx = 93.5 um, dt = 17.9 fs at n0 = 1e25 m^-3).
#pragma once

#include <cmath>

namespace artsci::units {

// --- CODATA-ish SI constants -------------------------------------------
inline constexpr double kSpeedOfLight = 2.99792458e8;      ///< c [m/s]
inline constexpr double kElectronMass = 9.1093837015e-31;  ///< m_e [kg]
inline constexpr double kElementaryCharge = 1.602176634e-19;  ///< e [C]
inline constexpr double kEpsilon0 = 8.8541878128e-12;  ///< vacuum permittivity
inline constexpr double kMu0 = 1.25663706212e-6;       ///< vacuum permeability
inline constexpr double kPi = 3.14159265358979323846;

/// Electron plasma (angular) frequency omega_pe = sqrt(n e^2 / (eps0 m_e)).
inline double plasmaFrequency(double densitySI) {
  return std::sqrt(densitySI * kElementaryCharge * kElementaryCharge /
                   (kEpsilon0 * kElectronMass));
}

/// Plasma skin depth c / omega_pe [m].
inline double skinDepth(double densitySI) {
  return kSpeedOfLight / plasmaFrequency(densitySI);
}

/// Convert a length in SI meters to plasma units (c/omega_pe).
inline double lengthToPlasma(double metres, double densitySI) {
  return metres / skinDepth(densitySI);
}

/// Convert a time in SI seconds to plasma units (1/omega_pe).
inline double timeToPlasma(double seconds, double densitySI) {
  return seconds * plasmaFrequency(densitySI);
}

/// Lorentz gamma for normalized velocity beta = v/c.
inline double gammaOfBeta(double beta) {
  return 1.0 / std::sqrt(1.0 - beta * beta);
}

/// Relativistic Doppler cutoff factor for emission toward the detector:
/// an emitter approaching with beta upshifts frequencies by 1/(1 - beta),
/// a receding one downshifts by 1/(1 + beta) (paper Fig 9a).
inline double dopplerFactor(double betaTowardsDetector) {
  return 1.0 / (1.0 - betaTowardsDetector);
}

/// The paper's smallest KHI configuration (section IV-A), used to validate
/// unit handling and as the physical template for scaled-down runs.
struct PaperKhiSetup {
  double densitySI = 1.0e25;       ///< n0 [m^-3]
  double cellSizeSI = 93.5e-6;     ///< dx = dy = dz [m] — as stated in paper
  double timeStepSI = 17.9e-15;    ///< dt [s] — paper value (see note below)
  double beta = 0.2;               ///< stream velocity v/c
  int particlesPerCell = 9;
  long cellsX = 192, cellsY = 256, cellsZ = 12;

  /// dx in plasma units (c/omega_pe).
  double cellSizePlasma() const {
    return lengthToPlasma(cellSizeSI, densitySI);
  }
  /// dt in plasma units (1/omega_pe).
  double timeStepPlasma() const {
    return timeToPlasma(timeStepSI, densitySI);
  }
  /// CFL number dt*c*sqrt(3)/dx for the cubic Yee grid (must be < 1).
  double cflNumber() const {
    return kSpeedOfLight * timeStepSI * std::sqrt(3.0) / cellSizeSI;
  }
};

}  // namespace artsci::units

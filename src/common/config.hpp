/// \file config.hpp
/// Tiny typed key-value configuration with "key=value" CLI parsing, used by
/// the examples and bench binaries so runs are parameterizable without
/// recompiling (grid sizes, ranks, n_rep, ...).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace artsci {

class Config {
 public:
  Config() = default;

  /// Parse "key=value" tokens; tokens without '=' are collected as
  /// positional arguments.
  static Config fromArgs(int argc, const char* const* argv);

  void set(const std::string& key, const std::string& value);

  bool has(const std::string& key) const;

  std::string getString(const std::string& key,
                        const std::string& fallback) const;
  long getInt(const std::string& key, long fallback) const;
  double getDouble(const std::string& key, double fallback) const;
  bool getBool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// All keys, for diagnostics.
  std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace artsci

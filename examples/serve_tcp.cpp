/// Serving the surrogate over TCP: stand up the sharded network front end
/// (ASV1 binary protocol, epoll I/O thread, per-shard micro-batching) on a
/// trained model and drive it with in-process TCP clients — including a
/// live hot swap and a deadline-annotated request, so the wire-level error
/// frames are on display too.
///
///   ./examples/example_serve_tcp [shards=2] [clients=3] [requests=50]
///                                [port=0]
///
/// With port= set, the server stays up (Ctrl-C to quit) so external tools
/// can speak the protocol to it; the default runs a self-contained demo.
#include <cstdio>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "core/model.hpp"
#include "serve/client.hpp"
#include "serve/net_server.hpp"

int main(int argc, char** argv) {
  using namespace artsci;
  const Config cli = Config::fromArgs(argc, argv);
  const auto shards = static_cast<std::size_t>(cli.getInt("shards", 2));
  const int clients = static_cast<int>(cli.getInt("clients", 3));
  const long requests = cli.getInt("requests", 50);
  const auto port = static_cast<std::uint16_t>(cli.getInt("port", 0));

  // [1] A trained-ish model snapshot (random weights serve the demo).
  Rng rng(7);
  core::ArtificialScientistModel model(
      core::ArtificialScientistModel::Config::reduced(), rng);
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->publish(core::cloneForInference(model), "demo-v1");

  // [2] The TCP front end: one epoll I/O thread, `shards` micro-batching
  // workers, load shedding on each bounded queue.
  serve::NetServerConfig cfg;
  cfg.port = port;
  cfg.shards = shards;
  cfg.policy.maxBatch = 16;
  cfg.policy.maxWaitMicros = 300;
  serve::NetServer server(cfg, registry);
  std::printf("[1] serving on 127.0.0.1:%u with %zu shard(s)\n",
              server.port(), shards);

  if (port != 0) {
    std::printf("    external mode: speak ASV1 to this port; Ctrl-C to "
                "quit\n");
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(60));
  }

  // [3] Concurrent TCP clients round-tripping real frames.
  const long points = 64;
  std::vector<std::thread> workers;
  std::atomic<long> done{0};
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      Rng crng(100 + static_cast<std::uint64_t>(c));
      serve::NetClient client("127.0.0.1", server.port());
      std::vector<ml::Real> cloud(static_cast<std::size_t>(points) * 6);
      for (auto& v : cloud) v = crng.normal();
      for (long i = 0; i < requests; ++i) {
        const serve::NetReply r = client.predictSpectrum(cloud);
        if (!r.values.empty()) done.fetch_add(1);
      }
    });
  }
  for (auto& t : workers) t.join();
  std::printf("[2] %ld/%ld predictions served over TCP\n", done.load(),
              static_cast<long>(clients) * requests);

  // [4] Hot swap while a client is mid-conversation.
  serve::NetClient client("127.0.0.1", server.port());
  std::vector<ml::Real> cloud(static_cast<std::size_t>(points) * 6, 0.1);
  const auto before = client.predictSpectrum(cloud);
  registry->publish(core::cloneForInference(model), "demo-v2");
  const auto after = client.predictSpectrum(cloud);
  std::printf("[3] hot swap observed on one connection: snapshot v%llu -> "
              "v%llu\n",
              static_cast<unsigned long long>(before.snapshotVersion),
              static_cast<unsigned long long>(after.snapshotVersion));

  // [5] A deadline the queue cannot possibly make surfaces as a typed
  // wire error, not silence.
  try {
    client.predictSpectrum(cloud, /*deadlineMicros=*/1);
    std::printf("[4] deadline race won (request served in under 1 us?!)\n");
  } catch (const serve::NetError& e) {
    std::printf("[4] 1 us deadline surfaced as: %s\n", e.what());
  }

  server.stop();
  std::printf("[5] metrics: %s\n", server.serveMetrics().toJson().c_str());
  return 0;
}

/// KHI physics example: run the Kelvin-Helmholtz instability with the
/// synthetic far-field radiation detector and inspect the physics the ML
/// model later learns from — the magnetic-field growth of the instability
/// and the Doppler asymmetry between the approaching and receding streams.
///
///   ./examples/khi_radiation [steps=120] [nx=16] [ny=32]
#include <cstdio>

#include "common/ascii.hpp"
#include "common/config.hpp"
#include "pic/diagnostics.hpp"
#include "radiation/plugin.hpp"

int main(int argc, char** argv) {
  using namespace artsci;
  const Config cli = Config::fromArgs(argc, argv);

  pic::KhiConfig kcfg;
  kcfg.grid = pic::GridSpec{cli.getInt("nx", 16), cli.getInt("ny", 32), 4,
                            0.25, 0.25, 0.25};
  kcfg.dt = 0.1;
  kcfg.particlesPerCell = 4;

  pic::SimulationConfig sc;
  sc.grid = kcfg.grid;
  sc.dt = kcfg.dt;
  sc.recordBetaDot = true;
  pic::Simulation sim(sc);
  const auto species = pic::initializeKhi(sim, kcfg);

  radiation::DetectorConfig det = radiation::DetectorConfig::defaultKhi(48);
  auto plugin = std::make_shared<radiation::RegionRadiationPlugin>(
      det, species.electrons, 3.0);
  sim.addPlugin(plugin);

  const long steps = cli.getInt("steps", 120);
  std::printf("running KHI: %ldx%ldx%ld cells, beta=%.2f, %ld steps\n\n",
              kcfg.grid.nx, kcfg.grid.ny, kcfg.grid.nz, kcfg.beta, steps);

  std::vector<double> magneticEnergy;
  for (long s = 0; s < steps; ++s) {
    sim.step();
    magneticEnergy.push_back(sim.solver().magneticEnergy(sim.fieldB()));
    if ((s + 1) % (steps / 4) == 0) {
      const auto e = pic::energyReport(sim);
      std::printf("step %4ld  E_B = %.3e  E_E = %.3e  E_kin = %.3e\n", s + 1,
                  e.magnetic, e.electric, e.kinetic);
    }
  }

  // Growth rate of the instability from the linear phase.
  const double gamma = pic::fitGrowthRate(
      magneticEnergy, kcfg.dt, static_cast<std::size_t>(steps / 10),
      static_cast<std::size_t>(steps / 2));
  std::printf("\nfitted magnetic growth rate: Gamma = %.3f omega_pe\n",
              gamma);
  std::printf("(relativistic KHI growth rates are O(0.1-1) omega_pe)\n\n");

  // Spectra per region with Doppler check.
  for (auto region : {pic::KhiRegion::kApproaching,
                      pic::KhiRegion::kReceding, pic::KhiRegion::kVortex}) {
    const auto spectrum = plugin->accumulator(region).intensity(0);
    std::printf("%s\n",
                ascii::plot(det.frequencies,
                            {{pic::khiRegionName(region), spectrum, '#'}},
                            70, 10, true, true,
                            std::string("radiation spectrum — ") +
                                pic::khiRegionName(region))
                    .c_str());
  }

  // Doppler asymmetry: intensity-weighted mean frequency per stream.
  auto meanFreq = [&](pic::KhiRegion region) {
    const auto spec = plugin->accumulator(region).intensity(0);
    double num = 0, den = 0;
    for (std::size_t f = 0; f < spec.size(); ++f) {
      num += spec[f] * det.frequencies[f];
      den += spec[f];
    }
    return den > 0 ? num / den : 0.0;
  };
  const double fAppr = meanFreq(pic::KhiRegion::kApproaching);
  const double fRec = meanFreq(pic::KhiRegion::kReceding);
  std::printf("intensity-weighted mean frequency: approaching %.2f, "
              "receding %.2f (ratio %.2f)\n",
              fAppr, fRec, fAppr / fRec);
  std::printf("relativistic Doppler for beta=0.2 predicts up to (1+b)/(1-b) "
              "= 1.50\n");
  return 0;
}

/// Profile a full run: tracing enabled end to end across the in-transit
/// pipeline (PIC producer, nanoSST stream, replay buffer, DDP trainer) and
/// a short serving burst, then flush a Chrome trace_event JSON you can
/// load at https://ui.perfetto.dev and a metrics snapshot.
///
///   ./examples/example_profile_run [steps=24] [requests=64] [ranks=4]
///                                  [trace=artsci_trace.json]
///                                  [metrics=artsci_metrics.json]
///
/// CI runs this as the trace smoke test: the JSON must parse and contain
/// spans from >= 4 subsystems (pic, domain, train, stream, replay,
/// serve). The multi-rank stepper phase makes each rank a Chrome
/// "process" in the trace — Perfetto shows ranks side by side with their
/// OpenMP workers as threads.
#include <cstdio>
#include <fstream>
#include <future>
#include <vector>

#include "common/config.hpp"
#include "core/pipeline.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pic/domain.hpp"
#include "pic/khi.hpp"
#include "serve/server.hpp"

namespace {

/// A few distributed steps on a weak-scaled KHI box so the trace covers
/// the rank stepper (scatter / halo_reduce / migrate / field_solve per
/// rank, "domain" category).
void traceDistributedSteps(std::size_t ranks, long steps) {
  using namespace artsci;
  pic::KhiConfig kcfg;
  kcfg.grid = pic::GridSpec{16 * static_cast<long>(ranks), 32, 8, 0.25,
                            0.25, 0.25};
  kcfg.dt = 0.1;
  kcfg.particlesPerCell = 4;

  pic::DistributedSimulation::Config dc;
  dc.grid = kcfg.grid;
  dc.dt = kcfg.dt;
  dc.ranks = ranks;
  pic::DistributedSimulation sim(dc);

  pic::SimulationConfig tmpCfg;
  tmpCfg.grid = kcfg.grid;
  tmpCfg.dt = kcfg.dt;
  pic::Simulation staging(tmpCfg);
  const auto sp = pic::initializeKhi(staging, kcfg);
  const auto e = sim.addSpecies(staging.species(sp.electrons).info());
  const auto i = sim.addSpecies(staging.species(sp.ions).info());
  sim.staging(e).append(staging.species(sp.electrons));
  sim.staging(i).append(staging.species(sp.ions));
  sim.distribute();
  sim.run(steps);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace artsci;
  const Config cli = Config::fromArgs(argc, argv);
  const std::string tracePath = cli.getString("trace", "artsci_trace.json");
  const std::string metricsPath =
      cli.getString("metrics", "artsci_metrics.json");

  auto& rec = obs::TraceRecorder::instance();
  rec.setEnabled(true);
  rec.setThreadName("main");

  // [1] In-transit training with every hot path instrumented.
  auto cfg = core::PipelineConfig::quickDemo();
  cfg.producer.totalSteps = cli.getInt("steps", 24);
  std::printf("[1] tracing a %ld-step in-transit pipeline run...\n",
              cfg.producer.totalSteps);
  auto run = core::runPipeline(cfg);
  std::printf("    %ld iterations streamed, %ld batches trained\n",
              run.result.iterationsStreamed, run.result.train.iterations);

  // [1b] Multi-rank stepping: each rank becomes a trace "process".
  const auto ranks = static_cast<std::size_t>(cli.getInt("ranks", 4));
  std::printf("[1b] tracing %zu-rank distributed steps...\n", ranks);
  traceDistributedSteps(ranks, 3);

  // [2] A short serving burst so the trace covers the inference side too.
  const long requests = cli.getInt("requests", 64);
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->publish(run.trainer->exportSnapshot(), "profile run");
  {
    serve::ServerConfig scfg;
    scfg.policy.maxBatch = 16;
    scfg.policy.maxWaitMicros = 300;
    scfg.workers = 1;
    serve::InferenceServer server(scfg, registry);
    const long points = cfg.producer.transform.cloudPoints;
    Rng rng(7);
    std::vector<ml::Real> cloud(static_cast<std::size_t>(points) * 6);
    for (auto& v : cloud) v = rng.normal();
    std::vector<std::future<serve::InferenceResult>> futs;
    for (long i = 0; i < requests; ++i)
      futs.push_back(server.predictSpectrum(cloud));
    for (auto& f : futs) f.get();
    std::printf("[2] served %ld predict requests\n", requests);
    server.shutdown();  // quiesce the worker before flushing the trace
  }
  rec.setEnabled(false);

  // [3] Flush. All pipeline/server threads have been joined, so the
  // recorder is quiescent.
  if (!rec.writeJsonFile(tracePath)) {
    std::fprintf(stderr, "cannot write %s\n", tracePath.c_str());
    return 1;
  }
  std::printf("[3] %zu spans (%llu dropped) -> %s\n", rec.eventCount(),
              static_cast<unsigned long long>(rec.droppedCount()),
              tracePath.c_str());

  {
    std::ofstream os(metricsPath);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", metricsPath.c_str());
      return 1;
    }
    os << obs::Registry::global().toJson() << "\n";
  }
  std::printf("    metrics snapshot -> %s\n", metricsPath.c_str());
  std::printf("\nOpen the trace in https://ui.perfetto.dev (or "
              "chrome://tracing): ranks appear\nas processes, their OpenMP "
              "workers as threads, spans nest per category.\n");
  return 0;
}

/// The paper's synthetic streaming benchmark in miniature: a PIC KHI
/// producer streams its particle data to a no-op consumer that only
/// measures ingest throughput and discards the data (§IV-B). Demonstrates
/// multi-rank writers, locality-aware reader assignment and back-pressure.
///
///   ./examples/streaming_noop [writers=4] [readers=2] [steps=5] [queue=2]
#include <cstdio>
#include <thread>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "pic/khi.hpp"
#include "stream/sst.hpp"

int main(int argc, char** argv) {
  using namespace artsci;
  const Config cli = Config::fromArgs(argc, argv);
  const auto writers = static_cast<std::size_t>(cli.getInt("writers", 4));
  const auto readers = static_cast<std::size_t>(cli.getInt("readers", 2));
  const long steps = cli.getInt("steps", 5);
  const auto queue = static_cast<std::size_t>(cli.getInt("queue", 2));

  std::printf("streaming_noop: %zu writer ranks -> %zu reader ranks, "
              "%ld steps, queue=%zu\n\n",
              writers, readers, steps, queue);

  // One KHI simulation; each writer rank streams a slice of the particles
  // (modeling PIConGPU's per-GCD output).
  pic::KhiConfig kcfg;
  kcfg.grid = pic::GridSpec{32, 64, 8, 0.25, 0.25, 0.25};
  kcfg.dt = 0.1;
  kcfg.particlesPerCell = 4;
  pic::SimulationConfig sc;
  sc.grid = kcfg.grid;
  sc.dt = kcfg.dt;
  pic::Simulation sim(sc);
  const auto sp = pic::initializeKhi(sim, kcfg);

  auto engine = std::make_shared<stream::SstEngine>(
      stream::SstParams{writers, readers, queue});

  std::thread producerGroup([&] {
    runRankTeam(writers, [&](std::size_t rank) {
      auto writer = engine->makeWriter(rank);
      for (long s = 0; s < steps; ++s) {
        if (rank == 0) sim.step();  // rank 0 advances the shared sim
        const auto& e = sim.species(sp.electrons);
        const long n = static_cast<long>(e.size());
        const long chunk = n / static_cast<long>(writers);
        const long begin = static_cast<long>(rank) * chunk;
        const long end =
            rank + 1 == writers ? n : begin + chunk;
        writer.beginStep();
        stream::Block b;
        b.offset = {begin};
        b.extent = {end - begin};
        b.payload.assign(e.ux.begin() + begin, e.ux.begin() + end);
        writer.put("ux", std::move(b), {n});
        writer.endStep();
      }
      writer.close();
    });
  });

  std::vector<double> perStepGBs;
  std::mutex statsMutex;
  runRankTeam(readers, [&](std::size_t rank) {
    auto reader = engine->makeReader(rank);
    while (auto step = reader.beginStep()) {
      Timer t;
      std::size_t bytes = 0;
      for (const auto* b : reader.myBlocks(*step, "ux")) {
        double checksum = 0;
        for (double v : b->payload) checksum += v;  // force the read
        (void)checksum;
        bytes += b->bytes();
      }
      const double gbs = static_cast<double>(bytes) / t.seconds() / 1e9;
      {
        std::lock_guard<std::mutex> lock(statsMutex);
        perStepGBs.push_back(gbs);
      }
      reader.endStep();
    }
  });
  producerGroup.join();

  const auto box = stats::boxplot(perStepGBs);
  std::printf("per-reader ingest throughput [GB/s]: %s\n",
              stats::formatBoxPlot(box).c_str());
  std::printf("steps published: %ld, bytes: %.2f MB, writer stalls: %.3f s\n",
              engine->stepsPublished(),
              static_cast<double>(engine->bytesPublished()) / 1e6,
              engine->writerStallSeconds());
  std::printf("\n(The Frontier-scale version of this benchmark is "
              "bench/fig6_streaming.)\n");
  return 0;
}

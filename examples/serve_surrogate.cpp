/// Serving the surrogate: train in-transit on a live KHI simulation, then
/// stand up the batched async inference service and hot-swap improved
/// weights into it while clients keep querying — the paper's in-situ loop
/// closed at inference time (train while serving).
///
///   ./examples/serve_surrogate [steps=30] [requests=300] [workers=2]
#include <atomic>
#include <cstdio>
#include <thread>

#include "common/config.hpp"
#include "core/pipeline.hpp"
#include "serve/server.hpp"

int main(int argc, char** argv) {
  using namespace artsci;
  const Config cli = Config::fromArgs(argc, argv);

  // [1] In-transit training: PIC -> radiation -> stream -> replay -> DDP.
  auto cfg = core::PipelineConfig::quickDemo();
  cfg.producer.totalSteps = cli.getInt("steps", 30);
  std::printf("[1] in-transit training on a live KHI simulation...\n");
  auto run = core::runPipeline(cfg);
  std::printf("    %ld batches trained, loss %.4f -> %.4f\n\n",
              run.result.train.iterations,
              run.result.train.lossHistory.front(),
              run.result.train.lossHistory.back());

  // [2] Publish the trained weights as serving snapshot v1.
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->publish(run.trainer->exportSnapshot(), "after pipeline");
  std::printf("[2] published snapshot v%llu to the model registry\n",
              static_cast<unsigned long long>(registry->version()));

  // [3] Start the inference service: dynamic micro-batching, async futures.
  serve::ServerConfig scfg;
  scfg.policy.maxBatch = 16;
  scfg.policy.maxWaitMicros = 300;
  scfg.workers = static_cast<std::size_t>(cli.getInt("workers", 2));
  serve::InferenceServer server(scfg, registry);
  std::printf("[3] serving PredictSpectrum/InvertSpectrum on %zu workers "
              "(maxBatch %ld, maxWait %ld us)\n\n",
              scfg.workers, scfg.policy.maxBatch, scfg.policy.maxWaitMicros);

  // [4] Clients hammer the server while the trainer keeps improving the
  // model and hot-swaps new snapshots into the registry under load.
  const long requests = cli.getInt("requests", 300);
  const long points = cfg.producer.transform.cloudPoints;
  Rng cloudRng(4242);
  std::vector<ml::Real> cloud(static_cast<std::size_t>(points) * 6);
  for (auto& v : cloud) v = cloudRng.normal();

  std::vector<long> perVersion;
  std::atomic<bool> trainingDone{false};
  std::thread client([&] {
    // Windows of concurrent requests (so micro-batches actually form),
    // looping until the trainer finished its hot-swaps — every snapshot
    // version gets queried.
    const long window = scfg.policy.maxBatch;
    long issued = 0;
    while (issued < requests || !trainingDone.load()) {
      std::vector<std::future<serve::InferenceResult>> futs;
      for (long i = 0; i < window; ++i)
        futs.push_back(server.predictSpectrum(cloud));
      issued += window;
      for (auto& f : futs) {
        const serve::InferenceResult res = f.get();
        if (static_cast<std::size_t>(res.snapshotVersion) >=
            perVersion.size())
          perVersion.resize(static_cast<std::size_t>(res.snapshotVersion) + 1);
        ++perVersion[static_cast<std::size_t>(res.snapshotVersion)];
      }
    }
  });
  for (int round = 0; round < 2; ++round) {
    run.trainer->trainIterations(10);  // continual learning on the buffer
    const auto v = registry->publish(run.trainer->exportSnapshot(),
                                     "continual round " +
                                         std::to_string(round + 1));
    std::printf("[4] trained 10 more iterations, hot-swapped snapshot v%llu "
                "(serving never paused)\n",
                static_cast<unsigned long long>(v));
  }
  trainingDone.store(true);
  client.join();
  for (std::size_t v = 1; v < perVersion.size(); ++v)
    if (perVersion[v] > 0)
      std::printf("    %ld responses answered by snapshot v%zu\n",
                  perVersion[v], v);

  // [5] The inverse endpoint: posterior point-cloud draws for a spectrum.
  std::vector<ml::Real> spectrum(
      static_cast<std::size_t>(cfg.model.spectrumDim), 0.0);
  spectrum[spectrum.size() / 2] = 1.0;  // a synthetic single-line spectrum
  const serve::InferenceResult inv = server.invertSpectrum(spectrum).get();
  std::printf("\n[5] invertSpectrum drew a %zu-point posterior cloud from "
              "snapshot v%llu\n",
              inv.values.size() / 6,
              static_cast<unsigned long long>(inv.snapshotVersion));

  // [6] Serving metrics: batching efficiency and tail latency.
  server.shutdown();
  const auto rep = server.metrics();
  std::printf("\n[6] metrics: %llu predict requests in %llu batches "
              "(mean batch %.1f), %llu engine rebuilds\n",
              static_cast<unsigned long long>(rep.predict.completed),
              static_cast<unsigned long long>(rep.predict.batches),
              rep.predict.meanBatchSize,
              static_cast<unsigned long long>(rep.engineSwaps));
  std::printf("    predict latency: %s\n",
              stats::formatLatencySummary(rep.predict.latencyMicros).c_str());
  std::printf("\nThe registry decouples training from serving: snapshots are\n"
              "immutable, publishes are lock-free, and every response is\n"
              "computed entirely by exactly one snapshot version.\n");
  return 0;
}

/// The scientific payload: train in-transit, checkpoint the model, reload
/// it, and solve the ill-posed inverse problem — sample particle
/// distributions that explain an observed radiation spectrum.
///
///   ./examples/inverse_problem [steps=60] [nrep=6] [ckpt=/tmp/artsci.ckpt]
#include <cstdio>
#include <thread>

#include "common/config.hpp"
#include "core/evaluate.hpp"
#include "core/pipeline.hpp"
#include "ml/serialize.hpp"

int main(int argc, char** argv) {
  using namespace artsci;
  const Config cli = Config::fromArgs(argc, argv);
  const std::string ckpt = cli.getString("ckpt", "/tmp/artsci_model.ckpt");

  auto cfg = core::PipelineConfig::quickDemo();
  cfg.producer.totalSteps = cli.getInt("steps", 60);
  cfg.nRep = cli.getInt("nrep", 6);
  cfg.trainer.baseLearningRate = cli.getDouble("lr", 4e-4);

  std::printf("[1] in-transit training on a live KHI simulation...\n");
  auto run = core::runPipeline(cfg);
  std::printf("    %ld batches trained; loss %.4f -> %.4f\n\n",
              run.result.train.iterations,
              run.result.train.lossHistory.front(),
              run.result.train.lossHistory.back());

  // Checkpoint (the one deliberate file write in the workflow).
  std::printf("[2] checkpointing model to %s\n", ckpt.c_str());
  ml::saveParameters(ckpt, run.trainer->model().parameters());

  // Reload into a fresh model to prove the checkpoint is complete.
  Rng initRng(1);
  core::ArtificialScientistModel restored(cfg.model, initRng);
  auto params = restored.parameters();
  ml::loadParameters(ckpt, params);
  std::printf("    restored %ld parameters\n\n", restored.parameterCount());

  // Fresh ground truth to invert.
  std::printf("[3] generating held-out spectra from a fresh simulation...\n");
  core::ProducerConfig pcfg = cfg.producer;
  pcfg.seed = 31337;
  pcfg.totalSteps = 10;
  pcfg.streamEvery = 5;
  auto pEng = std::make_shared<stream::SstEngine>(stream::SstParams{1, 1, 4});
  auto rEng = std::make_shared<stream::SstEngine>(stream::SstParams{1, 1, 4});
  core::KhiStreamProducer producer(pcfg, pEng, rEng);
  std::thread producerThread([&] { producer.run(); });
  openpmd::Series pRead("particles", openpmd::Access::kRead,
                        openpmd::StreamBackend::forReader(pEng, 0));
  openpmd::Series rRead("radiation", openpmd::Access::kRead,
                        openpmd::StreamBackend::forReader(rEng, 0));
  std::vector<core::Sample> samples;
  for (;;) {
    auto itP = pRead.readNextIteration();
    auto itR = rRead.readNextIteration();
    if (!itP || !itR) break;
    for (int r = 0; r < 3; ++r) {
      if (!itP->data.count(core::cloudPath(r))) continue;
      core::Sample s;
      s.cloud = itP->data.at(core::cloudPath(r));
      s.spectrum = itR->data.at(core::spectrumPath(r));
      s.region = r;
      samples.push_back(std::move(s));
    }
  }
  producerThread.join();
  std::printf("    %zu (cloud, spectrum) pairs collected\n\n",
              samples.size());

  std::printf("[4] inverting spectra with the restored model...\n\n");
  Rng rng(7);
  core::EvaluationConfig ecfg;
  ecfg.inversionDraws = 12;
  const auto evals = core::evaluateInversion(
      restored, cfg.producer.transform, samples, ecfg, rng);
  for (const auto& e : evals) {
    std::printf("  region %-12s  mean u_x: truth %+0.4f  predicted %+0.4f\n",
                pic::khiRegionName(e.region), e.meanTruth, e.meanPred);
  }
  std::printf(
      "\nThe ill-posedness is explicit: every inversion call draws new\n"
      "posterior samples N~N(0,1); the distribution over draws (not a\n"
      "single answer) is the model's reconstruction of the dynamics.\n");
  return 0;
}

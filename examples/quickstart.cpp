/// Quickstart: the whole Artificial Scientist in ~30 lines of user code.
///
/// A KHI plasma simulation streams particle phase-space and radiation
/// spectra through in-memory openPMD/nanoSST channels into an ML trainer
/// that learns the radiation -> particle-dynamics inversion on the fly.
///
///   ./examples/quickstart [steps=40] [ranks=2] [nrep=4]
#include <cstdio>

#include "common/config.hpp"
#include "core/pipeline.hpp"
#include "fault/fault.hpp"

int main(int argc, char** argv) {
  using namespace artsci;
  const Config cli = Config::fromArgs(argc, argv);
  // Chaos on demand: ARTSCI_FAULT_PLAN="sst.writer.end_step@3:die" etc.
  // arms the deterministic fault schedule (src/fault) for this run.
  fault::Plan::global().armFromEnv();

  // 1. Configure the pipeline (producer = PIC + radiation detector,
  //    consumer = replay buffer + DDP trainer). quickDemo() is a
  //    CPU-friendly preset; every knob is adjustable.
  auto cfg = core::PipelineConfig::quickDemo();
  cfg.producer.totalSteps = cli.getInt("steps", 40);
  cfg.trainer.ranks = static_cast<std::size_t>(cli.getInt("ranks", 2));
  cfg.nRep = cli.getInt("nrep", 4);

  std::printf("Artificial Scientist quickstart\n");
  std::printf("  KHI box: %ldx%ldx%ld cells, beta=%.1f, %d ppc\n",
              cfg.producer.khi.grid.nx, cfg.producer.khi.grid.ny,
              cfg.producer.khi.grid.nz, cfg.producer.khi.beta,
              cfg.producer.khi.particlesPerCell);
  std::printf("  training: %zu DDP ranks, n_rep=%ld, batch 4 now + 4 replay\n\n",
              cfg.trainer.ranks, cfg.nRep);

  // 2. Run it. The producer and consumer are concurrent applications
  //    coupled only by the stream (loose coupling) — no file I/O.
  auto run = core::runPipeline(cfg);

  // 3. Look at what happened.
  const auto& r = run.result;
  if (r.degraded)
    std::printf("DEGRADED   : %s (model below trained on the data that "
                "arrived)\n",
                r.faultNote.c_str());
  std::printf("streamed   : %ld iterations, %zu samples, %.2f MB in-memory\n",
              r.iterationsStreamed, r.samplesReceived,
              static_cast<double>(r.bytesStreamed) / 1e6);
  std::printf("trained    : %ld batches on %zu ranks in %.2f s\n",
              r.train.iterations, cfg.trainer.ranks, r.train.trainSeconds);
  std::printf("backpressure stalled the simulation for %.3f s\n",
              r.producerStallSeconds);
  if (!r.train.lossHistory.empty()) {
    std::printf("loss       : %.4f -> %.4f (Eq. 1 of the paper)\n",
                r.train.lossHistory.front(), r.train.lossHistory.back());
    std::printf("  chamfer  : %.4f -> %.4f\n", r.train.chamferHistory.front(),
                r.train.chamferHistory.back());
    std::printf("  mse(I)   : %.4f -> %.4f\n", r.train.mseHistory.front(),
                r.train.mseHistory.back());
  }
  std::printf("\nNext: examples/inverse_problem inverts spectra with the "
              "trained model;\nbench/fig9_inversion reproduces the paper's "
              "evaluation.\n");
  return 0;
}

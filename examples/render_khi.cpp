/// Fig 1 homage: render the KHI simulation. Writes a PPM image of the x-y
/// electron density (averaged over z), colored by local flow direction
/// (red = receding, blue = approaching, as in the paper's ISAAC render),
/// and prints an ASCII version of the vortex structure.
///
///   ./examples/render_khi [steps=150] [out=khi.ppm]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <vector>

#include "common/config.hpp"
#include "pic/deposit.hpp"
#include "pic/khi.hpp"

int main(int argc, char** argv) {
  using namespace artsci;
  const Config cli = Config::fromArgs(argc, argv);
  const long steps = cli.getInt("steps", 150);
  const std::string out = cli.getString("out", "khi.ppm");

  pic::KhiConfig kcfg;
  kcfg.grid = pic::GridSpec{48, 96, 4, 0.25, 0.25, 0.25};
  kcfg.dt = 0.1;
  kcfg.particlesPerCell = 4;
  pic::SimulationConfig sc;
  sc.grid = kcfg.grid;
  sc.dt = kcfg.dt;
  pic::Simulation sim(sc);
  const auto sp = pic::initializeKhi(sim, kcfg);

  std::printf("simulating KHI (%ldx%ld), %ld steps...\n", kcfg.grid.nx,
              kcfg.grid.ny, steps);
  sim.run(steps);

  // Per-(x, y) cell: density and mean u_x of electrons (z-averaged).
  const long nx = kcfg.grid.nx, ny = kcfg.grid.ny;
  std::vector<double> density(static_cast<std::size_t>(nx * ny), 0.0);
  std::vector<double> flow(static_cast<std::size_t>(nx * ny), 0.0);
  const auto& e = sim.species(sp.electrons);
  for (std::size_t i = 0; i < e.size(); ++i) {
    const long ix = std::min(nx - 1, static_cast<long>(e.x[i]));
    const long iy = std::min(ny - 1, static_cast<long>(e.y[i]));
    const auto idx = static_cast<std::size_t>(ix * ny + iy);
    density[idx] += e.w[i];
    flow[idx] += e.w[i] * e.ux[i];
  }
  double maxDensity = 1e-12;
  for (std::size_t i = 0; i < density.size(); ++i) {
    if (density[i] > 0) flow[i] /= density[i];
    maxDensity = std::max(maxDensity, density[i]);
  }

  // PPM: columns = x, rows = y; red receding (-x), blue approaching (+x).
  std::ofstream ppm(out, std::ios::binary);
  ppm << "P6\n" << nx << " " << ny << "\n255\n";
  for (long iy = ny - 1; iy >= 0; --iy) {
    for (long ix = 0; ix < nx; ++ix) {
      const auto idx = static_cast<std::size_t>(ix * ny + iy);
      const double bright = density[idx] / maxDensity;
      const double dir = std::clamp(flow[idx] / 0.25, -1.0, 1.0);
      const auto r = static_cast<unsigned char>(
          255.0 * bright * (dir < 0 ? 1.0 : 1.0 - dir));
      const auto g = static_cast<unsigned char>(
          255.0 * bright * (1.0 - std::abs(dir)) * 0.8);
      const auto b = static_cast<unsigned char>(
          255.0 * bright * (dir > 0 ? 1.0 : 1.0 + dir));
      ppm.put(static_cast<char>(r));
      ppm.put(static_cast<char>(g));
      ppm.put(static_cast<char>(b));
    }
  }
  ppm.close();
  std::printf("wrote %s (%ldx%ld)\n\n", out.c_str(), nx, ny);

  // ASCII: flow direction map (downsampled), '>' approaching, '<'
  // receding, 'o' mixed/vortex.
  std::printf("flow structure ('>' approaching, '<' receding, 'o' vortex):\n");
  for (long iy = ny - 2; iy >= 0; iy -= 3) {
    for (long ix = 0; ix < nx; ix += 1) {
      const auto idx = static_cast<std::size_t>(ix * ny + iy);
      const double dir = flow[idx];
      const char c = dir > 0.08 ? '>' : (dir < -0.08 ? '<' : 'o');
      std::putchar(c);
    }
    std::putchar('\n');
  }
  const double eb = sim.solver().magneticEnergy(sim.fieldB());
  std::printf("\nmagnetic field energy (instability marker): %.3e\n", eb);
  return 0;
}

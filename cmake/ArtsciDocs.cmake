# Optional Doxygen API docs for the documented subsystems (src/pic,
# src/serve). Same degrade-gracefully pattern as bench_micro_ops: when
# doxygen isn't installed the `docs` target simply doesn't exist and the
# configure prints a status message.
#
#   cmake --build build --target docs   ->  build/docs/html/index.html
#
# Doc warnings are errors (the CI gate): a \param that doesn't match the
# signature, an unresolved reference, or malformed markup fails the build.
# WARN_IF_UNDOCUMENTED stays off — the gate enforces that what *is*
# documented is correct, not that every trivial accessor carries a brief.

find_package(Doxygen QUIET)

if(DOXYGEN_FOUND)
  set(DOXYGEN_OUTPUT_DIRECTORY "${PROJECT_BINARY_DIR}/docs")
  set(DOXYGEN_GENERATE_HTML YES)
  set(DOXYGEN_GENERATE_LATEX NO)
  set(DOXYGEN_FILE_PATTERNS "*.hpp")
  set(DOXYGEN_RECURSIVE YES)
  set(DOXYGEN_EXTRACT_ALL NO)
  set(DOXYGEN_WARN_IF_UNDOCUMENTED NO)
  set(DOXYGEN_WARN_IF_DOC_ERROR YES)
  set(DOXYGEN_WARN_AS_ERROR YES)
  set(DOXYGEN_QUIET YES)
  # Repo-rooted include style ("pic/deposit.hpp") for the file list.
  set(DOXYGEN_STRIP_FROM_PATH "${PROJECT_SOURCE_DIR}/src")
  set(DOXYGEN_PROJECT_BRIEF "${PROJECT_DESCRIPTION}")

  doxygen_add_docs(docs
    "${PROJECT_SOURCE_DIR}/src/pic"
    "${PROJECT_SOURCE_DIR}/src/serve"
    COMMENT "Rendering API docs (src/pic, src/serve) with warnings-as-errors")
else()
  message(STATUS "artsci: doxygen not found — skipping the docs target")
endif()

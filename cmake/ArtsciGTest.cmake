# Locate GoogleTest, trying in order:
#  1. an installed package (config or find-module),
#  2. a distro source tree under /usr/src/googletest,
#  3. FetchContent from upstream (needs network; last resort).
# Guarantees the targets GTest::gtest and GTest::gtest_main exist.

# Prefer the system install: PATH-derived prefixes (conda etc.) can shadow
# the toolchain's runtime libraries in the rpath of every test executable.
find_package(GTest QUIET CONFIG PATHS
  /usr/lib/x86_64-linux-gnu/cmake/GTest
  /usr/lib/cmake/GTest
  /usr/local/lib/cmake/GTest
  NO_DEFAULT_PATH)
if(NOT TARGET GTest::gtest)
  find_package(GTest QUIET)
endif()

if(NOT TARGET GTest::gtest AND EXISTS "/usr/src/googletest/CMakeLists.txt")
  message(STATUS "artsci: building GoogleTest from /usr/src/googletest")
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  add_subdirectory(/usr/src/googletest
    "${CMAKE_BINARY_DIR}/_deps/googletest" EXCLUDE_FROM_ALL)
endif()

if(NOT TARGET GTest::gtest)
  message(STATUS "artsci: fetching GoogleTest v1.14.0 from upstream")
  include(FetchContent)
  FetchContent_Declare(googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.zip
    DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  # MSVC runtime sanity for Windows builds; harmless elsewhere.
  set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
endif()

# Distro source trees export plain `gtest`/`gtest_main`; normalize to the
# namespaced targets everything downstream links against.
if(NOT TARGET GTest::gtest AND TARGET gtest)
  add_library(GTest::gtest ALIAS gtest)
endif()
if(NOT TARGET GTest::gtest_main AND TARGET gtest_main)
  add_library(GTest::gtest_main ALIAS gtest_main)
endif()

if(NOT TARGET GTest::gtest)
  message(FATAL_ERROR
    "artsci: GoogleTest unavailable — install it or allow FetchContent")
endif()

# Shared compile/link settings for every artsci target.
#
# Defines the INTERFACE target `artsci::build_flags` carrying:
#  * the repo-rooted include path (headers are included as "module/file.hpp")
#  * the -Wall -Wextra warning baseline (+ -Werror with ARTSCI_WERROR=ON)
#  * sanitizer instrumentation when ARTSCI_SANITIZE is set
#    (e.g. -DARTSCI_SANITIZE=address,undefined)
#  * Threads, and OpenMP when the toolchain provides it

add_library(artsci_build_flags INTERFACE)
add_library(artsci::build_flags ALIAS artsci_build_flags)

target_include_directories(artsci_build_flags INTERFACE
  "${PROJECT_SOURCE_DIR}/src")

target_compile_options(artsci_build_flags INTERFACE
  $<$<CXX_COMPILER_ID:GNU,Clang,AppleClang>:-Wall -Wextra>
  $<$<AND:$<BOOL:${ARTSCI_WERROR}>,$<CXX_COMPILER_ID:GNU,Clang,AppleClang>>:-Werror>)

target_link_libraries(artsci_build_flags INTERFACE Threads::Threads)

if(OpenMP_CXX_FOUND)
  target_link_libraries(artsci_build_flags INTERFACE OpenMP::OpenMP_CXX)
else()
  message(STATUS "artsci: OpenMP not found — building serial fallback")
endif()

if(ARTSCI_SANITIZE)
  set(_artsci_san_flags "-fsanitize=${ARTSCI_SANITIZE}")
  # Directory scope (this file is included from the top level), NOT the
  # interface target: in-tree third-party builds — the GoogleTest source
  # tree added by ArtsciGTest.cmake — must be instrumented too. TSan in
  # particular aborts at startup when uninstrumented objects are linked
  # into an instrumented executable.
  add_compile_options(${_artsci_san_flags} -fno-omit-frame-pointer
    -fno-sanitize-recover=all)
  add_link_options(${_artsci_san_flags})
  message(STATUS "artsci: sanitizers enabled: ${ARTSCI_SANITIZE}")
endif()

#include <gtest/gtest.h>

#include "cluster/collectives.hpp"
#include "cluster/netsim.hpp"
#include "cluster/placement.hpp"

namespace artsci::cluster {
namespace {

TEST(Topology, FrontierSpec) {
  const auto f = ClusterSpec::frontier();
  EXPECT_EQ(f.totalGpus(), 9408 * 4);
  EXPECT_EQ(f.node.gcdsPerNode, 8);
  // Paper: full-system FOM 65.3 TeraUpdates/s on 36864 GPUs.
  EXPECT_NEAR(f.node.perGpuFom * 36864, 65.3e12, 1e9);
}

TEST(Topology, SummitSlowerPerGpu) {
  EXPECT_LT(ClusterSpec::summit().node.perGpuFom,
            ClusterSpec::frontier().node.perGpuFom);
}

TEST(NetSim, AllAtOnceFailsBeyondThreshold) {
  const auto frontier = ClusterSpec::frontier();
  Rng rng(1);
  const auto plane = DataPlaneModel::libfabricAllAtOnce();
  const auto ok =
      simulateStreamStep(frontier, 4096, plane, StreamStepConfig{}, rng);
  EXPECT_TRUE(ok.completed);
  const auto fail =
      simulateStreamStep(frontier, 9126, plane, StreamStepConfig{}, rng);
  EXPECT_FALSE(fail.completed);
}

TEST(NetSim, BatchedScalesToFullSystem) {
  const auto frontier = ClusterSpec::frontier();
  Rng rng(2);
  const auto plane = DataPlaneModel::libfabricBatched();
  const auto r =
      simulateStreamStep(frontier, 9126, plane, StreamStepConfig{}, rng);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.totalThroughput, 0.0);
}

TEST(NetSim, BatchingCostsThroughput) {
  // Fig 6: batched enqueue scales but at a notable per-node cost.
  const auto frontier = ClusterSpec::frontier();
  Rng rngA(3), rngB(3);
  const auto all = simulateStreamStep(
      frontier, 4096, DataPlaneModel::libfabricAllAtOnce(),
      StreamStepConfig{}, rngA);
  const auto batched = simulateStreamStep(
      frontier, 4096, DataPlaneModel::libfabricBatched(),
      StreamStepConfig{}, rngB);
  EXPECT_GT(all.perNodeThroughput, 1.4 * batched.perNodeThroughput);
}

TEST(NetSim, PerNodeThroughputDegradesWithScale) {
  const auto frontier = ClusterSpec::frontier();
  const auto plane = DataPlaneModel::mpi();
  Rng rng(4);
  std::vector<double> at4096, at9126;
  for (int i = 0; i < 20; ++i) {
    Rng r1(100 + i), r2(200 + i);
    at4096.push_back(simulateStreamStep(frontier, 4096, plane,
                                        StreamStepConfig{}, r1)
                         .perNodeThroughput);
    at9126.push_back(simulateStreamStep(frontier, 9126, plane,
                                        StreamStepConfig{}, r2)
                         .perNodeThroughput);
  }
  double m4096 = 0, m9126 = 0;
  for (double v : at4096) m4096 += v;
  for (double v : at9126) m9126 += v;
  EXPECT_GT(m4096 / 20, m9126 / 20);
}

TEST(NetSim, TotalThroughputStillRisesWithScale) {
  const auto frontier = ClusterSpec::frontier();
  const auto plane = DataPlaneModel::mpi();
  Rng r1(5), r2(6);
  const auto a =
      simulateStreamStep(frontier, 4096, plane, StreamStepConfig{}, r1);
  const auto b =
      simulateStreamStep(frontier, 9126, plane, StreamStepConfig{}, r2);
  EXPECT_GT(b.totalThroughput, a.totalThroughput);
}

TEST(NetSim, FullScaleBeatsOrionFilesystem) {
  // The paper's headline: 20-30 TB/s streamed vs 10 TB/s Orion.
  const auto frontier = ClusterSpec::frontier();
  Rng rng(7);
  const auto r = simulateStreamStep(frontier, 9126, DataPlaneModel::mpi(),
                                    StreamStepConfig{}, rng);
  EXPECT_GT(r.totalThroughput, frontier.filesystemBandwidth);
}

TEST(NetSim, SeriesReturnsRequestedSteps) {
  const auto frontier = ClusterSpec::frontier();
  Rng rng(8);
  const auto s = simulateStreamSeries(frontier, 4096,
                                      DataPlaneModel::mpi(),
                                      StreamStepConfig{}, 5, rng);
  EXPECT_EQ(s.size(), 5u);
}

TEST(Collectives, RingAllReduceScalesWithBytes) {
  const double t1 = ringAllReduceSeconds(8, 1e6, 50e9, 1e-6);
  const double t2 = ringAllReduceSeconds(8, 2e6, 50e9, 1e-6);
  EXPECT_GT(t2, t1);
  EXPECT_EQ(ringAllReduceSeconds(1, 1e9, 50e9, 1e-6), 0.0);
}

TEST(Collectives, AllReduceLatencyBoundAtManyRanks) {
  // With tiny payloads the latency term dominates and grows ~2p.
  const double t64 = ringAllReduceSeconds(64, 8, 50e9, 1e-5);
  const double t128 = ringAllReduceSeconds(128, 8, 50e9, 1e-5);
  EXPECT_NEAR(t128 / t64, 2.0, 0.05);
}

TEST(Collectives, TrainingEfficiencyMatchesPaperShape) {
  // Fig 8: ~100% at 8 nodes (32 GCDs) falling to ~35% at 96 nodes (384).
  const auto frontier = ClusterSpec::frontier();
  const TrainingScalingModel model;
  const double e32 = trainingEfficiency(frontier, 32, model);
  const double e384 = trainingEfficiency(frontier, 384, model);
  EXPECT_NEAR(e32, 1.0, 1e-9);
  EXPECT_GT(e384, 0.25);
  EXPECT_LT(e384, 0.50);
  // Monotone decline.
  double prev = 1.0;
  for (long gcds : {64L, 128L, 256L, 384L}) {
    const double e = trainingEfficiency(frontier, gcds, model);
    EXPECT_LT(e, prev);
    prev = e;
  }
}

TEST(Collectives, AllReduceDeficitRoughlyThirty) {
  // The paper attributes ~30% of the deficit to the all-reduce.
  const auto frontier = ClusterSpec::frontier();
  const TrainingScalingModel model;
  const auto c = trainingBatchCost(frontier, 384, model);
  const double deficitShare = c.allReduceExposed / c.total;
  EXPECT_GT(deficitShare, 0.15);
  EXPECT_LT(deficitShare, 0.45);
}

TEST(Collectives, PicFomNearLinear) {
  const auto frontier = ClusterSpec::frontier();
  const double f24 = picFomModel(frontier, 24);
  const double f36864 = picFomModel(frontier, 36864);
  // Weak scaling: three orders of magnitude more GPUs, nearly
  // proportional FOM (within 15% of linear).
  const double linear = f24 * 36864.0 / 24.0;
  EXPECT_GT(f36864, 0.85 * linear);
  EXPECT_LE(f36864, linear);
  // Absolute calibration: full Frontier lands near 65.3 TeraUpdates/s.
  EXPECT_NEAR(f36864, 65.3e12, 0.12 * 65.3e12);
}

TEST(Placement, IntraNodeAvoidsNic) {
  const auto frontier = ClusterSpec::frontier();
  PlacementConfig intra;
  intra.placement = Placement::kIntraNode;
  PlacementConfig inter;
  inter.placement = Placement::kInterNode;
  const double bytes = 5.86e9;
  const auto ci = placementCost(frontier, intra, bytes);
  const auto cx = placementCost(frontier, inter, bytes);
  EXPECT_LT(ci.bytesOverNic, 0.2 * bytes);
  EXPECT_EQ(cx.bytesOverNic, bytes);
  EXPECT_LT(ci.transferSeconds, cx.transferSeconds);
}

TEST(Placement, GcdSplitValidated) {
  const auto frontier = ClusterSpec::frontier();
  PlacementConfig bad;
  bad.producerGcdsPerNode = 6;
  bad.consumerGcdsPerNode = 6;  // 12 > 8 GCDs
  EXPECT_THROW(placementCost(frontier, bad, 1e9), ContractError);
}

}  // namespace
}  // namespace artsci::cluster

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ml/gradcheck.hpp"
#include "ml/layers.hpp"

namespace artsci::ml {
namespace {

TEST(Linear, ShapesAndBias) {
  Rng rng(1);
  Linear layer(4, 3, rng);
  Tensor x = Tensor::randn({5, 4}, rng);
  Tensor y = layer.forward(x);
  EXPECT_EQ(y.shape(), (Shape{5, 3}));
  EXPECT_EQ(layer.parameters().size(), 2u);
  EXPECT_EQ(layer.parameterCount(), 4 * 3 + 3);
}

TEST(Linear, HandlesRank3Input) {
  Rng rng(2);
  Linear layer(6, 16, rng);
  Tensor x = Tensor::randn({2, 10, 6}, rng);
  Tensor y = layer.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 10, 16}));
}

TEST(Linear, GradCheck) {
  Rng rng(3);
  Linear layer(3, 2, rng);
  Tensor x = Tensor::randn({4, 3}, rng);
  std::vector<Tensor> inputs{x, layer.weight(), layer.biasTensor()};
  auto loss = [&](const std::vector<Tensor>& in) {
    // Use the layer's tensors directly: in[0] is x.
    return sumAll(square(add(matmul(in[0], in[1]), in[2])));
  };
  EXPECT_TRUE(gradCheck(loss, inputs).ok);
}

TEST(Linear, RejectsWrongInputWidth) {
  Rng rng(4);
  Linear layer(3, 2, rng);
  EXPECT_THROW(layer.forward(Tensor::zeros({5, 4})), ContractError);
}

TEST(Mlp, ForwardShapeAndParamCount) {
  Rng rng(5);
  Mlp mlp({8, 16, 4}, rng);
  Tensor y = mlp.forward(Tensor::randn({3, 8}, rng));
  EXPECT_EQ(y.shape(), (Shape{3, 4}));
  EXPECT_EQ(mlp.parameterCount(), 8 * 16 + 16 + 16 * 4 + 4);
}

TEST(Mlp, OutputActivationTanhBounds) {
  Rng rng(6);
  Mlp mlp({4, 8, 2}, rng, Activation::kLeakyRelu, Activation::kTanh);
  Tensor y = mlp.forward(Tensor::randn({10, 4}, rng, 5.0));
  for (Real v : y.data()) {
    EXPECT_LE(v, 1.0);
    EXPECT_GE(v, -1.0);
  }
}

TEST(PointNetEncoder, MomentShapes) {
  Rng rng(7);
  PointNetEncoder::Config cfg;
  cfg.channels = {6, 8, 16};
  cfg.headHidden = 12;
  cfg.latentDim = 10;
  PointNetEncoder enc(cfg, rng);
  auto m = enc.forward(Tensor::randn({3, 20, 6}, rng));
  EXPECT_EQ(m.mu.shape(), (Shape{3, 10}));
  EXPECT_EQ(m.logvar.shape(), (Shape{3, 10}));
}

TEST(PointNetEncoder, TranspositionInvariance) {
  // Max-pooling over particles makes the encoding invariant to particle
  // order — the property the paper's architecture is built around.
  Rng rng(8);
  PointNetEncoder::Config cfg;
  cfg.channels = {6, 8, 16};
  cfg.headHidden = 12;
  cfg.latentDim = 10;
  PointNetEncoder enc(cfg, rng);
  Tensor x = Tensor::randn({1, 12, 6}, rng);
  // Rotate particle order by 5.
  Tensor xPerm = Tensor::zeros({1, 12, 6});
  for (long n = 0; n < 12; ++n)
    for (long c = 0; c < 6; ++c)
      xPerm.data()[static_cast<std::size_t>(((n + 5) % 12) * 6 + c)] =
          x.data()[static_cast<std::size_t>(n * 6 + c)];
  auto m1 = enc.forward(x);
  auto m2 = enc.forward(xPerm);
  for (std::size_t i = 0; i < m1.mu.data().size(); ++i)
    EXPECT_NEAR(m1.mu.data()[i], m2.mu.data()[i], 1e-12);
}

TEST(PointNetEncoder, LogvarBounded) {
  Rng rng(9);
  PointNetEncoder::Config cfg;
  cfg.channels = {6, 8};
  cfg.headHidden = 8;
  cfg.latentDim = 4;
  PointNetEncoder enc(cfg, rng);
  auto m = enc.forward(Tensor::randn({2, 5, 6}, rng, 100.0));
  for (Real v : m.logvar.data()) {
    EXPECT_LE(v, 10.0);
    EXPECT_GE(v, -10.0);
  }
}

TEST(PointNetEncoder, SampleUsesReparameterization) {
  Rng rng(10);
  PointNetEncoder::Config cfg;
  cfg.channels = {6, 8};
  cfg.headHidden = 8;
  cfg.latentDim = 4;
  PointNetEncoder enc(cfg, rng);
  auto m = enc.forward(Tensor::randn({2, 5, 6}, rng));
  Tensor z = enc.sample(m, rng);
  EXPECT_EQ(z.shape(), (Shape{2, 4}));
  EXPECT_TRUE(z.requiresGrad());  // gradient flows to encoder
}

TEST(PointNetEncoder, PaperScaleArchitectureConstructs) {
  // The full paper architecture: channels 6..608, heads 608->544->544.
  Rng rng(11);
  PointNetEncoder enc(PointNetEncoder::Config{}, rng);
  auto m = enc.forward(Tensor::randn({1, 64, 6}, rng));
  EXPECT_EQ(m.mu.shape(), (Shape{1, 544}));
  // 1x1 conv stack + two heads
  EXPECT_GT(enc.parameterCount(), 500000);
}

TEST(VoxelShuffle, PermutationIsBijection) {
  for (long V : {1L, 2L, 4L}) {
    for (long C : {1L, 3L, 8L}) {
      const auto perm = makeVoxelShufflePermutation(V, C);
      std::vector<bool> seen(perm.size(), false);
      for (long p : perm) {
        ASSERT_GE(p, 0);
        ASSERT_LT(p, static_cast<long>(perm.size()));
        ASSERT_FALSE(seen[static_cast<std::size_t>(p)]);
        seen[static_cast<std::size_t>(p)] = true;
      }
    }
  }
}

TEST(VoxelShuffle, MapsChildOffsetsSpatially) {
  // V=1, C=1: 8 inputs (one voxel, 8 children) -> 2x2x2 grid.
  const auto perm = makeVoxelShufflePermutation(1, 1);
  // output p=(px*2+py)*2+pz with px=kx etc., input = k = (kx*2+ky)*2+kz.
  // For V=1 they coincide: perm must be identity.
  for (std::size_t i = 0; i < perm.size(); ++i)
    EXPECT_EQ(perm[i], static_cast<long>(i));
}

TEST(VoxelDecoder, OutputShapeMatchesPaper) {
  Rng rng(12);
  VoxelDecoder::Config cfg;  // paper defaults: 4^3 x16 -> ... -> 4096 x 6
  cfg.latentDim = 32;        // smaller latent for test speed
  VoxelDecoder dec(cfg, rng);
  EXPECT_EQ(dec.pointCount(), 4096);
  Tensor pc = dec.forward(Tensor::randn({2, 32}, rng));
  EXPECT_EQ(pc.shape(), (Shape{2, 4096, 6}));
}

TEST(VoxelDecoder, GradientFlowsToLatent) {
  Rng rng(13);
  VoxelDecoder::Config cfg;
  cfg.latentDim = 8;
  cfg.baseGrid = 2;
  cfg.channels = {4, 3};
  VoxelDecoder dec(cfg, rng);
  Tensor z = Tensor::randn({1, 8}, rng);
  z.setRequiresGrad(true);
  Tensor pc = dec.forward(z);
  sumAll(square(pc)).backward();
  Real gradNorm = 0;
  for (Real g : z.grad()) gradNorm += g * g;
  EXPECT_GT(gradNorm, 0.0);
}

TEST(VoxelDecoder, SmallConfigGradCheck) {
  Rng rng(14);
  VoxelDecoder::Config cfg;
  cfg.latentDim = 4;
  cfg.baseGrid = 1;
  cfg.channels = {2, 2};
  VoxelDecoder dec(cfg, rng);
  Tensor z = Tensor::randn({2, 4}, rng);
  auto loss = [&](const std::vector<Tensor>& in) {
    return sumAll(square(dec.forward(in[0])));
  };
  EXPECT_TRUE(gradCheck(loss, {z}).ok);
}

}  // namespace
}  // namespace artsci::ml

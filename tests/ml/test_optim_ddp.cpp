#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "ml/ddp.hpp"
#include "ml/layers.hpp"
#include "ml/losses.hpp"
#include "ml/optim.hpp"
#include "ml/serialize.hpp"

namespace artsci::ml {
namespace {

TEST(Adam, ConvergesOnQuadratic) {
  // minimize f(w) = ||w - target||^2
  Tensor w = Tensor::full({4}, 0.0, true);
  Tensor target = Tensor::fromVector({4}, {1.0, -2.0, 0.5, 3.0});
  Adam opt({ParamGroup{{w}, 0.05}}, AdamConfig{});
  for (int i = 0; i < 2000; ++i) {
    opt.zeroGrad();
    Tensor loss = meanAll(square(sub(w, target)));
    loss.backward();
    opt.step();
  }
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(w.data()[i], target.data()[i], 1e-2);
}

TEST(Adam, WeightDecayShrinksUnusedParams) {
  Tensor w = Tensor::full({1}, 1.0, true);
  AdamConfig cfg;
  cfg.weightDecay = 0.1;
  Adam opt({ParamGroup{{w}, 0.01}}, cfg);
  for (int i = 0; i < 500; ++i) {
    opt.zeroGrad();
    w.zeroGrad();  // gradient is exactly zero; only decay acts
    opt.step();
  }
  EXPECT_LT(std::abs(w.data()[0]), 0.5);
}

TEST(Adam, PerGroupLearningRates) {
  // The paper trains VAE layers at a higher rate (factor m_VAE) than the
  // INN. Verify groups advance at different speeds.
  Tensor fast = Tensor::full({1}, 0.0, true);
  Tensor slow = Tensor::full({1}, 0.0, true);
  Adam opt({ParamGroup{{fast}, 0.1}, ParamGroup{{slow}, 0.001}});
  for (int i = 0; i < 50; ++i) {
    opt.zeroGrad();
    Tensor loss = add(square(addScalar(fast, -5.0)),
                      square(addScalar(slow, -5.0)));
    sumAll(loss).backward();
    opt.step();
  }
  EXPECT_GT(fast.data()[0], slow.data()[0] * 5);
}

TEST(Adam, SetLearningRate) {
  Tensor w = Tensor::full({1}, 0.0, true);
  Adam opt({ParamGroup{{w}, 0.1}});
  opt.setLearningRate(0, 0.5);
  EXPECT_DOUBLE_EQ(opt.learningRate(0), 0.5);
}

TEST(SqrtLrRule, ScalesBySqrtOfBatchRatio) {
  // base batch 8 at 1e-6, total batch 3072 (paper's 384 GCDs)
  const Real lr = sqrtScaledLearningRate(1e-6, 3072, 8);
  EXPECT_NEAR(lr, 1e-6 * std::sqrt(384.0), 1e-12);
}

TEST(Communicator, AllReduceMeanAveragesRankValues) {
  constexpr std::size_t kRanks = 4;
  Communicator comm(kRanks);
  std::vector<std::vector<Real>> results(kRanks);
  runRankTeam(kRanks, [&](std::size_t rank) {
    std::vector<Real> buf{static_cast<Real>(rank), 10.0};
    comm.allReduceMean(rank, buf);
    results[rank] = buf;
  });
  for (std::size_t r = 0; r < kRanks; ++r) {
    EXPECT_NEAR(results[r][0], (0 + 1 + 2 + 3) / 4.0, 1e-12);
    EXPECT_NEAR(results[r][1], 10.0, 1e-12);
  }
}

TEST(Communicator, AllReduceRepeatedCalls) {
  constexpr std::size_t kRanks = 3;
  Communicator comm(kRanks);
  std::atomic<bool> bad{false};
  runRankTeam(kRanks, [&](std::size_t rank) {
    for (int iter = 0; iter < 20; ++iter) {
      std::vector<Real> buf{static_cast<Real>(rank + iter)};
      comm.allReduceMean(rank, buf);
      const Real expected = (0 + 1 + 2) / 3.0 + iter;
      if (std::abs(buf[0] - expected) > 1e-12) bad = true;
    }
  });
  EXPECT_FALSE(bad.load());
}

TEST(Communicator, AllGatherConcatenatesInRankOrder) {
  constexpr std::size_t kRanks = 3;
  Communicator comm(kRanks);
  std::vector<std::vector<Real>> results(kRanks);
  runRankTeam(kRanks, [&](std::size_t rank) {
    std::vector<Real> local(rank + 1, static_cast<Real>(rank));
    results[rank] = comm.allGather(rank, local);
  });
  const std::vector<Real> expected{0, 1, 1, 2, 2, 2};
  for (const auto& r : results) EXPECT_EQ(r, expected);
}

TEST(Communicator, SingleRankIsNoop) {
  Communicator comm(1);
  std::vector<Real> buf{5.0};
  comm.allReduceMean(0, buf);
  EXPECT_EQ(buf[0], 5.0);
  EXPECT_EQ(comm.allGather(0, buf), buf);
}

TEST(Communicator, TracksCommunicationTime) {
  Communicator comm(2);
  runRankTeam(2, [&](std::size_t rank) {
    std::vector<Real> buf(1000, 1.0);
    for (int i = 0; i < 5; ++i) comm.allReduceMean(rank, buf);
  });
  EXPECT_GT(comm.communicationSeconds(0), 0.0);
  comm.resetTimers();
  EXPECT_EQ(comm.communicationSeconds(0), 0.0);
}

TEST(Ddp, GradientAveragingMatchesSerialBigBatch) {
  // Data-parallel training on 2 ranks with per-rank batch 2 must produce
  // the same gradients as serial training on the concatenated batch of 4
  // (for a loss that averages over the batch).
  Rng rng(42);
  Tensor xAll = Tensor::randn({4, 3}, rng);
  Tensor yAll = Tensor::randn({4, 2}, rng);

  // Serial reference.
  Rng rngRef(7);
  Linear ref(3, 2, rngRef);
  {
    Tensor pred = ref.forward(xAll);
    mseLoss(pred, yAll).backward();
  }

  // DDP: same init (same seed), half the batch per rank.
  constexpr std::size_t kRanks = 2;
  Communicator comm(kRanks);
  std::vector<std::unique_ptr<Linear>> replicas(kRanks);
  for (std::size_t r = 0; r < kRanks; ++r) {
    Rng rngR(7);
    replicas[r] = std::make_unique<Linear>(3, 2, rngR);
  }
  runRankTeam(kRanks, [&](std::size_t rank) {
    Tensor x = slice(xAll, 0, static_cast<long>(rank) * 2,
                     static_cast<long>(rank) * 2 + 2).detach();
    Tensor y = slice(yAll, 0, static_cast<long>(rank) * 2,
                     static_cast<long>(rank) * 2 + 2).detach();
    Tensor pred = replicas[rank]->forward(x);
    mseLoss(pred, y).backward();
    allReduceGradients(comm, rank, replicas[rank]->parameters());
  });

  const auto refParams = ref.parameters();
  for (std::size_t r = 0; r < kRanks; ++r) {
    const auto repParams = replicas[r]->parameters();
    for (std::size_t p = 0; p < refParams.size(); ++p) {
      ASSERT_EQ(repParams[p].grad().size(), refParams[p].grad().size());
      for (std::size_t i = 0; i < refParams[p].grad().size(); ++i) {
        EXPECT_NEAR(repParams[p].grad()[i], refParams[p].grad()[i], 1e-10)
            << "rank " << r << " param " << p << " elem " << i;
      }
    }
  }
}

TEST(Ddp, BroadcastParametersSynchronizesReplicas) {
  constexpr std::size_t kRanks = 3;
  Communicator comm(kRanks);
  std::vector<std::unique_ptr<Linear>> replicas(kRanks);
  for (std::size_t r = 0; r < kRanks; ++r) {
    Rng rngR(100 + r);  // deliberately different init
    replicas[r] = std::make_unique<Linear>(4, 4, rngR);
  }
  runRankTeam(kRanks, [&](std::size_t rank) {
    broadcastParameters(comm, rank, replicas[rank]->parameters());
  });
  const auto& ref = replicas[0]->parameters();
  for (std::size_t r = 1; r < kRanks; ++r) {
    const auto params = replicas[r]->parameters();
    for (std::size_t p = 0; p < ref.size(); ++p)
      for (std::size_t i = 0; i < ref[p].data().size(); ++i)
        EXPECT_NEAR(params[p].data()[i], ref[p].data()[i], 1e-12);
  }
}

TEST(Serialize, RoundTripPreservesValues) {
  Rng rng(1);
  Linear a(5, 3, rng);
  const std::string path = "/tmp/artsci_test_ckpt.bin";
  saveParameters(path, a.parameters());

  Rng rng2(2);
  Linear b(5, 3, rng2);
  auto params = b.parameters();
  loadParameters(path, params);
  const auto ref = a.parameters();
  for (std::size_t p = 0; p < ref.size(); ++p)
    EXPECT_EQ(params[p].data(), ref[p].data());
  std::remove(path.c_str());
}

TEST(Serialize, ShapeMismatchRejected) {
  Rng rng(1);
  Linear a(5, 3, rng);
  const std::string path = "/tmp/artsci_test_ckpt2.bin";
  saveParameters(path, a.parameters());
  Linear b(3, 5, rng);
  auto params = b.parameters();
  EXPECT_THROW(loadParameters(path, params), ContractError);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  std::vector<Tensor> params;
  EXPECT_THROW(loadParameters("/tmp/definitely_missing_artsci.bin", params),
               ContractError);
}

}  // namespace
}  // namespace artsci::ml

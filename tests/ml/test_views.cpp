/// Tests of the PR 9 stride/view machinery: Shape/Strides small-buffer
/// semantics and logical<->storage round trips, zero-copy transpose /
/// slice / broadcast views (aliasing, guards), bitwise agreement of the
/// view path against the materializing path, and finite-difference
/// gradient checks through view-built graphs.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "ml/gradcheck.hpp"
#include "ml/ops.hpp"
#include "ml/shape.hpp"
#include "ml/tensor.hpp"

namespace artsci::ml {
namespace {

/// RAII toggle for execOptions().useViews so a failing assertion cannot
/// leak the off state into later tests.
struct ViewsOff {
  ViewsOff() { execOptions().useViews = false; }
  ~ViewsOff() { execOptions().useViews = true; }
};

Tensor randomTensor(Shape shape, Rng& rng, bool requiresGrad = false) {
  return Tensor::randn(std::move(shape), rng, Real(1), requiresGrad);
}

// --- Shape / Strides value types ------------------------------------------

TEST(ShapeType, SmallBufferOperations) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s.back(), 4);
  s.push_back(5);
  EXPECT_EQ(s.size(), 4u);
  s.pop_back();
  s.erase(s.begin() + 1);
  EXPECT_EQ(s, (Shape{2, 4}));
  s.resize(3);
  EXPECT_EQ(s[2], 0);  // resize zero-fills
  Shape copy = s;
  EXPECT_EQ(copy, s);
  copy[0] = 7;
  EXPECT_NE(copy, s);  // value semantics, no shared storage
}

TEST(ShapeType, RowMajorStrides) {
  EXPECT_EQ(rowMajorStrides({2, 3, 4}), (Strides{12, 4, 1}));
  EXPECT_EQ(rowMajorStrides({5}), (Strides{1}));
  EXPECT_EQ(rowMajorStrides({}), (Strides{}));
}

TEST(ShapeType, LogicalToStorageRoundTrip) {
  // For row-major strides the mapping must be the identity...
  const Shape shape{3, 4, 5};
  const Strides dense = rowMajorStrides(shape);
  for (long i = 0; i < 60; ++i)
    EXPECT_EQ(logicalToStorage(shape, dense, i), i);
  // ...and for transposed strides it must visit the transposed slots.
  const Strides t{1, 5, 20};  // logical [3,4,5] walking a [5,4,3] buffer
  EXPECT_EQ(logicalToStorage(shape, t, 0), 0);
  // logical (i,j,k) -> storage i + 5j + 20k
  EXPECT_EQ(logicalToStorage(shape, t, /*i=1,j=2,k=3*/ 1 * 20 + 2 * 5 + 3),
            1 + 5 * 2 + 20 * 3);
}

// --- view construction, aliasing, guards ----------------------------------

TEST(Views, TransposeIsZeroCopyAndAliases) {
  Tensor a = Tensor::fromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = transpose2d(a);
  ASSERT_TRUE(t.isView());
  EXPECT_FALSE(t.isContiguous());
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.strides(), (Strides{1, 3}));
  EXPECT_EQ(t.at(0), Real(1));
  EXPECT_EQ(t.at(1), Real(4));  // t[0,1] = a[1,0]
  // Aliasing: mutating the base is visible through the view.
  a.data()[3] = Real(40);
  EXPECT_EQ(t.at(1), Real(40));
  // The vector accessor is heap-only; views must trip the guard.
  EXPECT_THROW(t.data(), ContractError);
}

TEST(Views, SliceFastMatchesCopyingSlice) {
  Rng rng(5);
  Tensor a = randomTensor({4, 6}, rng);
  Tensor v = sliceFast(a, -1, 2, 5);
  Tensor c = slice(a, -1, 2, 5);
  ASSERT_TRUE(v.isView());
  EXPECT_EQ(v.shape(), (Shape{4, 3}));
  EXPECT_EQ(v.strides(), (Strides{6, 1}));  // base strides, offset 2
  EXPECT_EQ(v.toVector(), c.toVector());    // bitwise: pure data movement
}

TEST(Views, RowSliceStaysContiguous) {
  Rng rng(6);
  Tensor a = randomTensor({5, 3}, rng);
  Tensor v = sliceFast(a, 0, 1, 4);
  ASSERT_TRUE(v.isView());
  EXPECT_TRUE(v.isContiguous());  // whole rows: dense strides, offset 3
  EXPECT_EQ(v.toVector(), slice(a, 0, 1, 4).toVector());
}

TEST(Views, BroadcastToIsStrideZeroView) {
  Tensor a = Tensor::fromVector({3}, {1, 2, 3});
  Tensor b = broadcastTo(a, {4, 3});
  ASSERT_TRUE(b.isView());
  EXPECT_EQ(b.strides(), (Strides{0, 1}));
  const std::vector<Real> expect{1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3};
  EXPECT_EQ(b.toVector(), expect);
}

TEST(Views, ReshapeFastViewOnContiguousCopyOtherwise) {
  Rng rng(7);
  Tensor a = randomTensor({2, 6}, rng);
  Tensor r = reshapeFast(a, {3, 4});
  ASSERT_TRUE(r.isView());
  EXPECT_TRUE(r.isContiguous());
  EXPECT_EQ(r.toVector(), a.toVector());
  // A transposed (non-contiguous) input cannot alias: falls back to copy.
  Tensor rt = reshapeFast(transpose2d(a), {3, 4});
  EXPECT_FALSE(rt.isView());
  EXPECT_EQ(rt.toVector(), reshape(transpose2d(a), {3, 4}).toVector());
}

TEST(Views, ChainedViewsCollapseToOneBase) {
  Rng rng(8);
  Tensor a = randomTensor({4, 8}, rng);
  Tensor v = sliceFast(sliceFast(a, -1, 2, 8), -1, 1, 4);  // cols [3, 6)
  ASSERT_TRUE(v.isView());
  // The chain collapses onto the root buffer: v aliases a directly.
  EXPECT_EQ(v.dataPtr(), a.dataPtr() + 3);
  EXPECT_EQ(v.toVector(), slice(a, -1, 3, 6).toVector());
}

TEST(Views, ContiguousCopyMaterializesViews) {
  Rng rng(9);
  Tensor a = randomTensor({3, 5}, rng);
  Tensor t = transpose2d(a);
  Tensor c = contiguousCopy(t);
  EXPECT_FALSE(c.isView());
  EXPECT_TRUE(c.isContiguous());
  EXPECT_EQ(c.toVector(), t.toVector());
  // asContiguous is the identity on dense tensors (same storage)...
  EXPECT_EQ(asContiguous(a).dataPtr(), a.dataPtr());
  // ...but materializes strided ones.
  EXPECT_FALSE(asContiguous(t).isView());
}

// --- bitwise agreement: view path vs materializing path -------------------

/// A computation exercising transpose, column slices, and broadcast, whose
/// result and gradients must be bit-identical with views on and off.
Tensor viewHeavyLoss(const Tensor& x, const Tensor& w, const Tensor& row) {
  Tensor y = matmul(x, w);                       // [B, D]
  const long D = y.dim(1);
  Tensor left = sliceFast(y, -1, 0, D / 2);      // column view
  Tensor right = sliceFast(y, -1, D / 2, D);     // column view
  Tensor mixed = mul(left, right);               // strided elementwise
  Tensor shifted = add(mixed, broadcastTo(row, mixed.shape()));
  Tensor back = matmul(transpose2d(shifted), x);  // transposed-view operand
  return sumAll(back);
}

TEST(Views, BitwiseAgreementWithMaterializedPath) {
  Rng rng(10);
  Tensor x = randomTensor({5, 4}, rng, true);
  Tensor w = randomTensor({4, 6}, rng, true);
  Tensor row = randomTensor({3}, rng, true);

  ASSERT_TRUE(execOptions().useViews);
  Tensor lossViews = viewHeavyLoss(x, w, row);
  lossViews.backward();
  const Real valueViews = lossViews.item();
  const std::vector<Real> gx = x.grad(), gw = w.grad(), gr = row.grad();

  x.zeroGrad();
  w.zeroGrad();
  row.zeroGrad();
  {
    ViewsOff off;
    Tensor lossCopies = viewHeavyLoss(x, w, row);
    lossCopies.backward();
    EXPECT_EQ(valueViews, lossCopies.item());
  }
  EXPECT_EQ(x.grad(), gx);
  EXPECT_EQ(w.grad(), gw);
  EXPECT_EQ(row.grad(), gr);
}

// --- gradient correctness through views -----------------------------------

TEST(Views, GradcheckThroughTransposeView) {
  Rng rng(11);
  auto fn = [](const std::vector<Tensor>& in) {
    return sumAll(square(matmul(transpose2d(in[0]), in[1])));
  };
  auto res = gradCheck(fn, {randomTensor({3, 4}, rng, true),
                            randomTensor({3, 2}, rng, true)});
  EXPECT_TRUE(res.ok) << "maxAbs=" << res.maxAbsError;
}

TEST(Views, GradcheckThroughColumnSliceViews) {
  Rng rng(12);
  auto fn = [](const std::vector<Tensor>& in) {
    Tensor a = sliceFast(in[0], -1, 0, 2);
    Tensor b = sliceFast(in[0], -1, 2, 4);
    return sumAll(mul(square(a), tanhT(b)));
  };
  auto res = gradCheck(fn, {randomTensor({5, 4}, rng, true)});
  EXPECT_TRUE(res.ok) << "maxAbs=" << res.maxAbsError;
}

TEST(Views, GradcheckThroughBroadcastView) {
  Rng rng(13);
  auto fn = [](const std::vector<Tensor>& in) {
    Tensor wide = broadcastTo(in[0], {6, 3});
    return sumAll(mul(wide, in[1]));
  };
  auto res = gradCheck(fn, {randomTensor({3}, rng, true),
                            randomTensor({6, 3}, rng, true)});
  EXPECT_TRUE(res.ok) << "maxAbs=" << res.maxAbsError;
}

TEST(Views, GradcheckThroughReshapeFastView) {
  Rng rng(14);
  auto fn = [](const std::vector<Tensor>& in) {
    return sumAll(square(reshapeFast(in[0], {6, 2})));
  };
  auto res = gradCheck(fn, {randomTensor({3, 4}, rng, true)});
  EXPECT_TRUE(res.ok) << "maxAbs=" << res.maxAbsError;
}

}  // namespace
}  // namespace artsci::ml

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ml/gradcheck.hpp"
#include "ml/losses.hpp"

namespace artsci::ml {
namespace {

TEST(MseLoss, ZeroForIdentical) {
  Rng rng(1);
  Tensor a = Tensor::randn({3, 4}, rng);
  EXPECT_NEAR(mseLoss(a, a.detach()).item(), 0.0, 1e-15);
}

TEST(MseLoss, KnownValue) {
  Tensor a = Tensor::fromVector({2}, {1.0, 3.0});
  Tensor b = Tensor::fromVector({2}, {0.0, 1.0});
  EXPECT_DOUBLE_EQ(mseLoss(a, b).item(), (1.0 + 4.0) / 2.0);
}

TEST(MseLoss, ShapeMismatchThrows) {
  EXPECT_THROW(mseLoss(Tensor::zeros({2}), Tensor::zeros({3})),
               ContractError);
}

TEST(KlLoss, ZeroForStandardNormalMoments) {
  // mu = 0, logvar = 0 => KL = 0.
  Tensor mu = Tensor::zeros({4, 8});
  Tensor logvar = Tensor::zeros({4, 8});
  EXPECT_NEAR(klStandardNormal(mu, logvar).item(), 0.0, 1e-15);
}

TEST(KlLoss, PositiveForShiftedMean) {
  Tensor mu = Tensor::full({4, 8}, 1.0);
  Tensor logvar = Tensor::zeros({4, 8});
  EXPECT_NEAR(klStandardNormal(mu, logvar).item(), 0.5, 1e-12);
}

TEST(KlLoss, PenalizesWideAndNarrowVariance) {
  Tensor mu = Tensor::zeros({1, 1});
  Tensor wide = Tensor::full({1, 1}, 2.0);    // var e^2
  Tensor narrow = Tensor::full({1, 1}, -2.0); // var e^-2
  EXPECT_GT(klStandardNormal(mu, wide).item(), 0.0);
  EXPECT_GT(klStandardNormal(mu, narrow).item(), 0.0);
}

TEST(KlLoss, GradCheck) {
  Rng rng(2);
  Tensor mu = Tensor::randn({3, 5}, rng);
  Tensor logvar = Tensor::randn({3, 5}, rng, 0.5);
  auto loss = [](const std::vector<Tensor>& in) {
    return klStandardNormal(in[0], in[1]);
  };
  EXPECT_TRUE(gradCheck(loss, {mu, logvar}).ok);
}

TEST(MmdLoss, NearZeroForSameSample) {
  Rng rng(3);
  Tensor x = Tensor::randn({20, 4}, rng);
  EXPECT_NEAR(mmdInverseMultiquadratic(x, x.detach()).item(), 0.0, 1e-12);
}

TEST(MmdLoss, DetectsMeanShift) {
  Rng rng(4);
  Tensor x = Tensor::randn({64, 4}, rng);
  Tensor ySame = Tensor::randn({64, 4}, rng);
  Tensor yShift = Tensor::randn({64, 4}, rng);
  for (Real& v : yShift.data()) v += 3.0;
  const Real same = mmdInverseMultiquadratic(x, ySame).item();
  const Real shifted = mmdInverseMultiquadratic(x, yShift).item();
  EXPECT_GT(shifted, 5.0 * same);
}

TEST(MmdLoss, DetectsVarianceMismatch) {
  Rng rng(5);
  Tensor x = Tensor::randn({128, 3}, rng, 1.0);
  Tensor yNarrow = Tensor::randn({128, 3}, rng, 0.1);
  Tensor ySame = Tensor::randn({128, 3}, rng, 1.0);
  EXPECT_GT(mmdInverseMultiquadratic(x, yNarrow).item(),
            mmdInverseMultiquadratic(x, ySame).item());
}

TEST(MmdLoss, GradCheck) {
  Rng rng(6);
  Tensor x = Tensor::randn({6, 3}, rng);
  Tensor y = Tensor::randn({8, 3}, rng);
  auto loss = [](const std::vector<Tensor>& in) {
    return mmdInverseMultiquadratic(in[0], in[1]);
  };
  const auto r = gradCheck(loss, {x, y}, 1e-6, 1e-5);
  EXPECT_TRUE(r.ok) << r.maxRelError;
}

TEST(EmdLoss, ZeroForIdenticalClouds) {
  Rng rng(7);
  Tensor a = Tensor::randn({2, 12, 3}, rng);
  EXPECT_NEAR(emdSinkhorn(a, a.detach()).item(), 0.0, 1e-3);
}

TEST(EmdLoss, GrowsWithSeparation) {
  Rng rng(8);
  Tensor a = Tensor::randn({1, 16, 3}, rng, 0.1);
  Tensor bNear = a.detach();
  for (Real& v : bNear.data()) v += 0.5;
  Tensor bFar = a.detach();
  for (Real& v : bFar.data()) v += 2.0;
  EXPECT_GT(emdSinkhorn(a, bFar).item(), emdSinkhorn(a, bNear).item());
}

TEST(EmdLoss, SensitiveToDensityUnlikeChamfer) {
  // The paper's motivation for EMD: Chamfer is insensitive to point
  // density. Two clouds covering the same support but with 90% of mass
  // concentrated at one location are close in CD but far in EMD.
  Tensor a = Tensor::zeros({1, 10, 1});
  for (long i = 0; i < 10; ++i)
    a.data()[static_cast<std::size_t>(i)] = static_cast<Real>(i) / 9.0;
  // b: nine points at 0, one point at 1 — same support {0..1}.
  Tensor b = Tensor::zeros({1, 10, 1});
  b.data()[9] = 1.0;
  const Real cd = chamferDistance(a, b).item();
  const Real emd = emdSinkhorn(a, b).item();
  EXPECT_GT(emd, cd);
}

TEST(EmdLoss, GradientPointsTowardTarget) {
  Rng rng(9);
  Tensor a = Tensor::zeros({1, 4, 2});
  a.setRequiresGrad(true);
  Tensor b = Tensor::full({1, 4, 2}, 1.0);
  emdSinkhorn(a, b).backward();
  // dL/da should be negative (moving a toward b at +1 reduces loss).
  for (Real g : a.grad()) EXPECT_LT(g, 0.0);
}

TEST(TotalLoss, PaperWeights) {
  LossTerms terms;
  terms.chamfer = Tensor::scalar(1.0);
  terms.kl = Tensor::scalar(1.0);
  terms.mse = Tensor::scalar(1.0);
  terms.mmdLatent = Tensor::scalar(1.0);
  terms.mmdPosterior = Tensor::scalar(1.0);
  const Real total = totalLoss(terms, LossWeights{}).item();
  EXPECT_NEAR(total, 1.0 + 0.001 + 0.3 + 40.0 + 0.03, 1e-12);
}

TEST(TotalLoss, GradientReachesAllTerms) {
  Tensor a = Tensor::scalar(2.0, true);
  LossTerms terms;
  terms.chamfer = square(a);
  terms.kl = mulScalar(a, 3.0);
  terms.mse = a;
  terms.mmdLatent = mulScalar(a, 0.5);
  terms.mmdPosterior = square(a);
  totalLoss(terms, LossWeights{}).backward();
  // d/da = 1*(2a) + 0.001*3 + 0.3*1 + 40*0.5 + 0.03*(2a) = 4+0.003+0.3+20+0.12
  EXPECT_NEAR(a.grad()[0], 4.0 + 0.003 + 0.3 + 20.0 + 0.12, 1e-9);
}

}  // namespace
}  // namespace artsci::ml

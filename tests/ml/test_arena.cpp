/// Tests of the PR 9 step arena: results built under an ArenaScope live in
/// arena storage (heap vector access trips the guard), the recorded
/// allocation plan replays with zero steady-state heap allocations
/// (proven via Arena::stats()), deviation re-records cleanly, and — the
/// hard contract — gradients are bit-identical across {1,2,8} threads and
/// across every {arena, views} on/off combination.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "ml/arena.hpp"
#include "ml/layers.hpp"
#include "ml/ops.hpp"
#include "ml/tensor.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace artsci::ml {
namespace {

/// RAII toggle for execOptions().useViews.
struct ViewsOff {
  ViewsOff() { execOptions().useViews = false; }
  ~ViewsOff() { execOptions().useViews = true; }
};

/// A small fixed training step: MLP forward + scalar loss + backward.
/// Heap-backed leaves (params, input) with all intermediates arena-backed
/// when run under an ArenaScope — the same split the trainer uses.
struct StepFixture {
  Mlp mlp;
  Tensor x;

  explicit StepFixture(Rng& rng)
      : mlp({8, 16, 16, 4}, rng), x(Tensor::randn({6, 8}, rng)) {}

  /// One fwd+bwd; returns the flattened parameter gradients.
  std::vector<Real> step() {
    for (auto& p : mlp.parameters()) p.zeroGrad();
    Tensor loss = sumAll(square(mlp.forward(x)));
    loss.backward();
    std::vector<Real> grads;
    for (const auto& p : mlp.parameters()) {
      const Real* g = p.gradPtr();
      grads.insert(grads.end(), g, g + p.numel());
    }
    return grads;
  }
};

TEST(Arena, ScopeMakesResultsArenaBacked) {
  Rng rng(1);
  Tensor a = Tensor::randn({4, 4}, rng);
  Arena arena;
  arena.beginStep();
  {
    ArenaScope scope(arena);
    Tensor b = square(a);
    // Results inside the scope are arena-backed: no heap vector behind
    // them, so the vector accessor must trip the guard...
    EXPECT_THROW(b.data(), ContractError);
    // ...while the raw-pointer path works.
    EXPECT_EQ(b.dataPtr()[0], a.dataPtr()[0] * a.dataPtr()[0]);
    // Leaves stay heap-backed even inside the scope.
    Tensor leaf = Tensor::zeros({3});
    EXPECT_NO_THROW(leaf.data());
  }
  // Outside the scope results are heap again.
  Tensor c = square(a);
  EXPECT_NO_THROW(c.data());
  EXPECT_GT(arena.stats().dataBytesPeak, 0u);
}

TEST(Arena, PlanReplayZeroSteadyStateAllocations) {
  Rng rng(2);
  StepFixture fixture(rng);
  Arena arena;

  // Warm-up: first step records the plan and grows the regions.
  arena.beginStep();
  std::vector<Real> g0;
  {
    ArenaScope scope(arena);
    g0 = fixture.step();
  }
  const Arena::Stats warm = arena.stats();
  EXPECT_EQ(warm.steps, 1u);
  EXPECT_GT(warm.planLength, 0u);
  EXPECT_GT(warm.heapAllocations, 0u);

  // Step 2: the plan replays; its beginStep may still consolidate the
  // warm-up chunks into one allocation. From here on the heap is off
  // limits.
  arena.beginStep();
  {
    ArenaScope scope(arena);
    EXPECT_EQ(fixture.step(), g0);
  }
  const Arena::Stats settled = arena.stats();
  EXPECT_EQ(settled.planReplays, 1u);

  // Steady state: identical topology -> plan replays, zero new mallocs,
  // and bit-identical gradients every step.
  for (int i = 0; i < 4; ++i) {
    arena.beginStep();
    ArenaScope scope(arena);
    EXPECT_EQ(fixture.step(), g0);
  }
  const Arena::Stats steady = arena.stats();
  EXPECT_EQ(steady.steps, 6u);
  EXPECT_EQ(steady.planReplays, 5u);
  EXPECT_EQ(steady.planDeviations, 0u);
  EXPECT_EQ(steady.heapAllocations, settled.heapAllocations)
      << "steady-state steps must not touch the heap";
}

TEST(Arena, DeviationReRecordsThenReplays) {
  Rng rng(3);
  Arena arena;
  Tensor a = Tensor::randn({4, 4}, rng);
  Tensor b = Tensor::randn({8, 8}, rng);

  auto run = [&](const Tensor& t) {
    arena.beginStep();
    ArenaScope scope(arena);
    Tensor loss = sumAll(square(t));
    (void)loss.item();
  };
  run(a);            // records plan A
  run(b);            // deviates (different shapes)
  run(b);            // re-records as plan B
  run(b);            // replays plan B
  const Arena::Stats s = arena.stats();
  EXPECT_EQ(s.steps, 4u);
  EXPECT_EQ(s.planDeviations, 1u);
  EXPECT_EQ(s.planReplays, 1u);
}

TEST(Arena, GradsBitIdenticalAcrossArenaAndViewModes) {
  Rng rng(4);
  StepFixture fixture(rng);

  // Reference: plain heap execution, views on (the default path).
  const std::vector<Real> reference = fixture.step();

  // Heap + views off.
  {
    ViewsOff off;
    EXPECT_EQ(fixture.step(), reference);
  }
  // Arena + views on, warm-up and steady-state steps.
  {
    Arena arena;
    for (int i = 0; i < 3; ++i) {
      arena.beginStep();
      ArenaScope scope(arena);
      EXPECT_EQ(fixture.step(), reference);
    }
  }
  // Arena + views off.
  {
    ViewsOff off;
    Arena arena;
    arena.beginStep();
    ArenaScope scope(arena);
    EXPECT_EQ(fixture.step(), reference);
  }
}

TEST(Arena, PlanReplayBitIdenticalAcrossThreadCounts) {
  Rng rng(5);
  StepFixture fixture(rng);
  Arena arena;

  // Baseline at the default thread count, through plan warm-up + replay.
  arena.beginStep();
  std::vector<Real> reference;
  {
    ArenaScope scope(arena);
    reference = fixture.step();
  }
#ifdef _OPENMP
  for (int threads : {1, 2, 8}) {
    omp_set_num_threads(threads);
    arena.beginStep();
    ArenaScope scope(arena);
    EXPECT_EQ(fixture.step(), reference)
        << "gradients diverged at " << threads << " threads";
  }
  omp_set_num_threads(omp_get_num_procs());
#else
  arena.beginStep();
  {
    ArenaScope scope(arena);
    EXPECT_EQ(fixture.step(), reference);
  }
#endif
  EXPECT_EQ(arena.stats().planDeviations, 0u)
      << "thread count must not perturb the allocation plan";
}

TEST(Arena, ReleaseMemoryResetsRegionsAndPlan) {
  Rng rng(6);
  StepFixture fixture(rng);
  Arena arena;
  arena.beginStep();
  {
    ArenaScope scope(arena);
    (void)fixture.step();
  }
  EXPECT_GT(arena.reservedBytes(), 0u);
  arena.releaseMemory();
  EXPECT_EQ(arena.reservedBytes(), 0u);
  // The arena is reusable after release: next step re-records and runs.
  arena.beginStep();
  {
    ArenaScope scope(arena);
    (void)fixture.step();
  }
  EXPECT_GT(arena.reservedBytes(), 0u);
}

}  // namespace
}  // namespace artsci::ml

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ml/ops.hpp"
#include "ml/tensor.hpp"

namespace artsci::ml {
namespace {

TEST(Tensor, ZerosShapeAndValues) {
  Tensor t = Tensor::zeros({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.ndim(), 2);
  for (Real v : t.data()) EXPECT_EQ(v, Real(0));
}

TEST(Tensor, FullFillsValue) {
  Tensor t = Tensor::full({4}, Real(2.5));
  for (Real v : t.data()) EXPECT_EQ(v, Real(2.5));
}

TEST(Tensor, FromVectorChecksCount) {
  EXPECT_THROW(Tensor::fromVector({2, 2}, {1, 2, 3}), ContractError);
}

TEST(Tensor, NegativeDimIndexing) {
  Tensor t = Tensor::zeros({2, 3, 4});
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.dim(-3), 2);
}

TEST(Tensor, ItemRequiresScalar) {
  EXPECT_THROW(Tensor::zeros({2}).item(), ContractError);
  EXPECT_EQ(Tensor::scalar(3.0).item(), Real(3));
}

TEST(Tensor, RandnStatistics) {
  Rng rng(11);
  Tensor t = Tensor::randn({10000}, rng, Real(2));
  Real sum = 0, sumSq = 0;
  for (Real v : t.data()) {
    sum += v;
    sumSq += v * v;
  }
  const Real mean = sum / 10000;
  EXPECT_NEAR(mean, 0.0, 0.1);
  EXPECT_NEAR(sumSq / 10000 - mean * mean, 4.0, 0.3);
}

TEST(Tensor, DetachSharesNoGraph) {
  Tensor a = Tensor::full({2}, 1.0, true);
  Tensor b = mulScalar(a, 2.0);
  Tensor d = b.detach();
  EXPECT_FALSE(d.requiresGrad());
  EXPECT_EQ(d.data()[0], Real(2));
  d.data()[0] = Real(99);
  EXPECT_EQ(b.data()[0], Real(2));  // no aliasing
}

TEST(Tensor, BackwardSimpleChain) {
  Tensor x = Tensor::scalar(3.0, true);
  Tensor y = mulScalar(square(x), 2.0);  // y = 2 x^2, dy/dx = 4x = 12
  y.backward();
  EXPECT_NEAR(x.grad()[0], 12.0, 1e-12);
}

TEST(Tensor, BackwardAccumulatesThroughFanOut) {
  Tensor x = Tensor::scalar(2.0, true);
  Tensor y = add(square(x), mulScalar(x, 3.0));  // x^2 + 3x, d = 2x+3 = 7
  y.backward();
  EXPECT_NEAR(x.grad()[0], 7.0, 1e-12);
}

TEST(Tensor, BackwardDiamondGraph) {
  // z = (x*2) + (x*5); dz/dx = 7. The node x is reachable via two paths.
  Tensor x = Tensor::scalar(1.0, true);
  Tensor a = mulScalar(x, 2.0);
  Tensor b = mulScalar(x, 5.0);
  Tensor z = add(a, b);
  z.backward();
  EXPECT_NEAR(x.grad()[0], 7.0, 1e-12);
}

TEST(Tensor, NoGradWhenNotRequested) {
  Tensor x = Tensor::scalar(3.0, false);
  Tensor y = square(x);
  EXPECT_FALSE(y.requiresGrad());
  y.backward();  // valid: nothing to propagate
  EXPECT_TRUE(x.grad().empty());
}

TEST(Tensor, ZeroGradClears) {
  Tensor x = Tensor::scalar(3.0, true);
  square(x).backward();
  EXPECT_NE(x.grad()[0], Real(0));
  x.zeroGrad();
  EXPECT_EQ(x.grad()[0], Real(0));
}

TEST(Tensor, GradAccumulatesAcrossBackwards) {
  Tensor x = Tensor::scalar(1.0, true);
  square(x).backward();
  square(x).backward();
  EXPECT_NEAR(x.grad()[0], 4.0, 1e-12);  // 2x + 2x
}

TEST(Tensor, ShapeToStringFormat) {
  EXPECT_EQ(shapeToString({2, 3}), "[2, 3]");
  EXPECT_EQ(shapeToString({}), "[]");
}

}  // namespace
}  // namespace artsci::ml

/// Property-style finite-difference gradient checks for every op.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ml/gradcheck.hpp"
#include "ml/ops.hpp"

namespace artsci::ml {
namespace {

Tensor positiveRandn(const Shape& s, Rng& rng) {
  Tensor t = Tensor::randn(s, rng, 0.3);
  for (Real& v : t.data()) v = std::abs(v) + Real(0.5);
  return t;
}

using UnaryFactory = std::function<Tensor(const Tensor&)>;

struct UnaryCase {
  const char* name;
  UnaryFactory fn;
  bool positiveInput = false;
};

class UnaryGradCheck : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnaryGradCheck, MatchesFiniteDifferences) {
  const auto& param = GetParam();
  Rng rng(1234);
  Tensor x = param.positiveInput ? positiveRandn({3, 5}, rng)
                                 : Tensor::randn({3, 5}, rng, 0.8);
  auto loss = [&](const std::vector<Tensor>& in) {
    return sumAll(mul(param.fn(in[0]), in[0]));  // non-trivial downstream
  };
  const auto result = gradCheck(loss, {x}, 1e-6, 1e-5);
  EXPECT_TRUE(result.ok) << param.name
                         << " max rel err: " << result.maxRelError;
}

INSTANTIATE_TEST_SUITE_P(
    AllUnaryOps, UnaryGradCheck,
    ::testing::Values(
        UnaryCase{"relu", [](const Tensor& x) { return relu(x); }},
        UnaryCase{"leakyRelu",
                  [](const Tensor& x) { return leakyRelu(x, 0.1); }},
        UnaryCase{"tanh", [](const Tensor& x) { return tanhT(x); }},
        UnaryCase{"sigmoid", [](const Tensor& x) { return sigmoid(x); }},
        UnaryCase{"exp", [](const Tensor& x) { return expT(x); }},
        UnaryCase{"log", [](const Tensor& x) { return logT(x); }, true},
        UnaryCase{"sqrt", [](const Tensor& x) { return sqrtT(x); }, true},
        UnaryCase{"square", [](const Tensor& x) { return square(x); }},
        UnaryCase{"reciprocal",
                  [](const Tensor& x) { return reciprocal(x); }, true},
        UnaryCase{"softplus", [](const Tensor& x) { return softplus(x); }},
        UnaryCase{"addScalar",
                  [](const Tensor& x) { return addScalar(x, 1.7); }},
        UnaryCase{"mulScalar",
                  [](const Tensor& x) { return mulScalar(x, -2.3); }},
        UnaryCase{"neg", [](const Tensor& x) { return neg(x); }}),
    [](const ::testing::TestParamInfo<UnaryCase>& info) {
      return info.param.name;
    });

struct BinaryCase {
  const char* name;
  std::function<Tensor(const Tensor&, const Tensor&)> fn;
  Shape shapeA, shapeB;
  bool positiveB = false;
};

class BinaryGradCheck : public ::testing::TestWithParam<BinaryCase> {};

TEST_P(BinaryGradCheck, MatchesFiniteDifferences) {
  const auto& param = GetParam();
  Rng rng(99);
  Tensor a = Tensor::randn(param.shapeA, rng, 0.7);
  Tensor b = param.positiveB ? positiveRandn(param.shapeB, rng)
                             : Tensor::randn(param.shapeB, rng, 0.7);
  auto loss = [&](const std::vector<Tensor>& in) {
    return sumAll(square(param.fn(in[0], in[1])));
  };
  const auto result = gradCheck(loss, {a, b}, 1e-6, 1e-5);
  EXPECT_TRUE(result.ok) << param.name
                         << " max rel err: " << result.maxRelError;
}

INSTANTIATE_TEST_SUITE_P(
    AllBinaryOps, BinaryGradCheck,
    ::testing::Values(
        BinaryCase{"add_same", add, {3, 4}, {3, 4}},
        BinaryCase{"sub_same", sub, {3, 4}, {3, 4}},
        BinaryCase{"mul_same", mul, {3, 4}, {3, 4}},
        BinaryCase{"div_same", div, {3, 4}, {3, 4}, true},
        BinaryCase{"add_bias_row", add, {6, 4}, {4}},
        BinaryCase{"mul_bias_row", mul, {6, 4}, {4}},
        BinaryCase{"add_col_broadcast", add, {5, 1}, {5, 7}},
        BinaryCase{"mul_general_broadcast", mul, {2, 1, 3}, {2, 4, 1}},
        BinaryCase{"matmul_square", matmul, {4, 4}, {4, 4}},
        BinaryCase{"matmul_rect", matmul, {3, 5}, {5, 2}}),
    [](const ::testing::TestParamInfo<BinaryCase>& info) {
      return info.param.name;
    });

TEST(OpsGradCheck, SumAxisKeepdim) {
  Rng rng(5);
  Tensor x = Tensor::randn({2, 3, 4}, rng);
  for (int axis = 0; axis < 3; ++axis) {
    for (bool keepdim : {false, true}) {
      auto loss = [&](const std::vector<Tensor>& in) {
        return sumAll(square(sumAxis(in[0], axis, keepdim)));
      };
      const auto r = gradCheck(loss, {x});
      EXPECT_TRUE(r.ok) << "axis=" << axis << " keepdim=" << keepdim
                        << " err=" << r.maxRelError;
    }
  }
}

TEST(OpsGradCheck, MeanAxis) {
  Rng rng(6);
  Tensor x = Tensor::randn({4, 5}, rng);
  auto loss = [&](const std::vector<Tensor>& in) {
    return sumAll(square(meanAxis(in[0], 1)));
  };
  EXPECT_TRUE(gradCheck(loss, {x}).ok);
}

TEST(OpsGradCheck, MeanAxisKeepdimAllAxes) {
  Rng rng(15);
  Tensor x = Tensor::randn({2, 3, 4}, rng);
  for (int axis = 0; axis < 3; ++axis) {
    for (bool keepdim : {false, true}) {
      auto loss = [&](const std::vector<Tensor>& in) {
        return sumAll(square(meanAxis(in[0], axis, keepdim)));
      };
      const auto r = gradCheck(loss, {x});
      EXPECT_TRUE(r.ok) << "axis=" << axis << " keepdim=" << keepdim
                        << " err=" << r.maxRelError;
    }
  }
}

TEST(OpsGradCheck, MeanAll) {
  Rng rng(16);
  Tensor x = Tensor::randn({3, 7}, rng);
  auto loss = [&](const std::vector<Tensor>& in) {
    return square(meanAll(in[0]));
  };
  EXPECT_TRUE(gradCheck(loss, {x}).ok);
}

TEST(OpsGradCheck, MaxAxisRoutesToArgmax) {
  Rng rng(7);
  Tensor x = Tensor::randn({2, 6, 3}, rng);
  auto loss = [&](const std::vector<Tensor>& in) {
    return sumAll(square(maxAxis(in[0], 1)));
  };
  EXPECT_TRUE(gradCheck(loss, {x}).ok);
}

TEST(OpsGradCheck, MaxAxisKeepdim) {
  Rng rng(17);
  Tensor x = Tensor::randn({3, 4, 2}, rng);
  for (int axis = 0; axis < 3; ++axis) {
    auto loss = [&](const std::vector<Tensor>& in) {
      return sumAll(square(maxAxis(in[0], axis, /*keepdim=*/true)));
    };
    const auto r = gradCheck(loss, {x});
    EXPECT_TRUE(r.ok) << "axis=" << axis << " err=" << r.maxRelError;
  }
}

TEST(OpsGradCheck, LeakyReluSlopes) {
  // The parameterized sweep only exercises slope 0.1; check the default
  // (0.01) and a steep slope, with inputs guaranteed on both sides of 0.
  Rng rng(18);
  for (Real slope : {Real(0.01), Real(0.9)}) {
    Tensor x = Tensor::randn({4, 6}, rng, 1.5);
    auto loss = [&](const std::vector<Tensor>& in) {
      return sumAll(mul(leakyRelu(in[0], slope), in[0]));
    };
    const auto r = gradCheck(loss, {x}, 1e-6, 1e-5);
    EXPECT_TRUE(r.ok) << "slope=" << slope << " err=" << r.maxRelError;
  }
}

TEST(OpsGradCheck, SoftplusExtremeRegimes) {
  // Large |x| probes the saturated branches (gradient -> 1 and -> 0),
  // where a naive exp-based implementation overflows.
  Tensor x = Tensor::fromVector(
      {6}, {Real(-30), Real(-4), Real(-0.1), Real(0.1), Real(4), Real(30)});
  auto loss = [&](const std::vector<Tensor>& in) {
    return sumAll(mul(softplus(in[0]), in[0]));
  };
  const auto r = gradCheck(loss, {x}, 1e-6, 1e-5);
  EXPECT_TRUE(r.ok) << r.maxRelError;
  // Forward values must stay finite deep into saturation.
  Tensor y = softplus(x);
  for (Real v : y.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(OpsGradCheck, SubAndDivBroadcast) {
  // The parameterized sweep covers broadcast add/mul; sub and div reduce
  // their gradients over broadcast axes through different code paths.
  Rng rng(19);
  Tensor a = Tensor::randn({5, 4}, rng, 0.7);
  Tensor b = positiveRandn({4}, rng);
  auto lossSub = [&](const std::vector<Tensor>& in) {
    return sumAll(square(sub(in[0], in[1])));
  };
  EXPECT_TRUE(gradCheck(lossSub, {a, b}).ok);
  auto lossDiv = [&](const std::vector<Tensor>& in) {
    return sumAll(square(div(in[0], in[1])));
  };
  const auto r = gradCheck(lossDiv, {a, b}, 1e-6, 1e-5);
  EXPECT_TRUE(r.ok) << r.maxRelError;
}

TEST(OpsGradCheck, Reshape) {
  Rng rng(8);
  Tensor x = Tensor::randn({2, 6}, rng);
  auto loss = [&](const std::vector<Tensor>& in) {
    return sumAll(square(reshape(in[0], {3, 4})));
  };
  EXPECT_TRUE(gradCheck(loss, {x}).ok);
}

TEST(OpsGradCheck, Transpose2d) {
  Rng rng(9);
  Tensor x = Tensor::randn({3, 5}, rng);
  auto loss = [&](const std::vector<Tensor>& in) {
    return sumAll(square(matmul(transpose2d(in[0]), in[0])));
  };
  EXPECT_TRUE(gradCheck(loss, {x}).ok);
}

TEST(OpsGradCheck, CatAndSlice) {
  Rng rng(10);
  Tensor a = Tensor::randn({2, 3}, rng);
  Tensor b = Tensor::randn({2, 4}, rng);
  auto loss = [&](const std::vector<Tensor>& in) {
    Tensor c = cat({in[0], in[1]}, -1);          // [2,7]
    Tensor left = slice(c, -1, 0, 2);            // [2,2]
    Tensor right = slice(c, -1, 5, 7);           // [2,2]
    return sumAll(square(mul(left, right)));
  };
  EXPECT_TRUE(gradCheck(loss, {a, b}).ok);
}

TEST(OpsGradCheck, CatAxis0) {
  Rng rng(11);
  Tensor a = Tensor::randn({2, 3}, rng);
  Tensor b = Tensor::randn({4, 3}, rng);
  auto loss = [&](const std::vector<Tensor>& in) {
    return sumAll(square(cat({in[0], in[1]}, 0)));
  };
  EXPECT_TRUE(gradCheck(loss, {a, b}).ok);
}

TEST(OpsGradCheck, PermuteLast) {
  Rng rng(12);
  Tensor x = Tensor::randn({3, 5}, rng);
  const std::vector<long> perm{4, 2, 0, 1, 3};
  auto loss = [&](const std::vector<Tensor>& in) {
    return sumAll(square(permuteLast(in[0], perm)));
  };
  EXPECT_TRUE(gradCheck(loss, {x}).ok);
}

TEST(OpsGradCheck, ChamferBothInputs) {
  Rng rng(13);
  Tensor a = Tensor::randn({2, 7, 3}, rng);
  Tensor b = Tensor::randn({2, 5, 3}, rng);
  auto loss = [&](const std::vector<Tensor>& in) {
    return chamferDistance(in[0], in[1]);
  };
  // Chamfer's argmin assignments can flip under perturbation; use a
  // slightly looser tolerance.
  const auto r = gradCheck(loss, {a, b}, 1e-6, 1e-4);
  EXPECT_TRUE(r.ok) << r.maxRelError;
}

TEST(OpsGradCheck, PairwiseSquaredDistances) {
  Rng rng(14);
  Tensor x = Tensor::randn({4, 3}, rng);
  Tensor y = Tensor::randn({5, 3}, rng);
  auto loss = [&](const std::vector<Tensor>& in) {
    return sumAll(square(pairwiseSquaredDistances(in[0], in[1])));
  };
  EXPECT_TRUE(gradCheck(loss, {x, y}).ok);
}

}  // namespace
}  // namespace artsci::ml

/// Forward-value correctness of the op library.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ml/ops.hpp"

namespace artsci::ml {
namespace {

TEST(OpsForward, AddBroadcastRow) {
  Tensor a = Tensor::fromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::fromVector({3}, {10, 20, 30});
  Tensor c = add(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_EQ(c.data(), (std::vector<Real>{11, 22, 33, 14, 25, 36}));
}

TEST(OpsForward, AddBroadcastColumn) {
  Tensor a = Tensor::fromVector({2, 1}, {1, 2});
  Tensor b = Tensor::fromVector({2, 3}, {0, 0, 0, 0, 0, 0});
  Tensor c = add(a, b);
  EXPECT_EQ(c.data(), (std::vector<Real>{1, 1, 1, 2, 2, 2}));
}

TEST(OpsForward, BroadcastShapeRules) {
  EXPECT_EQ(broadcastShapes({2, 1, 3}, {4, 1}), (Shape{2, 4, 3}));
  EXPECT_EQ(broadcastShapes({5}, {3, 5}), (Shape{3, 5}));
  EXPECT_THROW(broadcastShapes({2, 3}, {4, 5}), ContractError);
}

TEST(OpsForward, BroadcastShapeEdgeCases) {
  // Symmetry of the right-aligned rule.
  EXPECT_EQ(broadcastShapes({4, 1}, {2, 1, 3}), (Shape{2, 4, 3}));
  // Identical shapes are a fixed point.
  EXPECT_EQ(broadcastShapes({2, 3, 4}, {2, 3, 4}), (Shape{2, 3, 4}));
  // All-ones expand against anything.
  EXPECT_EQ(broadcastShapes({1, 1}, {6, 5, 4}), (Shape{6, 5, 4}));
  // Rank-0 (scalar) against any shape.
  EXPECT_EQ(broadcastShapes({}, {3, 2}), (Shape{3, 2}));
  EXPECT_EQ(broadcastShapes({3, 2}, {}), (Shape{3, 2}));
  // Mismatch buried under matching trailing dims still throws.
  EXPECT_THROW(broadcastShapes({2, 3, 5}, {4, 3, 5}), ContractError);
  // Mismatch across different ranks throws too.
  EXPECT_THROW(broadcastShapes({2, 3}, {3, 3, 3}), ContractError);
}

TEST(OpsForward, MatmulKnownValues) {
  Tensor a = Tensor::fromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::fromVector({2, 2}, {5, 6, 7, 8});
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.data(), (std::vector<Real>{19, 22, 43, 50}));
}

TEST(OpsForward, MatmulShapeMismatchThrows) {
  Tensor a = Tensor::zeros({2, 3});
  Tensor b = Tensor::zeros({4, 2});
  EXPECT_THROW(matmul(a, b), ContractError);
}

TEST(OpsForward, MatmulLargeAgainstReference) {
  Rng rng(21);
  const long M = 37, K = 23, N = 29;
  Tensor a = Tensor::randn({M, K}, rng);
  Tensor b = Tensor::randn({K, N}, rng);
  Tensor c = matmul(a, b);
  // Spot-check a few entries against a plain reference computation.
  for (long i : {0L, 17L, M - 1}) {
    for (long j : {0L, 11L, N - 1}) {
      Real ref = 0;
      for (long k = 0; k < K; ++k)
        ref += a.data()[static_cast<std::size_t>(i * K + k)] *
               b.data()[static_cast<std::size_t>(k * N + j)];
      EXPECT_NEAR(c.data()[static_cast<std::size_t>(i * N + j)], ref, 1e-10);
    }
  }
}

TEST(OpsForward, SumAxisValues) {
  Tensor x = Tensor::fromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(sumAxis(x, 0).data(), (std::vector<Real>{5, 7, 9}));
  EXPECT_EQ(sumAxis(x, 1).data(), (std::vector<Real>{6, 15}));
  EXPECT_EQ(sumAxis(x, 1, true).shape(), (Shape{2, 1}));
}

TEST(OpsForward, MeanAll) {
  Tensor x = Tensor::fromVector({4}, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(meanAll(x).item(), 2.5);
}

TEST(OpsForward, MaxAxisValuesAndShape) {
  Tensor x = Tensor::fromVector({2, 3, 2},
                                {1, 8, 3, 4, 5, 6, 9, 2, 7, 0, -1, 3});
  Tensor m = maxAxis(x, 1);
  EXPECT_EQ(m.shape(), (Shape{2, 2}));
  EXPECT_EQ(m.data(), (std::vector<Real>{5, 8, 9, 3}));
}

TEST(OpsForward, SliceValues) {
  Tensor x = Tensor::fromVector({2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor s = slice(x, -1, 1, 3);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_EQ(s.data(), (std::vector<Real>{2, 3, 6, 7}));
}

TEST(OpsForward, SliceAxis0) {
  Tensor x = Tensor::fromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor s = slice(x, 0, 1, 3);
  EXPECT_EQ(s.data(), (std::vector<Real>{3, 4, 5, 6}));
}

TEST(OpsForward, CatLastAxis) {
  Tensor a = Tensor::fromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::fromVector({2, 1}, {9, 8});
  Tensor c = cat({a, b}, -1);
  EXPECT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_EQ(c.data(), (std::vector<Real>{1, 2, 9, 3, 4, 8}));
}

TEST(OpsForward, CatSliceRoundTrip) {
  Rng rng(3);
  Tensor x = Tensor::randn({3, 7}, rng);
  Tensor left = slice(x, -1, 0, 4);
  Tensor right = slice(x, -1, 4, 7);
  Tensor back = cat({left, right}, -1);
  EXPECT_EQ(back.data(), x.data());
}

TEST(OpsForward, PermuteLastIsBijection) {
  Tensor x = Tensor::fromVector({1, 4}, {10, 20, 30, 40});
  const std::vector<long> perm{2, 0, 3, 1};
  Tensor y = permuteLast(x, perm);
  EXPECT_EQ(y.data(), (std::vector<Real>{30, 10, 40, 20}));
  // applying inverse permutation restores input
  std::vector<long> inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i)
    inv[static_cast<std::size_t>(perm[i])] = static_cast<long>(i);
  EXPECT_EQ(permuteLast(y, inv).data(), x.data());
}

TEST(OpsForward, ChamferZeroForIdenticalClouds) {
  Rng rng(4);
  Tensor a = Tensor::randn({2, 10, 3}, rng);
  EXPECT_NEAR(chamferDistance(a, a).item(), 0.0, 1e-12);
}

TEST(OpsForward, ChamferSymmetric) {
  Rng rng(5);
  Tensor a = Tensor::randn({1, 8, 3}, rng);
  Tensor b = Tensor::randn({1, 8, 3}, rng);
  EXPECT_NEAR(chamferDistance(a, b).item(), chamferDistance(b, a).item(),
              1e-12);
}

TEST(OpsForward, ChamferKnownValue) {
  // Single points distance^2 = 4 + symmetric -> 8... actually both terms
  // give 4, sum = 8? CD = mean_n min + mean_m min = 4 + 4 = 8.
  Tensor a = Tensor::fromVector({1, 1, 1}, {0.0});
  Tensor b = Tensor::fromVector({1, 1, 1}, {2.0});
  EXPECT_DOUBLE_EQ(chamferDistance(a, b).item(), 8.0);
}

TEST(OpsForward, ChamferDetectsShift) {
  Rng rng(6);
  Tensor a = Tensor::randn({1, 50, 3}, rng);
  Tensor bNear = a.detach();
  for (Real& v : bNear.data()) v += 0.01;
  Tensor bFar = a.detach();
  for (Real& v : bFar.data()) v += 1.0;
  EXPECT_LT(chamferDistance(a, bNear).item(),
            chamferDistance(a, bFar).item());
}

TEST(OpsForward, PairwiseDistancesMatchDirect) {
  Rng rng(7);
  Tensor x = Tensor::randn({4, 3}, rng);
  Tensor y = Tensor::randn({5, 3}, rng);
  Tensor d2 = pairwiseSquaredDistances(x, y);
  for (long i = 0; i < 4; ++i) {
    for (long j = 0; j < 5; ++j) {
      Real ref = 0;
      for (long k = 0; k < 3; ++k) {
        const Real diff = x.data()[static_cast<std::size_t>(i * 3 + k)] -
                          y.data()[static_cast<std::size_t>(j * 3 + k)];
        ref += diff * diff;
      }
      EXPECT_NEAR(d2.data()[static_cast<std::size_t>(i * 5 + j)], ref, 1e-9);
    }
  }
}

}  // namespace
}  // namespace artsci::ml

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ml/coupling.hpp"
#include "ml/gradcheck.hpp"

namespace artsci::ml {
namespace {

Real maxAbsDiff(const Tensor& a, const Tensor& b) {
  Real m = 0;
  for (std::size_t i = 0; i < a.data().size(); ++i)
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  return m;
}

TEST(GlowCoupling, ForwardInverseIsIdentity) {
  Rng rng(1);
  GlowCouplingBlock block(8, 0, {16, 16}, rng);
  Tensor x = Tensor::randn({5, 8}, rng);
  Tensor y = block.forward(x, Tensor());
  Tensor back = block.inverse(y, Tensor());
  EXPECT_LT(maxAbsDiff(x, back), 1e-10);
}

TEST(GlowCoupling, InverseForwardIsIdentity) {
  Rng rng(2);
  GlowCouplingBlock block(6, 0, {12}, rng);
  Tensor y = Tensor::randn({3, 6}, rng);
  Tensor x = block.inverse(y, Tensor());
  Tensor again = block.forward(x, Tensor());
  EXPECT_LT(maxAbsDiff(y, again), 1e-10);
}

TEST(GlowCoupling, ConditionedInvertibility) {
  Rng rng(3);
  GlowCouplingBlock block(8, 4, {16}, rng);
  Tensor x = Tensor::randn({5, 8}, rng);
  Tensor cond = Tensor::randn({5, 4}, rng);
  Tensor y = block.forward(x, cond);
  EXPECT_LT(maxAbsDiff(x, block.inverse(y, cond)), 1e-10);
}

TEST(GlowCoupling, ConditionChangesOutput) {
  Rng rng(4);
  GlowCouplingBlock block(8, 4, {16}, rng);
  Tensor x = Tensor::randn({2, 8}, rng);
  Tensor c1 = Tensor::randn({2, 4}, rng);
  Tensor c2 = Tensor::randn({2, 4}, rng);
  EXPECT_GT(maxAbsDiff(block.forward(x, c1), block.forward(x, c2)), 1e-6);
}

TEST(GlowCoupling, OddWidthRejected) {
  Rng rng(5);
  EXPECT_THROW(GlowCouplingBlock(7, 0, {8}, rng), ContractError);
}

TEST(GlowCoupling, GradCheckThroughForward) {
  Rng rng(6);
  GlowCouplingBlock block(4, 0, {8}, rng);
  Tensor x = Tensor::randn({3, 4}, rng);
  auto loss = [&](const std::vector<Tensor>& in) {
    return sumAll(square(block.forward(in[0], Tensor())));
  };
  EXPECT_TRUE(gradCheck(loss, {x}).ok);
}

TEST(GlowCoupling, GradCheckThroughInverse) {
  Rng rng(7);
  GlowCouplingBlock block(4, 0, {8}, rng);
  Tensor y = Tensor::randn({3, 4}, rng);
  auto loss = [&](const std::vector<Tensor>& in) {
    return sumAll(square(block.inverse(in[0], Tensor())));
  };
  EXPECT_TRUE(gradCheck(loss, {y}).ok);
}

TEST(FeaturePermutationTest, RoundTrip) {
  Rng rng(8);
  FeaturePermutation perm(10, rng);
  Tensor x = Tensor::randn({4, 10}, rng);
  EXPECT_LT(maxAbsDiff(x, perm.inverse(perm.forward(x))), 1e-15);
}

class InnInvertibility : public ::testing::TestWithParam<int> {};

TEST_P(InnInvertibility, RoundTripAcrossDepths) {
  Rng rng(9 + static_cast<std::uint64_t>(GetParam()));
  Inn::Config cfg;
  cfg.dim = 16;
  cfg.blocks = GetParam();
  cfg.hidden = {24, 20};
  Inn inn(cfg, rng);
  Tensor x = Tensor::randn({6, 16}, rng);
  Tensor y = inn.forward(x);
  Tensor back = inn.inverse(y);
  // The round-trip error grows with depth (each block multiplies by
  // exp(±s), s soft-clamped to ±2) and depends on the random weight draw;
  // 1e-8 leaves seed-independent headroom while still proving exactness.
  EXPECT_LT(maxAbsDiff(x, back), 1e-8) << "blocks=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Depths, InnInvertibility,
                         ::testing::Values(1, 2, 4, 8));

TEST(Inn, PaperConfigConstructsAndInverts) {
  // Paper: dim 544, 4 blocks, subnet hidden {272, 256}.
  Rng rng(10);
  Inn inn(Inn::Config{}, rng);
  Tensor x = Tensor::randn({2, 544}, rng);
  Tensor y = inn.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 544}));
  EXPECT_LT(maxAbsDiff(x, inn.inverse(y)), 1e-8);
}

TEST(Inn, OutputDiffersFromInput) {
  Rng rng(11);
  Inn::Config cfg;
  cfg.dim = 8;
  cfg.blocks = 2;
  cfg.hidden = {16};
  Inn inn(cfg, rng);
  Tensor x = Tensor::randn({3, 8}, rng);
  EXPECT_GT(maxAbsDiff(x, inn.forward(x)), 1e-4);
}

TEST(Inn, VolumeBoundedByClamp) {
  // Soft clamp bounds each coupling's log-scale by +-clamp, so outputs
  // can't explode: |y| <= |x| * exp(blocks * 2 * clamp) + shifts.
  Rng rng(12);
  Inn::Config cfg;
  cfg.dim = 8;
  cfg.blocks = 4;
  cfg.hidden = {16};
  cfg.clamp = 1.0;
  Inn inn(cfg, rng);
  Tensor x = Tensor::randn({8, 8}, rng);
  Tensor y = inn.forward(x);
  for (Real v : y.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(Inn, GradientFlowsInBothDirections) {
  Rng rng(13);
  Inn::Config cfg;
  cfg.dim = 8;
  cfg.blocks = 2;
  cfg.hidden = {12};
  Inn inn(cfg, rng);

  Tensor x = Tensor::randn({2, 8}, rng);
  x.setRequiresGrad(true);
  sumAll(square(inn.forward(x))).backward();
  Real gx = 0;
  for (Real g : x.grad()) gx += g * g;
  EXPECT_GT(gx, 0.0);

  Tensor y = Tensor::randn({2, 8}, rng);
  y.setRequiresGrad(true);
  sumAll(square(inn.inverse(y))).backward();
  Real gy = 0;
  for (Real g : y.grad()) gy += g * g;
  EXPECT_GT(gy, 0.0);
}

}  // namespace
}  // namespace artsci::ml

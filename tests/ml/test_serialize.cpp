#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>

#include "common/error.hpp"
#include "core/model.hpp"
#include "ml/serialize.hpp"

namespace artsci::ml {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  std::string path_;

  void SetUp() override {
    path_ = ::testing::TempDir() + "artsci_serialize_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".ckpt";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  static std::vector<Tensor> makeParams() {
    std::vector<Tensor> ps;
    ps.push_back(Tensor::fromVector({2, 3}, {1, 2, 3, 4, 5, 6}));
    ps.push_back(Tensor::fromVector({4}, {-1, 0, 1, 2}));
    return ps;
  }

  static std::vector<Tensor> makeZeroedLike(const std::vector<Tensor>& ps) {
    std::vector<Tensor> out;
    for (const auto& p : ps) out.push_back(Tensor::zeros(p.shape()));
    return out;
  }

  void writeRaw(const std::vector<std::uint64_t>& words,
                const std::vector<Real>& payload = {}) const {
    std::ofstream os(path_, std::ios::binary | std::ios::trunc);
    for (std::uint64_t w : words)
      os.write(reinterpret_cast<const char*>(&w), sizeof(w));
    os.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload.size() * sizeof(Real)));
  }
};

TEST_F(SerializeTest, RoundTripPreservesValues) {
  const auto src = makeParams();
  saveParameters(path_, src);
  auto dst = makeZeroedLike(src);
  loadParameters(path_, dst);
  for (std::size_t i = 0; i < src.size(); ++i)
    EXPECT_EQ(src[i].data(), dst[i].data());
}

TEST_F(SerializeTest, ReadsLegacyUnversionedFormat) {
  // Hand-written "ARTSCIP1" file: magic, count, then ndim/dims/data per
  // tensor — what saveParameters wrote before the versioned header.
  writeRaw({0x41525453'43495031ULL, 1, 2, 2, 2}, {10, 20, 30, 40});
  std::vector<Tensor> dst{Tensor::zeros({2, 2})};
  loadParameters(path_, dst);
  EXPECT_EQ(dst[0].data(), (std::vector<Real>{10, 20, 30, 40}));
}

TEST_F(SerializeTest, RejectsBadMagic) {
  writeRaw({0xdeadbeefULL, 1, 1, 1}, {0});
  std::vector<Tensor> dst{Tensor::zeros({1})};
  try {
    loadParameters(path_, dst);
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("not an artsci checkpoint"),
              std::string::npos);
  }
}

TEST_F(SerializeTest, RejectsFutureVersion) {
  writeRaw({0x41525453'43495032ULL, 99, 0, 0});
  std::vector<Tensor> dst;
  try {
    loadParameters(path_, dst);
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST_F(SerializeTest, RejectsTensorCountMismatch) {
  const auto src = makeParams();
  saveParameters(path_, src);
  std::vector<Tensor> dst{Tensor::zeros({2, 3})};  // one tensor, not two
  try {
    loadParameters(path_, dst);
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("tensors"), std::string::npos);
  }
}

TEST_F(SerializeTest, RejectsElementCountMismatchBeforeReadingPayload) {
  const auto src = makeParams();
  saveParameters(path_, src);
  // Same tensor count, different total scalar count.
  std::vector<Tensor> dst{Tensor::zeros({2, 3}), Tensor::zeros({5})};
  try {
    loadParameters(path_, dst);
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("architecture mismatch"),
              std::string::npos);
  }
}

TEST_F(SerializeTest, RejectsShapeMismatch) {
  const auto src = makeParams();
  saveParameters(path_, src);
  std::vector<Tensor> dst{Tensor::zeros({3, 2}), Tensor::zeros({4})};
  try {
    loadParameters(path_, dst);
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("shape"), std::string::npos);
  }
}

TEST_F(SerializeTest, RejectsTruncatedHeader) {
  writeRaw({0x41525453'43495032ULL, 2});  // stops inside the header
  std::vector<Tensor> dst{Tensor::zeros({1})};
  try {
    loadParameters(path_, dst);
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
}

TEST_F(SerializeTest, RejectsTruncatedPayload) {
  const auto src = makeParams();
  saveParameters(path_, src);
  // Chop the last 8 bytes off the payload.
  std::ifstream is(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  is.close();
  std::ofstream os(path_, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 8));
  os.close();
  auto dst = makeZeroedLike(src);
  try {
    loadParameters(path_, dst);
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
}

TEST_F(SerializeTest, RejectsCorruptRankWord) {
  // Rank word of 1e6 must fail fast instead of allocating a huge shape.
  writeRaw({0x41525453'43495032ULL, 2, 1, 1, 1000000});
  std::vector<Tensor> dst{Tensor::zeros({1})};
  try {
    loadParameters(path_, dst);
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("corrupt"), std::string::npos);
  }
}

TEST_F(SerializeTest, RejectsTrailingBytes) {
  const auto src = makeParams();
  saveParameters(path_, src);
  std::ofstream os(path_, std::ios::binary | std::ios::app);
  const double extra = 1.0;
  os.write(reinterpret_cast<const char*>(&extra), sizeof(extra));
  os.close();
  auto dst = makeZeroedLike(src);
  EXPECT_THROW(loadParameters(path_, dst), ContractError);
}

TEST_F(SerializeTest, CopyParametersCopiesValues) {
  const auto src = makeParams();
  auto dst = makeZeroedLike(src);
  copyParameters(src, dst);
  for (std::size_t i = 0; i < src.size(); ++i)
    EXPECT_EQ(src[i].data(), dst[i].data());
  // Deep copy: mutating the destination leaves the source untouched.
  dst[0].data()[0] = 999;
  EXPECT_EQ(src[0].data()[0], 1);
}

TEST_F(SerializeTest, CopyParametersRejectsShapeMismatch) {
  const auto src = makeParams();
  std::vector<Tensor> dst{Tensor::zeros({3, 2}), Tensor::zeros({4})};
  EXPECT_THROW(copyParameters(src, dst), ContractError);
}

TEST_F(SerializeTest, FullModelCheckpointRoundTripIsBitIdentical) {
  // The paper's one deliberate file write: checkpoint the full reduced
  // model, restore into a freshly initialized replica, and demand
  // bit-identical forward predictions.
  Rng rngA(123);
  core::ArtificialScientistModel trained(
      core::ArtificialScientistModel::Config::reduced(), rngA);
  saveParameters(path_, trained.parameters());

  Rng rngB(456);  // different init — every weight differs before the load
  core::ArtificialScientistModel restored(
      core::ArtificialScientistModel::Config::reduced(), rngB);
  auto params = restored.parameters();
  loadParameters(path_, params);

  Rng dataRng(7);
  const Tensor clouds = Tensor::randn({3, 16, 6}, dataRng);
  const Tensor expected = trained.predictSpectra(clouds);
  const Tensor got = restored.predictSpectra(clouds);
  ASSERT_EQ(expected.shape(), got.shape());
  for (long i = 0; i < expected.numel(); ++i)
    EXPECT_EQ(expected.at(i), got.at(i)) << "flat index " << i;
}

}  // namespace
}  // namespace artsci::ml

/// Unit tests of the shared blocked-GEMM kernel library
/// (ml/kernels/gemm.hpp): all three orientations against naive references
/// on ragged shapes, bit-identity of the OpenMP row-partitioned path
/// across 1/2/8 threads, the fused linear epilogue, and finite-difference
/// gradient checks of the blocked matmul/linear backward.
#ifdef _OPENMP
#include <omp.h>
#endif

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "ml/gradcheck.hpp"
#include "ml/kernels/gemm.hpp"
#include "ml/layers.hpp"
#include "ml/ops.hpp"

namespace artsci::ml {
namespace {

using kernels::Real;

std::vector<Real> randomVec(std::size_t n, Rng& rng) {
  std::vector<Real> v(n);
  for (Real& x : v) x = rng.normal();
  return v;
}

// Naive references: per-element k-ascending accumulation.
std::vector<Real> refNN(const std::vector<Real>& a, const std::vector<Real>& b,
                        long M, long N, long K) {
  std::vector<Real> c(static_cast<std::size_t>(M * N), Real(0));
  for (long i = 0; i < M; ++i)
    for (long k = 0; k < K; ++k)
      for (long j = 0; j < N; ++j)
        c[static_cast<std::size_t>(i * N + j)] +=
            a[static_cast<std::size_t>(i * K + k)] *
            b[static_cast<std::size_t>(k * N + j)];
  return c;
}

std::vector<Real> refNT(const std::vector<Real>& a, const std::vector<Real>& b,
                        long M, long N, long K) {
  std::vector<Real> c(static_cast<std::size_t>(M * N), Real(0));
  for (long i = 0; i < M; ++i)
    for (long j = 0; j < N; ++j)
      for (long k = 0; k < K; ++k)
        c[static_cast<std::size_t>(i * N + j)] +=
            a[static_cast<std::size_t>(i * K + k)] *
            b[static_cast<std::size_t>(j * K + k)];
  return c;
}

std::vector<Real> refTN(const std::vector<Real>& a, const std::vector<Real>& b,
                        long M, long N, long K) {
  std::vector<Real> c(static_cast<std::size_t>(M * N), Real(0));
  for (long k = 0; k < K; ++k)
    for (long i = 0; i < M; ++i)
      for (long j = 0; j < N; ++j)
        c[static_cast<std::size_t>(i * N + j)] +=
            a[static_cast<std::size_t>(k * M + i)] *
            b[static_cast<std::size_t>(k * N + j)];
  return c;
}

void expectNear(const std::vector<Real>& got, const std::vector<Real>& want,
                const char* what) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_NEAR(got[i], want[i], 1e-10 * std::max(Real(1), std::abs(want[i])))
        << what << " flat=" << i;
}

// Shapes deliberately off the 4-row register block, the 8-lane dot
// decomposition, and the 32-row OpenMP chunk.
struct GemmShape {
  long M, N, K;
};
const GemmShape kRaggedShapes[] = {{1, 1, 1},   {3, 5, 7},   {4, 8, 8},
                                   {5, 2, 9},   {7, 13, 5},  {33, 17, 11},
                                   {34, 3, 70}, {70, 34, 33}};

TEST(GemmKernels, NnMatchesNaiveOnRaggedShapes) {
  Rng rng(11);
  for (const auto& s : kRaggedShapes) {
    const auto a = randomVec(static_cast<std::size_t>(s.M * s.K), rng);
    const auto b = randomVec(static_cast<std::size_t>(s.K * s.N), rng);
    std::vector<Real> c(static_cast<std::size_t>(s.M * s.N), Real(7));
    kernels::gemm_nn(a.data(), b.data(), c.data(), s.M, s.N, s.K,
                     /*accumulate=*/false, /*parallel=*/false);
    expectNear(c, refNN(a, b, s.M, s.N, s.K), "nn");
  }
}

TEST(GemmKernels, NtMatchesNaiveOnRaggedShapes) {
  Rng rng(12);
  for (const auto& s : kRaggedShapes) {
    const auto a = randomVec(static_cast<std::size_t>(s.M * s.K), rng);
    const auto b = randomVec(static_cast<std::size_t>(s.N * s.K), rng);
    std::vector<Real> c(static_cast<std::size_t>(s.M * s.N), Real(7));
    kernels::gemm_nt(a.data(), b.data(), c.data(), s.M, s.N, s.K,
                     /*accumulate=*/false, /*parallel=*/false);
    expectNear(c, refNT(a, b, s.M, s.N, s.K), "nt");
  }
}

TEST(GemmKernels, TnMatchesNaiveOnRaggedShapes) {
  Rng rng(13);
  for (const auto& s : kRaggedShapes) {
    const auto a = randomVec(static_cast<std::size_t>(s.K * s.M), rng);
    const auto b = randomVec(static_cast<std::size_t>(s.K * s.N), rng);
    std::vector<Real> c(static_cast<std::size_t>(s.M * s.N), Real(7));
    kernels::gemm_tn(a.data(), b.data(), c.data(), s.M, s.N, s.K,
                     /*accumulate=*/false, /*parallel=*/false);
    expectNear(c, refTN(a, b, s.M, s.N, s.K), "tn");
  }
}

TEST(GemmKernels, AccumulateAddsOntoExistingOutput) {
  Rng rng(14);
  const long M = 7, N = 13, K = 9;
  const auto a = randomVec(static_cast<std::size_t>(M * K), rng);
  const auto b = randomVec(static_cast<std::size_t>(K * N), rng);
  const auto seed = randomVec(static_cast<std::size_t>(M * N), rng);
  std::vector<Real> c = seed;
  kernels::gemm_nn(a.data(), b.data(), c.data(), M, N, K,
                   /*accumulate=*/true, /*parallel=*/false);
  const auto prod = refNN(a, b, M, N, K);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], seed[i] + prod[i], 1e-10);
}

TEST(GemmKernels, OmpPathIsBitIdenticalAcrossThreadCounts) {
  Rng rng(15);
  // 70 rows: two full 32-row chunks plus a ragged tail, so every thread
  // count exercises a different chunk-to-thread assignment.
  const long M = 70, N = 37, K = 51;
  const auto a = randomVec(static_cast<std::size_t>(M * K), rng);
  const auto bNN = randomVec(static_cast<std::size_t>(K * N), rng);
  const auto bNT = randomVec(static_cast<std::size_t>(N * K), rng);
  const auto aTN = randomVec(static_cast<std::size_t>(K * M), rng);

  std::vector<Real> serialNN(static_cast<std::size_t>(M * N));
  std::vector<Real> serialNT(static_cast<std::size_t>(M * N));
  std::vector<Real> serialTN(static_cast<std::size_t>(M * N));
  kernels::gemm_nn(a.data(), bNN.data(), serialNN.data(), M, N, K, false,
                   /*parallel=*/false);
  kernels::gemm_nt(a.data(), bNT.data(), serialNT.data(), M, N, K, false,
                   /*parallel=*/false);
  kernels::gemm_tn(aTN.data(), bNN.data(), serialTN.data(), M, N, K, false,
                   /*parallel=*/false);

  for (int threads : {1, 2, 8}) {
#ifdef _OPENMP
    omp_set_num_threads(threads);
#else
    if (threads > 1) continue;
#endif
    std::vector<Real> c(static_cast<std::size_t>(M * N), Real(-1));
    kernels::gemm_nn(a.data(), bNN.data(), c.data(), M, N, K, false, true);
    for (std::size_t i = 0; i < c.size(); ++i)
      ASSERT_EQ(c[i], serialNN[i]) << "nn threads=" << threads << " i=" << i;

    std::fill(c.begin(), c.end(), Real(-1));
    kernels::gemm_nt(a.data(), bNT.data(), c.data(), M, N, K, false, true);
    for (std::size_t i = 0; i < c.size(); ++i)
      ASSERT_EQ(c[i], serialNT[i]) << "nt threads=" << threads << " i=" << i;

    std::fill(c.begin(), c.end(), Real(-1));
    kernels::gemm_tn(aTN.data(), bNN.data(), c.data(), M, N, K, false, true);
    for (std::size_t i = 0; i < c.size(); ++i)
      ASSERT_EQ(c[i], serialTN[i]) << "tn threads=" << threads << " i=" << i;
  }
#ifdef _OPENMP
  omp_set_num_threads(omp_get_num_procs());
#endif
}

TEST(GemmKernels, MatmulOpIsBitIdenticalAcrossThreadCounts) {
  // End-to-end through the autograd op (forward + both backward products),
  // above the parallel threshold so the OMP path actually engages.
  Rng rng(16);
  Tensor a = Tensor::randn({70, 41}, rng, 1, /*requiresGrad=*/true);
  Tensor b = Tensor::randn({41, 39}, rng, 1, /*requiresGrad=*/true);

  auto run = [&](int threads, std::vector<Real>& y, std::vector<Real>& ga,
                 std::vector<Real>& gb) {
#ifdef _OPENMP
    omp_set_num_threads(threads);
#else
    (void)threads;
#endif
    a.zeroGrad();
    b.zeroGrad();
    Tensor out = matmul(a, b);
    Tensor loss = sumAll(mul(out, out));
    loss.backward();
    y = out.data();
    ga = a.grad();
    gb = b.grad();
  };

  std::vector<Real> y1, ga1, gb1;
  run(1, y1, ga1, gb1);
  for (int threads : {2, 8}) {
#ifndef _OPENMP
    break;
#endif
    std::vector<Real> y, ga, gb;
    run(threads, y, ga, gb);
    ASSERT_EQ(y, y1) << "forward threads=" << threads;
    ASSERT_EQ(ga, ga1) << "grad-A threads=" << threads;
    ASSERT_EQ(gb, gb1) << "grad-B threads=" << threads;
  }
#ifdef _OPENMP
  omp_set_num_threads(omp_get_num_procs());
#endif
}

TEST(GemmKernels, LinearForwardFusedEpilogueMatchesReference) {
  Rng rng(17);
  const long m = 9, k = 5, n = 13;  // off the 4-row block
  const auto a = randomVec(static_cast<std::size_t>(m * k), rng);
  const auto w = randomVec(static_cast<std::size_t>(k * n), rng);
  const auto bias = randomVec(static_cast<std::size_t>(n), rng);
  std::vector<Real> c(static_cast<std::size_t>(m * n));
  for (kernels::Act act : {kernels::Act::kNone, kernels::Act::kRelu,
                           kernels::Act::kLeakyRelu, kernels::Act::kTanh}) {
    kernels::linear_forward(a.data(), w.data(), bias.data(), c.data(), m, k,
                            n, act);
    for (long i = 0; i < m; ++i) {
      for (long j = 0; j < n; ++j) {
        Real acc = 0;
        for (long kk = 0; kk < k; ++kk)
          acc += a[static_cast<std::size_t>(i * k + kk)] *
                 w[static_cast<std::size_t>(kk * n + j)];
        acc += bias[static_cast<std::size_t>(j)];
        switch (act) {
          case kernels::Act::kNone:
            break;
          case kernels::Act::kRelu:
            acc = acc < 0 ? 0 : acc;
            break;
          case kernels::Act::kLeakyRelu:
            acc = acc < 0 ? acc * kernels::kLeakySlope : acc;
            break;
          case kernels::Act::kTanh:
            acc = std::tanh(acc);
            break;
        }
        EXPECT_NEAR(c[static_cast<std::size_t>(i * n + j)], acc, 1e-12);
      }
    }
  }
}

TEST(GemmKernels, ColsumMatchesReference) {
  Rng rng(18);
  const long m = 11, n = 7;
  const auto g = randomVec(static_cast<std::size_t>(m * n), rng);
  std::vector<Real> out(static_cast<std::size_t>(n), Real(3));
  kernels::colsum(g.data(), out.data(), m, n, /*accumulate=*/true);
  for (long j = 0; j < n; ++j) {
    Real s = Real(3);
    for (long i = 0; i < m; ++i) s += g[static_cast<std::size_t>(i * n + j)];
    EXPECT_NEAR(out[static_cast<std::size_t>(j)], s, 1e-12);
  }
}

TEST(GemmKernels, BlockedMatmulBackwardPassesGradcheck) {
  Rng rng(19);
  // Ragged shapes so every tail path participates in the products.
  Tensor a = Tensor::randn({5, 7}, rng, 0.8, /*requiresGrad=*/true);
  Tensor b = Tensor::randn({7, 3}, rng, 0.8, /*requiresGrad=*/true);
  auto loss = [](const std::vector<Tensor>& in) {
    return sumAll(square(matmul(in[0], in[1])));
  };
  const auto result = gradCheck(loss, {a, b}, 1e-6, 1e-5);
  EXPECT_TRUE(result.ok) << "matmul max rel err: " << result.maxRelError;
}

TEST(GemmKernels, FusedLinearBackwardPassesGradcheck) {
  Rng rng(20);
  Tensor x = Tensor::randn({6, 5}, rng, 0.8, /*requiresGrad=*/true);
  Tensor w = Tensor::randn({5, 9}, rng, 0.8, /*requiresGrad=*/true);
  Tensor bias = Tensor::randn({9}, rng, 0.8, /*requiresGrad=*/true);
  auto loss = [](const std::vector<Tensor>& in) {
    return sumAll(square(linear(in[0], in[1], in[2])));
  };
  const auto result = gradCheck(loss, {x, w, bias}, 1e-6, 1e-5);
  EXPECT_TRUE(result.ok) << "linear max rel err: " << result.maxRelError;

  // No-bias variant must also differentiate cleanly.
  auto lossNoBias = [](const std::vector<Tensor>& in) {
    return sumAll(square(linear(in[0], in[1], Tensor())));
  };
  const auto result2 = gradCheck(lossNoBias, {x, w}, 1e-6, 1e-5);
  EXPECT_TRUE(result2.ok) << "linear(no bias) max rel err: "
                          << result2.maxRelError;
}

TEST(GemmKernels, FusedLinearMatchesMatmulPlusAddBitwise) {
  // The Linear layer switched from matmul+add to the fused node; the
  // contract is identical bits (k-ascending accumulation, bias last).
  Rng rng(21);
  Tensor x = Tensor::randn({34, 17}, rng);
  Tensor w = Tensor::randn({17, 23}, rng);
  Tensor bias = Tensor::randn({23}, rng);
  Tensor fused = linear(x, w, bias);
  Tensor reference = add(matmul(x, w), bias);
  ASSERT_EQ(fused.data(), reference.data());
}

}  // namespace
}  // namespace artsci::ml
